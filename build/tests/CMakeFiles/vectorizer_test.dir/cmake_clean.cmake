file(REMOVE_RECURSE
  "CMakeFiles/vectorizer_test.dir/vectorizer_test.cpp.o"
  "CMakeFiles/vectorizer_test.dir/vectorizer_test.cpp.o.d"
  "vectorizer_test"
  "vectorizer_test.pdb"
  "vectorizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vectorizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
