# Empty dependencies file for tsvc_test.
# This may be replaced when dependencies are built.
