file(REMOVE_RECURSE
  "CMakeFiles/tsvc_test.dir/tsvc_test.cpp.o"
  "CMakeFiles/tsvc_test.dir/tsvc_test.cpp.o.d"
  "tsvc_test"
  "tsvc_test.pdb"
  "tsvc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsvc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
