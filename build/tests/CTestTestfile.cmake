# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/fit_test[1]_include.cmake")
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/machine_test[1]_include.cmake")
include("/root/repo/build/tests/vectorizer_test[1]_include.cmake")
include("/root/repo/build/tests/costmodel_test[1]_include.cmake")
include("/root/repo/build/tests/tsvc_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/selector_test[1]_include.cmake")
include("/root/repo/build/tests/cache_sim_test[1]_include.cmake")
include("/root/repo/build/tests/scheduler_test[1]_include.cmake")
