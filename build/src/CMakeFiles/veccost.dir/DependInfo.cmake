
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/dependence.cpp" "src/CMakeFiles/veccost.dir/analysis/dependence.cpp.o" "gcc" "src/CMakeFiles/veccost.dir/analysis/dependence.cpp.o.d"
  "/root/repo/src/analysis/features.cpp" "src/CMakeFiles/veccost.dir/analysis/features.cpp.o" "gcc" "src/CMakeFiles/veccost.dir/analysis/features.cpp.o.d"
  "/root/repo/src/analysis/legality.cpp" "src/CMakeFiles/veccost.dir/analysis/legality.cpp.o" "gcc" "src/CMakeFiles/veccost.dir/analysis/legality.cpp.o.d"
  "/root/repo/src/analysis/reduction.cpp" "src/CMakeFiles/veccost.dir/analysis/reduction.cpp.o" "gcc" "src/CMakeFiles/veccost.dir/analysis/reduction.cpp.o.d"
  "/root/repo/src/costmodel/classifier.cpp" "src/CMakeFiles/veccost.dir/costmodel/classifier.cpp.o" "gcc" "src/CMakeFiles/veccost.dir/costmodel/classifier.cpp.o.d"
  "/root/repo/src/costmodel/linear_model.cpp" "src/CMakeFiles/veccost.dir/costmodel/linear_model.cpp.o" "gcc" "src/CMakeFiles/veccost.dir/costmodel/linear_model.cpp.o.d"
  "/root/repo/src/costmodel/llvm_model.cpp" "src/CMakeFiles/veccost.dir/costmodel/llvm_model.cpp.o" "gcc" "src/CMakeFiles/veccost.dir/costmodel/llvm_model.cpp.o.d"
  "/root/repo/src/costmodel/selector.cpp" "src/CMakeFiles/veccost.dir/costmodel/selector.cpp.o" "gcc" "src/CMakeFiles/veccost.dir/costmodel/selector.cpp.o.d"
  "/root/repo/src/costmodel/trainer.cpp" "src/CMakeFiles/veccost.dir/costmodel/trainer.cpp.o" "gcc" "src/CMakeFiles/veccost.dir/costmodel/trainer.cpp.o.d"
  "/root/repo/src/eval/experiments.cpp" "src/CMakeFiles/veccost.dir/eval/experiments.cpp.o" "gcc" "src/CMakeFiles/veccost.dir/eval/experiments.cpp.o.d"
  "/root/repo/src/eval/measurement.cpp" "src/CMakeFiles/veccost.dir/eval/measurement.cpp.o" "gcc" "src/CMakeFiles/veccost.dir/eval/measurement.cpp.o.d"
  "/root/repo/src/eval/report.cpp" "src/CMakeFiles/veccost.dir/eval/report.cpp.o" "gcc" "src/CMakeFiles/veccost.dir/eval/report.cpp.o.d"
  "/root/repo/src/fit/least_squares.cpp" "src/CMakeFiles/veccost.dir/fit/least_squares.cpp.o" "gcc" "src/CMakeFiles/veccost.dir/fit/least_squares.cpp.o.d"
  "/root/repo/src/fit/model_io.cpp" "src/CMakeFiles/veccost.dir/fit/model_io.cpp.o" "gcc" "src/CMakeFiles/veccost.dir/fit/model_io.cpp.o.d"
  "/root/repo/src/fit/nnls.cpp" "src/CMakeFiles/veccost.dir/fit/nnls.cpp.o" "gcc" "src/CMakeFiles/veccost.dir/fit/nnls.cpp.o.d"
  "/root/repo/src/fit/scaler.cpp" "src/CMakeFiles/veccost.dir/fit/scaler.cpp.o" "gcc" "src/CMakeFiles/veccost.dir/fit/scaler.cpp.o.d"
  "/root/repo/src/fit/svr.cpp" "src/CMakeFiles/veccost.dir/fit/svr.cpp.o" "gcc" "src/CMakeFiles/veccost.dir/fit/svr.cpp.o.d"
  "/root/repo/src/ir/builder.cpp" "src/CMakeFiles/veccost.dir/ir/builder.cpp.o" "gcc" "src/CMakeFiles/veccost.dir/ir/builder.cpp.o.d"
  "/root/repo/src/ir/loop.cpp" "src/CMakeFiles/veccost.dir/ir/loop.cpp.o" "gcc" "src/CMakeFiles/veccost.dir/ir/loop.cpp.o.d"
  "/root/repo/src/ir/opcode.cpp" "src/CMakeFiles/veccost.dir/ir/opcode.cpp.o" "gcc" "src/CMakeFiles/veccost.dir/ir/opcode.cpp.o.d"
  "/root/repo/src/ir/parser.cpp" "src/CMakeFiles/veccost.dir/ir/parser.cpp.o" "gcc" "src/CMakeFiles/veccost.dir/ir/parser.cpp.o.d"
  "/root/repo/src/ir/printer.cpp" "src/CMakeFiles/veccost.dir/ir/printer.cpp.o" "gcc" "src/CMakeFiles/veccost.dir/ir/printer.cpp.o.d"
  "/root/repo/src/ir/type.cpp" "src/CMakeFiles/veccost.dir/ir/type.cpp.o" "gcc" "src/CMakeFiles/veccost.dir/ir/type.cpp.o.d"
  "/root/repo/src/ir/verifier.cpp" "src/CMakeFiles/veccost.dir/ir/verifier.cpp.o" "gcc" "src/CMakeFiles/veccost.dir/ir/verifier.cpp.o.d"
  "/root/repo/src/machine/cache_sim.cpp" "src/CMakeFiles/veccost.dir/machine/cache_sim.cpp.o" "gcc" "src/CMakeFiles/veccost.dir/machine/cache_sim.cpp.o.d"
  "/root/repo/src/machine/executor.cpp" "src/CMakeFiles/veccost.dir/machine/executor.cpp.o" "gcc" "src/CMakeFiles/veccost.dir/machine/executor.cpp.o.d"
  "/root/repo/src/machine/perf_model.cpp" "src/CMakeFiles/veccost.dir/machine/perf_model.cpp.o" "gcc" "src/CMakeFiles/veccost.dir/machine/perf_model.cpp.o.d"
  "/root/repo/src/machine/scheduler.cpp" "src/CMakeFiles/veccost.dir/machine/scheduler.cpp.o" "gcc" "src/CMakeFiles/veccost.dir/machine/scheduler.cpp.o.d"
  "/root/repo/src/machine/target.cpp" "src/CMakeFiles/veccost.dir/machine/target.cpp.o" "gcc" "src/CMakeFiles/veccost.dir/machine/target.cpp.o.d"
  "/root/repo/src/machine/targets.cpp" "src/CMakeFiles/veccost.dir/machine/targets.cpp.o" "gcc" "src/CMakeFiles/veccost.dir/machine/targets.cpp.o.d"
  "/root/repo/src/support/csv.cpp" "src/CMakeFiles/veccost.dir/support/csv.cpp.o" "gcc" "src/CMakeFiles/veccost.dir/support/csv.cpp.o.d"
  "/root/repo/src/support/matrix.cpp" "src/CMakeFiles/veccost.dir/support/matrix.cpp.o" "gcc" "src/CMakeFiles/veccost.dir/support/matrix.cpp.o.d"
  "/root/repo/src/support/stats.cpp" "src/CMakeFiles/veccost.dir/support/stats.cpp.o" "gcc" "src/CMakeFiles/veccost.dir/support/stats.cpp.o.d"
  "/root/repo/src/support/table.cpp" "src/CMakeFiles/veccost.dir/support/table.cpp.o" "gcc" "src/CMakeFiles/veccost.dir/support/table.cpp.o.d"
  "/root/repo/src/tsvc/suite.cpp" "src/CMakeFiles/veccost.dir/tsvc/suite.cpp.o" "gcc" "src/CMakeFiles/veccost.dir/tsvc/suite.cpp.o.d"
  "/root/repo/src/tsvc/suite_control_flow.cpp" "src/CMakeFiles/veccost.dir/tsvc/suite_control_flow.cpp.o" "gcc" "src/CMakeFiles/veccost.dir/tsvc/suite_control_flow.cpp.o.d"
  "/root/repo/src/tsvc/suite_crossing_thresholds.cpp" "src/CMakeFiles/veccost.dir/tsvc/suite_crossing_thresholds.cpp.o" "gcc" "src/CMakeFiles/veccost.dir/tsvc/suite_crossing_thresholds.cpp.o.d"
  "/root/repo/src/tsvc/suite_expansion.cpp" "src/CMakeFiles/veccost.dir/tsvc/suite_expansion.cpp.o" "gcc" "src/CMakeFiles/veccost.dir/tsvc/suite_expansion.cpp.o.d"
  "/root/repo/src/tsvc/suite_global_dataflow.cpp" "src/CMakeFiles/veccost.dir/tsvc/suite_global_dataflow.cpp.o" "gcc" "src/CMakeFiles/veccost.dir/tsvc/suite_global_dataflow.cpp.o.d"
  "/root/repo/src/tsvc/suite_indirect.cpp" "src/CMakeFiles/veccost.dir/tsvc/suite_indirect.cpp.o" "gcc" "src/CMakeFiles/veccost.dir/tsvc/suite_indirect.cpp.o.d"
  "/root/repo/src/tsvc/suite_induction.cpp" "src/CMakeFiles/veccost.dir/tsvc/suite_induction.cpp.o" "gcc" "src/CMakeFiles/veccost.dir/tsvc/suite_induction.cpp.o.d"
  "/root/repo/src/tsvc/suite_linear_dependence.cpp" "src/CMakeFiles/veccost.dir/tsvc/suite_linear_dependence.cpp.o" "gcc" "src/CMakeFiles/veccost.dir/tsvc/suite_linear_dependence.cpp.o.d"
  "/root/repo/src/tsvc/suite_loop_restructuring.cpp" "src/CMakeFiles/veccost.dir/tsvc/suite_loop_restructuring.cpp.o" "gcc" "src/CMakeFiles/veccost.dir/tsvc/suite_loop_restructuring.cpp.o.d"
  "/root/repo/src/tsvc/suite_misc.cpp" "src/CMakeFiles/veccost.dir/tsvc/suite_misc.cpp.o" "gcc" "src/CMakeFiles/veccost.dir/tsvc/suite_misc.cpp.o.d"
  "/root/repo/src/tsvc/suite_node_splitting.cpp" "src/CMakeFiles/veccost.dir/tsvc/suite_node_splitting.cpp.o" "gcc" "src/CMakeFiles/veccost.dir/tsvc/suite_node_splitting.cpp.o.d"
  "/root/repo/src/tsvc/suite_recurrences.cpp" "src/CMakeFiles/veccost.dir/tsvc/suite_recurrences.cpp.o" "gcc" "src/CMakeFiles/veccost.dir/tsvc/suite_recurrences.cpp.o.d"
  "/root/repo/src/tsvc/suite_reductions.cpp" "src/CMakeFiles/veccost.dir/tsvc/suite_reductions.cpp.o" "gcc" "src/CMakeFiles/veccost.dir/tsvc/suite_reductions.cpp.o.d"
  "/root/repo/src/tsvc/suite_search_packing.cpp" "src/CMakeFiles/veccost.dir/tsvc/suite_search_packing.cpp.o" "gcc" "src/CMakeFiles/veccost.dir/tsvc/suite_search_packing.cpp.o.d"
  "/root/repo/src/tsvc/suite_statement_reordering.cpp" "src/CMakeFiles/veccost.dir/tsvc/suite_statement_reordering.cpp.o" "gcc" "src/CMakeFiles/veccost.dir/tsvc/suite_statement_reordering.cpp.o.d"
  "/root/repo/src/tsvc/suite_symbolics.cpp" "src/CMakeFiles/veccost.dir/tsvc/suite_symbolics.cpp.o" "gcc" "src/CMakeFiles/veccost.dir/tsvc/suite_symbolics.cpp.o.d"
  "/root/repo/src/tsvc/suite_vector_idioms.cpp" "src/CMakeFiles/veccost.dir/tsvc/suite_vector_idioms.cpp.o" "gcc" "src/CMakeFiles/veccost.dir/tsvc/suite_vector_idioms.cpp.o.d"
  "/root/repo/src/tsvc/workload.cpp" "src/CMakeFiles/veccost.dir/tsvc/workload.cpp.o" "gcc" "src/CMakeFiles/veccost.dir/tsvc/workload.cpp.o.d"
  "/root/repo/src/vectorizer/loop_vectorizer.cpp" "src/CMakeFiles/veccost.dir/vectorizer/loop_vectorizer.cpp.o" "gcc" "src/CMakeFiles/veccost.dir/vectorizer/loop_vectorizer.cpp.o.d"
  "/root/repo/src/vectorizer/reroll.cpp" "src/CMakeFiles/veccost.dir/vectorizer/reroll.cpp.o" "gcc" "src/CMakeFiles/veccost.dir/vectorizer/reroll.cpp.o.d"
  "/root/repo/src/vectorizer/slp_vectorizer.cpp" "src/CMakeFiles/veccost.dir/vectorizer/slp_vectorizer.cpp.o" "gcc" "src/CMakeFiles/veccost.dir/vectorizer/slp_vectorizer.cpp.o.d"
  "/root/repo/src/vectorizer/unroll.cpp" "src/CMakeFiles/veccost.dir/vectorizer/unroll.cpp.o" "gcc" "src/CMakeFiles/veccost.dir/vectorizer/unroll.cpp.o.d"
  "/root/repo/src/vectorizer/vplan.cpp" "src/CMakeFiles/veccost.dir/vectorizer/vplan.cpp.o" "gcc" "src/CMakeFiles/veccost.dir/vectorizer/vplan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
