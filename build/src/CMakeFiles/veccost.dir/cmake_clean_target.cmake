file(REMOVE_RECURSE
  "libveccost.a"
)
