# Empty compiler generated dependencies file for veccost.
# This may be replaced when dependencies are built.
