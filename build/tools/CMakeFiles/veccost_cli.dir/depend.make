# Empty dependencies file for veccost_cli.
# This may be replaced when dependencies are built.
