file(REMOVE_RECURSE
  "CMakeFiles/veccost_cli.dir/veccost_cli.cpp.o"
  "CMakeFiles/veccost_cli.dir/veccost_cli.cpp.o.d"
  "veccost"
  "veccost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veccost_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
