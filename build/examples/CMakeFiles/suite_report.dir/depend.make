# Empty dependencies file for suite_report.
# This may be replaced when dependencies are built.
