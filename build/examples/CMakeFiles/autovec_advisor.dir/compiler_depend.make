# Empty compiler generated dependencies file for autovec_advisor.
# This may be replaced when dependencies are built.
