file(REMOVE_RECURSE
  "CMakeFiles/autovec_advisor.dir/autovec_advisor.cpp.o"
  "CMakeFiles/autovec_advisor.dir/autovec_advisor.cpp.o.d"
  "autovec_advisor"
  "autovec_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autovec_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
