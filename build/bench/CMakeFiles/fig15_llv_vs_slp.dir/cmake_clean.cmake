file(REMOVE_RECURSE
  "CMakeFiles/fig15_llv_vs_slp.dir/fig15_llv_vs_slp.cpp.o"
  "CMakeFiles/fig15_llv_vs_slp.dir/fig15_llv_vs_slp.cpp.o.d"
  "fig15_llv_vs_slp"
  "fig15_llv_vs_slp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_llv_vs_slp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
