# Empty dependencies file for fig15_llv_vs_slp.
# This may be replaced when dependencies are built.
