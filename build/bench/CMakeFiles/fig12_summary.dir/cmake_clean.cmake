file(REMOVE_RECURSE
  "CMakeFiles/fig12_summary.dir/fig12_summary.cpp.o"
  "CMakeFiles/fig12_summary.dir/fig12_summary.cpp.o.d"
  "fig12_summary"
  "fig12_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
