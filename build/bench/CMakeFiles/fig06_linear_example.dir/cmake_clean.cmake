file(REMOVE_RECURSE
  "CMakeFiles/fig06_linear_example.dir/fig06_linear_example.cpp.o"
  "CMakeFiles/fig06_linear_example.dir/fig06_linear_example.cpp.o.d"
  "fig06_linear_example"
  "fig06_linear_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_linear_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
