# Empty dependencies file for fig06_linear_example.
# This may be replaced when dependencies are built.
