file(REMOVE_RECURSE
  "CMakeFiles/abl_vf_and_width.dir/abl_vf_and_width.cpp.o"
  "CMakeFiles/abl_vf_and_width.dir/abl_vf_and_width.cpp.o.d"
  "abl_vf_and_width"
  "abl_vf_and_width.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_vf_and_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
