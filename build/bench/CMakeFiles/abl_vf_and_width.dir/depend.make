# Empty dependencies file for abl_vf_and_width.
# This may be replaced when dependencies are built.
