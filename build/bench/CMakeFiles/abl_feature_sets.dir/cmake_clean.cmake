file(REMOVE_RECURSE
  "CMakeFiles/abl_feature_sets.dir/abl_feature_sets.cpp.o"
  "CMakeFiles/abl_feature_sets.dir/abl_feature_sets.cpp.o.d"
  "abl_feature_sets"
  "abl_feature_sets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_feature_sets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
