# Empty dependencies file for abl_feature_sets.
# This may be replaced when dependencies are built.
