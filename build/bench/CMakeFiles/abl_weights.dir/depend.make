# Empty dependencies file for abl_weights.
# This may be replaced when dependencies are built.
