file(REMOVE_RECURSE
  "CMakeFiles/abl_weights.dir/abl_weights.cpp.o"
  "CMakeFiles/abl_weights.dir/abl_weights.cpp.o.d"
  "abl_weights"
  "abl_weights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
