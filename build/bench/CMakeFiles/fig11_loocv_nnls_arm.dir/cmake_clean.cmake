file(REMOVE_RECURSE
  "CMakeFiles/fig11_loocv_nnls_arm.dir/fig11_loocv_nnls_arm.cpp.o"
  "CMakeFiles/fig11_loocv_nnls_arm.dir/fig11_loocv_nnls_arm.cpp.o.d"
  "fig11_loocv_nnls_arm"
  "fig11_loocv_nnls_arm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_loocv_nnls_arm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
