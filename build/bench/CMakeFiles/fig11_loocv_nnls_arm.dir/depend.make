# Empty dependencies file for fig11_loocv_nnls_arm.
# This may be replaced when dependencies are built.
