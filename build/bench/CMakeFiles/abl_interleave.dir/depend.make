# Empty dependencies file for abl_interleave.
# This may be replaced when dependencies are built.
