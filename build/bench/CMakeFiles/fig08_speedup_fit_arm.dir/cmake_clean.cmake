file(REMOVE_RECURSE
  "CMakeFiles/fig08_speedup_fit_arm.dir/fig08_speedup_fit_arm.cpp.o"
  "CMakeFiles/fig08_speedup_fit_arm.dir/fig08_speedup_fit_arm.cpp.o.d"
  "fig08_speedup_fit_arm"
  "fig08_speedup_fit_arm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_speedup_fit_arm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
