# Empty dependencies file for fig08_speedup_fit_arm.
# This may be replaced when dependencies are built.
