file(REMOVE_RECURSE
  "CMakeFiles/micro_vectorizer.dir/micro_vectorizer.cpp.o"
  "CMakeFiles/micro_vectorizer.dir/micro_vectorizer.cpp.o.d"
  "micro_vectorizer"
  "micro_vectorizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_vectorizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
