# Empty compiler generated dependencies file for abl_crossval.
# This may be replaced when dependencies are built.
