file(REMOVE_RECURSE
  "CMakeFiles/abl_crossval.dir/abl_crossval.cpp.o"
  "CMakeFiles/abl_crossval.dir/abl_crossval.cpp.o.d"
  "abl_crossval"
  "abl_crossval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_crossval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
