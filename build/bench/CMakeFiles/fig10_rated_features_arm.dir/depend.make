# Empty dependencies file for fig10_rated_features_arm.
# This may be replaced when dependencies are built.
