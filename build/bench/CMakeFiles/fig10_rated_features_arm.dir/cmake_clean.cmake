file(REMOVE_RECURSE
  "CMakeFiles/fig10_rated_features_arm.dir/fig10_rated_features_arm.cpp.o"
  "CMakeFiles/fig10_rated_features_arm.dir/fig10_rated_features_arm.cpp.o.d"
  "fig10_rated_features_arm"
  "fig10_rated_features_arm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_rated_features_arm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
