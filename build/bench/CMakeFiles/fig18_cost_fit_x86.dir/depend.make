# Empty dependencies file for fig18_cost_fit_x86.
# This may be replaced when dependencies are built.
