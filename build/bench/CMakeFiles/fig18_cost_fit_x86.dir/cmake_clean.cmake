file(REMOVE_RECURSE
  "CMakeFiles/fig18_cost_fit_x86.dir/fig18_cost_fit_x86.cpp.o"
  "CMakeFiles/fig18_cost_fit_x86.dir/fig18_cost_fit_x86.cpp.o.d"
  "fig18_cost_fit_x86"
  "fig18_cost_fit_x86.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_cost_fit_x86.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
