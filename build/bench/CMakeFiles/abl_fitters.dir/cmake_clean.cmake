file(REMOVE_RECURSE
  "CMakeFiles/abl_fitters.dir/abl_fitters.cpp.o"
  "CMakeFiles/abl_fitters.dir/abl_fitters.cpp.o.d"
  "abl_fitters"
  "abl_fitters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_fitters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
