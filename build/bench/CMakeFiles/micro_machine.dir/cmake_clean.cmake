file(REMOVE_RECURSE
  "CMakeFiles/micro_machine.dir/micro_machine.cpp.o"
  "CMakeFiles/micro_machine.dir/micro_machine.cpp.o.d"
  "micro_machine"
  "micro_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
