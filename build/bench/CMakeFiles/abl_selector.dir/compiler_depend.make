# Empty compiler generated dependencies file for abl_selector.
# This may be replaced when dependencies are built.
