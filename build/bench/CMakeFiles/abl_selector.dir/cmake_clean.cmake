file(REMOVE_RECURSE
  "CMakeFiles/abl_selector.dir/abl_selector.cpp.o"
  "CMakeFiles/abl_selector.dir/abl_selector.cpp.o.d"
  "abl_selector"
  "abl_selector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_selector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
