# Empty compiler generated dependencies file for fig04_sota_arm.
# This may be replaced when dependencies are built.
