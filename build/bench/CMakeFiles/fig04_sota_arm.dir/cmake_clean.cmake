file(REMOVE_RECURSE
  "CMakeFiles/fig04_sota_arm.dir/fig04_sota_arm.cpp.o"
  "CMakeFiles/fig04_sota_arm.dir/fig04_sota_arm.cpp.o.d"
  "fig04_sota_arm"
  "fig04_sota_arm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_sota_arm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
