file(REMOVE_RECURSE
  "CMakeFiles/abl_categories.dir/abl_categories.cpp.o"
  "CMakeFiles/abl_categories.dir/abl_categories.cpp.o.d"
  "abl_categories"
  "abl_categories.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_categories.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
