# Empty compiler generated dependencies file for abl_categories.
# This may be replaced when dependencies are built.
