file(REMOVE_RECURSE
  "CMakeFiles/fig16_loocv_l2_arm.dir/fig16_loocv_l2_arm.cpp.o"
  "CMakeFiles/fig16_loocv_l2_arm.dir/fig16_loocv_l2_arm.cpp.o.d"
  "fig16_loocv_l2_arm"
  "fig16_loocv_l2_arm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_loocv_l2_arm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
