# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig16_loocv_l2_arm.
