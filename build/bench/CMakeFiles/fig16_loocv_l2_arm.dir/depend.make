# Empty dependencies file for fig16_loocv_l2_arm.
# This may be replaced when dependencies are built.
