file(REMOVE_RECURSE
  "CMakeFiles/micro_fit.dir/micro_fit.cpp.o"
  "CMakeFiles/micro_fit.dir/micro_fit.cpp.o.d"
  "micro_fit"
  "micro_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
