# Empty dependencies file for micro_fit.
# This may be replaced when dependencies are built.
