file(REMOVE_RECURSE
  "CMakeFiles/fig19_speedup_fit_x86.dir/fig19_speedup_fit_x86.cpp.o"
  "CMakeFiles/fig19_speedup_fit_x86.dir/fig19_speedup_fit_x86.cpp.o.d"
  "fig19_speedup_fit_x86"
  "fig19_speedup_fit_x86.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_speedup_fit_x86.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
