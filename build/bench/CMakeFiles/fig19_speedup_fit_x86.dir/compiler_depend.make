# Empty compiler generated dependencies file for fig19_speedup_fit_x86.
# This may be replaced when dependencies are built.
