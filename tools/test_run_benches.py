"""Tests for run_benches.py's baseline comparison.

Runs under both `python3 -m unittest` (what ctest invokes — no third-party
deps) and pytest (which collects unittest.TestCase classes natively).
The symmetry contract under test: a timer present on either side but
missing from the other is a counted warning, not a silent note — a stale
committed baseline loses coverage exactly like a renamed benchmark does.
"""

import io
import json
import os
import sys
import tempfile
import unittest
from contextlib import redirect_stderr, redirect_stdout

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import run_benches  # noqa: E402


def make_artifact(benchmarks=None, suite=None):
    return {
        "schema": "veccost-bench-v1",
        "benchmarks_ns_per_op": benchmarks or {},
        "suite_cold_run_ms": suite or {},
    }


class WarnRegressionsTest(unittest.TestCase):
    def compare(self, artifact, baseline):
        """Run warn_regressions against an on-disk baseline, capture output."""
        with tempfile.NamedTemporaryFile("w", suffix=".json",
                                         delete=False) as f:
            json.dump(baseline, f)
            path = f.name
        try:
            out, err = io.StringIO(), io.StringIO()
            with redirect_stdout(out), redirect_stderr(err):
                warnings = run_benches.warn_regressions(artifact, path, 0.25)
            return warnings, out.getvalue() + err.getvalue()
        finally:
            os.unlink(path)

    def test_identical_artifacts_warn_nothing(self):
        artifact = make_artifact({"BM_x": 100.0}, {"lowered": 50.0})
        warnings, text = self.compare(artifact, artifact)
        self.assertEqual(warnings, 0)
        self.assertIn("no regressions", text)

    def test_within_threshold_is_quiet(self):
        warnings, _ = self.compare(make_artifact({"BM_x": 120.0}),
                                   make_artifact({"BM_x": 100.0}))
        self.assertEqual(warnings, 0)

    def test_regression_beyond_threshold_warns(self):
        warnings, text = self.compare(make_artifact({"BM_x": 200.0}),
                                      make_artifact({"BM_x": 100.0}))
        self.assertEqual(warnings, 1)
        self.assertIn("regressed", text)

    def test_speedups_never_warn(self):
        warnings, _ = self.compare(make_artifact({"BM_x": 10.0}),
                                   make_artifact({"BM_x": 100.0}))
        self.assertEqual(warnings, 0)

    def test_baseline_only_timer_is_a_counted_warning(self):
        warnings, text = self.compare(make_artifact({}),
                                      make_artifact({"BM_gone": 100.0}))
        self.assertEqual(warnings, 1)
        self.assertIn("missing from this run", text)

    def test_new_timer_without_baseline_is_a_counted_warning(self):
        # The symmetric case the comparison used to miss: a benchmark added
        # without regenerating the committed baseline only printed a note.
        warnings, text = self.compare(make_artifact({"BM_new": 100.0}),
                                      make_artifact({}))
        self.assertEqual(warnings, 1)
        self.assertIn("no baseline entry", text)
        self.assertIn("WARNING", text)

    def test_symmetry_both_directions_counted_equally(self):
        warnings, _ = self.compare(
            make_artifact({"BM_new": 100.0, "BM_same": 50.0}),
            make_artifact({"BM_gone": 100.0, "BM_same": 50.0}))
        self.assertEqual(warnings, 2)

    def test_suite_timers_compared_too(self):
        warnings, _ = self.compare(
            make_artifact({}, {"lowered": 200.0}),
            make_artifact({}, {"lowered": 100.0}))
        self.assertEqual(warnings, 1)

    def test_unreadable_baseline_skips_comparison(self):
        artifact = make_artifact({"BM_x": 100.0})
        out, err = io.StringIO(), io.StringIO()
        with redirect_stdout(out), redirect_stderr(err):
            warnings = run_benches.warn_regressions(
                artifact, "/nonexistent/baseline.json", 0.25)
        self.assertEqual(warnings, 0)
        self.assertIn("skipping comparison", err.getvalue())

    def test_schema_mismatch_skips_comparison(self):
        artifact = make_artifact({"BM_x": 999.0})
        baseline = dict(make_artifact({"BM_x": 1.0}), schema="other-v0")
        warnings, text = self.compare(artifact, baseline)
        self.assertEqual(warnings, 0)
        self.assertIn("skipping comparison", text)


class MicroBenchListTest(unittest.TestCase):
    def test_micro_tune_is_collected(self):
        self.assertIn("bench/micro_tune", run_benches.MICRO_BENCHES)

    def test_micro_nest_is_collected(self):
        self.assertIn("bench/micro_nest", run_benches.MICRO_BENCHES)


if __name__ == "__main__":
    unittest.main()
