// veccost — the single-binary command-line interface.
//
//   veccost list                                 list TSVC kernels
//   veccost targets                              list machine models
//   veccost explore  <kernel|file> [target]      IR, features, legality, speedups
//   veccost measure  [target]                    suite measurement table
//   veccost verify   [target]                    engine semantics sweep
//   veccost train    [target] [fitter] [set] [out-file]
//   veccost advise   [target] [kernel...]        decisions vs oracle
//   veccost select   <kernel> [target]           transform options + pick
//   veccost catalog  [target]                    markdown kernel catalog
//   veccost fuzz     [target]                    differential fuzz campaign
//   veccost tune     [target]                    pipeline autotuner (docs/tuning.md)
//   veccost stats    [target|metrics.json]       pipeline metrics report
//   veccost passes   [--json] [spec]             pass catalog + spec check
//   veccost serve    [--port N] ...              cost-model daemon (docs/serving.md)
//
// Everything the example binaries do, behind one verb-style entry point.
// Every subcommand that measures goes through eval::Session; the global
// flags (support::parse_global_flags) configure it once, up front.
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/legality.hpp"
#include "costmodel/llvm_model.hpp"
#include "costmodel/selector.hpp"
#include "costmodel/trainer.hpp"
#include "eval/experiments.hpp"
#include "eval/report.hpp"
#include "eval/session.hpp"
#include "fit/model_io.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "machine/perf_model.hpp"
#include "machine/targets.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "serve/server.hpp"
#include "support/env_flags.hpp"
#include "support/error.hpp"
#include "support/json.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"
#include "testing/differential_oracle.hpp"
#include "testing/fuzz.hpp"
#include "tsvc/kernel.hpp"
#include "tune/corpus.hpp"
#include "tune/tuner.hpp"
#include "xform/analysis_manager.hpp"
#include "xform/pipeline.hpp"
#include "xform/registry.hpp"

namespace {

using namespace veccost;

[[noreturn]] void usage() {
  std::cerr <<
      R"(veccost — learned cost models for auto-vectorization

usage:
  veccost list
  veccost targets [--json]
  veccost explore <kernel|file.vc> [target]
  veccost measure [target]
  veccost crosstarget [l2|nnls|svr] [counts|rated|extended]
  veccost verify  [target] [n]
  veccost train   [target] [l2|nnls|svr] [counts|rated|extended] [out-file]
  veccost advise  [target]
  veccost select  <kernel> [target]
  veccost catalog [target]
  veccost fuzz    [target] [--seed N] [--iters N] [--corpus DIR]
                  [--corpus-out DIR] [--no-shrink] [--inject-fault]
                  [--deep-nests]
  veccost tune    [target] [--seed N] [--rounds N] [--beam N] [--mutations N]
                  [--epsilon X] [--kernels a,b,c] [--subset10] [--regret]
                  [--no-fit] [--out FILE] [--bench-out FILE]
  veccost stats   [--json] [target|metrics.json]
  veccost passes  [--json] [spec]
  veccost serve   [--port N] [--queue-limit N] [--batch-max N]
                  [--deadline-ms N] [--cache-dir DIR]
                  [--inject-fault] [--inject-delay-ms N]

global flags:
  --jobs N             measurement/training parallelism (default: all
                       hardware threads; also VECCOST_JOBS)
  --no-cache           ignore and do not update results/cache/ (also
                       VECCOST_NO_CACHE=1)
  --no-metrics         disable metrics/span collection (also
                       VECCOST_METRICS=0)
  --pipeline SPEC      transform pipeline for explore/measure/fuzz/passes,
                       e.g. "unroll<4>,slp,reroll" (also VECCOST_PIPELINE;
                       default: llv)
  --metrics-out FILE   write the metrics registry as JSON on exit
  --trace-out FILE     write collected spans as Chrome trace-event JSON
)";
  std::exit(2);
}

const machine::TargetDesc& target_arg(const std::vector<std::string>& args,
                                      std::size_t index) {
  if (args.size() > index) return machine::target_by_name(args[index]);
  // VECCOST_TARGET retargets every defaulted command (the CI cross-target
  // matrix runs the whole binary under it); cortex-a57 otherwise.
  const std::string env = support::EnvFlags::value("VECCOST_TARGET");
  return machine::target_by_name(env.empty() ? "cortex-a57" : env);
}

ir::LoopKernel kernel_arg(const std::string& name) {
  if (const auto* info = tsvc::find_kernel(name)) return info->build();
  std::ifstream file(name);
  if (!file) throw Error("'" + name + "' is neither a TSVC kernel nor a file");
  std::ostringstream text;
  text << file.rdbuf();
  return ir::parse_kernel(text.str());
}

int cmd_list() {
  TextTable t({"kernel", "category", "description"});
  for (const auto& info : tsvc::suite())
    t.add_row({info.name, info.category, info.description});
  std::cout << t.to_string();
  return 0;
}

int cmd_targets(const std::vector<std::string>& args) {
  const bool json = args.size() > 2 && args[2] == "--json";
  if (json) {
    std::cout << "[\n";
    bool first = true;
    for (const auto& desc : machine::all_targets()) {
      if (!first) std::cout << ",\n";
      first = false;
      std::cout << "  {\"name\": \"" << desc.name
                << "\", \"vector_bits\": " << desc.vector_bits
                << ", \"vl_regime\": \""
                << (desc.vl.vl_agnostic ? "vl-agnostic" : "fixed") << "\""
                << ", \"issue_width\": " << desc.issue_width
                << ", \"hw_gather\": " << (desc.hw_gather ? "true" : "false")
                << ", \"hw_masked_store\": "
                << (desc.hw_masked_store ? "true" : "false") << "}";
    }
    std::cout << "\n]\n";
    return 0;
  }
  TextTable t({"target", "vector bits", "VL regime", "issue", "gather",
               "masked stores"});
  for (const auto& desc : machine::all_targets())
    t.add_row({desc.name, std::to_string(desc.vector_bits),
               desc.vl.vl_agnostic ? "vl-agnostic" : "fixed",
               std::to_string(desc.issue_width), desc.hw_gather ? "hw" : "emul",
               desc.hw_masked_store ? "hw" : "emul"});
  std::cout << t.to_string();
  return 0;
}

/// Resolve the --pipeline / VECCOST_PIPELINE spec (default: llv) into a
/// parsed Pipeline, throwing the parser's char-positioned error on junk.
xform::Pipeline pipeline_arg(const support::GlobalOptions& global) {
  const std::string spec = global.pipeline.empty()
                               ? std::string(eval::kDefaultPipelineSpec)
                               : global.pipeline;
  xform::Pipeline pipeline = xform::Pipeline::parse(spec);
  if (!pipeline.valid())
    throw Error("pipeline spec '" + spec + "': " + pipeline.error());
  return pipeline;
}

int cmd_explore(const std::vector<std::string>& args,
                const support::GlobalOptions& global) {
  if (args.size() < 3) usage();
  const ir::LoopKernel scalar = kernel_arg(args[2]);
  std::cout << ir::print(scalar) << '\n';
  // One manager for the whole target sweep: legality/dependence run once.
  xform::AnalysisManager analyses;
  const auto& legality = analyses.legality(scalar);
  if (legality.vectorizable) {
    std::cout << "vectorizable, max VF " << legality.max_vf
              << (legality.needs_runtime_check ? " (behind a runtime check)"
                                               : "")
              << "\n\n";
  } else {
    std::cout << "NOT vectorizable: " << legality.reasons_string() << "\n\n";
  }
  const xform::Pipeline pipeline = pipeline_arg(global);
  std::cout << "pipeline: " << pipeline.spec() << "\n\n";
  TextTable t({"target", "vf", "predicted", "measured"});
  for (const auto& target : machine::all_targets()) {
    const xform::PipelineResult vec = pipeline.run(scalar, target, analyses);
    if (!vec.ok) {
      t.add_row({target.name, "-", "-", "-"});
      continue;
    }
    const ir::LoopKernel& transformed = vec.state.kernel;
    // llvm_predict models widening; scalar-to-scalar pipelines (unroll,
    // reroll) have no widening prediction to show.
    const std::string pred =
        transformed.vf > 1
            ? TextTable::num(model::llvm_predict(scalar, transformed, target)
                                 .predicted_speedup)
            : "-";
    const double scalar_cycles =
        machine::measure_scalar_cycles(scalar, target, scalar.default_n);
    double meas;
    if (vec.state.runtime_check)
      meas = scalar_cycles / machine::measure_versioned_scalar_cycles(
                                 scalar, target, scalar.default_n);
    else if (transformed.vf > 1)
      meas = machine::measure_speedup(transformed, scalar, target,
                                      scalar.default_n);
    else
      meas = scalar_cycles / machine::measure_scalar_cycles(
                                 transformed, target, scalar.default_n);
    t.add_row({target.name, std::to_string(transformed.vf), pred,
               TextTable::num(meas)});
  }
  std::cout << t.to_string();
  return 0;
}

int cmd_measure(const std::vector<std::string>& args,
                const support::GlobalOptions& global) {
  const auto& target = target_arg(args, 2);
  eval::SuiteRequest request;
  request.pipeline = global.pipeline;  // "" = eval::kDefaultPipelineSpec
  const auto sm = eval::Session(target).measure(request).suite;
  eval::print_suite_overview(std::cout, sm);
  std::cout << '\n';
  const auto base = eval::experiment_baseline(sm);
  eval::print_model_comparison(std::cout, {base});
  std::cout << '\n';
  eval::print_scatter(std::cout, sm, base, 15);
  return 0;
}

int cmd_crosstarget(const std::vector<std::string>& args) {
  model::Fitter fitter = model::Fitter::NNLS;
  if (args.size() > 2) {
    if (args[2] == "l2") fitter = model::Fitter::L2;
    else if (args[2] == "nnls") fitter = model::Fitter::NNLS;
    else if (args[2] == "svr") fitter = model::Fitter::SVR;
    else throw Error("unknown fitter: " + args[2]);
  }
  analysis::FeatureSet set = analysis::FeatureSet::Rated;
  if (args.size() > 3) {
    if (args[3] == "counts") set = analysis::FeatureSet::Counts;
    else if (args[3] == "rated") set = analysis::FeatureSet::Rated;
    else if (args[3] == "extended") set = analysis::FeatureSet::Extended;
    else throw Error("unknown feature set: " + args[3]);
  }
  const eval::CrossTargetResult r = eval::experiment_crosstarget(
      fitter, set, eval::SessionOptions::from_environment());
  eval::print_crosstarget(std::cout, r);
  return 0;
}

int cmd_verify(const std::vector<std::string>& args) {
  const auto& target = target_arg(args, 2);
  eval::SessionOptions opts;
  opts.use_cache = false;  // nothing to cache: validation is the point
  eval::SuiteRequest request;
  request.validate_semantics = true;
  if (args.size() > 3) {
    const long n = std::strtol(args[3].c_str(), nullptr, 10);
    if (n <= 0) throw Error("verify expects a positive problem size, got '" +
                            args[3] + "'");
    request.validation_n = n;
  }
  const auto result = eval::Session(target, opts).measure(request);
  std::cout << "verified " << result.suite.kernels.size() << " kernels, "
            << result.validated_configurations
            << " scalar/vector configurations on " << target.name
            << ": all equivalent\n";
  return 0;
}

int cmd_train(const std::vector<std::string>& args) {
  const auto& target = target_arg(args, 2);
  model::Fitter fitter = model::Fitter::NNLS;
  if (args.size() > 3) {
    if (args[3] == "l2") fitter = model::Fitter::L2;
    else if (args[3] == "nnls") fitter = model::Fitter::NNLS;
    else if (args[3] == "svr") fitter = model::Fitter::SVR;
    else throw Error("unknown fitter: " + args[3]);
  }
  analysis::FeatureSet set = analysis::FeatureSet::Rated;
  if (args.size() > 4) {
    if (args[4] == "counts") set = analysis::FeatureSet::Counts;
    else if (args[4] == "rated") set = analysis::FeatureSet::Rated;
    else if (args[4] == "extended") set = analysis::FeatureSet::Extended;
    else throw Error("unknown feature set: " + args[4]);
  }
  const auto sm = eval::Session(target).measure().suite;
  const auto fit = eval::experiment_fit_speedup(sm, fitter, set);
  eval::print_weights(std::cout, fit.model);
  std::cout << '\n';
  eval::print_model_comparison(std::cout,
                               {eval::experiment_baseline(sm), fit.eval});
  if (args.size() > 5) {
    std::ofstream out(args[5]);
    if (!out) throw Error("cannot open " + args[5]);
    fit::save_model(out, fit.model.to_saved());
    std::cout << "\nsaved model to " << args[5] << '\n';
  }
  return 0;
}

int cmd_advise(const std::vector<std::string>& args) {
  const auto& target = target_arg(args, 2);
  const auto sm = eval::Session(target).measure().suite;
  const auto base = eval::experiment_baseline(sm);
  const auto fit = eval::experiment_fit_speedup(
      sm, model::Fitter::NNLS, analysis::FeatureSet::Rated, /*loocv=*/true);
  eval::print_model_comparison(std::cout, {base, fit.eval});
  std::cout << '\n';
  eval::print_decision_outcomes(std::cout, {base, fit.eval});
  return 0;
}

int cmd_select(const std::vector<std::string>& args) {
  if (args.size() < 3) usage();
  const ir::LoopKernel scalar = kernel_arg(args[2]);
  const auto& target = target_arg(args, 3);
  const auto sm = eval::Session(target).measure().suite;
  const auto fitted = model::fit_model(
      sm.design_matrix(analysis::FeatureSet::Rated), sm.measured_speedups(),
      model::Fitter::NNLS, analysis::FeatureSet::Rated);
  const model::TransformSelector selector(target, fitted);
  const auto r = selector.select(scalar, scalar.default_n);
  TextTable t({"option", "predicted speedup", "measured cycles", ""});
  for (std::size_t i = 0; i < r.options.size(); ++i) {
    const auto& o = r.options[i];
    std::string mark;
    if (i == r.chosen) mark += "<= chosen";
    if (i == r.best) mark += (mark.empty() ? "" : ", ") + std::string("oracle");
    t.add_row({o.label(), TextTable::num(o.predicted_speedup),
               TextTable::num(o.measured_cycles, 0), mark});
  }
  std::cout << t.to_string();
  std::cout << "regret: " << TextTable::num(r.regret()) << '\n';
  return 0;
}

int cmd_catalog(const std::vector<std::string>& args) {
  const auto& target = target_arg(args, 2);
  const auto sm = eval::Session(target).measure().suite;
  std::cout << "| kernel | category | vectorizable | VF | measured |\n";
  std::cout << "|---|---|---|---|---|\n";
  for (const auto& k : sm.kernels) {
    std::cout << "| " << k.name << " | " << k.category << " | "
              << (k.vectorizable ? "yes" : "no") << " | "
              << (k.vectorizable ? std::to_string(k.vf) : "-") << " | "
              << (k.vectorizable ? TextTable::num(k.measured_speedup) : "-")
              << " |\n";
  }
  return 0;
}

/// `veccost fuzz [target] [--seed N] [--iters N] [--corpus DIR]
/// [--corpus-out DIR] [--no-shrink] [--inject-fault] [--deep-nests]`.
/// Replays the corpus, then runs a seeded differential campaign
/// (testing::run_campaign); exits nonzero when anything diverges. `--iters 0`
/// is a pure corpus replay (the CI bench workflow's mode); `--inject-fault`
/// corrupts every widened kernel with the built-in demo fault to demonstrate
/// the catch+shrink path; `--deep-nests` extends the generator grammar to
/// 3- and 4-deep loop nests (the interchange/unrolljam/ollv pass surface).
int cmd_fuzz(std::vector<std::string> args,
             const support::GlobalOptions& global) {
  testing::CampaignOptions opts;
  opts.corpus_dir = "tests/corpus";  // replayed when present, else skipped
  if (!global.pipeline.empty()) {
    // "tuned" is the oracle's special per-kernel-autotuned spec, resolved
    // by the tuner inside the oracle — not parseable up front.
    opts.oracle.pipeline = global.pipeline == "tuned"
                               ? global.pipeline
                               : pipeline_arg(global).spec();
  }
  bool inject_fault = false;
  const auto int_flag = [&](std::vector<std::string>::iterator& it,
                            const char* flag) {
    if (std::next(it) == args.end())
      throw Error(std::string(flag) + " needs a value");
    it = args.erase(it);
    const long long v = std::strtoll(it->c_str(), nullptr, 10);
    it = args.erase(it);
    return v;
  };
  for (auto it = args.begin(); it != args.end();) {
    if (*it == "--seed") {
      opts.seed = static_cast<std::uint64_t>(int_flag(it, "--seed"));
    } else if (*it == "--iters") {
      opts.iters = int_flag(it, "--iters");
      if (opts.iters < 0) throw Error("--iters must be >= 0");
    } else if (*it == "--corpus") {
      if (std::next(it) == args.end()) throw Error("--corpus needs a value");
      it = args.erase(it);
      opts.corpus_dir = *it;
      it = args.erase(it);
    } else if (*it == "--corpus-out") {
      if (std::next(it) == args.end())
        throw Error("--corpus-out needs a value");
      it = args.erase(it);
      opts.corpus_out = *it;
      it = args.erase(it);
    } else if (*it == "--no-shrink") {
      opts.shrink = false;
      it = args.erase(it);
    } else if (*it == "--inject-fault") {
      inject_fault = true;
      it = args.erase(it);
    } else if (*it == "--deep-nests") {
      opts.generator.allow_deep_nests = true;
      it = args.erase(it);
    } else {
      ++it;
    }
  }
  if (inject_fault) opts.oracle.fault = testing::demo_lowering_fault();
  const auto& target = target_arg(args, 2);
  const auto report = testing::run_campaign(target, opts);
  std::cout << report.to_string() << '\n';
  return report.ok() ? 0 : 1;
}

/// `veccost tune [target] [--seed N] [--rounds N] [--beam N] [--mutations N]
/// [--epsilon X] [--kernels a,b,c] [--subset10] [--regret] [--no-fit]
/// [--out FILE] [--bench-out FILE]`. Runs the surrogate-guided pipeline
/// autotuner (docs/tuning.md) over the suite (or a kernel subset), prints
/// the per-kernel verdicts and the trajectory digest, and optionally writes
/// the byte-stable corpus CSV (--out) and the non-gating benchmark JSON
/// (--bench-out). The trajectory — and so the corpus and digest — is
/// bit-identical for every --jobs value.
int cmd_tune(std::vector<std::string> args,
             const support::GlobalOptions& /*global*/) {
  tune::TuneOptions opts;
  std::string out_file, bench_out;
  const auto value_flag = [&](std::vector<std::string>::iterator& it,
                              const char* flag) {
    if (std::next(it) == args.end())
      throw Error(std::string(flag) + " needs a value");
    it = args.erase(it);
    std::string v = *it;
    it = args.erase(it);
    return v;
  };
  for (auto it = args.begin(); it != args.end();) {
    if (*it == "--seed") {
      opts.seed = static_cast<std::uint64_t>(
          std::strtoull(value_flag(it, "--seed").c_str(), nullptr, 10));
    } else if (*it == "--rounds") {
      opts.rounds =
          static_cast<int>(std::strtol(value_flag(it, "--rounds").c_str(),
                                       nullptr, 10));
    } else if (*it == "--beam") {
      opts.beam_width = static_cast<int>(
          std::strtol(value_flag(it, "--beam").c_str(), nullptr, 10));
    } else if (*it == "--mutations") {
      opts.mutations = static_cast<int>(
          std::strtol(value_flag(it, "--mutations").c_str(), nullptr, 10));
    } else if (*it == "--epsilon") {
      opts.epsilon = std::strtod(value_flag(it, "--epsilon").c_str(), nullptr);
    } else if (*it == "--kernels") {
      std::istringstream list(value_flag(it, "--kernels"));
      for (std::string name; std::getline(list, name, ',');)
        if (!name.empty()) opts.kernels.push_back(name);
    } else if (*it == "--subset10") {
      opts.kernels = tune::default_subset();
      it = args.erase(it);
    } else if (*it == "--regret") {
      opts.compute_regret = true;
      it = args.erase(it);
    } else if (*it == "--no-fit") {
      opts.fit_surrogate = false;
      it = args.erase(it);
    } else if (*it == "--out") {
      out_file = value_flag(it, "--out");
    } else if (*it == "--bench-out") {
      bench_out = value_flag(it, "--bench-out");
    } else {
      ++it;
    }
  }
  if (opts.rounds < 0 || opts.beam_width < 1 || opts.mutations < 0)
    throw Error("tune: --rounds/--mutations must be >= 0, --beam >= 1");
  const auto& target = target_arg(args, 2);

  const auto t0 = std::chrono::steady_clock::now();
  const eval::Session session(target);
  const tune::TuneReport report = tune::tune_suite(session, opts);
  const double wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                t0)
          .count();

  TextTable t(opts.compute_regret
                  ? std::vector<std::string>{"kernel", "best spec", "vf",
                                             "speedup", "scored", "measured",
                                             "regret"}
                  : std::vector<std::string>{"kernel", "best spec", "vf",
                                             "speedup", "scored",
                                             "measured"});
  for (const tune::KernelTuneResult& r : report.kernels) {
    std::vector<std::string> row = {r.kernel, r.best_spec,
                                    std::to_string(r.best_vf),
                                    TextTable::num(r.best_speedup, 3),
                                    std::to_string(r.scored),
                                    std::to_string(r.measured)};
    if (opts.compute_regret)
      row.push_back(r.best_exhaustive > 0 ? TextTable::pct(r.regret) : "-");
    t.add_row(std::move(row));
  }
  std::cout << t.to_string();

  std::cout << "\nsurrogate: "
            << (report.calibrated ? "calibrated (fitted model)"
                                  : "baseline (uncalibrated)")
            << ", " << report.surrogate_queries << " fitted queries\n"
            << "candidates: " << report.scored << " scored, "
            << report.measured << " measured, " << report.rejected
            << " rejected, prune rate " << TextTable::pct(report.prune_rate())
            << '\n'
            << "spec cache: " << report.cache_hits << " hits, "
            << report.cache_misses << " misses\n";
  if (opts.compute_regret)
    std::cout << "regret vs exhaustive llv sweep (" << report.regret_kernels
              << " kernels, " << report.regret_measurements
              << " sweep measurements): mean "
              << TextTable::pct(report.mean_regret) << ", max "
              << TextTable::pct(report.max_regret) << '\n';
  std::cout << "digest: " << tune::digest_hex(report.digest) << '\n';

  if (!out_file.empty()) {
    tune::write_corpus(out_file, report);
    std::cout << "corpus: " << out_file << " (" << report.kernels.size()
              << " kernels)\n";
  }
  if (!bench_out.empty()) {
    support::Json doc = support::Json::object();
    doc.set("schema", "veccost-tune-bench-v1");
    doc.set("target", report.target_name);
    doc.set("seed", static_cast<std::int64_t>(report.seed));
    doc.set("kernels", report.kernels.size());
    doc.set("wall_ms", wall_ms);
    doc.set("scored", report.scored);
    doc.set("measured", report.measured);
    doc.set("rejected", report.rejected);
    doc.set("prune_rate", report.prune_rate());
    doc.set("cache_hits", report.cache_hits);
    doc.set("cache_misses", report.cache_misses);
    doc.set("surrogate_queries",
            static_cast<std::int64_t>(report.surrogate_queries));
    doc.set("calibrated", report.calibrated);
    doc.set("regret_kernels", report.regret_kernels);
    doc.set("regret_measurements", report.regret_measurements);
    doc.set("mean_regret", report.mean_regret);
    doc.set("max_regret", report.max_regret);
    doc.set("digest", tune::digest_hex(report.digest));
    std::ofstream out(bench_out, std::ios::binary | std::ios::trunc);
    if (!out) throw Error("tune: cannot write " + bench_out);
    out << doc.dump() << '\n';
    std::cout << "bench: " << bench_out << '\n';
  }
  return 0;
}

/// `veccost stats [--json] [target|metrics.json]`. With a .json argument,
/// render a previously saved metrics file (the round-trip path); otherwise
/// run one suite measurement with semantics validation so the pipeline AND
/// the execution engine populate the registry, then render the snapshot.
int cmd_stats(std::vector<std::string> args) {
  bool json = false;
  for (auto it = args.begin(); it != args.end();) {
    if (*it == "--json") {
      json = true;
      it = args.erase(it);
    } else {
      ++it;
    }
  }
  obs::Snapshot snapshot;
  const std::string arg = args.size() > 2 ? args[2] : "";
  if (arg.size() > 5 && arg.compare(arg.size() - 5, 5, ".json") == 0) {
    std::ifstream in(arg);
    if (!in) throw Error("cannot open " + arg);
    std::ostringstream text;
    text << in.rdbuf();
    snapshot = obs::snapshot_from_json(text.str());
  } else {
    const auto& target = target_arg(args, 2);
    // Validation executes every kernel through the lowered engine, so the
    // snapshot includes the engine/dispatch counters (fused_ops,
    // superop_ratio, batch_sweeps, strip/interchange runs) — measurement
    // alone is analytic and would leave them empty.
    eval::SuiteRequest request;
    request.validate_semantics = true;
    (void)eval::Session(target).measure(request);
    snapshot = obs::Registry::global().snapshot();
  }
  if (json)
    obs::write_metrics_json(std::cout, snapshot);
  else
    std::cout << obs::metrics_table(snapshot);
  return 0;
}

/// `veccost passes [--json] [spec]`. Lists the registered transform passes
/// (--json emits the machine-readable catalog, parameter kinds included),
/// then — when a spec was given positionally or via --pipeline — validates
/// it, pointing a caret at the offending character on a parse error.
int cmd_passes(const std::vector<std::string>& args,
               const support::GlobalOptions& global) {
  std::vector<std::string> rest;
  bool json = false;
  for (std::size_t i = 2; i < args.size(); ++i) {
    if (args[i] == "--json")
      json = true;
    else
      rest.push_back(args[i]);
  }
  if (json) {
    // param_kind: "none", "int" (<N>), "int|vl" (<N> or the vl keyword),
    // "level-pair" (<a,b>, adjacent nest depth levels).
    std::cout << "[\n";
    bool first = true;
    for (const auto& info : xform::pass_catalog()) {
      const char* kind = !info.has_param ? "none"
                         : info.has_param2 ? "level-pair"
                         : info.accepts_vl ? "int|vl"
                                           : "int";
      if (!first) std::cout << ",\n";
      first = false;
      std::cout << "  {\"name\": \"" << info.name << "\", \"synopsis\": \""
                << info.synopsis << "\", \"summary\": \"" << info.summary
                << "\", \"param_kind\": \"" << kind
                << "\", \"param_required\": "
                << (info.param_required ? "true" : "false")
                << ", \"min_param\": " << info.min_param << "}";
    }
    std::cout << "\n]\n";
    return 0;
  }
  TextTable t({"pass", "spec", "summary"});
  for (const auto& info : xform::pass_catalog())
    t.add_row({std::string(info.name), std::string(info.synopsis),
               std::string(info.summary)});
  std::cout << t.to_string();
  const std::string spec = !rest.empty() ? rest[0] : global.pipeline;
  if (spec.empty()) {
    std::cout << "\npipelines are comma-separated pass specs, e.g. "
                 "\"unroll<4>,slp,reroll\"\n";
    return 0;
  }
  const xform::Pipeline pipeline = xform::Pipeline::parse(spec);
  if (!pipeline.valid()) {
    std::cout << "\ninvalid pipeline " << pipeline.error() << "\n  " << spec
              << "\n  " << std::string(pipeline.error_position(), ' ')
              << "^\n";
    return 1;
  }
  std::cout << "\nvalid pipeline, " << pipeline.size()
            << (pipeline.size() == 1 ? " pass" : " passes")
            << ", canonical spec: " << pipeline.spec() << '\n';
  return 0;
}

/// `veccost serve [--port N] [--queue-limit N] [--batch-max N]
/// [--deadline-ms N] [--cache-dir DIR] [--inject-fault]
/// [--inject-delay-ms N]`. Runs the veccost-serve-v1 daemon (docs/serving.md)
/// until a client sends the `shutdown` verb. The global --pipeline flag
/// becomes the default pipeline for requests that carry none; a malformed
/// spec makes the daemon refuse to start with the caret-positioned parse
/// error. --inject-fault / --inject-delay-ms wire the fuzz subsystem's demo
/// lowering fault and per-request latency into the service (test rigs only).
int cmd_serve(const std::vector<std::string>& args,
              const support::GlobalOptions& global) {
  serve::ServeOptions opts;
  opts.service.default_pipeline = global.pipeline;
  for (std::size_t i = 2; i < args.size(); ++i) {
    const auto int_flag = [&](const char* flag) {
      if (i + 1 >= args.size())
        throw Error(std::string(flag) + " needs a value");
      return std::strtoll(args[++i].c_str(), nullptr, 10);
    };
    const std::string& a = args[i];
    if (a == "--port")
      opts.port = static_cast<std::uint16_t>(int_flag("--port"));
    else if (a == "--queue-limit")
      opts.queue_limit = static_cast<std::size_t>(int_flag("--queue-limit"));
    else if (a == "--batch-max")
      opts.batch_max = static_cast<std::size_t>(int_flag("--batch-max"));
    else if (a == "--deadline-ms")
      opts.default_deadline_ms = int_flag("--deadline-ms");
    else if (a == "--inject-delay-ms")
      opts.service.fault.delay_ms = int_flag("--inject-delay-ms");
    else if (a == "--inject-fault")
      opts.service.fault.mutate = testing::demo_lowering_fault();
    else if (a == "--cache-dir") {
      if (i + 1 >= args.size()) throw Error("--cache-dir needs a value");
      opts.service.cache_dir = args[++i];
    } else {
      usage();
    }
  }
  serve::Server server(std::move(opts));
  server.start();
  // The port line is the daemon's readiness handshake: scripts wait for it,
  // then connect. Flush so a pipe reader sees it immediately.
  std::cout << "serving on port " << server.port() << std::endl;
  server.wait();
  std::cout << "serve: stopped\n";
  return 0;
}

void write_outputs(const support::GlobalOptions& opts) {
  if (!opts.metrics_out.empty()) {
    std::ofstream out(opts.metrics_out);
    if (!out) throw Error("cannot open " + opts.metrics_out);
    obs::write_metrics_json(out, obs::Registry::global().snapshot());
  }
  if (!opts.trace_out.empty()) {
    std::ofstream out(opts.trace_out);
    if (!out) throw Error("cannot open " + opts.trace_out);
    obs::write_trace_json(out, obs::Registry::global().trace_events());
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    std::vector<std::string> args(argv, argv + argc);
    const support::GlobalOptions opts = support::parse_global_flags(args);
    if (opts.jobs > 0) set_default_parallelism(opts.jobs);
    eval::set_measurement_cache_enabled(opts.use_cache);
    obs::Registry::global().set_enabled(opts.metrics);
    if (args.size() < 2) usage();
    const std::string& cmd = args[1];
    int rc = 2;
    if (cmd == "list") rc = cmd_list();
    else if (cmd == "targets") rc = cmd_targets(args);
    else if (cmd == "explore") rc = cmd_explore(args, opts);
    else if (cmd == "measure") rc = cmd_measure(args, opts);
    else if (cmd == "crosstarget") rc = cmd_crosstarget(args);
    else if (cmd == "verify") rc = cmd_verify(args);
    else if (cmd == "train") rc = cmd_train(args);
    else if (cmd == "advise") rc = cmd_advise(args);
    else if (cmd == "select") rc = cmd_select(args);
    else if (cmd == "catalog") rc = cmd_catalog(args);
    else if (cmd == "fuzz") rc = cmd_fuzz(args, opts);
    else if (cmd == "tune") rc = cmd_tune(args, opts);
    else if (cmd == "stats") rc = cmd_stats(args);
    else if (cmd == "passes") rc = cmd_passes(args, opts);
    else if (cmd == "serve") rc = cmd_serve(args, opts);
    else usage();
    write_outputs(opts);
    return rc;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
