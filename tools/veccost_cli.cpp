// veccost — the single-binary command-line interface.
//
//   veccost list                                 list TSVC kernels
//   veccost targets                              list machine models
//   veccost explore  <kernel|file> [target]      IR, features, legality, speedups
//   veccost measure  [target]                    suite measurement table
//   veccost verify   [target]                    engine semantics sweep
//   veccost train    [target] [fitter] [set] [out-file]
//   veccost advise   [target] [kernel...]        decisions vs oracle
//   veccost select   <kernel> [target]           transform options + pick
//   veccost catalog  [target]                    markdown kernel catalog
//
// Everything the example binaries do, behind one verb-style entry point.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/legality.hpp"
#include "costmodel/llvm_model.hpp"
#include "costmodel/selector.hpp"
#include "costmodel/trainer.hpp"
#include "eval/experiments.hpp"
#include "eval/parallel_runner.hpp"
#include "eval/report.hpp"
#include "fit/model_io.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "machine/perf_model.hpp"
#include "machine/targets.hpp"
#include "support/error.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"
#include "tsvc/kernel.hpp"
#include "vectorizer/loop_vectorizer.hpp"

namespace {

using namespace veccost;

[[noreturn]] void usage() {
  std::cerr <<
      R"(veccost — learned cost models for auto-vectorization

usage:
  veccost list
  veccost targets
  veccost explore <kernel|file.vc> [target]
  veccost measure [target]
  veccost verify  [target] [n]
  veccost train   [target] [l2|nnls|svr] [counts|rated|extended] [out-file]
  veccost advise  [target]
  veccost select  <kernel> [target]
  veccost catalog [target]

global flags:
  --jobs N     measurement/training parallelism (default: all hardware
               threads; also VECCOST_JOBS)
  --no-cache   ignore and do not update results/cache/ (also
               VECCOST_NO_CACHE=1)
)";
  std::exit(2);
}

/// Strip `--jobs N` / `--jobs=N` / `--no-cache` from anywhere in the
/// argument list, applying them process-wide.
std::vector<std::string> parse_global_flags(std::vector<std::string> args) {
  std::vector<std::string> rest;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    std::string jobs_value;
    if (a == "--jobs") {
      if (i + 1 >= args.size()) throw Error("--jobs requires a count");
      jobs_value = args[++i];
    } else if (a.rfind("--jobs=", 0) == 0) {
      jobs_value = a.substr(7);
    } else if (a == "--no-cache") {
      eval::set_measurement_cache_enabled(false);
      continue;
    } else {
      rest.push_back(a);
      continue;
    }
    const long n = std::strtol(jobs_value.c_str(), nullptr, 10);
    if (n <= 0) throw Error("--jobs expects a positive count, got '" +
                            jobs_value + "'");
    set_default_parallelism(static_cast<std::size_t>(n));
  }
  return rest;
}

const machine::TargetDesc& target_arg(const std::vector<std::string>& args,
                                      std::size_t index) {
  return machine::target_by_name(args.size() > index ? args[index]
                                                     : "cortex-a57");
}

ir::LoopKernel kernel_arg(const std::string& name) {
  if (const auto* info = tsvc::find_kernel(name)) return info->build();
  std::ifstream file(name);
  if (!file) throw Error("'" + name + "' is neither a TSVC kernel nor a file");
  std::ostringstream text;
  text << file.rdbuf();
  return ir::parse_kernel(text.str());
}

int cmd_list() {
  TextTable t({"kernel", "category", "description"});
  for (const auto& info : tsvc::suite())
    t.add_row({info.name, info.category, info.description});
  std::cout << t.to_string();
  return 0;
}

int cmd_targets() {
  TextTable t({"target", "vector bits", "issue", "gather", "masked stores"});
  for (const auto& desc : machine::all_targets())
    t.add_row({desc.name, std::to_string(desc.vector_bits),
               std::to_string(desc.issue_width), desc.hw_gather ? "hw" : "emul",
               desc.hw_masked_store ? "hw" : "emul"});
  std::cout << t.to_string();
  return 0;
}

int cmd_explore(const std::vector<std::string>& args) {
  if (args.size() < 3) usage();
  const ir::LoopKernel scalar = kernel_arg(args[2]);
  std::cout << ir::print(scalar) << '\n';
  const auto legality = analysis::check_legality(scalar);
  if (legality.vectorizable) {
    std::cout << "vectorizable, max VF " << legality.max_vf
              << (legality.needs_runtime_check ? " (behind a runtime check)"
                                               : "")
              << "\n\n";
  } else {
    std::cout << "NOT vectorizable: " << legality.reasons_string() << "\n\n";
  }
  TextTable t({"target", "vf", "predicted", "measured"});
  for (const auto& target : machine::all_targets()) {
    const auto vec = vectorizer::vectorize_loop(scalar, target);
    if (!vec.ok) {
      t.add_row({target.name, "-", "-", "-"});
      continue;
    }
    const double pred =
        model::llvm_predict(scalar, vec.kernel, target).predicted_speedup;
    const double meas =
        vec.runtime_check
            ? machine::measure_scalar_cycles(scalar, target, scalar.default_n) /
                  machine::measure_versioned_scalar_cycles(scalar, target,
                                                           scalar.default_n)
            : machine::measure_speedup(vec.kernel, scalar, target,
                                       scalar.default_n);
    t.add_row({target.name, std::to_string(vec.vf), TextTable::num(pred),
               TextTable::num(meas)});
  }
  std::cout << t.to_string();
  return 0;
}

int cmd_measure(const std::vector<std::string>& args) {
  const auto& target = target_arg(args, 2);
  const auto sm = eval::measure_suite_cached(target);
  eval::print_suite_overview(std::cout, sm);
  std::cout << '\n';
  const auto base = eval::experiment_baseline(sm);
  eval::print_model_comparison(std::cout, {base});
  std::cout << '\n';
  eval::print_scatter(std::cout, sm, base, 15);
  return 0;
}

int cmd_verify(const std::vector<std::string>& args) {
  const auto& target = target_arg(args, 2);
  eval::RunnerOptions opts;
  opts.use_cache = false;  // nothing to cache: validation is the point
  opts.validate_semantics = true;
  if (args.size() > 3) {
    const long n = std::strtol(args[3].c_str(), nullptr, 10);
    if (n <= 0) throw Error("verify expects a positive problem size, got '" +
                            args[3] + "'");
    opts.validation_n = n;
  }
  eval::ParallelRunner runner(opts);
  (void)runner.measure_suite(target);
  std::cout << "verified " << tsvc::suite().size() << " kernels, "
            << runner.validated_configurations()
            << " scalar/vector configurations on " << target.name
            << ": all equivalent\n";
  return 0;
}

int cmd_train(const std::vector<std::string>& args) {
  const auto& target = target_arg(args, 2);
  model::Fitter fitter = model::Fitter::NNLS;
  if (args.size() > 3) {
    if (args[3] == "l2") fitter = model::Fitter::L2;
    else if (args[3] == "nnls") fitter = model::Fitter::NNLS;
    else if (args[3] == "svr") fitter = model::Fitter::SVR;
    else throw Error("unknown fitter: " + args[3]);
  }
  analysis::FeatureSet set = analysis::FeatureSet::Rated;
  if (args.size() > 4) {
    if (args[4] == "counts") set = analysis::FeatureSet::Counts;
    else if (args[4] == "rated") set = analysis::FeatureSet::Rated;
    else if (args[4] == "extended") set = analysis::FeatureSet::Extended;
    else throw Error("unknown feature set: " + args[4]);
  }
  const auto sm = eval::measure_suite_cached(target);
  const auto fit = eval::experiment_fit_speedup(sm, fitter, set);
  eval::print_weights(std::cout, fit.model);
  std::cout << '\n';
  eval::print_model_comparison(std::cout,
                               {eval::experiment_baseline(sm), fit.eval});
  if (args.size() > 5) {
    std::ofstream out(args[5]);
    if (!out) throw Error("cannot open " + args[5]);
    fit::save_model(out, fit.model.to_saved());
    std::cout << "\nsaved model to " << args[5] << '\n';
  }
  return 0;
}

int cmd_advise(const std::vector<std::string>& args) {
  const auto& target = target_arg(args, 2);
  const auto sm = eval::measure_suite_cached(target);
  const auto base = eval::experiment_baseline(sm);
  const auto fit = eval::experiment_fit_speedup(
      sm, model::Fitter::NNLS, analysis::FeatureSet::Rated, /*loocv=*/true);
  eval::print_model_comparison(std::cout, {base, fit.eval});
  std::cout << '\n';
  eval::print_decision_outcomes(std::cout, {base, fit.eval});
  return 0;
}

int cmd_select(const std::vector<std::string>& args) {
  if (args.size() < 3) usage();
  const ir::LoopKernel scalar = kernel_arg(args[2]);
  const auto& target = target_arg(args, 3);
  const auto sm = eval::measure_suite_cached(target);
  const auto fitted = model::fit_model(
      sm.design_matrix(analysis::FeatureSet::Rated), sm.measured_speedups(),
      model::Fitter::NNLS, analysis::FeatureSet::Rated);
  const model::TransformSelector selector(target, fitted);
  const auto r = selector.select(scalar, scalar.default_n);
  TextTable t({"option", "predicted speedup", "measured cycles", ""});
  for (std::size_t i = 0; i < r.options.size(); ++i) {
    const auto& o = r.options[i];
    std::string mark;
    if (i == r.chosen) mark += "<= chosen";
    if (i == r.best) mark += (mark.empty() ? "" : ", ") + std::string("oracle");
    t.add_row({o.label(), TextTable::num(o.predicted_speedup),
               TextTable::num(o.measured_cycles, 0), mark});
  }
  std::cout << t.to_string();
  std::cout << "regret: " << TextTable::num(r.regret()) << '\n';
  return 0;
}

int cmd_catalog(const std::vector<std::string>& args) {
  const auto& target = target_arg(args, 2);
  const auto sm = eval::measure_suite_cached(target);
  std::cout << "| kernel | category | vectorizable | VF | measured |\n";
  std::cout << "|---|---|---|---|---|\n";
  for (const auto& k : sm.kernels) {
    std::cout << "| " << k.name << " | " << k.category << " | "
              << (k.vectorizable ? "yes" : "no") << " | "
              << (k.vectorizable ? std::to_string(k.vf) : "-") << " | "
              << (k.vectorizable ? TextTable::num(k.measured_speedup) : "-")
              << " |\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const std::vector<std::string> args =
        parse_global_flags({argv, argv + argc});
    if (args.size() < 2) usage();
    const std::string& cmd = args[1];
    if (cmd == "list") return cmd_list();
    if (cmd == "targets") return cmd_targets();
    if (cmd == "explore") return cmd_explore(args);
    if (cmd == "measure") return cmd_measure(args);
    if (cmd == "verify") return cmd_verify(args);
    if (cmd == "train") return cmd_train(args);
    if (cmd == "advise") return cmd_advise(args);
    if (cmd == "select") return cmd_select(args);
    if (cmd == "catalog") return cmd_catalog(args);
    usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
