// veccost_loadgen — deterministic load generator for `veccost serve`.
//
//   veccost_loadgen --port N [--requests N] [--jobs N] [--seed N]
//                   [--target NAME] [--deadline-ms N] [--out FILE]
//                   [--shutdown] [--expect-all-ok]
//
// Replays the seeded veccost-serve-v1 request stream (serve/loadgen.hpp)
// against a running daemon and prints the request digest plus latency
// percentiles. The digest is a pure function of (seed, requests) and the
// daemon's answers — the same stream run with --jobs 1 and --jobs 8 must
// print the same digest, which CI checks.
//
//   --out FILE       also write the veccost-serve-bench-v1 document
//                    (bench/BENCH_serve.json's schema)
//   --shutdown       send a shutdown request after the stream completes
//   --expect-all-ok  exit nonzero unless every response was ok (CI smoke)
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "serve/loadgen.hpp"
#include "support/error.hpp"

namespace {

using namespace veccost;

[[noreturn]] void usage() {
  std::cerr <<
      R"(usage: veccost_loadgen --port N [--requests N] [--jobs N] [--seed N]
                       [--target NAME] [--deadline-ms N] [--out FILE]
                       [--shutdown] [--expect-all-ok]
)";
  std::exit(2);
}

long long int_flag(const std::vector<std::string>& args, std::size_t& i,
                   const char* flag) {
  if (i + 1 >= args.size()) throw Error(std::string(flag) + " needs a value");
  return std::strtoll(args[++i].c_str(), nullptr, 10);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const std::vector<std::string> args(argv, argv + argc);
    serve::LoadgenOptions opts;
    std::string out_file;
    bool shutdown = false;
    bool expect_all_ok = false;
    for (std::size_t i = 1; i < args.size(); ++i) {
      const std::string& a = args[i];
      if (a == "--port")
        opts.port = static_cast<std::uint16_t>(int_flag(args, i, "--port"));
      else if (a == "--requests")
        opts.requests = int_flag(args, i, "--requests");
      else if (a == "--jobs")
        opts.jobs = static_cast<std::size_t>(int_flag(args, i, "--jobs"));
      else if (a == "--seed")
        opts.seed = static_cast<std::uint64_t>(int_flag(args, i, "--seed"));
      else if (a == "--deadline-ms")
        opts.deadline_ms = int_flag(args, i, "--deadline-ms");
      else if (a == "--target") {
        if (i + 1 >= args.size()) throw Error("--target needs a value");
        opts.target = args[++i];
      } else if (a == "--out") {
        if (i + 1 >= args.size()) throw Error("--out needs a value");
        out_file = args[++i];
      } else if (a == "--shutdown")
        shutdown = true;
      else if (a == "--expect-all-ok")
        expect_all_ok = true;
      else
        usage();
    }
    if (opts.port == 0) usage();

    const serve::LoadReport report = serve::run_loadgen(opts);
    const std::string doc = serve::bench_json(opts, report);
    std::cout << doc;
    if (!out_file.empty()) {
      std::ofstream out(out_file);
      if (!out) throw Error("cannot open " + out_file);
      out << doc;
    }
    if (shutdown && !serve::request_shutdown(opts.port))
      std::cerr << "warning: shutdown request was not acknowledged\n";
    if (expect_all_ok && !report.all_ok()) {
      std::cerr << "error: " << report.errors << " error responses, "
                << report.transport_failures << " transport failures\n";
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
