#!/usr/bin/env python3
"""Compare a fresh veccost-serve-bench-v1 run against the committed baseline.

Usage: compare_serve_bench.py CURRENT.json BASELINE.json

Non-gating by design (always exits 0): latency on shared CI hardware is
informational, so regressions beyond the threshold are printed as warnings
for review, mirroring tools/run_benches.py. Two findings are highlighted
louder than latency drift because they mean the daemon answered
*differently*, not just slower:

  * a request digest mismatch — same seed, same stream, different answers;
  * any error / transport-failure count that the baseline did not have.
"""

import json
import sys

LATENCY_REGRESSION_THRESHOLD = 0.25  # warn above +25% vs baseline


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 0
    try:
        with open(sys.argv[1]) as f:
            current = json.load(f)
        with open(sys.argv[2]) as f:
            baseline = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"WARNING: serve bench comparison skipped: {e}")
        return 0

    for doc, name in ((current, sys.argv[1]), (baseline, sys.argv[2])):
        if doc.get("schema") != "veccost-serve-bench-v1":
            print(f"WARNING: {name} is not a veccost-serve-bench-v1 document")
            return 0

    comparable = (current.get("requests"), current.get("seed")) == (
        baseline.get("requests"),
        baseline.get("seed"),
    )
    if not comparable:
        print(
            "WARNING: different stream "
            f"(requests/seed {current.get('requests')}/{current.get('seed')} "
            f"vs {baseline.get('requests')}/{baseline.get('seed')}); "
            "digest not compared"
        )
    elif current.get("digest") != baseline.get("digest"):
        print(
            "WARNING: DIGEST MISMATCH — the daemon answered this stream "
            f"differently than the baseline ({current.get('digest')} vs "
            f"{baseline.get('digest')}). This is a determinism break, not a "
            "performance change."
        )
    else:
        print(f"digest matches baseline: {current.get('digest')}")

    for field in ("errors", "transport_failures"):
        if current.get(field, 0) > baseline.get(field, 0):
            print(
                f"WARNING: {field} rose to {current.get(field)} "
                f"(baseline {baseline.get(field, 0)})"
            )

    cur_lat = current.get("latency_us", {})
    base_lat = baseline.get("latency_us", {})
    for field in ("mean", "p50", "p95", "p99"):
        cur = cur_lat.get(field)
        base = base_lat.get(field)
        if cur is None or not base:
            continue
        ratio = cur / base
        marker = ""
        if ratio > 1.0 + LATENCY_REGRESSION_THRESHOLD:
            marker = f"  WARNING: regression beyond +{LATENCY_REGRESSION_THRESHOLD:.0%}"
        print(f"latency_us.{field}: {cur:.3f} vs baseline {base:.3f} "
              f"({ratio:.2f}x baseline){marker}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
