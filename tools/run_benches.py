#!/usr/bin/env python3
"""Run the veccost performance benchmarks and emit BENCH_veccost.json.

Collects three things into one machine-readable artifact:

  * every google-benchmark timer from bench/micro_machine and bench/micro_fit
    (name -> ns per operation, real time);
  * the cold full-suite wall time of `veccost verify` (which executes every
    TSVC kernel scalar + vectorized with --no-cache semantics) under both the
    lowered engine and the reference interpreter, best of --repeats runs;
  * enough metadata (git revision, host) to compare artifacts across runs.

The artifact is informational, not gating: CI uploads it so regressions are
visible in review, but nothing fails on a slow run. A baseline captured on
the (noisy, 1-vCPU) development machine is committed at
bench/BENCH_veccost.json; expect +-25% jitter on such hosts and compare
trends, not single samples.

With --baseline (typically the committed bench/BENCH_veccost.json), every
timer is compared against the baseline artifact and regressions beyond
--regression-threshold (default 25%, about the jitter floor of shared CI
hosts) are printed as warnings. Warnings never change the exit code.

Usage:
  tools/run_benches.py [--build-dir build] [--out BENCH_veccost.json]
                       [--min-time 0.1] [--repeats 3]
                       [--baseline bench/BENCH_veccost.json]
                       [--regression-threshold 0.25]
"""

import argparse
import json
import os
import platform
import subprocess
import sys
import time

MICRO_BENCHES = ("bench/micro_machine", "bench/micro_fit",
                 "bench/micro_pipeline", "bench/micro_tune",
                 "bench/micro_nest")


def run_google_benchmark(binary, min_time):
    """Run one google-benchmark binary, return {name: ns_per_op}."""
    cmd = [
        binary,
        f"--benchmark_min_time={min_time}",
        "--benchmark_format=json",
    ]
    out = subprocess.run(cmd, check=True, capture_output=True, text=True)
    report = json.loads(out.stdout)
    results = {}
    for b in report.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        # google-benchmark reports real_time in the unit it chose; normalize.
        unit = b.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
        results[b["name"]] = b["real_time"] * scale
    return results


def time_cold_suite(veccost, env_extra, repeats):
    """Best-of-N wall time (ms) of a cold `veccost verify` full-suite run."""
    env = dict(os.environ)
    env.update(env_extra)
    best = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        subprocess.run([veccost, "verify"], check=True, env=env,
                       capture_output=True)
        elapsed_ms = (time.perf_counter() - t0) * 1e3
        best = elapsed_ms if best is None else min(best, elapsed_ms)
    return best


def warn_regressions(artifact, baseline_path, threshold):
    """Print non-gating warnings for timers slower than the baseline.

    Returns the number of warnings. Missing/new timers and a missing or
    unreadable baseline are reported but never treated as regressions.
    """
    try:
        with open(baseline_path) as f:
            baseline = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"baseline {baseline_path} unusable ({e}) — skipping comparison",
              file=sys.stderr)
        return 0
    if baseline.get("schema") != artifact["schema"]:
        print(f"baseline schema {baseline.get('schema')!r} != "
              f"{artifact['schema']!r} — skipping comparison", file=sys.stderr)
        return 0

    warnings = 0

    def compare(unit, current, base):
        nonlocal warnings
        for name, now in sorted(current.items()):
            then = base.get(name)
            if then is None:
                # Symmetric with the baseline-only case below: a timer with
                # no baseline entry means the committed baseline is stale —
                # the comparison silently loses coverage until it is
                # regenerated, so it counts as a warning too.
                print(f"  WARNING: {name} has no baseline entry "
                      f"(new benchmark? regenerate the baseline)")
                warnings += 1
                continue
            if then > 0 and now > then * (1 + threshold):
                print(f"  WARNING: {name} regressed "
                      f"{now / then - 1:+.0%} ({then:.1f} -> {now:.1f} {unit})")
                warnings += 1
        # A baseline timer absent from this run usually means a benchmark was
        # renamed or dropped — a silent coverage loss, not a perf regression.
        for name in sorted(set(base) - set(current)):
            print(f"  WARNING: {name} is in the baseline but missing from "
                  f"this run (renamed or removed benchmark?)")
            warnings += 1

    print(f"comparing against {baseline_path} "
          f"(threshold {threshold:.0%}, informational only):")
    compare("ns/op", artifact["benchmarks_ns_per_op"],
            baseline.get("benchmarks_ns_per_op", {}))
    compare("ms", artifact["suite_cold_run_ms"],
            baseline.get("suite_cold_run_ms", {}))
    if warnings:
        print(f"  {warnings} regression warning(s) — non-gating; expect "
              f"+-{threshold:.0%} jitter on shared hosts, compare trends")
    else:
        print("  no regressions beyond threshold")
    return warnings


def git_revision():
    try:
        out = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                             capture_output=True, text=True, check=True)
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", default="build")
    ap.add_argument("--out", default="BENCH_veccost.json")
    ap.add_argument("--min-time", default="0.1",
                    help="google-benchmark --benchmark_min_time")
    ap.add_argument("--repeats", type=int, default=3,
                    help="cold-suite runs per executor (best is kept)")
    ap.add_argument("--baseline", default=None,
                    help="prior BENCH_veccost.json to diff against "
                         "(warnings only, never fails)")
    ap.add_argument("--regression-threshold", type=float, default=0.25,
                    help="fractional slowdown that triggers a warning")
    args = ap.parse_args()

    benchmarks = {}
    for rel in MICRO_BENCHES:
        binary = os.path.join(args.build_dir, rel)
        if not os.path.exists(binary):
            print(f"missing {binary} — build it first "
                  f"(cmake --build {args.build_dir})", file=sys.stderr)
            return 1
        print(f"running {rel} ...", flush=True)
        benchmarks.update(run_google_benchmark(binary, args.min_time))

    veccost = os.path.join(args.build_dir, "tools", "veccost")
    suite_cold_ms = {}
    if os.path.exists(veccost):
        print("timing cold full-suite verify (lowered engine) ...", flush=True)
        suite_cold_ms["lowered"] = time_cold_suite(veccost, {}, args.repeats)
        print("timing cold full-suite verify (reference interpreter) ...",
              flush=True)
        suite_cold_ms["reference"] = time_cold_suite(
            veccost, {"VECCOST_REFERENCE_EXECUTOR": "1"}, args.repeats)
    else:
        print(f"missing {veccost} — skipping suite cold-run timing",
              file=sys.stderr)

    artifact = {
        "schema": "veccost-bench-v1",
        "git": git_revision(),
        "host": {
            "machine": platform.machine(),
            "system": platform.system(),
            "processor": platform.processor(),
        },
        "benchmarks_ns_per_op": dict(sorted(benchmarks.items())),
        "suite_cold_run_ms": suite_cold_ms,
    }
    with open(args.out, "w") as f:
        json.dump(artifact, f, indent=2)
        f.write("\n")
    print(f"wrote {args.out}: {len(benchmarks)} timers, "
          f"suite cold-run {suite_cold_ms or 'skipped'}")
    if args.baseline:
        warn_regressions(artifact, args.baseline, args.regression_threshold)
    return 0


if __name__ == "__main__":
    sys.exit(main())
