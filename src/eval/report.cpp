#include "eval/report.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

#include "support/csv.hpp"
#include "support/table.hpp"

namespace veccost::eval {

void print_suite_overview(std::ostream& os, const SuiteMeasurement& sm) {
  std::map<std::string, std::pair<int, int>> per_category;  // vec, total
  for (const auto& k : sm.kernels) {
    auto& [vec, total] = per_category[k.category];
    ++total;
    if (k.vectorizable) ++vec;
  }
  TextTable t({"category", "vectorized", "total"});
  int vec_total = 0;
  for (const auto& [cat, counts] : per_category) {
    t.add_row({cat, std::to_string(counts.first), std::to_string(counts.second)});
    vec_total += counts.first;
  }
  t.add_row({"ALL", std::to_string(vec_total), std::to_string(sm.kernels.size())});
  os << "suite overview on " << sm.target_name << ":\n" << t.to_string();
}

void print_model_comparison(std::ostream& os, const std::vector<ModelEval>& evals) {
  TextTable t({"model", "pearson", "spearman", "rmse", "TP", "TN", "FP", "FN",
               "accuracy"});
  for (const auto& e : evals) {
    t.add_row({e.label, TextTable::num(e.pearson), TextTable::num(e.spearman),
               TextTable::num(e.rmse), std::to_string(e.confusion.true_positive),
               std::to_string(e.confusion.true_negative),
               std::to_string(e.confusion.false_positive),
               std::to_string(e.confusion.false_negative),
               TextTable::pct(e.confusion.accuracy())});
  }
  os << t.to_string();
}

void print_scatter(std::ostream& os, const SuiteMeasurement& sm,
                   const ModelEval& eval, std::size_t limit, bool worst_first) {
  const Vector measured = sm.measured_speedups();
  const auto names = sm.dataset_names();
  std::vector<std::size_t> order(measured.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  if (worst_first) {
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return std::abs(eval.predictions[a] - measured[a]) >
             std::abs(eval.predictions[b] - measured[b]);
    });
  }
  TextTable t({"kernel", "predicted", "measured", "error", "decision"});
  for (std::size_t r = 0; r < std::min(limit, order.size()); ++r) {
    const std::size_t i = order[r];
    const bool pred_vec = eval.predictions[i] > 1.0;
    const bool good_vec = measured[i] > 1.0;
    const char* verdict = pred_vec == good_vec ? "ok"
                          : pred_vec           ? "FALSE-POS"
                                               : "FALSE-NEG";
    t.add_row({names[i], TextTable::num(eval.predictions[i]),
               TextTable::num(measured[i]),
               TextTable::num(eval.predictions[i] - measured[i]), verdict});
  }
  os << eval.label << " predicted vs measured"
     << (worst_first ? " (worst first)" : "") << ":\n"
     << t.to_string();
}

void print_weights(std::ostream& os, const model::LinearSpeedupModel& model) {
  const auto& names = analysis::feature_names(model.feature_set());
  TextTable t({"feature", "weight"});
  for (std::size_t i = 0; i < names.size(); ++i)
    t.add_row({names[i], TextTable::num(model.weights()[i], 4)});
  if (model.bias() != 0.0) t.add_row({"(bias)", TextTable::num(model.bias(), 4)});
  os << "fitted weights (" << model.fitter() << ", "
     << analysis::to_string(model.feature_set()) << "):\n"
     << t.to_string();
}

void print_decision_outcomes(std::ostream& os,
                             const std::vector<ModelEval>& evals) {
  TextTable t({"model", "cycles(model)", "cycles(scalar)", "cycles(oracle)",
               "efficiency"});
  for (const auto& e : evals) {
    t.add_row({e.label, TextTable::num(e.outcome.time_following_model, 0),
               TextTable::num(e.outcome.time_never_vectorize, 0),
               TextTable::num(e.outcome.time_oracle, 0),
               TextTable::pct(e.outcome.efficiency())});
  }
  os << t.to_string();
}

void write_scatter_csv(std::ostream& os, const SuiteMeasurement& sm,
                       const ModelEval& eval) {
  CsvWriter csv(os);
  csv.write_row({"kernel", "predicted", "measured"});
  const Vector measured = sm.measured_speedups();
  const auto names = sm.dataset_names();
  for (std::size_t i = 0; i < measured.size(); ++i)
    csv.write_row({names[i], CsvWriter::cell(eval.predictions[i]),
                   CsvWriter::cell(measured[i])});
}

void print_crosstarget(std::ostream& os, const CrossTargetResult& r) {
  os << "cross-target portfolio: " << model::to_string(r.fitter) << " / "
     << analysis::to_string(r.set) << " features, " << r.targets.size()
     << " targets\n\n";

  TextTable sizes({"target", "dataset rows", "fit pearson (diag)"});
  for (std::size_t i = 0; i < r.targets.size(); ++i)
    sizes.add_row({r.targets[i], std::to_string(r.dataset_sizes[i]),
                   TextTable::num(r.matrix[i][i].pearson)});
  os << sizes.to_string() << '\n';

  std::vector<std::string> header = {"fit \\ eval"};
  header.insert(header.end(), r.targets.begin(), r.targets.end());
  header.push_back("transfer");
  TextTable t(header);
  for (std::size_t i = 0; i < r.targets.size(); ++i) {
    std::vector<std::string> row = {r.targets[i]};
    for (std::size_t j = 0; j < r.targets.size(); ++j)
      row.push_back(TextTable::num(r.matrix[i][j].pearson));
    row.push_back(TextTable::num(r.transfer_accuracy(i)));
    t.add_row(row);
  }
  os << "weight-transfer pearson (row weights on column dataset):\n"
     << t.to_string();
}

}  // namespace veccost::eval
