// Experiment drivers: one function per figure family of the slides.
#pragma once

#include <string>

#include "costmodel/classifier.hpp"
#include "costmodel/trainer.hpp"
#include "eval/measurement.hpp"
#include "eval/session.hpp"

namespace veccost::eval {

/// Quality of one set of speedup predictions against the measured dataset.
struct ModelEval {
  std::string label;
  Vector predictions;  ///< aligned with SuiteMeasurement::dataset_indices()
  double pearson = 0;
  double spearman = 0;
  double rmse = 0;
  Confusion confusion;
  model::DecisionOutcome outcome;
};

[[nodiscard]] ModelEval evaluate_predictions(const SuiteMeasurement& sm,
                                             std::string label,
                                             Vector predictions);

/// Slide 4 / 17: the LLVM-style baseline cost model.
[[nodiscard]] ModelEval experiment_baseline(const SuiteMeasurement& sm);

struct FitExperiment {
  ModelEval eval;                    ///< in-sample (or LOOCV) prediction quality
  model::LinearSpeedupModel model;   ///< weights fitted on the full dataset
};

/// Slides 8/10/19: fit speedup directly. `loocv` evaluates with
/// leave-one-out predictions (slides 11/16) instead of in-sample ones.
[[nodiscard]] FitExperiment experiment_fit_speedup(const SuiteMeasurement& sm,
                                                   model::Fitter fitter,
                                                   analysis::FeatureSet set,
                                                   bool loocv = false);

/// Slide 18: fit the vector block cost instead, then derive speedup as
/// scalar_cost * VF / predicted_cost.
[[nodiscard]] FitExperiment experiment_fit_cost(const SuiteMeasurement& sm,
                                                model::Fitter fitter,
                                                analysis::FeatureSet set,
                                                bool loocv = false);

/// Slide 15: LLV vs SLP, predicted and measured, for one kernel.
struct LlvVsSlpResult {
  std::string kernel;
  bool llv_ok = false, slp_ok = false;
  double llv_predicted = 0, llv_measured = 0;
  double slp_predicted = 0, slp_measured = 0;
};

[[nodiscard]] LlvVsSlpResult experiment_llv_vs_slp(const std::string& kernel_name,
                                                   const machine::TargetDesc& target);

/// Slide 12 summary: correlation, false predictions and decision-driven
/// execution time for baseline vs the fitted models.
struct SummaryRow {
  std::string model;
  double pearson = 0;
  std::size_t false_positive = 0;
  std::size_t false_negative = 0;
  double exec_cycles = 0;   ///< total cycles following the model's decisions
  double efficiency = 0;    ///< fraction of oracle gain captured
};

[[nodiscard]] std::vector<SummaryRow> experiment_summary(const SuiteMeasurement& sm);

/// One cell of the cross-target transfer matrix: how well the model fitted
/// on the row's target predicts the column target's measured speedups.
struct CrossTargetCell {
  double pearson = 0;
  double rmse = 0;
};

/// The multi-target portfolio result (`veccost crosstarget`,
/// results/fig_crosstarget.txt): one linear model per catalog target plus
/// the full fit-on-A/predict-B transfer-accuracy matrix. Features are
/// computed from the scalar kernel, so a row of target A's design matrix is
/// comparable to target B's — what transfers (or fails to) is the weights.
struct CrossTargetResult {
  model::Fitter fitter = model::Fitter::NNLS;
  analysis::FeatureSet set = analysis::FeatureSet::Rated;
  std::vector<std::string> targets;              ///< catalog order
  std::vector<std::size_t> dataset_sizes;        ///< vectorizable rows per target
  std::vector<model::LinearSpeedupModel> models; ///< fitted per target
  std::vector<std::vector<CrossTargetCell>> matrix;  ///< [fit target][eval target]

  /// Mean off-diagonal pearson of one fit target's row: how well its
  /// weights travel to the other machines.
  [[nodiscard]] double transfer_accuracy(std::size_t fit_index) const;
};

/// Fit one speedup model per catalog target (each suite measured through an
/// eval::Session with `opts` — parallel and cached like any other campaign)
/// and cross-predict every target's dataset with every target's weights.
/// Deterministic and bit-identical across SessionOptions::jobs.
[[nodiscard]] CrossTargetResult experiment_crosstarget(
    model::Fitter fitter, analysis::FeatureSet set, const SessionOptions& opts);

}  // namespace veccost::eval
