// Suite measurement: run every TSVC kernel through legality, the loop
// vectorizer and the measurement substrate on one target, collecting
// everything the experiments need (the paper's "state of the art analysis"
// configuration: cost model overridden — every legal loop is vectorized —
// no unrolling, no interleaving).
#pragma once

#include <string>
#include <vector>

#include "analysis/features.hpp"
#include "machine/perf_model.hpp"
#include "machine/target.hpp"
#include "support/matrix.hpp"
#include "tsvc/kernel.hpp"
#include "xform/pipeline.hpp"

namespace veccost::machine {
class WorkloadPool;
}  // namespace veccost::machine

namespace veccost::eval {

struct KernelMeasurement {
  std::string name;
  std::string category;

  bool vectorizable = false;
  std::string reject_reason;  ///< empty when vectorizable
  int vf = 1;

  // Measurement-substrate results (only valid when vectorizable).
  double scalar_cycles = 0;
  double vector_cycles = 0;
  double measured_speedup = 0;
  double scalar_cost_per_iter = 0;   ///< measured scalar cycles per iteration
  double vector_cost_per_body = 0;   ///< measured vector cycles per VF-body

  // Baseline cost-model prediction.
  double llvm_predicted_speedup = 0;

  // Feature vectors of the scalar body.
  std::vector<double> features_counts;
  std::vector<double> features_rated;
  std::vector<double> features_extended;
};

struct SuiteMeasurement {
  std::string target_name;
  std::vector<KernelMeasurement> kernels;  ///< all 151, suite order

  /// Indices of vectorizable kernels (the regression dataset).
  [[nodiscard]] std::vector<std::size_t> dataset_indices() const;

  /// Design matrix over the dataset for one feature set.
  [[nodiscard]] Matrix design_matrix(analysis::FeatureSet set) const;

  /// Dataset columns.
  [[nodiscard]] Vector measured_speedups() const;
  [[nodiscard]] Vector baseline_predictions() const;
  [[nodiscard]] Vector vector_costs() const;
  [[nodiscard]] Vector scalar_costs() const;  ///< measured cycles per scalar iter
  [[nodiscard]] Vector vf_column() const;     ///< chosen VF per dataset kernel
  [[nodiscard]] Vector scalar_cycles_vec() const;
  [[nodiscard]] Vector vector_cycles_vec() const;
  [[nodiscard]] std::vector<std::string> dataset_names() const;

  /// Speedup predictions implied by predicted vector costs:
  /// scalar_cost_per_iter * vf / predicted_cost.
  [[nodiscard]] Vector speedup_from_cost_predictions(const Vector& cost_pred) const;
};

/// The transform pipeline measure_kernel runs by default: plain loop
/// vectorization at the target's natural VF (the paper's configuration).
inline constexpr std::string_view kDefaultPipelineSpec = "llv";

/// Measure one kernel on `target`: legality, vectorization, both timing
/// runs, features and the baseline prediction. Pure and deterministic —
/// this is the unit of work the parallel runner fans out and the
/// measurement cache memoizes.
[[nodiscard]] KernelMeasurement measure_kernel(
    const tsvc::KernelInfo& info, const machine::TargetDesc& target,
    double noise = machine::kDefaultNoise);

/// Pipeline-parameterized variant: transform the scalar kernel with
/// `pipeline` (analyses served by `analyses`, so sweeps over one kernel pay
/// for dependence analysis once) and measure the result. A pipeline whose
/// final kernel is scalar (vf == 1 — e.g. "unroll<4>" alone) is timed as a
/// scalar loop; `measured_speedup` is always scalar/transformed cycles.
/// `pipeline` must be valid.
[[nodiscard]] KernelMeasurement measure_kernel(
    const tsvc::KernelInfo& info, const machine::TargetDesc& target,
    double noise, const xform::Pipeline& pipeline,
    xform::AnalysisManager& analyses);

/// One (kernel, pipeline-spec) measurement — the tuner's unit of ground
/// truth. Smaller than KernelMeasurement on purpose: a search touches many
/// specs per kernel and only needs the numbers that rank them (features are
/// a property of the scalar kernel, not of the spec).
struct SpecMeasurement {
  std::string kernel;         ///< scalar kernel name
  std::string spec;           ///< canonical pipeline spec
  bool ok = false;            ///< the pipeline ran to completion
  std::string reject_reason;  ///< failing pass's reason when !ok
  int vf = 1;                 ///< transformed kernel's VF (1 = stayed scalar)
  bool runtime_check = false; ///< widening left behind a runtime check
  double scalar_cycles = 0;   ///< baseline scalar timing
  double cycles = 0;          ///< transformed timing (versioned-scalar when
                              ///< runtime_check)
  double speedup = 0;         ///< scalar_cycles / cycles
};

/// Run `pipeline` over `scalar` and time the result — the same timing rules
/// as the pipeline-parameterized measure_kernel (versioned scalar behind a
/// runtime check, scalar-loop timing for vf == 1 rewrites), without the
/// feature extraction or the tsvc::KernelInfo dependency. Pure and
/// deterministic; this is what Session::measure_specs fans out and the
/// SpecMeasurementCache memoizes.
[[nodiscard]] SpecMeasurement measure_spec(const ir::LoopKernel& scalar,
                                           const machine::TargetDesc& target,
                                           double noise,
                                           const xform::Pipeline& pipeline,
                                           xform::AnalysisManager& analyses);

/// Outcome of one kernel's semantics validation (see
/// validate_kernel_semantics).
struct SemanticsCheck {
  std::string name;
  int configurations = 0;  ///< scalar/vector pairs actually executed
};

/// Execute `info`'s scalar kernel and every distinct vectorization of it
/// (the target's natural VF plus explicit VF 2 and 8, deduplicated) over
/// pooled workloads and check the transform-equivalence contract: array
/// contents bitwise identical, iteration counts equal, reduction live-outs
/// within 1e-2 relative tolerance. Throws veccost::Error on divergence.
/// `n` == 0 uses the kernel's default problem size. This is the functional
/// half of the measurement path — measure_kernel itself is analytic — and is
/// what `veccost verify` / SuiteRequest::validate_semantics fan out.
SemanticsCheck validate_kernel_semantics(const tsvc::KernelInfo& info,
                                         const machine::TargetDesc& target,
                                         machine::WorkloadPool& pool,
                                         std::int64_t n = 0);

}  // namespace veccost::eval
