#include "eval/parallel_runner.hpp"

#include <utility>
#include <vector>

#include "machine/workload_pool.hpp"
#include "support/thread_pool.hpp"
#include "tsvc/kernel.hpp"

namespace veccost::eval {

ParallelRunner::ParallelRunner(RunnerOptions opts)
    : opts_(std::move(opts)), cache_(opts_.cache_dir) {}

SuiteMeasurement ParallelRunner::measure_suite(
    const machine::TargetDesc& target, double noise) {
  const auto& suite = tsvc::suite();
  SuiteMeasurement out;
  out.target_name = target.name;
  out.kernels.resize(suite.size());

  std::map<std::string, KernelMeasurement> cached;
  if (opts_.use_cache)
    cached = cache_.load(target, noise, opts_.pipeline_version);

  // Partition into cache hits (moved straight into their slot) and misses
  // (measured below, each writing only its own slot).
  std::vector<std::size_t> to_measure;
  for (std::size_t i = 0; i < suite.size(); ++i) {
    if (auto it = cached.find(suite[i].name); it != cached.end())
      out.kernels[i] = std::move(it->second);
    else
      to_measure.push_back(i);
  }
  cache_hits_ = suite.size() - to_measure.size();
  cache_misses_ = to_measure.size();

  parallel_for(
      to_measure.size(),
      [&](std::size_t j) {
        const std::size_t i = to_measure[j];
        out.kernels[i] = measure_kernel(suite[i], target, noise);
      },
      opts_.jobs);

  if (opts_.use_cache && !to_measure.empty())
    cache_.store(out, target, noise, opts_.pipeline_version);

  validated_configurations_ = 0;
  if (opts_.validate_semantics) {
    // Full-suite semantics sweep: every kernel, scalar vs. every distinct
    // vectorization, on per-thread workload pools. Throws on divergence.
    std::vector<int> configs(suite.size(), 0);
    parallel_for(
        suite.size(),
        [&](std::size_t i) {
          configs[i] = validate_kernel_semantics(
                           suite[i], target,
                           machine::WorkloadPool::thread_local_pool(),
                           opts_.validation_n)
                           .configurations;
        },
        opts_.jobs);
    for (const int c : configs)
      validated_configurations_ += static_cast<std::size_t>(c);
  }
  return out;
}

SuiteMeasurement measure_suite_cached(const machine::TargetDesc& target,
                                      double noise) {
  ParallelRunner runner({.use_cache = measurement_cache_enabled()});
  return runner.measure_suite(target, noise);
}

}  // namespace veccost::eval
