#include "eval/measurement_cache.hpp"

#include <atomic>
#include <bit>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "obs/metrics.hpp"
#include "support/csv.hpp"
#include "support/env_flags.hpp"
#include "support/hash.hpp"

namespace veccost::eval {

namespace {

std::atomic<bool> g_cache_enabled{true};
std::atomic<bool> g_cache_env_checked{false};

using Hasher = support::ContentHasher;

std::string hex64(std::uint64_t v) {
  std::ostringstream os;
  os << std::hex << v;
  return os.str();
}

std::string format_double(double v) {
  // Hex floats round-trip bit-exactly through strtod; decimal printing at
  // any precision would make "cached" and "fresh" runs diverge in the last
  // ulp and break the determinism guarantee.
  std::ostringstream os;
  os << std::hexfloat << v;
  return os.str();
}

double parse_double(const std::string& s) {
  return std::strtod(s.c_str(), nullptr);
}

std::string format_vector(const std::vector<double>& v) {
  std::string out;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) out += ' ';
    out += format_double(v[i]);
  }
  return out;
}

std::vector<double> parse_vector(const std::string& s) {
  std::vector<double> out;
  const char* p = s.c_str();
  char* end = nullptr;
  for (;;) {
    const double v = std::strtod(p, &end);
    if (end == p) break;
    out.push_back(v);
    p = end;
  }
  return out;
}

/// One CSV row per kernel; the key cell first so a partial read is
/// detectable, then every KernelMeasurement field.
const std::vector<std::string> kHeader = {
    "key",           "name",
    "category",      "vectorizable",
    "reject_reason", "vf",
    "scalar_cycles", "vector_cycles",
    "measured_speedup", "scalar_cost_per_iter",
    "vector_cost_per_body", "llvm_predicted_speedup",
    "features_counts", "features_rated", "features_extended"};

std::uint64_t kernel_key(std::uint64_t config, const std::string& name) {
  Hasher h;
  h.mix(config);
  h.mix(name);
  return h.value();
}

}  // namespace

MeasurementCache::MeasurementCache(std::string dir) : dir_(std::move(dir)) {
  if (dir_.empty()) dir_ = default_dir();
}

std::string MeasurementCache::default_dir() {
  const std::string env = support::EnvFlags::value("VECCOST_CACHE_DIR");
  return env.empty() ? "results/cache" : env;
}

std::uint64_t MeasurementCache::config_hash(const machine::TargetDesc& t,
                                            double noise,
                                            std::uint64_t pipeline_version) {
  Hasher h;
  h.mix(pipeline_version);
  // The vectorizer configuration measure_kernel runs under (the paper's
  // state-of-the-art setup): auto VF from legality, cost model overridden,
  // no unrolling, no interleaving.
  h.mix(std::string_view("vf=auto,override-cost,no-unroll,no-interleave"));
  h.mix(noise);
  // Target fingerprint: every field the perf model or the cost models read.
  h.mix(t.name);
  h.mix(t.freq_ghz);
  h.mix(t.vector_bits);
  h.mix(t.issue_width);
  h.mix(t.mem_units);
  h.mix(t.fp_units);
  h.mix(t.int_units);
  for (const auto* table : {t.scalar_table, t.vector_table}) {
    for (int i = 0; i < 16; ++i) {
      for (const auto& e : {table[i].f32, table[i].f64, table[i].int_narrow,
                            table[i].int_wide}) {
        h.mix(e.latency);
        h.mix(e.rthroughput);
      }
    }
  }
  for (const auto& lvl : {t.l1, t.l2, t.dram}) {
    h.mix(static_cast<std::uint64_t>(lvl.capacity_bytes));
    h.mix(lvl.latency_cycles);
    h.mix(lvl.bytes_per_cycle);
  }
  h.mix(t.cacheline_bytes);
  h.mix(t.hw_gather);
  h.mix(t.hw_masked_store);
  h.mix(t.gather_per_lane_cycles);
  h.mix(t.strided_penalty);
  h.mix(t.reverse_penalty);
  h.mix(t.lone_strided_per_lane_cycles);
  h.mix(t.model_interleave_groups);
  h.mix(t.interleave_group_penalty);
  h.mix(t.masked_store_penalty_cycles);
  h.mix(t.loop_overhead_cycles);
  h.mix(t.vec_loop_overhead_cycles);
  h.mix(t.vec_prologue_cycles);
  return h.value();
}

std::string MeasurementCache::file_path(const machine::TargetDesc& target,
                                        double noise,
                                        std::uint64_t pipeline_version) const {
  return dir_ + "/" + target.name + "_" +
         hex64(config_hash(target, noise, pipeline_version)) + ".csv";
}

std::map<std::string, KernelMeasurement> MeasurementCache::load(
    const machine::TargetDesc& target, double noise,
    std::uint64_t pipeline_version) const {
  std::map<std::string, KernelMeasurement> out;
  const std::uint64_t config = config_hash(target, noise, pipeline_version);
  std::ifstream in;
  {
    std::lock_guard<std::mutex> lock(io_mutex_);
    in.open(file_path(target, noise, pipeline_version));
  }
  if (!in) return out;
  VECCOST_COUNTER_ADD("cache.file_loads", 1);
  CsvReader reader(in);
  std::vector<std::string> cells;
  if (!reader.read_row(cells) || cells != kHeader) {  // stale schema
    VECCOST_COUNTER_ADD("cache.stale_files", 1);
    return out;
  }
  while (reader.read_row(cells)) {
    if (cells.size() != kHeader.size()) {  // truncated row
      VECCOST_COUNTER_ADD("cache.stale_rows", 1);
      continue;
    }
    KernelMeasurement m;
    m.name = cells[1];
    if (cells[0] != hex64(kernel_key(config, m.name))) {  // stale key
      VECCOST_COUNTER_ADD("cache.stale_rows", 1);
      continue;
    }
    m.category = cells[2];
    m.vectorizable = cells[3] == "1";
    m.reject_reason = cells[4];
    m.vf = static_cast<int>(std::strtol(cells[5].c_str(), nullptr, 10));
    m.scalar_cycles = parse_double(cells[6]);
    m.vector_cycles = parse_double(cells[7]);
    m.measured_speedup = parse_double(cells[8]);
    m.scalar_cost_per_iter = parse_double(cells[9]);
    m.vector_cost_per_body = parse_double(cells[10]);
    m.llvm_predicted_speedup = parse_double(cells[11]);
    m.features_counts = parse_vector(cells[12]);
    m.features_rated = parse_vector(cells[13]);
    m.features_extended = parse_vector(cells[14]);
    out.emplace(m.name, std::move(m));
  }
  return out;
}

bool MeasurementCache::store(const SuiteMeasurement& sm,
                             const machine::TargetDesc& target, double noise,
                             std::uint64_t pipeline_version) const {
  const std::uint64_t config = config_hash(target, noise, pipeline_version);
  const std::string path = file_path(target, noise, pipeline_version);
  VECCOST_COUNTER_ADD("cache.file_stores", 1);
  std::lock_guard<std::mutex> lock(io_mutex_);
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) return false;
  // Write-then-rename so a concurrent reader never sees a half-written file.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    CsvWriter writer(out);
    writer.write_row(kHeader);
    for (const auto& m : sm.kernels) {
      writer.write_row({hex64(kernel_key(config, m.name)), m.name, m.category,
                        m.vectorizable ? "1" : "0", m.reject_reason,
                        std::to_string(m.vf), format_double(m.scalar_cycles),
                        format_double(m.vector_cycles),
                        format_double(m.measured_speedup),
                        format_double(m.scalar_cost_per_iter),
                        format_double(m.vector_cost_per_body),
                        format_double(m.llvm_predicted_speedup),
                        format_vector(m.features_counts),
                        format_vector(m.features_rated),
                        format_vector(m.features_extended)});
    }
    if (!out) return false;
  }
  std::filesystem::rename(tmp, path, ec);
  return !ec;
}

namespace {

/// Spec-cache row: key first (partial reads detectable), then every
/// SpecMeasurement field. Changing this schema invalidates persisted files
/// (the header check below) — treat it as a wire format.
const std::vector<std::string> kSpecHeader = {
    "key",    "kernel",        "spec",          "ok",     "reject_reason",
    "vf",     "runtime_check", "scalar_cycles", "cycles", "speedup"};

}  // namespace

SpecMeasurementCache::SpecMeasurementCache(std::string dir,
                                           const machine::TargetDesc& target,
                                           std::uint64_t pipeline_version)
    : dir_(std::move(dir)) {
  if (dir_.empty()) dir_ = MeasurementCache::default_dir();
  // The file is named by the noise-free config hash; the per-row key folds
  // the actual noise, so sweeps over noise share one file without colliding.
  path_ = dir_ + "/specs_" + target.name + "_" +
          hex64(MeasurementCache::config_hash(target, 0.0, pipeline_version)) +
          ".csv";
  load();
}

std::uint64_t SpecMeasurementCache::key(const std::string& kernel,
                                        const std::string& spec,
                                        const machine::TargetDesc& target,
                                        double noise,
                                        std::uint64_t pipeline_version) {
  Hasher h;
  h.mix(MeasurementCache::config_hash(target, noise, pipeline_version));
  h.mix(spec);
  h.mix(kernel);
  return h.value();
}

void SpecMeasurementCache::load() {
  std::ifstream in(path_);
  if (!in) return;
  VECCOST_COUNTER_ADD("eval.spec_cache.file_loads", 1);
  CsvReader reader(in);
  std::vector<std::string> cells;
  if (!reader.read_row(cells) || cells != kSpecHeader) {  // stale schema
    VECCOST_COUNTER_ADD("eval.spec_cache.stale_files", 1);
    return;
  }
  std::size_t loaded = 0;
  while (reader.read_row(cells)) {
    if (cells.size() != kSpecHeader.size()) {  // truncated (killed mid-append)
      VECCOST_COUNTER_ADD("eval.spec_cache.stale_rows", 1);
      continue;
    }
    const std::uint64_t k = std::strtoull(cells[0].c_str(), nullptr, 16);
    SpecMeasurement m;
    m.kernel = cells[1];
    m.spec = cells[2];
    m.ok = cells[3] == "1";
    m.reject_reason = cells[4];
    m.vf = static_cast<int>(std::strtol(cells[5].c_str(), nullptr, 10));
    m.runtime_check = cells[6] == "1";
    m.scalar_cycles = parse_double(cells[7]);
    m.cycles = parse_double(cells[8]);
    m.speedup = parse_double(cells[9]);
    entries_.insert_or_assign(k, std::move(m));  // later rows win
    ++loaded;
  }
  VECCOST_COUNTER_ADD("eval.spec_cache.loaded_entries", loaded);
}

std::optional<SpecMeasurement> SpecMeasurementCache::find(
    std::uint64_t key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (const auto it = entries_.find(key); it != entries_.end()) {
    VECCOST_COUNTER_ADD("eval.spec_cache.hit", 1);
    return it->second;
  }
  VECCOST_COUNTER_ADD("eval.spec_cache.miss", 1);
  return std::nullopt;
}

bool SpecMeasurementCache::store(std::uint64_t key, const SpecMeasurement& m) {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.insert_or_assign(key, m);
  VECCOST_COUNTER_ADD("eval.spec_cache.store", 1);

  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) return false;
  const bool fresh = !std::filesystem::exists(path_, ec) || ec;
  std::ofstream out(path_, std::ios::app);
  if (!out) return false;
  CsvWriter writer(out);
  if (fresh) writer.write_row(kSpecHeader);
  writer.write_row({hex64(key), m.kernel, m.spec, m.ok ? "1" : "0",
                    m.reject_reason, std::to_string(m.vf),
                    m.runtime_check ? "1" : "0",
                    format_double(m.scalar_cycles), format_double(m.cycles),
                    format_double(m.speedup)});
  return static_cast<bool>(out);
}

std::size_t SpecMeasurementCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

bool measurement_cache_enabled() {
  if (!g_cache_env_checked.exchange(true)) {
    if (support::EnvFlags::enabled("VECCOST_NO_CACHE", false))
      g_cache_enabled.store(false);
  }
  return g_cache_enabled.load();
}

void set_measurement_cache_enabled(bool enabled) {
  g_cache_env_checked.store(true);  // explicit setting beats the env var
  g_cache_enabled.store(enabled);
}

}  // namespace veccost::eval
