// Paper-style report printers used by the figure binaries.
#pragma once

#include <ostream>
#include <vector>

#include "costmodel/linear_model.hpp"
#include "eval/experiments.hpp"

namespace veccost::eval {

/// Suite overview: how many kernels vectorized, per-category counts.
void print_suite_overview(std::ostream& os, const SuiteMeasurement& sm);

/// One row per model: correlation / RMSE / confusion — the headline numbers
/// each "Results:" slide shows.
void print_model_comparison(std::ostream& os,
                            const std::vector<ModelEval>& evals);

/// Per-kernel predicted-vs-measured listing (the scatter/bar charts of the
/// LOOCV slides, as a table). Shows at most `limit` rows, worst first when
/// `worst_first`.
void print_scatter(std::ostream& os, const SuiteMeasurement& sm,
                   const ModelEval& eval, std::size_t limit = 30,
                   bool worst_first = true);

/// Fitted weights per feature, the learned "cost table".
void print_weights(std::ostream& os, const model::LinearSpeedupModel& model);

/// Decision-consequence table (execution-time outcome of following a model).
void print_decision_outcomes(std::ostream& os,
                             const std::vector<ModelEval>& evals);

/// Export the scatter data as CSV (kernel, predicted, measured).
void write_scatter_csv(std::ostream& os, const SuiteMeasurement& sm,
                       const ModelEval& eval);

/// The multi-target portfolio report (`veccost crosstarget`,
/// bench/fig_crosstarget): per-target fit quality on the diagonal, the full
/// weight-transfer pearson matrix, and each target's mean off-diagonal
/// transfer accuracy.
void print_crosstarget(std::ostream& os, const CrossTargetResult& r);

}  // namespace veccost::eval
