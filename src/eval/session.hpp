// eval::Session — the one measurement entry point.
//
// A Session owns everything one measurement campaign needs: the target, the
// resolved options (jobs, cache policy, pipeline version), the measurement
// cache handle, and access to the observability registry. It replaced the
// three overlapping serial/cached suite entry points that grew up around
// the pipeline, all of which are gone now — Session is the only way to
// measure the suite.
//
// Ownership rule for statistics: everything a measure() call learns about
// itself — cache hits/misses, semantics configurations validated — travels
// in its SuiteResult, never in Session state. That makes measure() const and
// safe to call concurrently from any number of threads on one Session (the
// old ParallelRunner kept the counters as members, so two concurrent
// suite measurements silently clobbered each other's stats). Process-wide
// aggregates of the same events land in the obs registry.
//
// Determinism contract (unchanged from the ParallelRunner): results are
// keyed by kernel index and merged in suite order, so measure() is
// bit-identical for every jobs value; tests/session_test.cpp
// (`ctest -L parallel`) enforces this.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "eval/measurement.hpp"
#include "eval/measurement_cache.hpp"
#include "machine/target.hpp"

namespace veccost::obs {
class Registry;
}  // namespace veccost::obs

namespace veccost::eval {

/// What one Session::measure call should do.
struct SuiteRequest {
  /// Relative amplitude of the simulated measurement jitter.
  double noise = machine::kDefaultNoise;
  /// Also run validate_kernel_semantics over the whole suite (scalar vs.
  /// every distinct vectorization, pooled workloads). Off by default:
  /// measure_kernel is analytic, so validation changes no measured number —
  /// it is a correctness sweep of the execution engine.
  bool validate_semantics = false;
  /// Problem size for semantics validation; 0 = each kernel's default_n.
  /// The default keeps a full-suite sweep cheap while still exercising
  /// remainder loops at every VF.
  std::int64_t validation_n = 4096;
  /// Transform pipeline spec (xform/pipeline.hpp grammar) applied to every
  /// kernel before costing; empty = kDefaultPipelineSpec. Non-default specs
  /// get their own cache key, so sweeps over pipelines never collide.
  std::string pipeline;
};

/// One measure() call's outcome: the suite measurement plus the call's own
/// statistics (see the ownership rule in the file comment).
struct SuiteResult {
  SuiteMeasurement suite;
  /// Kernels served from the measurement cache / actually re-measured
  /// (hits + misses == suite size).
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  /// Scalar/vector configurations executed by the semantics sweep (0 unless
  /// SuiteRequest::validate_semantics).
  std::size_t validated_configurations = 0;
};

/// One element of a measure_specs batch: run `pipeline` over the named TSVC
/// kernel and time the result.
struct SpecRequest {
  std::string kernel;    ///< TSVC kernel name (find_kernel must resolve it)
  std::string pipeline;  ///< pipeline spec (xform grammar); need not be
                         ///< canonical — it is canonicalized for the cache key
};

/// One measure_specs call's outcome: results in request order plus the
/// call's own cache statistics (the Session ownership rule — stats travel in
/// the result, never in Session state). hits + misses counts *distinct*
/// (kernel, canonical spec) measurements, so duplicate requests in one batch
/// cost (and count) one measurement.
struct SpecBatchResult {
  std::vector<SpecMeasurement> results;  ///< request order
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
};

/// How a Session runs. Construction-time only; one Session = one policy.
struct SessionOptions {
  /// Concurrent measurement jobs; 0 = default_parallelism() (--jobs /
  /// VECCOST_JOBS / hardware threads).
  std::size_t jobs = 0;
  /// Consult and refresh the measurement cache.
  bool use_cache = true;
  /// Cache directory; empty = MeasurementCache::default_dir().
  std::string cache_dir;
  /// Cache key ingredient; tests override it to simulate pipeline changes.
  std::uint64_t pipeline_version = kPipelineVersion;

  /// The defaults every CLI/bench/example driver wants: cache honoring
  /// --no-cache / VECCOST_NO_CACHE, auto parallelism.
  [[nodiscard]] static SessionOptions from_environment();
};

class Session {
 public:
  /// The Session keeps its own copy of `target` (the machine:: factories
  /// return descriptors by value, so holding a reference would dangle).
  explicit Session(const machine::TargetDesc& target,
                   SessionOptions opts = SessionOptions::from_environment());

  /// Measure the whole suite: cached kernels are reused, the rest are
  /// measured in parallel, and the merged result (suite order) is written
  /// back to the cache when anything was re-measured. Thread-safe: const,
  /// with all per-call state in the returned SuiteResult.
  [[nodiscard]] SuiteResult measure(const SuiteRequest& request = {}) const;

  /// Measure a batch of (kernel, pipeline-spec) pairs — the tuner's
  /// ground-truth path. Distinct pairs are deduplicated, served from the
  /// persistent SpecMeasurementCache when possible, and the misses are
  /// measured in parallel grouped by kernel (one AnalysisManager per kernel,
  /// so a batch of specs over one kernel runs dependence analysis once).
  /// Results are merged in request order — bit-identical for every jobs
  /// value, warm or cold. Thread-safe: const, with all per-call state in the
  /// returned SpecBatchResult. Throws on an unknown kernel or invalid spec.
  [[nodiscard]] SpecBatchResult measure_specs(
      const std::vector<SpecRequest>& requests,
      double noise = machine::kDefaultNoise) const;

  [[nodiscard]] const machine::TargetDesc& target() const { return target_; }
  [[nodiscard]] const SessionOptions& options() const { return opts_; }
  /// The observability registry this Session records into (the process-wide
  /// one; exposed here so callers can snapshot/export without reaching for
  /// the obs globals directly).
  [[nodiscard]] obs::Registry& metrics() const;

 private:
  machine::TargetDesc target_;
  SessionOptions opts_;
  MeasurementCache cache_;
  /// Per-(kernel, spec) store for measure_specs; loads its file eagerly at
  /// construction (cheap: one CSV), shared by every call on this Session.
  std::unique_ptr<SpecMeasurementCache> spec_cache_;
};

}  // namespace veccost::eval
