// Content-addressed, CSV-backed cache of suite measurements.
//
// Every figure/ablation binary starts by measuring the same 151 TSVC
// kernels; the cache lets the second and subsequent binaries skip that work
// entirely. A cached record is keyed by
//   (kernel name, target fingerprint, VF/vectorizer config, pipeline version)
// all folded into one 64-bit content hash: if any ingredient changes — a
// target's timing table is edited, the vectorizer policy moves, the
// measurement pipeline is revised and kPipelineVersion bumped — the hash
// changes and the stale file is ignored. Doubles are persisted as hex
// floats, so a cache round-trip is bit-exact and cached results are
// indistinguishable from fresh ones.
//
// Files live under `results/cache/` (override with VECCOST_CACHE_DIR), one
// CSV per (target, noise, version) configuration. All methods are safe to
// call from multiple threads.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "eval/measurement.hpp"
#include "machine/target.hpp"

namespace veccost::eval {

/// Version of the measurement pipeline baked into every cache key. Bump
/// whenever measure_kernel, the perf model, feature extraction or the
/// vectorizer change observable results.
inline constexpr std::uint64_t kPipelineVersion = 2;

class MeasurementCache {
 public:
  /// `dir` empty selects default_dir().
  explicit MeasurementCache(std::string dir = "");

  /// VECCOST_CACHE_DIR if set, else "results/cache".
  [[nodiscard]] static std::string default_dir();

  /// Content hash of one measurement configuration: target fingerprint
  /// (name + every cost-table/uarch field), jitter amplitude, the
  /// vectorizer's VF-selection policy tag, and the pipeline version.
  [[nodiscard]] static std::uint64_t config_hash(
      const machine::TargetDesc& target, double noise,
      std::uint64_t pipeline_version = kPipelineVersion);

  /// Load every cached record for this configuration, keyed by kernel
  /// name. Records whose stored per-kernel key does not match the expected
  /// hash (stale pipeline, edited target) are dropped. Missing or
  /// malformed files yield an empty map.
  [[nodiscard]] std::map<std::string, KernelMeasurement> load(
      const machine::TargetDesc& target, double noise,
      std::uint64_t pipeline_version = kPipelineVersion) const;

  /// Persist a full suite measurement for this configuration, replacing
  /// any previous file. Returns false if the directory/file cannot be
  /// written (callers treat that as "cache disabled", never an error).
  bool store(const SuiteMeasurement& sm, const machine::TargetDesc& target,
             double noise,
             std::uint64_t pipeline_version = kPipelineVersion) const;

  [[nodiscard]] const std::string& dir() const { return dir_; }

  /// Path of the cache file for one configuration (for tests/tools).
  [[nodiscard]] std::string file_path(const machine::TargetDesc& target,
                                      double noise,
                                      std::uint64_t pipeline_version =
                                          kPipelineVersion) const;

 private:
  std::string dir_;
  mutable std::mutex io_mutex_;
};

/// Persistent cache of per-(kernel, pipeline-spec) measurements — the
/// tuner's warm-restart store.
///
/// The suite-shaped MeasurementCache above keys whole 151-kernel files by
/// one pipeline spec; a search instead measures an ad-hoc set of specs per
/// kernel. This cache keys each SpecMeasurement by one content hash folding
/// the target fingerprint (MeasurementCache::config_hash — same bytes, same
/// invalidation story), the jitter amplitude, the canonical spec and the
/// kernel name, and persists write-through to one CSV per (target, version)
/// under the same cache dir. Doubles are hex floats, so a warm re-tune is
/// bit-identical to a cold one — which is what lets tests demand *zero*
/// re-measurements rather than "close enough". Rows with a stale schema
/// header or a non-matching key are dropped on load. Thread-safe.
class SpecMeasurementCache {
 public:
  /// `dir` empty selects MeasurementCache::default_dir(). The existing file
  /// for (target, version) is loaded eagerly.
  SpecMeasurementCache(std::string dir, const machine::TargetDesc& target,
                       std::uint64_t pipeline_version = kPipelineVersion);

  /// Content key for one (kernel, spec, target, noise) measurement.
  /// `spec` must be canonical (Pipeline::spec()).
  [[nodiscard]] static std::uint64_t key(const std::string& kernel,
                                         const std::string& spec,
                                         const machine::TargetDesc& target,
                                         double noise,
                                         std::uint64_t pipeline_version =
                                             kPipelineVersion);

  /// Look up one entry; increments eval.spec_cache.{hit,miss}.
  [[nodiscard]] std::optional<SpecMeasurement> find(std::uint64_t key) const;

  /// Insert (or overwrite) and append one row to the file. Returns false
  /// when the row could not be persisted (entry still cached in memory).
  bool store(std::uint64_t key, const SpecMeasurement& m);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const std::string& file_path() const { return path_; }

 private:
  void load();

  std::string dir_;
  std::string path_;
  mutable std::mutex mutex_;
  std::map<std::uint64_t, SpecMeasurement> entries_;
};

/// Global cache enable switch (CLI --no-cache / VECCOST_NO_CACHE=1).
[[nodiscard]] bool measurement_cache_enabled();
void set_measurement_cache_enabled(bool enabled);

}  // namespace veccost::eval
