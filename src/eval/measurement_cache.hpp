// Content-addressed, CSV-backed cache of suite measurements.
//
// Every figure/ablation binary starts by measuring the same 151 TSVC
// kernels; the cache lets the second and subsequent binaries skip that work
// entirely. A cached record is keyed by
//   (kernel name, target fingerprint, VF/vectorizer config, pipeline version)
// all folded into one 64-bit content hash: if any ingredient changes — a
// target's timing table is edited, the vectorizer policy moves, the
// measurement pipeline is revised and kPipelineVersion bumped — the hash
// changes and the stale file is ignored. Doubles are persisted as hex
// floats, so a cache round-trip is bit-exact and cached results are
// indistinguishable from fresh ones.
//
// Files live under `results/cache/` (override with VECCOST_CACHE_DIR), one
// CSV per (target, noise, version) configuration. All methods are safe to
// call from multiple threads.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "eval/measurement.hpp"
#include "machine/target.hpp"

namespace veccost::eval {

/// Version of the measurement pipeline baked into every cache key. Bump
/// whenever measure_kernel, the perf model, feature extraction or the
/// vectorizer change observable results.
inline constexpr std::uint64_t kPipelineVersion = 2;

class MeasurementCache {
 public:
  /// `dir` empty selects default_dir().
  explicit MeasurementCache(std::string dir = "");

  /// VECCOST_CACHE_DIR if set, else "results/cache".
  [[nodiscard]] static std::string default_dir();

  /// Content hash of one measurement configuration: target fingerprint
  /// (name + every cost-table/uarch field), jitter amplitude, the
  /// vectorizer's VF-selection policy tag, and the pipeline version.
  [[nodiscard]] static std::uint64_t config_hash(
      const machine::TargetDesc& target, double noise,
      std::uint64_t pipeline_version = kPipelineVersion);

  /// Load every cached record for this configuration, keyed by kernel
  /// name. Records whose stored per-kernel key does not match the expected
  /// hash (stale pipeline, edited target) are dropped. Missing or
  /// malformed files yield an empty map.
  [[nodiscard]] std::map<std::string, KernelMeasurement> load(
      const machine::TargetDesc& target, double noise,
      std::uint64_t pipeline_version = kPipelineVersion) const;

  /// Persist a full suite measurement for this configuration, replacing
  /// any previous file. Returns false if the directory/file cannot be
  /// written (callers treat that as "cache disabled", never an error).
  bool store(const SuiteMeasurement& sm, const machine::TargetDesc& target,
             double noise,
             std::uint64_t pipeline_version = kPipelineVersion) const;

  [[nodiscard]] const std::string& dir() const { return dir_; }

  /// Path of the cache file for one configuration (for tests/tools).
  [[nodiscard]] std::string file_path(const machine::TargetDesc& target,
                                      double noise,
                                      std::uint64_t pipeline_version =
                                          kPipelineVersion) const;

 private:
  std::string dir_;
  mutable std::mutex io_mutex_;
};

/// Global cache enable switch (CLI --no-cache / VECCOST_NO_CACHE=1).
[[nodiscard]] bool measurement_cache_enabled();
void set_measurement_cache_enabled(bool enabled);

}  // namespace veccost::eval
