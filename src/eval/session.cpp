#include "eval/session.hpp"

#include <map>
#include <utility>
#include <vector>

#include "machine/workload_pool.hpp"
#include "obs/metrics.hpp"
#include "support/error.hpp"
#include "support/hash.hpp"
#include "support/thread_pool.hpp"
#include "tsvc/kernel.hpp"
#include "xform/analysis_manager.hpp"
#include "xform/pipeline.hpp"

namespace veccost::eval {

SessionOptions SessionOptions::from_environment() {
  SessionOptions opts;
  opts.use_cache = measurement_cache_enabled();
  return opts;
}

Session::Session(const machine::TargetDesc& target, SessionOptions opts)
    : target_(target),
      opts_(std::move(opts)),
      cache_(opts_.cache_dir),
      spec_cache_(std::make_unique<SpecMeasurementCache>(
          opts_.cache_dir, target_, opts_.pipeline_version)) {}

obs::Registry& Session::metrics() const { return obs::Registry::global(); }

SuiteResult Session::measure(const SuiteRequest& request) const {
  VECCOST_SPAN("session.measure_ns");
  VECCOST_COUNTER_ADD("session.measurements", 1);
  const auto& suite = tsvc::suite();
  SuiteResult result;
  result.suite.target_name = target_.name;
  result.suite.kernels.resize(suite.size());

  const std::string spec = request.pipeline.empty()
                               ? std::string(kDefaultPipelineSpec)
                               : request.pipeline;
  const xform::Pipeline pipeline = xform::Pipeline::parse(spec);
  if (!pipeline.valid())
    throw Error("pipeline spec '" + spec + "': " + pipeline.error());

  // Non-default pipelines fold their canonical spec into the cache key so a
  // sweep over pipelines never reads another pipeline's measurements.
  std::uint64_t version = opts_.pipeline_version;
  if (pipeline.spec() != kDefaultPipelineSpec) {
    support::ContentHasher h;
    h.mix(version);
    h.mix(pipeline.spec());
    version = h.value();
  }

  std::map<std::string, KernelMeasurement> cached;
  if (opts_.use_cache) cached = cache_.load(target_, request.noise, version);

  // Partition into cache hits (moved straight into their slot) and misses
  // (measured below, each writing only its own slot).
  std::vector<std::size_t> to_measure;
  for (std::size_t i = 0; i < suite.size(); ++i) {
    if (auto it = cached.find(suite[i].name); it != cached.end())
      result.suite.kernels[i] = std::move(it->second);
    else
      to_measure.push_back(i);
  }
  result.cache_hits = suite.size() - to_measure.size();
  result.cache_misses = to_measure.size();
  VECCOST_COUNTER_ADD("cache.kernel_hits", result.cache_hits);
  VECCOST_COUNTER_ADD("cache.kernel_misses", result.cache_misses);

  parallel_for(
      to_measure.size(),
      [&](std::size_t j) {
        const std::size_t i = to_measure[j];
        // One AnalysisManager per kernel: the manager is not thread-safe,
        // and kernels never share analyses anyway (distinct content hashes).
        xform::AnalysisManager analyses;
        result.suite.kernels[i] =
            measure_kernel(suite[i], target_, request.noise, pipeline,
                           analyses);
      },
      opts_.jobs);

  if (opts_.use_cache && !to_measure.empty())
    cache_.store(result.suite, target_, request.noise, version);

  if (request.validate_semantics) {
    VECCOST_SPAN("session.validate_ns");
    // Full-suite semantics sweep: every kernel, scalar vs. every distinct
    // vectorization, on per-thread workload pools. The scalar side runs once
    // per kernel through a resident BatchRunner (lowered programs and
    // execution context live across the VF configs). Throws on divergence.
    std::vector<int> configs(suite.size(), 0);
    parallel_for(
        suite.size(),
        [&](std::size_t i) {
          configs[i] = validate_kernel_semantics(
                           suite[i], target_,
                           machine::WorkloadPool::thread_local_pool(),
                           request.validation_n)
                           .configurations;
        },
        opts_.jobs);
    for (const int c : configs)
      result.validated_configurations += static_cast<std::size_t>(c);
  }
  return result;
}

SpecBatchResult Session::measure_specs(const std::vector<SpecRequest>& requests,
                                       double noise) const {
  VECCOST_SPAN("session.measure_specs_ns");
  VECCOST_COUNTER_ADD("session.spec_batches", 1);
  SpecBatchResult out;
  out.results.resize(requests.size());
  if (requests.empty()) return out;

  // Parse (and so canonicalize) each distinct spec text once per batch.
  std::map<std::string, xform::Pipeline> pipelines;
  for (const SpecRequest& r : requests) {
    if (tsvc::find_kernel(r.kernel) == nullptr)
      throw Error("measure_specs: unknown kernel '" + r.kernel + "'");
    if (pipelines.contains(r.pipeline)) continue;
    xform::Pipeline p = xform::Pipeline::parse(r.pipeline);
    if (!p.valid())
      throw Error("pipeline spec '" + r.pipeline + "': " + p.error());
    pipelines.emplace(r.pipeline, std::move(p));
  }

  // Deduplicate by content key; remember which request slots each distinct
  // (kernel, canonical spec) measurement fills.
  struct Unit {
    const std::string* kernel = nullptr;
    const xform::Pipeline* pipeline = nullptr;
    std::vector<std::size_t> slots;
    SpecMeasurement result;
    bool cached = false;
  };
  std::map<std::uint64_t, Unit> units;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const xform::Pipeline& pipe = pipelines.at(requests[i].pipeline);
    const std::uint64_t key = SpecMeasurementCache::key(
        requests[i].kernel, pipe.spec(), target_, noise,
        opts_.pipeline_version);
    Unit& u = units[key];
    if (u.slots.empty()) {
      u.kernel = &requests[i].kernel;
      u.pipeline = &pipe;
    }
    u.slots.push_back(i);
  }

  // Partition into cache hits and misses; misses are grouped by kernel so a
  // batch of specs over one kernel shares one AnalysisManager (dependence
  // analysis runs once, not once per spec).
  std::map<std::string, std::vector<Unit*>> misses_by_kernel;
  for (auto& [key, unit] : units) {
    if (opts_.use_cache) {
      if (auto hit = spec_cache_->find(key)) {
        unit.result = std::move(*hit);
        unit.cached = true;
        ++out.cache_hits;
        continue;
      }
    }
    ++out.cache_misses;
    misses_by_kernel[*unit.kernel].push_back(&unit);
  }
  VECCOST_COUNTER_ADD("eval.spec_measurements", out.cache_misses);

  std::vector<std::pair<const std::string*, std::vector<Unit*>*>> groups;
  groups.reserve(misses_by_kernel.size());
  for (auto& [name, group] : misses_by_kernel)
    groups.emplace_back(&name, &group);

  parallel_for(
      groups.size(),
      [&](std::size_t g) {
        const tsvc::KernelInfo* info = tsvc::find_kernel(*groups[g].first);
        const ir::LoopKernel scalar = info->build();
        xform::AnalysisManager analyses;
        for (Unit* unit : *groups[g].second)
          unit->result =
              measure_spec(scalar, target_, noise, *unit->pipeline, analyses);
      },
      opts_.jobs);

  if (opts_.use_cache) {
    // Write-through after the parallel phase: append order is the units'
    // key order, deterministic for every jobs value.
    for (auto& [key, unit] : units)
      if (!unit.cached) spec_cache_->store(key, unit.result);
  }

  for (auto& [key, unit] : units) {
    for (std::size_t j = 1; j < unit.slots.size(); ++j)
      out.results[unit.slots[j]] = unit.result;
    out.results[unit.slots[0]] = std::move(unit.result);
  }
  return out;
}

}  // namespace veccost::eval
