#include "eval/session.hpp"

#include <map>
#include <utility>
#include <vector>

#include "machine/workload_pool.hpp"
#include "obs/metrics.hpp"
#include "support/error.hpp"
#include "support/hash.hpp"
#include "support/thread_pool.hpp"
#include "tsvc/kernel.hpp"
#include "xform/analysis_manager.hpp"
#include "xform/pipeline.hpp"

namespace veccost::eval {

SessionOptions SessionOptions::from_environment() {
  SessionOptions opts;
  opts.use_cache = measurement_cache_enabled();
  return opts;
}

Session::Session(const machine::TargetDesc& target, SessionOptions opts)
    : target_(target), opts_(std::move(opts)), cache_(opts_.cache_dir) {}

obs::Registry& Session::metrics() const { return obs::Registry::global(); }

SuiteResult Session::measure(const SuiteRequest& request) const {
  VECCOST_SPAN("session.measure_ns");
  VECCOST_COUNTER_ADD("session.measurements", 1);
  const auto& suite = tsvc::suite();
  SuiteResult result;
  result.suite.target_name = target_.name;
  result.suite.kernels.resize(suite.size());

  const std::string spec = request.pipeline.empty()
                               ? std::string(kDefaultPipelineSpec)
                               : request.pipeline;
  const xform::Pipeline pipeline = xform::Pipeline::parse(spec);
  if (!pipeline.valid())
    throw Error("pipeline spec '" + spec + "': " + pipeline.error());

  // Non-default pipelines fold their canonical spec into the cache key so a
  // sweep over pipelines never reads another pipeline's measurements.
  std::uint64_t version = opts_.pipeline_version;
  if (pipeline.spec() != kDefaultPipelineSpec) {
    support::ContentHasher h;
    h.mix(version);
    h.mix(pipeline.spec());
    version = h.value();
  }

  std::map<std::string, KernelMeasurement> cached;
  if (opts_.use_cache) cached = cache_.load(target_, request.noise, version);

  // Partition into cache hits (moved straight into their slot) and misses
  // (measured below, each writing only its own slot).
  std::vector<std::size_t> to_measure;
  for (std::size_t i = 0; i < suite.size(); ++i) {
    if (auto it = cached.find(suite[i].name); it != cached.end())
      result.suite.kernels[i] = std::move(it->second);
    else
      to_measure.push_back(i);
  }
  result.cache_hits = suite.size() - to_measure.size();
  result.cache_misses = to_measure.size();
  VECCOST_COUNTER_ADD("cache.kernel_hits", result.cache_hits);
  VECCOST_COUNTER_ADD("cache.kernel_misses", result.cache_misses);

  parallel_for(
      to_measure.size(),
      [&](std::size_t j) {
        const std::size_t i = to_measure[j];
        // One AnalysisManager per kernel: the manager is not thread-safe,
        // and kernels never share analyses anyway (distinct content hashes).
        xform::AnalysisManager analyses;
        result.suite.kernels[i] =
            measure_kernel(suite[i], target_, request.noise, pipeline,
                           analyses);
      },
      opts_.jobs);

  if (opts_.use_cache && !to_measure.empty())
    cache_.store(result.suite, target_, request.noise, version);

  if (request.validate_semantics) {
    VECCOST_SPAN("session.validate_ns");
    // Full-suite semantics sweep: every kernel, scalar vs. every distinct
    // vectorization, on per-thread workload pools. The scalar side runs once
    // per kernel through a resident BatchRunner (lowered programs and
    // execution context live across the VF configs). Throws on divergence.
    std::vector<int> configs(suite.size(), 0);
    parallel_for(
        suite.size(),
        [&](std::size_t i) {
          configs[i] = validate_kernel_semantics(
                           suite[i], target_,
                           machine::WorkloadPool::thread_local_pool(),
                           request.validation_n)
                           .configurations;
        },
        opts_.jobs);
    for (const int c : configs)
      result.validated_configurations += static_cast<std::size_t>(c);
  }
  return result;
}

}  // namespace veccost::eval
