#include "eval/measurement.hpp"

#include <algorithm>
#include <cmath>

#include "costmodel/llvm_model.hpp"
#include "machine/exec_engine.hpp"
#include "machine/executor.hpp"
#include "machine/perf_model.hpp"
#include "machine/workload_pool.hpp"
#include "obs/metrics.hpp"
#include "support/error.hpp"
#include "tsvc/kernel.hpp"
#include "tsvc/workload.hpp"
#include "vectorizer/loop_vectorizer.hpp"
#include "xform/analysis_manager.hpp"
#include "xform/pipeline.hpp"

namespace veccost::eval {

std::vector<std::size_t> SuiteMeasurement::dataset_indices() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < kernels.size(); ++i)
    if (kernels[i].vectorizable) out.push_back(i);
  return out;
}

Matrix SuiteMeasurement::design_matrix(analysis::FeatureSet set) const {
  Matrix x;
  for (const std::size_t i : dataset_indices()) {
    const auto& k = kernels[i];
    switch (set) {
      case analysis::FeatureSet::Counts: x.push_row(k.features_counts); break;
      case analysis::FeatureSet::Rated: x.push_row(k.features_rated); break;
      case analysis::FeatureSet::Extended: x.push_row(k.features_extended); break;
    }
  }
  return x;
}

Vector SuiteMeasurement::measured_speedups() const {
  Vector y;
  for (const std::size_t i : dataset_indices())
    y.push_back(kernels[i].measured_speedup);
  return y;
}

Vector SuiteMeasurement::baseline_predictions() const {
  Vector y;
  for (const std::size_t i : dataset_indices())
    y.push_back(kernels[i].llvm_predicted_speedup);
  return y;
}

Vector SuiteMeasurement::vector_costs() const {
  Vector y;
  for (const std::size_t i : dataset_indices())
    y.push_back(kernels[i].vector_cost_per_body);
  return y;
}

Vector SuiteMeasurement::scalar_costs() const {
  Vector y;
  for (const std::size_t i : dataset_indices())
    y.push_back(kernels[i].scalar_cost_per_iter);
  return y;
}

Vector SuiteMeasurement::vf_column() const {
  Vector y;
  for (const std::size_t i : dataset_indices())
    y.push_back(kernels[i].vf);
  return y;
}

Vector SuiteMeasurement::scalar_cycles_vec() const {
  Vector y;
  for (const std::size_t i : dataset_indices())
    y.push_back(kernels[i].scalar_cycles);
  return y;
}

Vector SuiteMeasurement::vector_cycles_vec() const {
  Vector y;
  for (const std::size_t i : dataset_indices())
    y.push_back(kernels[i].vector_cycles);
  return y;
}

std::vector<std::string> SuiteMeasurement::dataset_names() const {
  std::vector<std::string> names;
  for (const std::size_t i : dataset_indices()) names.push_back(kernels[i].name);
  return names;
}

Vector SuiteMeasurement::speedup_from_cost_predictions(const Vector& cost_pred) const {
  const auto idx = dataset_indices();
  VECCOST_ASSERT(cost_pred.size() == idx.size(),
                 "cost prediction size mismatch");
  Vector out(cost_pred.size());
  for (std::size_t r = 0; r < idx.size(); ++r) {
    const auto& k = kernels[idx[r]];
    const double denom = std::max(cost_pred[r], 1e-6);
    out[r] = k.scalar_cost_per_iter * k.vf / denom;
  }
  return out;
}

KernelMeasurement measure_kernel(const tsvc::KernelInfo& info,
                                 const machine::TargetDesc& target,
                                 double noise) {
  static const xform::Pipeline default_pipeline =
      xform::Pipeline::parse(kDefaultPipelineSpec);
  xform::AnalysisManager analyses;
  return measure_kernel(info, target, noise, default_pipeline, analyses);
}

KernelMeasurement measure_kernel(const tsvc::KernelInfo& info,
                                 const machine::TargetDesc& target,
                                 double noise, const xform::Pipeline& pipeline,
                                 xform::AnalysisManager& analyses) {
  VECCOST_SPAN("measure.kernel_ns");
  VECCOST_COUNTER_ADD("measure.kernels", 1);
  VECCOST_ASSERT(pipeline.valid(), "invalid pipeline: " + pipeline.error());
  const ir::LoopKernel scalar = info.build();
  KernelMeasurement m;
  m.name = info.name;
  m.category = info.category;
  m.features_counts = analyses.features(scalar, analysis::FeatureSet::Counts);
  m.features_rated = analyses.features(scalar, analysis::FeatureSet::Rated);
  m.features_extended =
      analyses.features(scalar, analysis::FeatureSet::Extended);

  const xform::PipelineResult xr = pipeline.run(scalar, target, analyses);
  if (!xr.ok) {
    m.vectorizable = false;
    m.reject_reason = xr.reason;
    return m;
  }
  const ir::LoopKernel& transformed = xr.state.kernel;
  m.vectorizable = true;
  m.vf = transformed.vf;

  const std::int64_t n = scalar.default_n;
  m.scalar_cycles = machine::measure_scalar_cycles(scalar, target, n, noise);
  if (xr.state.runtime_check)
    m.vector_cycles =
        machine::measure_versioned_scalar_cycles(scalar, target, n, noise);
  else if (transformed.vf > 1)
    m.vector_cycles =
        machine::measure_vector_cycles(transformed, scalar, target, n, noise);
  else  // scalar-to-scalar pipeline (e.g. unroll only): time the rewrite
    m.vector_cycles =
        machine::measure_scalar_cycles(transformed, target, n, noise);
  m.measured_speedup = m.scalar_cycles / m.vector_cycles;

  const std::int64_t iters = scalar.trip.iterations(n);
  const std::int64_t outer = scalar.nest.total_outer_iterations();
  m.scalar_cost_per_iter =
      m.scalar_cycles / static_cast<double>(std::max<std::int64_t>(iters * outer, 1));
  const std::int64_t vf = std::max(m.vf, 1);
  // Predicated whole loops run the tail as one extra governed block.
  const std::int64_t blocks =
      transformed.predicated ? (iters + vf - 1) / vf : iters / vf;
  const std::int64_t bodies = std::max<std::int64_t>(blocks * outer, 1);
  m.vector_cost_per_body = m.vector_cycles / static_cast<double>(bodies);

  m.llvm_predicted_speedup =
      model::llvm_predict(scalar, transformed, target).predicted_speedup;
  return m;
}

SpecMeasurement measure_spec(const ir::LoopKernel& scalar,
                             const machine::TargetDesc& target, double noise,
                             const xform::Pipeline& pipeline,
                             xform::AnalysisManager& analyses) {
  VECCOST_SPAN("measure.spec_ns");
  VECCOST_COUNTER_ADD("measure.specs", 1);
  VECCOST_ASSERT(pipeline.valid(), "invalid pipeline: " + pipeline.error());
  SpecMeasurement m;
  m.kernel = scalar.name;
  m.spec = pipeline.spec();

  const xform::PipelineResult xr = pipeline.run(scalar, target, analyses);
  if (!xr.ok) {
    m.reject_reason = xr.reason;
    return m;
  }
  const ir::LoopKernel& transformed = xr.state.kernel;
  m.ok = true;
  m.vf = transformed.vf;
  m.runtime_check = xr.state.runtime_check;

  // Timing rules identical to the pipeline measure_kernel above, so a
  // SpecMeasurement of "llv" agrees bit-for-bit with the suite measurement.
  const std::int64_t n = scalar.default_n;
  m.scalar_cycles = machine::measure_scalar_cycles(scalar, target, n, noise);
  if (m.runtime_check)
    m.cycles =
        machine::measure_versioned_scalar_cycles(scalar, target, n, noise);
  else if (transformed.vf > 1)
    m.cycles =
        machine::measure_vector_cycles(transformed, scalar, target, n, noise);
  else
    m.cycles = machine::measure_scalar_cycles(transformed, target, n, noise);
  m.speedup = m.scalar_cycles / m.cycles;
  return m;
}

SemanticsCheck validate_kernel_semantics(const tsvc::KernelInfo& info,
                                         const machine::TargetDesc& target,
                                         machine::WorkloadPool& pool,
                                         std::int64_t n) {
  VECCOST_SPAN("measure.validate_kernel_ns");
  const ir::LoopKernel scalar = info.build();
  if (n <= 0) n = scalar.default_n;
  SemanticsCheck check;
  check.name = info.name;

  // One manager across the VF sweep: legality (and its dependence analysis)
  // runs once for the kernel, not once per candidate VF.
  xform::AnalysisManager analyses;

  // Scalar ground truth once, through a resident BatchRunner: the runner
  // owns its lowered programs and execution context, so the vectorized runs
  // below cannot evict its state, and the sweep re-lowers nothing. The
  // scalar result is identical for every VF config — no need to re-execute.
  machine::Workload& ws = pool.acquire(scalar, n, 0x5eed, 0);
  machine::BatchRunner runner(scalar);
  const auto rs = runner.run(ws);

  std::vector<int> tried;
  for (const int requested : {0, 2, 8}) {  // 0 = the target's natural VF
    vectorizer::LoopVectorizerOptions opts;
    opts.requested_vf = requested;
    const auto vec = vectorizer::vectorize_legal(
        scalar, target, opts, analyses.legality(scalar, opts.legality));
    if (!vec.ok || vec.runtime_check) continue;
    if (std::find(tried.begin(), tried.end(), vec.vf) != tried.end()) continue;
    tried.push_back(vec.vf);

    // Pooled copy 1 stays simultaneously live with ws, bit-identical init.
    machine::Workload& wv = pool.acquire(scalar, n, 0x5eed, 1);
    const auto rv = machine::execute_vectorized(vec.kernel, scalar, wv);

    const std::string where =
        info.name + " at vf=" + std::to_string(vec.vf) +
        " (n=" + std::to_string(n) + ", " + target.name + ")";
    VECCOST_ASSERT(tsvc::max_abs_difference(ws, wv) == 0.0,
                   "memory state diverged for " + where);
    VECCOST_ASSERT(rs.iterations == rv.iterations,
                   "iteration count diverged for " + where);
    VECCOST_ASSERT(rs.live_outs.size() == rv.live_outs.size(),
                   "live-out count diverged for " + where);
    for (std::size_t i = 0; i < rs.live_outs.size(); ++i) {
      // Reductions reassociate under vectorization; compare with the same
      // tolerance the transform-equivalence tests use.
      const double tol = 1e-2 * std::max(1.0, std::abs(rs.live_outs[i]));
      VECCOST_ASSERT(std::abs(rv.live_outs[i] - rs.live_outs[i]) <= tol,
                     "live-out " + std::to_string(i) + " diverged for " + where);
    }
    ++check.configurations;
  }
  return check;
}

}  // namespace veccost::eval
