#include "eval/experiments.hpp"

#include "costmodel/llvm_model.hpp"
#include "machine/perf_model.hpp"
#include "machine/targets.hpp"
#include "support/error.hpp"
#include "support/stats.hpp"
#include "tsvc/kernel.hpp"
#include "vectorizer/loop_vectorizer.hpp"
#include "vectorizer/slp_vectorizer.hpp"
#include "xform/pipeline.hpp"

namespace veccost::eval {

ModelEval evaluate_predictions(const SuiteMeasurement& sm, std::string label,
                               Vector predictions) {
  const Vector measured = sm.measured_speedups();
  VECCOST_ASSERT(predictions.size() == measured.size(),
                 "prediction/dataset size mismatch");
  ModelEval e;
  e.label = std::move(label);
  e.pearson = pearson(predictions, measured);
  e.spearman = spearman(predictions, measured);
  e.rmse = rmse(predictions, measured);
  e.confusion = classify(predictions, measured);
  e.outcome = model::evaluate_decisions(predictions, measured,
                                        sm.scalar_cycles_vec(),
                                        sm.vector_cycles_vec());
  e.predictions = std::move(predictions);
  return e;
}

ModelEval experiment_baseline(const SuiteMeasurement& sm) {
  return evaluate_predictions(sm, "llvm-baseline", sm.baseline_predictions());
}

FitExperiment experiment_fit_speedup(const SuiteMeasurement& sm,
                                     model::Fitter fitter,
                                     analysis::FeatureSet set, bool loocv) {
  const Matrix x = sm.design_matrix(set);
  const Vector y = sm.measured_speedups();
  FitExperiment out;
  out.model = model::fit_model(x, y, fitter, set, {}, sm.target_name);
  Vector pred;
  if (loocv) {
    pred = model::loocv_predictions(x, y, fitter, set);
  } else {
    pred.reserve(x.rows());
    for (std::size_t i = 0; i < x.rows(); ++i)
      pred.push_back(out.model.predict_features(x.row(i)));
  }
  std::string label = std::string(model::to_string(fitter)) + "-" +
                      analysis::to_string(set) + (loocv ? "-loocv" : "");
  out.eval = evaluate_predictions(sm, std::move(label), std::move(pred));
  return out;
}

FitExperiment experiment_fit_cost(const SuiteMeasurement& sm,
                                  model::Fitter fitter,
                                  analysis::FeatureSet set, bool loocv) {
  // Fit COSTS (the slide-18 variant): one model for the measured scalar
  // cycles per iteration, one for the measured vector cycles per body; the
  // speedup estimate is their ratio times VF. Both targets span wide
  // intervals, which is exactly why the paper prefers fitting speedup.
  const Matrix x = sm.design_matrix(set);
  const Vector y_vec = sm.vector_costs();
  const Vector y_sc = sm.scalar_costs();
  FitExperiment out;
  out.model = model::fit_model(x, y_vec, fitter, set, {}, sm.target_name);
  const model::LinearSpeedupModel scalar_model =
      model::fit_model(x, y_sc, fitter, set, {}, sm.target_name);

  Vector vec_pred, sc_pred;
  if (loocv) {
    vec_pred = model::loocv_predictions(x, y_vec, fitter, set);
    sc_pred = model::loocv_predictions(x, y_sc, fitter, set);
  } else {
    for (std::size_t i = 0; i < x.rows(); ++i) {
      vec_pred.push_back(out.model.predict_features(x.row(i)));
      sc_pred.push_back(scalar_model.predict_features(x.row(i)));
    }
  }
  const Vector vfs = sm.vf_column();
  Vector pred(vec_pred.size());
  for (std::size_t i = 0; i < pred.size(); ++i) {
    // Costs below one cycle per body are physically impossible; clamping
    // keeps an extrapolating linear fit from exploding the ratio.
    const double denom = std::max(vec_pred[i], 1.0);
    pred[i] = std::max(sc_pred[i], 0.1) * vfs[i] / denom;
  }
  std::string label = std::string(model::to_string(fitter)) + "-cost-" +
                      analysis::to_string(set) + (loocv ? "-loocv" : "");
  out.eval = evaluate_predictions(sm, std::move(label), std::move(pred));
  return out;
}

LlvVsSlpResult experiment_llv_vs_slp(const std::string& kernel_name,
                                     const machine::TargetDesc& target) {
  const tsvc::KernelInfo* info = tsvc::find_kernel(kernel_name);
  VECCOST_ASSERT(info != nullptr, "unknown kernel: " + kernel_name);
  const ir::LoopKernel scalar = info->build();
  const std::int64_t n = scalar.default_n;

  LlvVsSlpResult out;
  out.kernel = kernel_name;
  const double scalar_cycles = machine::measure_scalar_cycles(scalar, target, n);

  xform::AnalysisManager analyses;
  const xform::Pipeline llv_pipeline = xform::Pipeline::parse("llv");
  const xform::PipelineResult llv = llv_pipeline.run(scalar, target, analyses);
  if (llv.ok) {
    out.llv_ok = true;
    out.llv_predicted =
        model::llvm_predict(scalar, llv.state.kernel, target).predicted_speedup;
    out.llv_measured =
        scalar_cycles /
        machine::measure_vector_cycles(llv.state.kernel, scalar, target, n);
  }

  const auto slp = vectorizer::slp_vectorize(scalar, target);
  if (slp.ok) {
    out.slp_ok = true;
    out.slp_predicted = model::llvm_predict_slp(scalar, slp, target);
    out.slp_measured =
        scalar_cycles / machine::measure_slp_cycles(scalar, slp, target, n);
  }
  return out;
}

std::vector<SummaryRow> experiment_summary(const SuiteMeasurement& sm) {
  std::vector<SummaryRow> rows;
  auto push = [&](const ModelEval& e) {
    rows.push_back({e.label, e.pearson, e.confusion.false_positive,
                    e.confusion.false_negative, e.outcome.time_following_model,
                    e.outcome.efficiency()});
  };
  push(experiment_baseline(sm));
  push(experiment_fit_speedup(sm, model::Fitter::L2, analysis::FeatureSet::Counts).eval);
  push(experiment_fit_speedup(sm, model::Fitter::NNLS, analysis::FeatureSet::Counts).eval);
  push(experiment_fit_speedup(sm, model::Fitter::NNLS, analysis::FeatureSet::Rated).eval);
  push(experiment_fit_speedup(sm, model::Fitter::SVR, analysis::FeatureSet::Rated).eval);
  push(experiment_fit_speedup(sm, model::Fitter::NNLS, analysis::FeatureSet::Extended).eval);
  return rows;
}

double CrossTargetResult::transfer_accuracy(std::size_t fit_index) const {
  double sum = 0;
  std::size_t count = 0;
  for (std::size_t j = 0; j < targets.size(); ++j) {
    if (j == fit_index) continue;
    sum += matrix[fit_index][j].pearson;
    ++count;
  }
  return count > 0 ? sum / static_cast<double>(count) : 0.0;
}

CrossTargetResult experiment_crosstarget(model::Fitter fitter,
                                         analysis::FeatureSet set,
                                         const SessionOptions& opts) {
  CrossTargetResult out;
  out.fitter = fitter;
  out.set = set;

  // One Session-driven campaign per catalog target. The vectorizable subset
  // (and so the dataset rows) differs per target — SVE's predication and
  // hardware gathers admit kernels the fixed-width NEON targets reject.
  std::vector<Matrix> xs;
  std::vector<Vector> ys;
  for (const machine::TargetDesc& target : machine::all_targets()) {
    const Session session(target, opts);
    const SuiteMeasurement sm = session.measure().suite;
    out.targets.push_back(target.name);
    out.dataset_sizes.push_back(sm.dataset_indices().size());
    xs.push_back(sm.design_matrix(set));
    ys.push_back(sm.measured_speedups());
    out.models.push_back(
        model::fit_model(xs.back(), ys.back(), fitter, set, {}, target.name));
  }

  // Transfer matrix: weights from target i, dataset from target j. The
  // features are scalar-kernel properties, so rows are comparable across
  // targets; only the weights carry machine identity.
  out.matrix.resize(out.targets.size());
  for (std::size_t i = 0; i < out.targets.size(); ++i) {
    out.matrix[i].resize(out.targets.size());
    for (std::size_t j = 0; j < out.targets.size(); ++j) {
      Vector pred;
      pred.reserve(xs[j].rows());
      for (std::size_t r = 0; r < xs[j].rows(); ++r)
        pred.push_back(out.models[i].predict_features(xs[j].row(r)));
      out.matrix[i][j].pearson = pearson(pred, ys[j]);
      out.matrix[i][j].rmse = rmse(pred, ys[j]);
    }
  }
  return out;
}

}  // namespace veccost::eval
