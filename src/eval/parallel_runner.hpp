// Parallel experiment execution: fan the per-kernel suite measurement out
// across a thread pool, with the measurement cache in front.
//
// Determinism contract: results are keyed by kernel index and merged in
// suite order, so a ParallelRunner suite measurement is bit-identical to
// eval::measure_suite for every jobs value — the differential test suite
// (tests/parallel_runner_test.cpp, `ctest -L parallel`) enforces this.
#pragma once

#include <cstddef>
#include <cstdint>

#include "eval/measurement.hpp"
#include "eval/measurement_cache.hpp"
#include "machine/target.hpp"

namespace veccost::eval {

struct RunnerOptions {
  /// Concurrent measurement jobs; 0 = default_parallelism() (--jobs /
  /// VECCOST_JOBS / hardware threads).
  std::size_t jobs = 0;
  /// Consult and refresh the measurement cache.
  bool use_cache = true;
  /// Cache directory; empty = MeasurementCache::default_dir().
  std::string cache_dir;
  /// Cache key ingredient; tests override it to simulate pipeline changes.
  std::uint64_t pipeline_version = kPipelineVersion;
  /// Also run validate_kernel_semantics over the whole suite (scalar vs.
  /// every distinct vectorization, pooled workloads). Off by default:
  /// measure_kernel is analytic, so validation changes no measured number —
  /// it is a correctness sweep of the execution engine.
  bool validate_semantics = false;
  /// Problem size for semantics validation; 0 = each kernel's default_n.
  /// The default keeps a full-suite sweep cheap while still exercising
  /// remainder loops at every VF.
  std::int64_t validation_n = 4096;
};

class ParallelRunner {
 public:
  explicit ParallelRunner(RunnerOptions opts = {});

  /// Measure the whole suite on `target`: cached kernels are reused, the
  /// rest are measured in parallel, and the merged result (suite order) is
  /// written back to the cache when anything was re-measured.
  [[nodiscard]] SuiteMeasurement measure_suite(
      const machine::TargetDesc& target,
      double noise = machine::kDefaultNoise);

  /// Cache statistics of the most recent measure_suite call: hits is the
  /// number of kernels served from cache, misses the number actually
  /// re-measured (hits + misses == suite size).
  [[nodiscard]] std::size_t cache_hits() const { return cache_hits_; }
  [[nodiscard]] std::size_t cache_misses() const { return cache_misses_; }

  /// Scalar/vector configurations executed by the semantics sweep of the
  /// most recent measure_suite call (0 unless validate_semantics is set).
  [[nodiscard]] std::size_t validated_configurations() const {
    return validated_configurations_;
  }

  [[nodiscard]] const RunnerOptions& options() const { return opts_; }

 private:
  RunnerOptions opts_;
  MeasurementCache cache_;
  std::size_t cache_hits_ = 0;
  std::size_t cache_misses_ = 0;
  std::size_t validated_configurations_ = 0;
};

/// Convenience for the bench drivers and the CLI: one cached, parallel
/// suite measurement honoring the process-wide --jobs / --no-cache
/// configuration. Drop-in replacement for eval::measure_suite with
/// identical results.
[[nodiscard]] SuiteMeasurement measure_suite_cached(
    const machine::TargetDesc& target, double noise = machine::kDefaultNoise);

}  // namespace veccost::eval
