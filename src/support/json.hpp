// Minimal JSON value: parse + deterministic one-line serialization.
//
// The serve protocol (src/serve) speaks newline-delimited JSON, and its
// golden wire-format test pins the exact bytes — so `dump()` is fully
// deterministic: objects preserve insertion order (protocol writers emit
// fields in a fixed order), doubles print in their shortest form that
// round-trips bit-exactly through strtod, and there is no optional
// whitespace. The obs
// exporter keeps its own pretty-printed writer (obs/export.cpp) for the
// veccost-metrics-v1 file format; this class is for protocol payloads and
// tooling that needs to *construct and consume* arbitrary JSON, not just
// stream one fixed schema.
//
// Supported: null, bool, 64-bit signed integers, finite doubles, strings
// (with \uXXXX escapes decoded to UTF-8), arrays, objects. Parse errors
// throw veccost::Error with the 0-based character offset.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace veccost::support {

class Json {
 public:
  enum class Kind { Null, Bool, Int, Double, String, Array, Object };

  Json() = default;  ///< null
  Json(bool b) : kind_(Kind::Bool), bool_(b) {}
  Json(std::int64_t v) : kind_(Kind::Int), int_(v) {}
  Json(int v) : Json(static_cast<std::int64_t>(v)) {}
  Json(std::size_t v) : Json(static_cast<std::int64_t>(v)) {}
  /// Non-finite doubles are not representable in JSON and throw.
  Json(double v);
  Json(std::string s) : kind_(Kind::String), string_(std::move(s)) {}
  Json(const char* s) : Json(std::string(s)) {}

  [[nodiscard]] static Json object() {
    Json j;
    j.kind_ = Kind::Object;
    return j;
  }
  [[nodiscard]] static Json array() {
    Json j;
    j.kind_ = Kind::Array;
    return j;
  }

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::Null; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::Object; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::Array; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::String; }
  [[nodiscard]] bool is_number() const {
    return kind_ == Kind::Int || kind_ == Kind::Double;
  }

  // ---- typed reads (throw veccost::Error on a kind mismatch) ---------------
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::int64_t as_int() const;  ///< Int only
  [[nodiscard]] double as_double() const;     ///< Int or Double
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<Json>& items() const;  ///< Array only
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members()
      const;  ///< Object only

  // ---- object access (insertion order preserved) ---------------------------
  /// Set/replace a member; returns *this for chaining. Object only.
  Json& set(std::string key, Json value);
  /// Remove a member if present; returns true when removed. Object only.
  bool erase(std::string_view key);
  /// Member lookup; nullptr when absent (or not an object).
  [[nodiscard]] const Json* find(std::string_view key) const;

  // ---- convenience member reads with fallbacks -----------------------------
  [[nodiscard]] std::string get_string(std::string_view key,
                                       std::string fallback = "") const;
  [[nodiscard]] std::int64_t get_int(std::string_view key,
                                     std::int64_t fallback = 0) const;
  [[nodiscard]] bool get_bool(std::string_view key, bool fallback) const;

  // ---- array access --------------------------------------------------------
  /// Append an element; returns *this for chaining. Array only.
  Json& push(Json value);

  /// Compact deterministic serialization (no newlines — one request/response
  /// per line is the serve framing).
  [[nodiscard]] std::string dump() const;

  /// Parse a complete JSON document (trailing whitespace allowed, trailing
  /// junk is an error). Throws veccost::Error with a character offset.
  [[nodiscard]] static Json parse(std::string_view text);

  friend bool operator==(const Json&, const Json&) = default;

 private:
  void dump_to(std::string& out) const;

  Kind kind_ = Kind::Null;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

/// JSON string escaping for raw emitters ("x → "\"x\"" with control
/// characters as \uXXXX). dump() uses it internally.
[[nodiscard]] std::string json_escape(std::string_view s);

}  // namespace veccost::support
