#include "support/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "support/error.hpp"

namespace veccost::support {

namespace {

[[noreturn]] void bad(const std::string& what, std::size_t offset) {
  throw Error("JSON: " + what + " at offset " + std::to_string(offset));
}

const char* kind_name(Json::Kind k) {
  switch (k) {
    case Json::Kind::Null: return "null";
    case Json::Kind::Bool: return "bool";
    case Json::Kind::Int: return "int";
    case Json::Kind::Double: return "double";
    case Json::Kind::String: return "string";
    case Json::Kind::Array: return "array";
    case Json::Kind::Object: return "object";
  }
  return "?";
}

[[noreturn]] void kind_mismatch(const char* want, Json::Kind got) {
  throw Error(std::string("JSON: expected ") + want + ", have " +
              kind_name(got));
}

void append_utf8(std::string& out, std::uint32_t cp) {
  if (cp < 0x80) {
    out += static_cast<char>(cp);
  } else if (cp < 0x800) {
    out += static_cast<char>(0xc0 | (cp >> 6));
    out += static_cast<char>(0x80 | (cp & 0x3f));
  } else {
    out += static_cast<char>(0xe0 | (cp >> 12));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
    out += static_cast<char>(0x80 | (cp & 0x3f));
  }
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json document() {
    Json v = value();
    skip_ws();
    if (pos_ != text_.size()) bad("trailing characters", pos_);
    return v;
  }

 private:
  Json value() {
    skip_ws();
    if (pos_ >= text_.size()) bad("unexpected end of input", pos_);
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return Json(string());
      case 't': return keyword("true", Json(true));
      case 'f': return keyword("false", Json(false));
      case 'n': return keyword("null", Json());
      default: return number();
    }
  }

  Json object() {
    Json obj = Json::object();
    ++pos_;  // '{'
    skip_ws();
    if (accept('}')) return obj;
    for (;;) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"')
        bad("expected a string key", pos_);
      std::string key = string();
      skip_ws();
      if (!accept(':')) bad("expected ':'", pos_);
      obj.set(std::move(key), value());
      skip_ws();
      if (accept(',')) continue;
      if (accept('}')) return obj;
      bad("expected ',' or '}'", pos_);
    }
  }

  Json array() {
    Json arr = Json::array();
    ++pos_;  // '['
    skip_ws();
    if (accept(']')) return arr;
    for (;;) {
      arr.push(value());
      skip_ws();
      if (accept(',')) continue;
      if (accept(']')) return arr;
      bad("expected ',' or ']'", pos_);
    }
  }

  std::string string() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) bad("unterminated escape", pos_);
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) bad("truncated \\u escape", pos_);
          std::uint32_t cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<std::uint32_t>(h - '0');
            else if (h >= 'a' && h <= 'f')
              cp |= static_cast<std::uint32_t>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              cp |= static_cast<std::uint32_t>(h - 'A' + 10);
            else bad("bad \\u escape digit", pos_ - 1);
          }
          append_utf8(out, cp);
          break;
        }
        default: bad("unknown escape", pos_ - 1);
      }
    }
    if (pos_ >= text_.size()) bad("unterminated string", pos_);
    ++pos_;  // closing '"'
    return out;
  }

  Json number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool is_double = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) bad("expected a value", start);
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    if (!is_double) {
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (end == token.c_str() + token.size())
        return Json(static_cast<std::int64_t>(v));
    }
    end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(d))
      bad("malformed number '" + token + "'", start);
    return Json(d);
  }

  Json keyword(std::string_view word, Json v) {
    if (text_.substr(pos_, word.size()) != word) bad("expected a value", pos_);
    pos_ += word.size();
    return v;
  }

  bool accept(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json::Json(double v) : kind_(Kind::Double), double_(v) {
  VECCOST_ASSERT(std::isfinite(v), "JSON cannot represent a non-finite double");
}

bool Json::as_bool() const {
  if (kind_ != Kind::Bool) kind_mismatch("bool", kind_);
  return bool_;
}

std::int64_t Json::as_int() const {
  if (kind_ != Kind::Int) kind_mismatch("int", kind_);
  return int_;
}

double Json::as_double() const {
  if (kind_ == Kind::Int) return static_cast<double>(int_);
  if (kind_ != Kind::Double) kind_mismatch("number", kind_);
  return double_;
}

const std::string& Json::as_string() const {
  if (kind_ != Kind::String) kind_mismatch("string", kind_);
  return string_;
}

const std::vector<Json>& Json::items() const {
  if (kind_ != Kind::Array) kind_mismatch("array", kind_);
  return array_;
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  if (kind_ != Kind::Object) kind_mismatch("object", kind_);
  return object_;
}

Json& Json::set(std::string key, Json value) {
  if (kind_ != Kind::Object) kind_mismatch("object", kind_);
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
  return *this;
}

bool Json::erase(std::string_view key) {
  if (kind_ != Kind::Object) kind_mismatch("object", kind_);
  for (auto it = object_.begin(); it != object_.end(); ++it) {
    if (it->first == key) {
      object_.erase(it);
      return true;
    }
  }
  return false;
}

const Json* Json::find(std::string_view key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (const auto& [k, v] : object_)
    if (k == key) return &v;
  return nullptr;
}

std::string Json::get_string(std::string_view key, std::string fallback) const {
  const Json* v = find(key);
  return v != nullptr && v->is_string() ? v->as_string() : std::move(fallback);
}

std::int64_t Json::get_int(std::string_view key, std::int64_t fallback) const {
  const Json* v = find(key);
  return v != nullptr && v->kind() == Kind::Int ? v->as_int() : fallback;
}

bool Json::get_bool(std::string_view key, bool fallback) const {
  const Json* v = find(key);
  return v != nullptr && v->kind() == Kind::Bool ? v->as_bool() : fallback;
}

Json& Json::push(Json value) {
  if (kind_ != Kind::Array) kind_mismatch("array", kind_);
  array_.push_back(std::move(value));
  return *this;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void Json::dump_to(std::string& out) const {
  switch (kind_) {
    case Kind::Null: out += "null"; break;
    case Kind::Bool: out += bool_ ? "true" : "false"; break;
    case Kind::Int: out += std::to_string(int_); break;
    case Kind::Double: {
      // Shortest representation that round-trips the exact bits through
      // strtod — deterministic across platforms (the golden wire-format test
      // depends on it) without %.17g's trailing noise (0.1 stays "0.1", not
      // "0.10000000000000001").
      char buf[32];
      for (int precision = 15; precision <= 17; ++precision) {
        std::snprintf(buf, sizeof buf, "%.*g", precision, double_);
        if (std::strtod(buf, nullptr) == double_) break;
      }
      out += buf;
      break;
    }
    case Kind::String: out += json_escape(string_); break;
    case Kind::Array: {
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i) out += ',';
        array_[i].dump_to(out);
      }
      out += ']';
      break;
    }
    case Kind::Object: {
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i) out += ',';
        out += json_escape(object_[i].first);
        out += ':';
        object_[i].second.dump_to(out);
      }
      out += '}';
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

Json Json::parse(std::string_view text) { return Parser(text).document(); }

}  // namespace veccost::support
