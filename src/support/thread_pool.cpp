#include "support/thread_pool.hpp"

#include <cstdlib>
#include <string>

namespace veccost {

namespace {
std::atomic<std::size_t> g_jobs_override{0};
}  // namespace

std::size_t default_parallelism() {
  const std::size_t override = g_jobs_override.load(std::memory_order_relaxed);
  if (override > 0) return override;
  if (const char* env = std::getenv("VECCOST_JOBS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

void set_default_parallelism(std::size_t jobs) {
  g_jobs_override.store(jobs, std::memory_order_relaxed);
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = default_parallelism();
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

bool ThreadPool::run_pending_task() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  return true;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(default_parallelism());
  return pool;
}

}  // namespace veccost
