#include "support/thread_pool.hpp"

#include "obs/metrics.hpp"
#include "support/env_flags.hpp"

namespace veccost {

namespace {
std::atomic<std::size_t> g_jobs_override{0};
}  // namespace

std::size_t default_parallelism() {
  const std::size_t override = g_jobs_override.load(std::memory_order_relaxed);
  if (override > 0) return override;
  if (const auto env = support::EnvFlags::count("VECCOST_JOBS")) return *env;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

void set_default_parallelism(std::size_t jobs) {
  g_jobs_override.store(jobs, std::memory_order_relaxed);
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = default_parallelism();
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  QueuedTask queued;
  queued.fn = std::move(task);
#if VECCOST_METRICS
  queued.enqueue_ns = obs::now_ns();
#endif
  std::size_t depth;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(queued));
    depth = queue_.size();
  }
  VECCOST_GAUGE_SET("threadpool.queue_depth", depth);
  (void)depth;  // only read by the gauge, which VECCOST_METRICS=0 removes
  cv_.notify_one();
}

void ThreadPool::run_task(QueuedTask task) {
#if VECCOST_METRICS
  if (task.enqueue_ns != 0)
    VECCOST_OBSERVE("threadpool.task_wait_ns", obs::now_ns() - task.enqueue_ns);
  VECCOST_COUNTER_ADD("threadpool.tasks", 1);
  VECCOST_SPAN("threadpool.task_run_ns");
#endif
  task.fn();
}

bool ThreadPool::run_pending_task() {
  QueuedTask task;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
    VECCOST_GAUGE_SET("threadpool.queue_depth", queue_.size());
  }
  run_task(std::move(task));
  return true;
}

void ThreadPool::worker_loop() {
  for (;;) {
    QueuedTask task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      VECCOST_GAUGE_SET("threadpool.queue_depth", queue_.size());
    }
    run_task(std::move(task));
  }
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(default_parallelism());
  return pool;
}

}  // namespace veccost
