#include "support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "support/error.hpp"

namespace veccost {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
  VECCOST_ASSERT(!headers_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  VECCOST_ASSERT(cells.size() == headers_.size(), "row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::pct(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << fraction * 100.0 << '%';
  return os.str();
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c ? "  " : "") << std::left << std::setw(static_cast<int>(widths[c]))
         << cells[c];
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

}  // namespace veccost
