// Shared content-hashing primitives.
//
// Two hashers grew up independently — the fuzz campaign's order-sensitive
// FNV-1a digest (testing/fuzz.cpp) and the measurement cache's SplitMix64
// content mixer (eval/measurement_cache.cpp) — and the xform analysis cache
// needed a third. They all live here now so every content key in the repo
// folds bytes the same way (support_test.cpp pins both).
//
// Changing either algorithm invalidates persisted artifacts: Fnv1a feeds the
// fuzz campaign digest that CI compares across runs, ContentHasher feeds the
// measurement-cache keys on disk. Treat the byte-for-byte semantics as a
// wire format.
#pragma once

#include <bit>
#include <cstdint>
#include <string_view>

#include "support/rng.hpp"

namespace veccost::support {

/// Order-sensitive FNV-1a over strings and integers. Strings are terminated
/// with a 0xff separator so `add("ab"); add("c")` and `add("a"); add("bc")`
/// digest differently; u64s fold little-endian byte by byte.
class Fnv1a {
 public:
  static constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ull;
  static constexpr std::uint64_t kPrime = 0x100000001b3ull;

  constexpr void add_byte(unsigned char b) {
    h_ ^= b;
    h_ *= kPrime;
  }
  constexpr void add_bytes(std::string_view s) {
    for (const char c : s) add_byte(static_cast<unsigned char>(c));
  }
  constexpr void add(std::string_view s) {
    add_bytes(s);
    add_byte(0xff);  // length separator
  }
  constexpr void add_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
      add_byte(static_cast<unsigned char>(v >> (8 * i)));
  }
  [[nodiscard]] constexpr std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = kOffsetBasis;
};

/// Incremental 64-bit content hash: order-dependent mixing via SplitMix64,
/// strings folded through FNV-1a (hash_string) first. The measurement cache
/// keys files with it; the xform AnalysisManager keys cached analyses.
class ContentHasher {
 public:
  void mix(std::uint64_t v) { state_ = SplitMix64(state_ ^ v).next(); }
  void mix(double v) { mix(std::bit_cast<std::uint64_t>(v)); }
  void mix(bool v) { mix(static_cast<std::uint64_t>(v)); }
  void mix(int v) { mix(static_cast<std::uint64_t>(v)); }
  void mix(std::int64_t v) { mix(static_cast<std::uint64_t>(v)); }
  void mix(std::string_view s) { mix(hash_string(s)); }
  [[nodiscard]] std::uint64_t value() const { return state_; }

 private:
  std::uint64_t state_ = 0x9e3779b97f4a7c15ull;
};

}  // namespace veccost::support
