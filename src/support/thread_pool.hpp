// Fixed-size worker pool and a deterministic parallel map.
//
// The experiment pipeline is embarrassingly parallel (one task per TSVC
// kernel, one task per cross-validation fold), but the paper's numbers must
// never depend on scheduling: `parallel_map` assigns every result to its
// index slot, so the merged output is byte-identical to a serial loop no
// matter how tasks interleave. Exceptions are captured per index and the
// lowest-index one is rethrown — again matching what a serial loop would
// have thrown first.
//
// The pool is deadlock-free under nested use: a thread that waits for
// parallel work (including a worker thread running a task that itself calls
// `parallel_map`) helps drain the queue instead of blocking idle.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace veccost {

/// Worker count used when a caller passes jobs == 0: the `--jobs` /
/// `set_default_parallelism` override if present, else the VECCOST_JOBS
/// environment variable, else std::thread::hardware_concurrency().
[[nodiscard]] std::size_t default_parallelism();

/// Override `default_parallelism()` process-wide (0 restores auto-detect).
/// Backs the CLI `--jobs N` flag.
void set_default_parallelism(std::size_t jobs);

class ThreadPool {
 public:
  /// Spawn `threads` workers (0 = default_parallelism()). A pool of size 1
  /// still has one real worker; `parallel_map` short-circuits to a plain
  /// loop before ever touching the pool when jobs <= 1.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueue a callable; the future rethrows any exception it raised.
  template <class F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    enqueue([task] { (*task)(); });
    return result;
  }

  /// Pop and run one queued task on the calling thread; false if the queue
  /// was empty. This is what lets waiting threads help instead of deadlock.
  bool run_pending_task();

  /// Process-wide shared pool, created on first use.
  static ThreadPool& shared();

 private:
  /// Queued callable plus its enqueue timestamp, so the observability layer
  /// can report queue-wait latency (0 when metrics are compiled out).
  struct QueuedTask {
    std::function<void()> fn;
    std::uint64_t enqueue_ns = 0;
  };

  void enqueue(std::function<void()> task);
  void run_task(QueuedTask task);

  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<QueuedTask> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

namespace detail {

/// Shared driver: runs fn(i) for every i in [0, count) across the caller
/// plus up to jobs-1 pool workers, recording per-index exceptions. `fn` must
/// only write to index-distinct state (parallel_map's slots, or the caller's
/// own index-keyed arrays for the void overload).
template <class Fn>
void parallel_for_impl(ThreadPool& pool, std::size_t count, Fn&& fn,
                       std::size_t jobs) {
  std::vector<std::exception_ptr> errors(count);
  std::atomic<std::size_t> next{0};
  auto drain = [&] {
    for (std::size_t i; (i = next.fetch_add(1)) < count;) {
      try {
        fn(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  };

  const std::size_t helpers = std::min(jobs, count) - 1;
  std::vector<std::future<void>> pending;
  pending.reserve(helpers);
  for (std::size_t h = 0; h < helpers; ++h) pending.push_back(pool.submit(drain));
  drain();  // the caller is always one of the runners
  for (auto& f : pending) {
    // Help with other queued work while waiting so nested parallel_map
    // calls cannot deadlock a saturated pool.
    while (f.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
      if (!pool.run_pending_task())
        f.wait_for(std::chrono::microseconds(50));
    }
    f.get();
  }
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);
}

}  // namespace detail

/// Evaluate fn(0..count-1) with up to `jobs` concurrent runners (0 =
/// default_parallelism()) on `pool`, returning results in index order.
/// Deterministic: output (and which exception propagates) is identical to
/// the serial loop for any jobs value.
template <class Fn>
auto parallel_map(ThreadPool& pool, std::size_t count, Fn&& fn,
                  std::size_t jobs = 0)
    -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
  using R = std::invoke_result_t<Fn&, std::size_t>;
  if (jobs == 0) jobs = default_parallelism();
  std::vector<R> out(count);
  if (jobs <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) out[i] = fn(i);
    return out;
  }
  detail::parallel_for_impl(pool, count, [&](std::size_t i) { out[i] = fn(i); },
                            jobs);
  return out;
}

/// As parallel_map, for callables returning void (fn must write only to
/// index-distinct state).
template <class Fn>
void parallel_for(ThreadPool& pool, std::size_t count, Fn&& fn,
                  std::size_t jobs = 0) {
  if (jobs == 0) jobs = default_parallelism();
  if (jobs <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  detail::parallel_for_impl(pool, count, fn, jobs);
}

/// Convenience overloads on the shared pool.
template <class Fn>
auto parallel_map(std::size_t count, Fn&& fn, std::size_t jobs = 0) {
  return parallel_map(ThreadPool::shared(), count, std::forward<Fn>(fn), jobs);
}
template <class Fn>
void parallel_for(std::size_t count, Fn&& fn, std::size_t jobs = 0) {
  parallel_for(ThreadPool::shared(), count, std::forward<Fn>(fn), jobs);
}

}  // namespace veccost
