// Statistical metrics used to evaluate cost-model quality.
//
// The paper reports the correlation between estimated and measured speedup,
// plus false-positive / false-negative vectorization decisions. We provide
// Pearson and Spearman correlation, the usual regression error metrics, and a
// binary-decision confusion matrix keyed on the speedup > 1 threshold.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace veccost {

[[nodiscard]] double mean(std::span<const double> v);
[[nodiscard]] double variance(std::span<const double> v);  // population
[[nodiscard]] double stddev(std::span<const double> v);

/// Pearson linear correlation coefficient in [-1, 1].
/// Returns 0 when either series is constant.
[[nodiscard]] double pearson(std::span<const double> x, std::span<const double> y);

/// Spearman rank correlation (Pearson on fractional ranks, ties averaged).
[[nodiscard]] double spearman(std::span<const double> x, std::span<const double> y);

[[nodiscard]] double rmse(std::span<const double> predicted, std::span<const double> actual);
[[nodiscard]] double mae(std::span<const double> predicted, std::span<const double> actual);

/// Mean absolute percentage error; entries with |actual| < 1e-12 are skipped.
[[nodiscard]] double mape(std::span<const double> predicted, std::span<const double> actual);

/// Confusion matrix for the "should we vectorize?" decision.
/// Positive = model predicts speedup > threshold (vectorize).
/// A false positive means the model said "vectorize" but measured speedup was
/// <= threshold (vectorization hurt); a false negative means profitable
/// vectorization was skipped.
struct Confusion {
  std::size_t true_positive = 0;
  std::size_t true_negative = 0;
  std::size_t false_positive = 0;
  std::size_t false_negative = 0;

  [[nodiscard]] std::size_t total() const {
    return true_positive + true_negative + false_positive + false_negative;
  }
  [[nodiscard]] double accuracy() const;
  [[nodiscard]] std::string to_string() const;
};

[[nodiscard]] Confusion classify(std::span<const double> predicted,
                                 std::span<const double> measured,
                                 double threshold = 1.0);

/// Fractional ranks with average tie handling (helper, exposed for tests).
[[nodiscard]] std::vector<double> ranks(std::span<const double> v);

}  // namespace veccost
