// Error handling utilities for the veccost library.
//
// The library is used both from tests (where throwing is convenient) and from
// long-running experiment drivers (where a crash with context beats silent
// corruption). All internal invariant violations throw veccost::Error with a
// formatted message; VECCOST_ASSERT is kept enabled in release builds because
// none of the checks sit on hot paths.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace veccost {

/// Exception type thrown for all veccost errors (bad IR, singular systems,
/// invalid experiment configuration, ...).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void fail(const char* file, int line, const char* cond,
                              const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": assertion `" << cond << "` failed";
  if (!msg.empty()) os << ": " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace veccost

/// Assert that `cond` holds; throws veccost::Error with location info
/// otherwise. Enabled in all build types.
#define VECCOST_ASSERT(cond, msg)                                     \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::veccost::detail::fail(__FILE__, __LINE__, #cond, (msg));      \
    }                                                                 \
  } while (false)

/// Unconditional failure with a formatted message.
#define VECCOST_FAIL(msg) ::veccost::detail::fail(__FILE__, __LINE__, "unreachable", (msg))
