// Error handling utilities for the veccost library.
//
// The library is used both from tests (where throwing is convenient) and from
// long-running experiment drivers (where a crash with context beats silent
// corruption). All internal invariant violations throw veccost::Error with a
// formatted message. Two tiers:
//  * VECCOST_ASSERT — enabled in every build type; for checks off the hot
//    paths and for conditions callers rely on observing (e.g. the executor's
//    bounds checks, which tests EXPECT_THROW on).
//  * VECCOST_DCHECK — compiled out under NDEBUG; for per-element checks on
//    hot paths (Matrix indexing inside the QR inner loops). Debug builds and
//    the sanitizer CI configuration (VECCOST_FORCE_DCHECK) keep them live.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace veccost {

/// Exception type thrown for all veccost errors (bad IR, singular systems,
/// invalid experiment configuration, ...).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void fail(const char* file, int line, const char* cond,
                              const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": assertion `" << cond << "` failed";
  if (!msg.empty()) os << ": " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace veccost

/// Assert that `cond` holds; throws veccost::Error with location info
/// otherwise. Enabled in all build types.
#define VECCOST_ASSERT(cond, msg)                                     \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::veccost::detail::fail(__FILE__, __LINE__, #cond, (msg));      \
    }                                                                 \
  } while (false)

/// Unconditional failure with a formatted message.
#define VECCOST_FAIL(msg) ::veccost::detail::fail(__FILE__, __LINE__, "unreachable", (msg))

/// Debug-only assertion: active when NDEBUG is unset (Debug builds) or when
/// VECCOST_FORCE_DCHECK is defined (the sanitizer CI job defines it so
/// optimized sanitizer runs still see the checks). Compiles to nothing in
/// plain Release builds — use for checks inside hot inner loops.
#if !defined(NDEBUG) || defined(VECCOST_FORCE_DCHECK)
#define VECCOST_DCHECK(cond, msg) VECCOST_ASSERT(cond, msg)
#else
#define VECCOST_DCHECK(cond, msg) \
  do {                            \
  } while (false)
#endif
