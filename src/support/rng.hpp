// Deterministic pseudo-random number generation.
//
// All randomness in veccost (workload initialization, measurement jitter,
// synthetic fitting data) flows through these generators so that every
// experiment binary prints byte-identical output across runs and platforms.
// We intentionally avoid std::mt19937 + std::uniform_real_distribution since
// the distributions are not guaranteed to be reproducible across standard
// library implementations.
#pragma once

#include <cstdint>
#include <string_view>

namespace veccost {

/// SplitMix64: used to seed Xoshiro and to hash strings into seeds.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Stable 64-bit hash of a string (FNV-1a), for deriving per-kernel seeds.
constexpr std::uint64_t hash_string(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Xoshiro256**: fast, high-quality, reproducible PRNG.
class Rng {
 public:
  explicit constexpr Rng(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  constexpr std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [0, n). n must be > 0.
  constexpr std::uint64_t next_below(std::uint64_t n) {
    // Rejection-free variant is fine here: modulo bias is negligible for the
    // small ranges we use, and determinism matters more than uniformity tails.
    return next_u64() % n;
  }

  /// Standard normal via Marsaglia polar method (deterministic).
  double normal() {
    // Cached second value for the polar method.
    if (has_cache_) {
      has_cache_ = false;
      return cache_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = sqrt_impl(-2.0 * log_impl(s) / s);
    cache_ = v * m;
    has_cache_ = true;
    return u * m;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  static double sqrt_impl(double x);
  static double log_impl(double x);

  std::uint64_t s_[4]{};
  double cache_ = 0.0;
  bool has_cache_ = false;
};

inline double Rng::sqrt_impl(double x) {
  return __builtin_sqrt(x);
}
inline double Rng::log_impl(double x) {
  return __builtin_log(x);
}

}  // namespace veccost
