#include "support/matrix.hpp"

#include <cmath>
#include <iomanip>
#include <sstream>

namespace veccost {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
  rows_ = init.size();
  cols_ = rows_ ? init.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    VECCOST_ASSERT(row.size() == cols_, "ragged initializer list");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Vector Matrix::col(std::size_t c) const {
  VECCOST_ASSERT(c < cols_, "col index out of range");
  Vector out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

void Matrix::push_row(std::span<const double> values) {
  if (rows_ == 0 && cols_ == 0) cols_ = values.size();
  VECCOST_ASSERT(values.size() == cols_, "push_row width mismatch");
  data_.insert(data_.end(), values.begin(), values.end());
  ++rows_;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  VECCOST_ASSERT(cols_ == rhs.rows_, "matmul dimension mismatch");
  Matrix out(rows_, rhs.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < rhs.cols_; ++j) out(i, j) += aik * rhs(k, j);
    }
  }
  return out;
}

Vector Matrix::operator*(const Vector& rhs) const {
  VECCOST_ASSERT(cols_ == rhs.size(), "matvec dimension mismatch");
  Vector out(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) out[i] = dot(row(i), rhs);
  return out;
}

Matrix Matrix::without_row(std::size_t r) const {
  VECCOST_ASSERT(r < rows_, "without_row index out of range");
  Matrix out(rows_ - 1, cols_);
  std::size_t dst = 0;
  for (std::size_t i = 0; i < rows_; ++i) {
    if (i == r) continue;
    for (std::size_t c = 0; c < cols_; ++c) out(dst, c) = (*this)(i, c);
    ++dst;
  }
  return out;
}

std::string Matrix::to_string(int precision) const {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision);
  for (std::size_t r = 0; r < rows_; ++r) {
    os << '[';
    for (std::size_t c = 0; c < cols_; ++c) {
      if (c) os << ", ";
      os << (*this)(r, c);
    }
    os << "]\n";
  }
  return os.str();
}

Vector transpose_times(const Matrix& a, const Vector& x) {
  VECCOST_ASSERT(a.rows() == x.size(), "transpose_times dimension mismatch");
  Vector out(a.cols(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const auto row = a.row(r);
    for (std::size_t c = 0; c < a.cols(); ++c) out[c] += row[c] * x[r];
  }
  return out;
}

double dot(std::span<const double> a, std::span<const double> b) {
  VECCOST_ASSERT(a.size() == b.size(), "dot dimension mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm2(std::span<const double> v) { return std::sqrt(dot(v, v)); }

Vector subtract(const Vector& a, const Vector& b) {
  VECCOST_ASSERT(a.size() == b.size(), "subtract dimension mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vector without_element(const Vector& v, std::size_t r) {
  VECCOST_ASSERT(r < v.size(), "without_element index out of range");
  Vector out;
  out.reserve(v.size() - 1);
  for (std::size_t i = 0; i < v.size(); ++i)
    if (i != r) out.push_back(v[i]);
  return out;
}

}  // namespace veccost
