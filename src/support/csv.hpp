// Minimal CSV writer/reader for exporting experiment data series (e.g. to
// plot the scatter charts the slides show) and for the measurement cache.
// Quoting follows RFC 4180: cells containing commas, quotes or newlines are
// quoted, quotes are doubled.
#pragma once

#include <istream>
#include <ostream>
#include <string>
#include <vector>

namespace veccost {

class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  /// Write one row of cells; escaping handled internally.
  void write_row(const std::vector<std::string>& cells);

  /// Format a double compactly (shortest round-trip not required; 6 digits).
  static std::string cell(double v);

  static std::string escape(const std::string& cell);

 private:
  std::ostream& out_;
};

/// Streaming RFC 4180 reader: the inverse of CsvWriter. Handles quoted
/// cells with embedded commas, doubled quotes and newlines.
class CsvReader {
 public:
  explicit CsvReader(std::istream& in) : in_(in) {}

  /// Read the next record into `cells` (cleared first). Returns false at
  /// end of input.
  bool read_row(std::vector<std::string>& cells);

 private:
  std::istream& in_;
};

}  // namespace veccost
