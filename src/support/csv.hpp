// Minimal CSV writer for exporting experiment data series (e.g. to plot the
// scatter charts the slides show). Quoting follows RFC 4180: cells containing
// commas, quotes or newlines are quoted, quotes are doubled.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace veccost {

class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  /// Write one row of cells; escaping handled internally.
  void write_row(const std::vector<std::string>& cells);

  /// Format a double compactly (shortest round-trip not required; 6 digits).
  static std::string cell(double v);

  static std::string escape(const std::string& cell);

 private:
  std::ostream& out_;
};

}  // namespace veccost
