#include "support/env_flags.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "support/error.hpp"

namespace veccost::support {

bool EnvFlags::enabled(const char* name, bool fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  std::string v(env);
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return !(v == "0" || v == "false" || v == "off" || v == "no");
}

std::optional<std::size_t> EnvFlags::count(const char* name) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return std::nullopt;
  char* end = nullptr;
  const long n = std::strtol(env, &end, 10);
  if (end == env || n <= 0) return std::nullopt;
  return static_cast<std::size_t>(n);
}

std::string EnvFlags::value(const char* name) {
  const char* env = std::getenv(name);
  return env != nullptr ? env : "";
}

GlobalOptions parse_global_flags(std::vector<std::string>& args) {
  GlobalOptions opts;
  opts.jobs = EnvFlags::count("VECCOST_JOBS").value_or(0);
  opts.use_cache = !EnvFlags::enabled("VECCOST_NO_CACHE", false);
  opts.metrics = EnvFlags::enabled("VECCOST_METRICS", true);
  opts.pipeline = EnvFlags::value("VECCOST_PIPELINE");

  std::vector<std::string> rest;
  rest.reserve(args.size());
  const auto value_of = [&](const std::string& arg, std::size_t& i,
                            const std::string& flag) -> std::string {
    if (arg == flag) {
      if (i + 1 >= args.size()) throw Error(flag + " requires a value");
      return args[++i];
    }
    return arg.substr(flag.size() + 1);  // "--flag=value"
  };
  const auto matches = [](const std::string& arg, const std::string& flag) {
    return arg == flag || arg.rfind(flag + "=", 0) == 0;
  };

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (matches(a, "--jobs")) {
      const std::string v = value_of(a, i, "--jobs");
      char* end = nullptr;
      const long n = std::strtol(v.c_str(), &end, 10);
      if (end == v.c_str() || *end != '\0' || n <= 0)
        throw Error("--jobs expects a positive count, got '" + v + "'");
      opts.jobs = static_cast<std::size_t>(n);
    } else if (a == "--no-cache") {
      opts.use_cache = false;
    } else if (a == "--no-metrics") {
      opts.metrics = false;
    } else if (matches(a, "--pipeline")) {
      opts.pipeline = value_of(a, i, "--pipeline");
      if (opts.pipeline.empty())
        throw Error("--pipeline requires a pass spec, e.g. unroll<4>,slp");
    } else if (matches(a, "--metrics-out")) {
      opts.metrics_out = value_of(a, i, "--metrics-out");
      if (opts.metrics_out.empty())
        throw Error("--metrics-out requires a file path");
    } else if (matches(a, "--trace-out")) {
      opts.trace_out = value_of(a, i, "--trace-out");
      if (opts.trace_out.empty())
        throw Error("--trace-out requires a file path");
    } else {
      rest.push_back(a);
    }
  }
  args = std::move(rest);
  return opts;
}

}  // namespace veccost::support
