// Aligned ASCII table printing for experiment reports.
//
// Every figure-reproduction binary prints its results through TextTable so
// the output is stable, diffable, and readable in a terminal.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace veccost {

class TextTable {
 public:
  /// Column headers; number of headers fixes the column count.
  explicit TextTable(std::vector<std::string> headers);

  /// Add a row of preformatted cells (must match column count).
  void add_row(std::vector<std::string> cells);

  /// Convenience: format a double with `precision` digits after the point.
  static std::string num(double v, int precision = 3);
  /// Convenience: format as percentage ("12.3%").
  static std::string pct(double fraction, int precision = 1);

  /// Render with a header rule and column padding.
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace veccost
