#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <vector>

#include "support/error.hpp"

namespace veccost {

double mean(std::span<const double> v) {
  VECCOST_ASSERT(!v.empty(), "mean of empty range");
  return std::accumulate(v.begin(), v.end(), 0.0) / static_cast<double>(v.size());
}

double variance(std::span<const double> v) {
  const double m = mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return s / static_cast<double>(v.size());
}

double stddev(std::span<const double> v) { return std::sqrt(variance(v)); }

double pearson(std::span<const double> x, std::span<const double> y) {
  VECCOST_ASSERT(x.size() == y.size() && !x.empty(), "pearson size mismatch");
  const double mx = mean(x), my = mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx, dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> ranks(std::span<const double> v) {
  const std::size_t n = v.size();
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::sort(idx.begin(), idx.end(),
            [&](std::size_t a, std::size_t b) { return v[a] < v[b]; });
  std::vector<double> out(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && v[idx[j + 1]] == v[idx[i]]) ++j;
    // Average rank for the tie group [i, j]; ranks are 1-based.
    const double r = 0.5 * (static_cast<double>(i) + static_cast<double>(j)) + 1.0;
    for (std::size_t k = i; k <= j; ++k) out[idx[k]] = r;
    i = j + 1;
  }
  return out;
}

double spearman(std::span<const double> x, std::span<const double> y) {
  VECCOST_ASSERT(x.size() == y.size() && !x.empty(), "spearman size mismatch");
  const auto rx = ranks(x);
  const auto ry = ranks(y);
  return pearson(rx, ry);
}

double rmse(std::span<const double> predicted, std::span<const double> actual) {
  VECCOST_ASSERT(predicted.size() == actual.size() && !predicted.empty(),
                 "rmse size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    const double d = predicted[i] - actual[i];
    s += d * d;
  }
  return std::sqrt(s / static_cast<double>(predicted.size()));
}

double mae(std::span<const double> predicted, std::span<const double> actual) {
  VECCOST_ASSERT(predicted.size() == actual.size() && !predicted.empty(),
                 "mae size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i)
    s += std::abs(predicted[i] - actual[i]);
  return s / static_cast<double>(predicted.size());
}

double mape(std::span<const double> predicted, std::span<const double> actual) {
  VECCOST_ASSERT(predicted.size() == actual.size() && !predicted.empty(),
                 "mape size mismatch");
  double s = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    if (std::abs(actual[i]) < 1e-12) continue;
    s += std::abs((predicted[i] - actual[i]) / actual[i]);
    ++n;
  }
  return n ? s / static_cast<double>(n) : 0.0;
}

double Confusion::accuracy() const {
  const std::size_t t = total();
  if (t == 0) return 0.0;
  return static_cast<double>(true_positive + true_negative) / static_cast<double>(t);
}

std::string Confusion::to_string() const {
  std::ostringstream os;
  os << "TP=" << true_positive << " TN=" << true_negative << " FP=" << false_positive
     << " FN=" << false_negative;
  return os.str();
}

Confusion classify(std::span<const double> predicted, std::span<const double> measured,
                   double threshold) {
  VECCOST_ASSERT(predicted.size() == measured.size(), "classify size mismatch");
  Confusion c;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    const bool pred_vec = predicted[i] > threshold;
    const bool good_vec = measured[i] > threshold;
    if (pred_vec && good_vec)
      ++c.true_positive;
    else if (pred_vec && !good_vec)
      ++c.false_positive;
    else if (!pred_vec && good_vec)
      ++c.false_negative;
    else
      ++c.true_negative;
  }
  return c;
}

}  // namespace veccost
