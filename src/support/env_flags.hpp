// One place to resolve VECCOST_* environment variables and the CLI's global
// flags, so every subcommand (and every library entry point that falls back
// to the environment) interprets them identically.
//
// Before this helper the parsing was duplicated: the thread pool read
// VECCOST_JOBS, the measurement cache read VECCOST_NO_CACHE, the executor
// read VECCOST_REFERENCE_EXECUTOR — each with its own ad-hoc string
// handling. All of them now route through EnvFlags (support_test.cpp pins
// the semantics).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace veccost::support {

class EnvFlags {
 public:
  /// Boolean env var. Unset or empty returns `fallback`; "0", "false",
  /// "off", "no" (case-insensitive) return false; any other value returns
  /// true (so VECCOST_NO_CACHE=1 and VECCOST_NO_CACHE=yes both disable).
  [[nodiscard]] static bool enabled(const char* name, bool fallback);

  /// Positive integer env var; unset, empty, zero, negative or junk yields
  /// nullopt.
  [[nodiscard]] static std::optional<std::size_t> count(const char* name);

  /// String env var; "" when unset.
  [[nodiscard]] static std::string value(const char* name);
};

/// Options every veccost subcommand shares, resolved flag-over-environment:
/// --jobs / VECCOST_JOBS, --no-cache / VECCOST_NO_CACHE, VECCOST_METRICS,
/// --pipeline / VECCOST_PIPELINE, --metrics-out=FILE, --trace-out=FILE.
struct GlobalOptions {
  std::size_t jobs = 0;  ///< 0 = auto (hardware threads)
  bool use_cache = true;
  bool metrics = true;
  /// Transform pipeline spec (xform/pipeline.hpp grammar) for subcommands
  /// that transform kernels (measure, fuzz, passes); empty = their default.
  std::string pipeline;
  std::string metrics_out;  ///< metrics JSON destination; empty = don't write
  std::string trace_out;    ///< Chrome trace destination; empty = don't write
};

/// Strip the global flags from `args` (in place, any position) and resolve
/// the environment fallbacks. Throws veccost::Error on a malformed flag.
[[nodiscard]] GlobalOptions parse_global_flags(std::vector<std::string>& args);

}  // namespace veccost::support
