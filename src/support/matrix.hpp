// Dense row-major matrix and vector algebra used by the fitting library.
//
// This is deliberately a small, boring linear-algebra kernel: the design
// matrices in this project are at most a few hundred rows (TSVC kernels) by a
// couple of dozen columns (instruction classes), so clarity and numerical
// robustness beat blocking/tiling tricks.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "support/error.hpp"

namespace veccost {

using Vector = std::vector<double>;

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Construct from nested initializer list: Matrix{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> init);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  // Element access sits inside the QR / fitting inner loops, so the bounds
  // checks are debug-only (kept in Debug and sanitizer CI builds).
  double& operator()(std::size_t r, std::size_t c) {
    VECCOST_DCHECK(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    VECCOST_DCHECK(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::span<double> row(std::size_t r) {
    VECCOST_DCHECK(r < rows_, "row index out of range");
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const double> row(std::size_t r) const {
    VECCOST_DCHECK(r < rows_, "row index out of range");
    return {data_.data() + r * cols_, cols_};
  }

  [[nodiscard]] Vector col(std::size_t c) const;

  /// Append a row (must match cols(), or set cols for the first row).
  void push_row(std::span<const double> values);

  [[nodiscard]] Matrix transposed() const;
  [[nodiscard]] Matrix operator*(const Matrix& rhs) const;
  [[nodiscard]] Vector operator*(const Vector& rhs) const;

  /// Remove one row; used by leave-one-out cross validation.
  [[nodiscard]] Matrix without_row(std::size_t r) const;

  [[nodiscard]] std::string to_string(int precision = 4) const;

  [[nodiscard]] std::span<const double> data() const { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// y = A^T * x convenience (A: m x n, x: m) -> n.
[[nodiscard]] Vector transpose_times(const Matrix& a, const Vector& x);

/// Dot product; sizes must match.
[[nodiscard]] double dot(std::span<const double> a, std::span<const double> b);

/// Euclidean norm.
[[nodiscard]] double norm2(std::span<const double> v);

/// a - b elementwise.
[[nodiscard]] Vector subtract(const Vector& a, const Vector& b);

/// Remove element r from a vector (LOOCV helper).
[[nodiscard]] Vector without_element(const Vector& v, std::size_t r);

}  // namespace veccost
