#include "support/csv.hpp"

#include <iomanip>
#include <sstream>

namespace veccost {

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quote =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string CsvWriter::cell(double v) {
  std::ostringstream os;
  os << std::setprecision(6) << v;
  return os.str();
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

bool CsvReader::read_row(std::vector<std::string>& cells) {
  cells.clear();
  int c = in_.get();
  // Skip a bare empty line / EOF probe.
  if (c == std::istream::traits_type::eof()) return false;
  std::string cell;
  bool quoted = false;
  for (;;) {
    if (c == std::istream::traits_type::eof()) {
      cells.push_back(std::move(cell));
      return true;
    }
    const char ch = static_cast<char>(c);
    if (quoted) {
      if (ch == '"') {
        if (in_.peek() == '"') {
          cell += '"';
          in_.get();
        } else {
          quoted = false;
        }
      } else {
        cell += ch;
      }
    } else if (ch == '"' && cell.empty()) {
      quoted = true;
    } else if (ch == ',') {
      cells.push_back(std::move(cell));
      cell.clear();
    } else if (ch == '\n') {
      cells.push_back(std::move(cell));
      return true;
    } else if (ch != '\r') {
      cell += ch;
    }
    c = in_.get();
  }
}

}  // namespace veccost
