#include "support/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "support/error.hpp"

namespace veccost::support {

namespace {

sockaddr_in loopback(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

/// poll() one fd for `events`, retrying on EINTR. True when ready.
bool wait_for(int fd, short events, int timeout_ms) {
  pollfd p{};
  p.fd = fd;
  p.events = events;
  for (;;) {
    const int rc = ::poll(&p, 1, timeout_ms);
    if (rc > 0) return (p.revents & (events | POLLERR | POLLHUP)) != 0;
    if (rc == 0) return false;
    if (errno != EINTR) return false;
  }
}

}  // namespace

// ---- TcpStream -------------------------------------------------------------

TcpStream::TcpStream(TcpStream&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buffer_(std::move(other.buffer_)) {}

TcpStream& TcpStream::operator=(TcpStream&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

TcpStream TcpStream::connect(std::uint16_t port, int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw Error("socket(): " + std::string(std::strerror(errno)));
  TcpStream stream(fd);
  const sockaddr_in addr = loopback(port);
  // A blocking connect to loopback either succeeds immediately or fails with
  // ECONNREFUSED; the timeout parameter guards the exotic cases (listen
  // backlog full) via SO_SNDTIMEO.
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0)
    throw Error("connect(127.0.0.1:" + std::to_string(port) +
                "): " + std::strerror(errno));
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return stream;
}

bool TcpStream::send_all(std::string_view data) {
  if (fd_ < 0) return false;
  while (!data.empty()) {
    const ssize_t n = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

TcpStream::ReadResult TcpStream::read_line(std::string& line, int timeout_ms) {
  line.clear();
  for (;;) {
    if (const std::size_t nl = buffer_.find('\n'); nl != std::string::npos) {
      line.assign(buffer_, 0, nl);
      buffer_.erase(0, nl + 1);
      return ReadResult::Ok;
    }
    if (fd_ < 0) return ReadResult::Closed;
    if (!wait_for(fd_, POLLIN, timeout_ms)) return ReadResult::Timeout;
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n == 0) return ReadResult::Closed;
    if (n < 0) {
      if (errno == EINTR) continue;
      return ReadResult::Closed;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

void TcpStream::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

// ---- TcpListener -----------------------------------------------------------

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), port_(std::exchange(other.port_, 0)) {}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    port_ = std::exchange(other.port_, 0);
  }
  return *this;
}

TcpListener TcpListener::bind(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw Error("socket(): " + std::string(std::strerror(errno)));
  TcpListener listener;
  listener.fd_ = fd;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr = loopback(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0)
    throw Error("bind(127.0.0.1:" + std::to_string(port) +
                "): " + std::strerror(errno));
  if (::listen(fd, 64) != 0)
    throw Error("listen(): " + std::string(std::strerror(errno)));
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0)
    throw Error("getsockname(): " + std::string(std::strerror(errno)));
  listener.port_ = ntohs(bound.sin_port);
  return listener;
}

TcpStream TcpListener::accept(int timeout_ms) {
  if (fd_ < 0 || !wait_for(fd_, POLLIN, timeout_ms)) return TcpStream();
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) return TcpStream();
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return TcpStream(fd);
}

void TcpListener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace veccost::support
