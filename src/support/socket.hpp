// Thin blocking TCP wrappers over POSIX sockets, loopback only.
//
// The serve daemon (src/serve) listens on 127.0.0.1 and speaks
// newline-delimited JSON; these classes carry exactly that traffic and
// nothing more. Design constraints that shaped the API:
//
//  * every blocking call takes a millisecond timeout (implemented with
//    poll()), so server threads can watch a stop flag instead of parking in
//    the kernel forever;
//  * writes use MSG_NOSIGNAL — a client that disconnects mid-response must
//    surface as a failed send, never as SIGPIPE killing the daemon;
//  * TcpListener::bind(0) picks an ephemeral port and reports it via
//    port(), which is how the lifecycle tests avoid port collisions.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace veccost::support {

/// One connected TCP stream. Move-only; the destructor closes the fd.
class TcpStream {
 public:
  TcpStream() = default;
  explicit TcpStream(int fd) : fd_(fd) {}
  ~TcpStream() { close(); }
  TcpStream(TcpStream&& other) noexcept;
  TcpStream& operator=(TcpStream&& other) noexcept;
  TcpStream(const TcpStream&) = delete;
  TcpStream& operator=(const TcpStream&) = delete;

  /// Connect to 127.0.0.1:`port`. Throws veccost::Error on failure.
  [[nodiscard]] static TcpStream connect(std::uint16_t port,
                                         int timeout_ms = 5000);

  [[nodiscard]] bool valid() const { return fd_ >= 0; }

  /// Send all of `data`; false on any send failure (peer gone). Never raises
  /// SIGPIPE.
  bool send_all(std::string_view data);

  /// Read up to and including the next '\n' (the newline is stripped from
  /// `line`). Returns:
  ///  * Ok       — a complete line was read;
  ///  * Timeout  — `timeout_ms` elapsed mid-line (already-read bytes are kept
  ///               buffered for the next call);
  ///  * Closed   — EOF or a socket error before a newline.
  enum class ReadResult { Ok, Timeout, Closed };
  ReadResult read_line(std::string& line, int timeout_ms);

  void close();

 private:
  int fd_ = -1;
  std::string buffer_;  ///< bytes past the last returned line
};

/// Listening socket on 127.0.0.1. Move-only.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener() { close(); }
  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Bind + listen on 127.0.0.1:`port` (0 = ephemeral). SO_REUSEADDR is set
  /// so restarting a daemon on a fixed port does not trip TIME_WAIT. Throws
  /// veccost::Error on failure.
  [[nodiscard]] static TcpListener bind(std::uint16_t port);

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  /// The actual bound port (resolves an ephemeral bind).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Accept one connection, waiting at most `timeout_ms`. Returns an invalid
  /// stream on timeout or a closed/failed listener.
  [[nodiscard]] TcpStream accept(int timeout_ms);

  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace veccost::support
