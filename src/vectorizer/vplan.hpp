// Result types of the two vectorizers.
//
// The loop vectorizer (LLV) produces a fully executable widened kernel; its
// semantics are validated against the scalar original by the executor. The
// SLP vectorizer produces a pack plan: which isomorphic statement groups can
// be fused into vector operations. Packs feed the performance and cost
// models; pure "unrolled copy" bodies can additionally be re-rolled into an
// equivalent scalar loop and routed through the loop vectorizer for an
// executable transform.
#pragma once

#include <string>
#include <vector>

#include "ir/loop.hpp"

namespace veccost::vectorizer {

/// Output of the loop vectorizer.
struct VectorizedLoop {
  bool ok = false;
  /// Vectorized behind a runtime overlap check; in our kernels the conflict
  /// is real, so at runtime the versioned binary executes the SCALAR path.
  /// The widened kernel is for cost analysis only — do not execute it.
  bool runtime_check = false;
  int vf = 1;
  ir::LoopKernel kernel;           ///< widened kernel (valid only when ok)
  std::vector<std::string> notes;  ///< decisions taken / rejection reasons

  [[nodiscard]] std::string notes_string() const;
};

/// One SLP pack: `width` isomorphic scalar instructions fused into a vector
/// operation.
struct Pack {
  ir::Opcode op = ir::Opcode::Add;
  ir::ScalarType elem = ir::ScalarType::F32;
  int width = 0;
  /// For memory packs: true when the fused access is contiguous.
  bool contiguous = true;
  /// Ids of the scalar instructions fused into this pack.
  std::vector<ir::ValueId> members;
};

struct SlpPlan {
  bool ok = false;
  int width = 0;                   ///< lane count of the seed packs
  std::vector<Pack> packs;         ///< all fused groups, seed stores included
  std::vector<ir::ValueId> scalarized;  ///< work instructions left scalar
  std::vector<std::string> notes;

  /// Pre-unroll factor applied before packing (1 = packed as written). The
  /// slides evaluate SLP "after loop unrolling"; auto-unrolling turns
  /// single-statement loops into packable bodies.
  int unroll = 1;
  /// The body the packs' member ids refer to: the original kernel when
  /// unroll == 1, else the unrolled kernel.
  ir::LoopKernel body;

  /// True when the whole body is `width` isomorphic copies of one statement
  /// group (e.g. hand-unrolled TSVC rerolling kernels).
  bool rerollable = false;
};

}  // namespace veccost::vectorizer
