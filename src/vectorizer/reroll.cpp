#include "vectorizer/reroll.hpp"

#include <algorithm>
#include <map>
#include <vector>

#include "analysis/features.hpp"
#include "analysis/reduction.hpp"
#include "ir/verifier.hpp"
#include "support/error.hpp"

namespace veccost::vectorizer {

using ir::Instruction;
using ir::LoopKernel;
using ir::Opcode;
using ir::ValueId;

namespace {

/// Matches copy-u instructions against copy-0 instructions: equal opcodes and
/// types; shared operands must be loop-invariant; memory accesses must be the
/// copy-0 access shifted by u * delta elements.
class CopyMatcher {
 public:
  CopyMatcher(const LoopKernel& k, std::int64_t rolled_step, int u)
      : k_(k),
        invariant_(analysis::invariant_mask(k)),
        rolled_step_(rolled_step),
        u_(u) {}

  /// True when `vu` is the copy-u image of `v0`. Fills `covered` with every
  /// matched copy-u instruction.
  bool match(ValueId v0, ValueId vu, std::vector<bool>& covered) {
    if (v0 == vu) {
      // A value shared between copies must not vary per iteration.
      return invariant_[static_cast<std::size_t>(v0)];
    }
    const Instruction& a = k_.instr(v0);
    const Instruction& b = k_.instr(vu);
    if (a.op != b.op || !(a.type == b.type)) return false;
    if (a.predicate != ir::kNoValue || b.predicate != ir::kNoValue) return false;
    if (a.op == Opcode::Const && a.const_value != b.const_value) return false;
    if (a.op == Opcode::Param && a.param_index != b.param_index) return false;
    if (ir::is_memory_op(a.op)) {
      if (a.index.is_indirect() || b.index.is_indirect()) return false;
      if (a.array != b.array || a.index.scale_i != b.index.scale_i ||
          a.index.outer != b.index.outer ||
          a.index.n_scale != b.index.n_scale)
        return false;
      // Copy u touches the element copy 0 touches `u` rolled iterations
      // later: shift = u * scale_i * (step / factor), per access.
      if (b.index.offset !=
          a.index.offset + u_ * a.index.scale_i * rolled_step_)
        return false;
    }
    if (a.op == Opcode::Phi) return false;  // phis handled by the caller
    for (int i = 0; i < a.num_operands(); ++i) {
      if (!match(a.operands[static_cast<std::size_t>(i)],
                 b.operands[static_cast<std::size_t>(i)], covered))
        return false;
    }
    covered[static_cast<std::size_t>(vu)] = true;
    return true;
  }

 private:
  const LoopKernel& k_;
  std::vector<bool> invariant_;
  std::int64_t rolled_step_;
  int u_;
};

/// Emit the copy-0 slice of `k` as a standalone kernel with step/W.
LoopKernel emit_copy0(const LoopKernel& k, const std::vector<bool>& keep,
                      int factor, const std::map<ValueId, ValueId>& phi_updates) {
  LoopKernel out;
  out.name = k.name + ".r" + std::to_string(factor);
  out.category = k.category;
  out.description = k.description;
  out.default_n = k.default_n;
  out.trip = k.trip;
  out.trip.step = k.trip.step / factor;
  out.nest = k.nest;
  out.arrays = k.arrays;
  out.params = k.params;
  out.vf = 1;

  std::vector<ValueId> map(k.body.size(), ir::kNoValue);
  for (std::size_t id = 0; id < k.body.size(); ++id) {
    if (!keep[id]) continue;
    Instruction inst = k.body[id];
    for (int i = 0; i < inst.num_operands(); ++i) {
      ValueId& op = inst.operands[static_cast<std::size_t>(i)];
      if (op != ir::kNoValue) op = map[static_cast<std::size_t>(op)];
    }
    if (inst.op == Opcode::Phi) {
      const auto it = phi_updates.find(static_cast<ValueId>(id));
      VECCOST_ASSERT(it != phi_updates.end(), "unmapped phi in reroll");
      // Patched after the loop once the new id of the update is known.
      inst.phi_update = it->second;
    }
    map[id] = static_cast<ValueId>(out.body.size());
    out.body.push_back(inst);
  }
  // Remap phi update edges and live-outs into the new id space.
  for (auto& inst : out.body) {
    if (inst.op == Opcode::Phi)
      inst.phi_update = map[static_cast<std::size_t>(inst.phi_update)];
  }
  for (const ValueId v : k.live_outs)
    out.live_outs.push_back(map[static_cast<std::size_t>(v)]);
  return out;
}

}  // namespace

RerollResult reroll_loop(const LoopKernel& scalar, const SlpPlan& plan) {
  RerollResult result;
  auto reject = [&result](std::string why) {
    result.reason = std::move(why);
    return result;
  };

  VECCOST_ASSERT(scalar.vf == 1, "reroll expects a scalar kernel");
  if (plan.unroll != 1) return reject("plan targets a pre-unrolled body");
  if (!plan.ok) return reject("no packs to re-roll");
  if (scalar.has_break()) return reject("break in loop body");

  // Stores define the copies: one store per copy, consecutive offsets.
  std::vector<ValueId> stores;
  for (std::size_t id = 0; id < scalar.body.size(); ++id)
    if (ir::is_store_op(scalar.body[id].op))
      stores.push_back(static_cast<ValueId>(id));

  // Reduction-chain bodies (dot products): re-rolling them is possible but
  // changes nothing the loop vectorizer needs; keep scope to store bodies.
  if (stores.size() < 2) return reject("fewer than two stores");
  const int factor = static_cast<int>(stores.size());
  if (!scalar.phis().empty())
    return reject("loop-carried scalars are not re-rolled");

  const Instruction& s0 = scalar.instr(stores[0]);
  if (s0.index.is_indirect() || s0.predicate != ir::kNoValue)
    return reject("indirect or predicated seed store");
  if (scalar.trip.step % factor != 0)
    return reject("loop step not divisible by the copy count");
  const std::int64_t rolled_step = scalar.trip.step / factor;
  if (s0.index.scale_i * rolled_step == 0) return reject("stores do not advance");

  // Match every copy against copy 0.
  std::vector<bool> covered(scalar.body.size(), false);
  covered[static_cast<std::size_t>(stores[0])] = true;
  // Copy 0's own slice: everything reachable from store 0 (non-invariant).
  std::vector<bool> keep(scalar.body.size(), false);
  {
    std::vector<ValueId> stack{stores[0]};
    while (!stack.empty()) {
      const ValueId v = stack.back();
      stack.pop_back();
      if (keep[static_cast<std::size_t>(v)]) continue;
      keep[static_cast<std::size_t>(v)] = true;
      const Instruction& inst = scalar.instr(v);
      for (int i = 0; i < inst.num_operands(); ++i) {
        const ValueId op = inst.operands[static_cast<std::size_t>(i)];
        if (op != ir::kNoValue) stack.push_back(op);
      }
    }
  }
  const auto invariant = analysis::invariant_mask(scalar);
  std::int64_t prev_copy_max = -1;
  {
    // Copy 0's non-shared extent, for the copy-major ordering check below.
    for (std::size_t id = 0; id < scalar.body.size(); ++id)
      if (keep[id] && !invariant[id])
        prev_copy_max = std::max<std::int64_t>(prev_copy_max,
                                               static_cast<std::int64_t>(id));
  }
  for (int u = 1; u < factor; ++u) {
    std::vector<bool> copy_covered(scalar.body.size(), false);
    CopyMatcher matcher(scalar, rolled_step, u);
    if (!matcher.match(stores[0], stores[static_cast<std::size_t>(u)],
                       copy_covered))
      return reject("copy " + std::to_string(u) + " is not isomorphic to copy 0");
    copy_covered[static_cast<std::size_t>(stores[static_cast<std::size_t>(u)])] =
        true;
    // Re-rolling is the inverse of unrolling, so the body must actually BE
    // an unrolled form: each copy's (non-shared) instructions must follow
    // the previous copy's entirely, or flattening would reorder aliasing
    // accesses across copies.
    std::int64_t copy_min = static_cast<std::int64_t>(scalar.body.size());
    std::int64_t copy_max = -1;
    for (std::size_t id = 0; id < scalar.body.size(); ++id) {
      if (!copy_covered[id] || invariant[id]) continue;
      copy_min = std::min<std::int64_t>(copy_min, static_cast<std::int64_t>(id));
      copy_max = std::max<std::int64_t>(copy_max, static_cast<std::int64_t>(id));
      covered[id] = true;
    }
    if (copy_min <= prev_copy_max)
      return reject("copies interleave in the body (not an unrolled form)");
    prev_copy_max = copy_max;
  }

  // No stray side effects: every work instruction must be in copy 0, a
  // matched copy, or invariant.
  for (std::size_t id = 0; id < scalar.body.size(); ++id) {
    const auto cls =
        ir::classify(scalar.body[id].op, ir::is_float(scalar.body[id].type.elem));
    if (cls == ir::OpClass::Leaf || cls == ir::OpClass::Control) continue;
    if (!keep[id] && !covered[id] && !invariant[id])
      return reject("unmatched work instruction %" + std::to_string(id));
  }

  result.kernel = emit_copy0(scalar, keep, factor, {});
  result.factor = factor;
  result.ok = true;
  ir::verify_or_throw(result.kernel);
  return result;
}

}  // namespace veccost::vectorizer
