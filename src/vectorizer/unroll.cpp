#include "vectorizer/unroll.hpp"

#include <map>
#include <vector>

#include "ir/verifier.hpp"
#include "support/error.hpp"

namespace veccost::vectorizer {

using ir::Instruction;
using ir::LoopKernel;
using ir::Opcode;
using ir::ValueId;

UnrollResult unroll_loop(const LoopKernel& scalar, int factor) {
  VECCOST_ASSERT(scalar.vf == 1, "unroll expects a scalar kernel");
  VECCOST_ASSERT(factor >= 2, "unroll factor must be >= 2");
  UnrollResult result;
  if (scalar.has_break()) {
    result.reason = "cannot unroll a loop with an early exit";
    return result;
  }

  LoopKernel out;
  out.name = scalar.name + ".u" + std::to_string(factor);
  out.category = scalar.category;
  out.description = scalar.description;
  out.default_n = scalar.default_n;
  out.trip = scalar.trip;
  out.trip.step = scalar.trip.step * factor;
  out.nest = scalar.nest;
  out.arrays = scalar.arrays;
  out.params = scalar.params;
  out.vf = 1;

  auto emit = [&out](Instruction inst) {
    out.body.push_back(inst);
    return static_cast<ValueId>(out.body.size()) - 1;
  };

  // Copy 0 keeps the phis; later copies read the previous copy's update.
  const std::size_t n = scalar.body.size();
  std::vector<ValueId> prev_map(n, ir::kNoValue);   // copy u-1 mapping
  std::vector<ValueId> cur_map(n, ir::kNoValue);
  std::map<ValueId, ValueId> phi_of;                // original phi -> emitted phi

  for (int u = 0; u < factor; ++u) {
    for (std::size_t id = 0; id < n; ++id) {
      const Instruction& src = scalar.body[id];
      Instruction inst = src;

      if (src.op == Opcode::Phi) {
        if (u == 0) {
          // Emitted once; its update edge is patched to the LAST copy's
          // update value after all copies are emitted.
          inst.phi_update = ir::kNoValue;
          const ValueId phi_id = emit(inst);
          cur_map[id] = phi_id;
          phi_of[static_cast<ValueId>(id)] = phi_id;
        } else {
          // The value "carried into" copy u is the previous copy's update.
          cur_map[id] = prev_map[static_cast<std::size_t>(src.phi_update)];
        }
        continue;
      }

      // Remap operands / predicate / indirect index.
      for (int i = 0; i < inst.num_operands(); ++i) {
        ValueId& op = inst.operands[static_cast<std::size_t>(i)];
        if (op != ir::kNoValue) op = cur_map[static_cast<std::size_t>(op)];
      }
      if (inst.predicate != ir::kNoValue)
        inst.predicate = cur_map[static_cast<std::size_t>(inst.predicate)];
      if (inst.index.is_indirect())
        inst.index.indirect = cur_map[static_cast<std::size_t>(inst.index.indirect)];

      // Fold the copy's iteration offset into affine subscripts.
      if (ir::is_memory_op(inst.op) && !inst.index.is_indirect())
        inst.index.offset += inst.index.scale_i * scalar.trip.step * u;

      if (src.op == Opcode::IndVar && u > 0) {
        // i + u*step: materialize as indvar + const.
        Instruction base;
        base.op = Opcode::IndVar;
        base.type = src.type;
        const ValueId iv = emit(base);
        Instruction cst;
        cst.op = Opcode::Const;
        cst.type = src.type;
        cst.const_value = static_cast<double>(u * scalar.trip.step);
        const ValueId c = emit(cst);
        Instruction add;
        add.op = Opcode::Add;
        add.type = src.type;
        add.operands[0] = iv;
        add.operands[1] = c;
        cur_map[id] = emit(add);
        continue;
      }

      cur_map[id] = emit(inst);
    }
    prev_map = cur_map;
  }

  // Patch phi update edges to the last copy's update values, and map
  // live-outs onto the emitted phis.
  for (const auto& [orig_phi, new_phi] : phi_of) {
    const Instruction& src = scalar.instr(orig_phi);
    out.body[static_cast<std::size_t>(new_phi)].phi_update =
        prev_map[static_cast<std::size_t>(src.phi_update)];
  }
  for (const ValueId v : scalar.live_outs) {
    const auto it = phi_of.find(v);
    VECCOST_ASSERT(it != phi_of.end(), "live-out is not a phi");
    out.live_outs.push_back(it->second);
  }

  ir::verify_or_throw(out);
  result.kernel = std::move(out);
  result.ok = true;
  return result;
}

}  // namespace veccost::vectorizer
