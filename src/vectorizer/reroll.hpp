// Loop re-rolling: the inverse of unrolling.
//
// A body that consists of `width` isomorphic copies of one statement group
// with consecutive subscripts (TSVC's loop-rerolling kernels s351/s352/s353,
// or any SlpPlan marked `rerollable`) is rewritten as a single-copy loop
// with `width`x the iterations. Re-rolling turns "SLP-shaped" code into
// "LLV-shaped" code, after which the ordinary loop vectorizer provides an
// executable — and therefore equivalence-testable — vectorization of it.
#pragma once

#include "ir/loop.hpp"
#include "vectorizer/vplan.hpp"

namespace veccost::vectorizer {

struct RerollResult {
  bool ok = false;
  ir::LoopKernel kernel;  ///< single-copy loop, step divided by the factor
  int factor = 1;
  std::string reason;     ///< why not, when !ok
};

/// Attempt to re-roll `scalar` using the packs of `plan` (which must target
/// `scalar` itself, i.e. plan.unroll == 1). Succeeds when the plan is
/// rerollable: every work instruction belongs to a pack of one width, pack
/// members are mutually isomorphic copies offset by the lane index, and the
/// loop step is divisible by the width.
[[nodiscard]] RerollResult reroll_loop(const ir::LoopKernel& scalar,
                                       const SlpPlan& plan);

}  // namespace veccost::vectorizer
