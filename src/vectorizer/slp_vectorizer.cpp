#include "vectorizer/slp_vectorizer.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "analysis/dependence.hpp"
#include "obs/metrics.hpp"
#include "support/error.hpp"
#include "vectorizer/unroll.hpp"

namespace veccost::vectorizer {

using ir::Instruction;
using ir::LoopKernel;
using ir::Opcode;
using ir::ValueId;

namespace {

struct StoreKey {
  int array;
  std::int64_t scale_i, n_scale;
  std::vector<std::int64_t> outer;  ///< per-level coefficients
  auto operator<=>(const StoreKey&) const = default;
};

/// Builds the pack tree for one store seed. Collects candidate packs into a
/// trial buffer; the caller commits on success.
class TreeBuilder {
 public:
  TreeBuilder(const LoopKernel& k, const std::set<ValueId>& already_packed)
      : k_(k), already_packed_(already_packed) {}

  bool build(const std::vector<ValueId>& seed) {
    return pack_group(seed) && commit_ok_;
  }

  [[nodiscard]] std::vector<Pack> take_packs() && { return std::move(packs_); }

 private:
  bool all_same(const std::vector<ValueId>& group) const {
    return std::all_of(group.begin(), group.end(),
                       [&](ValueId v) { return v == group.front(); });
  }

  bool pack_group(const std::vector<ValueId>& group) {
    // A group of identical values is a splat: the shared scalar stays scalar.
    if (all_same(group)) return true;
    // Already handled this exact group?
    if (seen_.count(group) > 0) return true;

    const Instruction& first = k_.instr(group.front());
    for (const ValueId v : group) {
      const Instruction& inst = k_.instr(v);
      if (inst.op != first.op || !(inst.type == first.type)) return false;
      if (already_packed_.count(v) > 0 || trial_members_.count(v) > 0)
        return false;  // value already belongs to another pack
      if (inst.predicate != ir::kNoValue) return false;
    }

    Pack pack;
    pack.op = first.op;
    pack.elem = first.type.elem;
    pack.width = static_cast<int>(group.size());
    pack.members = group;

    switch (first.op) {
      case Opcode::Const:
      case Opcode::Param:
      case Opcode::IndVar:
      case Opcode::OuterIndVar:
        // Distinct leaves: materialized as a build-vector; model as shuffle.
        pack.op = Opcode::Broadcast;
        break;
      case Opcode::Load: {
        pack.contiguous = consecutive_accesses(group);
        break;
      }
      case Opcode::Store: {
        pack.contiguous = consecutive_accesses(group);
        if (!pack_operands(group)) return false;
        break;
      }
      case Opcode::Phi:
      case Opcode::Break:
      case Opcode::Gather:
      case Opcode::Scatter:
      case Opcode::StridedLoad:
      case Opcode::StridedStore:
        return false;
      default:
        if (!pack_operands(group)) return false;
        break;
    }

    seen_.insert(group);
    for (const ValueId v : group) trial_members_.insert(v);
    packs_.push_back(std::move(pack));
    return true;
  }

  bool pack_operands(const std::vector<ValueId>& group) {
    const int n = k_.instr(group.front()).num_operands();
    for (int i = 0; i < n; ++i) {
      std::vector<ValueId> operand_group;
      operand_group.reserve(group.size());
      for (const ValueId v : group)
        operand_group.push_back(
            k_.instr(v).operands[static_cast<std::size_t>(i)]);
      if (!pack_group(operand_group)) return false;
    }
    return true;
  }

  bool consecutive_accesses(const std::vector<ValueId>& group) const {
    const Instruction& first = k_.instr(group.front());
    if (first.index.is_indirect()) return false;
    for (std::size_t l = 0; l < group.size(); ++l) {
      const Instruction& inst = k_.instr(group[l]);
      if (inst.index.is_indirect() || inst.array != first.array ||
          inst.index.scale_i != first.index.scale_i ||
          inst.index.outer != first.index.outer ||
          inst.index.n_scale != first.index.n_scale ||
          inst.index.offset != first.index.offset + static_cast<std::int64_t>(l))
        return false;
    }
    return true;
  }

  const LoopKernel& k_;
  const std::set<ValueId>& already_packed_;
  std::set<std::vector<ValueId>> seen_;
  std::set<ValueId> trial_members_;
  std::vector<Pack> packs_;
  bool commit_ok_ = true;
};

int floor_pow2(int x) {
  int p = 1;
  while (2 * p <= x) p *= 2;
  return p;
}

}  // namespace

namespace {

/// One packing attempt over `scalar` as written (no unrolling).
SlpPlan pack_body(const LoopKernel& scalar, const machine::TargetDesc& target,
                  const SlpOptions& opts) {
  SlpPlan plan;

  // Group unpredicated direct stores by (array, scales) and sort by offset.
  std::map<StoreKey, std::vector<ValueId>> stores;
  for (std::size_t i = 0; i < scalar.body.size(); ++i) {
    const Instruction& inst = scalar.body[i];
    if (inst.op != Opcode::Store || inst.predicate != ir::kNoValue ||
        inst.index.is_indirect())
      continue;
    const StoreKey key{inst.array, inst.index.scale_i, inst.index.n_scale,
                       inst.index.outer};
    stores[key].push_back(static_cast<ValueId>(i));
  }

  std::set<ValueId> packed;
  for (auto& [key, ids] : stores) {
    std::sort(ids.begin(), ids.end(), [&](ValueId a, ValueId b) {
      return scalar.instr(a).index.offset < scalar.instr(b).index.offset;
    });
    // Find maximal runs of consecutive offsets.
    std::size_t run_start = 0;
    while (run_start < ids.size()) {
      std::size_t run_end = run_start + 1;
      while (run_end < ids.size() &&
             scalar.instr(ids[run_end]).index.offset ==
                 scalar.instr(ids[run_end - 1]).index.offset + 1)
        ++run_end;
      const int run_len = static_cast<int>(run_end - run_start);
      const int cap = opts.max_width > 0
                          ? opts.max_width
                          : target.lanes_per_register(
                                scalar.instr(ids[run_start]).type.elem);
      const int width = std::min(floor_pow2(run_len), floor_pow2(cap));
      if (width >= 2) {
        std::vector<ValueId> seed(ids.begin() + static_cast<std::ptrdiff_t>(run_start),
                                  ids.begin() + static_cast<std::ptrdiff_t>(run_start) + width);
        TreeBuilder builder(scalar, packed);
        if (builder.build(seed)) {
          for (auto& pack : std::move(builder).take_packs()) {
            for (const ValueId v : pack.members) packed.insert(v);
            if (plan.width == 0) plan.width = pack.width;
            plan.packs.push_back(std::move(pack));
          }
        } else {
          plan.notes.push_back("seed rejected: non-isomorphic tree");
        }
      }
      run_start = run_end;
    }
  }

  // Remaining work instructions stay scalar.
  for (std::size_t i = 0; i < scalar.body.size(); ++i) {
    const Instruction& inst = scalar.body[i];
    const auto cls = ir::classify(inst.op, ir::is_float(inst.type.elem));
    if (cls == ir::OpClass::Leaf || cls == ir::OpClass::Control) continue;
    if (packed.count(static_cast<ValueId>(i)) == 0)
      plan.scalarized.push_back(static_cast<ValueId>(i));
  }

  plan.ok = !plan.packs.empty();
  if (plan.ok) {
    // Re-rollable when everything that does work was packed at one width.
    plan.rerollable = plan.scalarized.empty() && scalar.phis().empty();
    for (const auto& p : plan.packs)
      if (p.width != plan.width) plan.rerollable = false;
  } else {
    plan.notes.push_back("no consecutive store seeds found");
  }
  return plan;
}

}  // namespace

SlpPlan slp_vectorize(const LoopKernel& scalar, const machine::TargetDesc& target,
                      const SlpOptions& opts) {
  VECCOST_ASSERT(scalar.vf == 1, "SLP expects a scalar kernel");
  VECCOST_SPAN("vectorizer.slp_ns");
  VECCOST_COUNTER_ADD("vectorizer.slp_attempts", 1);
  SlpPlan plan = pack_body(scalar, target, opts);
  plan.body = scalar;
  plan.unroll = 1;
  if (plan.ok || !opts.auto_unroll || scalar.has_break()) return plan;

  // As in the slides' configuration, retry after loop unrolling. Only legal
  // when no lexically-backward carried dependence is shorter than the
  // unroll factor (packed copies would otherwise reorder conflicting
  // accesses).
  const auto deps = analysis::analyze_dependences(scalar);
  if (deps.unknown) return plan;
  for (const int factor : {2, 4}) {
    if (deps.max_safe_vf < factor) break;
    UnrollResult unrolled = unroll_loop(scalar, factor);
    if (!unrolled.ok) break;
    SlpPlan retry = pack_body(unrolled.kernel, target, opts);
    if (retry.ok) {
      retry.unroll = factor;
      retry.body = std::move(unrolled.kernel);
      retry.notes.push_back("packed after unrolling by " +
                            std::to_string(factor));
      return retry;
    }
  }
  return plan;
}

}  // namespace veccost::vectorizer
