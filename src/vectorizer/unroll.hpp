// Loop unrolling: replicate the body `factor` times with the iteration
// offset folded into every affine subscript and induction-variable use.
//
// Used as SLP's pre-pass (the slides evaluate "SLP vectorization applied
// after loop unrolling"): unrolled copies of a statement store to adjacent
// addresses and become pack seeds. Reduction and recurrence phis are chained
// through the copies, so the unrolled loop computes exactly what the
// original computes over any iteration range that is a multiple of the
// factor (the remainder would need an epilogue, exactly as with widening).
#pragma once

#include "ir/loop.hpp"

namespace veccost::vectorizer {

struct UnrollResult {
  bool ok = false;
  ir::LoopKernel kernel;           ///< trip.step scaled by `factor`
  std::string reason;              ///< why not, when !ok
};

/// Unroll by `factor` (>= 2). Fails for loops with breaks.
[[nodiscard]] UnrollResult unroll_loop(const ir::LoopKernel& scalar, int factor);

}  // namespace veccost::vectorizer
