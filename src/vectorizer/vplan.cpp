#include "vectorizer/vplan.hpp"

#include <sstream>

namespace veccost::vectorizer {

std::string VectorizedLoop::notes_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < notes.size(); ++i) os << (i ? "; " : "") << notes[i];
  return os.str();
}

}  // namespace veccost::vectorizer
