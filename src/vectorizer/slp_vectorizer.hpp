// Superword-level parallelism (SLP) vectorizer.
//
// Bottom-up SLP in the style of LLVM's SLPVectorizer: stores to consecutive
// addresses seed packs; operand groups are packed recursively while the
// members stay isomorphic (same opcode and type); contiguous load groups
// become vector loads, anything non-isomorphic aborts the seed. The result
// is a pack plan consumed by the performance and cost models — the paper
// compares LLV and SLP *predictions* against measurements (slide 15), which
// needs exactly this op-mix information.
#pragma once

#include "machine/target.hpp"
#include "vectorizer/vplan.hpp"

namespace veccost::vectorizer {

struct SlpOptions {
  /// Cap on pack width; 0 = the target's natural width for the element type.
  int max_width = 0;
  /// Try pre-unrolling by 2 and 4 when the body as written yields no packs
  /// (the slides run SLP after loop unrolling).
  bool auto_unroll = true;
};

[[nodiscard]] SlpPlan slp_vectorize(const ir::LoopKernel& scalar,
                                    const machine::TargetDesc& target,
                                    const SlpOptions& opts = {});

}  // namespace veccost::vectorizer
