#include "vectorizer/loop_vectorizer.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "analysis/reduction.hpp"
#include "ir/verifier.hpp"
#include "obs/metrics.hpp"
#include "support/error.hpp"

namespace veccost::vectorizer {

using analysis::PhiInfo;
using analysis::PhiKind;
using ir::Instruction;
using ir::LoopKernel;
using ir::Opcode;
using ir::ValueId;

int natural_vf(const LoopKernel& kernel, const machine::TargetDesc& target) {
  // Like LLVM's getSmallestAndWidestTypes: the VF is chosen from the widest
  // type ACCESSED IN MEMORY; index arithmetic (i64 induction chains) does not
  // force a narrow VF.
  int widest_bits = 0;
  for (const auto& inst : kernel.body) {
    if (!ir::is_memory_op(inst.op)) continue;
    widest_bits = std::max(widest_bits, ir::byte_size(inst.type.elem) * 8);
  }
  if (widest_bits == 0) widest_bits = 32;  // no memory ops: assume word data
  return std::max(2, target.vector_bits / widest_bits);
}

namespace {

/// Widening rewriter: walks the scalar body in order, emitting the vector
/// body and maintaining the scalar->vector value mapping.
class Widener {
 public:
  Widener(const LoopKernel& scalar, int vf) : src_(scalar), vf_(vf) {
    out_.name = scalar.name + ".v" + std::to_string(vf);
    out_.category = scalar.category;
    out_.description = scalar.description;
    out_.default_n = scalar.default_n;
    out_.trip = scalar.trip;
    out_.nest = scalar.nest;
    out_.arrays = scalar.arrays;
    out_.params = scalar.params;
    out_.vf = vf;
    map_.assign(scalar.body.size(), ir::kNoValue);
  }

  /// Returns empty string on success, else the rejection reason.
  std::string run(const std::vector<PhiInfo>& phi_infos,
                  std::vector<std::string>& notes) {
    for (const auto& info : phi_infos)
      kind_of_[info.phi] = info.kind;

    for (std::size_t id = 0; id < src_.body.size(); ++id) {
      const std::string err = widen(static_cast<ValueId>(id), notes);
      if (!err.empty()) return err;
      resolve_pending(notes);
    }
    if (!pending_.empty())
      return "unresolved first-order recurrence (update never emitted)";

    // Live-outs: map scalar phis to their vector phis (not the splice).
    for (const ValueId v : src_.live_outs) {
      VECCOST_ASSERT(phi_vec_.count(v) > 0, "live-out phi was not widened");
      out_.live_outs.push_back(phi_vec_[v]);
    }
    return "";
  }

  [[nodiscard]] LoopKernel take() && { return std::move(out_); }

 private:
  ValueId emit(Instruction inst) {
    out_.body.push_back(inst);
    return static_cast<ValueId>(out_.body.size()) - 1;
  }

  /// Vector value for a scalar operand; fails (returns kNoValue) when the
  /// operand is a first-order recurrence phi whose splice is not yet
  /// available (sinking would be required).
  ValueId mapped(ValueId scalar_id) const {
    if (scalar_id == ir::kNoValue) return ir::kNoValue;
    if (pending_.count(scalar_id) > 0) return ir::kNoValue;
    return map_[static_cast<std::size_t>(scalar_id)];
  }

  std::string widen(ValueId id, std::vector<std::string>& notes) {
    const Instruction& inst = src_.body[static_cast<std::size_t>(id)];
    Instruction w = inst;  // copies payloads (array, index, const, ...)

    // Leaves stay scalar except the induction variables, whose widened form
    // is the per-lane iteration index.
    switch (inst.op) {
      case Opcode::Const:
      case Opcode::Param:
      case Opcode::OuterIndVar:
        map_[static_cast<std::size_t>(id)] = emit(w);
        return "";
      case Opcode::IndVar:
        w.type.lanes = vf_;
        map_[static_cast<std::size_t>(id)] = emit(w);
        return "";
      case Opcode::Break:
        return "break in loop body";
      default:
        break;
    }

    if (inst.op == Opcode::Phi) return widen_phi(id, w, notes);

    // Map operands (implicit broadcast of scalar values is handled by the
    // executor; costs account for it via the Leaf/Broadcast classes).
    for (int i = 0; i < inst.num_operands(); ++i) {
      const ValueId m = mapped(inst.operands[static_cast<std::size_t>(i)]);
      if (m == ir::kNoValue &&
          inst.operands[static_cast<std::size_t>(i)] != ir::kNoValue)
        return "use of first-order recurrence before its update (needs sinking)";
      w.operands[static_cast<std::size_t>(i)] = m;
    }
    if (inst.predicate != ir::kNoValue) {
      const ValueId m = mapped(inst.predicate);
      if (m == ir::kNoValue) return "predicate depends on pending recurrence";
      w.predicate = m;
    }
    if (inst.index.is_indirect()) {
      const ValueId m = mapped(inst.index.indirect);
      if (m == ir::kNoValue) return "indirect index depends on pending recurrence";
      w.index.indirect = m;
    }

    w.type.lanes = vf_;

    if (ir::is_memory_op(inst.op)) return widen_memory(id, inst, w, notes);

    map_[static_cast<std::size_t>(id)] = emit(w);
    return "";
  }

  std::string widen_memory(ValueId id, const Instruction& inst, Instruction w,
                           std::vector<std::string>& notes) {
    const std::int64_t stride = inst.index.scale_i * src_.trip.step;
    const bool is_store = ir::is_store_op(inst.op);
    if (inst.index.is_indirect()) {
      if (is_store) return "indirect store (scatter)";
      w.op = Opcode::Gather;
      notes.push_back("gather for " + array_name(inst));
    } else if (stride == 1) {
      w.op = is_store ? Opcode::Store : Opcode::Load;
    } else if (stride == 0 && !is_store) {
      // Loop-invariant load: stays scalar (hoisted + broadcast).
      w.op = Opcode::Load;
      w.type.lanes = 1;
    } else {
      // Reversed (-1) or strided access: de-interleave / reverse cost.
      w.op = is_store ? Opcode::StridedStore : Opcode::StridedLoad;
      notes.push_back("strided access (stride " + std::to_string(stride) +
                      ") for " + array_name(inst));
    }
    if (w.predicate != ir::kNoValue && is_store)
      notes.push_back("masked store for " + array_name(inst));
    map_[static_cast<std::size_t>(id)] = emit(w);
    return "";
  }

  std::string widen_phi(ValueId id, Instruction w, std::vector<std::string>& notes) {
    const auto kind_it = kind_of_.find(id);
    VECCOST_ASSERT(kind_it != kind_of_.end(), "phi not classified");
    w.type.lanes = vf_;
    w.phi_update = ir::kNoValue;  // patched once the update is widened

    switch (kind_it->second) {
      case PhiKind::Reduction: {
        const ValueId vec_phi = emit(w);
        phi_vec_[id] = vec_phi;
        map_[static_cast<std::size_t>(id)] = vec_phi;
        fixup_[id] = vec_phi;
        return "";
      }
      case PhiKind::FirstOrderRecurrence: {
        const ValueId vec_phi = emit(w);
        phi_vec_[id] = vec_phi;
        pending_.insert(id);
        fixup_[id] = vec_phi;
        notes.push_back("first-order recurrence via splice");
        return "";
      }
      case PhiKind::Serial:
        return "serial recurrence";
    }
    return "unclassified phi";
  }

  /// Emit splices for pending recurrences whose update value is now mapped,
  /// and patch phi update edges whose update value is now mapped.
  void resolve_pending(std::vector<std::string>& /*notes*/) {
    bool progress = true;
    while (progress) {
      progress = false;
      for (auto it = pending_.begin(); it != pending_.end();) {
        const ValueId phi_id = *it;
        const Instruction& sphi = src_.instr(phi_id);
        const ValueId upd = mapped(sphi.phi_update);
        if (upd != ir::kNoValue) {
          Instruction splice;
          splice.op = Opcode::Splice;
          splice.type = {sphi.type.elem, vf_};
          splice.operands[0] = phi_vec_[phi_id];
          splice.operands[1] = upd;
          map_[static_cast<std::size_t>(phi_id)] = emit(splice);
          it = pending_.erase(it);
          progress = true;
        } else {
          ++it;
        }
      }
    }
    // Patch reduction/recurrence phi update edges.
    for (auto it = fixup_.begin(); it != fixup_.end();) {
      const Instruction& sphi = src_.instr(it->first);
      const ValueId upd = mapped(sphi.phi_update);
      if (upd != ir::kNoValue) {
        out_.body[static_cast<std::size_t>(it->second)].phi_update = upd;
        it = fixup_.erase(it);
      } else {
        ++it;
      }
    }
  }

  std::string array_name(const Instruction& inst) const {
    return src_.arrays[static_cast<std::size_t>(inst.array)].name;
  }

  const LoopKernel& src_;
  int vf_;
  LoopKernel out_;
  std::vector<ValueId> map_;              ///< scalar id -> vector id
  std::map<ValueId, PhiKind> kind_of_;    ///< phi classification
  std::map<ValueId, ValueId> phi_vec_;    ///< scalar phi -> vector phi
  std::map<ValueId, ValueId> fixup_;      ///< phis awaiting update patch
  std::set<ValueId> pending_;             ///< recurrences awaiting splice
};

int floor_pow2(std::int64_t x) {
  int p = 1;
  while (2LL * p <= x) p *= 2;
  return p;
}

}  // namespace

int resolve_vf(int requested, const LoopKernel& kernel,
               const machine::TargetDesc& target) {
  return requested > 0 ? requested : natural_vf(kernel, target);
}

VectorizedLoop vectorize_loop(const LoopKernel& scalar,
                              const machine::TargetDesc& target,
                              const LoopVectorizerOptions& opts) {
  return vectorize_legal(scalar, target, opts,
                         analysis::check_legality(scalar, opts.legality));
}

VectorizedLoop vectorize_legal(const LoopKernel& scalar,
                               const machine::TargetDesc& target,
                               const LoopVectorizerOptions& opts,
                               const analysis::Legality& legality) {
  VECCOST_SPAN("vectorizer.loop_ns");
  VECCOST_COUNTER_ADD("vectorizer.loop_attempts", 1);
  VectorizedLoop result;
  if (!legality.vectorizable) {
    result.notes.push_back("not legal: " + legality.reasons_string());
    return result;
  }
  if (opts.predicated) {
    if (!target.vl.vl_agnostic) {
      result.notes.push_back("target " + target.name +
                             " has no vector-length-agnostic predication");
      return result;
    }
    // The whole-loop regime keeps partially accumulated reduction lanes
    // across the final partial block, but a first-order recurrence's splice
    // reads the LAST lane of the previous block — undefined when that block
    // was partial. Refuse rather than emit a lane-shuffling fixup.
    for (const PhiInfo& info : legality.phi_infos) {
      if (info.kind == PhiKind::FirstOrderRecurrence) {
        result.notes.push_back(
            "first-order recurrence is illegal under predication");
        return result;
      }
    }
  }

  int vf = resolve_vf(opts.requested_vf, scalar, target);
  if (static_cast<std::int64_t>(vf) > legality.max_vf) {
    vf = floor_pow2(legality.max_vf);
    result.notes.push_back("partial vectorization: dependence distance caps VF at " +
                           std::to_string(legality.max_vf));
  }
  if (vf < 2) {
    result.notes.push_back("no profitable VF >= 2 is legal");
    return result;
  }

  Widener widener(scalar, vf);
  const std::string err = widener.run(legality.phi_infos, result.notes);
  if (!err.empty()) {
    result.notes.push_back("widening failed: " + err);
    return result;
  }

  result.kernel = std::move(widener).take();
  result.vf = vf;
  result.ok = true;
  if (opts.predicated) {
    result.kernel.predicated = true;
    result.kernel.name = scalar.name + ".p" + std::to_string(vf);
    result.notes.push_back("predicated whole loop (no scalar tail)");
  }
  VECCOST_COUNTER_ADD("vectorizer.loops_vectorized", 1);
  result.runtime_check = legality.needs_runtime_check;
  if (result.runtime_check)
    result.notes.push_back("versioned behind a runtime overlap check");
  ir::verify_or_throw(result.kernel);
  return result;
}

}  // namespace veccost::vectorizer
