// Loop-level vectorizer (LLV): widens a legal scalar loop by a factor VF.
//
// Modeled on LLVM's LoopVectorize at the slides' configuration (no unrolling,
// no interleaving):
//  * contiguous accesses (effective stride +-1) widen to vector load/store
//    (stride -1 pays a reverse-shuffle cost via the strided class);
//  * |stride| > 1 becomes a strided (de-interleaving) access;
//  * indirect loads become gathers; indirect stores are illegal;
//  * if-converted predicated stores stay predicated (masked);
//  * reduction phis become vector accumulators (lane 0 carries the initial
//    value) with a horizontal reduction at the loop exit;
//  * first-order recurrences are widened with a splice of the previous
//    block's values (uses that precede the recurrence update in the body
//    would need sinking, which — like LLVM — we refuse rather than reorder
//    memory operations).
#pragma once

#include "analysis/legality.hpp"
#include "machine/target.hpp"
#include "vectorizer/vplan.hpp"

namespace veccost::vectorizer {

struct LoopVectorizerOptions {
  /// Requested VF; 0 = choose from the target's register width and the
  /// widest element type in the body, capped by legality.
  int requested_vf = 0;
  /// Predicated whole-loop regime (SVE-style `llv<vl>`): no scalar tail,
  /// the final partial block runs under a whilelt-style governing predicate.
  /// Requires a vector-length-agnostic target (TargetDesc::vl.vl_agnostic)
  /// and refuses first-order recurrences, whose splice semantics depend on
  /// the last lane of a full final block.
  bool predicated = false;
  analysis::LegalityOptions legality;
};

/// Natural VF for a kernel on a target: register width / widest element.
[[nodiscard]] int natural_vf(const ir::LoopKernel& kernel,
                             const machine::TargetDesc& target);

/// The one place the "requested VF 0 means the target's natural VF" default
/// is resolved. Every VF sweep (selector, semantics validation, the
/// differential oracle's widening matrix) shares this instead of re-encoding
/// the convention.
[[nodiscard]] int resolve_vf(int requested, const ir::LoopKernel& kernel,
                             const machine::TargetDesc& target);

/// Widen `scalar` for `target`. On failure, `ok == false` and notes explain.
[[nodiscard]] VectorizedLoop vectorize_loop(const ir::LoopKernel& scalar,
                                            const machine::TargetDesc& target,
                                            const LoopVectorizerOptions& opts = {});

/// Widen `scalar` using an already-computed legality verdict (which must be
/// check_legality(scalar, opts.legality) — the xform::AnalysisManager hands
/// in its cached copy so a VF sweep pays for dependence analysis once).
[[nodiscard]] VectorizedLoop vectorize_legal(const ir::LoopKernel& scalar,
                                             const machine::TargetDesc& target,
                                             const LoopVectorizerOptions& opts,
                                             const analysis::Legality& legality);

}  // namespace veccost::vectorizer
