// Pipeline observability: a lock-cheap metrics registry plus RAII spans.
//
// Three instrument kinds, all merged on read so the hot path never takes a
// lock:
//
//  * counters    — monotonic uint64, one relaxed atomic add into the calling
//                  thread's shard;
//  * gauges      — last-value int64 with a running max (queue depths);
//  * histograms  — fixed log2-scale buckets (bucket i covers values with bit
//                  width i+1, i.e. [2^i, 2^{i+1})), per-shard count/sum.
//
// `Span` is a scoped timer: construction stamps a start time, destruction
// records the duration into a histogram and appends one event to the owning
// shard's flat trace buffer. Traces export as Chrome `chrome://tracing`
// trace-event JSON (obs/export.hpp); spans are nanoseconds throughout.
//
// Shards: each thread lazily registers one `Shard` per registry; shards are
// owned by the registry and outlive their threads, so `snapshot()` can merge
// from any thread at any time. Writes are relaxed atomics by the owning
// thread; readers see a consistent-enough view (counters can be mid-update,
// never torn).
//
// Two off switches:
//  * runtime — VECCOST_METRICS=0 in the environment (or `set_enabled(false)`)
//    turns every record into a single relaxed bool load;
//  * compile time — building with -DVECCOST_METRICS=0 (CMake option
//    VECCOST_METRICS=OFF) compiles the VECCOST_* instrumentation macros to
//    nothing, the same template/macro trick the lowered engine uses for its
//    untraced path. The registry itself still links so the exporters and the
//    `veccost stats` subcommand keep working (they just see zeros).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#ifndef VECCOST_METRICS
#define VECCOST_METRICS 1
#endif

namespace veccost::obs {

/// Log2 histogram bucket count: bucket 47 tops out at 2^48 ns ≈ 3.3 days.
inline constexpr std::size_t kHistogramBuckets = 48;

/// Bucket index for a recorded value: 0 for 0 and 1, otherwise bit_width-1,
/// clamped to the last bucket. Exposed for the bucket-boundary tests.
[[nodiscard]] constexpr std::size_t histogram_bucket(std::uint64_t value) {
  std::size_t b = 0;
  while (value > 1) {
    value >>= 1;
    ++b;
  }
  return b < kHistogramBuckets ? b : kHistogramBuckets - 1;
}

/// Lower bound of bucket `i` ([bucket_lo, 2*bucket_lo) except bucket 0,
/// which also holds zero).
[[nodiscard]] constexpr std::uint64_t histogram_bucket_lo(std::size_t i) {
  return std::uint64_t{1} << i;
}

/// Nanoseconds on the steady clock since process-local epoch (the global
/// registry's construction). The time source for spans and trace events.
[[nodiscard]] std::uint64_t now_ns();

struct GaugeSnapshot {
  std::int64_t value = 0;
  std::int64_t max = 0;
  friend bool operator==(const GaugeSnapshot&, const GaugeSnapshot&) = default;
};

struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};
  friend bool operator==(const HistogramSnapshot&,
                         const HistogramSnapshot&) = default;

  /// Upper bound of the quantile's bucket (q in [0,1]); 0 when empty.
  [[nodiscard]] std::uint64_t quantile_bound(double q) const;
  [[nodiscard]] double mean() const {
    return count ? static_cast<double>(sum) / static_cast<double>(count) : 0.0;
  }
};

/// Merged, point-in-time view of a registry. Map-keyed by instrument name so
/// exports are deterministic.
struct Snapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, GaugeSnapshot> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
  friend bool operator==(const Snapshot&, const Snapshot&) = default;
};

/// One span occurrence, for the Chrome trace export. `tid` is the shard
/// index (stable per thread), `depth` the span nesting level on that thread.
struct TraceEvent {
  const char* name = nullptr;  ///< static string from the VECCOST_SPAN site
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;
  std::uint16_t depth = 0;
};

class Registry {
 public:
  static constexpr std::size_t kMaxCounters = 160;
  static constexpr std::size_t kMaxGauges = 24;
  static constexpr std::size_t kMaxHistograms = 64;
  /// Trace buffer bound per shard; events beyond it are counted, not stored.
  static constexpr std::size_t kMaxTraceEventsPerShard = 1 << 16;

  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry every VECCOST_* macro records into.
  [[nodiscard]] static Registry& global();

  // ---- registration (cold; instrument sites cache the id in a static) ----
  [[nodiscard]] std::size_t counter_id(std::string_view name);
  [[nodiscard]] std::size_t gauge_id(std::string_view name);
  [[nodiscard]] std::size_t histogram_id(std::string_view name);

  // ---- hot path ----
  void add(std::size_t counter, std::uint64_t delta = 1);
  void gauge_set(std::size_t gauge, std::int64_t value);
  void gauge_add(std::size_t gauge, std::int64_t delta);
  void observe(std::size_t histogram, std::uint64_t value);
  /// Record one finished span: histogram observation + trace event.
  void record_span(std::size_t histogram, const char* name,
                   std::uint64_t start_ns, std::uint64_t dur_ns,
                   std::uint16_t depth);

  /// Runtime collection switch (VECCOST_METRICS=0 disables at startup).
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  // ---- read side ----
  /// Merge all shards into one deterministic view.
  [[nodiscard]] Snapshot snapshot() const;
  /// All trace events from all shards, sorted by start time.
  [[nodiscard]] std::vector<TraceEvent> trace_events() const;
  /// Span occurrences dropped because a shard's trace buffer was full.
  [[nodiscard]] std::uint64_t dropped_trace_events() const;
  /// Zero every instrument and clear the trace buffers; registered names and
  /// ids survive so cached site ids stay valid.
  void reset();

 private:
  struct Histogram {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
  };
  struct Shard {
    std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
    std::array<Histogram, kMaxHistograms> histograms{};
    std::uint32_t tid = 0;
    // Trace buffer: owner-thread appends and snapshot reads both take this
    // (uncontended in practice — spans are coarse).
    mutable std::mutex trace_mutex;
    std::vector<TraceEvent> trace;
    std::uint64_t trace_dropped = 0;
  };
  struct Gauge {
    std::atomic<std::int64_t> value{0};
    std::atomic<std::int64_t> max{0};
  };

  [[nodiscard]] Shard& local_shard();
  [[nodiscard]] static std::size_t intern(std::vector<std::string>& names,
                                          std::string_view name,
                                          std::size_t limit, const char* kind);

  const std::uint64_t id_;  ///< process-unique, keys the thread-local cache
  std::atomic<bool> enabled_{true};
  mutable std::mutex mutex_;  ///< registration, shard list, snapshot merge
  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  std::vector<std::string> histogram_names_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::array<Gauge, kMaxGauges> gauges_;
};

/// Scoped timer. Use through VECCOST_SPAN so the histogram id resolves once
/// per site; `name` must outlive the registry (string literals).
class Span {
 public:
  Span(const char* name, std::size_t histogram) {
    Registry& r = Registry::global();
    if (!r.enabled()) return;
    name_ = name;
    histogram_ = histogram;
    depth_ = static_cast<std::uint16_t>(++nesting_depth());
    start_ = now_ns();
  }
  ~Span() {
    if (name_ == nullptr) return;
    --nesting_depth();
    const std::uint64_t end = now_ns();
    Registry::global().record_span(histogram_, name_, start_,
                                   end - start_, depth_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  static int& nesting_depth();

  const char* name_ = nullptr;  ///< null = collection disabled at entry
  std::size_t histogram_ = 0;
  std::uint64_t start_ = 0;
  std::uint16_t depth_ = 0;
};

}  // namespace veccost::obs

// ---- instrumentation macros ------------------------------------------------
//
// Each site resolves its instrument id exactly once (function-local static)
// and then pays one enabled-check plus one relaxed atomic RMW per record.
// With -DVECCOST_METRICS=0 every macro expands to nothing.
#if VECCOST_METRICS

#define VECCOST_OBS_CAT2(a, b) a##b
#define VECCOST_OBS_CAT(a, b) VECCOST_OBS_CAT2(a, b)

#define VECCOST_COUNTER_ADD(name, delta)                                      \
  do {                                                                        \
    static const std::size_t vc_obs_id_ =                                     \
        ::veccost::obs::Registry::global().counter_id(name);                  \
    ::veccost::obs::Registry::global().add(vc_obs_id_,                        \
                                           static_cast<std::uint64_t>(delta));\
  } while (0)

#define VECCOST_GAUGE_SET(name, value)                                        \
  do {                                                                        \
    static const std::size_t vc_obs_id_ =                                     \
        ::veccost::obs::Registry::global().gauge_id(name);                    \
    ::veccost::obs::Registry::global().gauge_set(                             \
        vc_obs_id_, static_cast<std::int64_t>(value));                        \
  } while (0)

#define VECCOST_OBSERVE(name, value)                                          \
  do {                                                                        \
    static const std::size_t vc_obs_id_ =                                     \
        ::veccost::obs::Registry::global().histogram_id(name);                \
    ::veccost::obs::Registry::global().observe(                               \
        vc_obs_id_, static_cast<std::uint64_t>(value));                       \
  } while (0)

/// Declares a scoped timer for the rest of the enclosing block.
#define VECCOST_SPAN(name)                                                    \
  static const std::size_t VECCOST_OBS_CAT(vc_span_id_, __LINE__) =           \
      ::veccost::obs::Registry::global().histogram_id(name);                  \
  const ::veccost::obs::Span VECCOST_OBS_CAT(vc_span_, __LINE__)(             \
      name, VECCOST_OBS_CAT(vc_span_id_, __LINE__))

#else  // !VECCOST_METRICS

#define VECCOST_COUNTER_ADD(name, delta) \
  do {                                   \
  } while (0)
#define VECCOST_GAUGE_SET(name, value) \
  do {                                 \
  } while (0)
#define VECCOST_OBSERVE(name, value) \
  do {                               \
  } while (0)
#define VECCOST_SPAN(name) \
  do {                     \
  } while (0)

#endif  // VECCOST_METRICS
