// Exporters for the metrics registry: deterministic JSON (round-trippable
// through snapshot_from_json — the `veccost stats --json` golden test pins
// the format), a Chrome `chrome://tracing` / Perfetto trace-event file, and
// the human-readable table behind `veccost stats`.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace veccost::obs {

/// Schema tag stamped into every metrics JSON document.
inline constexpr const char* kMetricsSchema = "veccost-metrics-v1";

/// Serialize a snapshot as JSON. Deterministic: instruments sort by name,
/// histogram buckets emit sparsely as {"bucket_index": count}.
void write_metrics_json(std::ostream& os, const Snapshot& snapshot);
[[nodiscard]] std::string metrics_json(const Snapshot& snapshot);

/// Inverse of write_metrics_json, for tooling that diffs two runs (and the
/// round-trip test). Throws veccost::Error on malformed input or a schema
/// mismatch.
[[nodiscard]] Snapshot snapshot_from_json(const std::string& json);

/// Chrome trace-event JSON ("X" complete events, microsecond timestamps):
/// load in chrome://tracing or https://ui.perfetto.dev. One row per shard
/// (= per thread); span nesting renders from the event timings.
void write_trace_json(std::ostream& os, const std::vector<TraceEvent>& events);

/// Fixed-width table of every instrument, grouped counters first, for
/// `veccost stats`. Histogram rows show count, mean and log2-bucket p50/p99
/// upper bounds (span histograms are nanoseconds).
[[nodiscard]] std::string metrics_table(const Snapshot& snapshot);

}  // namespace veccost::obs
