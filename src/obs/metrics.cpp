#include "obs/metrics.hpp"

#include <algorithm>
#include <chrono>

#include "support/env_flags.hpp"
#include "support/error.hpp"

namespace veccost::obs {

namespace {

std::chrono::steady_clock::time_point process_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

std::uint64_t next_registry_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - process_epoch())
          .count());
}

std::uint64_t HistogramSnapshot::quantile_bound(double q) const {
  if (count == 0) return 0;
  const double rank = q * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    seen += buckets[b];
    if (static_cast<double>(seen) >= rank && buckets[b] > 0)
      return histogram_bucket_lo(b) * 2 - 1;
  }
  return histogram_bucket_lo(kHistogramBuckets - 1) * 2 - 1;
}

Registry::Registry() : id_(next_registry_id()) {
  (void)process_epoch();  // pin the epoch no later than first registry
  enabled_.store(support::EnvFlags::enabled("VECCOST_METRICS", true),
                 std::memory_order_relaxed);
}

Registry::~Registry() = default;

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

std::size_t Registry::intern(std::vector<std::string>& names,
                             std::string_view name, std::size_t limit,
                             const char* kind) {
  for (std::size_t i = 0; i < names.size(); ++i)
    if (names[i] == name) return i;
  VECCOST_ASSERT(names.size() < limit,
                 std::string("metrics registry out of ") + kind + " slots");
  names.emplace_back(name);
  return names.size() - 1;
}

std::size_t Registry::counter_id(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return intern(counter_names_, name, kMaxCounters, "counter");
}

std::size_t Registry::gauge_id(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return intern(gauge_names_, name, kMaxGauges, "gauge");
}

std::size_t Registry::histogram_id(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return intern(histogram_names_, name, kMaxHistograms, "histogram");
}

Registry::Shard& Registry::local_shard() {
  // Keyed by process-unique registry id, so an entry for a destroyed
  // registry can never be confused with a new registry at the same address.
  struct TlsEntry {
    std::uint64_t registry_id;
    Shard* shard;
  };
  thread_local std::vector<TlsEntry> tls;
  for (const TlsEntry& e : tls)
    if (e.registry_id == id_) return *e.shard;
  auto owned = std::make_unique<Shard>();
  Shard* shard = owned.get();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shard->tid = static_cast<std::uint32_t>(shards_.size());
    shards_.push_back(std::move(owned));
  }
  tls.push_back({id_, shard});
  return *shard;
}

void Registry::add(std::size_t counter, std::uint64_t delta) {
  if (!enabled()) return;
  local_shard().counters[counter].fetch_add(delta, std::memory_order_relaxed);
}

void Registry::gauge_set(std::size_t gauge, std::int64_t value) {
  if (!enabled()) return;
  Gauge& g = gauges_[gauge];
  g.value.store(value, std::memory_order_relaxed);
  std::int64_t max = g.max.load(std::memory_order_relaxed);
  while (value > max &&
         !g.max.compare_exchange_weak(max, value, std::memory_order_relaxed)) {
  }
}

void Registry::gauge_add(std::size_t gauge, std::int64_t delta) {
  if (!enabled()) return;
  Gauge& g = gauges_[gauge];
  const std::int64_t value =
      g.value.fetch_add(delta, std::memory_order_relaxed) + delta;
  std::int64_t max = g.max.load(std::memory_order_relaxed);
  while (value > max &&
         !g.max.compare_exchange_weak(max, value, std::memory_order_relaxed)) {
  }
}

void Registry::observe(std::size_t histogram, std::uint64_t value) {
  if (!enabled()) return;
  Histogram& h = local_shard().histograms[histogram];
  h.count.fetch_add(1, std::memory_order_relaxed);
  h.sum.fetch_add(value, std::memory_order_relaxed);
  h.buckets[histogram_bucket(value)].fetch_add(1, std::memory_order_relaxed);
}

void Registry::record_span(std::size_t histogram, const char* name,
                           std::uint64_t start_ns, std::uint64_t dur_ns,
                           std::uint16_t depth) {
  if (!enabled()) return;
  Shard& shard = local_shard();
  Histogram& h = shard.histograms[histogram];
  h.count.fetch_add(1, std::memory_order_relaxed);
  h.sum.fetch_add(dur_ns, std::memory_order_relaxed);
  h.buckets[histogram_bucket(dur_ns)].fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(shard.trace_mutex);
  if (shard.trace.size() >= kMaxTraceEventsPerShard) {
    ++shard.trace_dropped;
    return;
  }
  shard.trace.push_back({name, start_ns, dur_ns, shard.tid, depth});
}

Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot snap;
  for (std::size_t c = 0; c < counter_names_.size(); ++c) {
    std::uint64_t total = 0;
    for (const auto& shard : shards_)
      total += shard->counters[c].load(std::memory_order_relaxed);
    snap.counters[counter_names_[c]] = total;
  }
  for (std::size_t g = 0; g < gauge_names_.size(); ++g) {
    snap.gauges[gauge_names_[g]] = {
        gauges_[g].value.load(std::memory_order_relaxed),
        gauges_[g].max.load(std::memory_order_relaxed)};
  }
  for (std::size_t h = 0; h < histogram_names_.size(); ++h) {
    HistogramSnapshot hs;
    for (const auto& shard : shards_) {
      const Histogram& sh = shard->histograms[h];
      hs.count += sh.count.load(std::memory_order_relaxed);
      hs.sum += sh.sum.load(std::memory_order_relaxed);
      for (std::size_t b = 0; b < kHistogramBuckets; ++b)
        hs.buckets[b] += sh.buckets[b].load(std::memory_order_relaxed);
    }
    snap.histograms[histogram_names_[h]] = hs;
  }
  return snap;
}

std::vector<TraceEvent> Registry::trace_events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceEvent> out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> trace_lock(shard->trace_mutex);
    out.insert(out.end(), shard->trace.begin(), shard->trace.end());
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.tid < b.tid;
            });
  return out;
}

std::uint64_t Registry::dropped_trace_events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t dropped = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> trace_lock(shard->trace_mutex);
    dropped += shard->trace_dropped;
  }
  return dropped;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& shard : shards_) {
    for (auto& c : shard->counters) c.store(0, std::memory_order_relaxed);
    for (auto& h : shard->histograms) {
      h.count.store(0, std::memory_order_relaxed);
      h.sum.store(0, std::memory_order_relaxed);
      for (auto& b : h.buckets) b.store(0, std::memory_order_relaxed);
    }
    std::lock_guard<std::mutex> trace_lock(shard->trace_mutex);
    shard->trace.clear();
    shard->trace_dropped = 0;
  }
  for (auto& g : gauges_) {
    g.value.store(0, std::memory_order_relaxed);
    g.max.store(0, std::memory_order_relaxed);
  }
}

int& Span::nesting_depth() {
  thread_local int depth = 0;
  return depth;
}

}  // namespace veccost::obs
