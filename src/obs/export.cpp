#include "obs/export.hpp"

#include <cctype>
#include <cstdlib>
#include <ostream>
#include <sstream>

#include "support/error.hpp"
#include "support/table.hpp"

namespace veccost::obs {

namespace {

void write_escaped(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

}  // namespace

void write_metrics_json(std::ostream& os, const Snapshot& snapshot) {
  os << "{\n  \"schema\": \"" << kMetricsSchema << "\",\n";
  os << "  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    os << (first ? "\n" : ",\n") << "    ";
    write_escaped(os, name);
    os << ": " << value;
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n";

  os << "  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : snapshot.gauges) {
    os << (first ? "\n" : ",\n") << "    ";
    write_escaped(os, name);
    os << ": {\"value\": " << g.value << ", \"max\": " << g.max << "}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n";

  os << "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    os << (first ? "\n" : ",\n") << "    ";
    write_escaped(os, name);
    os << ": {\"count\": " << h.count << ", \"sum\": " << h.sum
       << ", \"buckets\": {";
    bool first_bucket = true;
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      if (h.buckets[b] == 0) continue;
      if (!first_bucket) os << ", ";
      os << '"' << b << "\": " << h.buckets[b];
      first_bucket = false;
    }
    os << "}}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
}

std::string metrics_json(const Snapshot& snapshot) {
  std::ostringstream os;
  write_metrics_json(os, snapshot);
  return os.str();
}

namespace {

/// Minimal recursive-descent parser for the subset of JSON that
/// write_metrics_json emits: objects, string keys, and integers.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  void expect(char c) {
    skip_ws();
    VECCOST_ASSERT(pos_ < text_.size() && text_[pos_] == c,
                   std::string("metrics JSON: expected '") + c + "' at offset " +
                       std::to_string(pos_));
    ++pos_;
  }

  [[nodiscard]] bool accept(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] std::string string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) c = text_[pos_++];
      out += c;
    }
    expect('"');
    return out;
  }

  [[nodiscard]] std::int64_t integer() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
    VECCOST_ASSERT(pos_ > start, "metrics JSON: expected an integer at offset " +
                                     std::to_string(start));
    return std::strtoll(text_.substr(start, pos_ - start).c_str(), nullptr, 10);
  }

  /// Iterate over the members of an object: call `member(key)` after
  /// positioning the cursor at the value.
  template <class Fn>
  void object(Fn&& member) {
    expect('{');
    if (accept('}')) return;
    do {
      std::string key = string();
      expect(':');
      member(key);
    } while (accept(','));
    expect('}');
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Snapshot snapshot_from_json(const std::string& json) {
  Snapshot snap;
  JsonParser p(json);
  p.object([&](const std::string& section) {
    if (section == "schema") {
      const std::string schema = p.string();
      VECCOST_ASSERT(schema == kMetricsSchema,
                     "metrics JSON: unknown schema '" + schema + "'");
    } else if (section == "counters") {
      p.object([&](const std::string& name) {
        snap.counters[name] = static_cast<std::uint64_t>(p.integer());
      });
    } else if (section == "gauges") {
      p.object([&](const std::string& name) {
        GaugeSnapshot g;
        p.object([&](const std::string& field) {
          if (field == "value") g.value = p.integer();
          else if (field == "max") g.max = p.integer();
          else VECCOST_FAIL("metrics JSON: unknown gauge field '" + field + "'");
        });
        snap.gauges[name] = g;
      });
    } else if (section == "histograms") {
      p.object([&](const std::string& name) {
        HistogramSnapshot h;
        p.object([&](const std::string& field) {
          if (field == "count") {
            h.count = static_cast<std::uint64_t>(p.integer());
          } else if (field == "sum") {
            h.sum = static_cast<std::uint64_t>(p.integer());
          } else if (field == "buckets") {
            p.object([&](const std::string& bucket) {
              const std::size_t b = static_cast<std::size_t>(
                  std::strtoull(bucket.c_str(), nullptr, 10));
              VECCOST_ASSERT(b < kHistogramBuckets,
                             "metrics JSON: bucket index out of range");
              h.buckets[b] = static_cast<std::uint64_t>(p.integer());
            });
          } else {
            VECCOST_FAIL("metrics JSON: unknown histogram field '" + field +
                         "'");
          }
        });
        snap.histograms[name] = h;
      });
    } else {
      VECCOST_FAIL("metrics JSON: unknown section '" + section + "'");
    }
  });
  return snap;
}

void write_trace_json(std::ostream& os, const std::vector<TraceEvent>& events) {
  os << "{\"traceEvents\": [";
  bool first = true;
  for (const TraceEvent& e : events) {
    os << (first ? "\n" : ",\n") << "  {\"name\": ";
    write_escaped(os, e.name != nullptr ? e.name : "?");
    // chrome://tracing wants microseconds; keep sub-us precision as decimals.
    os << ", \"ph\": \"X\", \"pid\": 1, \"tid\": " << e.tid
       << ", \"ts\": " << static_cast<double>(e.start_ns) / 1e3
       << ", \"dur\": " << static_cast<double>(e.dur_ns) / 1e3
       << ", \"args\": {\"depth\": " << e.depth << "}}";
    first = false;
  }
  os << (first ? "" : "\n") << "]}\n";
}

std::string metrics_table(const Snapshot& snapshot) {
  std::ostringstream os;
  if (!snapshot.counters.empty()) {
    TextTable t({"counter", "value"});
    for (const auto& [name, value] : snapshot.counters)
      t.add_row({name, std::to_string(value)});
    os << t.to_string();
  }
  if (!snapshot.gauges.empty()) {
    TextTable t({"gauge", "value", "max"});
    for (const auto& [name, g] : snapshot.gauges)
      t.add_row({name, std::to_string(g.value), std::to_string(g.max)});
    os << '\n' << t.to_string();
  }
  if (!snapshot.histograms.empty()) {
    TextTable t({"histogram (ns)", "count", "mean", "p50 <=", "p99 <="});
    for (const auto& [name, h] : snapshot.histograms)
      t.add_row({name, std::to_string(h.count), TextTable::num(h.mean(), 0),
                 std::to_string(h.quantile_bound(0.5)),
                 std::to_string(h.quantile_bound(0.99))});
    os << '\n' << t.to_string();
  }
  if (snapshot.counters.empty() && snapshot.gauges.empty() &&
      snapshot.histograms.empty())
    os << "(no metrics recorded"
       << (VECCOST_METRICS ? "" : " — built with VECCOST_METRICS=0") << ")\n";
  return os.str();
}

}  // namespace veccost::obs
