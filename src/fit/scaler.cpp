#include "fit/scaler.hpp"

#include <algorithm>
#include <cmath>

#include "support/stats.hpp"

namespace veccost::fit {

void StandardScaler::fit(const Matrix& x) {
  VECCOST_ASSERT(x.rows() > 0, "scaler: empty matrix");
  means_.assign(x.cols(), 0.0);
  stds_.assign(x.cols(), 1.0);
  for (std::size_t c = 0; c < x.cols(); ++c) {
    const Vector column = x.col(c);
    means_[c] = mean(column);
    stds_[c] = std::max(stddev(column), 1e-12);
  }
}

Matrix StandardScaler::transform(const Matrix& x) const {
  VECCOST_ASSERT(fitted(), "scaler: transform before fit");
  VECCOST_ASSERT(x.cols() == means_.size(), "scaler: column mismatch");
  Matrix out(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r)
    for (std::size_t c = 0; c < x.cols(); ++c)
      out(r, c) = (x(r, c) - means_[c]) / stds_[c];
  return out;
}

Vector StandardScaler::transform_row(std::span<const double> row) const {
  VECCOST_ASSERT(fitted(), "scaler: transform before fit");
  VECCOST_ASSERT(row.size() == means_.size(), "scaler: column mismatch");
  Vector out(row.size());
  for (std::size_t c = 0; c < row.size(); ++c)
    out[c] = (row[c] - means_[c]) / stds_[c];
  return out;
}

}  // namespace veccost::fit
