#include "fit/nnls.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "fit/least_squares.hpp"

namespace veccost::fit {

namespace {

/// Solve the unconstrained least-squares subproblem restricted to the passive
/// set P (columns with passive[j] == true); entries outside P are zero.
Vector solve_passive(const Matrix& a, const Vector& b,
                     const std::vector<bool>& passive) {
  std::vector<std::size_t> cols;
  for (std::size_t j = 0; j < passive.size(); ++j)
    if (passive[j]) cols.push_back(j);
  Vector full(passive.size(), 0.0);
  if (cols.empty()) return full;

  Matrix sub(a.rows(), cols.size());
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = 0; c < cols.size(); ++c) sub(r, c) = a(r, cols[c]);

  // A tiny ridge keeps near-collinear instruction-class columns (common with
  // rated features, which sum to 1) from blowing up the subproblem.
  Vector z = solve_least_squares(sub, b, {.lambda = 1e-12});
  for (std::size_t c = 0; c < cols.size(); ++c) full[cols[c]] = z[c];
  return full;
}

}  // namespace

NnlsResult solve_nnls(const Matrix& a, const Vector& b, const NnlsOptions& opts) {
  VECCOST_ASSERT(a.rows() == b.size(), "nnls: row/target mismatch");
  const std::size_t n = a.cols();
  const int max_iter = opts.max_iterations > 0 ? opts.max_iterations
                                               : static_cast<int>(3 * n) + 30;

  std::vector<bool> passive(n, false);
  Vector w(n, 0.0);
  NnlsResult result;
  result.converged = false;
  result.iterations = 0;

  for (int iter = 0; iter < max_iter; ++iter) {
    result.iterations = iter + 1;
    // Gradient of 0.5||Aw-b||^2 is A^T (A w - b); dual vector is its negation.
    Vector residual = subtract(b, a * w);
    Vector gradient = transpose_times(a, residual);  // = A^T (b - A w)

    // Find the most violated active constraint.
    double best = opts.tolerance;
    std::size_t best_j = n;
    for (std::size_t j = 0; j < n; ++j) {
      if (!passive[j] && gradient[j] > best) {
        best = gradient[j];
        best_j = j;
      }
    }
    if (best_j == n) {
      result.converged = true;  // KKT satisfied
      break;
    }
    passive[best_j] = true;

    // Inner loop: ensure feasibility of the passive-set solution.
    for (;;) {
      Vector z = solve_passive(a, b, passive);
      bool feasible = true;
      double alpha = std::numeric_limits<double>::infinity();
      for (std::size_t j = 0; j < n; ++j) {
        if (passive[j] && z[j] <= 0.0) {
          feasible = false;
          const double denom = w[j] - z[j];
          if (denom > 0.0) alpha = std::min(alpha, w[j] / denom);
        }
      }
      if (feasible) {
        w = std::move(z);
        break;
      }
      VECCOST_ASSERT(std::isfinite(alpha), "nnls: no feasible step");
      for (std::size_t j = 0; j < n; ++j) {
        if (passive[j]) {
          w[j] += alpha * (z[j] - w[j]);
          if (w[j] <= opts.tolerance) {
            w[j] = 0.0;
            passive[j] = false;
          }
        }
      }
    }
  }

  // Clamp numerical dust.
  for (double& x : w) x = std::max(x, 0.0);
  result.residual_norm = norm2(subtract(a * w, b));
  result.weights = std::move(w);
  return result;
}

}  // namespace veccost::fit
