// Non-negative least squares: min ||A w - b|| subject to w >= 0.
//
// Classic active-set algorithm of Lawson & Hanson (1974). NNLS is the
// paper's preferred fitter (slide 8: "all coefficients > 0"): non-negative
// weights keep the learned cost model interpretable as per-instruction-class
// contributions and, per the paper, eliminate false-negative vectorization
// decisions on both ARM and x86.
#pragma once

#include "support/matrix.hpp"

namespace veccost::fit {

struct NnlsResult {
  Vector weights;          ///< solution, all entries >= 0
  double residual_norm;    ///< ||A w - b||_2
  int iterations;          ///< outer-loop iterations used
  bool converged;          ///< false if iteration cap was hit
};

struct NnlsOptions {
  int max_iterations = 0;   ///< 0 = 3 * cols (Lawson-Hanson default)
  double tolerance = 1e-10; ///< dual feasibility tolerance
};

/// Solve the NNLS problem. Throws veccost::Error on dimension errors.
[[nodiscard]] NnlsResult solve_nnls(const Matrix& a, const Vector& b,
                                    const NnlsOptions& opts = {});

}  // namespace veccost::fit
