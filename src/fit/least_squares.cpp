#include "fit/least_squares.hpp"

#include <cmath>

namespace veccost::fit {

namespace {
constexpr double kPivotTolerance = 1e-12;
}

void householder_qr(Matrix& a, Vector& betas) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  VECCOST_ASSERT(m >= n, "QR requires rows >= cols");
  betas.assign(n, 0.0);

  for (std::size_t k = 0; k < n; ++k) {
    // Compute the norm of the k-th column below (and including) the diagonal.
    double sigma = 0.0;
    for (std::size_t i = k; i < m; ++i) sigma += a(i, k) * a(i, k);
    const double norm = std::sqrt(sigma);
    if (norm == 0.0) {
      betas[k] = 0.0;
      continue;
    }
    // Householder vector v: v_k = a_kk + sign(a_kk)*norm, v_i = a_ik (i > k).
    const double akk = a(k, k);
    const double alpha = (akk >= 0.0) ? -norm : norm;  // R diagonal entry
    const double vk = akk - alpha;
    // beta = 2 / (v^T v); v^T v = sigma - akk^2 + vk^2
    const double vtv = sigma - akk * akk + vk * vk;
    if (vtv == 0.0) {
      betas[k] = 0.0;
      a(k, k) = alpha;
      continue;
    }
    const double beta = 2.0 / vtv;
    betas[k] = beta;
    a(k, k) = vk;  // store v in the column temporarily

    // Apply the reflector to the remaining columns.
    for (std::size_t j = k + 1; j < n; ++j) {
      double s = 0.0;
      for (std::size_t i = k; i < m; ++i) s += a(i, k) * a(i, j);
      s *= beta;
      for (std::size_t i = k; i < m; ++i) a(i, j) -= s * a(i, k);
    }
    // Normalize the stored vector so v_k == 1 (store scaled tail) and put the
    // R diagonal entry in place. We keep v with v_k implicit = 1.
    for (std::size_t i = k + 1; i < m; ++i) a(i, k) /= vk;
    betas[k] = beta * vk * vk;  // adjust beta for normalized v
    a(k, k) = alpha;
  }
}

void apply_qt(const Matrix& qr, const Vector& betas, Vector& v) {
  const std::size_t m = qr.rows();
  const std::size_t n = qr.cols();
  VECCOST_ASSERT(v.size() == m, "apply_qt length mismatch");
  for (std::size_t k = 0; k < n; ++k) {
    if (betas[k] == 0.0) continue;
    // v := (I - beta u u^T) v with u = [1, qr(k+1..m-1, k)].
    double s = v[k];
    for (std::size_t i = k + 1; i < m; ++i) s += qr(i, k) * v[i];
    s *= betas[k];
    v[k] -= s;
    for (std::size_t i = k + 1; i < m; ++i) v[i] -= s * qr(i, k);
  }
}

Vector back_substitute(const Matrix& qr, const Vector& y) {
  const std::size_t n = qr.cols();
  Vector w(n, 0.0);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= qr(ii, j) * w[j];
    const double r = qr(ii, ii);
    if (std::abs(r) < kPivotTolerance) {
      throw Error("least squares: rank-deficient system (tiny pivot)");
    }
    w[ii] = s / r;
  }
  return w;
}

Vector loocv_ridge_predictions(const Matrix& a, const Vector& b,
                               double lambda) {
  VECCOST_ASSERT(a.rows() == b.size(), "loocv: row/target mismatch");
  VECCOST_ASSERT(a.rows() > 1, "LOOCV needs >= 2 rows");
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();

  // One QR of the (ridge-augmented) system: R satisfies
  // R^T R = A^T A + lambda I, and Q^T b yields the full-fit weights.
  Matrix work = a;
  Vector rhs = b;
  if (lambda > 0.0) {
    const double s = std::sqrt(lambda);
    Matrix aug(m + n, n);
    for (std::size_t r = 0; r < m; ++r)
      for (std::size_t c = 0; c < n; ++c) aug(r, c) = a(r, c);
    for (std::size_t c = 0; c < n; ++c) aug(m + c, c) = s;
    work = std::move(aug);
    rhs.resize(m + n, 0.0);
  }
  VECCOST_ASSERT(work.rows() >= work.cols(),
                 "least squares: underdetermined system (rows < cols)");
  Vector betas;
  householder_qr(work, betas);
  apply_qt(work, betas, rhs);
  const Vector w = back_substitute(work, rhs);

  Vector predictions(m, 0.0);
  Vector z(n, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    const auto xi = a.row(i);
    // Leverage h_ii = ||R^-T x_i||^2: forward-substitute R^T z = x_i
    // (R^T is lower triangular with (R^T)(j,k) = R(k,j) for k <= j).
    double h = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      double s = xi[j];
      for (std::size_t k = 0; k < j; ++k) s -= work(k, j) * z[k];
      const double r = work(j, j);
      if (std::abs(r) < kPivotTolerance)
        throw Error("least squares: rank-deficient system (tiny pivot)");
      z[j] = s / r;
      h += z[j] * z[j];
    }
    const double fit_i = dot(xi, w);
    const double denom = 1.0 - h;
    if (denom <= 1e-12) {
      // Leverage ~1: the identity divides by ~0; this row genuinely
      // determines the fit, so fall back to the explicit refit.
      const LeastSquaresOptions opts{.lambda = lambda};
      const Vector wi =
          solve_least_squares(a.without_row(i), without_element(b, i), opts);
      predictions[i] = dot(xi, wi);
      continue;
    }
    predictions[i] = (fit_i - h * b[i]) / denom;
  }
  return predictions;
}

Vector solve_least_squares(const Matrix& a, const Vector& b,
                           const LeastSquaresOptions& opts) {
  VECCOST_ASSERT(a.rows() == b.size(), "least squares: row/target mismatch");
  VECCOST_ASSERT(a.cols() > 0, "least squares: empty system");

  Matrix work = a;
  Vector rhs = b;
  if (opts.lambda > 0.0) {
    // Augment with sqrt(lambda) * I rows: min ||[A; sqrt(l) I] w - [b; 0]||.
    const double s = std::sqrt(opts.lambda);
    Matrix aug(a.rows() + a.cols(), a.cols());
    for (std::size_t r = 0; r < a.rows(); ++r)
      for (std::size_t c = 0; c < a.cols(); ++c) aug(r, c) = a(r, c);
    for (std::size_t c = 0; c < a.cols(); ++c) aug(a.rows() + c, c) = s;
    work = std::move(aug);
    rhs.resize(a.rows() + a.cols(), 0.0);
  }
  VECCOST_ASSERT(work.rows() >= work.cols(),
                 "least squares: underdetermined system (rows < cols)");

  Vector betas;
  householder_qr(work, betas);
  apply_qt(work, betas, rhs);
  return back_substitute(work, rhs);
}

}  // namespace veccost::fit
