// LinearSurrogate: the fitting library's batched query path for
// surrogate-guided search.
//
// The tuner (src/tune) scores hundreds of candidate pipeline specs per
// kernel with a fitted linear model before promoting a handful to real
// measurement. That inner loop wants exactly one thing from the fit layer: a
// cheap, instrumented dot product. LinearSurrogate wraps fitted weights +
// bias behind predict()/predict_rows(), counts every query (its own atomic,
// so the surrogate hit-rate in BENCH_tune.json works even with metrics
// compiled out), and stays strictly below costmodel in the layering — it
// knows nothing about kernels or feature sets, only rows of doubles.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>

#include "support/matrix.hpp"

namespace veccost::fit {

class LinearSurrogate {
 public:
  LinearSurrogate() = default;
  LinearSurrogate(Vector weights, double bias)
      : weights_(std::move(weights)), bias_(bias) {}
  LinearSurrogate(const LinearSurrogate& other)
      : weights_(other.weights_), bias_(other.bias_) {}
  LinearSurrogate& operator=(const LinearSurrogate& other) {
    weights_ = other.weights_;
    bias_ = other.bias_;
    return *this;
  }

  /// y = w . x + bias. `features` shorter than the weight vector reads as
  /// zero-padded; longer tails are ignored (defensive — feature sets and
  /// saved models can drift one column apart across versions).
  [[nodiscard]] double predict(std::span<const double> features) const;

  /// One prediction per matrix row.
  [[nodiscard]] Vector predict_rows(const Matrix& rows) const;

  [[nodiscard]] const Vector& weights() const { return weights_; }
  [[nodiscard]] double bias() const { return bias_; }
  [[nodiscard]] bool empty() const { return weights_.empty(); }

  /// Queries served since construction (predict_rows counts one per row).
  [[nodiscard]] std::uint64_t queries() const {
    return queries_.load(std::memory_order_relaxed);
  }

 private:
  Vector weights_;
  double bias_ = 0.0;
  mutable std::atomic<std::uint64_t> queries_{0};
};

}  // namespace veccost::fit
