// Feature standardization (z-score) for fitters that are scale sensitive.
//
// L2/NNLS on raw instruction counts are scale-robust, but SVR's C/epsilon
// trade-off is not; the trainer standardizes features for SVR and maps the
// learned weights back to raw-feature space for reporting.
#pragma once

#include "support/matrix.hpp"

namespace veccost::fit {

class StandardScaler {
 public:
  /// Learn per-column mean and standard deviation from `x`.
  void fit(const Matrix& x);

  /// Apply the learned transform: (x - mean) / std (std clamped to >= 1e-12).
  [[nodiscard]] Matrix transform(const Matrix& x) const;
  [[nodiscard]] Vector transform_row(std::span<const double> row) const;

  [[nodiscard]] const Vector& means() const { return means_; }
  [[nodiscard]] const Vector& stds() const { return stds_; }
  [[nodiscard]] bool fitted() const { return !means_.empty(); }

 private:
  Vector means_;
  Vector stds_;
};

}  // namespace veccost::fit
