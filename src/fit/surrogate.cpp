#include "fit/surrogate.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace veccost::fit {

double LinearSurrogate::predict(std::span<const double> features) const {
  queries_.fetch_add(1, std::memory_order_relaxed);
  VECCOST_COUNTER_ADD("fit.surrogate.queries", 1);
  const std::size_t n = std::min(features.size(), weights_.size());
  double y = bias_;
  for (std::size_t i = 0; i < n; ++i) y += weights_[i] * features[i];
  return y;
}

Vector LinearSurrogate::predict_rows(const Matrix& rows) const {
  Vector out(rows.rows());
  for (std::size_t r = 0; r < rows.rows(); ++r) out[r] = predict(rows.row(r));
  return out;
}

}  // namespace veccost::fit
