#include "fit/model_io.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "support/error.hpp"

namespace veccost::fit {

namespace {
constexpr const char* kMagic = "veccost-model v1";
}

void save_model(std::ostream& out, const SavedModel& model) {
  VECCOST_ASSERT(model.feature_names.size() == model.weights.size(),
                 "model_io: name/weight count mismatch");
  out << kMagic << '\n';
  out << "target " << model.target << '\n';
  out << "features " << model.feature_set << '\n';
  out << "fitter " << model.fitter << '\n';
  out.precision(17);
  out << "bias " << model.bias << '\n';
  for (std::size_t i = 0; i < model.weights.size(); ++i)
    out << "weight " << model.feature_names[i] << ' ' << model.weights[i] << '\n';
}

SavedModel load_model(std::istream& in) {
  SavedModel model;
  std::string line;
  if (!std::getline(in, line) || line != kMagic)
    throw Error("model_io: bad magic line");
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "target") {
      ls >> model.target;
    } else if (key == "features") {
      ls >> model.feature_set;
    } else if (key == "fitter") {
      ls >> model.fitter;
    } else if (key == "bias") {
      ls >> model.bias;
    } else if (key == "weight") {
      std::string name;
      double w = 0.0;
      ls >> name >> w;
      if (ls.fail()) throw Error("model_io: malformed weight line: " + line);
      model.feature_names.push_back(name);
      model.weights.push_back(w);
    } else {
      throw Error("model_io: unknown key: " + key);
    }
    if (ls.fail()) throw Error("model_io: malformed line: " + line);
  }
  return model;
}

}  // namespace veccost::fit
