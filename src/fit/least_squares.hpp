// Linear least squares via Householder QR.
//
// Solves min_w ||A w - b||_2, optionally with Tikhonov (ridge) regularization
// min_w ||A w - b||^2 + lambda ||w||^2 implemented by row augmentation. This
// is the "L2" fitter of the paper (slide 8: "Least Squares, minimizes
// Euclidian L2 Norm").
#pragma once

#include "support/matrix.hpp"

namespace veccost::fit {

struct LeastSquaresOptions {
  /// Ridge strength; 0 = plain least squares.
  double lambda = 0.0;
};

/// Solve min ||A w - b||. A must have rows >= cols (after ridge
/// augmentation); throws veccost::Error on rank deficiency that makes the
/// system unsolvable (|R_ii| below tolerance and lambda == 0).
[[nodiscard]] Vector solve_least_squares(const Matrix& a, const Vector& b,
                                         const LeastSquaresOptions& opts = {});

/// Leave-one-out predictions for the ridge solve, in closed form: one QR of
/// the (augmented) system gives the full-fit weights w and the leverages
/// h_ii = x_i^T (A^T A + lambda I)^-1 x_i, and the PRESS identity
///   pred_i = (x_i^T w - h_ii y_i) / (1 - h_ii)
/// reproduces the per-row refit exactly — the refit keeps the sqrt(lambda)
/// augmentation rows, so removing row i removes exactly x_i x_i^T from the
/// normal matrix and Sherman–Morrison applies. O(n^2) per row instead of a
/// full O(m n^2) QR per row. Rows with leverage ~1 (1 - h_ii below
/// tolerance) fall back to the explicit refit. Throws like
/// solve_least_squares on rank deficiency.
[[nodiscard]] Vector loocv_ridge_predictions(const Matrix& a, const Vector& b,
                                             double lambda);

/// In-place Householder QR of `a` (m x n, m >= n). On return `a` holds R in
/// its upper triangle and the Householder vectors below the diagonal;
/// `betas` holds the scalar factors. Exposed for tests.
void householder_qr(Matrix& a, Vector& betas);

/// Apply Q^T (from householder_qr) to a vector of length m, in place.
void apply_qt(const Matrix& qr, const Vector& betas, Vector& v);

/// Back-substitute R w = y (first n entries of y). Throws on tiny pivot.
[[nodiscard]] Vector back_substitute(const Matrix& qr, const Vector& y);

}  // namespace veccost::fit
