#include "fit/svr.hpp"

#include <algorithm>
#include <cmath>

namespace veccost::fit {

SvrResult solve_svr(const Matrix& x, const Vector& y, const SvrOptions& opts) {
  VECCOST_ASSERT(x.rows() == y.size(), "svr: row/target mismatch");
  VECCOST_ASSERT(x.rows() > 0 && x.cols() > 0, "svr: empty data");

  const std::size_t m = x.rows();
  const std::size_t n = x.cols() + (opts.fit_bias ? 1 : 0);

  // Build the (optionally bias-augmented) sample matrix once.
  Matrix data(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < x.cols(); ++j) data(i, j) = x(i, j);
    if (opts.fit_bias) data(i, n - 1) = 1.0;
  }

  // Precompute squared norms of each sample (diagonal of the Gram matrix).
  Vector qii(m, 0.0);
  for (std::size_t i = 0; i < m; ++i) qii[i] = dot(data.row(i), data.row(i));

  Vector beta(m, 0.0);  // beta_i = alpha+_i - alpha-_i, |beta_i| <= C
  Vector w(n, 0.0);     // w = sum_i beta_i x_i, maintained incrementally

  SvrResult result;
  result.converged = false;
  result.sweeps = 0;

  for (int sweep = 0; sweep < opts.max_sweeps; ++sweep) {
    result.sweeps = sweep + 1;
    double max_step = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      if (qii[i] <= 0.0) continue;
      const double wx = dot(w, data.row(i));
      const double r = wx - y[i];
      // Subproblem: minimize over d the objective restricted to beta_i + d;
      // derivative pieces for the eps-insensitive loss dual (L1-loss SVR):
      //   g+ = r + eps, g- = r - eps
      double d = 0.0;
      const double gp = r + opts.epsilon;
      const double gm = r - opts.epsilon;
      if (gp < qii[i] * (-beta[i])) {
        d = -gp / qii[i];
      } else if (gm > qii[i] * (-beta[i])) {
        d = -gm / qii[i];
      } else {
        d = -beta[i];
      }
      // Clip beta_i + d to [-C, C].
      double nb = std::clamp(beta[i] + d, -opts.c, opts.c);
      d = nb - beta[i];
      if (d == 0.0) continue;
      beta[i] = nb;
      const auto xi = data.row(i);
      for (std::size_t j = 0; j < n; ++j) w[j] += d * xi[j];
      max_step = std::max(max_step, std::abs(d));
    }
    if (max_step < opts.tolerance) {
      result.converged = true;
      break;
    }
  }

  result.support_vectors = 0;
  for (double b : beta)
    if (std::abs(b) > 1e-12) ++result.support_vectors;

  if (opts.fit_bias) {
    result.bias = w.back();
    w.pop_back();
  } else {
    result.bias = 0.0;
  }
  result.weights = std::move(w);
  return result;
}

double svr_predict(const SvrResult& model, std::span<const double> x) {
  VECCOST_ASSERT(x.size() == model.weights.size(), "svr_predict size mismatch");
  return dot(model.weights, x) + model.bias;
}

}  // namespace veccost::fit
