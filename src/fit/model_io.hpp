// Plain-text serialization of fitted linear models.
//
// Format (line-oriented, stable across versions):
//   veccost-model v1
//   target <name>           # e.g. cortex-a57
//   features <set-name>     # e.g. rated
//   fitter <name>           # l2 | nnls | svr
//   bias <double>
//   weight <feature-name> <double>   (one line per feature)
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "support/matrix.hpp"

namespace veccost::fit {

struct SavedModel {
  std::string target;
  std::string feature_set;
  std::string fitter;
  double bias = 0.0;
  std::vector<std::string> feature_names;
  Vector weights;
};

void save_model(std::ostream& out, const SavedModel& model);

/// Parse a model; throws veccost::Error on malformed input.
[[nodiscard]] SavedModel load_model(std::istream& in);

}  // namespace veccost::fit
