// Linear epsilon-insensitive Support Vector Regression.
//
// min_w 0.5 ||w||^2 + C * sum_i max(0, |w.x_i + b - y_i| - eps)
//
// Solved in the dual by coordinate descent over the alpha = alpha+ - alpha-
// variables (the LIBLINEAR L2-regularized L1-loss SVR formulation, Ho & Lin
// 2012). The paper uses SVR as its third fitter on x86 (slides 18-19), where
// it eliminates false negatives like NNLS does.
#pragma once

#include "support/matrix.hpp"

namespace veccost::fit {

struct SvrOptions {
  double c = 10.0;          ///< regularization / loss trade-off
  double epsilon = 0.05;    ///< width of the insensitive tube
  int max_sweeps = 2000;    ///< coordinate-descent sweeps over the data
  double tolerance = 1e-8;  ///< stop when max alpha update is below this
  bool fit_bias = true;     ///< learn an intercept via an appended 1-feature
};

struct SvrResult {
  Vector weights;       ///< linear weights (excluding bias)
  double bias;          ///< intercept (0 if fit_bias == false)
  int sweeps;           ///< sweeps used
  bool converged;       ///< tolerance reached before max_sweeps
  int support_vectors;  ///< number of samples with nonzero dual variable
};

[[nodiscard]] SvrResult solve_svr(const Matrix& x, const Vector& y,
                                  const SvrOptions& opts = {});

/// Predict y for one sample with a trained model.
[[nodiscard]] double svr_predict(const SvrResult& model, std::span<const double> x);

}  // namespace veccost::fit
