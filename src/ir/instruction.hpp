// Instruction representation of the vectorization IR.
//
// A loop body is a topologically-ordered list of instructions in SSA form:
// every instruction defines at most one value, identified by its index in the
// body. Loop-carried values are expressed with Phi instructions whose update
// edge is a payload field (`phi_update`), so the body list stays acyclic and
// a single forward pass both executes and analyzes it.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "ir/opcode.hpp"
#include "ir/type.hpp"

namespace veccost::ir {

/// Index of an instruction in LoopKernel::body; -1 = none.
using ValueId = std::int32_t;
inline constexpr ValueId kNoValue = -1;

/// Reduction kinds recognized on Phi instructions.
enum class ReductionKind : std::uint8_t { None, Sum, Prod, Min, Max, Or };

[[nodiscard]] const char* to_string(ReductionKind k);

/// Memory index expression: affine in the induction variables and the
/// problem size n, plus an optional indirect component read from another
/// value:
///   index = scale_i * i + sum_L outer[L] * j_L + n_scale * n + offset
///                                                              (indirect < 0)
///   index = value(indirect) + offset                           (indirect >= 0)
/// `outer` holds one coefficient per outer nest level, outermost first
/// (NestInfo order); it is kept trimmed of trailing zeros so structurally
/// equal subscripts compare and hash equal regardless of how many levels
/// were ever touched. Use set_outer_scale() to maintain the invariant.
/// The n term lets descending TSVC loops (`for (i = n-2; i >= 0; i--)`) be
/// written as ascending loops over a reversed index such as a[n-2-i].
struct MemIndex {
  std::int64_t scale_i = 0;
  std::vector<std::int64_t> outer;  ///< per-level coefficients, outermost first
  std::int64_t n_scale = 0;
  std::int64_t offset = 0;
  ValueId indirect = kNoValue;

  [[nodiscard]] bool is_indirect() const { return indirect != kNoValue; }

  /// Coefficient of outer level `level` (0 = outermost); 0 past the vector.
  [[nodiscard]] std::int64_t outer_scale(std::size_t level) const {
    return level < outer.size() ? outer[level] : 0;
  }
  /// Set one level's coefficient, keeping `outer` trimmed of trailing zeros.
  void set_outer_scale(std::size_t level, std::int64_t scale) {
    if (level >= outer.size()) {
      if (scale == 0) return;
      outer.resize(level + 1, 0);
    }
    outer[level] = scale;
    while (!outer.empty() && outer.back() == 0) outer.pop_back();
  }
  /// True when any outer-level coefficient is nonzero.
  [[nodiscard]] bool depends_on_outer() const { return !outer.empty(); }

  friend bool operator==(const MemIndex&, const MemIndex&) = default;
};

struct Instruction {
  Opcode op = Opcode::Const;
  Type type;  ///< result type; for stores, the type of the stored value

  std::array<ValueId, 3> operands{kNoValue, kNoValue, kNoValue};

  /// Optional i1 predicate for Load/Store/Gather/Scatter (masked access) —
  /// the result of if-conversion of conditional statements.
  ValueId predicate = kNoValue;

  // --- Payloads (meaning depends on op) -----------------------------------
  double const_value = 0.0;  ///< Const
  int param_index = -1;      ///< Param
  int array = -1;            ///< memory ops: index into LoopKernel::arrays
  MemIndex index;            ///< memory ops
  int outer_level = 0;       ///< OuterIndVar: nest level (0 = outermost)

  // Phi payload: initial value (param takes precedence when >= 0) and the
  // value that feeds the next iteration.
  double phi_init = 0.0;
  int phi_init_param = -1;
  ValueId phi_update = kNoValue;
  ReductionKind reduction = ReductionKind::None;

  [[nodiscard]] int num_operands() const { return operand_count(op); }
};

}  // namespace veccost::ir
