#include "ir/parser.hpp"

#include <cctype>
#include <map>
#include <sstream>
#include <vector>

#include "ir/verifier.hpp"
#include "support/error.hpp"

namespace veccost::ir {

namespace {

[[noreturn]] void fail(int line_no, const std::string& msg) {
  throw Error("parse error at line " + std::to_string(line_no) + ": " + msg);
}

/// Character-level cursor over one line.
class Cursor {
 public:
  Cursor(std::string line, int line_no)
      : line_(std::move(line)), line_no_(line_no) {}

  void skip_ws() {
    while (pos_ < line_.size() && std::isspace(peek())) ++pos_;
  }
  [[nodiscard]] bool done() {
    skip_ws();
    return pos_ >= line_.size();
  }
  [[nodiscard]] char peek() const {
    return pos_ < line_.size() ? line_[pos_] : '\0';
  }
  char get() {
    VECCOST_ASSERT(pos_ < line_.size(), "cursor past end");
    return line_[pos_++];
  }
  bool try_consume(char c) {
    skip_ws();
    if (peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool try_consume(const std::string& word) {
    skip_ws();
    if (line_.compare(pos_, word.size(), word) == 0) {
      pos_ += word.size();
      return true;
    }
    return false;
  }
  void expect(char c) {
    if (!try_consume(c)) fail("expected '" + std::string(1, c) + "'");
  }
  void expect(const std::string& word) {
    if (!try_consume(word)) fail("expected '" + word + "'");
  }

  /// Identifier: [A-Za-z_][A-Za-z0-9_.]* (dots allowed for op names).
  std::string ident() {
    skip_ws();
    std::string out;
    while (pos_ < line_.size() &&
           (std::isalnum(peek()) || peek() == '_' || peek() == '.'))
      out += get();
    if (out.empty()) fail("expected identifier");
    return out;
  }

  std::int64_t integer() {
    skip_ws();
    std::string out;
    if (peek() == '-' || peek() == '+') out += get();
    while (pos_ < line_.size() && std::isdigit(peek())) out += get();
    if (out.empty() || out == "-" || out == "+") fail("expected integer");
    return std::stoll(out);
  }

  double number() {
    skip_ws();
    std::size_t used = 0;
    double v = 0;
    try {
      v = std::stod(line_.substr(pos_), &used);
    } catch (const std::exception&) {
      fail("expected number");
    }
    pos_ += used;
    return v;
  }

  ValueId value_ref() {
    expect('%');
    return static_cast<ValueId>(integer());
  }

  [[noreturn]] void fail(const std::string& msg) const {
    ir::fail(line_no_, msg + " (col " + std::to_string(pos_) + ": '" +
                           line_.substr(pos_, 12) + "')");
  }

  [[nodiscard]] const std::string& text() const { return line_; }

 private:
  std::string line_;
  int line_no_;
  std::size_t pos_ = 0;
};

ScalarType parse_scalar_type(Cursor& c) {
  static const std::map<std::string, ScalarType> kTypes = {
      {"f32", ScalarType::F32}, {"f64", ScalarType::F64},
      {"i8", ScalarType::I8},   {"i16", ScalarType::I16},
      {"i32", ScalarType::I32}, {"i64", ScalarType::I64},
      {"i1", ScalarType::I1}};
  const std::string name = c.ident();
  const auto it = kTypes.find(name);
  if (it == kTypes.end()) c.fail("unknown type '" + name + "'");
  return it->second;
}

Type parse_type(Cursor& c) {
  if (c.try_consume('<')) {
    const int lanes = static_cast<int>(c.integer());
    c.expect('x');
    const ScalarType elem = parse_scalar_type(c);
    c.expect('>');
    return {elem, lanes};
  }
  return {parse_scalar_type(c), 1};
}

const std::map<std::string, Opcode>& opcode_table() {
  static const std::map<std::string, Opcode> table = [] {
    std::map<std::string, Opcode> t;
    for (int o = 0; o <= static_cast<int>(Opcode::StridedStore); ++o) {
      const auto op = static_cast<Opcode>(o);
      t[to_string(op)] = op;
    }
    return t;
  }();
  return table;
}

/// Names of the outer nest levels, outermost first (mirrors the printer).
constexpr const char* kOuterNames[] = {"j", "k", "l", "m"};
constexpr int kMaxOuterLevels = 4;

/// Level index for an outer induction-variable name, or -1.
int outer_level_of(const std::string& var) {
  for (int level = 0; level < kMaxOuterLevels; ++level)
    if (var == kOuterNames[level]) return level;
  return -1;
}

/// Parse the inside of a subscript: affine terms or an indirect %ref.
MemIndex parse_index(Cursor& c) {
  MemIndex idx;
  if (c.try_consume('%')) {
    idx.indirect = static_cast<ValueId>(c.integer());
    c.skip_ws();
    if (c.peek() == '+' || c.peek() == '-') idx.offset = c.integer();
    return idx;
  }
  bool first = true;
  while (true) {
    c.skip_ws();
    if (c.peek() == ']') break;
    std::int64_t sign = 1;
    if (c.try_consume('+')) {
      sign = 1;
    } else if (c.try_consume('-')) {
      sign = -1;
    } else if (!first) {
      c.fail("expected '+' or '-' between subscript terms");
    }
    first = false;

    c.skip_ws();
    std::int64_t coeff = 1;
    bool have_coeff = false;
    if (std::isdigit(c.peek())) {
      coeff = c.integer();
      have_coeff = true;
      if (!c.try_consume('*')) {
        idx.offset += sign * coeff;  // plain constant term
        continue;
      }
    }
    const std::string var = c.ident();
    (void)have_coeff;
    if (var == "i") {
      idx.scale_i += sign * coeff;
    } else if (var == "n") {
      idx.n_scale += sign * coeff;
    } else if (const int level = outer_level_of(var); level >= 0) {
      idx.set_outer_scale(static_cast<std::size_t>(level),
                          idx.outer_scale(static_cast<std::size_t>(level)) +
                              sign * coeff);
    } else {
      c.fail("unknown subscript variable '" + var + "'");
    }
  }
  return idx;
}

class Parser {
 public:
  explicit Parser(const std::string& text) {
    std::istringstream in(text);
    std::string line;
    int no = 0;
    while (std::getline(in, line)) {
      ++no;
      // Full-line '#' comments only ('#' also marks parameter references,
      // and "; ..." lines carry the kernel description).
      const auto first = line.find_first_not_of(" \t");
      if (first == std::string::npos) continue;  // blank
      if (line[first] == '#') continue;          // comment
      lines_.push_back({line, no});
    }
  }

  LoopKernel run() {
    parse_header();
    parse_arrays();
    parse_loop_headers();
    while (cur_ < lines_.size()) {
      Cursor c(lines_[cur_].first, lines_[cur_].second);
      if (c.try_consume("live-out:")) {
        while (!c.done()) kernel_.live_outs.push_back(c.value_ref());
        ++cur_;
        continue;
      }
      parse_instruction();
    }
    verify_or_throw(kernel_);
    return std::move(kernel_);
  }

 private:
  Cursor next_line(const char* what) {
    if (cur_ >= lines_.size()) fail(0, std::string("unexpected end: missing ") + what);
    Cursor c(lines_[cur_].first, lines_[cur_].second);
    ++cur_;
    return c;
  }

  void parse_header() {
    Cursor c = next_line("kernel header");
    c.expect("kernel");
    kernel_.name = c.ident();
    c.expect('(');
    kernel_.category = c.ident();
    c.expect(')');
    c.expect("n=");
    kernel_.default_n = c.integer();
    c.expect("vf=");
    kernel_.vf = static_cast<int>(c.integer());
    if (c.try_consume("predicated")) kernel_.predicated = true;
    // Optional description line: "  ; <text>".
    if (cur_ < lines_.size()) {
      const std::string& line = lines_[cur_].first;
      const auto first = line.find_first_not_of(" \t");
      if (first != std::string::npos && line[first] == ';') {
        const auto text_start = line.find_first_not_of(" \t", first + 1);
        kernel_.description =
            text_start == std::string::npos ? "" : line.substr(text_start);
        ++cur_;
      }
    }
  }

  void parse_arrays() {
    Cursor c = next_line("arrays line");
    c.expect("arrays:");
    while (!c.done()) {
      ArrayDecl decl;
      decl.name = c.ident();
      c.expect(':');
      decl.elem = parse_scalar_type(c);
      c.expect('[');
      // len: n | K*n | K*n+C | C
      decl.len_scale = 0;
      decl.len_offset = 0;
      c.skip_ws();
      if (std::isdigit(c.peek()) || c.peek() == '-') {
        const std::int64_t k = c.integer();
        if (c.try_consume('*')) {
          c.expect("n");
          decl.len_scale = k;
          c.skip_ws();
          if (c.peek() == '+' || c.peek() == '-') decl.len_offset = c.integer();
        } else {
          decl.len_offset = k;
        }
      } else {
        c.expect("n");
        decl.len_scale = 1;
        c.skip_ws();
        if (c.peek() == '+' || c.peek() == '-') decl.len_offset = c.integer();
      }
      c.expect(']');
      kernel_.arrays.push_back(decl);
    }
  }

  void parse_loop_headers() {
    Cursor c = next_line("loop header");
    if (c.try_consume("params:")) {
      while (!c.done()) kernel_.params.push_back(c.number());
      c = next_line("loop header");
    }
    // Outer levels, outermost first: `outer <name> = start .. end [step s]`.
    // Names must follow the j, k, l, m sequence; the legacy single-line
    // `outer j = 0 .. T` corpus form parses as one level with start 0 and
    // step 1 and canonicalizes into NestInfo unchanged.
    while (c.try_consume("outer")) {
      const std::string name = c.ident();
      const int level = outer_level_of(name);
      if (level != static_cast<int>(kernel_.nest.size()))
        c.fail("outer levels must be named j, k, l, m in nest order; got '" +
               name + "'");
      c.expect('=');
      LoopLevel lvl;
      lvl.start = c.integer();
      c.expect("..");
      const std::int64_t end = c.integer();
      lvl.step = 1;
      if (c.try_consume("step")) lvl.step = c.integer();
      if (lvl.step < 1) c.fail("outer step must be >= 1");
      lvl.trip = end <= lvl.start
                     ? 0
                     : (end - lvl.start + lvl.step - 1) / lvl.step;
      kernel_.nest.levels.push_back(lvl);
      c = next_line("loop header");
    }
    c.expect("loop");
    c.expect("i");
    c.expect('=');
    kernel_.trip.start = c.integer();
    c.expect("..");
    // end: n | N*n/D, then optional +C / -C.
    c.skip_ws();
    if (std::isdigit(c.peek()) || c.peek() == '-') {
      kernel_.trip.num = c.integer();
      c.expect('*');
      c.expect("n");
      c.expect('/');
      kernel_.trip.den = c.integer();
    } else {
      c.expect("n");
      kernel_.trip.num = 1;
      kernel_.trip.den = 1;
    }
    c.skip_ws();
    if (c.peek() == '+' || c.peek() == '-') kernel_.trip.offset = c.integer();
    c.expect("step");
    kernel_.trip.step = c.integer();
    c.expect(':');
  }

  int array_index(Cursor& c, const std::string& name) {
    const int idx = kernel_.find_array(name);
    if (idx < 0) c.fail("unknown array '" + name + "'");
    return idx;
  }

  void parse_instruction() {
    Cursor c = next_line("instruction");
    Instruction inst;
    bool defines = false;

    c.skip_ws();
    if (c.peek() == '%') {
      const ValueId id = c.value_ref();
      if (id != static_cast<ValueId>(kernel_.body.size()))
        c.fail("instructions must appear in %id order");
      c.expect('=');
      defines = true;
    }

    const std::string op_name = c.ident();
    const auto it = opcode_table().find(op_name);
    if (it == opcode_table().end()) c.fail("unknown opcode '" + op_name + "'");
    inst.op = it->second;

    switch (inst.op) {
      case Opcode::Const:
        inst.const_value = c.number();
        break;
      case Opcode::Param:
        c.expect('#');
        inst.param_index = static_cast<int>(c.integer());
        while (static_cast<int>(kernel_.params.size()) <= inst.param_index)
          kernel_.params.push_back(0.0);
        break;
      case Opcode::IndVar:
        break;
      case Opcode::OuterIndVar:
        // Optional level name (j omitted in the legacy/level-0 form). `if`
        // and `:` follow, so only bare j/k/l/m single-letter names match.
        c.skip_ws();
        if (c.peek() == 'j' || c.peek() == 'k' || c.peek() == 'l' ||
            c.peek() == 'm') {
          const std::string name = c.ident();
          const int level = outer_level_of(name);
          if (level < 0) c.fail("unknown outer level '" + name + "'");
          inst.outer_level = level;
        }
        break;
      case Opcode::Load:
      case Opcode::Gather:
      case Opcode::StridedLoad: {
        const std::string arr = c.ident();
        inst.array = array_index(c, arr);
        c.expect('[');
        inst.index = parse_index(c);
        c.expect(']');
        break;
      }
      case Opcode::Store:
      case Opcode::Scatter:
      case Opcode::StridedStore: {
        const std::string arr = c.ident();
        inst.array = array_index(c, arr);
        c.expect('[');
        inst.index = parse_index(c);
        c.expect(']');
        c.expect(',');
        inst.operands[0] = c.value_ref();
        break;
      }
      case Opcode::Phi: {
        c.expect('[');
        c.expect("init=");
        c.skip_ws();
        if (c.peek() == '#') {
          c.expect('#');
          inst.phi_init_param = static_cast<int>(c.integer());
          while (static_cast<int>(kernel_.params.size()) <= inst.phi_init_param)
            kernel_.params.push_back(0.0);
        } else {
          inst.phi_init = c.number();
        }
        c.expect(',');
        c.expect("update=");
        inst.phi_update = c.value_ref();
        c.expect(',');
        c.expect("red=");
        const std::string red = c.ident();
        if (red == "none") inst.reduction = ReductionKind::None;
        else if (red == "sum") inst.reduction = ReductionKind::Sum;
        else if (red == "prod") inst.reduction = ReductionKind::Prod;
        else if (red == "min") inst.reduction = ReductionKind::Min;
        else if (red == "max") inst.reduction = ReductionKind::Max;
        else if (red == "or") inst.reduction = ReductionKind::Or;
        else c.fail("unknown reduction kind '" + red + "'");
        c.expect(']');
        break;
      }
      default: {
        // Plain operand list: %a, %b, %c
        const int want = operand_count(inst.op);
        for (int i = 0; i < want; ++i) {
          if (i) c.expect(',');
          inst.operands[static_cast<std::size_t>(i)] = c.value_ref();
        }
        break;
      }
    }

    if (c.try_consume("if")) inst.predicate = c.value_ref();
    if (defines) {
      c.expect(':');
      inst.type = parse_type(c);
    } else if (ir::is_store_op(inst.op)) {
      // Stored type mirrors the array element; lanes follow the value.
      const Type stored = (inst.operands[0] >= 0 &&
                           inst.operands[0] < static_cast<ValueId>(kernel_.body.size()))
                              ? kernel_.value_type(inst.operands[0])
                              : Type{};
      inst.type = {kernel_.arrays[static_cast<std::size_t>(inst.array)].elem,
                   stored.lanes};
    } else {
      inst.type = {ScalarType::I1, 1};  // break
    }
    if (!c.done()) c.fail("trailing input");
    kernel_.body.push_back(inst);
  }

  std::vector<std::pair<std::string, int>> lines_;
  std::size_t cur_ = 0;
  LoopKernel kernel_;
};

}  // namespace

LoopKernel parse_kernel(const std::string& text) { return Parser(text).run(); }

}  // namespace veccost::ir
