#include "ir/verifier.hpp"

#include <sstream>

#include "support/error.hpp"

namespace veccost::ir {

namespace {

class Verifier {
 public:
  explicit Verifier(const LoopKernel& k) : k_(k) {}

  VerifyResult run() {
    check_metadata();
    for (std::size_t i = 0; i < k_.body.size(); ++i)
      check_instruction(static_cast<ValueId>(i));
    check_live_outs();
    return std::move(result_);
  }

 private:
  void error(ValueId id, const std::string& msg) {
    std::ostringstream os;
    os << k_.name << ": %" << id << ": " << msg;
    result_.errors.push_back(os.str());
  }
  void error(const std::string& msg) {
    result_.errors.push_back(k_.name + ": " + msg);
  }

  void check_metadata() {
    if (k_.name.empty()) error("kernel has no name");
    if (k_.trip.step <= 0) error("trip step must be positive");
    if (k_.trip.den <= 0) error("trip denominator must be positive");
    if (k_.vf < 1) error("vf must be >= 1");
    if (k_.nest.size() > 4)
      error("at most 4 outer levels supported (printable names j, k, l, m)");
    for (std::size_t level = 0; level < k_.nest.size(); ++level) {
      const LoopLevel& lvl = k_.nest.levels[level];
      if (lvl.trip < 0)
        error("outer level " + std::to_string(level) + " trip must be >= 0");
      if (lvl.step < 1)
        error("outer level " + std::to_string(level) + " step must be >= 1");
    }
    if (k_.predicated) {
      // Predicated whole loops have no scalar tail, so anything whose
      // semantics depend on the last lane of the final block (first-order
      // recurrences via Splice, breaks) is illegal; reductions survive the
      // partial block because inactive accumulator lanes keep their values.
      if (k_.vf < 2) error("predicated kernel must have vf > 1");
      for (const Instruction& inst : k_.body) {
        if (inst.op == Opcode::Splice)
          error("predicated kernel must not contain Splice "
                "(first-order recurrence)");
        if (inst.op == Opcode::Break)
          error("predicated kernel must not contain Break");
        if (inst.op == Opcode::Phi && inst.reduction == ReductionKind::None)
          error("predicated kernel phi must be a reduction");
      }
    }
  }

  bool valid_ref(ValueId id, ValueId ref) const {
    return ref >= 0 && ref < id;  // strict forward order
  }

  void check_instruction(ValueId id) {
    const Instruction& inst = k_.instr(id);

    // Operand references and counts.
    const int want = inst.num_operands();
    for (int i = 0; i < want; ++i) {
      const ValueId ref = inst.operands[static_cast<std::size_t>(i)];
      if (!valid_ref(id, ref)) {
        error(id, "operand " + std::to_string(i) + " references %" +
                      std::to_string(ref) + " (must be an earlier value)");
        return;
      }
    }
    for (int i = want; i < 3; ++i) {
      if (inst.operands[static_cast<std::size_t>(i)] != kNoValue)
        error(id, "unexpected extra operand");
    }

    // Predicates.
    if (inst.predicate != kNoValue) {
      if (!is_memory_op(inst.op)) {
        error(id, "predicate on non-memory instruction");
      } else if (!valid_ref(id, inst.predicate)) {
        error(id, "predicate references later value");
      } else if (!k_.value_type(inst.predicate).is_mask()) {
        error(id, "predicate is not i1");
      }
    }

    // Lane consistency: every vector value must have exactly vf lanes.
    if (inst.type.lanes != 1 && inst.type.lanes != k_.vf)
      error(id, "lane count " + std::to_string(inst.type.lanes) +
                    " does not match kernel vf " + std::to_string(k_.vf));

    switch (inst.op) {
      case Opcode::Param:
        if (inst.param_index < 0 ||
            inst.param_index >= static_cast<int>(k_.params.size()))
          error(id, "param index out of range");
        break;
      case Opcode::Load:
      case Opcode::Store:
      case Opcode::Gather:
      case Opcode::Scatter:
      case Opcode::StridedLoad:
      case Opcode::StridedStore: {
        if (inst.array < 0 || inst.array >= static_cast<int>(k_.arrays.size())) {
          error(id, "memory op references undeclared array");
          break;
        }
        const auto& arr = k_.arrays[static_cast<std::size_t>(inst.array)];
        if (inst.type.elem != arr.elem)
          error(id, "memory op type differs from array element type");
        if (inst.index.is_indirect()) {
          if (!valid_ref(id, inst.index.indirect))
            error(id, "indirect index references later value");
          else if (!is_int(k_.value_type(inst.index.indirect).elem))
            error(id, "indirect index is not an integer value");
        }
        if (is_store_op(inst.op)) {
          const Type stored = k_.value_type(inst.operands[0]);
          if (stored.elem != arr.elem)
            error(id, "stored value type differs from array element type");
        }
        break;
      }
      case Opcode::Phi: {
        if (inst.phi_update == kNoValue) {
          error(id, "phi without update edge");
          break;
        }
        if (inst.phi_update <= id ||
            inst.phi_update >= static_cast<ValueId>(k_.body.size())) {
          error(id, "phi update must reference a later value");
          break;
        }
        const Type ut = k_.value_type(inst.phi_update);
        if (ut.elem != inst.type.elem ||
            (ut.lanes != inst.type.lanes && ut.lanes != 1))
          error(id, "phi update type mismatch");
        if (inst.phi_init_param >= static_cast<int>(k_.params.size()))
          error(id, "phi init param out of range");
        check_reduction(id, inst);
        break;
      }
      case Opcode::OuterIndVar:
        // Level 0 is always accepted (it reads as 0 on a 1-deep kernel — the
        // legacy degenerate form the shrinker can produce); deeper levels
        // must exist in the nest.
        if (inst.outer_level < 0 ||
            (inst.outer_level > 0 &&
             inst.outer_level >= static_cast<int>(k_.nest.size())))
          error(id, "outer_indvar level " + std::to_string(inst.outer_level) +
                        " out of range for a " +
                        std::to_string(k_.nest.depth()) + "-deep nest");
        break;
      case Opcode::Select:
        if (!k_.value_type(inst.operands[0]).is_mask())
          error(id, "select mask operand is not i1");
        break;
      case Opcode::Break:
        if (!k_.value_type(inst.operands[0]).is_mask())
          error(id, "break condition is not i1");
        break;
      case Opcode::Sqrt:
        if (!is_float(inst.type.elem)) error(id, "sqrt on integer type");
        break;
      default:
        break;
    }

    // Binary ops: operand element types must match the result; lane counts
    // may be 1 (implicitly broadcast scalar) or the instruction's own width.
    auto lanes_ok = [&](ir::ValueId ref) {
      const Type t = k_.value_type(ref);
      return t.lanes == 1 || t.lanes == inst.type.lanes;
    };
    if (want == 2 && !is_compare(inst.op) && inst.op != Opcode::Splice &&
        !is_store_op(inst.op)) {
      for (int i = 0; i < 2; ++i) {
        const Type t = k_.value_type(inst.operands[static_cast<std::size_t>(i)]);
        if (t.elem != inst.type.elem || !lanes_ok(inst.operands[static_cast<std::size_t>(i)]))
          error(id, "binary operand type mismatch");
      }
    }
    if (is_compare(inst.op)) {
      if (!inst.type.is_mask()) error(id, "compare result is not i1");
      if (k_.value_type(inst.operands[0]).elem !=
          k_.value_type(inst.operands[1]).elem)
        error(id, "compare operand types differ");
    }
    if (is_reduce_op(inst.op)) {
      const Type in = k_.value_type(inst.operands[0]);
      if (!in.is_vector()) error(id, "reduce of a scalar value");
      if (inst.type.lanes != 1 || inst.type.elem != in.elem)
        error(id, "reduce result must be the scalar element type");
    }
    if (inst.op == Opcode::Broadcast) {
      const Type in = k_.value_type(inst.operands[0]);
      if (in.is_vector()) error(id, "broadcast of a vector value");
      if (!inst.type.is_vector()) error(id, "broadcast must produce a vector");
    }
  }

  void check_reduction(ValueId id, const Instruction& phi) {
    if (phi.reduction == ReductionKind::None) return;
    const Instruction& upd = k_.instr(phi.phi_update);
    const bool ok = [&] {
      switch (phi.reduction) {
        case ReductionKind::Sum:
          return upd.op == Opcode::Add || upd.op == Opcode::Sub ||
                 upd.op == Opcode::FMA || upd.op == Opcode::Select;
        case ReductionKind::Prod:
          return upd.op == Opcode::Mul;
        case ReductionKind::Min:
          return upd.op == Opcode::Min || upd.op == Opcode::Select;
        case ReductionKind::Max:
          return upd.op == Opcode::Max || upd.op == Opcode::Select;
        case ReductionKind::Or:
          return upd.op == Opcode::Or || upd.op == Opcode::Select;
        case ReductionKind::None:
          return true;
      }
      return false;
    }();
    if (!ok)
      error(id, std::string("reduction kind ") + to_string(phi.reduction) +
                    " inconsistent with update op " + to_string(upd.op));
  }

  void check_live_outs() {
    for (ValueId v : k_.live_outs) {
      if (v < 0 || v >= static_cast<ValueId>(k_.body.size())) {
        error("live-out references invalid value %" + std::to_string(v));
        continue;
      }
      const Opcode op = k_.instr(v).op;
      if (op != Opcode::Phi && !is_reduce_op(op))
        error("live-out %" + std::to_string(v) + " is not a phi or reduction");
    }
  }

  const LoopKernel& k_;
  VerifyResult result_;
};

}  // namespace

std::string VerifyResult::to_string() const {
  std::ostringstream os;
  for (const auto& e : errors) os << e << '\n';
  return os.str();
}

VerifyResult verify(const LoopKernel& kernel) { return Verifier(kernel).run(); }

void verify_or_throw(const LoopKernel& kernel) {
  const VerifyResult r = verify(kernel);
  if (!r.ok()) throw Error("IR verification failed:\n" + r.to_string());
}

}  // namespace veccost::ir
