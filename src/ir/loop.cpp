#include "ir/loop.hpp"

#include "support/error.hpp"

namespace veccost::ir {

const char* to_string(ReductionKind k) {
  switch (k) {
    case ReductionKind::None: return "none";
    case ReductionKind::Sum: return "sum";
    case ReductionKind::Prod: return "prod";
    case ReductionKind::Min: return "min";
    case ReductionKind::Max: return "max";
    case ReductionKind::Or: return "or";
  }
  return "?";
}

const Instruction& LoopKernel::instr(ValueId id) const {
  VECCOST_ASSERT(id >= 0 && static_cast<std::size_t>(id) < body.size(),
                 "bad value id in kernel " + name);
  return body[static_cast<std::size_t>(id)];
}

Type LoopKernel::value_type(ValueId id) const { return instr(id).type; }

int LoopKernel::find_array(const std::string& array_name) const {
  for (std::size_t i = 0; i < arrays.size(); ++i)
    if (arrays[i].name == array_name) return static_cast<int>(i);
  return -1;
}

std::vector<ValueId> LoopKernel::phis() const {
  std::vector<ValueId> out;
  for (std::size_t i = 0; i < body.size(); ++i)
    if (body[i].op == Opcode::Phi) out.push_back(static_cast<ValueId>(i));
  return out;
}

bool LoopKernel::has_break() const {
  for (const auto& inst : body)
    if (inst.op == Opcode::Break) return true;
  return false;
}

std::size_t LoopKernel::work_instruction_count() const {
  std::size_t n = 0;
  for (const auto& inst : body) {
    if (classify(inst.op, is_float(inst.type.elem)) != OpClass::Leaf) ++n;
  }
  return n;
}

}  // namespace veccost::ir
