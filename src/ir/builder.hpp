// Fluent builder for LoopKernel IR.
//
// Kernels read like the C loops they model:
//
//   LoopBuilder b("s000", "linear_dependence", "a[i] = b[i] + 1");
//   const int a = b.array("a"), bb = b.array("b");
//   auto x = b.add(b.load(bb, LoopBuilder::at(1)), b.fconst(1.0f));
//   b.store(a, LoopBuilder::at(1), x);
//   LoopKernel k = std::move(b).finish();
//
// The builder performs type inference/checking as it goes; structural
// invariants are re-checked by the verifier on finish().
#pragma once

#include <string>

#include "ir/loop.hpp"

namespace veccost::ir {

/// Opaque handle to an SSA value inside the builder.
struct Val {
  ValueId id = kNoValue;
  [[nodiscard]] bool valid() const { return id != kNoValue; }
};

class LoopBuilder {
 public:
  explicit LoopBuilder(std::string name, std::string category = "misc",
                       std::string description = "");

  // --- kernel metadata ----------------------------------------------------
  LoopBuilder& default_n(std::int64_t n);
  LoopBuilder& trip(TripCount tc);
  /// Append an outer level with trip count `trips` (start 0, step 1). Called
  /// repeatedly, builds the nest outermost first.
  LoopBuilder& outer(std::int64_t trips);
  /// Append a fully general outer level (outermost first).
  LoopBuilder& outer_level(LoopLevel lvl);

  // --- declarations ---------------------------------------------------------
  /// Declare an array; returns its index for use in load/store.
  int array(const std::string& name, ScalarType elem = ScalarType::F32,
            std::int64_t len_scale = 1, std::int64_t len_offset = 0);

  /// Declare a loop-invariant runtime scalar with its default value.
  Val param(double default_value, ScalarType t = ScalarType::F32);

  // --- leaf values ----------------------------------------------------------
  Val fconst(double v, ScalarType t = ScalarType::F32);
  Val iconst(std::int64_t v, ScalarType t = ScalarType::I64);
  Val indvar();  ///< inner induction variable (I64)
  /// Outer induction variable of nest level `level` (0 = outermost, I64).
  Val outer_indvar(int level = 0);

  // --- memory index helpers (static, usable in initializer position) -------
  static MemIndex at(std::int64_t scale_i, std::int64_t offset = 0) {
    return {scale_i, {}, 0, offset, kNoValue};
  }
  static MemIndex at2(std::int64_t scale_i, std::int64_t scale_j,
                      std::int64_t offset = 0) {
    MemIndex m{scale_i, {}, 0, offset, kNoValue};
    m.set_outer_scale(0, scale_j);
    return m;
  }
  /// Index with one coefficient per outer level, outermost first, e.g.
  /// C[j*n0 + i] in a 3-deep nest = at_nest(1, {n0, 0}).
  static MemIndex at_nest(std::int64_t scale_i,
                          std::vector<std::int64_t> outer_scales,
                          std::int64_t offset = 0) {
    MemIndex m{scale_i, {}, 0, offset, kNoValue};
    for (std::size_t level = 0; level < outer_scales.size(); ++level)
      m.set_outer_scale(level, outer_scales[level]);
    return m;
  }
  /// Index affine in n as well, e.g. a[n-1-i] = at_n(-1, 1, -1).
  static MemIndex at_n(std::int64_t scale_i, std::int64_t n_scale,
                       std::int64_t offset = 0) {
    return {scale_i, {}, n_scale, offset, kNoValue};
  }
  static MemIndex via(Val index, std::int64_t offset = 0) {
    return {0, {}, 0, offset, index.id};
  }

  // --- memory ---------------------------------------------------------------
  Val load(int array, MemIndex idx, Val predicate = {});
  void store(int array, MemIndex idx, Val value, Val predicate = {});

  // --- arithmetic -------------------------------------------------------------
  Val add(Val a, Val b);
  Val sub(Val a, Val b);
  Val mul(Val a, Val b);
  Val div(Val a, Val b);
  Val rem(Val a, Val b);
  Val neg(Val a);
  Val fma(Val a, Val b, Val c);  ///< a * b + c
  Val min(Val a, Val b);
  Val max(Val a, Val b);
  Val abs(Val a);
  Val sqrt(Val a);

  Val bit_and(Val a, Val b);
  Val bit_or(Val a, Val b);
  Val bit_xor(Val a, Val b);
  Val bit_not(Val a);
  Val shl(Val a, Val b);
  Val shr(Val a, Val b);

  // --- compares / select ------------------------------------------------------
  Val cmp_eq(Val a, Val b);
  Val cmp_ne(Val a, Val b);
  Val cmp_lt(Val a, Val b);
  Val cmp_le(Val a, Val b);
  Val cmp_gt(Val a, Val b);
  Val cmp_ge(Val a, Val b);
  Val select(Val mask, Val if_true, Val if_false);
  Val convert(Val a, ScalarType to);

  // --- loop-carried values ------------------------------------------------
  /// Create a phi with a constant initial value. Set its update edge later
  /// with set_phi_update (builder enforces it was set by finish()).
  Val phi(double init, ScalarType t = ScalarType::F32);
  /// Phi whose initial value comes from a Param value.
  Val phi_from(Val param_value);
  void set_phi_update(Val phi, Val update,
                      ReductionKind reduction = ReductionKind::None);

  /// Mark a phi's final value as observable output.
  void live_out(Val v);

  /// Early loop exit when `cond` (i1) is true.
  void brk(Val cond);

  // --- finish -----------------------------------------------------------------
  /// Validate and move the kernel out. The builder is consumed.
  [[nodiscard]] LoopKernel finish() &&;

  /// Access the kernel under construction (used by tests).
  [[nodiscard]] const LoopKernel& peek() const { return kernel_; }

 private:
  Val emit(Instruction inst);
  Val binary(Opcode op, Val a, Val b);
  Val unary(Opcode op, Val a);
  Val compare(Opcode op, Val a, Val b);
  [[nodiscard]] Type type_of(Val v) const;
  void check_valid(Val v, const char* what) const;

  LoopKernel kernel_;
};

}  // namespace veccost::ir
