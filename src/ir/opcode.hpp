// Opcodes of the vectorization IR, plus static per-opcode traits.
//
// The opcode set covers what the TSVC loop patterns need and what the
// vectorizers emit: affine/indirect memory ops, the usual scalar arithmetic,
// compares + select (for if-converted control flow), phis (reductions,
// first-order recurrences), and vector-only ops introduced by the
// transforms (broadcast, horizontal reductions, splice, gather/scatter,
// strided access).
#pragma once

#include <cstdint>
#include <string>

namespace veccost::ir {

enum class Opcode : std::uint8_t {
  // Leaf values.
  Const,        ///< immediate constant (payload: const_value)
  Param,        ///< loop-invariant runtime scalar (payload: param_index)
  IndVar,       ///< inner induction variable value (i), type I64
  OuterIndVar,  ///< outer induction variable value (j), type I64

  // Memory.
  Load,   ///< affine or indirect load (payload: array, index, opt. predicate)
  Store,  ///< affine or indirect store (operand 0 = value; opt. predicate)

  // Arithmetic (float or int depending on type).
  Add, Sub, Mul, Div, Rem, Neg, FMA,  // FMA: op0*op1 + op2
  Min, Max, Abs, Sqrt,

  // Bitwise / shifts (int only).
  And, Or, Xor, Not, Shl, Shr,

  // Compares (result type I1) and selection.
  CmpEQ, CmpNE, CmpLT, CmpLE, CmpGT, CmpGE,
  Select,  ///< op0 = mask, op1 = true value, op2 = false value

  // Conversions; result type carried by the instruction's own type.
  Convert,

  // Loop-carried scalar (payload: phi_init / phi_init_param, phi_update,
  // reduction kind).
  Phi,

  // Early exit: leaves the loop when operand-0 mask is true. Blocks
  // vectorization.
  Break,

  // --- Vector-only opcodes, introduced by the vectorizers -----------------
  Broadcast,      ///< scalar -> all lanes
  ReduceAdd, ReduceMul, ReduceMin, ReduceMax, ReduceOr,
  Splice,         ///< first-order recurrence: [last lane of op0, lanes 0..VF-2 of op1]
  Gather,         ///< indexed vector load (payload like Load with indirect index)
  Scatter,        ///< indexed vector store
  StridedLoad,    ///< affine load with |scale| != 1 (de-interleaving access)
  StridedStore,   ///< affine store with |scale| != 1
};

/// Broad instruction classes used for feature extraction and cost tables.
/// These are the "instruction types" of the paper's linear model.
enum class OpClass : std::uint8_t {
  MemLoad,      ///< contiguous loads
  MemStore,     ///< contiguous stores
  MemGather,    ///< gathers / strided loads
  MemScatter,   ///< scatters / strided stores
  FloatAdd,     ///< fadd/fsub/fneg/fabs/fmin/fmax
  FloatMul,     ///< fmul / fma
  FloatDiv,     ///< fdiv / frem / fsqrt
  IntArith,     ///< integer add/sub/mul/shift/bitwise/min/max/abs
  IntDiv,       ///< integer div / rem
  Compare,      ///< compares (int or float)
  Select,       ///< select / blend
  Convert,      ///< type conversions
  Shuffle,      ///< broadcast / splice / other lane permutes
  Reduce,       ///< horizontal reductions
  Leaf,         ///< const / param / indvar (free)
  Control,      ///< phi / break
};

[[nodiscard]] const char* to_string(Opcode op);
[[nodiscard]] const char* to_string(OpClass c);

/// Number of value operands the opcode consumes (excluding predicates and
/// payload fields). Store counts its stored value; Phi counts none (its
/// update edge is payload to keep the body topologically ordered).
[[nodiscard]] int operand_count(Opcode op);

[[nodiscard]] bool is_memory_op(Opcode op);
[[nodiscard]] bool is_store_op(Opcode op);
[[nodiscard]] bool is_compare(Opcode op);
[[nodiscard]] bool is_reduce_op(Opcode op);
[[nodiscard]] bool is_vector_only(Opcode op);

/// True for pure lane-wise value computations (arithmetic, bitwise, compares,
/// select, convert): ops whose result for lane l depends only on the
/// operands' lane l. Excludes leaves, memory ops, phis/breaks, and the
/// cross-lane vector ops (broadcast/splice/reductions). The execution
/// engine's lowering pass maps exactly these to its generic elementwise
/// micro-op.
[[nodiscard]] bool is_elementwise(Opcode op);

/// Classify an opcode given whether it operates on floating-point data.
/// (Gather/StridedLoad -> MemGather etc.; Add on ints -> IntArith.)
[[nodiscard]] OpClass classify(Opcode op, bool is_float_data);

}  // namespace veccost::ir
