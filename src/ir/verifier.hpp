// Structural verifier for LoopKernel IR.
//
// Checks the invariants every pass relies on:
//  * operands reference earlier instructions (topological SSA order);
//  * operand/result types are consistent per opcode;
//  * memory ops reference declared arrays, predicates are i1;
//  * phis have update edges of matching type; reduction kinds match the
//    update operation;
//  * lane counts are uniform (all 1, or all in {1, vf} for widened kernels);
//  * live-outs reference phis or reduce results.
#pragma once

#include <string>
#include <vector>

#include "ir/loop.hpp"

namespace veccost::ir {

struct VerifyResult {
  std::vector<std::string> errors;
  [[nodiscard]] bool ok() const { return errors.empty(); }
  [[nodiscard]] std::string to_string() const;
};

[[nodiscard]] VerifyResult verify(const LoopKernel& kernel);

/// Convenience: throws veccost::Error listing all problems if invalid.
void verify_or_throw(const LoopKernel& kernel);

}  // namespace veccost::ir
