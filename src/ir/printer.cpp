#include "ir/printer.hpp"

#include <sstream>

#include "support/error.hpp"

namespace veccost::ir {

namespace {

/// Printed names of the outer nest levels, outermost first. The innermost
/// induction variable is always `i` and `n` is the problem size, so outer
/// levels use j, k, l, m (the verifier caps nests at 4 outer levels).
constexpr const char* kOuterNames[] = {"j", "k", "l", "m"};
constexpr std::size_t kMaxOuterLevels = 4;

const char* outer_name(std::size_t level) {
  VECCOST_ASSERT(level < kMaxOuterLevels, "outer level out of printable range");
  return kOuterNames[level];
}

std::string index_string(const LoopKernel& k, const Instruction& inst) {
  const auto& idx = inst.index;
  std::ostringstream os;
  os << k.arrays[static_cast<std::size_t>(inst.array)].name << '[';
  if (idx.is_indirect()) {
    os << '%' << idx.indirect;
    if (idx.offset) os << (idx.offset > 0 ? "+" : "") << idx.offset;
  } else {
    bool wrote = false;
    auto term = [&](std::int64_t scale, const char* var) {
      if (scale == 0) return;
      if (wrote) os << (scale > 0 ? "+" : "");
      if (scale == 1) {
        os << var;
      } else if (scale == -1) {
        os << '-' << var;
      } else {
        os << scale << '*' << var;
      }
      wrote = true;
    };
    term(idx.scale_i, "i");
    for (std::size_t level = 0; level < idx.outer.size(); ++level)
      term(idx.outer[level], outer_name(level));
    term(idx.n_scale, "n");
    if (idx.offset != 0 || !wrote) {
      if (wrote && idx.offset > 0) os << '+';
      os << idx.offset;
    }
  }
  os << ']';
  return os.str();
}

}  // namespace

std::string print(const LoopKernel& k, ValueId id) {
  const Instruction& inst = k.instr(id);
  std::ostringstream os;
  const bool defines = !is_store_op(inst.op) && inst.op != Opcode::Break;
  if (defines) os << '%' << id << " = ";
  os << to_string(inst.op);

  switch (inst.op) {
    case Opcode::Const: {
      // max_digits10: round-trips the double exactly through the parser.
      const auto old_precision = os.precision(17);
      os << ' ' << inst.const_value;
      os.precision(old_precision);
      break;
    }
    case Opcode::Param:
      os << " #" << inst.param_index;
      break;
    case Opcode::OuterIndVar:
      // Level 0 prints bare (the legacy 2-deep form); deeper levels name
      // their induction variable explicitly.
      if (inst.outer_level > 0)
        os << ' ' << outer_name(static_cast<std::size_t>(inst.outer_level));
      break;
    case Opcode::Load:
    case Opcode::Gather:
    case Opcode::StridedLoad:
      os << ' ' << index_string(k, inst);
      break;
    case Opcode::Store:
    case Opcode::Scatter:
    case Opcode::StridedStore:
      os << ' ' << index_string(k, inst) << ", %" << inst.operands[0];
      break;
    case Opcode::Phi:
      if (inst.phi_init_param >= 0) {
        os << " [init=#" << inst.phi_init_param;
      } else {
        os << " [init=" << inst.phi_init;
      }
      os << ", update=%" << inst.phi_update
         << ", red=" << to_string(inst.reduction) << ']';
      break;
    default:
      for (int i = 0; i < inst.num_operands(); ++i) {
        os << (i ? ", %" : " %") << inst.operands[static_cast<std::size_t>(i)];
      }
      break;
  }
  if (inst.predicate != kNoValue) os << " if %" << inst.predicate;
  if (defines) os << " : " << to_string(inst.type);
  return os.str();
}

std::string print(const LoopKernel& k) {
  std::ostringstream os;
  os << "kernel " << k.name << " (" << k.category << ") n=" << k.default_n
     << " vf=" << k.vf;
  if (k.predicated) os << " predicated";
  os << '\n';
  if (!k.description.empty()) os << "  ; " << k.description << '\n';
  os << "arrays:";
  for (const auto& a : k.arrays) {
    os << ' ' << a.name << ':' << to_string(a.elem) << '[';
    if (a.len_scale == 1) {
      os << 'n';
    } else if (a.len_scale != 0) {
      os << a.len_scale << "*n";
    }
    if (a.len_offset || a.len_scale == 0) {
      if (a.len_scale != 0 && a.len_offset > 0) os << '+';
      os << a.len_offset;
    }
    os << ']';
  }
  os << '\n';
  if (!k.params.empty()) {
    os << "params:";
    const auto old_precision = os.precision(17);
    for (const double p : k.params) os << ' ' << p;
    os.precision(old_precision);
    os << '\n';
  }
  for (std::size_t level = 0; level < k.nest.size(); ++level) {
    const LoopLevel& lvl = k.nest.levels[level];
    os << "outer " << outer_name(level) << " = " << lvl.start << " .. "
       << lvl.start + lvl.trip * lvl.step;
    if (lvl.step != 1) os << " step " << lvl.step;
    os << '\n';
  }
  os << "loop i = " << k.trip.start << " .. ";
  if (k.trip.num == 1 && k.trip.den == 1) {
    os << 'n';
  } else {
    os << k.trip.num << "*n/" << k.trip.den;
  }
  if (k.trip.offset) os << (k.trip.offset > 0 ? "+" : "") << k.trip.offset;
  os << " step " << k.trip.step << ":\n";
  for (std::size_t i = 0; i < k.body.size(); ++i) {
    os << "  " << print(k, static_cast<ValueId>(i)) << '\n';
  }
  if (!k.live_outs.empty()) {
    os << "live-out:";
    for (ValueId v : k.live_outs) os << " %" << v;
    os << '\n';
  }
  return os.str();
}

}  // namespace veccost::ir
