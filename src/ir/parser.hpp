// Text parser for the IR dump format produced by ir::print().
//
// Round-trips with the printer: parse(print(k)) is structurally identical to
// k. Lets users author kernels as text files instead of builder code, and
// powers the golden-file tests.
//
// Grammar (line oriented; '#' or ';' start comments):
//   kernel <name> (<category>) n=<int> vf=<int>
//   arrays: <name>:<type>[<len>] ...        len: n | K*n | K*n+C | C
//   outer j = 0 .. <int>                    (optional)
//   loop i = <start> .. <end> step <step>:  end: n | N*n/D | ... [+C]
//   <instruction lines, as printed>
//   live-out: %i %j ...                     (optional)
#pragma once

#include <string>

#include "ir/loop.hpp"

namespace veccost::ir {

/// Parse a kernel from its textual form; throws veccost::Error with a line
/// number on malformed input. The result is verified before returning.
[[nodiscard]] LoopKernel parse_kernel(const std::string& text);

}  // namespace veccost::ir
