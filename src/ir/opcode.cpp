#include "ir/opcode.hpp"

#include "support/error.hpp"

namespace veccost::ir {

const char* to_string(Opcode op) {
  switch (op) {
    case Opcode::Const: return "const";
    case Opcode::Param: return "param";
    case Opcode::IndVar: return "indvar";
    case Opcode::OuterIndVar: return "outer_indvar";
    case Opcode::Load: return "load";
    case Opcode::Store: return "store";
    case Opcode::Add: return "add";
    case Opcode::Sub: return "sub";
    case Opcode::Mul: return "mul";
    case Opcode::Div: return "div";
    case Opcode::Rem: return "rem";
    case Opcode::Neg: return "neg";
    case Opcode::FMA: return "fma";
    case Opcode::Min: return "min";
    case Opcode::Max: return "max";
    case Opcode::Abs: return "abs";
    case Opcode::Sqrt: return "sqrt";
    case Opcode::And: return "and";
    case Opcode::Or: return "or";
    case Opcode::Xor: return "xor";
    case Opcode::Not: return "not";
    case Opcode::Shl: return "shl";
    case Opcode::Shr: return "shr";
    case Opcode::CmpEQ: return "cmpeq";
    case Opcode::CmpNE: return "cmpne";
    case Opcode::CmpLT: return "cmplt";
    case Opcode::CmpLE: return "cmple";
    case Opcode::CmpGT: return "cmpgt";
    case Opcode::CmpGE: return "cmpge";
    case Opcode::Select: return "select";
    case Opcode::Convert: return "convert";
    case Opcode::Phi: return "phi";
    case Opcode::Break: return "break";
    case Opcode::Broadcast: return "broadcast";
    case Opcode::ReduceAdd: return "reduce.add";
    case Opcode::ReduceMul: return "reduce.mul";
    case Opcode::ReduceMin: return "reduce.min";
    case Opcode::ReduceMax: return "reduce.max";
    case Opcode::ReduceOr: return "reduce.or";
    case Opcode::Splice: return "splice";
    case Opcode::Gather: return "gather";
    case Opcode::Scatter: return "scatter";
    case Opcode::StridedLoad: return "strided.load";
    case Opcode::StridedStore: return "strided.store";
  }
  return "?";
}

const char* to_string(OpClass c) {
  switch (c) {
    case OpClass::MemLoad: return "load";
    case OpClass::MemStore: return "store";
    case OpClass::MemGather: return "gather";
    case OpClass::MemScatter: return "scatter";
    case OpClass::FloatAdd: return "fadd";
    case OpClass::FloatMul: return "fmul";
    case OpClass::FloatDiv: return "fdiv";
    case OpClass::IntArith: return "iarith";
    case OpClass::IntDiv: return "idiv";
    case OpClass::Compare: return "cmp";
    case OpClass::Select: return "select";
    case OpClass::Convert: return "convert";
    case OpClass::Shuffle: return "shuffle";
    case OpClass::Reduce: return "reduce";
    case OpClass::Leaf: return "leaf";
    case OpClass::Control: return "control";
  }
  return "?";
}

int operand_count(Opcode op) {
  switch (op) {
    case Opcode::Const:
    case Opcode::Param:
    case Opcode::IndVar:
    case Opcode::OuterIndVar:
    case Opcode::Phi:
      return 0;
    case Opcode::Load:
    case Opcode::Gather:
    case Opcode::StridedLoad:
      return 0;  // address is payload (array + index)
    case Opcode::Store:
    case Opcode::Scatter:
    case Opcode::StridedStore:
      return 1;  // stored value
    case Opcode::Neg:
    case Opcode::Abs:
    case Opcode::Sqrt:
    case Opcode::Not:
    case Opcode::Convert:
    case Opcode::Broadcast:
    case Opcode::ReduceAdd:
    case Opcode::ReduceMul:
    case Opcode::ReduceMin:
    case Opcode::ReduceMax:
    case Opcode::ReduceOr:
    case Opcode::Break:
      return 1;
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::Div:
    case Opcode::Rem:
    case Opcode::Min:
    case Opcode::Max:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
    case Opcode::Shl:
    case Opcode::Shr:
    case Opcode::CmpEQ:
    case Opcode::CmpNE:
    case Opcode::CmpLT:
    case Opcode::CmpLE:
    case Opcode::CmpGT:
    case Opcode::CmpGE:
    case Opcode::Splice:
      return 2;
    case Opcode::FMA:
    case Opcode::Select:
      return 3;
  }
  VECCOST_FAIL("unknown opcode");
}

bool is_memory_op(Opcode op) {
  switch (op) {
    case Opcode::Load:
    case Opcode::Store:
    case Opcode::Gather:
    case Opcode::Scatter:
    case Opcode::StridedLoad:
    case Opcode::StridedStore:
      return true;
    default:
      return false;
  }
}

bool is_store_op(Opcode op) {
  return op == Opcode::Store || op == Opcode::Scatter || op == Opcode::StridedStore;
}

bool is_compare(Opcode op) {
  switch (op) {
    case Opcode::CmpEQ:
    case Opcode::CmpNE:
    case Opcode::CmpLT:
    case Opcode::CmpLE:
    case Opcode::CmpGT:
    case Opcode::CmpGE:
      return true;
    default:
      return false;
  }
}

bool is_reduce_op(Opcode op) {
  switch (op) {
    case Opcode::ReduceAdd:
    case Opcode::ReduceMul:
    case Opcode::ReduceMin:
    case Opcode::ReduceMax:
    case Opcode::ReduceOr:
      return true;
    default:
      return false;
  }
}

bool is_elementwise(Opcode op) {
  switch (op) {
    case Opcode::Const:
    case Opcode::Param:
    case Opcode::IndVar:
    case Opcode::OuterIndVar:
    case Opcode::Phi:
    case Opcode::Break:
    case Opcode::Broadcast:
    case Opcode::Splice:
      return false;
    default:
      return !is_memory_op(op) && !is_reduce_op(op);
  }
}

bool is_vector_only(Opcode op) {
  switch (op) {
    case Opcode::Broadcast:
    case Opcode::Splice:
    case Opcode::Gather:
    case Opcode::Scatter:
    case Opcode::StridedLoad:
    case Opcode::StridedStore:
      return true;
    default:
      return is_reduce_op(op);
  }
}

OpClass classify(Opcode op, bool is_float_data) {
  switch (op) {
    case Opcode::Const:
    case Opcode::Param:
    case Opcode::IndVar:
    case Opcode::OuterIndVar:
      return OpClass::Leaf;
    case Opcode::Load:
      return OpClass::MemLoad;
    case Opcode::Store:
      return OpClass::MemStore;
    case Opcode::Gather:
    case Opcode::StridedLoad:
      return OpClass::MemGather;
    case Opcode::Scatter:
    case Opcode::StridedStore:
      return OpClass::MemScatter;
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Neg:
    case Opcode::Abs:
    case Opcode::Min:
    case Opcode::Max:
      return is_float_data ? OpClass::FloatAdd : OpClass::IntArith;
    case Opcode::Mul:
    case Opcode::FMA:
      return is_float_data ? OpClass::FloatMul : OpClass::IntArith;
    case Opcode::Div:
    case Opcode::Rem:
    case Opcode::Sqrt:
      return is_float_data ? OpClass::FloatDiv : OpClass::IntDiv;
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
    case Opcode::Not:
    case Opcode::Shl:
    case Opcode::Shr:
      return OpClass::IntArith;
    case Opcode::CmpEQ:
    case Opcode::CmpNE:
    case Opcode::CmpLT:
    case Opcode::CmpLE:
    case Opcode::CmpGT:
    case Opcode::CmpGE:
      return OpClass::Compare;
    case Opcode::Select:
      return OpClass::Select;
    case Opcode::Convert:
      return OpClass::Convert;
    case Opcode::Phi:
    case Opcode::Break:
      return OpClass::Control;
    case Opcode::Broadcast:
    case Opcode::Splice:
      return OpClass::Shuffle;
    case Opcode::ReduceAdd:
    case Opcode::ReduceMul:
    case Opcode::ReduceMin:
    case Opcode::ReduceMax:
    case Opcode::ReduceOr:
      return OpClass::Reduce;
  }
  VECCOST_FAIL("unknown opcode");
}

}  // namespace veccost::ir
