// LoopKernel: a counted loop nest of arbitrary depth whose innermost body is
// a straight-line, if-converted instruction list. This is the unit both
// vectorizers transform and both machine models consume. Outer levels are
// described by NestInfo (outermost first); an empty nest is a plain 1-deep
// loop.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/instruction.hpp"

namespace veccost::ir {

/// An array referenced by the kernel. Arrays are 1-D buffers; multi-D kernels
/// flatten via MemIndex::outer coefficients. Length is an affine function of
/// the problem size n: length(n) = len_scale * n + len_offset.
struct ArrayDecl {
  std::string name;
  ScalarType elem = ScalarType::F32;
  std::int64_t len_scale = 1;
  std::int64_t len_offset = 0;

  [[nodiscard]] std::int64_t length(std::int64_t n) const {
    return len_scale * n + len_offset;
  }
};

/// Inner trip count as a function of n: iterations run
///   i = start, start+step, ... while i < end(n),  end(n) = n*num/den + offset
/// (step > 0). This covers TSVC shapes like `for (i = 1; i < n; i++)` and
/// `for (i = 0; i < n/2; i++)` and strided `i += 2` loops.
struct TripCount {
  std::int64_t start = 0;
  std::int64_t step = 1;
  std::int64_t num = 1;
  std::int64_t den = 1;
  std::int64_t offset = 0;

  [[nodiscard]] std::int64_t end(std::int64_t n) const {
    return (n * num) / den + offset;
  }
  /// Number of executed iterations for problem size n.
  [[nodiscard]] std::int64_t iterations(std::int64_t n) const {
    const std::int64_t e = end(n);
    if (e <= start) return 0;
    return (e - start + step - 1) / step;
  }
};

/// One counted outer loop level: the induction variable runs
///   v = start, start+step, ...  for `trip` iterations (absolute count).
struct LoopLevel {
  std::int64_t trip = 1;   ///< absolute iteration count (>= 0)
  std::int64_t start = 0;  ///< first induction value
  std::int64_t step = 1;   ///< induction increment (> 0)

  /// Induction value of iteration `idx` (0 <= idx < trip).
  [[nodiscard]] std::int64_t value(std::int64_t idx) const {
    return start + idx * step;
  }
  friend bool operator==(const LoopLevel&, const LoopLevel&) = default;
};

/// The outer levels of a loop nest, outermost first. The innermost level is
/// always the counted TripCount loop on LoopKernel itself, so `levels` empty
/// means a plain 1-deep kernel and a single entry reproduces the legacy
/// 2-deep shape. Full-nest level numbering used across analysis and passes:
/// level L in [0, levels.size()) is levels[L]; level levels.size() is the
/// innermost loop.
struct NestInfo {
  std::vector<LoopLevel> levels;

  [[nodiscard]] bool empty() const { return levels.empty(); }
  [[nodiscard]] std::size_t size() const { return levels.size(); }
  /// Nest depth counting the innermost loop: 1-deep when no outer levels.
  [[nodiscard]] std::size_t depth() const { return levels.size() + 1; }
  /// Product of all outer trip counts (1 when no outer levels).
  [[nodiscard]] std::int64_t total_outer_iterations() const {
    std::int64_t total = 1;
    for (const auto& lvl : levels) total *= lvl.trip;
    return total;
  }
  friend bool operator==(const NestInfo&, const NestInfo&) = default;
};

struct LoopKernel {
  std::string name;
  std::string category;     ///< TSVC category, e.g. "linear_dependence"
  std::string description;  ///< one-line summary of the pattern

  std::int64_t default_n = 4096;  ///< default problem size

  TripCount trip;  ///< innermost loop bounds
  NestInfo nest;   ///< outer loop levels, outermost first (empty = 1-deep)

  std::vector<ArrayDecl> arrays;
  std::vector<double> params;  ///< loop-invariant runtime inputs

  std::vector<Instruction> body;  ///< topologically ordered, SSA

  /// Values whose final (post-loop) value is observable: reduction results
  /// and live-out recurrences. Compared by equivalence tests alongside all
  /// array contents.
  std::vector<ValueId> live_outs;

  /// Vectorization factor this kernel was widened by; 1 = scalar kernel.
  int vf = 1;

  /// Predicated whole-loop regime (SVE-style `llv<vl>`): the loop has no
  /// scalar tail — the final partial block executes only the active-lane
  /// prefix under a whilelt-style governing predicate. Only meaningful when
  /// vf > 1; requires every phi to be a reduction (the verifier enforces
  /// both).
  bool predicated = false;

  // --- helpers ------------------------------------------------------------
  /// Full nest depth including the innermost loop (1 = single loop).
  [[nodiscard]] std::size_t depth() const { return nest.depth(); }
  /// True when the kernel has at least one outer level.
  [[nodiscard]] bool has_outer_levels() const { return !nest.empty(); }

  [[nodiscard]] const Instruction& instr(ValueId id) const;
  [[nodiscard]] Type value_type(ValueId id) const;
  [[nodiscard]] int find_array(const std::string& name) const;  ///< -1 if absent

  /// All Phi instruction ids in body order.
  [[nodiscard]] std::vector<ValueId> phis() const;
  /// True if the body contains a Break.
  [[nodiscard]] bool has_break() const;
  /// Count of instructions that do real work (excludes Leaf class).
  [[nodiscard]] std::size_t work_instruction_count() const;
};

}  // namespace veccost::ir
