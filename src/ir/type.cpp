#include "ir/type.hpp"

namespace veccost::ir {

const char* to_string(ScalarType t) {
  switch (t) {
    case ScalarType::F32: return "f32";
    case ScalarType::F64: return "f64";
    case ScalarType::I8: return "i8";
    case ScalarType::I16: return "i16";
    case ScalarType::I32: return "i32";
    case ScalarType::I64: return "i64";
    case ScalarType::I1: return "i1";
  }
  return "?";
}

std::string to_string(const Type& t) {
  std::string s = to_string(t.elem);
  if (t.is_vector()) s = "<" + std::to_string(t.lanes) + " x " + s + ">";
  return s;
}

}  // namespace veccost::ir
