// Textual dump of LoopKernel IR, for debugging and golden tests.
#pragma once

#include <string>

#include "ir/loop.hpp"

namespace veccost::ir {

/// Render a kernel as readable pseudo-IR, e.g.
///   kernel s000 (linear_dependence) n=32768 vf=1
///   arrays: a:f32[n] b:f32[n]
///   loop i = 0 .. n step 1:
///     %0 = load a[i]
///     %1 = const 1.000000 : f32
///     %2 = add %0, %1 : f32
///     store b[i], %2
[[nodiscard]] std::string print(const LoopKernel& kernel);

/// One-line rendering of a single instruction (no trailing newline).
[[nodiscard]] std::string print(const LoopKernel& kernel, ValueId id);

}  // namespace veccost::ir
