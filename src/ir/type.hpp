// Scalar and vector value types for the vectorization IR.
//
// The IR models the slice of LLVM IR that a loop vectorizer sees: float and
// integer scalars of the usual widths, an i1 mask type produced by compares,
// and fixed-width vectors of each (lanes > 1 appear only after
// vectorization).
#pragma once

#include <cstdint>
#include <string>

namespace veccost::ir {

enum class ScalarType : std::uint8_t { F32, F64, I8, I16, I32, I64, I1 };

[[nodiscard]] constexpr bool is_float(ScalarType t) {
  return t == ScalarType::F32 || t == ScalarType::F64;
}
[[nodiscard]] constexpr bool is_int(ScalarType t) { return !is_float(t); }

/// Size in bytes as stored in memory (I1 occupies one byte when stored).
[[nodiscard]] constexpr int byte_size(ScalarType t) {
  switch (t) {
    case ScalarType::F32: return 4;
    case ScalarType::F64: return 8;
    case ScalarType::I8: return 1;
    case ScalarType::I16: return 2;
    case ScalarType::I32: return 4;
    case ScalarType::I64: return 8;
    case ScalarType::I1: return 1;
  }
  return 0;
}

[[nodiscard]] const char* to_string(ScalarType t);

/// A value type: scalar when lanes == 1, fixed vector otherwise.
struct Type {
  ScalarType elem = ScalarType::F32;
  int lanes = 1;

  [[nodiscard]] constexpr bool is_vector() const { return lanes > 1; }
  [[nodiscard]] constexpr bool is_mask() const { return elem == ScalarType::I1; }
  [[nodiscard]] constexpr int bits() const { return byte_size(elem) * 8 * lanes; }
  [[nodiscard]] constexpr Type scalar() const { return {elem, 1}; }
  [[nodiscard]] constexpr Type with_lanes(int n) const { return {elem, n}; }

  friend constexpr bool operator==(const Type&, const Type&) = default;
};

[[nodiscard]] std::string to_string(const Type& t);

}  // namespace veccost::ir
