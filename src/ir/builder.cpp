#include "ir/builder.hpp"

#include "support/error.hpp"

namespace veccost::ir {

LoopBuilder::LoopBuilder(std::string name, std::string category,
                         std::string description) {
  kernel_.name = std::move(name);
  kernel_.category = std::move(category);
  kernel_.description = std::move(description);
}

LoopBuilder& LoopBuilder::default_n(std::int64_t n) {
  kernel_.default_n = n;
  return *this;
}

LoopBuilder& LoopBuilder::trip(TripCount tc) {
  VECCOST_ASSERT(tc.step > 0 && tc.den > 0, "bad trip count in " + kernel_.name);
  kernel_.trip = tc;
  return *this;
}

LoopBuilder& LoopBuilder::outer(std::int64_t trips) {
  return outer_level(LoopLevel{trips, 0, 1});
}

LoopBuilder& LoopBuilder::outer_level(LoopLevel lvl) {
  VECCOST_ASSERT(lvl.trip >= 0, "outer trip count must be >= 0");
  VECCOST_ASSERT(lvl.step >= 1, "outer step must be >= 1");
  kernel_.nest.levels.push_back(lvl);
  return *this;
}

int LoopBuilder::array(const std::string& name, ScalarType elem,
                       std::int64_t len_scale, std::int64_t len_offset) {
  VECCOST_ASSERT(kernel_.find_array(name) < 0,
                 "duplicate array '" + name + "' in " + kernel_.name);
  kernel_.arrays.push_back({name, elem, len_scale, len_offset});
  return static_cast<int>(kernel_.arrays.size()) - 1;
}

Val LoopBuilder::param(double default_value, ScalarType t) {
  kernel_.params.push_back(default_value);
  Instruction inst;
  inst.op = Opcode::Param;
  inst.type = {t, 1};
  inst.param_index = static_cast<int>(kernel_.params.size()) - 1;
  return emit(inst);
}

Val LoopBuilder::fconst(double v, ScalarType t) {
  VECCOST_ASSERT(is_float(t), "fconst with integer type");
  Instruction inst;
  inst.op = Opcode::Const;
  inst.type = {t, 1};
  inst.const_value = v;
  return emit(inst);
}

Val LoopBuilder::iconst(std::int64_t v, ScalarType t) {
  VECCOST_ASSERT(is_int(t), "iconst with float type");
  Instruction inst;
  inst.op = Opcode::Const;
  inst.type = {t, 1};
  inst.const_value = static_cast<double>(v);
  return emit(inst);
}

Val LoopBuilder::indvar() {
  Instruction inst;
  inst.op = Opcode::IndVar;
  inst.type = {ScalarType::I64, 1};
  return emit(inst);
}

Val LoopBuilder::outer_indvar(int level) {
  VECCOST_ASSERT(level >= 0, "outer_indvar level must be >= 0");
  Instruction inst;
  inst.op = Opcode::OuterIndVar;
  inst.type = {ScalarType::I64, 1};
  inst.outer_level = level;
  return emit(inst);
}

Val LoopBuilder::load(int array, MemIndex idx, Val predicate) {
  VECCOST_ASSERT(array >= 0 && array < static_cast<int>(kernel_.arrays.size()),
                 "load from undeclared array in " + kernel_.name);
  if (idx.is_indirect()) check_valid(Val{idx.indirect}, "indirect index");
  Instruction inst;
  inst.op = Opcode::Load;
  inst.type = {kernel_.arrays[static_cast<std::size_t>(array)].elem, 1};
  inst.array = array;
  inst.index = idx;
  inst.predicate = predicate.id;
  return emit(inst);
}

void LoopBuilder::store(int array, MemIndex idx, Val value, Val predicate) {
  VECCOST_ASSERT(array >= 0 && array < static_cast<int>(kernel_.arrays.size()),
                 "store to undeclared array in " + kernel_.name);
  check_valid(value, "store value");
  if (idx.is_indirect()) check_valid(Val{idx.indirect}, "indirect index");
  const ScalarType elem = kernel_.arrays[static_cast<std::size_t>(array)].elem;
  VECCOST_ASSERT(type_of(value).elem == elem,
                 "store type mismatch in " + kernel_.name);
  Instruction inst;
  inst.op = Opcode::Store;
  inst.type = {elem, 1};
  inst.operands[0] = value.id;
  inst.array = array;
  inst.index = idx;
  inst.predicate = predicate.id;
  emit(inst);
}

Val LoopBuilder::binary(Opcode op, Val a, Val b) {
  check_valid(a, to_string(op));
  check_valid(b, to_string(op));
  const Type ta = type_of(a), tb = type_of(b);
  VECCOST_ASSERT(ta == tb, std::string("operand type mismatch for ") +
                               to_string(op) + " in " + kernel_.name);
  Instruction inst;
  inst.op = op;
  inst.type = ta;
  inst.operands[0] = a.id;
  inst.operands[1] = b.id;
  return emit(inst);
}

Val LoopBuilder::unary(Opcode op, Val a) {
  check_valid(a, to_string(op));
  Instruction inst;
  inst.op = op;
  inst.type = type_of(a);
  inst.operands[0] = a.id;
  return emit(inst);
}

Val LoopBuilder::compare(Opcode op, Val a, Val b) {
  check_valid(a, to_string(op));
  check_valid(b, to_string(op));
  VECCOST_ASSERT(type_of(a) == type_of(b),
                 "compare operand type mismatch in " + kernel_.name);
  Instruction inst;
  inst.op = op;
  inst.type = {ScalarType::I1, 1};
  inst.operands[0] = a.id;
  inst.operands[1] = b.id;
  return emit(inst);
}

Val LoopBuilder::add(Val a, Val b) { return binary(Opcode::Add, a, b); }
Val LoopBuilder::sub(Val a, Val b) { return binary(Opcode::Sub, a, b); }
Val LoopBuilder::mul(Val a, Val b) { return binary(Opcode::Mul, a, b); }
Val LoopBuilder::div(Val a, Val b) { return binary(Opcode::Div, a, b); }
Val LoopBuilder::rem(Val a, Val b) { return binary(Opcode::Rem, a, b); }
Val LoopBuilder::neg(Val a) { return unary(Opcode::Neg, a); }
Val LoopBuilder::min(Val a, Val b) { return binary(Opcode::Min, a, b); }
Val LoopBuilder::max(Val a, Val b) { return binary(Opcode::Max, a, b); }
Val LoopBuilder::abs(Val a) { return unary(Opcode::Abs, a); }

Val LoopBuilder::sqrt(Val a) {
  VECCOST_ASSERT(is_float(type_of(a).elem), "sqrt on integer value");
  return unary(Opcode::Sqrt, a);
}

Val LoopBuilder::fma(Val a, Val b, Val c) {
  check_valid(a, "fma");
  check_valid(b, "fma");
  check_valid(c, "fma");
  const Type t = type_of(a);
  VECCOST_ASSERT(t == type_of(b) && t == type_of(c),
                 "fma operand type mismatch in " + kernel_.name);
  VECCOST_ASSERT(is_float(t.elem), "fma on integer values");
  Instruction inst;
  inst.op = Opcode::FMA;
  inst.type = t;
  inst.operands = {a.id, b.id, c.id};
  return emit(inst);
}

Val LoopBuilder::bit_and(Val a, Val b) { return binary(Opcode::And, a, b); }
Val LoopBuilder::bit_or(Val a, Val b) { return binary(Opcode::Or, a, b); }
Val LoopBuilder::bit_xor(Val a, Val b) { return binary(Opcode::Xor, a, b); }
Val LoopBuilder::bit_not(Val a) { return unary(Opcode::Not, a); }
Val LoopBuilder::shl(Val a, Val b) { return binary(Opcode::Shl, a, b); }
Val LoopBuilder::shr(Val a, Val b) { return binary(Opcode::Shr, a, b); }

Val LoopBuilder::cmp_eq(Val a, Val b) { return compare(Opcode::CmpEQ, a, b); }
Val LoopBuilder::cmp_ne(Val a, Val b) { return compare(Opcode::CmpNE, a, b); }
Val LoopBuilder::cmp_lt(Val a, Val b) { return compare(Opcode::CmpLT, a, b); }
Val LoopBuilder::cmp_le(Val a, Val b) { return compare(Opcode::CmpLE, a, b); }
Val LoopBuilder::cmp_gt(Val a, Val b) { return compare(Opcode::CmpGT, a, b); }
Val LoopBuilder::cmp_ge(Val a, Val b) { return compare(Opcode::CmpGE, a, b); }

Val LoopBuilder::select(Val mask, Val if_true, Val if_false) {
  check_valid(mask, "select");
  check_valid(if_true, "select");
  check_valid(if_false, "select");
  VECCOST_ASSERT(type_of(mask).is_mask(), "select mask must be i1");
  VECCOST_ASSERT(type_of(if_true) == type_of(if_false),
                 "select arm type mismatch in " + kernel_.name);
  Instruction inst;
  inst.op = Opcode::Select;
  inst.type = type_of(if_true);
  inst.operands = {mask.id, if_true.id, if_false.id};
  return emit(inst);
}

Val LoopBuilder::convert(Val a, ScalarType to) {
  check_valid(a, "convert");
  Instruction inst;
  inst.op = Opcode::Convert;
  inst.type = {to, 1};
  inst.operands[0] = a.id;
  return emit(inst);
}

Val LoopBuilder::phi(double init, ScalarType t) {
  Instruction inst;
  inst.op = Opcode::Phi;
  inst.type = {t, 1};
  inst.phi_init = init;
  return emit(inst);
}

Val LoopBuilder::phi_from(Val param_value) {
  check_valid(param_value, "phi_from");
  const Instruction& src = kernel_.instr(param_value.id);
  VECCOST_ASSERT(src.op == Opcode::Param, "phi_from requires a Param value");
  Instruction inst;
  inst.op = Opcode::Phi;
  inst.type = src.type;
  inst.phi_init_param = src.param_index;
  return emit(inst);
}

void LoopBuilder::set_phi_update(Val phi, Val update, ReductionKind reduction) {
  check_valid(phi, "set_phi_update");
  check_valid(update, "set_phi_update");
  Instruction& inst = kernel_.body[static_cast<std::size_t>(phi.id)];
  VECCOST_ASSERT(inst.op == Opcode::Phi, "set_phi_update on non-phi");
  VECCOST_ASSERT(inst.phi_update == kNoValue, "phi update already set");
  VECCOST_ASSERT(inst.type == type_of(update),
                 "phi update type mismatch in " + kernel_.name);
  VECCOST_ASSERT(update.id > phi.id, "phi update must come later in the body");
  inst.phi_update = update.id;
  inst.reduction = reduction;
}

void LoopBuilder::live_out(Val v) {
  check_valid(v, "live_out");
  kernel_.live_outs.push_back(v.id);
}

void LoopBuilder::brk(Val cond) {
  check_valid(cond, "break");
  VECCOST_ASSERT(type_of(cond).is_mask(), "break condition must be i1");
  Instruction inst;
  inst.op = Opcode::Break;
  inst.type = {ScalarType::I1, 1};
  inst.operands[0] = cond.id;
  emit(inst);
}

LoopKernel LoopBuilder::finish() && {
  for (const auto& inst : kernel_.body) {
    if (inst.op == Opcode::Phi) {
      VECCOST_ASSERT(inst.phi_update != kNoValue,
                     "phi without update edge in " + kernel_.name);
    }
  }
  return std::move(kernel_);
}

Val LoopBuilder::emit(Instruction inst) {
  kernel_.body.push_back(inst);
  return Val{static_cast<ValueId>(kernel_.body.size()) - 1};
}

Type LoopBuilder::type_of(Val v) const { return kernel_.value_type(v.id); }

void LoopBuilder::check_valid(Val v, const char* what) const {
  VECCOST_ASSERT(v.valid() && static_cast<std::size_t>(v.id) < kernel_.body.size(),
                 std::string("invalid operand for ") + what + " in " + kernel_.name);
}

}  // namespace veccost::ir
