#include "machine/executor.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>

#include "machine/exec_engine.hpp"
#include "machine/nest_iter.hpp"
#include "support/env_flags.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace veccost::machine {

using ir::Instruction;
using ir::LoopKernel;
using ir::Opcode;
using ir::ReductionKind;
using ir::ScalarType;
using ir::ValueId;

namespace {

// reduction_identity / horizontal_reduce are shared with the lowered engine
// (machine/lowering.hpp): the reassociation point must be one piece of code.

/// Reference interpreter over one kernel + workload. Lane count is fixed per instance
/// (1 for scalar execution, vf for the vector body).
class Interp {
 public:
  Interp(const LoopKernel& k, Workload& wl, int lanes,
         const AccessObserver* observer = nullptr)
      : k_(k), wl_(wl), lanes_(lanes), active_(lanes), observer_(observer),
        vals_(k.body.size()) {
    VECCOST_ASSERT(wl.arrays.size() == k.arrays.size(),
                   "workload/array mismatch for " + k.name);
    for (auto& v : vals_) v.assign(static_cast<std::size_t>(lanes_), 0.0);
    phi_ids_ = k.phis();
    phi_state_.resize(phi_ids_.size());
  }

  /// Initialize phi state for a fresh inner-loop execution.
  void reset_phis() {
    for (std::size_t p = 0; p < phi_ids_.size(); ++p) {
      const Instruction& phi = k_.instr(phi_ids_[p]);
      const double init = phi.phi_init_param >= 0
                              ? k_.params[static_cast<std::size_t>(phi.phi_init_param)]
                              : phi.phi_init;
      auto& state = phi_state_[p];
      state.assign(static_cast<std::size_t>(lanes_), init);
      if (lanes_ > 1 && phi.reduction != ReductionKind::None) {
        // Vector accumulator: lane 0 carries the initial value, the rest the
        // identity element, so the horizontal reduce recovers the total.
        const double ident = reduction_identity(phi.reduction);
        for (int l = 1; l < lanes_; ++l) state[static_cast<std::size_t>(l)] = ident;
      }
    }
  }

  /// Install the induction values of the grand outer levels (all levels but
  /// the last) for subsequent run_range calls; the last level's value is
  /// passed per call as `j`. No-op for 1- and 2-deep kernels.
  void set_outer_values(const std::vector<std::int64_t>& grand) {
    grand_vals_ = grand;
  }

  /// Seed phi state from externally computed scalars (epilogue handoff).
  void set_phi_inits(const std::vector<double>& inits) {
    VECCOST_ASSERT(inits.size() == phi_ids_.size(), "phi init count mismatch");
    for (std::size_t p = 0; p < phi_ids_.size(); ++p)
      phi_state_[p].assign(static_cast<std::size_t>(lanes_), inits[p]);
  }

  /// Run iterations m in [m_lo, m_hi) at outer index j, advancing `lanes_`
  /// iterations at a time. Returns the number of iterations executed (less
  /// than requested only if a Break fired).
  std::int64_t run_range(std::int64_t j, std::int64_t m_lo, std::int64_t m_hi) {
    std::int64_t executed = 0;
    for (std::int64_t m = m_lo; m < m_hi; m += lanes_) {
      if (!run_block(j, m)) {
        // Count iterations up to and including the one that broke.
        executed += broke_at_lane_ + 1;
        broke_ = true;
        return executed;
      }
      executed += lanes_;
      commit_phis();
    }
    return executed;
  }

  /// Run ONE partial block of `active` < lanes_ iterations starting at m —
  /// the predicated whole-loop tail. Only the active-lane prefix executes
  /// (the governing predicate masks the rest): per-lane op loops and the phi
  /// commit stop at `active`, so inactive reduction accumulator lanes keep
  /// their previously committed values and the final horizontal reduce
  /// recovers the exact total.
  std::int64_t run_partial_block(std::int64_t j, std::int64_t m, int active) {
    VECCOST_ASSERT(active > 0 && active < lanes_,
                   "partial block must cover a strict lane prefix");
    active_ = active;
    const bool ok = run_block(j, m);
    VECCOST_ASSERT(ok, "break inside predicated block of " + k_.name);
    commit_phis();
    active_ = lanes_;
    return active;
  }

  [[nodiscard]] bool broke() const { return broke_; }

  /// Final per-phi scalar values: reductions reduced horizontally,
  /// recurrences take the last lane.
  [[nodiscard]] std::vector<double> final_phi_values() const {
    std::vector<double> out(phi_ids_.size());
    for (std::size_t p = 0; p < phi_ids_.size(); ++p) {
      const Instruction& phi = k_.instr(phi_ids_[p]);
      if (lanes_ > 1 && phi.reduction != ReductionKind::None) {
        out[p] = horizontal_reduce(phi.reduction, phi_state_[p].data(),
                                   phi_state_[p].size(), phi.type.elem);
      } else {
        out[p] = phi_state_[p].back();
      }
    }
    return out;
  }

  [[nodiscard]] const std::vector<ValueId>& phi_ids() const { return phi_ids_; }

 private:
  [[nodiscard]] double lane_of(ValueId v, int l) const {
    const auto& lanes = vals_[static_cast<std::size_t>(v)];
    return lanes.size() == 1 ? lanes[0] : lanes[static_cast<std::size_t>(l)];
  }

  /// Induction value of outer level `level`; the last level's value is the
  /// in-flight `j`, grand levels read the installed odometer values, and any
  /// level beyond the nest reads as 0 (legacy degenerate subscripts).
  [[nodiscard]] std::int64_t outer_value(std::size_t level,
                                         std::int64_t j) const {
    const std::size_t count = k_.nest.size();
    if (count == 0) return 0;
    if (level + 1 == count) return j;
    if (level < grand_vals_.size()) return grand_vals_[level];
    return 0;
  }

  [[nodiscard]] std::int64_t mem_index(const Instruction& inst, std::int64_t i,
                                       std::int64_t j, int l) const {
    const auto& idx = inst.index;
    if (idx.is_indirect())
      return static_cast<std::int64_t>(lane_of(idx.indirect, l)) + idx.offset;
    std::int64_t e = idx.scale_i * i + idx.n_scale * wl_.n + idx.offset;
    for (std::size_t level = 0; level < idx.outer.size(); ++level)
      e += idx.outer[level] * outer_value(level, j);
    return e;
  }

  static double round_to(double v, ScalarType t) {
    switch (t) {
      case ScalarType::F32: return static_cast<double>(static_cast<float>(v));
      case ScalarType::F64: return v;
      case ScalarType::I1: return v != 0.0 ? 1.0 : 0.0;
      default: return std::trunc(v);
    }
  }

  /// Execute one widened iteration starting at counter m (lanes_ scalar
  /// iterations). Returns false if a Break fired; broke_at_lane_ is set.
  bool run_block(std::int64_t j, std::int64_t m) {
    const std::int64_t start = k_.trip.start;
    const std::int64_t step = k_.trip.step;
    std::size_t phi_ordinal = 0;

    for (std::size_t id = 0; id < k_.body.size(); ++id) {
      const Instruction& inst = k_.body[id];
      auto& out = vals_[id];
      switch (inst.op) {
        case Opcode::Const:
          std::fill(out.begin(), out.end(), inst.const_value);
          break;
        case Opcode::Param:
          std::fill(out.begin(), out.end(),
                    k_.params[static_cast<std::size_t>(inst.param_index)]);
          break;
        case Opcode::IndVar:
          for (int l = 0; l < active_; ++l)
            out[static_cast<std::size_t>(l)] =
                static_cast<double>(start + (m + l) * step);
          break;
        case Opcode::OuterIndVar:
          std::fill(out.begin(), out.end(),
                    static_cast<double>(outer_value(
                        static_cast<std::size_t>(inst.outer_level), j)));
          break;
        case Opcode::Phi:
          out = phi_state_[phi_ordinal++];
          break;
        case Opcode::Load:
        case Opcode::Gather:
        case Opcode::StridedLoad: {
          auto& buf = wl_.arrays[static_cast<std::size_t>(inst.array)];
          for (int l = 0; l < active_; ++l) {
            if (inst.predicate != ir::kNoValue && lane_of(inst.predicate, l) == 0.0) {
              out[static_cast<std::size_t>(l)] = 0.0;
              continue;
            }
            const std::int64_t i = start + (m + l) * step;
            const std::int64_t e = mem_index(inst, i, j, l);
            VECCOST_ASSERT(e >= 0 && e < static_cast<std::int64_t>(buf.size()),
                           "load out of bounds in " + k_.name);
            if (observer_ != nullptr) (*observer_)(inst.array, e, false);
            out[static_cast<std::size_t>(l)] = buf[static_cast<std::size_t>(e)];
          }
          break;
        }
        case Opcode::Store:
        case Opcode::Scatter:
        case Opcode::StridedStore: {
          auto& buf = wl_.arrays[static_cast<std::size_t>(inst.array)];
          for (int l = 0; l < active_; ++l) {
            if (inst.predicate != ir::kNoValue && lane_of(inst.predicate, l) == 0.0)
              continue;
            const std::int64_t i = start + (m + l) * step;
            const std::int64_t e = mem_index(inst, i, j, l);
            VECCOST_ASSERT(e >= 0 && e < static_cast<std::int64_t>(buf.size()),
                           "store out of bounds in " + k_.name);
            if (observer_ != nullptr) (*observer_)(inst.array, e, true);
            buf[static_cast<std::size_t>(e)] = lane_of(inst.operands[0], l);
          }
          break;
        }
        case Opcode::Break: {
          VECCOST_ASSERT(lanes_ == 1, "break inside vector body of " + k_.name);
          if (lane_of(inst.operands[0], 0) != 0.0) {
            broke_at_lane_ = 0;
            return false;
          }
          break;
        }
        case Opcode::Broadcast:
          for (int l = 0; l < active_; ++l)
            out[static_cast<std::size_t>(l)] = lane_of(inst.operands[0], 0);
          break;
        case Opcode::Splice: {
          // [last lane of op0, lanes 0..L-2 of op1]
          out[0] = vals_[static_cast<std::size_t>(inst.operands[0])].back();
          for (int l = 1; l < lanes_; ++l)
            out[static_cast<std::size_t>(l)] = lane_of(inst.operands[1], l - 1);
          break;
        }
        case Opcode::ReduceAdd:
        case Opcode::ReduceMul:
        case Opcode::ReduceMin:
        case Opcode::ReduceMax:
        case Opcode::ReduceOr: {
          const ReductionKind kind =
              inst.op == Opcode::ReduceAdd   ? ReductionKind::Sum
              : inst.op == Opcode::ReduceMul ? ReductionKind::Prod
              : inst.op == Opcode::ReduceMin ? ReductionKind::Min
              : inst.op == Opcode::ReduceMax ? ReductionKind::Max
                                             : ReductionKind::Or;
          const auto& in = vals_[static_cast<std::size_t>(inst.operands[0])];
          const double r =
              horizontal_reduce(kind, in.data(), in.size(), inst.type.elem);
          std::fill(out.begin(), out.end(), r);
          break;
        }
        default:
          compute_elementwise(inst, out, j, m);
          break;
      }
    }
    return true;
  }

  void compute_elementwise(const Instruction& inst, std::vector<double>& out,
                           std::int64_t /*j*/, std::int64_t /*m*/) {
    const ScalarType t = inst.type.elem;
    for (int l = 0; l < active_; ++l) {
      const double a = inst.num_operands() > 0 ? lane_of(inst.operands[0], l) : 0.0;
      const double b = inst.num_operands() > 1 ? lane_of(inst.operands[1], l) : 0.0;
      const double c = inst.num_operands() > 2 ? lane_of(inst.operands[2], l) : 0.0;
      double r = 0.0;
      switch (inst.op) {
        case Opcode::Add: r = a + b; break;
        case Opcode::Sub: r = a - b; break;
        case Opcode::Mul: r = a * b; break;
        case Opcode::Div:
          if (ir::is_int(t)) {
            VECCOST_ASSERT(b != 0.0, "integer division by zero in " + k_.name);
            r = std::trunc(a / b);
          } else {
            r = a / b;
          }
          break;
        case Opcode::Rem:
          if (ir::is_int(t)) {
            VECCOST_ASSERT(b != 0.0, "integer remainder by zero in " + k_.name);
            r = static_cast<double>(static_cast<std::int64_t>(a) %
                                    static_cast<std::int64_t>(b));
          } else {
            r = std::fmod(a, b);
          }
          break;
        case Opcode::Neg: r = -a; break;
        case Opcode::FMA: r = a * b + c; break;
        case Opcode::Min: r = std::min(a, b); break;
        case Opcode::Max: r = std::max(a, b); break;
        case Opcode::Abs: r = std::abs(a); break;
        case Opcode::Sqrt: r = std::sqrt(a); break;
        case Opcode::And:
          r = static_cast<double>(static_cast<std::int64_t>(a) &
                                  static_cast<std::int64_t>(b));
          break;
        case Opcode::Or:
          r = static_cast<double>(static_cast<std::int64_t>(a) |
                                  static_cast<std::int64_t>(b));
          break;
        case Opcode::Xor:
          r = static_cast<double>(static_cast<std::int64_t>(a) ^
                                  static_cast<std::int64_t>(b));
          break;
        case Opcode::Not:
          r = static_cast<double>(~static_cast<std::int64_t>(a));
          break;
        case Opcode::Shl:
          r = static_cast<double>(static_cast<std::int64_t>(a)
                                  << static_cast<std::int64_t>(b));
          break;
        case Opcode::Shr:
          r = static_cast<double>(static_cast<std::int64_t>(a) >>
                                  static_cast<std::int64_t>(b));
          break;
        case Opcode::CmpEQ: r = a == b ? 1.0 : 0.0; break;
        case Opcode::CmpNE: r = a != b ? 1.0 : 0.0; break;
        case Opcode::CmpLT: r = a < b ? 1.0 : 0.0; break;
        case Opcode::CmpLE: r = a <= b ? 1.0 : 0.0; break;
        case Opcode::CmpGT: r = a > b ? 1.0 : 0.0; break;
        case Opcode::CmpGE: r = a >= b ? 1.0 : 0.0; break;
        case Opcode::Select: r = a != 0.0 ? b : c; break;
        case Opcode::Convert: r = a; break;  // rounding below
        default:
          VECCOST_FAIL(std::string("unhandled opcode in executor: ") +
                       ir::to_string(inst.op));
      }
      out[static_cast<std::size_t>(l)] = round_to(r, t);
    }
  }

  void commit_phis() {
    std::size_t p = 0;
    for (const ValueId id : phi_ids_) {
      const Instruction& phi = k_.instr(id);
      const auto& upd = vals_[static_cast<std::size_t>(phi.phi_update)];
      if (active_ == lanes_) {
        phi_state_[p] = upd;
      } else {
        // Partial block: inactive lanes keep their accumulated values.
        for (int l = 0; l < active_; ++l)
          phi_state_[p][static_cast<std::size_t>(l)] =
              upd.size() == 1 ? upd[0] : upd[static_cast<std::size_t>(l)];
      }
      ++p;
    }
  }

  const LoopKernel& k_;
  Workload& wl_;
  int lanes_;
  int active_;  ///< lane bound for the current block; < lanes_ only in the
                ///< predicated whole-loop tail (run_partial_block)
  const AccessObserver* observer_;
  std::vector<std::vector<double>> vals_;
  std::vector<ValueId> phi_ids_;
  std::vector<std::vector<double>> phi_state_;
  std::vector<std::int64_t> grand_vals_;  ///< values of outer levels 0..last-1
  bool broke_ = false;
  int broke_at_lane_ = 0;
};

std::vector<double> collect_live_outs(const LoopKernel& k, const Interp& interp) {
  const auto finals = interp.final_phi_values();
  const auto& phis = interp.phi_ids();
  std::vector<double> out;
  out.reserve(k.live_outs.size());
  for (const ValueId v : k.live_outs) {
    const auto it = std::find(phis.begin(), phis.end(), v);
    VECCOST_ASSERT(it != phis.end(), "live-out is not a phi in " + k.name);
    out.push_back(finals[static_cast<std::size_t>(it - phis.begin())]);
  }
  return out;
}

/// Predicated whole-loop execution (llv<vl>): every iteration runs in the
/// vector body — the final partial block is governed by a whilelt-style
/// predicate instead of falling back to a scalar epilogue. The verifier
/// guarantees every phi is a reduction, so the vector accumulator's inactive
/// lanes simply keep their previous partial values and the exit-time
/// horizontal reduce recovers the exact scalar total.
ExecResult reference_execute_predicated(const LoopKernel& vec,
                                        const LoopKernel& scalar,
                                        Workload& wl) {
  // Predicated whole loops have no scalar remainder, so only the widened
  // kernel's own iteration space matters (it differs from `scalar`'s when
  // the pipeline unrolled or rerolled before widening).
  const std::int64_t iters = vec.trip.iterations(wl.n);
  const std::int64_t vf = vec.vf;
  const std::int64_t main_iters = (iters / vf) * vf;
  const std::int64_t tail = iters - main_iters;

  Interp vinterp(vec, wl, static_cast<int>(vf));
  ExecResult result;
  vinterp.reset_phis();  // zero-trip nests still observe phi initial values
  for_each_outer_combination(
      vec.nest,
      [&](const std::vector<std::int64_t>& grand, std::int64_t j) {
        vinterp.set_outer_values(grand);
        vinterp.reset_phis();
        result.iterations += vinterp.run_range(j, 0, main_iters);
        if (tail != 0)
          result.iterations +=
              vinterp.run_partial_block(j, main_iters, static_cast<int>(tail));
        return true;
      });
  result.live_outs = collect_live_outs(vec, vinterp);
  return result;
}

}  // namespace

Workload make_workload(const ir::LoopKernel& kernel, std::int64_t n,
                       std::uint64_t seed) {
  Workload wl;
  wl.n = n;
  wl.arrays.resize(kernel.arrays.size());
  Rng rng(hash_string(kernel.name) ^ seed);
  for (std::size_t a = 0; a < kernel.arrays.size(); ++a) {
    const auto& decl = kernel.arrays[a];
    const std::int64_t len = decl.length(n);
    VECCOST_ASSERT(len >= 0, "negative array length in " + kernel.name);
    auto& buf = wl.arrays[a];
    buf.resize(static_cast<std::size_t>(len));
    if (ir::is_float(decl.elem)) {
      for (auto& v : buf)
        v = static_cast<double>(static_cast<float>(rng.uniform(1.0, 2.0)));
    } else {
      // Integer arrays double as subscript sources: keep values in [0, n).
      for (auto& v : buf)
        v = static_cast<double>(rng.next_below(static_cast<std::uint64_t>(
            std::max<std::int64_t>(n, 1))));
    }
  }
  return wl;
}

namespace {

ExecResult execute_scalar_impl(const ir::LoopKernel& kernel, Workload& wl,
                               const AccessObserver* observer) {
  VECCOST_ASSERT(kernel.vf == 1, "execute_scalar needs a scalar kernel");
  const std::int64_t iters = kernel.trip.iterations(wl.n);
  Interp interp(kernel, wl, 1, observer);
  ExecResult result;
  interp.reset_phis();  // zero-trip nests still observe phi initial values
  for_each_outer_combination(
      kernel.nest,
      [&](const std::vector<std::int64_t>& grand, std::int64_t j) {
        interp.set_outer_values(grand);
        interp.reset_phis();
        result.iterations += interp.run_range(j, 0, iters);
        if (interp.broke()) {
          result.broke_early = true;
          return false;
        }
        return true;
      });
  result.live_outs = collect_live_outs(kernel, interp);
  return result;
}

ExecutorKind initial_executor_kind() {
  return support::EnvFlags::enabled("VECCOST_REFERENCE_EXECUTOR", false)
             ? ExecutorKind::Reference
             : ExecutorKind::Lowered;
}

std::atomic<ExecutorKind> g_executor_kind{initial_executor_kind()};

/// Lazily initialized so a bad VECCOST_DISPATCH value surfaces as a
/// catchable Error on first use instead of terminating in static init.
std::atomic<DispatchKind>& dispatch_store() {
  static std::atomic<DispatchKind> store{[] {
    const std::string env = support::EnvFlags::value("VECCOST_DISPATCH");
    return env.empty() ? DispatchKind::Batch : parse_dispatch_kind(env);
  }()};
  return store;
}

}  // namespace

ExecutorKind executor_kind() {
  return g_executor_kind.load(std::memory_order_relaxed);
}

void set_executor_kind(ExecutorKind kind) {
  g_executor_kind.store(kind, std::memory_order_relaxed);
}

const char* to_string(DispatchKind kind) {
  switch (kind) {
    case DispatchKind::Switch: return "switch";
    case DispatchKind::Threaded: return "threaded";
    case DispatchKind::Batch: return "batch";
  }
  return "?";
}

DispatchKind parse_dispatch_kind(std::string_view text) {
  if (text == "switch") return DispatchKind::Switch;
  if (text == "threaded") return DispatchKind::Threaded;
  if (text == "batch") return DispatchKind::Batch;
  throw Error("unknown dispatch kind '" + std::string(text) +
              "' (expected switch, threaded, or batch)");
}

DispatchKind dispatch_kind() {
  return dispatch_store().load(std::memory_order_relaxed);
}

void set_dispatch_kind(DispatchKind kind) {
  dispatch_store().store(kind, std::memory_order_relaxed);
}

VectorSplit split_vector_range(const ir::LoopKernel& vec,
                               const ir::LoopKernel& scalar, std::int64_t n) {
  VECCOST_ASSERT(vec.vf > 1, "split_vector_range needs a widened kernel");
  VectorSplit s;
  s.scalar_iters = scalar.trip.iterations(n);
  s.vec_iters = vec.trip.iterations(n);
  s.vec_main = (s.vec_iters / vec.vf) * vec.vf;
  // Map the wide-loop end back to scalar space by element progress: both
  // kernels share start and bound (unroll multiplies the step, reroll
  // divides it), so vec_main vec iterations cover
  // vec_main * vec.step / scalar.step scalar iterations. Shrink vec_main by
  // whole blocks until that is a whole number of scalar iterations.
  const std::int64_t sstep = scalar.trip.step;
  while (s.vec_main > 0 && (s.vec_main * vec.trip.step) % sstep != 0)
    s.vec_main -= vec.vf;
  s.scalar_resume =
      std::min(s.scalar_iters, (s.vec_main * vec.trip.step) / sstep);
  return s;
}

ExecResult reference_execute_scalar(const ir::LoopKernel& kernel, Workload& wl) {
  return execute_scalar_impl(kernel, wl, nullptr);
}

ExecResult reference_execute_scalar_traced(const ir::LoopKernel& kernel,
                                           Workload& wl,
                                           const AccessObserver& observer) {
  return execute_scalar_impl(kernel, wl, &observer);
}

ExecResult reference_execute_vectorized(const ir::LoopKernel& vec,
                                        const ir::LoopKernel& scalar,
                                        Workload& wl) {
  VECCOST_ASSERT(vec.vf > 1, "execute_vectorized needs a widened kernel");
  VECCOST_ASSERT(!vec.has_break() && !scalar.has_break(),
                 "cannot vectorize a loop with break");
  if (vec.predicated) return reference_execute_predicated(vec, scalar, wl);
  const VectorSplit sp = split_vector_range(vec, scalar, wl.n);
  // Nest-restructuring pipelines (interchange, unrolljam) widen a kernel
  // whose outer iteration space differs from the original scalar's. Each
  // interpreter must then sweep its OWN kernel's nest; with a fractional
  // tail there is no per-combination phi handoff pairing across the two
  // orders, so the whole execution runs in the scalar loop instead (the
  // lowered engine applies the same policy).
  const bool same_nest = vec.nest == scalar.nest;
  if (!same_nest && sp.scalar_resume != sp.scalar_iters)
    return reference_execute_scalar(scalar, wl);

  Interp vinterp(vec, wl, vec.vf);
  Interp sinterp(scalar, wl, 1);
  ExecResult result;
  // Zero-trip nests run nothing; live-outs are the phi initial values.
  vinterp.reset_phis();
  sinterp.set_phi_inits(vinterp.final_phi_values());
  if (same_nest) {
    for_each_outer_combination(
        scalar.nest,
        [&](const std::vector<std::int64_t>& grand, std::int64_t j) {
          vinterp.set_outer_values(grand);
          sinterp.set_outer_values(grand);
          vinterp.reset_phis();
          result.iterations += vinterp.run_range(j, 0, sp.vec_main);
          // Hand the partial reduction / recurrence state to the scalar
          // remainder.
          sinterp.set_phi_inits(vinterp.final_phi_values());
          result.iterations +=
              sinterp.run_range(j, sp.scalar_resume, sp.scalar_iters);
          return true;
        });
  } else {
    // Remainder-free (checked above): sweep the widened kernel's own nest;
    // the scalar interpreter only surfaces the final phi state.
    for_each_outer_combination(
        vec.nest,
        [&](const std::vector<std::int64_t>& grand, std::int64_t j) {
          vinterp.set_outer_values(grand);
          vinterp.reset_phis();
          result.iterations += vinterp.run_range(j, 0, sp.vec_main);
          return true;
        });
    sinterp.set_phi_inits(vinterp.final_phi_values());
  }
  result.live_outs = collect_live_outs(scalar, sinterp);
  return result;
}

ExecResult execute_scalar(const ir::LoopKernel& kernel, Workload& wl) {
  if (executor_kind() == ExecutorKind::Reference)
    return reference_execute_scalar(kernel, wl);
  return lowered_execute_scalar(kernel, wl);
}

ExecResult execute_scalar_traced(const ir::LoopKernel& kernel, Workload& wl,
                                 const AccessObserver& observer) {
  if (executor_kind() == ExecutorKind::Reference)
    return reference_execute_scalar_traced(kernel, wl, observer);
  return lowered_execute_scalar_traced(kernel, wl, observer);
}

ExecResult execute_vectorized(const ir::LoopKernel& vec,
                              const ir::LoopKernel& scalar, Workload& wl) {
  if (executor_kind() == ExecutorKind::Reference)
    return reference_execute_vectorized(vec, scalar, wl);
  return lowered_execute_vectorized(vec, scalar, wl);
}

}  // namespace veccost::machine
