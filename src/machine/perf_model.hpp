// Detailed analytic performance model — the measurement substrate.
//
// This model stands in for the paper's physical ARM board: it produces the
// "measured" execution times that the cost models under study are evaluated
// against. Per widened-iteration cycles are estimated as a soft maximum of
// three bounds —
//   * throughput: per-execution-resource sums of reciprocal throughputs plus
//     an issue-width ceiling,
//   * latency: the longest loop-carried dependence chain through phis
//     (this is what makes scalar reductions slow and vector reductions fast),
//   * memory: bytes moved per iteration over the bandwidth of the cache
//     level the kernel's footprint resides in, with strided and gathered
//     accesses paying wasted-bandwidth factors
// — plus loop bookkeeping, vectorization prologue, horizontal-reduction
// tails and masked-store emulation where applicable. A deterministic
// per-(kernel,target,vf) jitter of +-1.5% mimics measurement noise.
//
// Crucially, none of this detail is visible to the cost models being
// evaluated: they see only coarse per-class cost tables, as in a compiler.
#pragma once

#include <cstdint>

#include "ir/loop.hpp"
#include "machine/target.hpp"

namespace veccost::machine {

/// Per-loop cost decomposition for one kernel (scalar or widened).
struct PerfEstimate {
  double cycles_per_body = 0;     ///< steady-state cycles per body execution
  double throughput_bound = 0;    ///< diagnostics: the three bounds
  double latency_bound = 0;
  double memory_bound = 0;
  double entry_overhead = 0;      ///< once per loop entry (per outer iteration)
  double total_cycles = 0;        ///< full execution at problem size n
  std::int64_t body_executions = 0;
};

/// Estimate the cost of running `kernel` (vf == 1 or widened) at size n.
/// For widened kernels this covers the main vector loop only (no remainder).
[[nodiscard]] PerfEstimate estimate(const ir::LoopKernel& kernel,
                                    const TargetDesc& target, std::int64_t n);

/// Relative amplitude of the deterministic per-(kernel,target,vf)
/// measurement jitter; 0.015 mimics a quiet benchmarking setup, 0.05-0.10
/// a noisy wall-clock one.
inline constexpr double kDefaultNoise = 0.015;

/// Measured execution time in cycles of the scalar kernel at size n,
/// including deterministic jitter.
[[nodiscard]] double measure_scalar_cycles(const ir::LoopKernel& scalar,
                                           const TargetDesc& target,
                                           std::int64_t n,
                                           double noise = kDefaultNoise);

/// Measured execution time of the vectorized kernel (main loop + scalar
/// remainder + prologue/reduction tails), including deterministic jitter.
[[nodiscard]] double measure_vector_cycles(const ir::LoopKernel& vec,
                                           const ir::LoopKernel& scalar,
                                           const TargetDesc& target,
                                           std::int64_t n,
                                           double noise = kDefaultNoise);

/// Measured time of a loop that was vectorized behind a runtime overlap
/// check that FAILS at runtime: the scalar path runs, plus the per-entry
/// check cost. Use for VectorizedLoop::runtime_check kernels instead of
/// measure_vector_cycles.
[[nodiscard]] double measure_versioned_scalar_cycles(
    const ir::LoopKernel& scalar, const TargetDesc& target, std::int64_t n,
    double noise = kDefaultNoise);

/// Measured speedup = scalar time / vector time.
[[nodiscard]] double measure_speedup(const ir::LoopKernel& vec,
                                     const ir::LoopKernel& scalar,
                                     const TargetDesc& target, std::int64_t n,
                                     double noise = kDefaultNoise);

}  // namespace veccost::machine

// --- SLP measurement -------------------------------------------------------
#include "vectorizer/vplan.hpp"

namespace veccost::machine {

/// Measured cycles when the kernel runs with the given SLP pack plan applied
/// (packed groups execute as vector ops, the rest stays scalar; iteration
/// structure is unchanged). Includes the same deterministic jitter scheme.
[[nodiscard]] double measure_slp_cycles(const ir::LoopKernel& scalar,
                                        const vectorizer::SlpPlan& plan,
                                        const TargetDesc& target, std::int64_t n);

}  // namespace veccost::machine
