#include "machine/lowering.hpp"

#include "obs/metrics.hpp"
#include "support/error.hpp"

namespace veccost::machine {

using ir::Instruction;
using ir::LoopKernel;
using ir::Opcode;
using ir::ReductionKind;
using ir::ValueId;

namespace {

ReductionKind reduce_kind_of(Opcode op) {
  switch (op) {
    case Opcode::ReduceAdd: return ReductionKind::Sum;
    case Opcode::ReduceMul: return ReductionKind::Prod;
    case Opcode::ReduceMin: return ReductionKind::Min;
    case Opcode::ReduceMax: return ReductionKind::Max;
    case Opcode::ReduceOr: return ReductionKind::Or;
    default: VECCOST_FAIL("not a reduce opcode");
  }
}

/// Build the strip-mined execution plan: prove (conservatively) that
/// column-major execution is bit-identical to row-major, and classify every
/// op as column-executable or lane-serial. `op_source[i]` is the body value
/// id MicroOp i was lowered from.
void plan_strips(const LoopKernel& kernel,
                 const std::vector<ValueId>& op_source, LoweredProgram& p) {
  // Transitive phi-dependence over the SSA body. The body is topologically
  // ordered and phi update edges are payload, so one forward pass suffices.
  std::vector<char> dep(kernel.body.size(), 0);
  for (std::size_t id = 0; id < kernel.body.size(); ++id) {
    const Instruction& inst = kernel.body[id];
    if (inst.op == Opcode::Phi) {
      dep[id] = 1;
      continue;
    }
    char d = 0;
    for (const ValueId v : inst.operands)
      if (v >= 0 && dep[static_cast<std::size_t>(v)]) d = 1;
    if (inst.predicate >= 0 && dep[static_cast<std::size_t>(inst.predicate)])
      d = 1;
    if (inst.index.indirect >= 0 &&
        dep[static_cast<std::size_t>(inst.index.indirect)])
      d = 1;
    dep[id] = d;
  }

  for (std::size_t i = 0; i < p.ops.size(); ++i) {
    const MicroOp& u = p.ops[i];
    const bool is_dep = dep[static_cast<std::size_t>(op_source[i])] != 0;
    if (u.op == Opcode::Break) return;  // early exit: order is essential
    if (ir::is_memory_op(u.op)) {
      // A memory op whose address, predicate, or stored value is tied to
      // loop-carried state cannot be reordered across iterations.
      if (is_dep) return;
      p.strip_column.push_back(static_cast<std::int32_t>(i));
    } else if (u.op == Opcode::IndVar || (ir::is_elementwise(u.op) && !is_dep)) {
      p.strip_column.push_back(static_cast<std::int32_t>(i));
    } else if (ir::is_elementwise(u.op)) {
      p.strip_serial.push_back(static_cast<std::int32_t>(i));
    } else {
      return;  // cross-lane vector ops (broadcast/splice/reduce): row-major
    }
  }

  // Memory safety: column execution reorders accesses across iterations, so
  // no two accesses to a written array may ever touch the same element on
  // different iterations. Conservative proof: every access to such an array
  // is affine with the *identical* index map — then element e is touched by
  // exactly one iteration, and within it the original op order is kept.
  struct ArrayAccess {
    bool seen = false, has_store = false, indirect = false, mixed = false;
    int count = 0;
    std::int64_t lin = 0, base = 0, js = 0, ns = 0;
  };
  std::vector<ArrayAccess> acc(p.num_arrays);
  for (const MicroOp& u : p.ops) {
    if (!ir::is_memory_op(u.op)) continue;
    ArrayAccess& a = acc[static_cast<std::size_t>(u.array)];
    a.has_store = a.has_store || ir::is_store_op(u.op);
    ++a.count;
    if (u.indirect >= 0) {
      a.indirect = true;
      continue;
    }
    if (!a.seen) {
      a.seen = true;
      a.lin = u.lin;
      a.base = u.base_off;
      a.js = u.j_scale;
      a.ns = u.n_scale;
    } else if (u.lin != a.lin || u.base_off != a.base || u.j_scale != a.js ||
               u.n_scale != a.ns) {
      a.mixed = true;
    }
  }
  // The identical-map argument is injective only when the inner coefficient
  // is nonzero; with lin == 0 every iteration touches the SAME element, so a
  // written array may carry at most that one access (a lone store executes
  // its lanes in iteration order and nothing observes the intermediates —
  // any second access would see column-reordered state).
  for (const ArrayAccess& a : acc)
    if (a.has_store &&
        (a.indirect || a.mixed || (a.lin == 0 && a.count > 1)))
      return;

  // All-serial programs gain nothing from strips; require real column work.
  p.strip_ok = !p.strip_column.empty();
}

}  // namespace

LoweredProgram lower(const LoopKernel& kernel, int lanes) {
  VECCOST_ASSERT(lanes >= 1, "lowering needs at least one lane");
  VECCOST_SPAN("lowering.lower_ns");
  VECCOST_COUNTER_ADD("lowering.programs", 1);
  LoweredProgram p;
  p.name = kernel.name;
  p.lanes = lanes;
  p.num_values = static_cast<std::int32_t>(kernel.body.size());
  p.num_arrays = kernel.arrays.size();
  p.start = kernel.trip.start;
  p.step = kernel.trip.step;

  const auto slot = [lanes](ValueId v) -> std::int32_t {
    return v == ir::kNoValue ? -1 : static_cast<std::int32_t>(v) * lanes;
  };

  std::vector<ValueId> op_source;  // body value id each MicroOp came from
  for (std::size_t id = 0; id < kernel.body.size(); ++id) {
    const Instruction& inst = kernel.body[id];
    const std::int32_t out = slot(static_cast<ValueId>(id));
    switch (inst.op) {
      case Opcode::Const:
        p.constants.emplace_back(out, inst.const_value);
        continue;
      case Opcode::Param:
        VECCOST_ASSERT(inst.param_index >= 0 &&
                           static_cast<std::size_t>(inst.param_index) <
                               kernel.params.size(),
                       "param index out of range in " + kernel.name);
        p.constants.emplace_back(
            out, kernel.params[static_cast<std::size_t>(inst.param_index)]);
        continue;
      case Opcode::OuterIndVar:
        p.outer_slots.push_back(out);
        continue;
      case Opcode::Phi: {
        PhiPlan phi;
        phi.slot = out;
        phi.update = slot(inst.phi_update);
        VECCOST_ASSERT(phi.update >= 0, "phi without update in " + kernel.name);
        phi.init = inst.phi_init_param >= 0
                       ? kernel.params[static_cast<std::size_t>(inst.phi_init_param)]
                       : inst.phi_init;
        phi.reduction = inst.reduction;
        phi.elem = inst.type.elem;
        p.phis.push_back(phi);
        continue;
      }
      default:
        break;
    }

    MicroOp u;
    u.op = inst.op;
    u.round = rounding_of(inst.type.elem);
    u.elem = inst.type.elem;
    u.out = out;
    u.a = slot(inst.operands[0]);
    u.b = slot(inst.operands[1]);
    u.c = slot(inst.operands[2]);
    u.pred = slot(inst.predicate);
    if ((inst.op == Opcode::Div || inst.op == Opcode::Rem) &&
        ir::is_int(inst.type.elem)) {
      u.int_divide = true;
    }
    if (ir::is_reduce_op(inst.op)) u.reduce = reduce_kind_of(inst.op);
    if (ir::is_memory_op(inst.op)) {
      VECCOST_ASSERT(inst.array >= 0 &&
                         static_cast<std::size_t>(inst.array) < p.num_arrays,
                     "memory op references missing array in " + kernel.name);
      u.array = inst.array;
      const ir::MemIndex& idx = inst.index;
      if (idx.is_indirect()) {
        u.indirect = slot(idx.indirect);
        u.base_off = idx.offset;
      } else {
        u.lin = idx.scale_i * kernel.trip.step;
        u.base_off = idx.scale_i * kernel.trip.start + idx.offset;
        u.j_scale = idx.scale_j;
        u.n_scale = idx.n_scale;
      }
    }
    p.ops.push_back(u);
    op_source.push_back(static_cast<ValueId>(id));
  }
  plan_strips(kernel, op_source, p);

  // A phi whose update edge is a *different* phi would observe that phi's
  // already-committed value under a naive in-place commit; the engine stages
  // through scratch in that case (the reference interpreter reads the whole
  // pre-commit state by construction).
  for (const PhiPlan& a : p.phis) {
    for (const PhiPlan& b : p.phis) {
      if (a.slot != b.slot && a.update == b.slot) p.direct_commit = false;
    }
  }

  // Live-outs are phis (the executor's contract); map each to its ordinal.
  p.live_out_phis.reserve(kernel.live_outs.size());
  const auto phi_ids = kernel.phis();
  for (const ValueId v : kernel.live_outs) {
    const auto it = std::find(phi_ids.begin(), phi_ids.end(), v);
    VECCOST_ASSERT(it != phi_ids.end(), "live-out is not a phi in " + kernel.name);
    p.live_out_phis.push_back(static_cast<std::int32_t>(it - phi_ids.begin()));
  }
  return p;
}

}  // namespace veccost::machine
