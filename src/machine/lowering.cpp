#include "machine/lowering.hpp"

#include <sstream>

#include "analysis/nest_dependence.hpp"
#include "obs/metrics.hpp"
#include "support/error.hpp"
#include "xform/nest_transforms.hpp"

namespace veccost::machine {

using ir::Instruction;
using ir::LoopKernel;
using ir::Opcode;
using ir::ReductionKind;
using ir::ValueId;

namespace {

ReductionKind reduce_kind_of(Opcode op) {
  switch (op) {
    case Opcode::ReduceAdd: return ReductionKind::Sum;
    case Opcode::ReduceMul: return ReductionKind::Prod;
    case Opcode::ReduceMin: return ReductionKind::Min;
    case Opcode::ReduceMax: return ReductionKind::Max;
    case Opcode::ReduceOr: return ReductionKind::Or;
    default: VECCOST_FAIL("not a reduce opcode");
  }
}

/// Build the strip-mined execution plan: prove (conservatively) that
/// column-major execution is bit-identical to row-major, and classify every
/// op as column-executable or lane-serial. `op_source[i]` is the body value
/// id MicroOp i was lowered from.
void plan_strips(const LoopKernel& kernel,
                 const std::vector<ValueId>& op_source, LoweredProgram& p) {
  // Transitive phi-dependence over the SSA body. The body is topologically
  // ordered and phi update edges are payload, so one forward pass suffices.
  std::vector<char> dep(kernel.body.size(), 0);
  for (std::size_t id = 0; id < kernel.body.size(); ++id) {
    const Instruction& inst = kernel.body[id];
    if (inst.op == Opcode::Phi) {
      dep[id] = 1;
      continue;
    }
    char d = 0;
    for (const ValueId v : inst.operands)
      if (v >= 0 && dep[static_cast<std::size_t>(v)]) d = 1;
    if (inst.predicate >= 0 && dep[static_cast<std::size_t>(inst.predicate)])
      d = 1;
    if (inst.index.indirect >= 0 &&
        dep[static_cast<std::size_t>(inst.index.indirect)])
      d = 1;
    dep[id] = d;
  }

  for (std::size_t i = 0; i < p.ops.size(); ++i) {
    const MicroOp& u = p.ops[i];
    const bool is_dep = dep[static_cast<std::size_t>(op_source[i])] != 0;
    if (u.op == Opcode::Break) return;  // early exit: order is essential
    if (ir::is_memory_op(u.op)) {
      // A memory op whose address, predicate, or stored value is tied to
      // loop-carried state cannot be reordered across iterations.
      if (is_dep) return;
      p.strip_column.push_back(static_cast<std::int32_t>(i));
    } else if (u.op == Opcode::IndVar || (ir::is_elementwise(u.op) && !is_dep)) {
      p.strip_column.push_back(static_cast<std::int32_t>(i));
    } else if (ir::is_elementwise(u.op)) {
      p.strip_serial.push_back(static_cast<std::int32_t>(i));
    } else {
      return;  // cross-lane vector ops (broadcast/splice/reduce): row-major
    }
  }

  // Memory safety: column execution reorders accesses across the iterations
  // of one strip, so no two accesses to a written array may touch the same
  // element on iterations that close together. Proof per array: every access
  // must be affine with identical (lin, j_scale, n_scale); accesses with the
  // *same* base offset then touch each element from exactly one iteration
  // (injective for lin != 0), within which the column keeps op order.
  // Accesses whose bases differ by some Δ can only collide across iterations
  // |Δ / lin| apart, so they bound the strip width instead of rejecting the
  // plan (p.strip_max_lanes; a Δ not divisible by lin never collides).
  struct BaseGroup {
    std::int64_t base = 0;
    int count = 0;
    bool has_store = false;
  };
  struct ArrayAccess {
    bool seen = false, has_store = false, indirect = false, mixed = false;
    std::int64_t lin = 0, js = 0, ns = 0;
    std::int32_t ext = -1;
    std::vector<BaseGroup> groups;
  };
  std::vector<ArrayAccess> acc(p.num_arrays);
  for (const MicroOp& u : p.ops) {
    if (!ir::is_memory_op(u.op)) continue;
    ArrayAccess& a = acc[static_cast<std::size_t>(u.array)];
    const bool store = ir::is_store_op(u.op);
    a.has_store = a.has_store || store;
    if (u.indirect >= 0) {
      a.indirect = true;
      continue;
    }
    if (!a.seen) {
      a.seen = true;
      a.lin = u.lin;
      a.js = u.j_scale;
      a.ns = u.n_scale;
      a.ext = u.ext;
    } else if (u.lin != a.lin || u.j_scale != a.js || u.n_scale != a.ns ||
               u.ext != a.ext) {
      // Grand-level coefficients must match too: equal ext means the
      // per-combination grand offset is a common additive term that cancels
      // in every base delta below.
      a.mixed = true;
      continue;
    }
    BaseGroup* g = nullptr;
    for (BaseGroup& cand : a.groups)
      if (cand.base == u.base_off) g = &cand;
    if (g == nullptr) {
      a.groups.push_back({u.base_off, 0, false});
      g = &a.groups.back();
    }
    ++g->count;
    g->has_store = g->has_store || store;
  }
  for (const ArrayAccess& a : acc) {
    if (!a.has_store) continue;
    if (a.indirect || a.mixed) return;
    for (const BaseGroup& g : a.groups) {
      // lin == 0 pins a group to one element on every iteration: a lone
      // store executes its lanes in iteration order and nothing observes the
      // intermediates, but any second access in the group would see
      // column-reordered state. (Other base groups touch other elements.)
      if (a.lin == 0 && g.has_store && g.count > 1) return;
      for (const BaseGroup& h : a.groups) {
        if (&h == &g || (!g.has_store && !h.has_store)) continue;
        if (a.lin == 0) continue;  // distinct fixed elements never collide
        const std::int64_t delta = h.base - g.base;
        if (delta % a.lin != 0) continue;  // never lands on the same element
        const std::int64_t dist = std::abs(delta / a.lin);
        p.strip_max_lanes = std::min(p.strip_max_lanes, dist);
      }
    }
  }
  if (p.strip_max_lanes < 2) return;  // a 1-wide strip is just row-major

  // All-serial programs gain nothing from strips; require real column work.
  p.strip_ok = !p.strip_column.empty();
}

/// Interchange legality for the transposed machine path: running the
/// innermost level pair (outer j = the LAST nest level, inner i) in (i, j)
/// order must preserve every dependence. Grand levels (everything above the
/// last one) are unaffected — each grand combination completes a whole
/// transposed sweep, so combination boundaries stay barriers in both orders
/// and only intra-combination reordering matters. With original order
/// (j, i)-lexicographic, the flip is only observable through same-element
/// access pairs whose distance vector has dj > 0 and di < 0 — those execute
/// in the opposite order afterwards. Pairs with di == 0 are reordered only
/// within the transposed lane dimension and are bounded by plan_strips on
/// the transposed program; di > 0 pairs keep their order (i is the
/// sequential dimension on both sides).
bool interchange_legal(const LoopKernel& kernel) {
  if (kernel.nest.empty()) return false;
  const ir::LoopLevel& jl = kernel.nest.levels.back();
  const std::size_t last = kernel.nest.size() - 1;
  if (jl.trip < 2) return false;
  if (jl.trip > 4096) return false;  // keeps the dj scan bounded
  if (kernel.trip.num != 0 || kernel.trip.step <= 0) return false;
  const std::int64_t iters = kernel.trip.iterations(0);  // n-independent
  if (iters < 1) return false;
  for (const Instruction& inst : kernel.body) {
    if (inst.op == Opcode::Phi || inst.op == Opcode::Break) return false;
    // The inner induction VALUE must coincide with the engine's outer index
    // when it is used as data (the outer-slot fill provides the raw index).
    if (inst.op == Opcode::IndVar &&
        (kernel.trip.start != 0 || kernel.trip.step != 1))
      return false;
    // Cross-lane ops reduce/shuffle over the lane dimension, which the
    // interchange re-aims at outer iterations — different semantics.
    if (inst.op == Opcode::Broadcast || inst.op == Opcode::Splice ||
        ir::is_reduce_op(inst.op))
      return false;
  }

  struct Group {
    std::int64_t base = 0;
    bool has_store = false;
  };
  struct Arr {
    bool seen = false, has_store = false, indirect = false, mixed = false;
    std::int64_t lin = 0, ns = 0;
    std::vector<std::int64_t> outer;
    std::vector<Group> groups;
  };
  std::vector<Arr> acc(kernel.arrays.size());
  for (const Instruction& inst : kernel.body) {
    if (!ir::is_memory_op(inst.op)) continue;
    Arr& a = acc[static_cast<std::size_t>(inst.array)];
    const bool store = ir::is_store_op(inst.op);
    a.has_store = a.has_store || store;
    if (inst.index.is_indirect()) {
      a.indirect = true;
      continue;
    }
    // Same folded form as the lowering: element = base + lin*i_idx + js*dj
    // (dj in raw j indices) + grand-level terms. Requiring equal FULL outer
    // coefficient vectors makes the grand contribution a common additive
    // term within each combination, so it cancels in every base delta below.
    const std::int64_t lin = inst.index.scale_i * kernel.trip.step;
    const std::int64_t base =
        inst.index.scale_i * kernel.trip.start + inst.index.offset;
    if (!a.seen) {
      a.seen = true;
      a.lin = lin;
      a.outer = inst.index.outer;
      a.ns = inst.index.n_scale;
    } else if (lin != a.lin || inst.index.outer != a.outer ||
               inst.index.n_scale != a.ns) {
      a.mixed = true;
      continue;
    }
    Group* g = nullptr;
    for (Group& cand : a.groups)
      if (cand.base == base) g = &cand;
    if (g == nullptr) {
      a.groups.push_back({base, false});
      g = &a.groups.back();
    }
    g->has_store = g->has_store || store;
  }
  for (const Arr& a : acc) {
    if (!a.has_store) continue;
    if (a.indirect || a.mixed) return false;
    // Effective per-raw-j-index coefficient; the js*jl.start part is common
    // to every access of the array (equal outer vectors), so it cancels.
    const std::int64_t js =
        (last < a.outer.size() ? a.outer[last] : 0) * jl.step;
    for (const Group& g : a.groups) {
      for (const Group& h : a.groups) {
        if (!g.has_store && !h.has_store) continue;
        // Same element at distance (dj, di): lin*di + js*dj = Δ. Reject any
        // solution with dj > 0 and -(iters-1) <= di <= -1.
        const std::int64_t delta = h.base - g.base;
        for (std::int64_t dj = 1; dj < jl.trip; ++dj) {
          const std::int64_t rem = delta - js * dj;
          if (a.lin == 0) {
            if (rem == 0 && iters > 1) return false;  // collides at every di
            continue;
          }
          if (rem % a.lin != 0) continue;
          const std::int64_t di = rem / a.lin;
          if (di <= -1 && di >= -(iters - 1)) return false;
        }
      }
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Fusion post-pass: peephole-match adjacent micro-ops into SuperOps whose
// intermediate values travel in registers instead of through the slot array.
// ---------------------------------------------------------------------------

[[nodiscard]] bool is_load_family(Opcode op) {
  return op == Opcode::Load || op == Opcode::Gather ||
         op == Opcode::StridedLoad;
}

[[nodiscard]] std::uint8_t handler_of_single(const MicroOp& u) {
  if (u.op == Opcode::IndVar) return kHandlerIndVar;
  if (is_load_family(u.op)) return kHandlerLoad;
  if (ir::is_store_op(u.op)) return kHandlerStore;
  if (u.op == Opcode::Break) return kHandlerBreak;
  if (u.op == Opcode::Broadcast) return kHandlerBroadcast;
  if (u.op == Opcode::Splice) return kHandlerSplice;
  if (ir::is_reduce_op(u.op)) return kHandlerReduce;
  return kHandlerElem;
}

/// Per-value use counts over the whole program: every operand, predicate, or
/// indirect-index reference from any op, plus every phi update edge. A fused
/// producer whose only uses are the substituted consumer operands needs no
/// slot write at all.
[[nodiscard]] std::vector<std::int32_t> count_uses(const LoweredProgram& p) {
  std::vector<std::int32_t> uses(
      static_cast<std::size_t>(p.num_values), 0);
  const auto note = [&](std::int32_t slot_base) {
    if (slot_base >= 0)
      ++uses[static_cast<std::size_t>(slot_base / p.lanes)];
  };
  for (const MicroOp& u : p.ops) {
    note(u.a);
    note(u.b);
    note(u.c);
    note(u.pred);
    note(u.indirect);
  }
  for (const PhiPlan& phi : p.phis) note(phi.update);
  return uses;
}

/// Substitution mask: which of `g`'s value operands read `out`. Predicates
/// and indirect indices are never substituted (the producer's slot write
/// covers them via keep_first), except IndexLoad which substitutes the
/// indirect index explicitly.
[[nodiscard]] std::uint8_t sub_mask(const MicroOp& g, std::int32_t out) {
  std::uint8_t sub = 0;
  if (g.a == out) sub |= kSubA;
  if (g.b == out) sub |= kSubB;
  if (g.c == out) sub |= kSubC;
  return sub;
}

[[nodiscard]] int popcount8(std::uint8_t v) {
  int n = 0;
  for (; v; v = static_cast<std::uint8_t>(v & (v - 1))) ++n;
  return n;
}

/// Try to fuse the pair (and optionally triple) of ops starting at position
/// `i` of `order`. On success fills `s` and returns the number of ops
/// consumed (2 or 3); returns 0 when no pattern matches.
///
/// `column` relaxes the row-major aliasing restriction on LoadOpStore: in a
/// strip column the plan_strips proof already guarantees no element is
/// touched by two iterations, so interleaving the load/store of different
/// lanes within one unit is safe even for same-array copies. Row-major at
/// lanes > 1 must keep all loads of a block before its stores unless the
/// arrays differ.
int try_fuse(const LoweredProgram& p, const std::vector<std::int32_t>& order,
             std::size_t i, const std::vector<std::int32_t>& uses,
             bool column, SuperOp& s) {
  const std::int32_t fi = order[i];
  const MicroOp& f = p.ops[static_cast<std::size_t>(fi)];
  if (i + 1 >= order.size()) return 0;
  const std::int32_t gi = order[i + 1];
  const MicroOp& g = p.ops[static_cast<std::size_t>(gi)];

  const auto finish_pair = [&](FusedKind kind, std::uint8_t handler,
                               std::uint8_t sub) {
    s.kind = kind;
    s.handler = handler;
    s.sub = sub;
    s.first = fi;
    s.second = gi;
    s.keep_first =
        uses[static_cast<std::size_t>(f.out / p.lanes)] > popcount8(sub);
    return 2;
  };

  // IndexLoad: any slot-producing op feeding the indirect index of a gather/
  // scatter-free load. The index op's value is used as `(int64)v + base_off`.
  if ((f.op == Opcode::IndVar || is_load_family(f.op) ||
       ir::is_elementwise(f.op)) &&
      is_load_family(g.op) && g.indirect == f.out) {
    return finish_pair(FusedKind::IndexLoad, kHandlerIndexLoad, kSubIndirect);
  }

  if (is_load_family(f.op) && ir::is_elementwise(g.op)) {
    const std::uint8_t sub = sub_mask(g, f.out);
    if (sub != 0) {
      // Load -> op -> store triple: the elementwise value feeds exactly one
      // store's data operand.
      if (i + 2 < order.size()) {
        const std::int32_t hi = order[i + 2];
        const MicroOp& h = p.ops[static_cast<std::size_t>(hi)];
        const bool alias_safe =
            column || p.lanes == 1 || h.array != f.array;
        if (ir::is_store_op(h.op) && h.a == g.out && alias_safe &&
            h.indirect != g.out && h.pred != g.out) {
          s.kind = FusedKind::LoadOpStore;
          s.handler = kHandlerLoadOpStore;
          s.sub = sub;
          s.sub2 = kSubA;
          s.first = fi;
          s.second = gi;
          s.third = hi;
          s.keep_first =
              uses[static_cast<std::size_t>(f.out / p.lanes)] > popcount8(sub);
          s.keep_second = uses[static_cast<std::size_t>(g.out / p.lanes)] > 1;
          return 3;
        }
      }
      return finish_pair(FusedKind::LoadOp, kHandlerLoadOp, sub);
    }
  }

  // Multiply-accumulate: Mul feeding an Add/Sub. Both ops keep their own
  // rounding step, so this is a fission of dispatch only, not an FMA.
  if (f.op == Opcode::Mul && (g.op == Opcode::Add || g.op == Opcode::Sub) &&
      ir::is_elementwise(f.op)) {
    const std::uint8_t sub = sub_mask(g, f.out);
    if (sub != 0) return finish_pair(FusedKind::MulAdd, kHandlerMulAdd, sub);
  }

  // Op-store: elementwise value consumed as a store's data operand.
  if (ir::is_elementwise(f.op) && ir::is_store_op(g.op) && g.a == f.out &&
      g.indirect != f.out && g.pred != f.out) {
    return finish_pair(FusedKind::OpStore, kHandlerOpStore, kSubA);
  }

  return 0;
}

/// Build a fused schedule over `order` (indices into `p.ops`). Appends one
/// SuperOp per dispatch unit; unfused ops become FusedKind::None singles.
/// Returns the number of micro-ops absorbed into superop tails.
std::int32_t build_schedule(const LoweredProgram& p,
                            const std::vector<std::int32_t>& order,
                            const std::vector<std::int32_t>& uses, bool column,
                            std::vector<SuperOp>& out) {
  std::int32_t absorbed = 0;
  std::size_t i = 0;
  while (i < order.size()) {
    SuperOp s;
    const int consumed = try_fuse(p, order, i, uses, column, s);
    if (consumed > 0) {
      out.push_back(s);
      absorbed += consumed - 1;
      i += static_cast<std::size_t>(consumed);
      continue;
    }
    const MicroOp& u = p.ops[static_cast<std::size_t>(order[i])];
    // Drop dead induction variables: once every affine subscript has folded
    // the index into its (lin, base_off) form, the IndVar op often has no
    // readers left. It is pure (no memory access, cannot throw), so skipping
    // it is unobservable — slots are internal state.
    if (u.op == ir::Opcode::IndVar &&
        uses[static_cast<std::size_t>(u.out / p.lanes)] == 0) {
      ++i;
      continue;
    }
    s.kind = FusedKind::None;
    s.handler = handler_of_single(u);
    s.first = order[i];
    out.push_back(s);
    ++i;
  }
  return absorbed;
}

/// The lowering post-pass: fuse the row-major body into `schedule` (with the
/// kHandlerEnd terminator the threaded dispatch loop relies on) and the strip
/// column into `fused_column`.
void fuse_program(LoweredProgram& p) {
  const std::vector<std::int32_t> uses = count_uses(p);
  std::vector<std::int32_t> row_order(p.ops.size());
  for (std::size_t i = 0; i < p.ops.size(); ++i)
    row_order[i] = static_cast<std::int32_t>(i);
  p.fused_ops = build_schedule(p, row_order, uses, /*column=*/false,
                               p.schedule);
  SuperOp end;
  end.kind = FusedKind::None;
  end.handler = kHandlerEnd;
  p.schedule.push_back(end);
  if (p.strip_ok)
    p.fused_ops += build_schedule(p, p.strip_column, uses, /*column=*/true,
                                  p.fused_column);
}

}  // namespace

namespace {

/// Shared body of lower() and lower_interchanged(). With `interchanged` the
/// lane dimension runs over the kernel's LAST outer level (raw indices
/// 0..trip-1 of that level) and the engine's outer index runs over the
/// kernel's inner iterations; memory coefficients are transposed to match.
/// Callers must have checked interchange_legal() first. Levels above the
/// last one ("grand" levels) are identical in both modes: their induction
/// values are installed per combination via grand_slots, and their subscript
/// contribution rides the per-op ext offset.
LoweredProgram lower_impl(const LoopKernel& kernel, int lanes,
                          bool interchanged) {
  VECCOST_ASSERT(lanes >= 1, "lowering needs at least one lane");
  VECCOST_SPAN("lowering.lower_ns");
  VECCOST_COUNTER_ADD("lowering.programs", 1);
  LoweredProgram p;
  p.name = kernel.name;
  p.lanes = lanes;
  p.num_values = static_cast<std::int32_t>(kernel.body.size());
  p.num_arrays = kernel.arrays.size();
  p.interchanged = interchanged;
  // Full-nest index of the level the engine's `j` (normal) or lane dimension
  // (interchanged) runs over; every level below `last` is grand.
  const std::size_t last = kernel.nest.empty() ? 0 : kernel.nest.size() - 1;
  if (interchanged) {
    // Lanes cover raw indices of the last outer level; do_indvar must yield
    // its induction VALUE start + (m + l) * step.
    VECCOST_ASSERT(!kernel.nest.empty(),
                   "interchanged lowering needs an outer level");
    p.start = kernel.nest.levels[last].start;
    p.step = kernel.nest.levels[last].step;
  } else {
    p.start = kernel.trip.start;
    p.step = kernel.trip.step;
  }

  const auto slot = [lanes](ValueId v) -> std::int32_t {
    return v == ir::kNoValue ? -1 : static_cast<std::int32_t>(v) * lanes;
  };

  // Dedup grand-level coefficient vectors into ext_scales; -1 = no grand
  // dependence (always the case at depth <= 2, keeping legacy programs
  // structurally identical).
  const auto ext_of = [&p, last](const ir::MemIndex& idx) -> std::int32_t {
    std::vector<std::int64_t> gc(last, 0);
    bool any = false;
    for (std::size_t g = 0; g < last; ++g) {
      gc[g] = idx.outer_scale(g);
      any = any || gc[g] != 0;
    }
    if (!any) return -1;
    for (std::size_t e = 0; e < p.ext_scales.size(); ++e)
      if (p.ext_scales[e] == gc) return static_cast<std::int32_t>(e);
    p.ext_scales.push_back(std::move(gc));
    return static_cast<std::int32_t>(p.ext_scales.size()) - 1;
  };

  std::vector<ValueId> op_source;  // body value id each MicroOp came from
  for (std::size_t id = 0; id < kernel.body.size(); ++id) {
    const Instruction& inst = kernel.body[id];
    const std::int32_t out = slot(static_cast<ValueId>(id));
    switch (inst.op) {
      case Opcode::Const:
        p.constants.emplace_back(out, inst.const_value);
        continue;
      case Opcode::Param:
        VECCOST_ASSERT(inst.param_index >= 0 &&
                           static_cast<std::size_t>(inst.param_index) <
                               kernel.params.size(),
                       "param index out of range in " + kernel.name);
        p.constants.emplace_back(
            out, kernel.params[static_cast<std::size_t>(inst.param_index)]);
        continue;
      case Opcode::OuterIndVar:
        if (inst.outer_level < static_cast<int>(last)) {
          // Grand level: its induction value is constant within a
          // combination and installed by set_grand_values.
          p.grand_slots.emplace_back(out, inst.outer_level);
          continue;
        }
        if (interchanged) break;  // becomes the lane induction (IndVar op)
        p.outer_slots.push_back(out);
        continue;
      case Opcode::IndVar:
        if (interchanged) {
          // Legality guarantees start == 0, step == 1, so the inner
          // induction VALUE equals this program's outer index and the
          // engine's outer-slot fill provides it.
          p.outer_slots.push_back(out);
          continue;
        }
        break;
      case Opcode::Phi: {
        PhiPlan phi;
        phi.slot = out;
        phi.update = slot(inst.phi_update);
        VECCOST_ASSERT(phi.update >= 0, "phi without update in " + kernel.name);
        phi.init = inst.phi_init_param >= 0
                       ? kernel.params[static_cast<std::size_t>(inst.phi_init_param)]
                       : inst.phi_init;
        phi.reduction = inst.reduction;
        phi.elem = inst.type.elem;
        p.phis.push_back(phi);
        continue;
      }
      default:
        break;
    }

    MicroOp u;
    u.op = interchanged && inst.op == Opcode::OuterIndVar ? Opcode::IndVar
                                                          : inst.op;
    u.round = rounding_of(inst.type.elem);
    u.elem = inst.type.elem;
    u.out = out;
    u.a = slot(inst.operands[0]);
    u.b = slot(inst.operands[1]);
    u.c = slot(inst.operands[2]);
    u.pred = slot(inst.predicate);
    if ((inst.op == Opcode::Div || inst.op == Opcode::Rem) &&
        ir::is_int(inst.type.elem)) {
      u.int_divide = true;
    }
    if (ir::is_reduce_op(inst.op)) u.reduce = reduce_kind_of(inst.op);
    if (ir::is_memory_op(inst.op)) {
      VECCOST_ASSERT(inst.array >= 0 &&
                         static_cast<std::size_t>(inst.array) < p.num_arrays,
                     "memory op references missing array in " + kernel.name);
      u.array = inst.array;
      const ir::MemIndex& idx = inst.index;
      if (idx.is_indirect()) {
        u.indirect = slot(idx.indirect);
        u.base_off = idx.offset;
      } else if (interchanged) {
        // Transposed coefficients: lanes walk the last outer level (raw
        // indices, so its start/step fold into lin/base), the program's
        // outer index walks the original inner induction.
        const ir::LoopLevel& jl = kernel.nest.levels[last];
        u.lin = idx.outer_scale(last) * jl.step;
        u.j_scale = idx.scale_i * kernel.trip.step;
        u.base_off = idx.scale_i * kernel.trip.start +
                     idx.outer_scale(last) * jl.start + idx.offset;
        u.n_scale = idx.n_scale;
        u.ext = ext_of(idx);
      } else {
        u.lin = idx.scale_i * kernel.trip.step;
        u.base_off = idx.scale_i * kernel.trip.start + idx.offset;
        u.j_scale = idx.outer_scale(last);
        u.n_scale = idx.n_scale;
        u.ext = ext_of(idx);
      }
    }
    p.ops.push_back(u);
    op_source.push_back(static_cast<ValueId>(id));
  }
  plan_strips(kernel, op_source, p);
  fuse_program(p);
  VECCOST_COUNTER_ADD("engine.dispatch.fused_ops", p.fused_ops);
  if (!p.ops.empty()) {
    // Share of micro-ops dispatched as part of a multi-op unit, in percent
    // (row-major schedule; a coarse fusion-coverage health signal).
    std::int64_t covered = 0;
    for (const SuperOp& s : p.schedule)
      if (s.kind != FusedKind::None)
        covered += 2 + (s.third >= 0 ? 1 : 0);
    VECCOST_GAUGE_SET("engine.dispatch.superop_ratio",
                      100 * covered / static_cast<std::int64_t>(p.ops.size()));
  }

  // A phi whose update edge is a *different* phi would observe that phi's
  // already-committed value under a naive in-place commit; the engine stages
  // through scratch in that case (the reference interpreter reads the whole
  // pre-commit state by construction).
  for (const PhiPlan& a : p.phis) {
    for (const PhiPlan& b : p.phis) {
      if (a.slot != b.slot && a.update == b.slot) p.direct_commit = false;
    }
  }

  // Live-outs are phis (the executor's contract); map each to its ordinal.
  p.live_out_phis.reserve(kernel.live_outs.size());
  const auto phi_ids = kernel.phis();
  for (const ValueId v : kernel.live_outs) {
    const auto it = std::find(phi_ids.begin(), phi_ids.end(), v);
    VECCOST_ASSERT(it != phi_ids.end(), "live-out is not a phi in " + kernel.name);
    p.live_out_phis.push_back(static_cast<std::int32_t>(it - phi_ids.begin()));
  }
  return p;
}

}  // namespace

LoweredProgram lower(const LoopKernel& kernel, int lanes) {
  return lower_impl(kernel, lanes, /*interchanged=*/false);
}

std::unique_ptr<LoweredProgram> lower_interchanged(const LoopKernel& kernel,
                                                   int lanes, int a, int b) {
  const int depth = static_cast<int>(kernel.depth());
  if (depth < 2) return nullptr;
  if (a < 0) {
    a = depth - 2;  // default: the innermost adjacent pair
    b = depth - 1;
  }
  if (b != a + 1 || a < 0 || b >= depth) return nullptr;

  if (b == depth - 1) {
    // Innermost pair: the transposed machine path (lanes walk the last
    // outer level). interchange_legal is the complete legality story here.
    if (!interchange_legal(kernel)) return nullptr;
    VECCOST_COUNTER_ADD("lowering.interchanged_programs", 1);
    return std::make_unique<LoweredProgram>(
        lower_impl(kernel, lanes, /*interchanged=*/true));
  }

  // Outer-outer pair: classical direction-vector legality, then an IR-level
  // level swap followed by NORMAL lowering (the machine never sees the swap;
  // `interchanged` stays false).
  if (kernel.vf != 1) return nullptr;
  if (!analysis::interchange_legal_at(kernel, static_cast<std::size_t>(a),
                                      static_cast<std::size_t>(b)))
    return nullptr;
  const xform::NestTransformResult swapped =
      xform::interchange_levels(kernel, a, b);
  if (!swapped.ok) return nullptr;
  VECCOST_COUNTER_ADD("lowering.interchanged_programs", 1);
  return std::make_unique<LoweredProgram>(
      lower_impl(swapped.kernel, lanes, /*interchanged=*/false));
}

const char* to_string(FusedKind kind) {
  switch (kind) {
    case FusedKind::None: return "none";
    case FusedKind::LoadOp: return "load-op";
    case FusedKind::OpStore: return "op-store";
    case FusedKind::LoadOpStore: return "load-op-store";
    case FusedKind::MulAdd: return "mul-add";
    case FusedKind::IndexLoad: return "index-load";
  }
  return "?";
}

namespace {

void dump_schedule(std::ostringstream& os, const char* label,
                   const std::vector<SuperOp>& sched) {
  os << label << ":";
  for (const SuperOp& s : sched) {
    if (s.handler == kHandlerEnd && s.first < 0) {
      os << " end";
      continue;
    }
    os << " [" << to_string(s.kind) << " h" << static_cast<int>(s.handler)
       << " " << s.first;
    if (s.second >= 0) os << "," << s.second;
    if (s.third >= 0) os << "," << s.third;
    if (s.sub) os << " sub=" << static_cast<int>(s.sub);
    if (s.sub2) os << " sub2=" << static_cast<int>(s.sub2);
    if (s.keep_first) os << " keep1";
    if (s.keep_second) os << " keep2";
    os << "]";
  }
  os << "\n";
}

}  // namespace

std::string to_text(const LoweredProgram& p) {
  std::ostringstream os;
  os << "program " << p.name << " lanes=" << p.lanes
     << " values=" << p.num_values << " arrays=" << p.num_arrays
     << " start=" << p.start << " step=" << p.step
     << " direct_commit=" << (p.direct_commit ? 1 : 0)
     << " strip_ok=" << (p.strip_ok ? 1 : 0);
  if (p.strip_max_lanes != std::numeric_limits<std::int64_t>::max())
    os << " strip_max_lanes=" << p.strip_max_lanes;
  if (p.interchanged) os << " interchanged=1";
  os << "\n";
  for (const auto& [slot, value] : p.constants)
    os << "const s" << slot << " = " << value << "\n";
  for (const std::int32_t slot : p.outer_slots)
    os << "outer s" << slot << "\n";
  for (const auto& [slot, level] : p.grand_slots)
    os << "grand s" << slot << " level=" << level << "\n";
  for (std::size_t e = 0; e < p.ext_scales.size(); ++e) {
    os << "ext" << e << ":";
    for (const std::int64_t v : p.ext_scales[e]) os << " " << v;
    os << "\n";
  }
  for (const PhiPlan& phi : p.phis)
    os << "phi s" << phi.slot << " update=s" << phi.update
       << " init=" << phi.init << " red=" << static_cast<int>(phi.reduction)
       << " elem=" << static_cast<int>(phi.elem) << "\n";
  for (const std::int32_t idx : p.live_out_phis) os << "live phi#" << idx << "\n";
  for (std::size_t i = 0; i < p.ops.size(); ++i) {
    const MicroOp& u = p.ops[i];
    os << "op" << i << " " << ir::to_string(u.op)
       << " out=s" << u.out << " a=s" << u.a << " b=s" << u.b << " c=s" << u.c
       << " pred=s" << u.pred << " round=" << static_cast<int>(u.round);
    if (u.int_divide) os << " intdiv";
    if (ir::is_reduce_op(u.op))
      os << " red=" << static_cast<int>(u.reduce)
         << " elem=" << static_cast<int>(u.elem);
    if (u.array >= 0) {
      os << " arr=" << u.array;
      if (u.indirect >= 0)
        os << " ind=s" << u.indirect << "+" << u.base_off;
      else {
        os << " idx=" << u.lin << "*i+" << u.j_scale << "*j+" << u.n_scale
           << "*n+" << u.base_off;
        if (u.ext >= 0) os << "+ext" << u.ext;
      }
    }
    os << "\n";
  }
  if (!p.strip_column.empty() || !p.strip_serial.empty()) {
    os << "strip column:";
    for (const std::int32_t i : p.strip_column) os << " " << i;
    os << " serial:";
    for (const std::int32_t i : p.strip_serial) os << " " << i;
    os << "\n";
  }
  dump_schedule(os, "schedule", p.schedule);
  if (!p.fused_column.empty()) dump_schedule(os, "fused_column", p.fused_column);
  return os.str();
}

}  // namespace veccost::machine
