// Trace-driven cache simulator.
//
// The analytic performance model decides which cache level a kernel's
// working set lives in from its total footprint. This simulator validates
// that shortcut: it replays the kernel's actual memory trace (from the
// functional executor) through a set-associative LRU L1/L2 hierarchy and
// reports where the bytes really came from — including effects the analytic
// model approximates, such as strided accesses touching every line of a
// region and gathers thrashing the sets.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/loop.hpp"
#include "machine/target.hpp"

namespace veccost::machine {

struct CacheConfig {
  std::int64_t capacity_bytes = 32 * 1024;
  int line_bytes = 64;
  int ways = 8;
};

/// One set-associative LRU cache level. All ways live in one contiguous
/// allocation (`ways_[set * ways + w]`), and when the set count is a power
/// of two — true for every shipped target geometry — the set index and tag
/// come from a mask and shift instead of `%` and `/`. Both forms are
/// bit-identical for unsigned line numbers.
class Cache {
 public:
  explicit Cache(CacheConfig config);

  /// Access the line containing `address`; returns true on hit. Misses
  /// install the line (allocate-on-miss for loads and stores alike).
  bool access(std::uint64_t address);

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  /// Misses that displaced a valid line (as opposed to filling an empty way).
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }
  [[nodiscard]] std::size_t num_sets() const { return num_sets_; }

 private:
  struct Way {
    std::uint64_t tag = ~0ull;
    std::uint64_t last_use = 0;
    bool valid = false;
  };
  CacheConfig config_;
  std::vector<Way> ways_;  ///< num_sets_ rows of config_.ways, contiguous
  std::size_t num_sets_ = 1;
  std::uint64_t set_mask_ = 0;  ///< num_sets_ - 1, valid when pow2_sets_
  int set_shift_ = 0;           ///< log2(num_sets_), valid when pow2_sets_
  bool pow2_sets_ = false;
  std::uint64_t clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

/// Two-level hierarchy fed by a kernel's memory trace.
struct CacheSimResult {
  std::uint64_t accesses = 0;
  std::uint64_t l1_hits = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t memory_fetches = 0;  ///< lines filled from DRAM

  /// Fraction of accesses served by each level.
  [[nodiscard]] double l1_fraction() const;
  [[nodiscard]] double l2_fraction() const;
  [[nodiscard]] double dram_fraction() const;
  /// Name of the level serving the plurality of accesses ("L1"/"L2"/"DRAM").
  [[nodiscard]] std::string dominant_level() const;
};

/// Replay `kernel` at problem size n through a hierarchy built from the
/// target's L1/L2 geometry (8-way LRU, the target's cacheline size). Arrays
/// are laid out back to back with one line of padding.
[[nodiscard]] CacheSimResult simulate_cache(const ir::LoopKernel& kernel,
                                            const TargetDesc& target,
                                            std::int64_t n);

/// The analytic model's residency verdict for the same configuration
/// ("L1"/"L2"/"DRAM") — what simulate_cache checks.
[[nodiscard]] std::string analytic_residency(const ir::LoopKernel& kernel,
                                             const TargetDesc& target,
                                             std::int64_t n);

}  // namespace veccost::machine
