#include "machine/scheduler.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "analysis/features.hpp"
#include "support/error.hpp"

namespace veccost::machine {

using ir::Instruction;
using ir::LoopKernel;
using ir::OpClass;
using ir::Opcode;

namespace {

struct NodeCost {
  Resource resource = Resource::None;
  double rtp = 0;  ///< resource occupancy
  double lat = 0;  ///< result latency
  bool free = false;
};

/// Per-instruction cost, mirroring perf_model's rules (native ops, masked
/// store emulation, gather per-lane cost, strided regimes) — kept in sync by
/// the scheduler-vs-analytic agreement tests.
NodeCost node_cost(const LoopKernel& k, const TargetDesc& t,
                   const std::vector<bool>& invariant, std::size_t id) {
  const Instruction& inst = k.body[id];
  NodeCost c;
  switch (inst.op) {
    case Opcode::Const:
    case Opcode::Param:
    case Opcode::IndVar:
    case Opcode::OuterIndVar:
    case Opcode::Phi:
      c.free = true;
      return c;
    default:
      break;
  }
  if (invariant[id]) {
    c.free = true;
    return c;
  }
  const bool fp = ir::is_float(inst.type.elem);
  const OpClass cls = ir::classify(inst.op, fp);
  const bool vector = inst.type.lanes > 1;
  const int native = vector ? t.native_ops(inst.type.elem, inst.type.lanes) : 1;
  OpClass timing_cls = cls;
  if (inst.op == Opcode::StridedLoad) timing_cls = OpClass::MemLoad;
  if (inst.op == Opcode::StridedStore) timing_cls = OpClass::MemStore;
  const InstrTiming timing = vector ? t.vector_timing(timing_cls, inst.type.elem)
                                    : t.scalar_timing(timing_cls, inst.type.elem);
  c.rtp = native * timing.rthroughput;
  c.lat = timing.latency + (native - 1) * timing.rthroughput;
  if (ir::is_store_op(inst.op) && inst.predicate != ir::kNoValue)
    c.rtp += vector ? native * t.masked_store_penalty_cycles : 2.0;
  if (vector && (inst.op == Opcode::Gather || inst.op == Opcode::Scatter))
    c.rtp += inst.type.lanes * t.gather_per_lane_cycles;
  if (vector &&
      (inst.op == Opcode::StridedLoad || inst.op == Opcode::StridedStore)) {
    const std::int64_t stride = inst.index.scale_i * k.trip.step;
    c.rtp *= stride == -1 ? t.reverse_penalty : t.strided_penalty;
  }
  c.resource = TargetDesc::resource_of(cls);
  return c;
}

}  // namespace

namespace detail_schedule_window {

ScheduleResult schedule_window(const LoopKernel& kernel,
                               const TargetDesc& target, int window_size) {
  const ScheduleOptions opts{window_size};
  VECCOST_ASSERT(opts.window >= 2, "scheduler window must be >= 2");
  const std::size_t body = kernel.body.size();
  const auto invariant = analysis::invariant_mask(kernel);

  std::vector<NodeCost> costs(body);
  for (std::size_t id = 0; id < body; ++id)
    costs[id] = node_cost(kernel, target, invariant, id);

  // Critical-path priority within one copy (loop-carried edges only push the
  // whole chain, so the within-copy path is the right tie-breaker). Users
  // have larger ids than their operands, so a descending pass finalizes each
  // user's priority before bumping its operands.
  std::vector<double> priority(body, 0.0);
  for (std::size_t id = 0; id < body; ++id) priority[id] = costs[id].lat;
  for (std::size_t id = body; id-- > 0;) {
    const Instruction& inst = kernel.body[id];
    auto bump = [&](ir::ValueId src) {
      if (src != ir::kNoValue)
        priority[static_cast<std::size_t>(src)] =
            std::max(priority[static_cast<std::size_t>(src)],
                     costs[static_cast<std::size_t>(src)].lat + priority[id]);
    };
    for (int i = inst.num_operands(); i-- > 0;)
      bump(inst.operands[static_cast<std::size_t>(i)]);
    if (inst.predicate != ir::kNoValue) bump(inst.predicate);
    if (inst.index.is_indirect()) bump(inst.index.indirect);
  }

  const int window = opts.window;
  const std::size_t total = body * static_cast<std::size_t>(window);
  std::vector<double> start(total, 0.0), finish(total, 0.0);
  std::vector<bool> done(total, false);

  // Map a (copy, operand) reference: uses of a phi read the PREVIOUS copy's
  // update value (or are free at copy 0).
  auto node_of = [&](int copy, ir::ValueId ref) -> std::int64_t {
    const Instruction& src = kernel.instr(ref);
    if (src.op == Opcode::Phi) {
      if (copy == 0) return -1;  // initial value: ready at time 0
      return static_cast<std::int64_t>(body) * (copy - 1) + src.phi_update;
    }
    return static_cast<std::int64_t>(body) * copy + ref;
  };

  double resource_free[4] = {0, 0, 0, 0};
  double issue_free = 0;
  const double issue_interval = 1.0 / target.issue_width;

  std::size_t scheduled = 0;
  while (scheduled < total) {
    // Find the schedulable node with the earliest start; break ties by
    // critical-path priority.
    std::int64_t best = -1;
    double best_est = std::numeric_limits<double>::infinity();
    double best_prio = -1;
    for (std::size_t n = 0; n < total; ++n) {
      if (done[n]) continue;
      const int copy = static_cast<int>(n / body);
      const auto id = static_cast<ir::ValueId>(n % body);
      const Instruction& inst = kernel.instr(id);
      double ready = 0;
      bool deps_done = true;
      auto consider = [&](ir::ValueId ref) {
        if (ref == ir::kNoValue) return;
        const std::int64_t dep = node_of(copy, ref);
        if (dep < 0) return;
        if (!done[static_cast<std::size_t>(dep)]) {
          deps_done = false;
          return;
        }
        ready = std::max(ready, finish[static_cast<std::size_t>(dep)]);
      };
      for (int i = 0; i < inst.num_operands(); ++i)
        consider(inst.operands[static_cast<std::size_t>(i)]);
      if (inst.predicate != ir::kNoValue) consider(inst.predicate);
      if (inst.index.is_indirect()) consider(inst.index.indirect);
      // In-order body issue within a copy keeps stores ordered: the previous
      // instruction of the same copy must have STARTED (not finished).
      if (id > 0 && !done[n - 1]) deps_done = false;
      if (!deps_done) continue;
      if (id > 0) ready = std::max(ready, start[n - 1]);

      const NodeCost& c = costs[static_cast<std::size_t>(id)];
      double est = ready;
      if (!c.free) {
        est = std::max(est, issue_free);
        if (c.resource != Resource::None)
          est = std::max(est,
                         resource_free[static_cast<std::size_t>(c.resource)]);
      }
      const double prio = priority[static_cast<std::size_t>(id)];
      if (est < best_est - 1e-12 ||
          (est < best_est + 1e-12 && prio > best_prio)) {
        best = static_cast<std::int64_t>(n);
        best_est = est;
        best_prio = prio;
      }
    }
    VECCOST_ASSERT(best >= 0, "scheduler deadlock");
    const auto n = static_cast<std::size_t>(best);
    const auto id = static_cast<std::size_t>(n % body);
    const NodeCost& c = costs[id];
    start[n] = best_est;
    finish[n] = best_est + std::max(c.lat, c.free ? 0.0 : c.rtp);
    if (!c.free) {
      issue_free = std::max(issue_free, best_est) + issue_interval;
      if (c.resource != Resource::None) {
        auto& rf = resource_free[static_cast<std::size_t>(c.resource)];
        rf = std::max(rf, best_est) + c.rtp;
      }
    }
    done[n] = true;
    ++scheduled;
  }

  ScheduleResult result;
  double makespan = 0;
  for (std::size_t n = 0; n < total; ++n) makespan = std::max(makespan, finish[n]);
  result.total_cycles = makespan;
  result.issue_cycle.resize(body);
  for (std::size_t id = 0; id < body; ++id)
    result.issue_cycle[id] =
        start[static_cast<std::size_t>(window - 1) * body + id];
  return result;
}

}  // namespace detail_schedule_window

ScheduleResult schedule_body(const LoopKernel& kernel, const TargetDesc& target,
                             const ScheduleOptions& opts) {
  // The greedy scheduler freely interleaves copies, so the steady-state rate
  // is extracted as a difference quotient between two window sizes (which
  // cancels the pipeline fill), not between copies of one schedule.
  ScheduleResult small =
      detail_schedule_window::schedule_window(kernel, target, opts.window);
  ScheduleResult big =
      detail_schedule_window::schedule_window(kernel, target, 2 * opts.window);
  ScheduleResult result = std::move(big);
  result.cycles_per_body =
      (result.total_cycles - small.total_cycles) / opts.window;
  // Degenerate all-free bodies: fall back to the makespan average.
  if (result.cycles_per_body <= 0)
    result.cycles_per_body = result.total_cycles / (2 * opts.window);
  return result;
}

}  // namespace veccost::machine
