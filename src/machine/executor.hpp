// Functional execution of LoopKernel IR.
//
// The executor runs kernels over concrete buffers, with two jobs:
//  * provide ground-truth *semantics*: every vectorized kernel must produce
//    the same array contents as its scalar original (the transform
//    correctness tests run exactly this comparison);
//  * drive the workloads used by the measurement substrate.
//
// Two implementations share these entry points: the default lowered engine
// (machine/lowering.hpp + machine/exec_engine.hpp), which compiles each
// kernel into a flat micro-op program and runs it over contiguous lane
// storage, and the original tree-walking reference interpreter, kept as the
// semantics oracle. They are bit-identical — live-outs, array contents,
// memory-trace order, iteration counts — which the differential suite
// (`ctest -L engine`) asserts over the whole TSVC suite. Select at runtime
// with set_executor_kind() or VECCOST_REFERENCE_EXECUTOR=1.
//
// Numeric model: all runtime values are held as doubles; operations on f32
// values are rounded to float after every instruction, identically on the
// scalar and vector paths, so array contents match bitwise when the
// transform preserves per-element operation order. Reduction live-outs are
// reassociated by vectorization (as on real hardware) and are compared with
// a tolerance instead.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "ir/loop.hpp"

namespace veccost::machine {

/// Concrete buffers for one kernel execution.
struct Workload {
  std::int64_t n = 0;
  std::vector<std::vector<double>> arrays;  ///< aligned with kernel.arrays
};

/// Deterministically initialize a workload for `kernel` at problem size `n`.
/// Float arrays get values in [1, 2); integer arrays that are used as
/// indirect subscripts get a seeded permutation-ish pattern in [0, n).
[[nodiscard]] Workload make_workload(const ir::LoopKernel& kernel,
                                     std::int64_t n, std::uint64_t seed = 0x5eed);

struct ExecResult {
  std::vector<double> live_outs;   ///< final values, aligned with kernel.live_outs
  std::int64_t iterations = 0;     ///< inner iterations executed (all outer trips)
  bool broke_early = false;        ///< a Break fired
};

/// Observer for the memory trace of an execution: called once per executed
/// memory access with the array, the element index, and the direction.
/// Skipped (predicated-off) lanes do not call it.
using AccessObserver =
    std::function<void(int array, std::int64_t element, bool is_store)>;

/// Execute a scalar kernel (vf == 1) to completion.
[[nodiscard]] ExecResult execute_scalar(const ir::LoopKernel& kernel, Workload& wl);

/// Execute a scalar kernel while streaming its memory trace to `observer`
/// in program order — the input to the trace-driven cache simulator.
[[nodiscard]] ExecResult execute_scalar_traced(const ir::LoopKernel& kernel,
                                               Workload& wl,
                                               const AccessObserver& observer);

/// Execute a vectorized kernel (vf > 1) with its scalar original as the
/// remainder loop, preserving the scalar kernel's live-out order.
[[nodiscard]] ExecResult execute_vectorized(const ir::LoopKernel& vec,
                                            const ir::LoopKernel& scalar,
                                            Workload& wl);

/// Which implementation the execute_* entry points route to.
enum class ExecutorKind {
  Lowered,    ///< lowering pass + linear engine (default)
  Reference,  ///< original tree-walking interpreter (semantics oracle)
};

/// Process-wide executor selection. Defaults to Lowered;
/// VECCOST_REFERENCE_EXECUTOR=1 in the environment flips the initial value.
[[nodiscard]] ExecutorKind executor_kind();
void set_executor_kind(ExecutorKind kind);

/// How the lowered engine dispatches micro-ops. All three modes are
/// bit-identical (asserted by `ctest -L engine` and the fuzz oracle's
/// `dispatch:<kind>` configs); they differ only in throughput.
enum class DispatchKind {
  Switch,    ///< original per-op switch loop, unfused programs
  Threaded,  ///< computed-goto over the fused superop schedule
  Batch,     ///< Threaded + SoA strip execution of widened bodies (default)
};

[[nodiscard]] const char* to_string(DispatchKind kind);

/// Parse "switch" / "threaded" / "batch" (the VECCOST_DISPATCH values);
/// throws Error on anything else.
[[nodiscard]] DispatchKind parse_dispatch_kind(std::string_view text);

/// Process-wide dispatch selection for the lowered engine. Defaults to
/// Batch; VECCOST_DISPATCH=switch|threaded|batch overrides the initial
/// value (evaluated lazily, so a bad value throws at first use).
[[nodiscard]] DispatchKind dispatch_kind();
void set_dispatch_kind(DispatchKind kind);

/// How a widened execution splits between the wide main loop and the scalar
/// remainder. The widened kernel `vec` need not share `scalar`'s iteration
/// space: a pipeline like `unroll<2>,llv` widens the *unrolled* kernel, whose
/// step is twice the scalar's, so one vec-space iteration covers two scalar
/// iterations. The wide main loop therefore runs in vec space and the scalar
/// remainder resumes at the equivalent scalar-space iteration. When the two
/// spaces coincide (plain `llv`), this degenerates to the classic
/// `(iters / vf) * vf` split.
struct VectorSplit {
  std::int64_t vec_main = 0;      ///< vec-space iterations run wide
  std::int64_t vec_iters = 0;     ///< total vec-space iterations
  std::int64_t scalar_resume = 0; ///< scalar-space iteration the remainder starts at
  std::int64_t scalar_iters = 0;  ///< total scalar-space iterations
};

/// Compute the split for executing widened `vec` against reference `scalar`
/// at problem size `n`. If no whole number of scalar iterations corresponds
/// to `(vec_iters / vf) * vf` vec iterations (possible only for exotic
/// unroll/reroll step ratios), vec_main shrinks by whole blocks until the
/// boundary is exact — at worst everything runs in the scalar remainder,
/// which is always correct.
[[nodiscard]] VectorSplit split_vector_range(const ir::LoopKernel& vec,
                                             const ir::LoopKernel& scalar,
                                             std::int64_t n);

/// The reference interpreter, callable directly regardless of the
/// process-wide selection — the oracle side of the differential suite.
[[nodiscard]] ExecResult reference_execute_scalar(const ir::LoopKernel& kernel,
                                                  Workload& wl);
[[nodiscard]] ExecResult reference_execute_scalar_traced(
    const ir::LoopKernel& kernel, Workload& wl, const AccessObserver& observer);
[[nodiscard]] ExecResult reference_execute_vectorized(
    const ir::LoopKernel& vec, const ir::LoopKernel& scalar, Workload& wl);

}  // namespace veccost::machine
