// Functional interpreter for LoopKernel IR.
//
// The executor runs kernels over concrete buffers, with two jobs:
//  * provide ground-truth *semantics*: every vectorized kernel must produce
//    the same array contents as its scalar original (the transform
//    correctness tests run exactly this comparison);
//  * drive the workloads used by the measurement substrate.
//
// Numeric model: all runtime values are held as doubles; operations on f32
// values are rounded to float after every instruction, identically on the
// scalar and vector paths, so array contents match bitwise when the
// transform preserves per-element operation order. Reduction live-outs are
// reassociated by vectorization (as on real hardware) and are compared with
// a tolerance instead.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "ir/loop.hpp"

namespace veccost::machine {

/// Concrete buffers for one kernel execution.
struct Workload {
  std::int64_t n = 0;
  std::vector<std::vector<double>> arrays;  ///< aligned with kernel.arrays
};

/// Deterministically initialize a workload for `kernel` at problem size `n`.
/// Float arrays get values in [1, 2); integer arrays that are used as
/// indirect subscripts get a seeded permutation-ish pattern in [0, n).
[[nodiscard]] Workload make_workload(const ir::LoopKernel& kernel,
                                     std::int64_t n, std::uint64_t seed = 0x5eed);

struct ExecResult {
  std::vector<double> live_outs;   ///< final values, aligned with kernel.live_outs
  std::int64_t iterations = 0;     ///< inner iterations executed (all outer trips)
  bool broke_early = false;        ///< a Break fired
};

/// Observer for the memory trace of an execution: called once per executed
/// memory access with the array, the element index, and the direction.
/// Skipped (predicated-off) lanes do not call it.
using AccessObserver =
    std::function<void(int array, std::int64_t element, bool is_store)>;

/// Execute a scalar kernel (vf == 1) to completion.
[[nodiscard]] ExecResult execute_scalar(const ir::LoopKernel& kernel, Workload& wl);

/// Execute a scalar kernel while streaming its memory trace to `observer`
/// in program order — the input to the trace-driven cache simulator.
[[nodiscard]] ExecResult execute_scalar_traced(const ir::LoopKernel& kernel,
                                               Workload& wl,
                                               const AccessObserver& observer);

/// Execute a vectorized kernel (vf > 1) with its scalar original as the
/// remainder loop, preserving the scalar kernel's live-out order.
[[nodiscard]] ExecResult execute_vectorized(const ir::LoopKernel& vec,
                                            const ir::LoopKernel& scalar,
                                            Workload& wl);

}  // namespace veccost::machine
