#include "machine/target.hpp"

#include "support/error.hpp"

namespace veccost::machine {

namespace {

const InstrTiming& pick(const TargetDesc::TimingEntry& e, ir::ScalarType t) {
  switch (t) {
    case ir::ScalarType::F32: return e.f32;
    case ir::ScalarType::F64: return e.f64;
    case ir::ScalarType::I64: return e.int_wide;
    default: return e.int_narrow;  // i8/i16/i32/i1
  }
}

}  // namespace

InstrTiming TargetDesc::scalar_timing(ir::OpClass cls, ir::ScalarType t) const {
  const auto idx = static_cast<std::size_t>(cls);
  VECCOST_ASSERT(idx < 16, "op class out of range");
  return pick(scalar_table[idx], t);
}

InstrTiming TargetDesc::vector_timing(ir::OpClass cls, ir::ScalarType t) const {
  const auto idx = static_cast<std::size_t>(cls);
  VECCOST_ASSERT(idx < 16, "op class out of range");
  return pick(vector_table[idx], t);
}

double TargetDesc::reduction_tail_cycles(ir::ScalarType t, int lanes) const {
  // log2(lanes) shuffle+op steps on the FP/SIMD pipe, ~3 cycles each, plus a
  // lane extract at the end.
  int steps = 0;
  for (int l = lanes; l > 1; l >>= 1) ++steps;
  const double step_cost = is_float(t) ? 3.0 : 2.0;
  return steps * step_cost + 2.0;
}

Resource TargetDesc::resource_of(ir::OpClass cls) {
  using ir::OpClass;
  switch (cls) {
    case OpClass::MemLoad:
    case OpClass::MemStore:
    case OpClass::MemGather:
    case OpClass::MemScatter:
      return Resource::Memory;
    case OpClass::FloatAdd:
    case OpClass::FloatMul:
    case OpClass::FloatDiv:
    case OpClass::Shuffle:
    case OpClass::Reduce:
    case OpClass::Select:
    case OpClass::Convert:
      return Resource::FloatSimd;
    case OpClass::IntArith:
    case OpClass::IntDiv:
    case OpClass::Compare:
      return Resource::Integer;
    case OpClass::Leaf:
    case OpClass::Control:
      return Resource::None;
  }
  return Resource::None;
}

}  // namespace veccost::machine
