#include "machine/cache_sim.hpp"

#include <algorithm>

#include "machine/exec_engine.hpp"
#include "machine/executor.hpp"
#include "machine/workload_pool.hpp"
#include "obs/metrics.hpp"
#include "support/error.hpp"

namespace veccost::machine {

Cache::Cache(CacheConfig config) : config_(config) {
  VECCOST_ASSERT(config_.line_bytes > 0 && config_.ways > 0 &&
                     config_.capacity_bytes >= config_.line_bytes * config_.ways,
                 "bad cache geometry");
  const std::size_t lines = static_cast<std::size_t>(
      config_.capacity_bytes / config_.line_bytes);
  num_sets_ =
      std::max<std::size_t>(1, lines / static_cast<std::size_t>(config_.ways));
  ways_.assign(num_sets_ * static_cast<std::size_t>(config_.ways), Way{});
  pow2_sets_ = (num_sets_ & (num_sets_ - 1)) == 0;
  if (pow2_sets_) {
    set_mask_ = static_cast<std::uint64_t>(num_sets_) - 1;
    set_shift_ = 0;
    while ((std::size_t{1} << set_shift_) < num_sets_) ++set_shift_;
  }
}

bool Cache::access(std::uint64_t address) {
  ++clock_;
  const std::uint64_t line = address / static_cast<std::uint64_t>(config_.line_bytes);
  std::uint64_t set_index;
  std::uint64_t tag;
  if (pow2_sets_) {
    set_index = line & set_mask_;
    tag = line >> set_shift_;
  } else {
    set_index = line % num_sets_;
    tag = line / num_sets_;
  }
  const std::size_t ways = static_cast<std::size_t>(config_.ways);
  Way* const set = ways_.data() + static_cast<std::size_t>(set_index) * ways;

  for (std::size_t w = 0; w < ways; ++w) {
    Way& way = set[w];
    if (way.valid && way.tag == tag) {
      way.last_use = clock_;
      ++hits_;
      return true;
    }
  }
  ++misses_;
  // Evict LRU (or fill an invalid way).
  Way* victim = set;
  for (std::size_t w = 0; w < ways; ++w) {
    if (!set[w].valid) {
      victim = set + w;
      break;
    }
    if (set[w].last_use < victim->last_use) victim = set + w;
  }
  if (victim->valid) ++evictions_;
  victim->valid = true;
  victim->tag = tag;
  victim->last_use = clock_;
  return false;
}

double CacheSimResult::l1_fraction() const {
  return accesses ? static_cast<double>(l1_hits) / static_cast<double>(accesses) : 0;
}
double CacheSimResult::l2_fraction() const {
  return accesses ? static_cast<double>(l2_hits) / static_cast<double>(accesses) : 0;
}
double CacheSimResult::dram_fraction() const {
  return accesses ? static_cast<double>(memory_fetches) / static_cast<double>(accesses)
                  : 0;
}

std::string CacheSimResult::dominant_level() const {
  // A bandwidth question: in steady state, where do the L1's line fills come
  // from? Near-zero fills means the working set lives in L1; otherwise the
  // majority source of fills names the level feeding the stream.
  const std::uint64_t fills = l2_hits + memory_fetches;
  if (fills * 256 <= accesses) return "L1";
  return memory_fetches > l2_hits ? "DRAM" : "L2";
}

namespace {

// Concrete tracer for the lowered engine: a struct of raw pointers instead
// of a std::function, so the per-access callback inlines into run_block.
struct CacheTracer {
  const std::uint64_t* base;
  const int* elem_bytes;
  Cache* l1;
  Cache* l2;
  CacheSimResult* result;
  const bool* measuring;

  void operator()(int array, std::int64_t element, bool /*is_store*/) const {
    const std::uint64_t addr =
        base[array] +
        static_cast<std::uint64_t>(element * elem_bytes[array]);
    const bool l1_hit = l1->access(addr);
    const bool l2_hit = l1_hit ? false : l2->access(addr);
    if (!*measuring) return;
    ++result->accesses;
    if (l1_hit) {
      ++result->l1_hits;
    } else if (l2_hit) {
      ++result->l2_hits;
    } else {
      ++result->memory_fetches;
    }
  }
};

}  // namespace

CacheSimResult simulate_cache(const ir::LoopKernel& kernel,
                              const TargetDesc& target, std::int64_t n) {
  VECCOST_ASSERT(kernel.vf == 1, "cache simulation replays the scalar kernel");
  const int line = static_cast<int>(target.cacheline_bytes);
  Cache l1({target.l1.capacity_bytes, line, 8});
  Cache l2({target.l2.capacity_bytes, line, 16});

  // Lay arrays out back to back with one line of padding.
  std::vector<std::uint64_t> base(kernel.arrays.size(), 0);
  std::vector<int> elem_bytes(kernel.arrays.size(), 0);
  std::uint64_t cursor = 0;
  for (std::size_t a = 0; a < kernel.arrays.size(); ++a) {
    base[a] = cursor;
    const auto& decl = kernel.arrays[a];
    elem_bytes[a] = ir::byte_size(decl.elem);
    cursor += static_cast<std::uint64_t>(decl.length(n) * ir::byte_size(decl.elem));
    cursor = (cursor / static_cast<std::uint64_t>(line) + 1) *
             static_cast<std::uint64_t>(line);
  }

  // Two passes: the first warms the hierarchy (benchmarks traverse their
  // arrays repeatedly — the analytic model's residency is a steady-state
  // notion), the second is measured. Workloads come from the per-thread
  // pool: the reset restores pristine contents bit-identically, so the
  // replayed trace matches a fresh make_workload exactly.
  CacheSimResult result;
  bool measuring = false;
  if (executor_kind() == ExecutorKind::Reference) {
    const AccessObserver observer = [&](int array, std::int64_t element,
                                        bool /*is_store*/) {
      const std::uint64_t addr =
          base[static_cast<std::size_t>(array)] +
          static_cast<std::uint64_t>(
              element * elem_bytes[static_cast<std::size_t>(array)]);
      const bool l1_hit = l1.access(addr);
      const bool l2_hit = l1_hit ? false : l2.access(addr);
      if (!measuring) return;
      ++result.accesses;
      if (l1_hit) {
        ++result.l1_hits;
      } else if (l2_hit) {
        ++result.l2_hits;
      } else {
        ++result.memory_fetches;
      }
    };
    for (int pass = 0; pass < 2; ++pass) {
      measuring = pass == 1;
      Workload& wl = WorkloadPool::thread_local_pool().acquire(kernel, n);
      (void)reference_execute_scalar_traced(kernel, wl, observer);
    }
  } else {
    const CacheTracer tracer{base.data(), elem_bytes.data(), &l1,
                             &l2,         &result,           &measuring};
    for (int pass = 0; pass < 2; ++pass) {
      measuring = pass == 1;
      Workload& wl = WorkloadPool::thread_local_pool().acquire(kernel, n);
      (void)lowered_execute_scalar_with(kernel, wl, tracer);
    }
  }
  // Registry totals once per simulation (never per access — the tracer is
  // the engine's per-op hot path).
  VECCOST_COUNTER_ADD("cachesim.runs", 1);
  VECCOST_COUNTER_ADD("cachesim.l1_hits", l1.hits());
  VECCOST_COUNTER_ADD("cachesim.l1_misses", l1.misses());
  VECCOST_COUNTER_ADD("cachesim.l1_evictions", l1.evictions());
  VECCOST_COUNTER_ADD("cachesim.l2_hits", l2.hits());
  VECCOST_COUNTER_ADD("cachesim.l2_misses", l2.misses());
  VECCOST_COUNTER_ADD("cachesim.l2_evictions", l2.evictions());
  return result;
}

std::string analytic_residency(const ir::LoopKernel& kernel,
                               const TargetDesc& target, std::int64_t n) {
  std::int64_t footprint = 0;
  for (const auto& a : kernel.arrays)
    footprint += a.length(n) * ir::byte_size(a.elem);
  if (footprint <= target.l1.capacity_bytes) return "L1";
  if (footprint <= target.l2.capacity_bytes) return "L2";
  return "DRAM";
}

}  // namespace veccost::machine
