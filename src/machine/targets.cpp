#include "machine/targets.hpp"

#include <vector>

#include "support/error.hpp"

namespace veccost::machine {

namespace {

using ir::OpClass;

TargetDesc::TimingEntry& entry(TargetDesc& t, bool vector, OpClass cls) {
  auto idx = static_cast<std::size_t>(cls);
  return vector ? t.vector_table[idx] : t.scalar_table[idx];
}

/// Set one class with uniform timing across element types.
void set_all(TargetDesc& t, bool vector, OpClass cls, InstrTiming timing) {
  entry(t, vector, cls) = {timing, timing, timing, timing};
}

void set_float(TargetDesc& t, bool vector, OpClass cls, InstrTiming f32,
               InstrTiming f64) {
  auto& e = entry(t, vector, cls);
  e.f32 = f32;
  e.f64 = f64;
}

void set_int(TargetDesc& t, bool vector, OpClass cls, InstrTiming narrow,
             InstrTiming wide) {
  auto& e = entry(t, vector, cls);
  e.int_narrow = narrow;
  e.int_wide = wide;
}

void fill_defaults(TargetDesc& t) {
  for (int v = 0; v < 2; ++v) {
    for (std::size_t c = 0; c < kNumOpClasses; ++c) {
      auto& e = (v ? t.vector_table : t.scalar_table)[c];
      e = {{1, 1}, {1, 1}, {1, 1}, {1, 1}};
    }
  }
}

/// Shared VL-agnostic SVE-style core: one description parameterized by the
/// implemented vector length. The ISA-level facts (predication, gathers,
/// whilelt timings) are identical across implementations; only vector_bits
/// and the bandwidth that feeds the wider datapath change.
TargetDesc sve_core(const std::string& name, int vector_bits) {
  TargetDesc t = cortex_a72();
  t.name = name;
  t.freq_ghz = 2.8;
  t.vector_bits = vector_bits;
  t.issue_width = 4;
  t.fp_units = 2;

  using ir::OpClass;
  // Full-width pipes; per-native-op timings similar to the A72's.
  set_float(t, true, OpClass::FloatAdd, {3, 1.0}, {3, 1.0});
  set_float(t, true, OpClass::FloatMul, {4, 1.0}, {4, 1.0});
  set_float(t, true, OpClass::FloatDiv, {24, 20.0}, {40, 36.0});
  set_all(t, true, OpClass::MemLoad, {5, 1.0});
  set_all(t, true, OpClass::MemStore, {1, 1.0});
  set_all(t, true, OpClass::MemGather, {9, 4.0});  // native but element-serialized
  set_all(t, true, OpClass::MemScatter, {2, 4.0});
  set_all(t, true, OpClass::IntArith, {2, 0.5});
  set_all(t, true, OpClass::Compare, {2, 0.5});
  set_all(t, true, OpClass::Select, {2, 0.5});
  set_all(t, true, OpClass::Convert, {4, 1.0});

  t.l1 = {64 * 1024, 4, 32};
  t.l2 = {1024 * 1024, 15, 24};
  t.dram = {0, 140, 12};
  t.hw_gather = true;
  t.hw_masked_store = true;  // SVE predication
  t.gather_per_lane_cycles = 1.0;
  t.reverse_penalty = 1.2;
  t.lone_strided_per_lane_cycles = 0.4;  // SVE structured/gather loads
  t.masked_store_penalty_cycles = 0.5;
  t.vec_prologue_cycles = 25.0;  // predicated loops need no scalar epilogue

  // Vector-length-agnostic predication: the whole-loop regime (llv<vl>).
  t.vl.vl_agnostic = true;
  t.vl.whilelt_cycles = 1.0;
  t.vl.predicate_op_cycles = 0.5;
  t.vl.first_fault_cycles = 2.0;
  t.vl.whole_loop_setup_cycles = 10.0;
  return t;
}

}  // namespace

TargetDesc cortex_a57() {
  TargetDesc t;
  t.name = "cortex-a57";
  t.freq_ghz = 1.9;
  t.vector_bits = 128;
  t.issue_width = 3;
  t.mem_units = 2;  // one load + one store pipe
  t.fp_units = 2;   // two 64-bit ASIMD pipes
  t.int_units = 2;

  fill_defaults(t);

  // Scalar timings (cycles): latency / reciprocal throughput.
  set_all(t, false, OpClass::MemLoad, {4, 1.0});
  set_all(t, false, OpClass::MemStore, {1, 1.0});
  set_all(t, false, OpClass::MemGather, {4, 1.0});
  set_all(t, false, OpClass::MemScatter, {1, 1.0});
  set_float(t, false, OpClass::FloatAdd, {5, 1.0}, {5, 1.0});
  set_float(t, false, OpClass::FloatMul, {5, 1.0}, {5, 1.0});
  set_float(t, false, OpClass::FloatDiv, {18, 18.0}, {32, 32.0});
  set_all(t, false, OpClass::IntArith, {1, 0.5});
  set_int(t, false, OpClass::IntDiv, {19, 19.0}, {35, 35.0});
  set_all(t, false, OpClass::Compare, {1, 0.5});
  set_all(t, false, OpClass::Select, {1, 0.5});
  set_all(t, false, OpClass::Convert, {5, 1.0});
  set_all(t, false, OpClass::Shuffle, {3, 1.0});
  set_all(t, false, OpClass::Reduce, {5, 2.0});

  // Vector timings per 128-bit ASIMD instruction. The A57 executes 128-bit
  // FP ASIMD as two 64-bit halves: reciprocal throughput 2 where a full-width
  // machine would have 1. This is the key microarchitectural fact that makes
  // naive "vector op == scalar op" cost tables overpredict speedup on ARM.
  set_all(t, true, OpClass::MemLoad, {5, 1.0});
  set_all(t, true, OpClass::MemStore, {1, 1.0});
  set_all(t, true, OpClass::MemGather, {4, 8.0});    // scalarized element loads
  set_all(t, true, OpClass::MemScatter, {1, 8.0});
  set_float(t, true, OpClass::FloatAdd, {5, 2.0}, {5, 2.0});
  set_float(t, true, OpClass::FloatMul, {5, 2.0}, {5, 2.0});
  set_float(t, true, OpClass::FloatDiv, {36, 36.0}, {64, 64.0});
  set_all(t, true, OpClass::IntArith, {3, 1.0});
  set_int(t, true, OpClass::IntDiv, {76, 76.0}, {140, 140.0});  // scalarized
  set_all(t, true, OpClass::Compare, {3, 1.0});
  set_all(t, true, OpClass::Select, {3, 1.0});
  set_all(t, true, OpClass::Convert, {5, 2.0});
  set_all(t, true, OpClass::Shuffle, {3, 1.0});
  set_all(t, true, OpClass::Reduce, {8, 4.0});

  t.l1 = {32 * 1024, 4, 16};
  t.l2 = {2 * 1024 * 1024, 21, 12};
  t.dram = {0, 180, 6};
  t.gather_per_lane_cycles = 3.0;
  t.strided_penalty = 2.0;
  t.reverse_penalty = 1.5;              // ld1 + REV
  t.lone_strided_per_lane_cycles = 2.5; // LLVM-6-era scalarization on ARM
  t.masked_store_penalty_cycles = 5.0;  // no masked stores on NEON
  t.loop_overhead_cycles = 1.0;
  t.vec_loop_overhead_cycles = 1.0;
  t.vec_prologue_cycles = 40.0;
  return t;
}

TargetDesc cortex_a72() {
  TargetDesc t = cortex_a57();
  t.name = "cortex-a72";
  t.freq_ghz = 2.3;
  // A72 has full-width 128-bit FP/ASIMD datapaths.
  set_float(t, true, OpClass::FloatAdd, {4, 1.0}, {4, 1.0});
  set_float(t, true, OpClass::FloatMul, {4, 1.0}, {4, 1.0});
  set_float(t, true, OpClass::FloatDiv, {28, 28.0}, {52, 52.0});
  set_all(t, true, OpClass::Convert, {4, 1.0});
  t.l2 = {1 * 1024 * 1024, 19, 14};
  t.dram = {0, 160, 8};
  t.lone_strided_per_lane_cycles = 2.2;
  return t;
}

TargetDesc xeon_e5_avx2() {
  TargetDesc t;
  t.name = "xeon-e5-avx2";
  t.freq_ghz = 2.6;
  t.vector_bits = 256;
  t.issue_width = 4;
  t.mem_units = 3;  // two load ports + one store port
  t.fp_units = 2;
  t.int_units = 4;

  fill_defaults(t);

  set_all(t, false, OpClass::MemLoad, {4, 0.5});
  set_all(t, false, OpClass::MemStore, {1, 1.0});
  set_all(t, false, OpClass::MemGather, {4, 0.5});
  set_all(t, false, OpClass::MemScatter, {1, 1.0});
  set_float(t, false, OpClass::FloatAdd, {3, 1.0}, {3, 1.0});
  set_float(t, false, OpClass::FloatMul, {5, 0.5}, {5, 0.5});
  set_float(t, false, OpClass::FloatDiv, {11, 7.0}, {20, 14.0});
  set_all(t, false, OpClass::IntArith, {1, 0.25});
  set_int(t, false, OpClass::IntDiv, {22, 9.0}, {39, 25.0});
  set_all(t, false, OpClass::Compare, {1, 0.25});
  set_all(t, false, OpClass::Select, {1, 0.5});
  set_all(t, false, OpClass::Convert, {4, 1.0});
  set_all(t, false, OpClass::Shuffle, {1, 1.0});
  set_all(t, false, OpClass::Reduce, {3, 1.0});

  // Per 256-bit AVX2 instruction (Haswell).
  set_all(t, true, OpClass::MemLoad, {5, 0.5});
  set_all(t, true, OpClass::MemStore, {1, 1.0});
  set_all(t, true, OpClass::MemGather, {18, 10.0});  // vgatherdps is slow
  set_all(t, true, OpClass::MemScatter, {1, 12.0});  // scalarized (no scatter)
  set_float(t, true, OpClass::FloatAdd, {3, 1.0}, {3, 1.0});
  set_float(t, true, OpClass::FloatMul, {5, 0.5}, {5, 0.5});
  set_float(t, true, OpClass::FloatDiv, {19, 13.0}, {35, 28.0});
  set_all(t, true, OpClass::IntArith, {1, 0.5});
  set_int(t, true, OpClass::IntDiv, {80, 40.0}, {160, 100.0});  // scalarized
  set_all(t, true, OpClass::Compare, {1, 0.5});
  set_all(t, true, OpClass::Select, {1, 0.5});
  set_all(t, true, OpClass::Convert, {4, 1.0});
  set_all(t, true, OpClass::Shuffle, {1, 1.0});
  set_all(t, true, OpClass::Reduce, {5, 2.0});

  t.l1 = {32 * 1024, 4, 64};
  // Modeled as the shared L3 (the 256 KiB private L2 is too small to matter
  // for TSVC-sized working sets).
  t.l2 = {20 * 1024 * 1024, 36, 24};
  t.dram = {0, 200, 16};
  t.hw_gather = true;        // AVX2 vgather
  t.hw_masked_store = true;  // vmaskmov
  t.gather_per_lane_cycles = 1.5;
  t.strided_penalty = 1.8;
  t.reverse_penalty = 1.3;               // vpermps
  t.lone_strided_per_lane_cycles = 0.8;  // shuffle-based de-interleave
  t.masked_store_penalty_cycles = 1.0;  // vmaskmovps exists
  t.loop_overhead_cycles = 0.8;
  t.vec_loop_overhead_cycles = 0.8;
  t.vec_prologue_cycles = 30.0;
  return t;
}

TargetDesc neoverse_sve256() { return sve_core("neoverse-sve256", 256); }

TargetDesc neoverse_sve512() {
  TargetDesc t = sve_core("neoverse-sve512", 512);
  // The 512-bit implementation of the same VL-agnostic description: twice
  // the lanes per native op, fed by wider cache interfaces. Everything else
  // — tables, predication timings — is shared with the 256-bit part.
  t.l1.bytes_per_cycle = 64;
  t.l2.bytes_per_cycle = 48;
  t.dram.bytes_per_cycle = 16;
  return t;
}

const std::vector<TargetDesc>& all_targets() {
  static const std::vector<TargetDesc> targets = {
      cortex_a57(), cortex_a72(), xeon_e5_avx2(), neoverse_sve256(),
      neoverse_sve512()};
  return targets;
}

const TargetDesc& target_by_name(const std::string& name) {
  for (const auto& t : all_targets())
    if (t.name == name) return t;
  std::string known;
  for (const auto& t : all_targets())
    known += (known.empty() ? "" : ", ") + t.name;
  throw Error("unknown target: " + name + " (available: " + known + ")");
}

}  // namespace veccost::machine
