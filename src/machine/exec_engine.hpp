// Linear execution engine for lowered kernel programs.
//
// `LoweredEngine` runs a `LoweredProgram` (machine/lowering.hpp) as a tight
// loop over one contiguous slot array held in a reusable `ExecContext`. Two
// compile-time parameters keep the hot path lean:
//
//  * `kStaticLanes` — 1 for scalar execution (the lane loops collapse and
//    the compiler drops them), 0 for a runtime lane count (widened bodies);
//  * `Tracer` — the memory-trace callback type. The untraced instantiation
//    uses the empty `NoTrace` functor, so it pays literally nothing; the
//    cache simulator passes its own inlined functor instead of going through
//    a `std::function`.
//
// Semantics are bit-identical to the reference interpreter in
// machine/executor.cpp — same evaluation order, same f32 rounding points,
// same bounds-check exceptions, same memory-trace order. The differential
// suite (tests/engine_test.cpp, `ctest -L engine`) enforces this over the
// full TSVC suite; consult docs/machine_model.md before touching either
// executor.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "machine/executor.hpp"
#include "machine/lowering.hpp"
#include "machine/nest_iter.hpp"
#include "support/error.hpp"

// The engine's throughput depends on the whole op-dispatch loop collapsing
// into run_range: an out-of-line call per micro-op costs more than the op
// itself. GCC's size heuristics refuse to inline the elementwise switch on
// their own, so it is marked always_inline.
#if defined(__GNUC__) || defined(__clang__)
#define VECCOST_ENGINE_INLINE inline __attribute__((always_inline))
#else
#define VECCOST_ENGINE_INLINE inline
#endif

namespace veccost::machine {

/// Strip width of the column-major execution path (LoweredProgram::strip_ok):
/// iterations per dispatch of each column op. Wide enough to amortize the
/// op-dispatch switch to noise, small enough that a strip's slot storage
/// stays L1-resident.
inline constexpr int kStripWidth = 64;

/// The untraced tracer: an empty functor the optimizer erases entirely.
struct NoTrace {
  void operator()(int /*array*/, std::int64_t /*element*/,
                  bool /*is_store*/) const {}
};

/// Adapter running a `std::function` observer through the templated engine
/// (the public `execute_scalar_traced` entry point).
struct ObserverTrace {
  const AccessObserver* observer;
  void operator()(int array, std::int64_t element, bool is_store) const {
    (*observer)(array, element, is_store);
  }
};

/// Reusable, allocation-free execution state: one flat lane array for all
/// SSA values, plus the bound workload's array pointers. Binding a program
/// only reallocates when it needs more capacity than any earlier bind.
class ExecContext {
 public:
  /// Bind `prog` to `wl`: size the slot array, fill the folded constants,
  /// and capture the array base pointers/lengths.
  void bind(const LoweredProgram& prog, Workload& wl);

  std::vector<double> slots;         ///< num_values * lanes, slot-major
  std::vector<double*> bases;        ///< workload array base pointers
  std::vector<std::int64_t> lengths; ///< workload array lengths
  std::vector<double> phi_scratch;   ///< staging for non-direct phi commits
  std::int64_t n = 0;                ///< bound problem size
};

/// Per-thread contexts for the built-in drivers; index 0 is the main body,
/// index 1 the scalar remainder of a vectorized execution.
[[nodiscard]] ExecContext& thread_exec_context(std::size_t which);

namespace detail {

/// The elementwise opcode core on already-fetched operand values — the one
/// copy of the arithmetic shared by the per-lane pointer path below and the
/// fused superop executors (which substitute a register value for one or
/// more operands). Unrounded; callers apply `u.round`.
VECCOST_ENGINE_INLINE double eval_scalar(const MicroOp& u, double av,
                                         double bv, double cv,
                                         const std::string& name) {
  using ir::Opcode;
  switch (u.op) {
    case Opcode::Add: return av + bv;
    case Opcode::Sub: return av - bv;
    case Opcode::Mul: return av * bv;
    case Opcode::Div:
      if (u.int_divide) {
        VECCOST_ASSERT(bv != 0.0, "integer division by zero in " + name);
        return std::trunc(av / bv);
      }
      return av / bv;
    case Opcode::Rem:
      if (u.int_divide) {
        VECCOST_ASSERT(bv != 0.0, "integer remainder by zero in " + name);
        return static_cast<double>(static_cast<std::int64_t>(av) %
                                   static_cast<std::int64_t>(bv));
      }
      return std::fmod(av, bv);
    case Opcode::Neg: return -av;
    case Opcode::FMA: return av * bv + cv;
    case Opcode::Min: return std::min(av, bv);
    case Opcode::Max: return std::max(av, bv);
    case Opcode::Abs: return std::abs(av);
    case Opcode::Sqrt: return std::sqrt(av);
    case Opcode::And:
      return static_cast<double>(static_cast<std::int64_t>(av) &
                                 static_cast<std::int64_t>(bv));
    case Opcode::Or:
      return static_cast<double>(static_cast<std::int64_t>(av) |
                                 static_cast<std::int64_t>(bv));
    case Opcode::Xor:
      return static_cast<double>(static_cast<std::int64_t>(av) ^
                                 static_cast<std::int64_t>(bv));
    case Opcode::Not:
      return static_cast<double>(~static_cast<std::int64_t>(av));
    case Opcode::Shl:
      return static_cast<double>(static_cast<std::int64_t>(av)
                                 << static_cast<std::int64_t>(bv));
    case Opcode::Shr:
      return static_cast<double>(static_cast<std::int64_t>(av) >>
                                 static_cast<std::int64_t>(bv));
    case Opcode::CmpEQ: return av == bv ? 1.0 : 0.0;
    case Opcode::CmpNE: return av != bv ? 1.0 : 0.0;
    case Opcode::CmpLT: return av < bv ? 1.0 : 0.0;
    case Opcode::CmpLE: return av <= bv ? 1.0 : 0.0;
    case Opcode::CmpGT: return av > bv ? 1.0 : 0.0;
    case Opcode::CmpGE: return av >= bv ? 1.0 : 0.0;
    case Opcode::Select: return av != 0.0 ? bv : cv;
    case Opcode::Convert: return av;  // rounding applied by the caller
    default:
      VECCOST_FAIL(std::string("unhandled opcode in engine: ") +
                   ir::to_string(u.op));
  }
}

/// One elementwise operation on already-fetched operand pointers. Absent
/// operands may be null; they fetch as 0.0, which the opcode then ignores.
template <int kStaticLanes>
VECCOST_ENGINE_INLINE double eval_elementwise(const MicroOp& u, const double* a,
                                              const double* b, const double* c,
                                              int l, const std::string& name) {
  return eval_scalar(u, a != nullptr ? a[l] : 0.0, b != nullptr ? b[l] : 0.0,
                     c != nullptr ? c[l] : 0.0, name);
}

// --- Vector-friendly strip loops ------------------------------------------
// Tight per-opcode loops over strided operand streams, used by the block
// fast paths once predicates, indirection, and bounds checks have been
// hoisted out of the lane loop. Per-lane arithmetic and rounding are exactly
// eval_scalar + apply_rounding for the covered opcodes, just without any
// per-lane dispatch — which is what lets the compiler vectorize them.

template <class F>
VECCOST_ENGINE_INLINE void binop_strip(F f, Rounding r, int L, const double* a,
                                       std::int64_t sa, const double* b,
                                       std::int64_t sb, double* out,
                                       std::int64_t so) {
  if (r == Rounding::F32) {
    for (int l = 0; l < L; ++l)
      out[l * so] = static_cast<double>(
          static_cast<float>(f(a[l * sa], b[l * sb])));
  } else {
    for (int l = 0; l < L; ++l) out[l * so] = f(a[l * sa], b[l * sb]);
  }
}

template <class F>
VECCOST_ENGINE_INLINE void unop_strip(F f, Rounding r, int L, const double* a,
                                      std::int64_t sa, double* out,
                                      std::int64_t so) {
  if (r == Rounding::F32) {
    for (int l = 0; l < L; ++l)
      out[l * so] = static_cast<double>(static_cast<float>(f(a[l * sa])));
  } else {
    for (int l = 0; l < L; ++l) out[l * so] = f(a[l * sa]);
  }
}

/// Fast strip execution of a fused elementwise consumer `g`: one operand may
/// stream from `sub_ptr` (stride `sub_stride`, the fused producer's values —
/// named by `sub`), the rest read their slots; results go to `out_ptr`
/// (stride `out_stride`). Covers the hot f32/f64 arithmetic; returns false
/// when the shape needs the generic per-lane path (other roundings, 3-operand
/// ops, integer div/rem, both-operands-substituted, ...).
VECCOST_ENGINE_INLINE bool fused_fast_elem(const MicroOp& g, std::uint8_t sub,
                                           const double* s, int L,
                                           const double* sub_ptr,
                                           std::int64_t sub_stride,
                                           double* out_ptr,
                                           std::int64_t out_stride) {
  using ir::Opcode;
  if (g.round != Rounding::None && g.round != Rounding::F32) return false;
  const bool asub = (sub & kSubA) != 0;
  const bool bsub = (sub & kSubB) != 0;
  if (asub && bsub) return false;  // v op v: rare, generic path
  const double* a;
  std::int64_t sa;
  if (asub) {
    a = sub_ptr;
    sa = sub_stride;
  } else if (g.a >= 0) {
    a = s + g.a;
    sa = 1;
  } else {
    return false;
  }
  switch (g.op) {
    case Opcode::Neg:
      unop_strip([](double x) { return -x; }, g.round, L, a, sa, out_ptr,
                 out_stride);
      return true;
    case Opcode::Abs:
      unop_strip([](double x) { return std::abs(x); }, g.round, L, a, sa,
                 out_ptr, out_stride);
      return true;
    case Opcode::Sqrt:
      unop_strip([](double x) { return std::sqrt(x); }, g.round, L, a, sa,
                 out_ptr, out_stride);
      return true;
    case Opcode::Convert:
      unop_strip([](double x) { return x; }, g.round, L, a, sa, out_ptr,
                 out_stride);
      return true;
    default:
      break;
  }
  const double* b;
  std::int64_t sb;
  if (bsub) {
    b = sub_ptr;
    sb = sub_stride;
  } else if (g.b >= 0) {
    b = s + g.b;
    sb = 1;
  } else {
    return false;
  }
  switch (g.op) {
    case Opcode::Add:
      binop_strip([](double x, double y) { return x + y; }, g.round, L, a, sa,
                  b, sb, out_ptr, out_stride);
      return true;
    case Opcode::Sub:
      binop_strip([](double x, double y) { return x - y; }, g.round, L, a, sa,
                  b, sb, out_ptr, out_stride);
      return true;
    case Opcode::Mul:
      binop_strip([](double x, double y) { return x * y; }, g.round, L, a, sa,
                  b, sb, out_ptr, out_stride);
      return true;
    case Opcode::Div:
      if (g.int_divide) return false;  // per-lane path carries the zero check
      binop_strip([](double x, double y) { return x / y; }, g.round, L, a, sa,
                  b, sb, out_ptr, out_stride);
      return true;
    case Opcode::Min:
      binop_strip([](double x, double y) { return std::min(x, y); }, g.round,
                  L, a, sa, b, sb, out_ptr, out_stride);
      return true;
    case Opcode::Max:
      binop_strip([](double x, double y) { return std::max(x, y); }, g.round,
                  L, a, sa, b, sb, out_ptr, out_stride);
      return true;
    default:
      return false;
  }
}

}  // namespace detail

template <int kStaticLanes, class Tracer>
class LoweredEngine {
 public:
  LoweredEngine(const LoweredProgram& prog, Workload& wl, ExecContext& ctx,
                Tracer tracer = Tracer{})
      : p_(prog), ctx_(ctx), tracer_(tracer) {
    VECCOST_ASSERT(kStaticLanes == 0 || kStaticLanes == prog.lanes,
                   "engine lane count does not match program");
    ctx_.bind(prog, wl);
  }

  /// Initialize phi state for a fresh inner-loop execution.
  void reset_phis() {
    const int L = lanes();
    double* const s = ctx_.slots.data();
    for (const PhiPlan& phi : p_.phis) {
      double* const state = s + phi.slot;
      if (L > 1 && phi.reduction != ir::ReductionKind::None) {
        // Vector accumulator: lane 0 carries the initial value, the rest the
        // identity element, so the horizontal reduce recovers the total.
        state[0] = phi.init;
        const double ident = reduction_identity(phi.reduction);
        for (int l = 1; l < L; ++l) state[l] = ident;
      } else {
        for (int l = 0; l < L; ++l) state[l] = phi.init;
      }
    }
  }

  /// Install the grand-level induction values for one outer combination
  /// (nest_iter.hpp's odometer): fills the grand OuterIndVar slots and
  /// computes the per-ext flat subscript offsets the address formulas add.
  /// A no-op for depth <= 2 programs (both lists are empty there).
  void set_grand_values(const std::vector<std::int64_t>& values) {
    const int L = lanes();
    double* const s = ctx_.slots.data();
    for (const auto& [base, level] : p_.grand_slots) {
      const double v =
          static_cast<double>(values[static_cast<std::size_t>(level)]);
      for (int l = 0; l < L; ++l) s[base + l] = v;
    }
    if (p_.ext_scales.empty()) return;
    ext_off_.assign(p_.ext_scales.size(), 0);
    for (std::size_t e = 0; e < p_.ext_scales.size(); ++e) {
      const std::vector<std::int64_t>& sc = p_.ext_scales[e];
      std::int64_t off = 0;
      for (std::size_t g = 0; g < sc.size(); ++g) off += sc[g] * values[g];
      ext_off_[e] = off;
    }
  }

  /// Seed phi state from externally computed scalars (epilogue handoff).
  void set_phi_inits(const std::vector<double>& inits) {
    VECCOST_ASSERT(inits.size() == p_.phis.size(), "phi init count mismatch");
    const int L = lanes();
    double* const s = ctx_.slots.data();
    for (std::size_t p = 0; p < p_.phis.size(); ++p) {
      double* const state = s + p_.phis[p].slot;
      for (int l = 0; l < L; ++l) state[l] = inits[p];
    }
  }

  /// Run iterations m in [m_lo, m_hi) at outer index j, advancing `lanes()`
  /// iterations per block. Returns the number of iterations executed (less
  /// than requested only if a Break fired).
  ///
  /// Everything loop-invariant — slot/base/length pointers, the op array, the
  /// phi plan, trip parameters — is hoisted into locals before the m loop.
  /// The compiler cannot do this itself: the ops store through double*
  /// obtained from the workload, and it will not prove those stores leave the
  /// vectors inside `ctx_`/`p_` untouched, so without the hoist it reloads
  /// them every iteration and the interpreter runs ~2.5x slower.
  std::int64_t run_range(std::int64_t j, std::int64_t m_lo, std::int64_t m_hi) {
    using ir::Opcode;
    const int L = lanes();
    double* const s = ctx_.slots.data();
    double* const* const bases = ctx_.bases.data();
    const std::int64_t* const lengths = ctx_.lengths.data();
    const MicroOp* const ops = p_.ops.data();
    const MicroOp* const ops_end = ops + p_.ops.size();
    const std::int64_t start = p_.start;
    const std::int64_t step = p_.step;
    const std::int64_t n = ctx_.n;
    const PhiPlan* const phis = p_.phis.data();
    const PhiPlan* const phis_end = phis + p_.phis.size();
    const bool has_phis = phis != phis_end;
    const bool direct_commit = p_.direct_commit;
    double* const scratch = direct_commit ? nullptr : ctx_.phi_scratch.data();

    {
      const double jv = static_cast<double>(j);
      for (const std::int32_t base : p_.outer_slots)
        for (int l = 0; l < L; ++l) s[base + l] = jv;
    }

    std::int64_t executed = 0;
    for (std::int64_t m = m_lo; m < m_hi; m += L) {
      for (const MicroOp* up = ops; up != ops_end; ++up) {
        if (!exec_op(*up, j, m, L, s, bases, lengths, n, start, step)) {
          // Count iterations up to and including the one that broke.
          broke_ = true;
          return executed + 1;
        }
      }
      executed += L;

      if (has_phis) {
        if (direct_commit) {
          for (const PhiPlan* phi = phis; phi != phis_end; ++phi)
            for (int l = 0; l < L; ++l) s[phi->slot + l] = s[phi->update + l];
        } else {
          // Stage all updates before writing any: a phi whose update is
          // another phi must observe that phi's pre-commit value.
          std::size_t o = 0;
          for (const PhiPlan* phi = phis; phi != phis_end; ++phi)
            for (int l = 0; l < L; ++l) scratch[o++] = s[phi->update + l];
          o = 0;
          for (const PhiPlan* phi = phis; phi != phis_end; ++phi)
            for (int l = 0; l < L; ++l) s[phi->slot + l] = scratch[o++];
        }
      }
    }
    return executed;
  }

  /// Run ONE partial block of `active` < lanes() iterations starting at m —
  /// the tail of a predicated whole-loop execution (llv<vl>). The unfused op
  /// list runs with the lane bound clamped to `active` (the governing
  /// predicate masks the rest), and the phi commit covers only the active
  /// lanes, so inactive reduction accumulator lanes keep their previously
  /// committed partial values for the exit-time horizontal reduce.
  /// Bit-identical regardless of the dispatch mode used for the main blocks
  /// (fused schedules equal the unfused list per lane by construction).
  std::int64_t run_partial_block(std::int64_t j, std::int64_t m, int active) {
    const int full = lanes();
    VECCOST_ASSERT(active > 0 && active < full,
                   "partial block must cover a strict lane prefix");
    double* const s = ctx_.slots.data();
    double* const* const bases = ctx_.bases.data();
    const std::int64_t* const lengths = ctx_.lengths.data();
    {
      const double jv = static_cast<double>(j);
      for (const std::int32_t base : p_.outer_slots)
        for (int l = 0; l < active; ++l) s[base + l] = jv;
    }
    for (const MicroOp& u : p_.ops) {
      const bool ok = exec_op(u, j, m, active, s, bases, lengths, ctx_.n,
                              p_.start, p_.step);
      VECCOST_ASSERT(ok, "break inside predicated block of " + p_.name);
    }
    const PhiPlan* const phis = p_.phis.data();
    const PhiPlan* const phis_end = phis + p_.phis.size();
    if (phis != phis_end)
      commit_phi_lanes(active, s, phis, phis_end, p_.direct_commit,
                       p_.direct_commit ? nullptr : ctx_.phi_scratch.data());
    return active;
  }

  /// Threaded-dispatch execution of iterations [m_lo, m_hi) at outer index
  /// j: one indirect branch per fused schedule unit (computed goto where the
  /// compiler supports `&&label`; a switch loop over the same superops
  /// elsewhere) instead of one switch per micro-op, with fused pairs keeping
  /// their intermediate value in a register. Bit-identical to run_range over
  /// the unfused op list — same evaluation order per lane, same rounding,
  /// same bounds checks, same Break accounting.
  std::int64_t run_schedule(std::int64_t j, std::int64_t m_lo,
                            std::int64_t m_hi) {
    const int L = lanes();
    double* const s = ctx_.slots.data();
    double* const* const bases = ctx_.bases.data();
    const std::int64_t* const lengths = ctx_.lengths.data();
    const MicroOp* const ops = p_.ops.data();
    const SuperOp* const sched = p_.schedule.data();
    const std::int64_t start = p_.start;
    const std::int64_t step = p_.step;
    const std::int64_t n = ctx_.n;
    const PhiPlan* const phis = p_.phis.data();
    const PhiPlan* const phis_end = phis + p_.phis.size();
    const bool has_phis = phis != phis_end;
    const bool direct_commit = p_.direct_commit;
    double* const scratch = direct_commit ? nullptr : ctx_.phi_scratch.data();

    {
      const double jv = static_cast<double>(j);
      for (const std::int32_t base : p_.outer_slots)
        for (int l = 0; l < L; ++l) s[base + l] = jv;
    }

    std::int64_t executed = 0;
#if defined(__GNUC__) || defined(__clang__)
    // One label per handler id, in kHandler* order. The array lives outside
    // the m loop, so the per-block cost is exactly one indirect goto per
    // schedule unit plus the terminator.
    const void* const labels[kHandlerCount] = {
        &&h_end,    &&h_indvar, &&h_load,   &&h_store,  &&h_break,
        &&h_bcast,  &&h_splice, &&h_reduce, &&h_elem,   &&h_ldop,
        &&h_opst,   &&h_ldopst, &&h_muladd, &&h_idxld};
    for (std::int64_t m = m_lo; m < m_hi; m += L) {
      const SuperOp* sp = sched;
      goto* labels[sp->handler];
    h_indvar:
      do_indvar(ops[sp->first], m, L, s, start, step);
      ++sp;
      goto* labels[sp->handler];
    h_load:
      do_load(ops[sp->first], j, m, L, s, bases, lengths, n);
      ++sp;
      goto* labels[sp->handler];
    h_store:
      do_store(ops[sp->first], j, m, L, s, bases, lengths, n);
      ++sp;
      goto* labels[sp->handler];
    h_break:
      if (!do_break(ops[sp->first], L, s)) {
        broke_ = true;
        return executed + 1;
      }
      ++sp;
      goto* labels[sp->handler];
    h_bcast:
      do_broadcast(ops[sp->first], L, s);
      ++sp;
      goto* labels[sp->handler];
    h_splice:
      do_splice(ops[sp->first], L, s);
      ++sp;
      goto* labels[sp->handler];
    h_reduce:
      do_reduce(ops[sp->first], L, s);
      ++sp;
      goto* labels[sp->handler];
    h_elem:
      do_elem(ops[sp->first], L, s);
      ++sp;
      goto* labels[sp->handler];
    h_ldop:
      exec_load_op(*sp, j, m, L, s, bases, lengths, n);
      ++sp;
      goto* labels[sp->handler];
    h_opst:
      exec_op_store(*sp, j, m, L, s, bases, lengths, n);
      ++sp;
      goto* labels[sp->handler];
    h_ldopst:
      exec_load_op_store(*sp, j, m, L, s, bases, lengths, n);
      ++sp;
      goto* labels[sp->handler];
    h_muladd:
      exec_mul_add(*sp, L, s);
      ++sp;
      goto* labels[sp->handler];
    h_idxld:
      exec_index_load(*sp, j, m, L, s, bases, lengths, n, start, step);
      ++sp;
      goto* labels[sp->handler];
    h_end:
      executed += L;
      if (has_phis)
        commit_phi_lanes(L, s, phis, phis_end, direct_commit, scratch);
    }
#else
    for (std::int64_t m = m_lo; m < m_hi; m += L) {
      for (const SuperOp* sp = sched; sp->handler != kHandlerEnd; ++sp) {
        if (sp->kind == FusedKind::None) {
          if (!exec_op(ops[sp->first], j, m, L, s, bases, lengths, n, start,
                       step)) {
            broke_ = true;
            return executed + 1;
          }
        } else {
          exec_super(*sp, j, m, L, s, bases, lengths, n, start, step);
        }
      }
      executed += L;
      if (has_phis)
        commit_phi_lanes(L, s, phis, phis_end, direct_commit, scratch);
    }
#endif
    return executed;
  }

  /// Seed the scalar phi carries for a strip-mined execution (the strip
  /// path's equivalent of reset_phis).
  void reset_carries(std::vector<double>& carries) const {
    carries.resize(p_.phis.size());
    for (std::size_t p = 0; p < p_.phis.size(); ++p)
      carries[p] = p_.phis[p].init;
  }

  /// Strip-mined (column-major) execution of iterations [0, iters) at outer
  /// index j; requires `p_.strip_ok`. Each column op runs over a whole strip
  /// of `lanes()` iterations before the next op — one dispatch per op per
  /// strip instead of per iteration. Phi-dependent ops and the phi commits
  /// run lane-serially, so the sequential rounding order of reductions and
  /// recurrences is preserved bit for bit. `carries` holds the running
  /// scalar phi values across strips (and outer iterations hand them back
  /// in unchanged).
  ///
  /// With `fused`, the column phase runs the fused `fused_column` schedule
  /// instead of op-at-a-time `strip_column` — same per-lane evaluation
  /// order (the strip proof licenses the within-unit interleaving, so even
  /// load-op-store triples on one array are safe here), fewer dispatches.
  /// The lane-serial phase is shared: the single-phi register-carry fast
  /// path already covers the hot reduction shapes.
  std::int64_t run_strips(std::int64_t j, std::int64_t iters,
                          std::vector<double>& carries, bool fused = false) {
    using ir::Opcode;
    VECCOST_ASSERT(p_.strip_ok, "run_strips on a non-strippable program");
    const int W = lanes();
    double* const s = ctx_.slots.data();
    double* const* const bases = ctx_.bases.data();
    const std::int64_t* const lengths = ctx_.lengths.data();
    const MicroOp* const ops = p_.ops.data();
    const std::int64_t start = p_.start;
    const std::int64_t step = p_.step;
    const std::int64_t n = ctx_.n;
    const PhiPlan* const phis = p_.phis.data();
    const std::size_t num_phis = p_.phis.size();

    {
      const double jv = static_cast<double>(j);
      for (const std::int32_t base : p_.outer_slots)
        for (int l = 0; l < W; ++l) s[base + l] = jv;
    }

    for (std::int64_t m = 0; m < iters; m += W) {
      const int L = static_cast<int>(std::min<std::int64_t>(W, iters - m));
      if (fused) {
        for (const SuperOp& sup : p_.fused_column)
          exec_super(sup, j, m, L, s, bases, lengths, n, start, step);
      } else {
        for (const std::int32_t i : p_.strip_column)
          (void)exec_op(ops[i], j, m, L, s, bases, lengths, n, start, step);
      }
      if (num_phis == 0) continue;
      if (num_phis == 1 && p_.strip_serial.size() == 1) {
        // The dominant reduction shape (dot += a[i] * b[i]): one phi, one
        // update op. Dispatch on the opcode once per strip and keep the
        // running value in a register; the phi slot is still written per
        // lane because the update op's operands may alias it.
        const MicroOp& u = ops[p_.strip_serial[0]];
        const PhiPlan& phi = phis[0];
        const std::int32_t ps = phi.slot;
        const std::int32_t pu = phi.update;
        const double* const a = u.a >= 0 ? s + u.a : nullptr;
        const double* const b = u.b >= 0 ? s + u.b : nullptr;
        const double* const c = u.c >= 0 ? s + u.c : nullptr;
        double carry = carries[0];
        if (pu == u.out) {
          // The update is the op's own result: keep the running value in a
          // register and substitute it for the phi-slot operands, so the
          // lane-to-lane dependency chain is pure FP latency with no
          // store-to-load round trip through the slot array.
          const bool ap = u.a == ps, bp = u.b == ps, cp = u.c == ps;
          switch (u.op) {
            case Opcode::Add:
              for (int l = 0; l < L; ++l) {
                carry = apply_rounding((ap ? carry : a[l]) +
                                           (bp ? carry : b[l]),
                                       u.round);
                s[u.out + l] = carry;
              }
              break;
            case Opcode::Mul:
              for (int l = 0; l < L; ++l) {
                carry = apply_rounding((ap ? carry : a[l]) *
                                           (bp ? carry : b[l]),
                                       u.round);
                s[u.out + l] = carry;
              }
              break;
            case Opcode::FMA:
              for (int l = 0; l < L; ++l) {
                carry = apply_rounding((ap ? carry : a[l]) *
                                               (bp ? carry : b[l]) +
                                           (cp ? carry : c[l]),
                                       u.round);
                s[u.out + l] = carry;
              }
              break;
            case Opcode::Min:
              for (int l = 0; l < L; ++l) {
                carry = apply_rounding(
                    std::min(ap ? carry : a[l], bp ? carry : b[l]), u.round);
                s[u.out + l] = carry;
              }
              break;
            case Opcode::Max:
              for (int l = 0; l < L; ++l) {
                carry = apply_rounding(
                    std::max(ap ? carry : a[l], bp ? carry : b[l]), u.round);
                s[u.out + l] = carry;
              }
              break;
            default:
              for (int l = 0; l < L; ++l) {
                s[ps + l] = carry;
                carry = apply_rounding(
                    detail::eval_elementwise<kStaticLanes>(u, a, b, c, l,
                                                           p_.name),
                    u.round);
                s[u.out + l] = carry;
              }
              break;
          }
        } else {
          for (int l = 0; l < L; ++l) {
            s[ps + l] = carry;
            s[u.out + l] = apply_rounding(
                detail::eval_elementwise<kStaticLanes>(u, a, b, c, l, p_.name),
                u.round);
            carry = s[pu + l];
          }
        }
        carries[0] = carry;
        continue;
      }
      for (int l = 0; l < L; ++l) {
        // Lane l sees the carries exactly as row-major iteration m+l would:
        // phi slots are written only here, never by body ops, so reading the
        // update slots below observes pre-commit state without staging.
        for (std::size_t p = 0; p < num_phis; ++p)
          s[phis[p].slot + l] = carries[p];
        for (const std::int32_t i : p_.strip_serial) {
          const MicroOp& u = ops[i];
          const double* const a = u.a >= 0 ? s + u.a : nullptr;
          const double* const b = u.b >= 0 ? s + u.b : nullptr;
          const double* const c = u.c >= 0 ? s + u.c : nullptr;
          s[u.out + l] = apply_rounding(
              detail::eval_elementwise<kStaticLanes>(u, a, b, c, l, p_.name),
              u.round);
        }
        for (std::size_t p = 0; p < num_phis; ++p)
          carries[p] = s[phis[p].update + l];
      }
    }
    return iters;
  }

  [[nodiscard]] bool broke() const { return broke_; }

  /// Final per-phi scalar values: reductions reduced horizontally,
  /// recurrences take the last lane.
  [[nodiscard]] std::vector<double> final_phi_values() const {
    const int L = lanes();
    const double* const s = ctx_.slots.data();
    std::vector<double> out(p_.phis.size());
    for (std::size_t p = 0; p < p_.phis.size(); ++p) {
      const PhiPlan& phi = p_.phis[p];
      if (L > 1 && phi.reduction != ir::ReductionKind::None) {
        out[p] = horizontal_reduce(phi.reduction, s + phi.slot,
                                   static_cast<std::size_t>(L), phi.elem);
      } else {
        out[p] = s[phi.slot + L - 1];
      }
    }
    return out;
  }

  /// Live-out values in the kernel's live_outs order.
  [[nodiscard]] std::vector<double> live_outs() const {
    const std::vector<double> finals = final_phi_values();
    std::vector<double> out;
    out.reserve(p_.live_out_phis.size());
    for (const std::int32_t p : p_.live_out_phis)
      out.push_back(finals[static_cast<std::size_t>(p)]);
    return out;
  }

 private:
  [[nodiscard]] int lanes() const {
    return kStaticLanes > 0 ? kStaticLanes : p_.lanes;
  }

  // --- Single-op block executors -----------------------------------------
  // One helper per handler category, shared verbatim by exec_op's switch
  // (run_range / Switch mode) and run_schedule's threaded dispatch, so both
  // paths execute the exact same code per op.

  VECCOST_ENGINE_INLINE void do_indvar(const MicroOp& u, std::int64_t m, int L,
                                       double* s, std::int64_t start,
                                       std::int64_t step) {
    double* const out = s + u.out;
    for (int l = 0; l < L; ++l)
      out[l] = static_cast<double>(start + (m + l) * step);
  }

  /// Block bounds hoist for an unpredicated affine memory op: the element
  /// index is linear in the lane, so its extremes over [0, L) sit at lanes 0
  /// and L-1. Returns lane 0's element index when the whole block is in
  /// bounds, -1 when the per-lane path (with its per-lane check and throw)
  /// must run instead. Callers have already ruled out pred/indirect.
  VECCOST_ENGINE_INLINE std::int64_t block_base(const MicroOp& u,
                                                std::int64_t j, std::int64_t m,
                                                int L,
                                                const std::int64_t* lengths,
                                                std::int64_t n) const {
    const std::int64_t len = lengths[u.array];
    const std::int64_t base =
        u.base_off + u.lin * m + u.j_scale * j + u.n_scale * n + ext_term(u);
    const std::int64_t last = base + u.lin * (L - 1);
    if (base < 0 || base >= len || last < 0 || last >= len) return -1;
    return base;
  }

  VECCOST_ENGINE_INLINE void do_load(const MicroOp& u, std::int64_t j,
                                     std::int64_t m, int L, double* s,
                                     double* const* bases,
                                     const std::int64_t* lengths,
                                     std::int64_t n) {
    double* const out = s + u.out;
    const double* const buf = bases[u.array];
    const std::int64_t len = lengths[u.array];
    if constexpr (std::is_same_v<Tracer, NoTrace>) {
      // Untraced block fast path: hoist the predicate/indirect tests and the
      // bounds check out of the lane loop. Nothing executes before the
      // checks, so a failure falls through to the per-lane loop with
      // identical (including throwing) semantics.
      if (u.pred < 0 && u.indirect < 0) {
        const std::int64_t base = block_base(u, j, m, L, lengths, n);
        if (base >= 0) {
          const double* const src = buf + base;
          if (u.lin == 1) {
            for (int l = 0; l < L; ++l) out[l] = src[l];
          } else {
            for (int l = 0; l < L; ++l) out[l] = src[u.lin * l];
          }
          return;
        }
      }
    }
    for (int l = 0; l < L; ++l) {
      if (u.pred >= 0 && s[u.pred + l] == 0.0) {
        out[l] = 0.0;
        continue;
      }
      const std::int64_t e =
          u.indirect >= 0
              ? static_cast<std::int64_t>(s[u.indirect + l]) + u.base_off
              : u.base_off + u.lin * (m + l) + u.j_scale * j + u.n_scale * n +
                    ext_term(u);
      VECCOST_ASSERT(e >= 0 && e < len, "load out of bounds in " + p_.name);
      tracer_(u.array, e, false);
      out[l] = buf[e];
    }
  }

  VECCOST_ENGINE_INLINE void do_store(const MicroOp& u, std::int64_t j,
                                      std::int64_t m, int L, double* s,
                                      double* const* bases,
                                      const std::int64_t* lengths,
                                      std::int64_t n) {
    double* const buf = bases[u.array];
    const std::int64_t len = lengths[u.array];
    if constexpr (std::is_same_v<Tracer, NoTrace>) {
      if (u.pred < 0 && u.indirect < 0) {
        const std::int64_t base = block_base(u, j, m, L, lengths, n);
        if (base >= 0) {
          double* const dst = buf + base;
          const double* const src = s + u.a;
          if (u.lin == 1) {
            for (int l = 0; l < L; ++l) dst[l] = src[l];
          } else {
            for (int l = 0; l < L; ++l) dst[u.lin * l] = src[l];
          }
          return;
        }
      }
    }
    for (int l = 0; l < L; ++l) {
      if (u.pred >= 0 && s[u.pred + l] == 0.0) continue;
      const std::int64_t e =
          u.indirect >= 0
              ? static_cast<std::int64_t>(s[u.indirect + l]) + u.base_off
              : u.base_off + u.lin * (m + l) + u.j_scale * j + u.n_scale * n +
                    ext_term(u);
      VECCOST_ASSERT(e >= 0 && e < len, "store out of bounds in " + p_.name);
      tracer_(u.array, e, true);
      buf[e] = s[u.a + l];
    }
  }

  /// Returns false iff the Break fired.
  VECCOST_ENGINE_INLINE bool do_break(const MicroOp& u, int L, double* s) {
    VECCOST_ASSERT(L == 1, "break inside vector body of " + p_.name);
    return s[u.a] == 0.0;
  }

  VECCOST_ENGINE_INLINE void do_broadcast(const MicroOp& u, int L, double* s) {
    double* const out = s + u.out;
    const double v = s[u.a];
    for (int l = 0; l < L; ++l) out[l] = v;
  }

  VECCOST_ENGINE_INLINE void do_splice(const MicroOp& u, int L, double* s) {
    // [last lane of op0, lanes 0..L-2 of op1]
    double* const out = s + u.out;
    out[0] = s[u.a + L - 1];
    for (int l = 1; l < L; ++l) out[l] = s[u.b + l - 1];
  }

  VECCOST_ENGINE_INLINE void do_reduce(const MicroOp& u, int L, double* s) {
    double* const out = s + u.out;
    const double r = horizontal_reduce(u.reduce, s + u.a,
                                       static_cast<std::size_t>(L), u.elem);
    for (int l = 0; l < L; ++l) out[l] = r;
  }

  VECCOST_ENGINE_INLINE void do_elem(const MicroOp& u, int L, double* s) {
    double* const out = s + u.out;
    // Hot 1/2-operand arithmetic runs the vector-friendly strip loop (no
    // per-lane opcode dispatch); everything else keeps the generic loop.
    if (detail::fused_fast_elem(u, 0, s, L, nullptr, 0, out, 1)) return;
    const double* const a = u.a >= 0 ? s + u.a : nullptr;
    const double* const b = u.b >= 0 ? s + u.b : nullptr;
    const double* const c = u.c >= 0 ? s + u.c : nullptr;
    for (int l = 0; l < L; ++l)
      out[l] = apply_rounding(
          detail::eval_elementwise<kStaticLanes>(u, a, b, c, l, p_.name),
          u.round);
  }

  /// Execute one micro-op over lanes [0, L) at iteration base m. All
  /// loop-invariant state comes in as caller-hoisted locals (see run_range).
  /// Returns false iff a Break fired.
  VECCOST_ENGINE_INLINE bool exec_op(const MicroOp& u, std::int64_t j,
                                     std::int64_t m, int L, double* s,
                                     double* const* bases,
                                     const std::int64_t* lengths,
                                     std::int64_t n, std::int64_t start,
                                     std::int64_t step) {
    using ir::Opcode;
    switch (u.op) {
      case Opcode::IndVar:
        do_indvar(u, m, L, s, start, step);
        break;
      case Opcode::Load:
      case Opcode::Gather:
      case Opcode::StridedLoad:
        do_load(u, j, m, L, s, bases, lengths, n);
        break;
      case Opcode::Store:
      case Opcode::Scatter:
      case Opcode::StridedStore:
        do_store(u, j, m, L, s, bases, lengths, n);
        break;
      case Opcode::Break:
        return do_break(u, L, s);
      case Opcode::Broadcast:
        do_broadcast(u, L, s);
        break;
      case Opcode::Splice:
        do_splice(u, L, s);
        break;
      case Opcode::ReduceAdd:
      case Opcode::ReduceMul:
      case Opcode::ReduceMin:
      case Opcode::ReduceMax:
      case Opcode::ReduceOr:
        do_reduce(u, L, s);
        break;
      default:
        do_elem(u, L, s);
        break;
    }
    return true;
  }

  // --- Fused (superop) lane helpers and block executors -------------------

  /// One load lane: predicate, index, bounds check, trace — identical to
  /// one do_load lane. Returns the loaded value (0.0 when predicated off).
  VECCOST_ENGINE_INLINE double load_lane(const MicroOp& u, std::int64_t j,
                                         std::int64_t m, int l, double* s,
                                         double* const* bases,
                                         const std::int64_t* lengths,
                                         std::int64_t n) {
    if (u.pred >= 0 && s[u.pred + l] == 0.0) return 0.0;
    const std::int64_t e =
        u.indirect >= 0
            ? static_cast<std::int64_t>(s[u.indirect + l]) + u.base_off
            : u.base_off + u.lin * (m + l) + u.j_scale * j + u.n_scale * n +
                  ext_term(u);
    VECCOST_ASSERT(e >= 0 && e < lengths[u.array],
                   "load out of bounds in " + p_.name);
    tracer_(u.array, e, false);
    return bases[u.array][e];
  }

  /// One store lane storing the register value `v` (the fused data operand).
  VECCOST_ENGINE_INLINE void store_lane(const MicroOp& u, std::int64_t j,
                                        std::int64_t m, int l, double* s,
                                        double* const* bases,
                                        const std::int64_t* lengths,
                                        std::int64_t n, double v) {
    if (u.pred >= 0 && s[u.pred + l] == 0.0) return;
    const std::int64_t e =
        u.indirect >= 0
            ? static_cast<std::int64_t>(s[u.indirect + l]) + u.base_off
            : u.base_off + u.lin * (m + l) + u.j_scale * j + u.n_scale * n +
                  ext_term(u);
    VECCOST_ASSERT(e >= 0 && e < lengths[u.array],
                   "store out of bounds in " + p_.name);
    tracer_(u.array, e, true);
    bases[u.array][e] = v;
  }

  /// One elementwise lane with the producer's register value `v` substituted
  /// for the operands named in `sub`. Rounded result.
  VECCOST_ENGINE_INLINE double elem_lane(const MicroOp& u, const double* s,
                                         int l, double v, std::uint8_t sub) {
    const double av = (sub & kSubA) ? v : (u.a >= 0 ? s[u.a + l] : 0.0);
    const double bv = (sub & kSubB) ? v : (u.b >= 0 ? s[u.b + l] : 0.0);
    const double cv = (sub & kSubC) ? v : (u.c >= 0 ? s[u.c + l] : 0.0);
    return apply_rounding(detail::eval_scalar(u, av, bv, cv, p_.name), u.round);
  }

  VECCOST_ENGINE_INLINE void exec_load_op(const SuperOp& sup, std::int64_t j,
                                          std::int64_t m, int L, double* s,
                                          double* const* bases,
                                          const std::int64_t* lengths,
                                          std::int64_t n) {
    const MicroOp& f = p_.ops[static_cast<std::size_t>(sup.first)];
    const MicroOp& g = p_.ops[static_cast<std::size_t>(sup.second)];
    if constexpr (std::is_same_v<Tracer, NoTrace>) {
      // Block fast path: predicate/indirect/bounds hoisted out of the lane
      // loop, consumer arithmetic run as a vector-friendly strip streaming
      // straight from the array. Checks precede any execution, so a bail
      // falls through to the per-lane loop bit-identically.
      if (!sup.keep_first && f.pred < 0 && f.indirect < 0) {
        const std::int64_t fb = block_base(f, j, m, L, lengths, n);
        if (fb >= 0 && detail::fused_fast_elem(g, sup.sub, s, L,
                                               bases[f.array] + fb, f.lin,
                                               s + g.out, 1))
          return;
      }
    }
    for (int l = 0; l < L; ++l) {
      const double v = load_lane(f, j, m, l, s, bases, lengths, n);
      if (sup.keep_first) s[f.out + l] = v;
      s[g.out + l] = elem_lane(g, s, l, v, sup.sub);
    }
  }

  VECCOST_ENGINE_INLINE void exec_op_store(const SuperOp& sup, std::int64_t j,
                                           std::int64_t m, int L, double* s,
                                           double* const* bases,
                                           const std::int64_t* lengths,
                                           std::int64_t n) {
    const MicroOp& f = p_.ops[static_cast<std::size_t>(sup.first)];
    const MicroOp& g = p_.ops[static_cast<std::size_t>(sup.second)];
    if constexpr (std::is_same_v<Tracer, NoTrace>) {
      if (!sup.keep_first && g.pred < 0 && g.indirect < 0) {
        const std::int64_t gb = block_base(g, j, m, L, lengths, n);
        if (gb >= 0 && detail::fused_fast_elem(f, 0, s, L, nullptr, 0,
                                               bases[g.array] + gb, g.lin))
          return;
      }
    }
    for (int l = 0; l < L; ++l) {
      const double v = elem_lane(f, s, l, 0.0, 0);
      if (sup.keep_first) s[f.out + l] = v;
      store_lane(g, j, m, l, s, bases, lengths, n, v);
    }
  }

  VECCOST_ENGINE_INLINE void exec_load_op_store(
      const SuperOp& sup, std::int64_t j, std::int64_t m, int L, double* s,
      double* const* bases, const std::int64_t* lengths, std::int64_t n) {
    const MicroOp& f = p_.ops[static_cast<std::size_t>(sup.first)];
    const MicroOp& g = p_.ops[static_cast<std::size_t>(sup.second)];
    const MicroOp& h = p_.ops[static_cast<std::size_t>(sup.third)];
    if constexpr (std::is_same_v<Tracer, NoTrace>) {
      // The memory-to-memory strip: load stream in, one arithmetic op,
      // store stream out — a[i] = b[i] + k shapes spend their whole
      // iteration in this single vectorizable loop. The strip loop keeps the
      // per-lane read/compute/write order of the loop below, so the fusion
      // pass's alias argument carries over unchanged.
      if (!sup.keep_first && !sup.keep_second && f.pred < 0 &&
          f.indirect < 0 && h.pred < 0 && h.indirect < 0) {
        const std::int64_t fb = block_base(f, j, m, L, lengths, n);
        if (fb >= 0) {
          const std::int64_t hb = block_base(h, j, m, L, lengths, n);
          if (hb >= 0 && detail::fused_fast_elem(g, sup.sub, s, L,
                                                 bases[f.array] + fb, f.lin,
                                                 bases[h.array] + hb, h.lin))
            return;
        }
      }
    }
    for (int l = 0; l < L; ++l) {
      const double v = load_lane(f, j, m, l, s, bases, lengths, n);
      if (sup.keep_first) s[f.out + l] = v;
      const double w = elem_lane(g, s, l, v, sup.sub);
      if (sup.keep_second) s[g.out + l] = w;
      store_lane(h, j, m, l, s, bases, lengths, n, w);
    }
  }

  VECCOST_ENGINE_INLINE void exec_mul_add(const SuperOp& sup, int L,
                                          double* s) {
    const MicroOp& f = p_.ops[static_cast<std::size_t>(sup.first)];
    const MicroOp& g = p_.ops[static_cast<std::size_t>(sup.second)];
    for (int l = 0; l < L; ++l) {
      // Both ops keep their own rounding: this fuses dispatch, not the FP.
      const double v = elem_lane(f, s, l, 0.0, 0);
      if (sup.keep_first) s[f.out + l] = v;
      s[g.out + l] = elem_lane(g, s, l, v, sup.sub);
    }
  }

  VECCOST_ENGINE_INLINE void exec_index_load(
      const SuperOp& sup, std::int64_t j, std::int64_t m, int L, double* s,
      double* const* bases, const std::int64_t* lengths, std::int64_t n,
      std::int64_t start, std::int64_t step) {
    const MicroOp& f = p_.ops[static_cast<std::size_t>(sup.first)];
    const MicroOp& g = p_.ops[static_cast<std::size_t>(sup.second)];
    double* const out = s + g.out;
    const double* const buf = bases[g.array];
    const std::int64_t len = lengths[g.array];
    for (int l = 0; l < L; ++l) {
      double v;
      if (f.op == ir::Opcode::IndVar) {
        v = static_cast<double>(start + (m + l) * step);
      } else if (f.array >= 0) {
        v = load_lane(f, j, m, l, s, bases, lengths, n);
      } else {
        v = elem_lane(f, s, l, 0.0, 0);
      }
      if (sup.keep_first) s[f.out + l] = v;
      if (g.pred >= 0 && s[g.pred + l] == 0.0) {
        out[l] = 0.0;
        continue;
      }
      const std::int64_t e = static_cast<std::int64_t>(v) + g.base_off;
      VECCOST_ASSERT(e >= 0 && e < len, "load out of bounds in " + p_.name);
      tracer_(g.array, e, false);
      out[l] = buf[e];
    }
  }

  /// Execute one fused schedule unit over lanes [0, L). Single-op units go
  /// through exec_op; callers that must observe Break dispatch singles
  /// themselves (fused columns are Break-free by construction).
  VECCOST_ENGINE_INLINE void exec_super(const SuperOp& sup, std::int64_t j,
                                        std::int64_t m, int L, double* s,
                                        double* const* bases,
                                        const std::int64_t* lengths,
                                        std::int64_t n, std::int64_t start,
                                        std::int64_t step) {
    switch (sup.kind) {
      case FusedKind::None:
        (void)exec_op(p_.ops[static_cast<std::size_t>(sup.first)], j, m, L, s,
                      bases, lengths, n, start, step);
        break;
      case FusedKind::LoadOp:
        exec_load_op(sup, j, m, L, s, bases, lengths, n);
        break;
      case FusedKind::OpStore:
        exec_op_store(sup, j, m, L, s, bases, lengths, n);
        break;
      case FusedKind::LoadOpStore:
        exec_load_op_store(sup, j, m, L, s, bases, lengths, n);
        break;
      case FusedKind::MulAdd:
        exec_mul_add(sup, L, s);
        break;
      case FusedKind::IndexLoad:
        exec_index_load(sup, j, m, L, s, bases, lengths, n, start, step);
        break;
    }
  }

  /// Per-block phi commit (the tail of run_range's loop, shared with
  /// run_schedule).
  VECCOST_ENGINE_INLINE void commit_phi_lanes(int L, double* s,
                                              const PhiPlan* phis,
                                              const PhiPlan* phis_end,
                                              bool direct_commit,
                                              double* scratch) {
    if (direct_commit) {
      for (const PhiPlan* phi = phis; phi != phis_end; ++phi)
        for (int l = 0; l < L; ++l) s[phi->slot + l] = s[phi->update + l];
    } else {
      // Stage all updates before writing any: a phi whose update is
      // another phi must observe that phi's pre-commit value.
      std::size_t o = 0;
      for (const PhiPlan* phi = phis; phi != phis_end; ++phi)
        for (int l = 0; l < L; ++l) scratch[o++] = s[phi->update + l];
      o = 0;
      for (const PhiPlan* phi = phis; phi != phis_end; ++phi)
        for (int l = 0; l < L; ++l) s[phi->slot + l] = scratch[o++];
    }
  }

  /// Flat grand-level subscript offset of ext entry `u.ext`; 0 when the op
  /// has no grand dependence (u.ext < 0 — always the case at depth <= 2, so
  /// legacy programs never touch ext_off_).
  VECCOST_ENGINE_INLINE std::int64_t ext_term(const MicroOp& u) const {
    return u.ext >= 0 ? ext_off_[static_cast<std::size_t>(u.ext)] : 0;
  }

  const LoweredProgram& p_;
  ExecContext& ctx_;
  Tracer tracer_;
  std::vector<std::int64_t> ext_off_;  ///< per-combination ext offsets
  bool broke_ = false;
};

/// Scalar execution of `kernel` through the lowered engine with an arbitrary
/// (inlined) tracer — the cache simulator's entry point. Semantics and trace
/// order match `reference_execute_scalar_traced` exactly.
template <class Tracer>
ExecResult lowered_execute_scalar_with(const ir::LoopKernel& kernel,
                                       Workload& wl, Tracer tracer) {
  VECCOST_ASSERT(kernel.vf == 1, "execute_scalar needs a scalar kernel");
  const LoweredProgram prog = lower(kernel, 1);
  const std::int64_t iters = kernel.trip.iterations(wl.n);
  LoweredEngine<1, Tracer> engine(prog, wl, thread_exec_context(0), tracer);
  ExecResult result;
  engine.reset_phis();  // zero-trip nests: live-outs are the phi inits
  for_each_outer_combination(
      kernel.nest,
      [&](const std::vector<std::int64_t>& grand, std::int64_t j) {
        engine.set_grand_values(grand);
        engine.reset_phis();
        result.iterations += engine.run_range(j, 0, iters);
        if (engine.broke()) {
          result.broke_early = true;
          return false;
        }
        return true;
      });
  result.live_outs = engine.live_outs();
  return result;
}

/// Thread-local lowered-program cache keyed on (kernel content hash, lanes).
/// Repeated executions of the same kernel — suite sweeps, the serve daemon,
/// the fuzz oracle's per-mode replays — skip re-lowering entirely. Callers
/// keep the shared_ptr alive for as long as they run the program; a
/// same-slot eviction then cannot destroy an in-use program.
[[nodiscard]] std::shared_ptr<const LoweredProgram> cached_lowering(
    const ir::LoopKernel& kernel, int lanes);

/// Thread-local cache over lower_interchanged(kernel, kStripWidth, a, b).
/// Returns nullptr when the interchange is illegal for this kernel — the
/// null result is cached too, so repeated probes of an illegal kernel cost
/// one lookup. The cache key covers BOTH the kernel content hash and the
/// level pair: the same kernel probed at different pairs must not collide.
/// (a, b) = (-1, -1) selects the innermost adjacent pair, as in
/// lower_interchanged.
[[nodiscard]] std::shared_ptr<const LoweredProgram> cached_interchange(
    const ir::LoopKernel& kernel, int a = -1, int b = -1);

/// Untraced/observer/vectorized entry points used by executor.cpp's routing.
/// The 2-argument forms run under the process-wide dispatch_kind(); the
/// explicit-kind overloads pin one mode (the differential oracle's
/// `dispatch:<kind>` configs). All modes are bit-identical.
[[nodiscard]] ExecResult lowered_execute_scalar(const ir::LoopKernel& kernel,
                                                Workload& wl);
[[nodiscard]] ExecResult lowered_execute_scalar(const ir::LoopKernel& kernel,
                                                Workload& wl,
                                                DispatchKind kind);
[[nodiscard]] ExecResult lowered_execute_scalar_traced(
    const ir::LoopKernel& kernel, Workload& wl, const AccessObserver& observer);
[[nodiscard]] ExecResult lowered_execute_vectorized(const ir::LoopKernel& vec,
                                                    const ir::LoopKernel& scalar,
                                                    Workload& wl);
[[nodiscard]] ExecResult lowered_execute_vectorized(const ir::LoopKernel& vec,
                                                    const ir::LoopKernel& scalar,
                                                    Workload& wl,
                                                    DispatchKind kind);

/// Resident scalar program for repeated sweeps: lowers once (through the
/// program cache), owns its own ExecContext and strip-carry arena, and
/// replays workload after workload with zero per-run allocation once warm.
/// Bit-identical to execute_scalar in every dispatch mode; the SoA strip
/// form is used whenever the program qualifies (`strip_resident()`).
///
/// Unlike the free entry points, a BatchRunner does not touch the
/// thread-local contexts, so interleaving its runs with other executions
/// (e.g. the vectorized side of a validation sweep) cannot evict its state.
class BatchRunner {
 public:
  explicit BatchRunner(const ir::LoopKernel& kernel);

  /// Execute over `wl` (same contract as lowered_execute_scalar).
  [[nodiscard]] ExecResult run(Workload& wl);

  /// True when sweeps run through the strip-resident (SoA) program.
  [[nodiscard]] bool strip_resident() const { return strip_prog_ != nullptr; }

 private:
  std::shared_ptr<const LoweredProgram> row_prog_;    ///< 1-lane fused program
  std::shared_ptr<const LoweredProgram> strip_prog_;  ///< kStripWidth lanes
  std::shared_ptr<const LoweredProgram> xpose_prog_;  ///< interchanged (or null)
  ExecContext ctx_;
  std::vector<double> carries_;
  ir::TripCount trip_;
  ir::NestInfo nest_;
};

}  // namespace veccost::machine
