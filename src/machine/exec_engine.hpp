// Linear execution engine for lowered kernel programs.
//
// `LoweredEngine` runs a `LoweredProgram` (machine/lowering.hpp) as a tight
// loop over one contiguous slot array held in a reusable `ExecContext`. Two
// compile-time parameters keep the hot path lean:
//
//  * `kStaticLanes` — 1 for scalar execution (the lane loops collapse and
//    the compiler drops them), 0 for a runtime lane count (widened bodies);
//  * `Tracer` — the memory-trace callback type. The untraced instantiation
//    uses the empty `NoTrace` functor, so it pays literally nothing; the
//    cache simulator passes its own inlined functor instead of going through
//    a `std::function`.
//
// Semantics are bit-identical to the reference interpreter in
// machine/executor.cpp — same evaluation order, same f32 rounding points,
// same bounds-check exceptions, same memory-trace order. The differential
// suite (tests/engine_test.cpp, `ctest -L engine`) enforces this over the
// full TSVC suite; consult docs/machine_model.md before touching either
// executor.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "machine/executor.hpp"
#include "machine/lowering.hpp"
#include "support/error.hpp"

// The engine's throughput depends on the whole op-dispatch loop collapsing
// into run_range: an out-of-line call per micro-op costs more than the op
// itself. GCC's size heuristics refuse to inline the elementwise switch on
// their own, so it is marked always_inline.
#if defined(__GNUC__) || defined(__clang__)
#define VECCOST_ENGINE_INLINE inline __attribute__((always_inline))
#else
#define VECCOST_ENGINE_INLINE inline
#endif

namespace veccost::machine {

/// Strip width of the column-major execution path (LoweredProgram::strip_ok):
/// iterations per dispatch of each column op. Wide enough to amortize the
/// op-dispatch switch to noise, small enough that a strip's slot storage
/// stays L1-resident.
inline constexpr int kStripWidth = 64;

/// The untraced tracer: an empty functor the optimizer erases entirely.
struct NoTrace {
  void operator()(int /*array*/, std::int64_t /*element*/,
                  bool /*is_store*/) const {}
};

/// Adapter running a `std::function` observer through the templated engine
/// (the public `execute_scalar_traced` entry point).
struct ObserverTrace {
  const AccessObserver* observer;
  void operator()(int array, std::int64_t element, bool is_store) const {
    (*observer)(array, element, is_store);
  }
};

/// Reusable, allocation-free execution state: one flat lane array for all
/// SSA values, plus the bound workload's array pointers. Binding a program
/// only reallocates when it needs more capacity than any earlier bind.
class ExecContext {
 public:
  /// Bind `prog` to `wl`: size the slot array, fill the folded constants,
  /// and capture the array base pointers/lengths.
  void bind(const LoweredProgram& prog, Workload& wl);

  std::vector<double> slots;         ///< num_values * lanes, slot-major
  std::vector<double*> bases;        ///< workload array base pointers
  std::vector<std::int64_t> lengths; ///< workload array lengths
  std::vector<double> phi_scratch;   ///< staging for non-direct phi commits
  std::int64_t n = 0;                ///< bound problem size
};

/// Per-thread contexts for the built-in drivers; index 0 is the main body,
/// index 1 the scalar remainder of a vectorized execution.
[[nodiscard]] ExecContext& thread_exec_context(std::size_t which);

namespace detail {

/// One elementwise operation on already-fetched operand pointers. Cases read
/// only the operands their opcode defines, so unused pointers may be null.
template <int kStaticLanes>
VECCOST_ENGINE_INLINE double eval_elementwise(const MicroOp& u, const double* a,
                                              const double* b, const double* c,
                                              int l, const std::string& name) {
  using ir::Opcode;
  const double av = a != nullptr ? a[l] : 0.0;
  switch (u.op) {
    case Opcode::Add: return av + b[l];
    case Opcode::Sub: return av - b[l];
    case Opcode::Mul: return av * b[l];
    case Opcode::Div:
      if (u.int_divide) {
        VECCOST_ASSERT(b[l] != 0.0, "integer division by zero in " + name);
        return std::trunc(av / b[l]);
      }
      return av / b[l];
    case Opcode::Rem:
      if (u.int_divide) {
        VECCOST_ASSERT(b[l] != 0.0, "integer remainder by zero in " + name);
        return static_cast<double>(static_cast<std::int64_t>(av) %
                                   static_cast<std::int64_t>(b[l]));
      }
      return std::fmod(av, b[l]);
    case Opcode::Neg: return -av;
    case Opcode::FMA: return av * b[l] + c[l];
    case Opcode::Min: return std::min(av, b[l]);
    case Opcode::Max: return std::max(av, b[l]);
    case Opcode::Abs: return std::abs(av);
    case Opcode::Sqrt: return std::sqrt(av);
    case Opcode::And:
      return static_cast<double>(static_cast<std::int64_t>(av) &
                                 static_cast<std::int64_t>(b[l]));
    case Opcode::Or:
      return static_cast<double>(static_cast<std::int64_t>(av) |
                                 static_cast<std::int64_t>(b[l]));
    case Opcode::Xor:
      return static_cast<double>(static_cast<std::int64_t>(av) ^
                                 static_cast<std::int64_t>(b[l]));
    case Opcode::Not:
      return static_cast<double>(~static_cast<std::int64_t>(av));
    case Opcode::Shl:
      return static_cast<double>(static_cast<std::int64_t>(av)
                                 << static_cast<std::int64_t>(b[l]));
    case Opcode::Shr:
      return static_cast<double>(static_cast<std::int64_t>(av) >>
                                 static_cast<std::int64_t>(b[l]));
    case Opcode::CmpEQ: return av == b[l] ? 1.0 : 0.0;
    case Opcode::CmpNE: return av != b[l] ? 1.0 : 0.0;
    case Opcode::CmpLT: return av < b[l] ? 1.0 : 0.0;
    case Opcode::CmpLE: return av <= b[l] ? 1.0 : 0.0;
    case Opcode::CmpGT: return av > b[l] ? 1.0 : 0.0;
    case Opcode::CmpGE: return av >= b[l] ? 1.0 : 0.0;
    case Opcode::Select: return av != 0.0 ? b[l] : c[l];
    case Opcode::Convert: return av;  // rounding applied by the caller
    default:
      VECCOST_FAIL(std::string("unhandled opcode in engine: ") +
                   ir::to_string(u.op));
  }
}

}  // namespace detail

template <int kStaticLanes, class Tracer>
class LoweredEngine {
 public:
  LoweredEngine(const LoweredProgram& prog, Workload& wl, ExecContext& ctx,
                Tracer tracer = Tracer{})
      : p_(prog), ctx_(ctx), tracer_(tracer) {
    VECCOST_ASSERT(kStaticLanes == 0 || kStaticLanes == prog.lanes,
                   "engine lane count does not match program");
    ctx_.bind(prog, wl);
  }

  /// Initialize phi state for a fresh inner-loop execution.
  void reset_phis() {
    const int L = lanes();
    double* const s = ctx_.slots.data();
    for (const PhiPlan& phi : p_.phis) {
      double* const state = s + phi.slot;
      if (L > 1 && phi.reduction != ir::ReductionKind::None) {
        // Vector accumulator: lane 0 carries the initial value, the rest the
        // identity element, so the horizontal reduce recovers the total.
        state[0] = phi.init;
        const double ident = reduction_identity(phi.reduction);
        for (int l = 1; l < L; ++l) state[l] = ident;
      } else {
        for (int l = 0; l < L; ++l) state[l] = phi.init;
      }
    }
  }

  /// Seed phi state from externally computed scalars (epilogue handoff).
  void set_phi_inits(const std::vector<double>& inits) {
    VECCOST_ASSERT(inits.size() == p_.phis.size(), "phi init count mismatch");
    const int L = lanes();
    double* const s = ctx_.slots.data();
    for (std::size_t p = 0; p < p_.phis.size(); ++p) {
      double* const state = s + p_.phis[p].slot;
      for (int l = 0; l < L; ++l) state[l] = inits[p];
    }
  }

  /// Run iterations m in [m_lo, m_hi) at outer index j, advancing `lanes()`
  /// iterations per block. Returns the number of iterations executed (less
  /// than requested only if a Break fired).
  ///
  /// Everything loop-invariant — slot/base/length pointers, the op array, the
  /// phi plan, trip parameters — is hoisted into locals before the m loop.
  /// The compiler cannot do this itself: the ops store through double*
  /// obtained from the workload, and it will not prove those stores leave the
  /// vectors inside `ctx_`/`p_` untouched, so without the hoist it reloads
  /// them every iteration and the interpreter runs ~2.5x slower.
  std::int64_t run_range(std::int64_t j, std::int64_t m_lo, std::int64_t m_hi) {
    using ir::Opcode;
    const int L = lanes();
    double* const s = ctx_.slots.data();
    double* const* const bases = ctx_.bases.data();
    const std::int64_t* const lengths = ctx_.lengths.data();
    const MicroOp* const ops = p_.ops.data();
    const MicroOp* const ops_end = ops + p_.ops.size();
    const std::int64_t start = p_.start;
    const std::int64_t step = p_.step;
    const std::int64_t n = ctx_.n;
    const PhiPlan* const phis = p_.phis.data();
    const PhiPlan* const phis_end = phis + p_.phis.size();
    const bool has_phis = phis != phis_end;
    const bool direct_commit = p_.direct_commit;
    double* const scratch = direct_commit ? nullptr : ctx_.phi_scratch.data();

    {
      const double jv = static_cast<double>(j);
      for (const std::int32_t base : p_.outer_slots)
        for (int l = 0; l < L; ++l) s[base + l] = jv;
    }

    std::int64_t executed = 0;
    for (std::int64_t m = m_lo; m < m_hi; m += L) {
      for (const MicroOp* up = ops; up != ops_end; ++up) {
        if (!exec_op(*up, j, m, L, s, bases, lengths, n, start, step)) {
          // Count iterations up to and including the one that broke.
          broke_ = true;
          return executed + 1;
        }
      }
      executed += L;

      if (has_phis) {
        if (direct_commit) {
          for (const PhiPlan* phi = phis; phi != phis_end; ++phi)
            for (int l = 0; l < L; ++l) s[phi->slot + l] = s[phi->update + l];
        } else {
          // Stage all updates before writing any: a phi whose update is
          // another phi must observe that phi's pre-commit value.
          std::size_t o = 0;
          for (const PhiPlan* phi = phis; phi != phis_end; ++phi)
            for (int l = 0; l < L; ++l) scratch[o++] = s[phi->update + l];
          o = 0;
          for (const PhiPlan* phi = phis; phi != phis_end; ++phi)
            for (int l = 0; l < L; ++l) s[phi->slot + l] = scratch[o++];
        }
      }
    }
    return executed;
  }

  /// Seed the scalar phi carries for a strip-mined execution (the strip
  /// path's equivalent of reset_phis).
  void reset_carries(std::vector<double>& carries) const {
    carries.resize(p_.phis.size());
    for (std::size_t p = 0; p < p_.phis.size(); ++p)
      carries[p] = p_.phis[p].init;
  }

  /// Strip-mined (column-major) execution of iterations [0, iters) at outer
  /// index j; requires `p_.strip_ok`. Each column op runs over a whole strip
  /// of `lanes()` iterations before the next op — one dispatch per op per
  /// strip instead of per iteration. Phi-dependent ops and the phi commits
  /// run lane-serially, so the sequential rounding order of reductions and
  /// recurrences is preserved bit for bit. `carries` holds the running
  /// scalar phi values across strips (and outer iterations hand them back
  /// in unchanged).
  std::int64_t run_strips(std::int64_t j, std::int64_t iters,
                          std::vector<double>& carries) {
    using ir::Opcode;
    VECCOST_ASSERT(p_.strip_ok, "run_strips on a non-strippable program");
    const int W = lanes();
    double* const s = ctx_.slots.data();
    double* const* const bases = ctx_.bases.data();
    const std::int64_t* const lengths = ctx_.lengths.data();
    const MicroOp* const ops = p_.ops.data();
    const std::int64_t start = p_.start;
    const std::int64_t step = p_.step;
    const std::int64_t n = ctx_.n;
    const PhiPlan* const phis = p_.phis.data();
    const std::size_t num_phis = p_.phis.size();

    {
      const double jv = static_cast<double>(j);
      for (const std::int32_t base : p_.outer_slots)
        for (int l = 0; l < W; ++l) s[base + l] = jv;
    }

    for (std::int64_t m = 0; m < iters; m += W) {
      const int L = static_cast<int>(std::min<std::int64_t>(W, iters - m));
      for (const std::int32_t i : p_.strip_column)
        (void)exec_op(ops[i], j, m, L, s, bases, lengths, n, start, step);
      if (num_phis == 0) continue;
      if (num_phis == 1 && p_.strip_serial.size() == 1) {
        // The dominant reduction shape (dot += a[i] * b[i]): one phi, one
        // update op. Dispatch on the opcode once per strip and keep the
        // running value in a register; the phi slot is still written per
        // lane because the update op's operands may alias it.
        const MicroOp& u = ops[p_.strip_serial[0]];
        const PhiPlan& phi = phis[0];
        const std::int32_t ps = phi.slot;
        const std::int32_t pu = phi.update;
        const double* const a = u.a >= 0 ? s + u.a : nullptr;
        const double* const b = u.b >= 0 ? s + u.b : nullptr;
        const double* const c = u.c >= 0 ? s + u.c : nullptr;
        double carry = carries[0];
        if (pu == u.out) {
          // The update is the op's own result: keep the running value in a
          // register and substitute it for the phi-slot operands, so the
          // lane-to-lane dependency chain is pure FP latency with no
          // store-to-load round trip through the slot array.
          const bool ap = u.a == ps, bp = u.b == ps, cp = u.c == ps;
          switch (u.op) {
            case Opcode::Add:
              for (int l = 0; l < L; ++l) {
                carry = apply_rounding((ap ? carry : a[l]) +
                                           (bp ? carry : b[l]),
                                       u.round);
                s[u.out + l] = carry;
              }
              break;
            case Opcode::Mul:
              for (int l = 0; l < L; ++l) {
                carry = apply_rounding((ap ? carry : a[l]) *
                                           (bp ? carry : b[l]),
                                       u.round);
                s[u.out + l] = carry;
              }
              break;
            case Opcode::FMA:
              for (int l = 0; l < L; ++l) {
                carry = apply_rounding((ap ? carry : a[l]) *
                                               (bp ? carry : b[l]) +
                                           (cp ? carry : c[l]),
                                       u.round);
                s[u.out + l] = carry;
              }
              break;
            case Opcode::Min:
              for (int l = 0; l < L; ++l) {
                carry = apply_rounding(
                    std::min(ap ? carry : a[l], bp ? carry : b[l]), u.round);
                s[u.out + l] = carry;
              }
              break;
            case Opcode::Max:
              for (int l = 0; l < L; ++l) {
                carry = apply_rounding(
                    std::max(ap ? carry : a[l], bp ? carry : b[l]), u.round);
                s[u.out + l] = carry;
              }
              break;
            default:
              for (int l = 0; l < L; ++l) {
                s[ps + l] = carry;
                carry = apply_rounding(
                    detail::eval_elementwise<kStaticLanes>(u, a, b, c, l,
                                                           p_.name),
                    u.round);
                s[u.out + l] = carry;
              }
              break;
          }
        } else {
          for (int l = 0; l < L; ++l) {
            s[ps + l] = carry;
            s[u.out + l] = apply_rounding(
                detail::eval_elementwise<kStaticLanes>(u, a, b, c, l, p_.name),
                u.round);
            carry = s[pu + l];
          }
        }
        carries[0] = carry;
        continue;
      }
      for (int l = 0; l < L; ++l) {
        // Lane l sees the carries exactly as row-major iteration m+l would:
        // phi slots are written only here, never by body ops, so reading the
        // update slots below observes pre-commit state without staging.
        for (std::size_t p = 0; p < num_phis; ++p)
          s[phis[p].slot + l] = carries[p];
        for (const std::int32_t i : p_.strip_serial) {
          const MicroOp& u = ops[i];
          const double* const a = u.a >= 0 ? s + u.a : nullptr;
          const double* const b = u.b >= 0 ? s + u.b : nullptr;
          const double* const c = u.c >= 0 ? s + u.c : nullptr;
          s[u.out + l] = apply_rounding(
              detail::eval_elementwise<kStaticLanes>(u, a, b, c, l, p_.name),
              u.round);
        }
        for (std::size_t p = 0; p < num_phis; ++p)
          carries[p] = s[phis[p].update + l];
      }
    }
    return iters;
  }

  [[nodiscard]] bool broke() const { return broke_; }

  /// Final per-phi scalar values: reductions reduced horizontally,
  /// recurrences take the last lane.
  [[nodiscard]] std::vector<double> final_phi_values() const {
    const int L = lanes();
    const double* const s = ctx_.slots.data();
    std::vector<double> out(p_.phis.size());
    for (std::size_t p = 0; p < p_.phis.size(); ++p) {
      const PhiPlan& phi = p_.phis[p];
      if (L > 1 && phi.reduction != ir::ReductionKind::None) {
        out[p] = horizontal_reduce(phi.reduction, s + phi.slot,
                                   static_cast<std::size_t>(L), phi.elem);
      } else {
        out[p] = s[phi.slot + L - 1];
      }
    }
    return out;
  }

  /// Live-out values in the kernel's live_outs order.
  [[nodiscard]] std::vector<double> live_outs() const {
    const std::vector<double> finals = final_phi_values();
    std::vector<double> out;
    out.reserve(p_.live_out_phis.size());
    for (const std::int32_t p : p_.live_out_phis)
      out.push_back(finals[static_cast<std::size_t>(p)]);
    return out;
  }

 private:
  [[nodiscard]] int lanes() const {
    return kStaticLanes > 0 ? kStaticLanes : p_.lanes;
  }

  /// Execute one micro-op over lanes [0, L) at iteration base m. All
  /// loop-invariant state comes in as caller-hoisted locals (see run_range).
  /// Returns false iff a Break fired.
  VECCOST_ENGINE_INLINE bool exec_op(const MicroOp& u, std::int64_t j,
                                     std::int64_t m, int L, double* s,
                                     double* const* bases,
                                     const std::int64_t* lengths,
                                     std::int64_t n, std::int64_t start,
                                     std::int64_t step) {
    using ir::Opcode;
    switch (u.op) {
      case Opcode::IndVar: {
        double* const out = s + u.out;
        for (int l = 0; l < L; ++l)
          out[l] = static_cast<double>(start + (m + l) * step);
        break;
      }
      case Opcode::Load:
      case Opcode::Gather:
      case Opcode::StridedLoad: {
        double* const out = s + u.out;
        const double* const buf = bases[u.array];
        const std::int64_t len = lengths[u.array];
        for (int l = 0; l < L; ++l) {
          if (u.pred >= 0 && s[u.pred + l] == 0.0) {
            out[l] = 0.0;
            continue;
          }
          const std::int64_t e =
              u.indirect >= 0
                  ? static_cast<std::int64_t>(s[u.indirect + l]) + u.base_off
                  : u.base_off + u.lin * (m + l) + u.j_scale * j +
                        u.n_scale * n;
          VECCOST_ASSERT(e >= 0 && e < len, "load out of bounds in " + p_.name);
          tracer_(u.array, e, false);
          out[l] = buf[e];
        }
        break;
      }
      case Opcode::Store:
      case Opcode::Scatter:
      case Opcode::StridedStore: {
        double* const buf = bases[u.array];
        const std::int64_t len = lengths[u.array];
        for (int l = 0; l < L; ++l) {
          if (u.pred >= 0 && s[u.pred + l] == 0.0) continue;
          const std::int64_t e =
              u.indirect >= 0
                  ? static_cast<std::int64_t>(s[u.indirect + l]) + u.base_off
                  : u.base_off + u.lin * (m + l) + u.j_scale * j +
                        u.n_scale * n;
          VECCOST_ASSERT(e >= 0 && e < len, "store out of bounds in " + p_.name);
          tracer_(u.array, e, true);
          buf[e] = s[u.a + l];
        }
        break;
      }
      case Opcode::Break:
        VECCOST_ASSERT(L == 1, "break inside vector body of " + p_.name);
        if (s[u.a] != 0.0) return false;
        break;
      case Opcode::Broadcast: {
        double* const out = s + u.out;
        const double v = s[u.a];
        for (int l = 0; l < L; ++l) out[l] = v;
        break;
      }
      case Opcode::Splice: {
        // [last lane of op0, lanes 0..L-2 of op1]
        double* const out = s + u.out;
        out[0] = s[u.a + L - 1];
        for (int l = 1; l < L; ++l) out[l] = s[u.b + l - 1];
        break;
      }
      case Opcode::ReduceAdd:
      case Opcode::ReduceMul:
      case Opcode::ReduceMin:
      case Opcode::ReduceMax:
      case Opcode::ReduceOr: {
        double* const out = s + u.out;
        const double r = horizontal_reduce(u.reduce, s + u.a,
                                           static_cast<std::size_t>(L), u.elem);
        for (int l = 0; l < L; ++l) out[l] = r;
        break;
      }
      default: {
        double* const out = s + u.out;
        const double* const a = u.a >= 0 ? s + u.a : nullptr;
        const double* const b = u.b >= 0 ? s + u.b : nullptr;
        const double* const c = u.c >= 0 ? s + u.c : nullptr;
        for (int l = 0; l < L; ++l)
          out[l] = apply_rounding(
              detail::eval_elementwise<kStaticLanes>(u, a, b, c, l, p_.name),
              u.round);
        break;
      }
    }
    return true;
  }

  const LoweredProgram& p_;
  ExecContext& ctx_;
  Tracer tracer_;
  bool broke_ = false;
};

/// Scalar execution of `kernel` through the lowered engine with an arbitrary
/// (inlined) tracer — the cache simulator's entry point. Semantics and trace
/// order match `reference_execute_scalar_traced` exactly.
template <class Tracer>
ExecResult lowered_execute_scalar_with(const ir::LoopKernel& kernel,
                                       Workload& wl, Tracer tracer) {
  VECCOST_ASSERT(kernel.vf == 1, "execute_scalar needs a scalar kernel");
  const LoweredProgram prog = lower(kernel, 1);
  const std::int64_t iters = kernel.trip.iterations(wl.n);
  LoweredEngine<1, Tracer> engine(prog, wl, thread_exec_context(0), tracer);
  ExecResult result;
  for (std::int64_t j = 0; j < (kernel.has_outer ? kernel.outer_trip : 1); ++j) {
    engine.reset_phis();
    result.iterations += engine.run_range(j, 0, iters);
    if (engine.broke()) {
      result.broke_early = true;
      break;
    }
  }
  result.live_outs = engine.live_outs();
  return result;
}

/// Untraced/observer/vectorized entry points used by executor.cpp's routing.
[[nodiscard]] ExecResult lowered_execute_scalar(const ir::LoopKernel& kernel,
                                                Workload& wl);
[[nodiscard]] ExecResult lowered_execute_scalar_traced(
    const ir::LoopKernel& kernel, Workload& wl, const AccessObserver& observer);
[[nodiscard]] ExecResult lowered_execute_vectorized(const ir::LoopKernel& vec,
                                                    const ir::LoopKernel& scalar,
                                                    Workload& wl);

}  // namespace veccost::machine
