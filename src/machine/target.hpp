// Target machine descriptions.
//
// A TargetDesc carries two kinds of information:
//  * coarse per-instruction-class cost tables (latency / reciprocal
//    throughput, scalar and per-native-vector-op) — this is the only part the
//    baseline LLVM-style cost model is allowed to read, mirroring the TTI
//    tables real compilers ship;
//  * microarchitectural detail (issue width, execution-resource widths,
//    cache hierarchy, gather/strided penalties, vectorization overheads)
//    that only the ground-truth performance model uses, standing in for the
//    physical ARM board of the paper.
#pragma once

#include <cstdint>
#include <string>

#include "ir/opcode.hpp"
#include "ir/type.hpp"

namespace veccost::machine {

/// Execution resource an instruction class occupies.
enum class Resource : std::uint8_t { Memory, FloatSimd, Integer, None };

/// Number of instruction classes the timing tables are indexed by. Sized
/// from the enum itself so adding an OpClass grows the tables instead of
/// silently aliasing slots.
inline constexpr std::size_t kNumOpClasses =
    static_cast<std::size_t>(ir::OpClass::Control) + 1;

/// Vector-length / predication capabilities: what an SVE-style target can do
/// beyond fixed-width SIMD. A target with `vl_agnostic` set supports the
/// predicated whole-loop regime (`llv<vl>`): the loop body is governed by a
/// whilelt-style predicate, the final partial block executes only its active
/// lanes, and no scalar epilogue exists. Timings feed the ground-truth
/// performance model's predicated costing.
struct VLInfo {
  /// Target supports vector-length-agnostic predicated whole loops.
  bool vl_agnostic = false;
  /// Cycles to advance the governing predicate per block (whilelt + b.first).
  double whilelt_cycles = 1.0;
  /// Cycles per general predicate-manipulating op (ptest/sel/brka family).
  double predicate_op_cycles = 0.5;
  /// Extra cycles for a first-faulting load (ldff1 + rdffr check).
  double first_fault_cycles = 2.0;
  /// One-time cost of entering a predicated whole loop (ptrue + induction
  /// setup). Replaces vec_prologue_cycles: there is no versioning epilogue.
  double whole_loop_setup_cycles = 10.0;
};

struct InstrTiming {
  double latency = 1.0;       ///< result-ready latency in cycles
  double rthroughput = 1.0;   ///< reciprocal throughput in cycles/instr
};

/// One cache/memory level.
struct MemLevel {
  std::int64_t capacity_bytes = 0;  ///< 0 = unbounded (DRAM)
  double latency_cycles = 4;
  double bytes_per_cycle = 16;      ///< sustained bandwidth
};

struct TargetDesc {
  std::string name;
  double freq_ghz = 2.0;
  int vector_bits = 128;  ///< native SIMD register width
  int issue_width = 2;    ///< instructions decoded/issued per cycle

  /// Throughput (ops/cycle) of each execution resource group.
  double mem_units = 1;
  double fp_units = 1;
  double int_units = 2;

  // Coarse timing tables, indexed by instruction class and element type.
  [[nodiscard]] InstrTiming scalar_timing(ir::OpClass cls, ir::ScalarType t) const;
  /// Timing of one native-width vector instruction of this class.
  [[nodiscard]] InstrTiming vector_timing(ir::OpClass cls, ir::ScalarType t) const;

  /// Number of native vector instructions needed for `lanes` lanes of `t`.
  [[nodiscard]] int native_ops(ir::ScalarType t, int lanes) const {
    const int per_reg = lanes_per_register(t);
    return (lanes + per_reg - 1) / per_reg;
  }
  [[nodiscard]] int lanes_per_register(ir::ScalarType t) const {
    return vector_bits / (ir::byte_size(t) * 8);
  }

  // Memory hierarchy (detailed model only).
  MemLevel l1, l2, dram;
  double cacheline_bytes = 64;

  /// ISA capability flags (what the *compiler* knows about the target; the
  /// baseline cost model keys its generic costs on these).
  bool hw_gather = false;        ///< native gather instruction exists
  bool hw_masked_store = false;  ///< native masked store exists

  /// Vector-length / predication capability block (SVE-style targets).
  VLInfo vl;

  /// Extra per-lane cycles for gathers/scatters (address generation +
  /// element-at-a-time access).
  double gather_per_lane_cycles = 2.0;
  /// Multiplier on memory cost for |stride| > 1 accesses (wasted cacheline
  /// bandwidth / de-interleaving shuffles).
  double strided_penalty = 2.0;
  /// Multiplier for reversed (stride -1) accesses: a wide access plus a
  /// lane-reverse shuffle (REV on NEON, vperm on x86) — much cheaper than a
  /// genuine strided access.
  double reverse_penalty = 1.5;
  /// Extra per-lane cycles for a lone strided access that is NOT part of a
  /// complete interleave group. 2018-era compilers scalarized these on ARM
  /// (element loads + lane inserts); wide-shuffle targets keep it small.
  double lone_strided_per_lane_cycles = 0.0;
  /// Model interleaved access groups: when strided accesses to one array
  /// jointly cover every lane of a stride-s region (offsets 0..s-1), the
  /// hardware streams full cachelines and only pays shuffles. Disabled in
  /// the interleave ablation.
  bool model_interleave_groups = true;
  /// Residual cost multiplier for members of a complete interleave group
  /// (shuffle traffic; compare strided_penalty for lone strided accesses).
  double interleave_group_penalty = 1.3;
  /// Emulation cost of a masked vector store in cycles per native op (NEON
  /// has no masked stores: load + blend + store).
  double masked_store_penalty_cycles = 4.0;

  /// Per-iteration scalar loop bookkeeping (increment + compare + branch).
  double loop_overhead_cycles = 1.0;
  /// Per-block vector loop bookkeeping.
  double vec_loop_overhead_cycles = 1.0;
  /// One-time cost of entering a vectorized loop (runtime checks, setup).
  double vec_prologue_cycles = 30.0;
  /// Cycles for a horizontal reduction tail over `lanes` lanes.
  [[nodiscard]] double reduction_tail_cycles(ir::ScalarType t, int lanes) const;

  // --- table storage -------------------------------------------------------
  // Tables are filled by the target constructors in targets.cpp; fallbacks
  // make unspecified classes behave like simple single-cycle ALU ops.
  struct TimingEntry {
    InstrTiming f32, f64, int_narrow, int_wide;  ///< int_narrow: i8/i16/i32
  };
  TimingEntry scalar_table[kNumOpClasses];
  TimingEntry vector_table[kNumOpClasses];
  static_assert(kNumOpClasses == 16,
                "new OpClass added: audit the timing tables in targets.cpp "
                "before bumping this count");

  [[nodiscard]] static Resource resource_of(ir::OpClass cls);
};

}  // namespace veccost::machine
