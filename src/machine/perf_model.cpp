#include "machine/perf_model.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "analysis/features.hpp"
#include "machine/executor.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace veccost::machine {

using ir::Instruction;
using ir::LoopKernel;
using ir::OpClass;
using ir::Opcode;

namespace {

/// Pick the cache level a kernel's working set lives in.
const MemLevel& residency_level(const LoopKernel& k, const TargetDesc& t,
                                std::int64_t n) {
  std::int64_t footprint = 0;
  for (const auto& a : k.arrays)
    footprint += a.length(n) * ir::byte_size(a.elem);
  if (footprint <= t.l1.capacity_bytes) return t.l1;
  if (footprint <= t.l2.capacity_bytes) return t.l2;
  return t.dram;
}

struct BodyCost {
  double mem = 0, fp = 0, integer = 0;  ///< per-resource rtp sums
  double instr_count = 0;               ///< for the issue-width ceiling
  double mem_bytes = 0;                 ///< effective bytes demanded
  double latency_chain = 0;             ///< max loop-carried chain latency
};

/// True when an instruction does no dynamic work in this kernel.
bool is_free(const LoopKernel& k, const std::vector<bool>& invariant,
             std::size_t id) {
  const Instruction& inst = k.body[id];
  switch (inst.op) {
    case Opcode::Const:
    case Opcode::Param:
    case Opcode::IndVar:
    case Opcode::OuterIndVar:
    case Opcode::Phi:
      return true;
    default:
      return invariant[id];
  }
}

/// Mark strided accesses that belong to a COMPLETE interleave group: for one
/// array and effective stride s, accesses whose offsets cover all s residues
/// stream full cachelines together (s127-style a[2i], a[2i+1] pairs) and pay
/// only shuffle overhead instead of wasted bandwidth.
std::vector<bool> interleave_group_members(const LoopKernel& k) {
  std::vector<bool> member(k.body.size(), false);
  struct Key {
    int array;
    std::int64_t stride;
    bool is_store;
    auto operator<=>(const Key&) const = default;
  };
  std::map<Key, std::vector<std::size_t>> groups;
  for (std::size_t id = 0; id < k.body.size(); ++id) {
    const Instruction& inst = k.body[id];
    if (!ir::is_memory_op(inst.op) || inst.index.is_indirect()) continue;
    const std::int64_t stride = inst.index.scale_i * k.trip.step;
    if (std::abs(stride) < 2) continue;
    groups[{inst.array, stride, ir::is_store_op(inst.op)}].push_back(id);
  }
  for (const auto& [key, ids] : groups) {
    const auto s = static_cast<std::size_t>(std::abs(key.stride));
    std::set<std::int64_t> residues;
    for (const std::size_t id : ids) {
      const std::int64_t off = k.body[id].index.offset;
      residues.insert(((off % key.stride) + key.stride) % key.stride);
    }
    if (residues.size() == s) {
      for (const std::size_t id : ids) member[id] = true;
    }
  }
  return member;
}

BodyCost body_cost(const LoopKernel& k, const TargetDesc& t) {
  const auto invariant = analysis::invariant_mask(k);
  const std::vector<bool> interleaved =
      t.model_interleave_groups ? interleave_group_members(k)
                                : std::vector<bool>(k.body.size(), false);
  BodyCost cost;

  // Latency DP: longest chain ending at each value, seeded at phis.
  std::vector<double> chain(k.body.size(), 0.0);

  for (std::size_t id = 0; id < k.body.size(); ++id) {
    const Instruction& inst = k.body[id];
    const bool fp_data = ir::is_float(inst.type.elem);
    OpClass cls = ir::classify(inst.op, fp_data);

    double rtp = 0, lat = 0;
    if (!is_free(k, invariant, id)) {
      const bool vector = inst.type.lanes > 1;
      const int native = vector ? t.native_ops(inst.type.elem, inst.type.lanes) : 1;
      // Strided accesses classify as gather-like for FEATURES, but their
      // hardware cost is a plain wide access times the de-interleave
      // penalty — the gather tables describe indexed accesses only.
      OpClass timing_cls = cls;
      if (inst.op == Opcode::StridedLoad) timing_cls = OpClass::MemLoad;
      if (inst.op == Opcode::StridedStore) timing_cls = OpClass::MemStore;
      InstrTiming timing = vector ? t.vector_timing(timing_cls, inst.type.elem)
                                  : t.scalar_timing(timing_cls, inst.type.elem);
      rtp = native * timing.rthroughput;
      lat = timing.latency + (native - 1) * timing.rthroughput;

      // Masked stores: emulation penalty (no masked stores on NEON; cheap
      // vmaskmov on AVX2). Scalar predicated stores pay a branch.
      if (ir::is_store_op(inst.op) && inst.predicate != ir::kNoValue)
        rtp += vector ? native * t.masked_store_penalty_cycles : 2.0;

      // Gathers/scatters: per-lane address generation + element access.
      if (vector && (inst.op == Opcode::Gather || inst.op == Opcode::Scatter))
        rtp += inst.type.lanes * t.gather_per_lane_cycles;

      // Strided accesses come in three shapes:
      //  * reversed (stride -1): wide access + lane reverse — cheap;
      //  * complete interleave group: ld2/st2-style structured access;
      //  * lone strided: no structured instruction applies, the compiler
      //    scalarizes (per-lane cost), as 2018 LLVM did on ARM.
      if (vector &&
          (inst.op == Opcode::StridedLoad || inst.op == Opcode::StridedStore)) {
        const std::int64_t stride = inst.index.scale_i * k.trip.step;
        if (stride == -1) {
          rtp *= t.reverse_penalty;
        } else if (interleaved[id]) {
          rtp *= t.interleave_group_penalty;
        } else {
          rtp = rtp * t.strided_penalty +
                inst.type.lanes * t.lone_strided_per_lane_cycles;
        }
      }

      switch (TargetDesc::resource_of(cls)) {
        case Resource::Memory: cost.mem += rtp; break;
        case Resource::FloatSimd: cost.fp += rtp; break;
        case Resource::Integer: cost.integer += rtp; break;
        case Resource::None: break;
      }
      cost.instr_count += native;

      if (ir::is_memory_op(inst.op)) {
        const double elem_bytes = ir::byte_size(inst.type.elem);
        const std::int64_t stride =
            inst.index.is_indirect() ? 0 : inst.index.scale_i * k.trip.step;
        double waste = 1.0;
        if (inst.index.is_indirect()) {
          waste = 4.0;  // scattered lines
        } else if (std::abs(stride) > 1 && !interleaved[id]) {
          waste = std::min<double>(std::abs(stride),
                                   t.cacheline_bytes / elem_bytes);
        }
        cost.mem_bytes += inst.type.lanes * elem_bytes * waste;
      }
    }

    // Chain DP (uses real latency even for free ops: 0).
    double in = 0;
    for (int i = 0; i < inst.num_operands(); ++i) {
      const ir::ValueId op = inst.operands[static_cast<std::size_t>(i)];
      if (op != ir::kNoValue) in = std::max(in, chain[static_cast<std::size_t>(op)]);
    }
    if (inst.predicate != ir::kNoValue)
      in = std::max(in, chain[static_cast<std::size_t>(inst.predicate)]);
    if (inst.op == Opcode::Phi) {
      chain[id] = 0.01;  // marks membership in a carried chain
    } else {
      chain[id] = (in > 0.0) ? in + lat : 0.0;
    }
  }

  // Loop-carried chain latency: for each phi, the chain value at its update.
  for (const ir::ValueId phi_id : k.phis()) {
    const Instruction& phi = k.instr(phi_id);
    const double c = chain[static_cast<std::size_t>(phi.phi_update)];
    cost.latency_chain = std::max(cost.latency_chain, c);
  }
  return cost;
}

double jitter(const LoopKernel& k, const TargetDesc& t, double noise) {
  Rng rng(hash_string(k.name) ^ hash_string(t.name) ^
          (static_cast<std::uint64_t>(k.vf) * 0x9e37u));
  return 1.0 + rng.uniform(-noise, noise);
}

}  // namespace

PerfEstimate estimate(const LoopKernel& kernel, const TargetDesc& target,
                      std::int64_t n) {
  PerfEstimate est;
  const BodyCost cost = body_cost(kernel, target);
  const MemLevel& level = residency_level(kernel, target, n);

  est.throughput_bound =
      std::max({cost.mem, cost.fp, cost.integer,
                cost.instr_count / target.issue_width});
  est.latency_bound = cost.latency_chain;
  est.memory_bound = cost.mem_bytes / level.bytes_per_cycle;

  // Soft maximum: the dominant bound plus a fraction of the others, because
  // real pipelines overlap imperfectly.
  const double dominant =
      std::max({est.throughput_bound, est.latency_bound, est.memory_bound});
  const double rest = est.throughput_bound + est.latency_bound +
                      est.memory_bound - dominant;
  double bookkeeping = kernel.vf > 1 ? target.vec_loop_overhead_cycles
                                     : target.loop_overhead_cycles;
  if (kernel.predicated)
    // whilelt + predicate bookkeeping per block of the governed loop.
    bookkeeping += target.vl.whilelt_cycles + target.vl.predicate_op_cycles;
  // Register pressure: each grand level (every outer level except the one
  // the engines sweep) keeps an induction value and a bound live across the
  // entire body, competing with body values for the register file.
  const std::size_t grand_levels =
      kernel.nest.size() > 1 ? kernel.nest.size() - 1 : 0;
  if (grand_levels > 0)
    bookkeeping += 0.0625 * static_cast<double>(grand_levels);
  est.cycles_per_body = dominant + 0.25 * rest + bookkeeping;

  // Per-entry overheads.
  if (kernel.vf > 1) {
    // Predicated whole loops swap the fixed-VF prologue (runtime VF probe,
    // remainder setup) for the VL-agnostic loop setup (ptrue/whilelt seed).
    est.entry_overhead = kernel.predicated ? target.vl.whole_loop_setup_cycles
                                           : target.vec_prologue_cycles;
    for (const ir::ValueId phi_id : kernel.phis()) {
      const Instruction& phi = kernel.instr(phi_id);
      if (phi.reduction != ir::ReductionKind::None)
        est.entry_overhead +=
            target.reduction_tail_cycles(phi.type.elem, kernel.vf);
      else
        est.entry_overhead += 3.0;  // recurrence lane extract
    }
  }

  const std::int64_t iters = kernel.trip.iterations(n);
  // A predicated whole loop runs the tail as one extra governed block
  // instead of handing it to a scalar epilogue: ceil instead of floor.
  est.body_executions = kernel.vf <= 1 ? iters
                        : kernel.predicated
                            ? (iters + kernel.vf - 1) / kernel.vf
                            : iters / kernel.vf;
  const std::int64_t outer = kernel.nest.total_outer_iterations();
  est.total_cycles =
      outer * (est.body_executions * est.cycles_per_body + est.entry_overhead);
  // Every grand level re-enters its own counted loop: charge the scalar
  // loop bookkeeping once per iteration of each grand level (a 2-deep nest
  // has no grand levels, keeping the legacy estimate bit-identical).
  std::int64_t entries = 1;
  for (std::size_t g = 0; g + 1 < kernel.nest.size(); ++g) {
    entries *= std::max<std::int64_t>(kernel.nest.levels[g].trip, 0);
    est.total_cycles += static_cast<double>(entries) *
                        target.loop_overhead_cycles;
  }
  return est;
}

double measure_scalar_cycles(const LoopKernel& scalar, const TargetDesc& target,
                             std::int64_t n, double noise) {
  VECCOST_ASSERT(scalar.vf == 1, "measure_scalar_cycles needs a scalar kernel");
  const PerfEstimate est = estimate(scalar, target, n);
  return est.total_cycles * jitter(scalar, target, noise);
}

double measure_versioned_scalar_cycles(const LoopKernel& scalar,
                                        const TargetDesc& target,
                                        std::int64_t n, double noise) {
  const PerfEstimate est = estimate(scalar, target, n);
  const std::int64_t outer = scalar.nest.total_outer_iterations();
  // The failed overlap check costs roughly the vector prologue per entry.
  const double total =
      est.total_cycles + outer * target.vec_prologue_cycles;
  Rng rng(hash_string(scalar.name) ^ hash_string(target.name) ^ 0xC4ECu);
  return total * (1.0 + rng.uniform(-noise, noise));
}

double measure_vector_cycles(const LoopKernel& vec, const LoopKernel& scalar,
                             const TargetDesc& target, std::int64_t n,
                             double noise) {
  VECCOST_ASSERT(vec.vf > 1, "measure_vector_cycles needs a widened kernel");
  const PerfEstimate vest = estimate(vec, target, n);
  // Predicated whole loops have no scalar epilogue: the tail is one extra
  // governed vector block, already counted by estimate()'s ceil division.
  if (vec.predicated) return vest.total_cycles * jitter(vec, target, noise);
  const PerfEstimate sest = estimate(scalar, target, n);
  // The scalar epilogue covers whatever the wide main loop leaves behind —
  // in scalar iteration space, which differs from vec space when the
  // pipeline unrolled or rerolled before widening.
  const VectorSplit sp = split_vector_range(vec, scalar, n);
  const std::int64_t remainder = sp.scalar_iters - sp.scalar_resume;
  const std::int64_t outer = scalar.nest.total_outer_iterations();
  const double total =
      vest.total_cycles + outer * remainder * sest.cycles_per_body;
  return total * jitter(vec, target, noise);
}

double measure_speedup(const LoopKernel& vec, const LoopKernel& scalar,
                       const TargetDesc& target, std::int64_t n, double noise) {
  const double s = measure_scalar_cycles(scalar, target, n, noise);
  const double v = measure_vector_cycles(vec, scalar, target, n, noise);
  VECCOST_ASSERT(v > 0, "non-positive vector time");
  return s / v;
}

double measure_slp_cycles(const LoopKernel& original,
                          const vectorizer::SlpPlan& plan,
                          const TargetDesc& target, std::int64_t n) {
  VECCOST_ASSERT(original.vf == 1, "measure_slp_cycles needs a scalar kernel");
  // Pack member ids refer to plan.body (the original kernel, or its
  // pre-unrolled form when plan.unroll > 1).
  const LoopKernel& scalar = plan.unroll > 1 ? plan.body : original;
  // Per-instruction pack membership: width for the representative (first)
  // member, -1 for the other members (their work is folded into the pack).
  std::vector<int> role(scalar.body.size(), 0);
  std::vector<const vectorizer::Pack*> pack_of(scalar.body.size(), nullptr);
  for (const auto& pack : plan.packs) {
    for (std::size_t m = 0; m < pack.members.size(); ++m) {
      const auto id = static_cast<std::size_t>(pack.members[m]);
      role[id] = (m == 0) ? pack.width : -1;
      pack_of[id] = &pack;
    }
  }

  const auto invariant = analysis::invariant_mask(scalar);
  double mem = 0, fp = 0, integer = 0, instr_count = 0, mem_bytes = 0;
  double shuffle_cost = 0;
  for (std::size_t id = 0; id < scalar.body.size(); ++id) {
    const Instruction& inst = scalar.body[id];
    if (role[id] < 0) continue;  // folded into its pack
    if (is_free(scalar, invariant, id)) continue;
    const OpClass cls = ir::classify(inst.op, ir::is_float(inst.type.elem));

    double rtp;
    if (role[id] > 0) {
      const int width = role[id];
      const int native = target.native_ops(inst.type.elem, width);
      const vectorizer::Pack& pack = *pack_of[id];
      if (pack.op == Opcode::Broadcast) {
        // Build-vector of distinct leaves: inserts on the SIMD pipe.
        shuffle_cost += width * target.vector_timing(OpClass::Shuffle,
                                                     inst.type.elem).rthroughput;
        continue;
      }
      OpClass eff = cls;
      if (ir::is_memory_op(inst.op) && !pack.contiguous)
        eff = ir::is_store_op(inst.op) ? OpClass::MemScatter : OpClass::MemGather;
      rtp = native * target.vector_timing(eff, inst.type.elem).rthroughput;
      if (eff == OpClass::MemGather || eff == OpClass::MemScatter)
        rtp += width * target.gather_per_lane_cycles;
      if (ir::is_memory_op(inst.op))
        mem_bytes += width * ir::byte_size(inst.type.elem);
      instr_count += native;
    } else {
      rtp = target.scalar_timing(cls, inst.type.elem).rthroughput;
      if (ir::is_memory_op(inst.op))
        mem_bytes += ir::byte_size(inst.type.elem);
      instr_count += 1;
    }
    switch (TargetDesc::resource_of(cls)) {
      case Resource::Memory: mem += rtp; break;
      case Resource::FloatSimd: fp += rtp; break;
      case Resource::Integer: integer += rtp; break;
      case Resource::None: break;
    }
  }
  fp += shuffle_cost;

  const MemLevel& level = residency_level(scalar, target, n);
  const double throughput =
      std::max({mem, fp, integer, instr_count / target.issue_width});
  const double memory = mem_bytes / level.bytes_per_cycle;
  const double dominant = std::max(throughput, memory);
  const double rest = throughput + memory - dominant;
  const double per_iter =
      dominant + 0.25 * rest + target.loop_overhead_cycles;

  const std::int64_t iters = scalar.trip.iterations(n);
  const std::int64_t outer = scalar.nest.total_outer_iterations();
  Rng rng(hash_string(scalar.name) ^ hash_string(target.name) ^ 0x51Du);
  const double j = 1.0 + rng.uniform(-0.015, 0.015);
  return outer * iters * per_iter * j;
}

}  // namespace veccost::machine
