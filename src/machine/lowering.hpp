// Lowering pass: compile a LoopKernel body into a flat micro-op program.
//
// The reference interpreter (machine/executor.cpp) re-derives everything per
// block: it re-dispatches constants and parameters, resolves operand values
// through nested vector<vector<double>> state, re-reads MemIndex payloads and
// re-selects the rounding rule from the instruction type on every lane of
// every iteration. The lowering pass does all of that exactly once per
// (kernel, lane-count) pair and emits a dense `LoweredProgram`:
//
//  * every SSA value gets a contiguous *slot* — `lanes` consecutive doubles
//    in one flat array, addressed by the precomputed base `value_id * lanes`;
//  * Const/Param instructions disappear from the body: they are folded into
//    a setup list applied once when an ExecContext binds a workload;
//  * OuterIndVar instructions become a per-outer-iteration fill list;
//  * Phi instructions vanish too — a phi's slot *is* its loop-carried state,
//    and `PhiPlan` records the init value (param already resolved) and the
//    update slot the engine commits after every block;
//  * memory ops pre-fold their affine index into `base_off + lin*(m+l)
//    + j_scale*j + n_scale*n` where `lin = scale_i * step`, `j_scale` is the
//    innermost-outer level's coefficient and `base_off = scale_i * start +
//    offset`; coefficients of deeper ("grand") outer levels are deduplicated
//    into `ext_scales` and folded to one flat per-combination offset the
//    engine adds through `MicroOp::ext` (absent entirely at depth <= 2);
//  * the f32/int rounding decision collapses into a 4-way `Rounding` tag.
//
// The engine that runs these programs lives in machine/exec_engine.hpp. The
// reference interpreter stays authoritative (tests/engine_test.cpp asserts
// bit-identical behaviour over the full suite); this file must encode the
// exact same semantics, only earlier.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "ir/loop.hpp"

namespace veccost::machine {

/// Post-operation rounding rule, pre-folded from the instruction's scalar
/// type (the reference interpreter's `round_to`).
enum class Rounding : std::uint8_t {
  None,   ///< f64: keep the double
  F32,    ///< round through float
  Bool,   ///< i1: normalize to 0/1
  Trunc,  ///< integer types: truncate toward zero
};

[[nodiscard]] inline Rounding rounding_of(ir::ScalarType t) {
  switch (t) {
    case ir::ScalarType::F32: return Rounding::F32;
    case ir::ScalarType::F64: return Rounding::None;
    case ir::ScalarType::I1: return Rounding::Bool;
    default: return Rounding::Trunc;
  }
}

[[nodiscard]] inline double apply_rounding(double v, Rounding r) {
  switch (r) {
    case Rounding::None: return v;
    case Rounding::F32: return static_cast<double>(static_cast<float>(v));
    case Rounding::Bool: return v != 0.0 ? 1.0 : 0.0;
    case Rounding::Trunc: return std::trunc(v);
  }
  return v;
}

/// Identity element of a reduction, shared by both executors.
[[nodiscard]] inline double reduction_identity(ir::ReductionKind kind) {
  switch (kind) {
    case ir::ReductionKind::Sum: return 0.0;
    case ir::ReductionKind::Prod: return 1.0;
    case ir::ReductionKind::Min: return std::numeric_limits<double>::infinity();
    case ir::ReductionKind::Max: return -std::numeric_limits<double>::infinity();
    case ir::ReductionKind::Or: return 0.0;
    case ir::ReductionKind::None: return 0.0;
  }
  return 0.0;
}

/// Horizontal reduction over `count` lanes, rounding the accumulator to f32
/// after every step for F32 data — the one reassociation point of the model,
/// shared verbatim by the reference interpreter and the lowered engine.
[[nodiscard]] inline double horizontal_reduce(ir::ReductionKind kind,
                                              const double* lanes,
                                              std::size_t count,
                                              ir::ScalarType elem) {
  double acc = reduction_identity(kind);
  for (std::size_t i = 0; i < count; ++i) {
    const double v = lanes[i];
    switch (kind) {
      case ir::ReductionKind::Sum: acc += v; break;
      case ir::ReductionKind::Prod: acc *= v; break;
      case ir::ReductionKind::Min: acc = std::min(acc, v); break;
      case ir::ReductionKind::Max: acc = std::max(acc, v); break;
      case ir::ReductionKind::Or:
        acc = static_cast<double>(static_cast<std::int64_t>(acc) |
                                  static_cast<std::int64_t>(v));
        break;
      case ir::ReductionKind::None: acc = v; break;  // last value
    }
    if (elem == ir::ScalarType::F32)
      acc = static_cast<double>(static_cast<float>(acc));
  }
  return acc;
}

/// One lowered instruction. Slot fields are bases into the ExecContext's
/// flat lane storage (`value_id * lanes`); -1 = absent.
struct MicroOp {
  ir::Opcode op = ir::Opcode::Const;
  Rounding round = Rounding::None;
  bool int_divide = false;          ///< Div/Rem on integer data
  ir::ScalarType elem = ir::ScalarType::F32;       ///< reduce rounding
  ir::ReductionKind reduce = ir::ReductionKind::None;  ///< Reduce* kind
  std::int32_t out = -1;            ///< result slot base
  std::int32_t a = -1;              ///< operand slot bases
  std::int32_t b = -1;
  std::int32_t c = -1;
  std::int32_t pred = -1;           ///< predicate slot base (memory ops)
  std::int32_t indirect = -1;       ///< indirect index slot base
  std::int32_t array = -1;          ///< memory ops: workload array ordinal
  std::int64_t lin = 0;             ///< affine index: scale_i * trip.step
  std::int64_t base_off = 0;        ///< scale_i * start + offset (or offset)
  std::int64_t j_scale = 0;         ///< affine index: innermost-outer coeff
  std::int64_t n_scale = 0;         ///< affine index: problem-size coefficient
  /// Grand-level (levels above the innermost-outer one) affine contribution:
  /// index into LoweredProgram::ext_scales, or -1 when every grand
  /// coefficient is zero — which is always the case at nest depth <= 2, so
  /// the legacy address form pays nothing.
  std::int32_t ext = -1;
};

/// Fused micro-op units produced by the lowering peephole post-pass
/// (`fuse_program`). Each kind names a producer/consumer pair (or triple)
/// whose intermediate value travels in a register instead of through the
/// slot array, with one dispatch for the whole unit.
enum class FusedKind : std::uint8_t {
  None,         ///< single micro-op, dispatched as today
  LoadOp,       ///< load family -> elementwise consumer
  OpStore,      ///< elementwise producer -> store family (the stored value)
  LoadOpStore,  ///< load -> elementwise -> store, one pass per lane
  MulAdd,       ///< Mul -> Add/Sub (multiply-accumulate, both roundings kept)
  IndexLoad,    ///< index producer -> indirect load (fused gather address)
};

[[nodiscard]] const char* to_string(FusedKind kind);

/// Handler ids of the threaded-dispatch continuation table: one per superop
/// kind plus one per single-op category. `kHandlerEnd` terminates a
/// schedule, so the engine's dispatch loop needs no bounds check.
enum : std::uint8_t {
  kHandlerEnd = 0,
  kHandlerIndVar,
  kHandlerLoad,
  kHandlerStore,
  kHandlerBreak,
  kHandlerBroadcast,
  kHandlerSplice,
  kHandlerReduce,
  kHandlerElem,
  kHandlerLoadOp,
  kHandlerOpStore,
  kHandlerLoadOpStore,
  kHandlerMulAdd,
  kHandlerIndexLoad,
  kHandlerCount,
};

/// Operand-substitution mask bits: which consumer operands take the fused
/// producer's register value instead of reading the slot array.
inline constexpr std::uint8_t kSubA = 1;
inline constexpr std::uint8_t kSubB = 2;
inline constexpr std::uint8_t kSubC = 4;
inline constexpr std::uint8_t kSubIndirect = 8;

/// One unit of the fused schedule: up to three micro-ops (indices into
/// `LoweredProgram::ops`) executed per lane with intermediates in registers.
/// `keep_first`/`keep_second` record whether the producer's slot must still
/// be written because another op, predicate, index, or phi update reads it.
struct SuperOp {
  FusedKind kind = FusedKind::None;
  std::uint8_t handler = kHandlerEnd;
  std::uint8_t sub = 0;   ///< second op's substituted operands (kSub* bits)
  std::uint8_t sub2 = 0;  ///< third op's substituted operands (triples)
  bool keep_first = false;
  bool keep_second = false;
  std::int32_t first = -1;
  std::int32_t second = -1;
  std::int32_t third = -1;
};

/// Loop-carried state of one phi: the phi's slot holds the live value, the
/// engine copies `update`'s lanes into it after every committed block.
struct PhiPlan {
  std::int32_t slot = -1;    ///< the phi's own slot base
  std::int32_t update = -1;  ///< slot base of the next-iteration value
  double init = 0.0;         ///< initial value, phi_init_param pre-resolved
  ir::ReductionKind reduction = ir::ReductionKind::None;
  ir::ScalarType elem = ir::ScalarType::F32;
};

/// A kernel compiled for one fixed lane count.
struct LoweredProgram {
  std::string name;
  int lanes = 1;
  std::int32_t num_values = 0;   ///< body size; slot array = num_values*lanes
  std::size_t num_arrays = 0;
  std::int64_t start = 0;        ///< trip.start
  std::int64_t step = 1;         ///< trip.step
  std::vector<MicroOp> ops;      ///< dynamic body ops, original order
  /// Slot-base/value pairs filled once per workload bind (folded Const/Param).
  std::vector<std::pair<std::int32_t, double>> constants;
  /// OuterIndVar slot bases, filled with j at the top of each outer trip.
  std::vector<std::int32_t> outer_slots;
  /// Deduplicated grand-level coefficient vectors (outermost first, one
  /// entry per level above the innermost-outer one). Before each outer
  /// combination the driver folds them with the grand induction values into
  /// one flat offset per entry (`LoweredEngine::set_grand_values`); memory
  /// ops reference theirs through `MicroOp::ext`. Empty at depth <= 2.
  std::vector<std::vector<std::int64_t>> ext_scales;
  /// OuterIndVar slots bound to grand levels: (slot base, grand level).
  /// Filled with the level's induction value once per outer combination.
  std::vector<std::pair<std::int32_t, std::int32_t>> grand_slots;
  std::vector<PhiPlan> phis;     ///< body order, matching LoopKernel::phis()
  /// Kernel live-outs as indices into `phis` (live-outs are always phis).
  std::vector<std::int32_t> live_out_phis;
  /// True when no phi's update value is a *different* phi: the commit can
  /// copy update -> slot directly without staging through scratch.
  bool direct_commit = true;

  // --- Strip-mined execution plan (untraced scalar path) ------------------
  // When `strip_ok`, executing each op over a whole strip of iterations
  // before moving to the next op ("column-major") is bit-identical to the
  // row-major iteration order: no Break, every memory op is independent of
  // loop-carried state, and no two accesses to the same array can touch the
  // same element on different iterations (proved from the affine index
  // maps). Ops that *do* read phi state are pure elementwise computations;
  // the engine runs them lane-serially inside each strip, preserving the
  // exact sequential rounding order of reductions and recurrences. This
  // amortizes the dispatch switch over kStripWidth iterations — the bulk of
  // the lowered engine's speedup on parallel kernels.
  bool strip_ok = false;
  /// Widest strip the memory-safety proof licenses. Accesses to a written
  /// array that share (lin, j_scale, n_scale) but differ in base offset can
  /// only collide across iterations that are |Δbase / lin| apart; a strip
  /// reorders accesses across at most (strip width) iterations, so column
  /// execution stays bit-identical whenever width <= that distance.
  /// INT64_MAX when the identical-map argument needs no distance bound.
  std::int64_t strip_max_lanes = std::numeric_limits<std::int64_t>::max();
  std::vector<std::int32_t> strip_column;  ///< op indices, column-executable
  std::vector<std::int32_t> strip_serial;  ///< op indices, phi-dependent

  // --- Fused superop schedules (peephole post-pass) -----------------------
  // `schedule` covers every op in `ops` in original (row-major) order,
  // terminated by a kHandlerEnd sentinel for the threaded dispatch loop.
  // `fused_column` is the fused form of `strip_column` (no terminator); the
  // strip-safety proof above also licenses its within-unit interleaving, so
  // triples fuse there even when a row-major block could not. `strip_serial`
  // stays unfused: the single-phi register-carry fast path already covers
  // the hot reduction shapes.
  std::vector<SuperOp> schedule;
  std::vector<SuperOp> fused_column;
  std::int32_t fused_ops = 0;  ///< micro-ops absorbed into superop tails

  /// True when this program was lowered with the innermost loop pair swapped
  /// (see lower_interchanged): lanes run over the kernel's innermost-outer
  /// level and the engine's outer index walks the kernel's inner iterations.
  bool interchanged = false;
};

/// Lower `kernel` for execution at `lanes` lanes per block (1 for scalar
/// kernels, vf for widened bodies). Runs the fusion post-pass, so the
/// returned program always carries a valid `schedule`/`fused_column`. Pure;
/// the result references nothing in the kernel and can outlive it.
[[nodiscard]] LoweredProgram lower(const ir::LoopKernel& kernel, int lanes);

/// Interchanged lowering for the adjacent level pair (a, b) of the kernel's
/// nest, numbered over the FULL nest 0..depth-1 with the innermost `i` loop
/// last. The default (-1, -1) selects the innermost pair (depth-2, depth-1).
///
/// For the innermost pair the returned program runs the innermost-outer
/// level's iterations as lanes and the kernel's inner iterations as the
/// engine's sequential outer index, turning inner-carried recurrences (which
/// defeat the normal strip plan) into column-parallel sweeps — for TSVC's
/// column-stride 2D loops this also converts the memory walk to stride-1.
/// Grand levels (above the swapped pair) are untouched: each grand
/// combination completes a whole transposed sweep, so combination order is
/// preserved and their contribution rides `MicroOp::ext` as usual.
///
/// For an outer-outer pair the swap happens at the IR level (the two
/// NestInfo entries, their index coefficients, and OuterIndVar levels trade
/// places) and the result is a NORMAL lowering of the permuted kernel —
/// `interchanged` stays false and the caller drives the permuted nest with
/// the standard odometer.
///
/// Returns nullptr when the interchange cannot be proven bit-identical by
/// the classical lexicographic-negativity scan: no same-element access pair
/// on a written array may have a dependence whose direction vector is
/// positive at level `a` and negative at level `b` (those pairs would
/// execute in the opposite order afterwards). The innermost pair
/// additionally requires a constant inner trip count and a phi/break-free
/// body; within-inner distances are still bounded by `strip_max_lanes` on
/// the result, and the caller remains responsible for preserving throw
/// behavior (see the engine's whole-range bounds check).
[[nodiscard]] std::unique_ptr<LoweredProgram> lower_interchanged(
    const ir::LoopKernel& kernel, int lanes, int a = -1, int b = -1);

/// Canonical text dump of a lowered program: ops with resolved slots, the
/// phi plan, the strip classification, and the fused schedules. Two programs
/// with equal dumps execute identically; tests use this to assert the
/// lowering (and fusion) survive an IR print -> parse round trip.
[[nodiscard]] std::string to_text(const LoweredProgram& p);

}  // namespace veccost::machine
