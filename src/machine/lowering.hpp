// Lowering pass: compile a LoopKernel body into a flat micro-op program.
//
// The reference interpreter (machine/executor.cpp) re-derives everything per
// block: it re-dispatches constants and parameters, resolves operand values
// through nested vector<vector<double>> state, re-reads MemIndex payloads and
// re-selects the rounding rule from the instruction type on every lane of
// every iteration. The lowering pass does all of that exactly once per
// (kernel, lane-count) pair and emits a dense `LoweredProgram`:
//
//  * every SSA value gets a contiguous *slot* — `lanes` consecutive doubles
//    in one flat array, addressed by the precomputed base `value_id * lanes`;
//  * Const/Param instructions disappear from the body: they are folded into
//    a setup list applied once when an ExecContext binds a workload;
//  * OuterIndVar instructions become a per-outer-iteration fill list;
//  * Phi instructions vanish too — a phi's slot *is* its loop-carried state,
//    and `PhiPlan` records the init value (param already resolved) and the
//    update slot the engine commits after every block;
//  * memory ops pre-fold their affine index into `base_off + lin*(m+l)
//    + j_scale*j + n_scale*n` where `lin = scale_i * step` and
//    `base_off = scale_i * start + offset`;
//  * the f32/int rounding decision collapses into a 4-way `Rounding` tag.
//
// The engine that runs these programs lives in machine/exec_engine.hpp. The
// reference interpreter stays authoritative (tests/engine_test.cpp asserts
// bit-identical behaviour over the full suite); this file must encode the
// exact same semantics, only earlier.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "ir/loop.hpp"

namespace veccost::machine {

/// Post-operation rounding rule, pre-folded from the instruction's scalar
/// type (the reference interpreter's `round_to`).
enum class Rounding : std::uint8_t {
  None,   ///< f64: keep the double
  F32,    ///< round through float
  Bool,   ///< i1: normalize to 0/1
  Trunc,  ///< integer types: truncate toward zero
};

[[nodiscard]] inline Rounding rounding_of(ir::ScalarType t) {
  switch (t) {
    case ir::ScalarType::F32: return Rounding::F32;
    case ir::ScalarType::F64: return Rounding::None;
    case ir::ScalarType::I1: return Rounding::Bool;
    default: return Rounding::Trunc;
  }
}

[[nodiscard]] inline double apply_rounding(double v, Rounding r) {
  switch (r) {
    case Rounding::None: return v;
    case Rounding::F32: return static_cast<double>(static_cast<float>(v));
    case Rounding::Bool: return v != 0.0 ? 1.0 : 0.0;
    case Rounding::Trunc: return std::trunc(v);
  }
  return v;
}

/// Identity element of a reduction, shared by both executors.
[[nodiscard]] inline double reduction_identity(ir::ReductionKind kind) {
  switch (kind) {
    case ir::ReductionKind::Sum: return 0.0;
    case ir::ReductionKind::Prod: return 1.0;
    case ir::ReductionKind::Min: return std::numeric_limits<double>::infinity();
    case ir::ReductionKind::Max: return -std::numeric_limits<double>::infinity();
    case ir::ReductionKind::Or: return 0.0;
    case ir::ReductionKind::None: return 0.0;
  }
  return 0.0;
}

/// Horizontal reduction over `count` lanes, rounding the accumulator to f32
/// after every step for F32 data — the one reassociation point of the model,
/// shared verbatim by the reference interpreter and the lowered engine.
[[nodiscard]] inline double horizontal_reduce(ir::ReductionKind kind,
                                              const double* lanes,
                                              std::size_t count,
                                              ir::ScalarType elem) {
  double acc = reduction_identity(kind);
  for (std::size_t i = 0; i < count; ++i) {
    const double v = lanes[i];
    switch (kind) {
      case ir::ReductionKind::Sum: acc += v; break;
      case ir::ReductionKind::Prod: acc *= v; break;
      case ir::ReductionKind::Min: acc = std::min(acc, v); break;
      case ir::ReductionKind::Max: acc = std::max(acc, v); break;
      case ir::ReductionKind::Or:
        acc = static_cast<double>(static_cast<std::int64_t>(acc) |
                                  static_cast<std::int64_t>(v));
        break;
      case ir::ReductionKind::None: acc = v; break;  // last value
    }
    if (elem == ir::ScalarType::F32)
      acc = static_cast<double>(static_cast<float>(acc));
  }
  return acc;
}

/// One lowered instruction. Slot fields are bases into the ExecContext's
/// flat lane storage (`value_id * lanes`); -1 = absent.
struct MicroOp {
  ir::Opcode op = ir::Opcode::Const;
  Rounding round = Rounding::None;
  bool int_divide = false;          ///< Div/Rem on integer data
  ir::ScalarType elem = ir::ScalarType::F32;       ///< reduce rounding
  ir::ReductionKind reduce = ir::ReductionKind::None;  ///< Reduce* kind
  std::int32_t out = -1;            ///< result slot base
  std::int32_t a = -1;              ///< operand slot bases
  std::int32_t b = -1;
  std::int32_t c = -1;
  std::int32_t pred = -1;           ///< predicate slot base (memory ops)
  std::int32_t indirect = -1;       ///< indirect index slot base
  std::int32_t array = -1;          ///< memory ops: workload array ordinal
  std::int64_t lin = 0;             ///< affine index: scale_i * trip.step
  std::int64_t base_off = 0;        ///< scale_i * start + offset (or offset)
  std::int64_t j_scale = 0;         ///< affine index: outer coefficient
  std::int64_t n_scale = 0;         ///< affine index: problem-size coefficient
};

/// Loop-carried state of one phi: the phi's slot holds the live value, the
/// engine copies `update`'s lanes into it after every committed block.
struct PhiPlan {
  std::int32_t slot = -1;    ///< the phi's own slot base
  std::int32_t update = -1;  ///< slot base of the next-iteration value
  double init = 0.0;         ///< initial value, phi_init_param pre-resolved
  ir::ReductionKind reduction = ir::ReductionKind::None;
  ir::ScalarType elem = ir::ScalarType::F32;
};

/// A kernel compiled for one fixed lane count.
struct LoweredProgram {
  std::string name;
  int lanes = 1;
  std::int32_t num_values = 0;   ///< body size; slot array = num_values*lanes
  std::size_t num_arrays = 0;
  std::int64_t start = 0;        ///< trip.start
  std::int64_t step = 1;         ///< trip.step
  std::vector<MicroOp> ops;      ///< dynamic body ops, original order
  /// Slot-base/value pairs filled once per workload bind (folded Const/Param).
  std::vector<std::pair<std::int32_t, double>> constants;
  /// OuterIndVar slot bases, filled with j at the top of each outer trip.
  std::vector<std::int32_t> outer_slots;
  std::vector<PhiPlan> phis;     ///< body order, matching LoopKernel::phis()
  /// Kernel live-outs as indices into `phis` (live-outs are always phis).
  std::vector<std::int32_t> live_out_phis;
  /// True when no phi's update value is a *different* phi: the commit can
  /// copy update -> slot directly without staging through scratch.
  bool direct_commit = true;

  // --- Strip-mined execution plan (untraced scalar path) ------------------
  // When `strip_ok`, executing each op over a whole strip of iterations
  // before moving to the next op ("column-major") is bit-identical to the
  // row-major iteration order: no Break, every memory op is independent of
  // loop-carried state, and no two accesses to the same array can touch the
  // same element on different iterations (proved from the affine index
  // maps). Ops that *do* read phi state are pure elementwise computations;
  // the engine runs them lane-serially inside each strip, preserving the
  // exact sequential rounding order of reductions and recurrences. This
  // amortizes the dispatch switch over kStripWidth iterations — the bulk of
  // the lowered engine's speedup on parallel kernels.
  bool strip_ok = false;
  std::vector<std::int32_t> strip_column;  ///< op indices, column-executable
  std::vector<std::int32_t> strip_serial;  ///< op indices, phi-dependent
};

/// Lower `kernel` for execution at `lanes` lanes per block (1 for scalar
/// kernels, vf for widened bodies). Pure; the result references nothing in
/// the kernel and can outlive it.
[[nodiscard]] LoweredProgram lower(const ir::LoopKernel& kernel, int lanes);

}  // namespace veccost::machine
