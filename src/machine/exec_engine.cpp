#include "machine/exec_engine.hpp"

#include <array>

#include "obs/metrics.hpp"

namespace veccost::machine {

void ExecContext::bind(const LoweredProgram& prog, Workload& wl) {
  VECCOST_ASSERT(wl.arrays.size() == prog.num_arrays,
                 "workload/array mismatch for " + prog.name);
  VECCOST_COUNTER_ADD("engine.context_binds", 1);
  // assign() keeps capacity: repeated binds of same-or-smaller programs are
  // allocation-free.
  const std::size_t needed = static_cast<std::size_t>(prog.num_values) *
                             static_cast<std::size_t>(prog.lanes);
  if (slots.capacity() >= needed)
    VECCOST_COUNTER_ADD("engine.context_reuses", 1);
  slots.assign(static_cast<std::size_t>(prog.num_values) *
                   static_cast<std::size_t>(prog.lanes),
               0.0);
  bases.resize(wl.arrays.size());
  lengths.resize(wl.arrays.size());
  for (std::size_t a = 0; a < wl.arrays.size(); ++a) {
    bases[a] = wl.arrays[a].data();
    lengths[a] = static_cast<std::int64_t>(wl.arrays[a].size());
  }
  n = wl.n;
  for (const auto& [base, value] : prog.constants)
    for (int l = 0; l < prog.lanes; ++l) slots[static_cast<std::size_t>(base + l)] = value;
  if (!prog.direct_commit)
    phi_scratch.assign(prog.phis.size() * static_cast<std::size_t>(prog.lanes),
                       0.0);
}

ExecContext& thread_exec_context(std::size_t which) {
  thread_local std::array<ExecContext, 2> contexts;
  return contexts[which];
}

ExecResult lowered_execute_scalar(const ir::LoopKernel& kernel, Workload& wl) {
  VECCOST_ASSERT(kernel.vf == 1, "execute_scalar needs a scalar kernel");
  const std::int64_t iters = kernel.trip.iterations(wl.n);
  {
    // Strip-mined fast path: when the lowering pass proved column-major
    // execution bit-identical (strip_ok — plan is lane-count independent, so
    // probing the 1-lane program is enough), re-lower at kStripWidth lanes
    // and amortize op dispatch over whole strips. Untraced only: the strip
    // order would permute the memory trace.
    const LoweredProgram probe = lower(kernel, 1);
    if (probe.strip_ok && iters >= kStripWidth) {
      VECCOST_COUNTER_ADD("engine.scalar_executions", 1);
      VECCOST_COUNTER_ADD("engine.strip_runs", 1);
      const LoweredProgram prog = lower(kernel, kStripWidth);
      LoweredEngine<0, NoTrace> engine(prog, wl, thread_exec_context(0));
      ExecResult result;
      std::vector<double> carries;
      engine.reset_carries(carries);  // covers a degenerate zero-trip outer loop
      const std::int64_t outer = kernel.has_outer ? kernel.outer_trip : 1;
      for (std::int64_t j = 0; j < outer; ++j) {
        engine.reset_carries(carries);
        result.iterations += engine.run_strips(j, iters, carries);
      }
      result.live_outs.reserve(prog.live_out_phis.size());
      for (const std::int32_t p : prog.live_out_phis)
        result.live_outs.push_back(carries[static_cast<std::size_t>(p)]);
      return result;
    }
  }
  VECCOST_COUNTER_ADD("engine.scalar_executions", 1);
  VECCOST_COUNTER_ADD("engine.lane_serial_fallbacks", 1);
  return lowered_execute_scalar_with(kernel, wl, NoTrace{});
}

ExecResult lowered_execute_scalar_traced(const ir::LoopKernel& kernel,
                                         Workload& wl,
                                         const AccessObserver& observer) {
  return lowered_execute_scalar_with(kernel, wl, ObserverTrace{&observer});
}

ExecResult lowered_execute_vectorized(const ir::LoopKernel& vec,
                                      const ir::LoopKernel& scalar,
                                      Workload& wl) {
  VECCOST_ASSERT(vec.vf > 1, "execute_vectorized needs a widened kernel");
  VECCOST_COUNTER_ADD("engine.vector_executions", 1);
  VECCOST_ASSERT(!vec.has_break() && !scalar.has_break(),
                 "cannot vectorize a loop with break");
  const std::int64_t iters = scalar.trip.iterations(wl.n);
  const std::int64_t vf = vec.vf;
  const std::int64_t main_iters = (iters / vf) * vf;

  const LoweredProgram vprog = lower(vec, static_cast<int>(vf));
  const LoweredProgram sprog = lower(scalar, 1);
  LoweredEngine<0, NoTrace> vengine(vprog, wl, thread_exec_context(0));
  LoweredEngine<1, NoTrace> sengine(sprog, wl, thread_exec_context(1));
  ExecResult result;
  const std::int64_t outer = scalar.has_outer ? scalar.outer_trip : 1;
  for (std::int64_t j = 0; j < outer; ++j) {
    vengine.reset_phis();
    result.iterations += vengine.run_range(j, 0, main_iters);
    // Hand the partial reduction / recurrence state to the scalar remainder.
    sengine.set_phi_inits(vengine.final_phi_values());
    result.iterations += sengine.run_range(j, main_iters, iters);
  }
  result.live_outs = sengine.live_outs();
  return result;
}

}  // namespace veccost::machine
