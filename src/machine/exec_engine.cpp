#include "machine/exec_engine.hpp"

#include <array>

#include "obs/metrics.hpp"
#include "support/hash.hpp"
#include "xform/analysis_manager.hpp"

namespace veccost::machine {

void ExecContext::bind(const LoweredProgram& prog, Workload& wl) {
  VECCOST_ASSERT(wl.arrays.size() == prog.num_arrays,
                 "workload/array mismatch for " + prog.name);
  VECCOST_COUNTER_ADD("engine.context_binds", 1);
  // assign() keeps capacity: repeated binds of same-or-smaller programs are
  // allocation-free.
  const std::size_t needed = static_cast<std::size_t>(prog.num_values) *
                             static_cast<std::size_t>(prog.lanes);
  if (slots.capacity() >= needed)
    VECCOST_COUNTER_ADD("engine.context_reuses", 1);
  slots.assign(static_cast<std::size_t>(prog.num_values) *
                   static_cast<std::size_t>(prog.lanes),
               0.0);
  bases.resize(wl.arrays.size());
  lengths.resize(wl.arrays.size());
  for (std::size_t a = 0; a < wl.arrays.size(); ++a) {
    bases[a] = wl.arrays[a].data();
    lengths[a] = static_cast<std::int64_t>(wl.arrays[a].size());
  }
  n = wl.n;
  for (const auto& [base, value] : prog.constants)
    for (int l = 0; l < prog.lanes; ++l) slots[static_cast<std::size_t>(base + l)] = value;
  if (!prog.direct_commit)
    phi_scratch.assign(prog.phis.size() * static_cast<std::size_t>(prog.lanes),
                       0.0);
}

ExecContext& thread_exec_context(std::size_t which) {
  thread_local std::array<ExecContext, 2> contexts;
  return contexts[which];
}

namespace {

struct ProgramCacheEntry {
  std::uint64_t key = 0;  ///< 0 = empty slot (keys are forced odd)
  std::shared_ptr<const LoweredProgram> prog;
};

constexpr std::size_t kProgramCacheSlots = 256;

/// Gate for running an interchanged program: every affine access must be
/// provably in bounds over the whole (lane, outer) rectangle — across every
/// grand-level combination — and nothing in the schedule may throw. When
/// nothing can throw, iteration order is unobservable, so the transposed
/// order is bit-identical; otherwise the caller falls back to row-major
/// order so a throw surfaces at the original iteration with the original
/// partial state. Accesses are affine in every index, so checking the
/// rectangle corners with the extreme grand contributions bounds the
/// extremes.
bool whole_range_in_bounds(const LoweredProgram& prog, const Workload& wl,
                           const ir::NestInfo& nest, std::int64_t lane_extent,
                           std::int64_t outer_extent) {
  // Extreme flat grand-level contribution per ext entry, over the whole
  // grand iteration box (each level's value spans [start, value(trip-1)]).
  std::vector<std::int64_t> ext_lo(prog.ext_scales.size(), 0);
  std::vector<std::int64_t> ext_hi(prog.ext_scales.size(), 0);
  for (std::size_t e = 0; e < prog.ext_scales.size(); ++e) {
    const auto& sc = prog.ext_scales[e];
    for (std::size_t g = 0; g < sc.size(); ++g) {
      const ir::LoopLevel& lvl = nest.levels[g];
      const std::int64_t a = sc[g] * lvl.start;
      const std::int64_t b =
          sc[g] * lvl.value(std::max<std::int64_t>(lvl.trip - 1, 0));
      ext_lo[e] += std::min(a, b);
      ext_hi[e] += std::max(a, b);
    }
  }
  for (const MicroOp& u : prog.ops) {
    if (u.int_divide) return false;  // divide-by-zero would move the throw
    if (!ir::is_memory_op(u.op)) continue;
    if (u.pred >= 0 || u.indirect >= 0) return false;
    const std::int64_t len =
        static_cast<std::int64_t>(wl.arrays[static_cast<std::size_t>(u.array)].size());
    const std::int64_t lo = u.ext >= 0 ? ext_lo[static_cast<std::size_t>(u.ext)] : 0;
    const std::int64_t hi = u.ext >= 0 ? ext_hi[static_cast<std::size_t>(u.ext)] : 0;
    for (int c = 0; c < 4; ++c) {
      const std::int64_t l = (c & 1) != 0 ? lane_extent - 1 : 0;
      const std::int64_t j = (c & 2) != 0 ? outer_extent - 1 : 0;
      const std::int64_t e =
          u.base_off + u.lin * l + u.j_scale * j + u.n_scale * wl.n;
      if (e + lo < 0 || e + hi >= len) return false;
    }
  }
  return true;
}

/// Iterate the GRAND levels only (all but the last) of `nest`:
/// `fn(grand_values)` once per combination, outermost slowest — the
/// interchange drivers' odometer (their lane dimension covers the last
/// level and their sequential dimension the inner loop).
template <typename Fn>
bool for_each_grand_combination(const ir::NestInfo& nest, Fn&& fn) {
  if (nest.size() <= 1) return fn(std::vector<std::int64_t>{});
  ir::NestInfo grand_nest;
  grand_nest.levels.assign(nest.levels.begin(), nest.levels.end() - 1);
  return for_each_outer_combination(
      grand_nest,
      [&](const std::vector<std::int64_t>& g, std::int64_t last_value) {
        std::vector<std::int64_t> full(g);
        full.push_back(last_value);
        return fn(full);
      });
}

/// Lane extent of the transposed (interchanged) path: the last outer
/// level's trip count; 1 when there is no outer level.
[[nodiscard]] std::int64_t last_level_trip(const ir::NestInfo& nest) {
  return nest.empty() ? 1 : nest.levels.back().trip;
}

}  // namespace

std::shared_ptr<const LoweredProgram> cached_lowering(
    const ir::LoopKernel& kernel, int lanes) {
  // Direct-mapped per thread: lookup is one hash + one compare, eviction is
  // overwrite. Callers hold their own shared_ptr copy, so a same-slot
  // eviction mid-run cannot destroy an in-use program. The content hash
  // covers every semantic kernel field (not the name), so two kernels that
  // lower identically may share an entry — by construction they execute
  // identically too.
  thread_local std::array<ProgramCacheEntry, kProgramCacheSlots> cache;
  support::ContentHasher h;
  h.mix(xform::kernel_content_hash(kernel));
  h.mix(static_cast<std::uint64_t>(lanes));
  const std::uint64_t key = h.value() | 1;
  ProgramCacheEntry& slot = cache[key % kProgramCacheSlots];
  if (slot.key == key) {
    VECCOST_COUNTER_ADD("engine.program_cache_hits", 1);
    return slot.prog;
  }
  VECCOST_COUNTER_ADD("engine.program_cache_misses", 1);
  slot.prog = std::make_shared<const LoweredProgram>(lower(kernel, lanes));
  slot.key = key;
  return slot.prog;
}

std::shared_ptr<const LoweredProgram> cached_interchange(
    const ir::LoopKernel& kernel, int a, int b) {
  thread_local std::array<ProgramCacheEntry, kProgramCacheSlots> cache;
  support::ContentHasher h;
  h.mix(xform::kernel_content_hash(kernel));
  h.mix(std::uint64_t{0x1c7e});  // separate keyspace from cached_lowering
  // The level pair is part of the key: the same kernel probed at different
  // adjacent pairs lowers to different programs (or different legality
  // verdicts) and must not collide on the content hash alone.
  h.mix(static_cast<std::uint64_t>(a + 1));
  h.mix(static_cast<std::uint64_t>(b + 1));
  const std::uint64_t key = h.value() | 1;
  ProgramCacheEntry& slot = cache[key % kProgramCacheSlots];
  if (slot.key == key) {
    VECCOST_COUNTER_ADD("engine.program_cache_hits", 1);
    return slot.prog;  // may be null: cached "interchange illegal" verdict
  }
  VECCOST_COUNTER_ADD("engine.program_cache_misses", 1);
  slot.prog = std::shared_ptr<const LoweredProgram>(
      lower_interchanged(kernel, kStripWidth, a, b));
  slot.key = key;
  return slot.prog;
}

ExecResult lowered_execute_scalar(const ir::LoopKernel& kernel, Workload& wl) {
  return lowered_execute_scalar(kernel, wl, dispatch_kind());
}

ExecResult lowered_execute_scalar(const ir::LoopKernel& kernel, Workload& wl,
                                  DispatchKind kind) {
  VECCOST_ASSERT(kernel.vf == 1, "execute_scalar needs a scalar kernel");
  const std::int64_t iters = kernel.trip.iterations(wl.n);
  const std::int64_t lane_extent = last_level_trip(kernel.nest);
  // Switch keeps the original per-op dispatch; Threaded and Batch run the
  // fused superop schedules (they differ only on the vectorized/sweep
  // paths). All three are bit-identical.
  const bool fused = kind != DispatchKind::Switch;
  const std::shared_ptr<const LoweredProgram> probe = cached_lowering(kernel, 1);
  VECCOST_COUNTER_ADD("engine.scalar_executions", 1);
  if (probe->strip_ok && probe->strip_max_lanes >= kStripWidth &&
      iters >= kStripWidth) {
    // Strip-mined fast path: when the lowering pass proved column-major
    // execution bit-identical (strip_ok — the plan is lane-count
    // independent, so probing the 1-lane program is enough), run at
    // kStripWidth lanes and amortize op dispatch over whole strips.
    // Untraced only: the strip order would permute the memory trace.
    VECCOST_COUNTER_ADD("engine.strip_runs", 1);
    const std::shared_ptr<const LoweredProgram> prog =
        cached_lowering(kernel, kStripWidth);
    LoweredEngine<0, NoTrace> engine(*prog, wl, thread_exec_context(0));
    ExecResult result;
    std::vector<double> carries;
    engine.reset_carries(carries);  // covers an empty outer iteration space
    for_each_outer_combination(
        kernel.nest,
        [&](const std::vector<std::int64_t>& grand, std::int64_t j) {
          engine.set_grand_values(grand);
          engine.reset_carries(carries);
          result.iterations += engine.run_strips(j, iters, carries, fused);
          return true;
        });
    result.live_outs.reserve(prog->live_out_phis.size());
    for (const std::int32_t p : prog->live_out_phis)
      result.live_outs.push_back(carries[static_cast<std::size_t>(p)]);
    return result;
  }
  if (kind == DispatchKind::Batch && !kernel.nest.empty() &&
      lane_extent >= 8 && iters >= 1) {
    // Loop-interchange fast path: nests with a true inner recurrence
    // (strip_ok = 0 above) often carry nothing across the last outer level.
    // lower_interchanged proves that and re-aims the lane dimension at that
    // level; the transposed program then strip-mines like any other, one
    // whole sweep per grand combination. Only taken when the whole
    // iteration box is provably in bounds and throw-free, so the reordering
    // is unobservable.
    const std::shared_ptr<const LoweredProgram> tprog = cached_interchange(kernel);
    if (tprog != nullptr && tprog->strip_ok &&
        tprog->strip_max_lanes >=
            std::min<std::int64_t>(kStripWidth, lane_extent) &&
        whole_range_in_bounds(*tprog, wl, kernel.nest, lane_extent, iters)) {
      VECCOST_COUNTER_ADD("engine.interchange_runs", 1);
      LoweredEngine<0, NoTrace> engine(*tprog, wl, thread_exec_context(0));
      ExecResult result;
      std::vector<double> carries;  // interchange legality excludes phis
      engine.reset_carries(carries);
      for_each_grand_combination(
          kernel.nest, [&](const std::vector<std::int64_t>& grand) {
            engine.set_grand_values(grand);
            for (std::int64_t jt = 0; jt < iters; ++jt)
              result.iterations +=
                  engine.run_strips(jt, lane_extent, carries, true);
            return true;
          });
      return result;
    }
  }
  VECCOST_COUNTER_ADD("engine.lane_serial_fallbacks", 1);
  LoweredEngine<1, NoTrace> engine(*probe, wl, thread_exec_context(0));
  ExecResult result;
  engine.reset_phis();  // zero-trip nests: live-outs are the phi inits
  for_each_outer_combination(
      kernel.nest,
      [&](const std::vector<std::int64_t>& grand, std::int64_t j) {
        engine.set_grand_values(grand);
        engine.reset_phis();
        result.iterations += fused ? engine.run_schedule(j, 0, iters)
                                   : engine.run_range(j, 0, iters);
        if (engine.broke()) {
          result.broke_early = true;
          return false;
        }
        return true;
      });
  result.live_outs = engine.live_outs();
  return result;
}

ExecResult lowered_execute_scalar_traced(const ir::LoopKernel& kernel,
                                         Workload& wl,
                                         const AccessObserver& observer) {
  // Traced executions stay on the unfused row-major path in every mode: the
  // trace order contract is per-op, per-lane program order.
  return lowered_execute_scalar_with(kernel, wl, ObserverTrace{&observer});
}

ExecResult lowered_execute_vectorized(const ir::LoopKernel& vec,
                                      const ir::LoopKernel& scalar,
                                      Workload& wl) {
  return lowered_execute_vectorized(vec, scalar, wl, dispatch_kind());
}

namespace {

/// Predicated whole-loop execution (llv<vl>): no scalar remainder engine —
/// the final partial block runs in the vector body under a whilelt-style
/// governing predicate (run_partial_block). The verifier guarantees every
/// phi is a reduction, so the accumulator's inactive lanes keep their
/// committed partial values and live_outs' horizontal reduce recovers the
/// exact total. Semantics match reference_execute_predicated bit for bit.
ExecResult lowered_execute_predicated(const ir::LoopKernel& vec,
                                      const ir::LoopKernel& scalar,
                                      Workload& wl, DispatchKind kind) {
  VECCOST_COUNTER_ADD("engine.predicated_executions", 1);
  // No scalar remainder: only the widened kernel's own iteration space
  // matters (it differs from `scalar`'s when the pipeline unrolled or
  // rerolled before widening).
  const std::int64_t iters = vec.trip.iterations(wl.n);
  const std::int64_t vf = vec.vf;
  const std::int64_t main_iters = (iters / vf) * vf;
  const std::int64_t tail = iters - main_iters;
  const bool fused = kind != DispatchKind::Switch;

  const std::shared_ptr<const LoweredProgram> vprog =
      cached_lowering(vec, static_cast<int>(vf));

  if (kind == DispatchKind::Batch && vprog->strip_ok &&
      vprog->strip_max_lanes >= kStripWidth && vprog->phis.empty()) {
    // SoA batch path: a strip-provable phi-free body is a pure per-iteration
    // map, so per-iteration results do not depend on the lane count.
    // run_strips handles the final partial strip natively — exactly the
    // predicated tail's active-prefix semantics — so one call covers the
    // whole range, tail included.
    VECCOST_COUNTER_ADD("engine.batch_vector_runs", 1);
    const std::shared_ptr<const LoweredProgram> bprog =
        cached_lowering(vec, kStripWidth);
    LoweredEngine<0, NoTrace> bengine(*bprog, wl, thread_exec_context(0));
    ExecResult result;
    std::vector<double> carries;
    bengine.reset_carries(carries);
    // The predicated whole loop has no scalar remainder, so the sweep runs
    // over the widened kernel's OWN nest (it differs from `scalar`'s when
    // the pipeline restructured the nest before widening).
    for_each_outer_combination(
        vec.nest,
        [&](const std::vector<std::int64_t>& grand, std::int64_t j) {
          bengine.set_grand_values(grand);
          result.iterations += bengine.run_strips(j, iters, carries, true);
          return true;
        });
    return result;  // no phis, so no live-outs
  }

  LoweredEngine<0, NoTrace> vengine(*vprog, wl, thread_exec_context(0));
  ExecResult result;
  vengine.reset_phis();  // zero-trip nests: live-outs are the phi inits
  for_each_outer_combination(
      vec.nest,
      [&](const std::vector<std::int64_t>& grand, std::int64_t j) {
        vengine.set_grand_values(grand);
        vengine.reset_phis();
        result.iterations += fused ? vengine.run_schedule(j, 0, main_iters)
                                   : vengine.run_range(j, 0, main_iters);
        if (tail != 0)
          result.iterations +=
              vengine.run_partial_block(j, main_iters, static_cast<int>(tail));
        return true;
      });
  result.live_outs = vengine.live_outs();
  return result;
}

}  // namespace

ExecResult lowered_execute_vectorized(const ir::LoopKernel& vec,
                                      const ir::LoopKernel& scalar,
                                      Workload& wl, DispatchKind kind) {
  VECCOST_ASSERT(vec.vf > 1, "execute_vectorized needs a widened kernel");
  VECCOST_COUNTER_ADD("engine.vector_executions", 1);
  VECCOST_ASSERT(!vec.has_break() && !scalar.has_break(),
                 "cannot vectorize a loop with break");
  if (vec.predicated)
    return lowered_execute_predicated(vec, scalar, wl, kind);
  const VectorSplit sp = split_vector_range(vec, scalar, wl.n);
  // Nest-restructuring pipelines (interchange, unrolljam) widen a kernel
  // whose outer iteration space differs from the original scalar's. Each
  // engine must then sweep its OWN kernel's nest; with a fractional tail
  // there is no per-combination phi handoff pairing across the two orders,
  // so the whole execution runs in the scalar loop instead.
  const bool same_nest = vec.nest == scalar.nest;
  if (!same_nest && sp.scalar_resume != sp.scalar_iters)
    return lowered_execute_scalar(scalar, wl, kind);
  const std::int64_t vf = vec.vf;
  const bool fused = kind != DispatchKind::Switch;

  const std::shared_ptr<const LoweredProgram> vprog =
      cached_lowering(vec, static_cast<int>(vf));
  const std::shared_ptr<const LoweredProgram> sprog = cached_lowering(scalar, 1);

  if (kind == DispatchKind::Batch && vprog->strip_ok &&
      vprog->strip_max_lanes >= kStripWidth && vprog->phis.empty() &&
      sprog->phis.empty()) {
    // SoA batch path: a strip-provable widened body with no phis is a pure
    // per-iteration map (induction variables, independent memory ops, and
    // elementwise arithmetic only — strip_ok already excludes the cross-lane
    // ops), so its per-iteration results do not depend on the lane count it
    // runs at. Re-running it at kStripWidth lanes over [0, vec_main) is
    // bit-identical to vf-lane blocks, and amortizes dispatch over strips of
    // 64 iterations instead of vf. No phis also means no epilogue handoff:
    // the scalar remainder just runs [scalar_resume, scalar_iters).
    VECCOST_COUNTER_ADD("engine.batch_vector_runs", 1);
    const std::shared_ptr<const LoweredProgram> bprog =
        cached_lowering(vec, kStripWidth);
    LoweredEngine<0, NoTrace> bengine(*bprog, wl, thread_exec_context(0));
    LoweredEngine<1, NoTrace> sengine(*sprog, wl, thread_exec_context(1));
    ExecResult result;
    std::vector<double> carries;
    bengine.reset_carries(carries);
    if (same_nest) {
      for_each_outer_combination(
          scalar.nest,
          [&](const std::vector<std::int64_t>& grand, std::int64_t j) {
            bengine.set_grand_values(grand);
            sengine.set_grand_values(grand);
            result.iterations +=
                bengine.run_strips(j, sp.vec_main, carries, true);
            result.iterations +=
                sengine.run_schedule(j, sp.scalar_resume, sp.scalar_iters);
            return true;
          });
    } else {
      // Remainder-free (checked above): the widened engine covers the
      // whole space over its own nest; the scalar engine never runs.
      for_each_outer_combination(
          vec.nest,
          [&](const std::vector<std::int64_t>& grand, std::int64_t j) {
            bengine.set_grand_values(grand);
            result.iterations +=
                bengine.run_strips(j, sp.vec_main, carries, true);
            return true;
          });
    }
    result.live_outs = sengine.live_outs();
    return result;
  }

  LoweredEngine<0, NoTrace> vengine(*vprog, wl, thread_exec_context(0));
  LoweredEngine<1, NoTrace> sengine(*sprog, wl, thread_exec_context(1));
  ExecResult result;
  sengine.reset_phis();  // zero-trip nests: live-outs are the phi inits
  if (same_nest) {
    for_each_outer_combination(
        scalar.nest,
        [&](const std::vector<std::int64_t>& grand, std::int64_t j) {
          vengine.set_grand_values(grand);
          sengine.set_grand_values(grand);
          vengine.reset_phis();
          result.iterations += fused ? vengine.run_schedule(j, 0, sp.vec_main)
                                     : vengine.run_range(j, 0, sp.vec_main);
          // Hand the partial reduction / recurrence state to the scalar
          // remainder.
          sengine.set_phi_inits(vengine.final_phi_values());
          result.iterations +=
              fused ? sengine.run_schedule(j, sp.scalar_resume, sp.scalar_iters)
                    : sengine.run_range(j, sp.scalar_resume, sp.scalar_iters);
          return true;
        });
  } else {
    // Remainder-free (checked above): sweep the widened kernel's own nest;
    // the scalar engine only surfaces the final phi state as live-outs.
    vengine.reset_phis();
    for_each_outer_combination(
        vec.nest,
        [&](const std::vector<std::int64_t>& grand, std::int64_t j) {
          vengine.set_grand_values(grand);
          vengine.reset_phis();
          result.iterations += fused ? vengine.run_schedule(j, 0, sp.vec_main)
                                     : vengine.run_range(j, 0, sp.vec_main);
          return true;
        });
    sengine.set_phi_inits(vengine.final_phi_values());
  }
  result.live_outs = sengine.live_outs();
  return result;
}

BatchRunner::BatchRunner(const ir::LoopKernel& kernel)
    : trip_(kernel.trip), nest_(kernel.nest) {
  VECCOST_ASSERT(kernel.vf == 1, "BatchRunner needs a scalar kernel");
  row_prog_ = cached_lowering(kernel, 1);
  if (row_prog_->strip_ok && row_prog_->strip_max_lanes >= kStripWidth)
    strip_prog_ = cached_lowering(kernel, kStripWidth);
  else if (last_level_trip(nest_) >= 8)
    xpose_prog_ = cached_interchange(kernel);  // null when illegal
}

ExecResult BatchRunner::run(Workload& wl) {
  VECCOST_COUNTER_ADD("engine.dispatch.batch_sweeps", 1);
  const std::int64_t iters = trip_.iterations(wl.n);
  const std::int64_t lane_extent = last_level_trip(nest_);
  ExecResult result;
  if (strip_prog_ != nullptr && iters >= kStripWidth) {
    LoweredEngine<0, NoTrace> engine(*strip_prog_, wl, ctx_);
    engine.reset_carries(carries_);
    for_each_outer_combination(
        nest_, [&](const std::vector<std::int64_t>& grand, std::int64_t j) {
          engine.set_grand_values(grand);
          engine.reset_carries(carries_);
          result.iterations += engine.run_strips(j, iters, carries_, true);
          return true;
        });
    result.live_outs.reserve(strip_prog_->live_out_phis.size());
    for (const std::int32_t p : strip_prog_->live_out_phis)
      result.live_outs.push_back(carries_[static_cast<std::size_t>(p)]);
    return result;
  }
  if (xpose_prog_ != nullptr && xpose_prog_->strip_ok && iters >= 1 &&
      xpose_prog_->strip_max_lanes >=
          std::min<std::int64_t>(kStripWidth, lane_extent) &&
      whole_range_in_bounds(*xpose_prog_, wl, nest_, lane_extent, iters)) {
    VECCOST_COUNTER_ADD("engine.interchange_runs", 1);
    LoweredEngine<0, NoTrace> engine(*xpose_prog_, wl, ctx_);
    engine.reset_carries(carries_);
    for_each_grand_combination(
        nest_, [&](const std::vector<std::int64_t>& grand) {
          engine.set_grand_values(grand);
          for (std::int64_t jt = 0; jt < iters; ++jt)
            result.iterations +=
                engine.run_strips(jt, lane_extent, carries_, true);
          return true;
        });
    return result;
  }
  LoweredEngine<1, NoTrace> engine(*row_prog_, wl, ctx_);
  engine.reset_phis();  // zero-trip nests: live-outs are the phi inits
  for_each_outer_combination(
      nest_, [&](const std::vector<std::int64_t>& grand, std::int64_t j) {
        engine.set_grand_values(grand);
        engine.reset_phis();
        result.iterations += engine.run_schedule(j, 0, iters);
        if (engine.broke()) {
          result.broke_early = true;
          return false;
        }
        return true;
      });
  result.live_outs = engine.live_outs();
  return result;
}

}  // namespace veccost::machine
