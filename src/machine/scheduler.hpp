// Greedy list scheduler: a finer-grained alternative to the analytic
// soft-max bound of perf_model.
//
// The analytic model combines throughput, latency and memory bounds with a
// fixed overlap factor. The scheduler instead *schedules* several unrolled
// copies of the body onto the target's execution resources — issue width,
// per-resource throughput, true dataflow and loop-carried dependences — and
// reads the steady-state cycles per iteration off the makespan. It serves
// two purposes: validating the analytic bound (they must agree on ordering,
// see scheduler tests and `bench/abl_schedule`) and quantifying how much the
// measured-data story depends on the substrate's fidelity.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/loop.hpp"
#include "machine/target.hpp"

namespace veccost::machine {

struct ScheduleResult {
  /// Steady-state cycles per body execution (difference quotient between the
  /// last copies of the schedule, which removes the pipeline fill).
  double cycles_per_body = 0;
  /// Makespan of the whole scheduled window.
  double total_cycles = 0;
  /// Issue cycle assigned to each instruction of the last scheduled copy.
  std::vector<double> issue_cycle;
};

struct ScheduleOptions {
  /// Body copies scheduled to reach a steady state.
  int window = 6;
};

/// Schedule `kernel`'s body (scalar or widened). Memory-system effects are
/// out of scope here (the scheduler models the core, not the caches); see
/// perf_model for the combined estimate.
[[nodiscard]] ScheduleResult schedule_body(const ir::LoopKernel& kernel,
                                           const TargetDesc& target,
                                           const ScheduleOptions& opts = {});

}  // namespace veccost::machine
