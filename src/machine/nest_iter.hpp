// Shared outer-nest iteration order for both executors.
//
// Every driver — the reference interpreter and the lowered engine in all
// three dispatch modes — walks the outer levels of a kernel through this one
// odometer so the combination order (lexicographic, outermost slowest) and
// the induction values handed to the inner loop are bit-identical by
// construction. The innermost-outer level's induction VALUE is passed
// separately (`j`) because both executors thread it through their inner run
// loops; the remaining "grand" levels (0 .. size-2) arrive as a value vector
// the caller installs before running the body.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/loop.hpp"

namespace veccost::machine {

/// Invoke `fn(grand_values, j_value)` once per full outer-level combination,
/// outermost level slowest. `grand_values[g]` is the induction value of
/// level g for g in [0, levels-1); `j_value` is the induction value of the
/// last (innermost-outer) level. A 1-deep kernel gets exactly one call with
/// an empty vector and j = 0 (the legacy degenerate outer iteration); any
/// zero-trip level means no calls at all. `fn` returns false to stop early
/// (Break semantics); the function then returns false too.
template <typename Fn>
bool for_each_outer_combination(const ir::NestInfo& nest, Fn&& fn) {
  const auto& levels = nest.levels;
  const std::size_t count = levels.size();
  if (count == 0) return fn(std::vector<std::int64_t>{}, std::int64_t{0});
  for (const auto& lvl : levels)
    if (lvl.trip <= 0) return true;  // empty iteration space

  std::vector<std::int64_t> idx(count, 0);
  std::vector<std::int64_t> grand(count - 1, 0);
  for (std::size_t g = 0; g + 1 < count; ++g) grand[g] = levels[g].start;
  while (true) {
    if (!fn(grand, levels[count - 1].value(idx[count - 1]))) return false;
    std::size_t l = count;
    while (true) {
      --l;
      if (++idx[l] < levels[l].trip) {
        if (l + 1 < count) grand[l] = levels[l].value(idx[l]);
        break;
      }
      idx[l] = 0;
      if (l + 1 < count) grand[l] = levels[l].start;
      if (l == 0) return true;
    }
  }
}

}  // namespace veccost::machine
