// Concrete target descriptions.
//
// Numbers are drawn from public software-optimization guides and instruction
// tables (ARM Cortex-A57/A72 Software Optimisation Guides; Agner Fog's tables
// for Haswell). They are representative rather than exact: the experiments
// depend on the *relationships* (e.g. the A57 splitting 128-bit ASIMD FP ops
// into two 64-bit halves, AVX2's wide but bandwidth-hungry vectors), not on
// cycle-exact values.
#pragma once

#include <string>
#include <vector>

#include "machine/target.hpp"

namespace veccost::machine {

/// ARMv8 Cortex-A57: 128-bit NEON, FP SIMD executed as 2x64-bit halves.
/// This is the paper's primary evaluation target.
[[nodiscard]] TargetDesc cortex_a57();

/// ARMv8 Cortex-A72: A57 successor with full-width 128-bit FP SIMD pipes.
[[nodiscard]] TargetDesc cortex_a72();

/// Intel Xeon E5 v3 (Haswell) with AVX2: the slides' x86 backup target.
[[nodiscard]] TargetDesc xeon_e5_avx2();

/// Forward-looking ARM with 256-bit SVE-style vectors, full-width FP pipes,
/// native gathers and predicated (masked) stores — the "what changes with
/// wider ARM vectors" extension target. Vector-length-agnostic: supports the
/// predicated whole-loop regime (TargetDesc::vl, `llv<vl>`).
[[nodiscard]] TargetDesc neoverse_sve256();

/// The 512-bit implementation of the same VL-agnostic SVE description —
/// identical ISA capabilities and predication timings, twice the lanes.
[[nodiscard]] TargetDesc neoverse_sve512();

/// All registered targets, for sweeps.
[[nodiscard]] const std::vector<TargetDesc>& all_targets();

/// Look up a target by name; throws veccost::Error if unknown.
[[nodiscard]] const TargetDesc& target_by_name(const std::string& name);

}  // namespace veccost::machine
