#include "machine/workload_pool.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "support/error.hpp"

namespace veccost::machine {

namespace {

std::string pool_key(const std::string& name, std::int64_t n,
                     std::uint64_t seed, int copy) {
  std::string key = name;
  key += '\0';
  key += std::to_string(n);
  key += '\0';
  key += std::to_string(seed);
  key += '\0';
  key += std::to_string(copy);
  return key;
}

}  // namespace

WorkloadPool::WorkloadPool(std::size_t max_entries)
    : max_entries_(std::max<std::size_t>(1, max_entries)) {}

Workload& WorkloadPool::acquire(const ir::LoopKernel& kernel, std::int64_t n,
                                std::uint64_t seed, int copy) {
  std::string key = pool_key(kernel.name, n, seed, copy);
  if (const auto it = index_.find(key); it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    Entry& e = lru_.front();
    e.working.n = e.pristine.n;
    for (std::size_t a = 0; a < e.pristine.arrays.size(); ++a) {
      // Same shape by construction: copies in place, never reallocates.
      std::copy(e.pristine.arrays[a].begin(), e.pristine.arrays[a].end(),
                e.working.arrays[a].begin());
    }
    ++resets_;
    VECCOST_COUNTER_ADD("pool.resets", 1);
    return e.working;
  }

  ++builds_;
  VECCOST_COUNTER_ADD("pool.builds", 1);
  Entry e;
  e.key = std::move(key);
  e.pristine = make_workload(kernel, n, seed);
  e.working = e.pristine;
  lru_.push_front(std::move(e));
  index_[lru_.front().key] = lru_.begin();
  if (lru_.size() > max_entries_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
  return lru_.front().working;
}

void WorkloadPool::clear() {
  lru_.clear();
  index_.clear();
}

WorkloadPool& WorkloadPool::thread_local_pool() {
  thread_local WorkloadPool pool;
  return pool;
}

}  // namespace veccost::machine
