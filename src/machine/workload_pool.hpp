// Reusable workload buffers for repeated kernel executions.
//
// make_workload re-runs the RNG over every array element; at measurement
// sizes that is megabytes of regenerated data per kernel per repeat. The
// pool builds each (kernel, n, seed) workload once, keeps a pristine
// snapshot, and serves later acquisitions by memcpy-resetting the working
// copy — no reallocation, no RNG replay, bit-identical contents (the engine
// differential suite asserts this).
//
// The pool is NOT thread-safe; concurrent users take `thread_local_pool()`,
// which is how measure-path validation fans out (one pool per worker, see
// eval/session.cpp).
#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

#include "machine/executor.hpp"

namespace veccost::machine {

class WorkloadPool {
 public:
  /// `max_entries` bounds retained workload pairs; least-recently-used
  /// entries are dropped beyond it (each entry holds two copies of its
  /// arrays, so the bound caps memory, not correctness).
  explicit WorkloadPool(std::size_t max_entries = 32);

  /// A workload for (kernel, n, seed), freshly reset to its initial
  /// contents. `copy` distinguishes simultaneously-live workloads with the
  /// same key (e.g. the scalar and vectorized sides of an equivalence
  /// check). The reference stays valid until the entry is evicted — hold at
  /// most `max_entries` acquisitions live at once.
  [[nodiscard]] Workload& acquire(const ir::LoopKernel& kernel, std::int64_t n,
                                  std::uint64_t seed = 0x5eed, int copy = 0);

  [[nodiscard]] std::size_t entries() const { return lru_.size(); }
  /// Pool misses: workloads built from scratch via make_workload.
  [[nodiscard]] std::uint64_t builds() const { return builds_; }
  /// Pool hits: acquisitions served by resetting an existing entry.
  [[nodiscard]] std::uint64_t resets() const { return resets_; }
  void clear();

  /// One pool per thread, for parallel fan-out without sharing.
  [[nodiscard]] static WorkloadPool& thread_local_pool();

 private:
  struct Entry {
    std::string key;
    Workload pristine;
    Workload working;
  };

  std::size_t max_entries_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::uint64_t builds_ = 0;
  std::uint64_t resets_ = 0;
};

}  // namespace veccost::machine
