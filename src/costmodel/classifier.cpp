#include "costmodel/classifier.hpp"

#include <algorithm>
#include <sstream>

#include "support/error.hpp"

namespace veccost::model {

double DecisionOutcome::efficiency() const {
  const double gap = time_never_vectorize - time_oracle;
  if (gap <= 0) return 1.0;
  return (time_never_vectorize - time_following_model) / gap;
}

std::string DecisionOutcome::to_string() const {
  std::ostringstream os;
  os << confusion.to_string() << ", model/oracle/scalar cycles = "
     << time_following_model << " / " << time_oracle << " / "
     << time_never_vectorize;
  return os.str();
}

DecisionOutcome evaluate_decisions(std::span<const double> predicted_speedup,
                                   std::span<const double> measured_speedup,
                                   std::span<const double> scalar_cycles,
                                   std::span<const double> vector_cycles,
                                   double threshold) {
  const std::size_t n = predicted_speedup.size();
  VECCOST_ASSERT(measured_speedup.size() == n && scalar_cycles.size() == n &&
                     vector_cycles.size() == n,
                 "evaluate_decisions span size mismatch");
  DecisionOutcome out;
  out.confusion = classify(predicted_speedup, measured_speedup, threshold);
  for (std::size_t i = 0; i < n; ++i) {
    const bool vectorize = predicted_speedup[i] > threshold;
    out.time_following_model += vectorize ? vector_cycles[i] : scalar_cycles[i];
    out.time_never_vectorize += scalar_cycles[i];
    out.time_always_vectorize += vector_cycles[i];
    out.time_oracle += std::min(scalar_cycles[i], vector_cycles[i]);
  }
  return out;
}

}  // namespace veccost::model
