// Baseline cost model: LLVM-6-style additive per-instruction costs.
//
// This is the model the paper's slide 4 evaluates ("LLV pass of LLVM 6.0 on
// ARMv8"): each instruction contributes its table cost; the loop's scalar and
// vector costs are the plain sums; predicted speedup is their ratio scaled by
// VF. It deliberately knows nothing about bandwidth ceilings, dependence-
// chain latency, or loop overheads — exactly the blind spots the paper's
// fitted models learn to compensate.
//
// Like the real thing, it works from generic unit costs plus legalization
// (how many native vector ops an operation splits into) and ISA capability
// flags — not from measured per-op throughputs. The gap between these
// tables and silicon (the A57 executing 128-bit FP ASIMD at half rate,
// memory bandwidth, dependence chains) is precisely what the paper's
// fitted models learn.
#pragma once

#include "ir/loop.hpp"
#include "machine/target.hpp"

namespace veccost::model {

struct LlvmPrediction {
  double scalar_cost_per_iter = 0;   ///< cost units per scalar iteration
  double vector_cost_per_body = 0;   ///< cost units per widened body (VF iters)
  double predicted_speedup = 0;      ///< scalar*VF / vector
};

/// Cost of one kernel body in LLVM-style units (sum of per-class
/// reciprocal throughputs; invariant/hoisted values are free).
[[nodiscard]] double block_cost(const ir::LoopKernel& kernel,
                                const machine::TargetDesc& target);

/// Predict the speedup of `vec` (vf > 1) over `scalar` on `target`.
[[nodiscard]] LlvmPrediction llvm_predict(const ir::LoopKernel& scalar,
                                          const ir::LoopKernel& vec,
                                          const machine::TargetDesc& target);

}  // namespace veccost::model

#include "vectorizer/vplan.hpp"

namespace veccost::model {

/// LLVM-style additive prediction for an SLP pack plan: cost of the packed
/// body over the scalar body (same iteration count, so no VF scaling).
[[nodiscard]] double llvm_predict_slp(const ir::LoopKernel& scalar,
                                      const vectorizer::SlpPlan& plan,
                                      const machine::TargetDesc& target);

}  // namespace veccost::model
