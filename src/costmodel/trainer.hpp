// Fitting and cross-validating linear cost models.
//
// The trainer is deliberately generic over (X, y): the evaluation harness
// builds the design matrix from TSVC measurements and chooses the regression
// target (speedup, as the paper recommends, or raw vector cost as in the
// slides' x86 backup comparison).
#pragma once

#include <string>

#include "analysis/features.hpp"
#include "costmodel/linear_model.hpp"
#include "support/matrix.hpp"

namespace veccost::model {

enum class Fitter { L2, NNLS, SVR };

[[nodiscard]] const char* to_string(Fitter f);

struct TrainOptions {
  /// Ridge regularization for L2 (0 = plain least squares).
  double l2_lambda = 1e-8;
  /// SVR hyperparameters.
  double svr_c = 50.0;
  double svr_epsilon = 0.02;
  /// Fit an intercept (the paper's formulation has none for L2/NNLS).
  bool fit_bias_svr = true;
};

/// Fit weights for `fitter` on the design matrix / target pair.
/// SVR standardizes features internally and maps weights back to raw space.
[[nodiscard]] LinearSpeedupModel fit_model(const Matrix& x, const Vector& y,
                                           Fitter fitter,
                                           analysis::FeatureSet set,
                                           const TrainOptions& opts = {},
                                           const std::string& target_name = "");

/// Leave-one-out cross validation: element i of the result is the prediction
/// for row i by a model trained on all other rows (slides 11 and 16).
/// Held-out fits run in parallel across up to `jobs` threads (0 =
/// default_parallelism(), 1 = serial); every fit is independent, so the
/// result is bit-identical for any jobs value.
[[nodiscard]] Vector loocv_predictions(const Matrix& x, const Vector& y,
                                       Fitter fitter, analysis::FeatureSet set,
                                       const TrainOptions& opts = {},
                                       std::size_t jobs = 0);

/// k-fold cross validation with strided folds (row i belongs to fold i % k,
/// which interleaves the suite's category ordering across folds). Element i
/// of the result is row i's prediction by the model trained on the other
/// folds. k must be in [2, rows]. Folds run in parallel across up to `jobs`
/// threads with deterministic, jobs-independent results.
[[nodiscard]] Vector kfold_predictions(const Matrix& x, const Vector& y,
                                       Fitter fitter, analysis::FeatureSet set,
                                       std::size_t k,
                                       const TrainOptions& opts = {},
                                       std::size_t jobs = 0);

}  // namespace veccost::model
