#include "costmodel/selector.hpp"

#include <algorithm>

#include "costmodel/llvm_model.hpp"
#include "machine/perf_model.hpp"
#include "support/error.hpp"
#include "vectorizer/loop_vectorizer.hpp"
#include "vectorizer/reroll.hpp"
#include "vectorizer/slp_vectorizer.hpp"
#include "xform/analysis_manager.hpp"

namespace veccost::model {

const char* to_string(TransformKind k) {
  switch (k) {
    case TransformKind::Scalar: return "scalar";
    case TransformKind::Loop: return "llv";
    case TransformKind::Slp: return "slp";
    case TransformKind::RerollLoop: return "reroll+llv";
  }
  return "?";
}

std::string TransformOption::label() const {
  std::string s = to_string(kind);
  if (kind != TransformKind::Scalar) s += "@" + std::to_string(width);
  return s;
}

double SelectionResult::regret() const {
  VECCOST_ASSERT(!options.empty(), "empty selection");
  const double best_cycles = options[best].measured_cycles;
  VECCOST_ASSERT(best_cycles > 0, "non-positive best time");
  return options[chosen].measured_cycles / best_cycles;
}

TransformSelector::TransformSelector(machine::TargetDesc target)
    : target_(std::move(target)), predictor_(PredictorKind::Baseline) {}

TransformSelector::TransformSelector(machine::TargetDesc target,
                                     LinearSpeedupModel fitted)
    : target_(std::move(target)),
      predictor_(PredictorKind::Fitted),
      fitted_(std::move(fitted)) {}

SelectionResult TransformSelector::select(const ir::LoopKernel& scalar,
                                          std::int64_t n) const {
  VECCOST_ASSERT(scalar.vf == 1, "selector expects a scalar kernel");
  SelectionResult result;

  const double scalar_cycles =
      machine::measure_scalar_cycles(scalar, target_, n);
  result.options.push_back(
      {TransformKind::Scalar, 1, 1.0, scalar_cycles});

  // Loop vectorization at the natural VF and at half of it. All options get
  // an additive prediction first; the fitted predictor then RESCALES them so
  // the natural-VF option sits at the fitted model's speedup — relative
  // ranking from the structure-aware additive model, absolute level from the
  // learned one (the "aligned scale" discipline of slide 15).
  //
  // One AnalysisManager across the candidate sweep: dependence analysis and
  // phi classification run once for the kernel, not once per width.
  xform::AnalysisManager analyses;
  const int natural = vectorizer::natural_vf(scalar, target_);
  double additive_natural = 0.0;
  for (const int vf : {natural, natural / 2}) {
    if (vf < 2) continue;
    vectorizer::LoopVectorizerOptions opts;
    opts.requested_vf = vf;
    const auto vec = vectorizer::vectorize_legal(
        scalar, target_, opts, analyses.legality(scalar, opts.legality));
    if (!vec.ok) continue;
    TransformOption opt;
    opt.kind = TransformKind::Loop;
    opt.width = vec.vf;
    opt.predicted_speedup =
        llvm_predict(scalar, vec.kernel, target_).predicted_speedup;
    if (vf == natural) additive_natural = opt.predicted_speedup;
    opt.measured_cycles =
        vec.runtime_check
            ? machine::measure_versioned_scalar_cycles(scalar, target_, n)
            : machine::measure_vector_cycles(vec.kernel, scalar, target_, n);
    // Deduplicate when partial vectorization collapses both widths.
    const bool dup = std::any_of(
        result.options.begin(), result.options.end(), [&](const auto& o) {
          return o.kind == TransformKind::Loop && o.width == opt.width;
        });
    if (!dup) result.options.push_back(opt);
  }

  const auto slp = vectorizer::slp_vectorize(scalar, target_);
  if (slp.ok) {
    TransformOption opt;
    opt.kind = TransformKind::Slp;
    opt.width = slp.width;
    opt.predicted_speedup = llvm_predict_slp(scalar, slp, target_);
    opt.measured_cycles = machine::measure_slp_cycles(scalar, slp, target_, n);
    result.options.push_back(opt);
  }

  // Hand-unrolled bodies: re-roll to a contiguous loop, then vectorize it.
  if (slp.ok && slp.unroll == 1) {
    const auto rolled = vectorizer::reroll_loop(scalar, slp);
    if (rolled.ok) {
      const auto vec = vectorizer::vectorize_legal(
          rolled.kernel, target_, {}, analyses.legality(rolled.kernel));
      if (vec.ok) {
        TransformOption opt;
        opt.kind = TransformKind::RerollLoop;
        opt.width = vec.vf;
        opt.predicted_speedup =
            llvm_predict(rolled.kernel, vec.kernel, target_).predicted_speedup;
        opt.measured_cycles =
            machine::measure_vector_cycles(vec.kernel, rolled.kernel, target_, n);
        result.options.push_back(opt);
      }
    }
  }

  if (predictor_ == PredictorKind::Fitted && additive_natural > 0) {
    const double scale = fitted_.predict(scalar) / additive_natural;
    for (std::size_t i = 1; i < result.options.size(); ++i)
      result.options[i].predicted_speedup *= scale;
  }

  for (std::size_t i = 1; i < result.options.size(); ++i) {
    if (result.options[i].predicted_speedup >
        result.options[result.chosen].predicted_speedup)
      result.chosen = i;
    if (result.options[i].measured_cycles <
        result.options[result.best].measured_cycles)
      result.best = i;
  }
  // The scalar option predicts exactly 1.0; prefer it unless something
  // promises an actual win.
  if (result.options[result.chosen].predicted_speedup <= 1.0) result.chosen = 0;
  return result;
}

}  // namespace veccost::model
