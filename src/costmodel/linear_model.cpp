#include "costmodel/linear_model.hpp"

#include "support/error.hpp"

namespace veccost::model {

LinearSpeedupModel::LinearSpeedupModel(analysis::FeatureSet set, Vector weights,
                                       double bias, std::string fitter,
                                       std::string target)
    : set_(set),
      weights_(std::move(weights)),
      bias_(bias),
      fitter_(std::move(fitter)),
      target_(std::move(target)) {
  VECCOST_ASSERT(weights_.size() == analysis::feature_names(set_).size(),
                 "weight count does not match feature set");
}

double LinearSpeedupModel::predict(const ir::LoopKernel& scalar) const {
  return predict_features(analysis::extract_features(scalar, set_));
}

double LinearSpeedupModel::predict_features(std::span<const double> features) const {
  return dot(weights_, features) + bias_;
}

fit::SavedModel LinearSpeedupModel::to_saved() const {
  fit::SavedModel saved;
  saved.target = target_.empty() ? "unknown" : target_;
  saved.feature_set = analysis::to_string(set_);
  saved.fitter = fitter_.empty() ? "l2" : fitter_;
  saved.bias = bias_;
  saved.feature_names = analysis::feature_names(set_);
  saved.weights = weights_;
  return saved;
}

LinearSpeedupModel LinearSpeedupModel::from_saved(const fit::SavedModel& saved) {
  analysis::FeatureSet set;
  if (saved.feature_set == "counts") {
    set = analysis::FeatureSet::Counts;
  } else if (saved.feature_set == "rated") {
    set = analysis::FeatureSet::Rated;
  } else if (saved.feature_set == "extended") {
    set = analysis::FeatureSet::Extended;
  } else {
    throw Error("unknown feature set in saved model: " + saved.feature_set);
  }
  VECCOST_ASSERT(saved.feature_names == analysis::feature_names(set),
                 "saved model feature names do not match feature set");
  return LinearSpeedupModel(set, saved.weights, saved.bias, saved.fitter,
                            saved.target);
}

}  // namespace veccost::model
