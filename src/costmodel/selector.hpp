// Transform selection: the paper's second motivation (slide 2/15) — a cost
// model is not only a vectorize/don't gate, it should rank *different
// transformation options* (scalar vs loop-vectorized at several widths vs
// SLP) on one aligned scale.
//
// The selector enumerates the legal options for a kernel, asks a predictor
// for each option's speedup estimate, and picks the argmax. The measurement
// substrate then scores the choice against the oracle (regret = chosen time
// over best time).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "costmodel/linear_model.hpp"
#include "ir/loop.hpp"
#include "machine/target.hpp"

namespace veccost::model {

enum class TransformKind { Scalar, Loop, Slp, RerollLoop };

[[nodiscard]] const char* to_string(TransformKind k);

struct TransformOption {
  TransformKind kind = TransformKind::Scalar;
  int width = 1;                  ///< VF for Loop, pack width for Slp
  double predicted_speedup = 1.0; ///< over scalar, by the active predictor
  double measured_cycles = 0.0;   ///< by the measurement substrate

  [[nodiscard]] std::string label() const;
};

struct SelectionResult {
  std::vector<TransformOption> options;  ///< scalar always at index 0
  std::size_t chosen = 0;                ///< argmax predicted speedup
  std::size_t best = 0;                  ///< argmin measured cycles (oracle)

  [[nodiscard]] bool optimal() const { return chosen == best; }
  /// chosen time / best time (1.0 = optimal).
  [[nodiscard]] double regret() const;
};

/// How option speedups are predicted.
enum class PredictorKind {
  Baseline,  ///< LLVM-style additive costs for every option
  Fitted,    ///< fitted linear model for loop options, additive for SLP
};

class TransformSelector {
 public:
  /// Baseline-predicting selector. The target is copied.
  explicit TransformSelector(machine::TargetDesc target);
  /// Fitted-model selector (the model must predict speedup at the natural
  /// VF; narrower loop options are scaled by their width ratio).
  TransformSelector(machine::TargetDesc target, LinearSpeedupModel fitted);

  /// Enumerate options for `scalar` (always includes the scalar no-op),
  /// predict, measure, and select. Options: loop vectorization at the
  /// natural VF and at half of it (when legal), the SLP plan (when any
  /// packs form), and re-roll + vectorize for hand-unrolled bodies.
  [[nodiscard]] SelectionResult select(const ir::LoopKernel& scalar,
                                       std::int64_t n) const;

  [[nodiscard]] PredictorKind predictor() const { return predictor_; }

 private:
  machine::TargetDesc target_;  // by value: selectors outlive temporaries
  PredictorKind predictor_;
  LinearSpeedupModel fitted_;
};

}  // namespace veccost::model
