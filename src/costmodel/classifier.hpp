// The vectorize / don't-vectorize decision and its consequences.
//
// The paper's end metric is not regression error but what the compiler does
// with the prediction: a false positive vectorizes a loop that gets slower, a
// false negative leaves measured speedup on the table. DecisionOutcome also
// aggregates the total execution time that results from following a model's
// decisions, versus never vectorizing and versus an oracle (slide 12:
// "lower execution times").
#pragma once

#include <span>
#include <string>

#include "support/stats.hpp"

namespace veccost::model {

struct DecisionOutcome {
  Confusion confusion;
  double time_following_model = 0;  ///< cycles when vectorizing iff predicted > 1
  double time_never_vectorize = 0;  ///< all-scalar cycles
  double time_always_vectorize = 0; ///< vectorize everything legal
  double time_oracle = 0;           ///< perfect decisions

  /// Fraction of the oracle-to-scalar gap the model captures (1 = perfect).
  [[nodiscard]] double efficiency() const;
  [[nodiscard]] std::string to_string() const;
};

/// Evaluate decisions. All spans are parallel over the same kernels:
/// predicted/measured speedups, and the measured scalar & vector times.
[[nodiscard]] DecisionOutcome evaluate_decisions(
    std::span<const double> predicted_speedup,
    std::span<const double> measured_speedup,
    std::span<const double> scalar_cycles,
    std::span<const double> vector_cycles, double threshold = 1.0);

}  // namespace veccost::model
