#include "costmodel/llvm_model.hpp"

#include <cmath>
#include <vector>

#include "analysis/features.hpp"
#include "support/error.hpp"

namespace veccost::model {

using ir::Instruction;
using ir::LoopKernel;
using ir::OpClass;
using ir::Opcode;

namespace {

// LLVM-6-style generic unit costs (BasicTTIImpl defaults plus the AArch64 /
// x86 overrides that matter here). The baseline deliberately knows only:
//  * how many native vector instructions legalization produces (native_ops),
//  * which ISA features exist (gather, masked stores),
//  * that divisions are expensive and reductions need a shuffle tree.
// It does NOT know per-op latencies, the A57's halved 128-bit FP throughput,
// memory bandwidth, or dependence-chain effects — the additive-table blind
// spots the paper identifies.
double generic_cost(const machine::TargetDesc& t, const Instruction& inst) {
  const ir::ScalarType elem = inst.type.elem;
  const int lanes = inst.type.lanes;
  const bool vec = lanes > 1;
  const int native = vec ? t.native_ops(elem, lanes) : 1;
  const bool fp = ir::is_float(elem);
  const bool masked = inst.predicate != ir::kNoValue;

  switch (inst.op) {
    case Opcode::Load:
      return native + (masked ? (vec && !t.hw_masked_store ? lanes * 2.0 : 1.0) : 0.0);
    case Opcode::Store:
      if (!masked) return native;
      if (!vec) return native + 2.0;  // branch around the store
      return t.hw_masked_store ? native + 1.0 : native + lanes * 2.0;
    case Opcode::Gather:
      return t.hw_gather ? native * 4.0 : lanes * 2.0;  // else scalarized
    case Opcode::Scatter:
      return lanes * 2.0;
    case Opcode::StridedLoad:
    case Opcode::StridedStore:
      // Interleave group: wide accesses plus de-interleave shuffles.
      return native * 3.0;
    default:
      break;
  }

  switch (ir::classify(inst.op, fp)) {
    case OpClass::FloatAdd:
    case OpClass::FloatMul:
      return native;
    case OpClass::FloatDiv:
      return vec ? native * 12.0 : 10.0;
    case OpClass::IntArith:
      return native;
    case OpClass::IntDiv:
      return vec ? lanes * 20.0 : 20.0;  // no vector integer division
    case OpClass::Compare:
    case OpClass::Select:
    case OpClass::Convert:
    case OpClass::Shuffle:
      return native;
    case OpClass::Reduce: {
      double steps = 0;
      for (int l = lanes; l > 1; l >>= 1) ++steps;
      return 2.0 * steps + 1.0;
    }
    case OpClass::MemLoad:
    case OpClass::MemStore:
    case OpClass::MemGather:
    case OpClass::MemScatter:
    case OpClass::Leaf:
    case OpClass::Control:
      return 0.0;  // handled above / free
  }
  return 0.0;
}

}  // namespace

double block_cost(const LoopKernel& kernel, const machine::TargetDesc& target) {
  const auto invariant = analysis::invariant_mask(kernel);
  double cost = 0;
  for (std::size_t id = 0; id < kernel.body.size(); ++id) {
    const Instruction& inst = kernel.body[id];
    switch (inst.op) {
      case Opcode::Const:
      case Opcode::Param:
      case Opcode::IndVar:
      case Opcode::OuterIndVar:
      case Opcode::Phi:
        continue;
      default:
        break;
    }
    if (invariant[id]) continue;
    cost += generic_cost(target, inst);
  }
  return cost;
}

double llvm_predict_slp(const LoopKernel& original,
                        const vectorizer::SlpPlan& plan,
                        const machine::TargetDesc& target) {
  VECCOST_ASSERT(original.vf == 1, "llvm_predict_slp needs a scalar kernel");
  if (!plan.ok) return 1.0;
  // Pack ids refer to plan.body (pre-unrolled when plan.unroll > 1); the
  // speedup ratio is per unrolled iteration, which equals the per-original-
  // iteration ratio.
  const LoopKernel& scalar = plan.unroll > 1 ? plan.body : original;
  const double scalar_cost = block_cost(scalar, target);

  std::vector<int> role(scalar.body.size(), 0);
  std::vector<const vectorizer::Pack*> pack_of(scalar.body.size(), nullptr);
  for (const auto& pack : plan.packs) {
    for (std::size_t m = 0; m < pack.members.size(); ++m) {
      role[static_cast<std::size_t>(pack.members[m])] = (m == 0) ? pack.width : -1;
      pack_of[static_cast<std::size_t>(pack.members[m])] = &pack;
    }
  }

  const auto invariant = analysis::invariant_mask(scalar);
  double packed_cost = 0;
  for (std::size_t id = 0; id < scalar.body.size(); ++id) {
    const Instruction& inst = scalar.body[id];
    if (role[id] < 0 || invariant[id]) continue;
    const OpClass cls = ir::classify(inst.op, ir::is_float(inst.type.elem));
    if (cls == OpClass::Leaf || cls == OpClass::Control) continue;
    if (role[id] > 0) {
      const vectorizer::Pack& pack = *pack_of[id];
      Instruction widened = inst;
      widened.type.lanes = pack.width;
      if (pack.op == Opcode::Broadcast) {
        packed_cost += 1.0;  // build-vector
        continue;
      }
      if (ir::is_memory_op(inst.op) && !pack.contiguous)
        widened.op = ir::is_store_op(inst.op) ? Opcode::Scatter : Opcode::Gather;
      packed_cost += generic_cost(target, widened);
    } else {
      packed_cost += generic_cost(target, inst);
    }
  }
  VECCOST_ASSERT(packed_cost > 0, "empty SLP-packed body");
  return scalar_cost / packed_cost;
}

LlvmPrediction llvm_predict(const LoopKernel& scalar, const LoopKernel& vec,
                            const machine::TargetDesc& target) {
  VECCOST_ASSERT(scalar.vf == 1 && vec.vf > 1, "llvm_predict argument order");
  LlvmPrediction p;
  p.scalar_cost_per_iter = block_cost(scalar, target);
  p.vector_cost_per_body = block_cost(vec, target);
  VECCOST_ASSERT(p.vector_cost_per_body > 0, "empty vector body");
  p.predicted_speedup =
      p.scalar_cost_per_iter * vec.vf / p.vector_cost_per_body;
  return p;
}

}  // namespace veccost::model
