#include "costmodel/trainer.hpp"

#include "fit/least_squares.hpp"
#include "fit/nnls.hpp"
#include "fit/scaler.hpp"
#include "fit/svr.hpp"
#include "obs/metrics.hpp"
#include "support/error.hpp"
#include "support/thread_pool.hpp"

namespace veccost::model {

const char* to_string(Fitter f) {
  switch (f) {
    case Fitter::L2: return "l2";
    case Fitter::NNLS: return "nnls";
    case Fitter::SVR: return "svr";
  }
  return "?";
}

LinearSpeedupModel fit_model(const Matrix& x, const Vector& y, Fitter fitter,
                             analysis::FeatureSet set, const TrainOptions& opts,
                             const std::string& target_name) {
  VECCOST_ASSERT(x.rows() == y.size() && x.rows() > 0, "empty training data");
  VECCOST_ASSERT(x.cols() == analysis::feature_names(set).size(),
                 "design matrix does not match feature set");
  VECCOST_SPAN("trainer.fit_ns");
  VECCOST_COUNTER_ADD("trainer.fits", 1);

  switch (fitter) {
    case Fitter::L2: {
      Vector w = fit::solve_least_squares(x, y, {.lambda = opts.l2_lambda});
      return LinearSpeedupModel(set, std::move(w), 0.0, "l2", target_name);
    }
    case Fitter::NNLS: {
      fit::NnlsResult r = fit::solve_nnls(x, y);
      return LinearSpeedupModel(set, std::move(r.weights), 0.0, "nnls",
                                target_name);
    }
    case Fitter::SVR: {
      fit::StandardScaler scaler;
      scaler.fit(x);
      const Matrix xs = scaler.transform(x);
      fit::SvrResult r = fit::solve_svr(
          xs, y,
          {.c = opts.svr_c, .epsilon = opts.svr_epsilon,
           .max_sweeps = 4000, .tolerance = 1e-9, .fit_bias = opts.fit_bias_svr});
      // Map standardized weights back to raw feature space:
      //   w.x_std + b = sum w_j (x_j - mu_j)/sd_j + b
      //              = sum (w_j/sd_j) x_j + (b - sum w_j mu_j / sd_j)
      Vector w(r.weights.size());
      double bias = r.bias;
      for (std::size_t j = 0; j < w.size(); ++j) {
        w[j] = r.weights[j] / scaler.stds()[j];
        bias -= r.weights[j] * scaler.means()[j] / scaler.stds()[j];
      }
      return LinearSpeedupModel(set, std::move(w), bias, "svr", target_name);
    }
  }
  VECCOST_FAIL("unknown fitter");
}

Vector kfold_predictions(const Matrix& x, const Vector& y, Fitter fitter,
                         analysis::FeatureSet set, std::size_t k,
                         const TrainOptions& opts, std::size_t jobs) {
  VECCOST_ASSERT(x.rows() == y.size(), "kfold: row/target mismatch");
  VECCOST_ASSERT(k >= 2 && k <= x.rows(), "kfold: k out of range");
  Vector predictions(x.rows(), 0.0);
  // Folds are independent and write disjoint prediction slots, so fanning
  // them out cannot change the result.
  parallel_for(
      k,
      [&](std::size_t fold) {
        VECCOST_SPAN("trainer.fold_fit_ns");
        // Preallocate the fold's training matrix: the row count is known, so
        // no push_row growth/reallocation inside the loop.
        std::size_t test_rows = 0;
        for (std::size_t r = fold; r < x.rows(); r += k) ++test_rows;
        Matrix train_x(x.rows() - test_rows, x.cols());
        Vector train_y;
        train_y.reserve(x.rows() - test_rows);
        std::size_t dst = 0;
        for (std::size_t r = 0; r < x.rows(); ++r) {
          if (r % k == fold) continue;
          const auto src = x.row(r);
          std::copy(src.begin(), src.end(), train_x.row(dst++).begin());
          train_y.push_back(y[r]);
        }
        const LinearSpeedupModel model =
            fit_model(train_x, train_y, fitter, set, opts);
        for (std::size_t r = fold; r < x.rows(); r += k)
          predictions[r] = model.predict_features(x.row(r));
      },
      jobs);
  return predictions;
}

Vector loocv_predictions(const Matrix& x, const Vector& y, Fitter fitter,
                         analysis::FeatureSet set, const TrainOptions& opts,
                         std::size_t jobs) {
  VECCOST_ASSERT(x.rows() == y.size() && x.rows() > 1, "LOOCV needs >= 2 rows");
  if (fitter == Fitter::L2) {
    // Ridge has a closed form: one QR serves all m leave-one-out fits
    // (tests/costmodel_test.cpp asserts agreement with the refit path to
    // 1e-9). Serial, so trivially identical for every jobs value.
    VECCOST_COUNTER_ADD("trainer.loocv_qr_path", 1);
    return fit::loocv_ridge_predictions(x, y, opts.l2_lambda);
  }
  VECCOST_COUNTER_ADD("trainer.loocv_refit_path", 1);
  Vector predictions(x.rows(), 0.0);
  parallel_for(
      x.rows(),
      [&](std::size_t i) {
        const Matrix xi = x.without_row(i);
        const Vector yi = without_element(y, i);
        const LinearSpeedupModel model = fit_model(xi, yi, fitter, set, opts);
        predictions[i] = model.predict_features(x.row(i));
      },
      jobs);
  return predictions;
}

}  // namespace veccost::model
