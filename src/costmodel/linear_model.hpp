// The paper's contribution: a learned linear speedup model.
//
//   speedup(loop) = sum_i  c_i * w_i   (slide 7)
//
// where c_i is the i-th feature of the scalar loop body (instruction-class
// count, or percentage for the rated variant) and w_i a fitted weight. The
// model predicts from the *scalar* block only — like a compiler cost model,
// it must decide before transforming.
#pragma once

#include <string>

#include "analysis/features.hpp"
#include "fit/model_io.hpp"
#include "support/matrix.hpp"

namespace veccost::model {

class LinearSpeedupModel {
 public:
  LinearSpeedupModel() = default;
  LinearSpeedupModel(analysis::FeatureSet set, Vector weights, double bias = 0.0,
                     std::string fitter = "l2", std::string target = "");

  /// Predicted speedup for a scalar kernel.
  [[nodiscard]] double predict(const ir::LoopKernel& scalar) const;

  /// Predicted value for a precomputed feature row.
  [[nodiscard]] double predict_features(std::span<const double> features) const;

  [[nodiscard]] analysis::FeatureSet feature_set() const { return set_; }
  [[nodiscard]] const Vector& weights() const { return weights_; }
  [[nodiscard]] double bias() const { return bias_; }
  [[nodiscard]] const std::string& fitter() const { return fitter_; }

  [[nodiscard]] fit::SavedModel to_saved() const;
  [[nodiscard]] static LinearSpeedupModel from_saved(const fit::SavedModel& saved);

 private:
  analysis::FeatureSet set_ = analysis::FeatureSet::Counts;
  Vector weights_;
  double bias_ = 0.0;
  std::string fitter_;
  std::string target_;
};

}  // namespace veccost::model
