#include "serve/server.hpp"

#include <utility>

#include "support/error.hpp"
#include "support/thread_pool.hpp"

namespace veccost::serve {

using support::Json;
using support::TcpStream;

namespace {

/// Reader poll tick: how stale the stop flag can look to an idle
/// connection/accept thread. Short enough that wait() is snappy, long
/// enough to keep idle daemons off the CPU.
constexpr int kPollMs = 100;

}  // namespace

bool Server::Connection::write(const std::string& line) {
  std::lock_guard<std::mutex> lock(write_mutex);
  return stream.send_all(line);
}

Server::Server(ServeOptions opts)
    : opts_(std::move(opts)), service_(opts_.service) {}

Server::~Server() {
  stop();
  wait();
}

void Server::start() {
  VECCOST_ASSERT(!started_, "Server::start() called twice");
  listener_ = support::TcpListener::bind(opts_.port);
  port_ = listener_.port();
  started_ = true;
  accept_thread_ = std::thread([this] { accept_loop(); });
  dispatch_thread_ = std::thread([this] { dispatch_loop(); });
}

void Server::stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  queue_cv_.notify_all();
}

void Server::wait() {
  std::lock_guard<std::mutex> lock(join_mutex_);
  if (joined_ || !started_) return;
  joined_ = true;
  if (accept_thread_.joinable()) accept_thread_.join();
  if (dispatch_thread_.joinable()) dispatch_thread_.join();
  listener_.close();
  // Reader threads notice stopping_ within one poll tick.
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> conns(connections_mutex_);
    readers.swap(connection_threads_);
  }
  for (std::thread& t : readers)
    if (t.joinable()) t.join();
}

void Server::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    TcpStream stream = listener_.accept(kPollMs);
    if (!stream.valid()) continue;
    auto conn = std::make_shared<Connection>();
    conn->stream = std::move(stream);
    VECCOST_COUNTER_ADD("serve.connections", 1);
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connection_threads_.emplace_back(
        [this, conn = std::move(conn)] { connection_loop(conn); });
  }
}

void Server::connection_loop(const std::shared_ptr<Connection>& conn) {
  std::string line;
  while (!stopping_.load(std::memory_order_acquire)) {
    switch (conn->stream.read_line(line, kPollMs)) {
      case TcpStream::ReadResult::Ok:
        if (!line.empty()) handle_line(conn, line);
        break;
      case TcpStream::ReadResult::Timeout:
        break;  // re-check the stop flag
      case TcpStream::ReadResult::Closed:
        return;
    }
  }
}

void Server::handle_line(const std::shared_ptr<Connection>& conn,
                         const std::string& line) {
  VECCOST_COUNTER_ADD("serve.requests", 1);
  const RequestParse parse = parse_request(line);
  if (!parse.ok) {
    VECCOST_COUNTER_ADD("serve.bad_request", 1);
    respond(conn, error_response(parse.request.id, parse.verb_name,
                                 ErrorCode::BadRequest, parse.error));
    return;
  }
  const Request& request = parse.request;

  // Control verbs bypass the queue: probes and metric scrapes must stay
  // responsive precisely when the queue is full.
  if (!is_work_verb(request.verb)) {
    switch (request.verb) {
      case Verb::Healthz: {
        std::size_t depth;
        {
          std::lock_guard<std::mutex> lock(queue_mutex_);
          depth = queue_.size();
        }
        Json result = Json::object();
        result.set("status", stopping_.load(std::memory_order_acquire)
                                 ? "stopping"
                                 : "ok");
        result.set("queue_depth", depth);
        result.set("queue_limit", opts_.queue_limit);
        respond(conn, ok_response(request, std::move(result)));
        return;
      }
      case Verb::Metrics:
        respond(conn, ok_response(request, metrics_payload(
                                               obs::Registry::global()
                                                   .snapshot())));
        return;
      case Verb::Shutdown: {
        Json result = Json::object();
        result.set("stopping", true);
        respond(conn, ok_response(request, std::move(result)));
        stop();
        return;
      }
      default:
        return;  // unreachable: is_work_verb covered the rest
    }
  }

  if (stopping_.load(std::memory_order_acquire)) {
    respond(conn, error_response(request.id, to_string(request.verb),
                                 ErrorCode::ShuttingDown,
                                 "daemon is shutting down"));
    return;
  }

  // Cheap shed before any parsing: a full queue rejects without paying for
  // kernel or pipeline validation.
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (queue_.size() >= opts_.queue_limit) {
      VECCOST_COUNTER_ADD("serve.shed", 1);
      respond(conn,
              error_response(request.id, to_string(request.verb),
                             ErrorCode::Overloaded,
                             "admission queue full (" +
                                 std::to_string(opts_.queue_limit) +
                                 " requests); retry later"));
      return;
    }
  }

  CostService::Admission admission = service_.admit(request);
  if (!admission.ok) {
    VECCOST_COUNTER_ADD("serve.bad_request", 1);
    respond(conn, admission.error);
    return;
  }

  Job job;
  job.admitted = std::move(admission.job);
  job.conn = conn;
  job.enqueued = Clock::now();
  const std::int64_t deadline_ms = request.deadline_ms > 0
                                       ? request.deadline_ms
                                       : opts_.default_deadline_ms;
  if (deadline_ms > 0) {
    job.has_deadline = true;
    job.deadline = job.enqueued + std::chrono::milliseconds(deadline_ms);
  }
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    // Re-check under the lock: admissions race, the bound is the contract.
    if (queue_.size() >= opts_.queue_limit) {
      VECCOST_COUNTER_ADD("serve.shed", 1);
      respond(conn,
              error_response(request.id, to_string(request.verb),
                             ErrorCode::Overloaded,
                             "admission queue full (" +
                                 std::to_string(opts_.queue_limit) +
                                 " requests); retry later"));
      return;
    }
    queue_.push_back(std::move(job));
    VECCOST_GAUGE_SET("serve.queue_depth", queue_.size());
  }
  queue_cv_.notify_one();
}

void Server::dispatch_loop() {
  std::vector<Job> batch;
  for (;;) {
    batch.clear();
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [&] {
        return !queue_.empty() || stopping_.load(std::memory_order_acquire);
      });
      const bool stopping = stopping_.load(std::memory_order_acquire);
      while (!queue_.empty() && batch.size() < opts_.batch_max) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      VECCOST_GAUGE_SET("serve.queue_depth", queue_.size());
      if (batch.empty() && stopping) return;
      if (stopping) {
        // Drain: everything still admitted gets a structured answer before
        // the daemon exits — never a silently dropped connection.
        for (Job& job : batch)
          respond(job.conn,
                  error_response(job.admitted.request.id,
                                 to_string(job.admitted.request.verb),
                                 ErrorCode::ShuttingDown,
                                 "daemon is shutting down"));
        continue;
      }
    }
    VECCOST_COUNTER_ADD("serve.batches", 1);
    VECCOST_OBSERVE("serve.batch_size", batch.size());
    if (batch.size() == 1) {
      run_job(batch.front());
    } else {
      // The batch fans out on the process-wide pool — the same workers
      // eval::Session uses — with the dispatcher as one of the runners.
      parallel_for(
          batch.size(), [&](std::size_t i) { run_job(batch[i]); }, opts_.jobs);
    }
  }
}

void Server::run_job(Job& job) {
  const Request& request = job.admitted.request;
  if (job.has_deadline && Clock::now() >= job.deadline) {
    VECCOST_COUNTER_ADD("serve.deadline_exceeded", 1);
    respond(job.conn,
            error_response(request.id, to_string(request.verb),
                           ErrorCode::DeadlineExceeded,
                           "deadline elapsed before the request was served"));
    return;
  }
  Json response = service_.execute(job.admitted);
  if (job.has_deadline && Clock::now() >= job.deadline) {
    // Executed but too late: the caller contracted for an answer by the
    // deadline, so the (cached, reusable) result is dropped in favor of the
    // structured timeout.
    VECCOST_COUNTER_ADD("serve.deadline_exceeded", 1);
    response = error_response(request.id, to_string(request.verb),
                              ErrorCode::DeadlineExceeded,
                              "request completed after its deadline");
  }
  VECCOST_OBSERVE("serve.request_ns",
                  std::chrono::duration_cast<std::chrono::nanoseconds>(
                      Clock::now() - job.enqueued)
                      .count());
  respond(job.conn, response);
}

void Server::respond(const std::shared_ptr<Connection>& conn,
                     const Json& response) {
  if (response.get_bool("ok", false))
    VECCOST_COUNTER_ADD("serve.responses_ok", 1);
  else
    VECCOST_COUNTER_ADD("serve.responses_error", 1);
  if (!conn->write(to_line(response)))
    VECCOST_COUNTER_ADD("serve.dropped_responses", 1);
}

}  // namespace veccost::serve
