// Deterministic load generator for the serve daemon.
//
// Generates a seeded request stream (a fixed verb mix over the TSVC suite),
// fires it at a running daemon from `jobs` concurrent connections, and
// reports latency percentiles plus an order-sensitive FNV-1a digest over
// every (request, normalized response) pair.
//
// Determinism contract (tests/serve_test.cpp pins it): the stream depends
// only on (seed, requests), request i always runs on connection i % jobs in
// per-connection order, and results fold into the digest by request index —
// so the digest is bit-identical across any --jobs value. Responses are
// normalized first (protocol digest_normalized_response): the `cached` flag
// depends on arrival order and warm state, everything else is
// deterministic. That makes latency numbers from different jobs counts /
// machines comparable: same digest = same work was done.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace veccost::serve {

struct LoadgenOptions {
  std::uint16_t port = 0;       ///< daemon port (required)
  std::int64_t requests = 200;  ///< stream length
  std::size_t jobs = 1;         ///< concurrent connections
  std::uint64_t seed = 1;       ///< stream seed
  std::string target;           ///< per-request target; "" = daemon default
  std::int64_t deadline_ms = 0; ///< per-request deadline; 0 = none
  int timeout_ms = 120000;      ///< client-side wait per response
};

struct LoadReport {
  std::int64_t requests = 0;
  std::int64_t ok = 0;
  std::int64_t errors = 0;              ///< ok=false responses
  std::int64_t transport_failures = 0;  ///< connect/read/write failures
  /// FNV-1a over (request line, normalized response) in index order.
  std::uint64_t digest = 0;
  std::vector<double> latencies_us;     ///< per request, index order
  double mean_us = 0;
  double p50_us = 0;
  double p95_us = 0;
  double p99_us = 0;

  [[nodiscard]] bool all_ok() const {
    return errors == 0 && transport_failures == 0;
  }
};

/// Build request line i of the stream (no trailing newline). Exposed so
/// tests can pin the stream itself.
[[nodiscard]] std::string loadgen_request_line(const LoadgenOptions& opts,
                                               std::int64_t index);

/// Run the whole stream against a live daemon. Throws veccost::Error only
/// on setup problems (no port); per-request transport failures are counted.
[[nodiscard]] LoadReport run_loadgen(const LoadgenOptions& opts);

/// The veccost-serve-bench-v1 document for bench/BENCH_serve.json.
[[nodiscard]] std::string bench_json(const LoadgenOptions& opts,
                                     const LoadReport& report);

/// Send one shutdown request; true when the daemon acknowledged.
bool request_shutdown(std::uint16_t port, int timeout_ms = 5000);

}  // namespace veccost::serve
