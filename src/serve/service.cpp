#include "serve/service.hpp"

#include <chrono>
#include <thread>
#include <utility>

#include "costmodel/llvm_model.hpp"
#include "costmodel/selector.hpp"
#include "eval/measurement.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "machine/targets.hpp"
#include "obs/export.hpp"
#include "support/error.hpp"
#include "tsvc/kernel.hpp"
#include "xform/analysis_manager.hpp"

namespace veccost::serve {

using support::Json;

namespace {

/// The caret-positioned pipeline diagnostic `veccost passes` prints, as one
/// message string (JSON-escaped newlines on the wire).
std::string pipeline_error_message(const std::string& spec,
                                   const xform::Pipeline& pipeline) {
  return "pipeline spec: " + pipeline.error() + "\n  " + spec + "\n  " +
         std::string(pipeline.error_position(), ' ') + "^";
}

}  // namespace

CostService::CostService() : CostService(Options()) {}

CostService::CostService(Options opts)
    : opts_(std::move(opts)), cache_(opts_.cache_dir) {
  if (!opts_.default_pipeline.empty()) {
    const xform::Pipeline p = xform::Pipeline::parse(opts_.default_pipeline);
    if (!p.valid())
      throw Error(pipeline_error_message(opts_.default_pipeline, p));
  }
}

CostService::Admission CostService::admit(const Request& request) const {
  VECCOST_SPAN("serve.admit_ns");
  Admission adm;
  // Pipeline (and so Admitted/Admission) is move-only; the lambda marks the
  // rejection in place and callers return the local (moved, not copied).
  const auto reject = [&](const std::string& message) {
    adm.ok = false;
    adm.error = error_response(request.id, to_string(request.verb),
                               ErrorCode::BadRequest, message);
  };

  try {
    adm.job.kernel = ir::parse_kernel(request.kernel);
  } catch (const std::exception& e) {
    reject(std::string("kernel: ") + e.what());
    return adm;
  }
  if (request.n > 0) adm.job.kernel.default_n = request.n;

  const std::string target_name =
      request.target.empty() ? "cortex-a57" : request.target;
  try {
    adm.job.target = &machine::target_by_name(target_name);
  } catch (const std::exception& e) {
    reject(e.what());
    return adm;
  }

  std::string spec = request.pipeline;
  if (spec.empty())
    spec = opts_.default_pipeline.empty()
               ? std::string(eval::kDefaultPipelineSpec)
               : opts_.default_pipeline;
  adm.job.pipeline = xform::Pipeline::parse(spec);
  if (!adm.job.pipeline.valid()) {
    reject(pipeline_error_message(spec, adm.job.pipeline));
    return adm;
  }

  adm.job.request = request;
  adm.job.canonical_kernel = ir::print(adm.job.kernel);
  adm.ok = true;
  return adm;
}

Json CostService::execute(const Admitted& job) const {
  VECCOST_SPAN("serve.execute_ns");
  if (opts_.fault.delay_ms > 0)
    std::this_thread::sleep_for(
        std::chrono::milliseconds(opts_.fault.delay_ms));
  try {
    switch (job.request.verb) {
      case Verb::Predict: return do_predict(job);
      case Verb::Measure: return do_measure(job);
      case Verb::Select: return do_select(job);
      default: break;
    }
    return error_response(job.request.id, to_string(job.request.verb),
                          ErrorCode::Internal,
                          "control verb reached the work path");
  } catch (const std::exception& e) {
    VECCOST_COUNTER_ADD("serve.internal_errors", 1);
    return error_response(job.request.id, to_string(job.request.verb),
                          ErrorCode::Internal, e.what());
  }
}

Json CostService::do_predict(const Admitted& job) const {
  xform::AnalysisManager analyses;
  const xform::PipelineResult xr =
      job.pipeline.run(job.kernel, *job.target, analyses);
  Json result = Json::object();
  result.set("target", job.target->name);
  result.set("pipeline", job.pipeline.spec());
  result.set("vectorizable", xr.ok);
  if (!xr.ok) {
    result.set("reject_reason", xr.reason);
    return ok_response(job.request, std::move(result));
  }
  const ir::LoopKernel& transformed = xr.state.kernel;
  result.set("vf", transformed.vf);
  const double predicted =
      transformed.vf > 1
          ? model::llvm_predict(job.kernel, transformed, *job.target)
                .predicted_speedup
          : 1.0;
  result.set("predicted_speedup", predicted);
  return ok_response(job.request, std::move(result));
}

Json CostService::do_measure(const Admitted& job) const {
  const std::uint64_t key =
      KernelCache::key(job.canonical_kernel, *job.target, job.pipeline.spec(),
                       job.kernel.default_n, opts_.noise);
  CachedMeasurement m;
  bool cached = true;
  if (const auto hit = cache_.find(key)) {
    m = *hit;
  } else {
    cached = false;
    VECCOST_COUNTER_ADD("serve.measure.executed", 1);
    // Injected fault: a lowering-style kernel corruption (PR 4 machinery)
    // turns this measurement into a structured `internal` failure.
    if (opts_.fault.mutate) {
      xform::AnalysisManager analyses;
      const xform::PipelineResult xr =
          job.pipeline.run(job.kernel, *job.target, analyses);
      if (xr.ok) {
        ir::LoopKernel corrupted = xr.state.kernel;
        if (opts_.fault.mutate(corrupted))
          throw Error("injected fault corrupted kernel '" + job.kernel.name +
                      "' under pipeline " + job.pipeline.spec());
      }
    }
    const tsvc::KernelInfo info{job.kernel.name, job.kernel.category,
                                job.kernel.description,
                                [k = job.kernel] { return k; }};
    xform::AnalysisManager analyses;
    const eval::KernelMeasurement km = eval::measure_kernel(
        info, *job.target, opts_.noise, job.pipeline, analyses);
    m.vectorizable = km.vectorizable;
    m.reject_reason = km.reject_reason;
    m.vf = km.vf;
    m.scalar_cycles = km.scalar_cycles;
    m.vector_cycles = km.vector_cycles;
    m.measured_speedup = km.measured_speedup;
    m.predicted_speedup = km.llvm_predicted_speedup;
    // Write-through: persisted before the response goes out, so a restart
    // after this line still answers warm.
    (void)cache_.store(key, m);
  }

  Json result = Json::object();
  result.set("target", job.target->name);
  result.set("pipeline", job.pipeline.spec());
  result.set("vectorizable", m.vectorizable);
  if (!m.vectorizable) {
    result.set("reject_reason", m.reject_reason);
    result.set("cached", cached);
    return ok_response(job.request, std::move(result));
  }
  result.set("vf", m.vf);
  result.set("scalar_cycles", m.scalar_cycles);
  result.set("vector_cycles", m.vector_cycles);
  result.set("measured_speedup", m.measured_speedup);
  result.set("predicted_speedup", m.predicted_speedup);
  result.set("cached", cached);
  return ok_response(job.request, std::move(result));
}

Json CostService::do_select(const Admitted& job) const {
  const model::TransformSelector selector(*job.target);
  const model::SelectionResult r =
      selector.select(job.kernel, job.kernel.default_n);
  Json options = Json::array();
  for (const auto& o : r.options) {
    Json opt = Json::object();
    opt.set("label", o.label());
    opt.set("predicted_speedup", o.predicted_speedup);
    opt.set("measured_cycles", o.measured_cycles);
    options.push(std::move(opt));
  }
  Json result = Json::object();
  result.set("target", job.target->name);
  result.set("options", std::move(options));
  result.set("chosen", r.chosen);
  result.set("best", r.best);
  result.set("regret", r.regret());
  return ok_response(job.request, std::move(result));
}

Json metrics_payload(const obs::Snapshot& snapshot) {
  Json counters = Json::object();
  for (const auto& [name, value] : snapshot.counters)
    counters.set(name, static_cast<std::int64_t>(value));
  Json gauges = Json::object();
  for (const auto& [name, g] : snapshot.gauges) {
    Json gauge = Json::object();
    gauge.set("value", g.value);
    gauge.set("max", g.max);
    gauges.set(name, std::move(gauge));
  }
  Json histograms = Json::object();
  for (const auto& [name, h] : snapshot.histograms) {
    Json hist = Json::object();
    hist.set("count", static_cast<std::int64_t>(h.count));
    hist.set("sum", static_cast<std::int64_t>(h.sum));
    hist.set("p50", static_cast<std::int64_t>(h.quantile_bound(0.5)));
    hist.set("p99", static_cast<std::int64_t>(h.quantile_bound(0.99)));
    histograms.set(name, std::move(hist));
  }
  Json payload = Json::object();
  payload.set("schema", obs::kMetricsSchema);
  payload.set("counters", std::move(counters));
  payload.set("gauges", std::move(gauges));
  payload.set("histograms", std::move(histograms));
  return payload;
}

}  // namespace veccost::serve
