#include "serve/protocol.hpp"

#include "support/error.hpp"

namespace veccost::serve {

using support::Json;

bool is_work_verb(Verb verb) {
  switch (verb) {
    case Verb::Predict:
    case Verb::Measure:
    case Verb::Select:
      return true;
    case Verb::Metrics:
    case Verb::Healthz:
    case Verb::Shutdown:
      return false;
  }
  return false;
}

const char* to_string(Verb verb) {
  switch (verb) {
    case Verb::Predict: return "predict";
    case Verb::Measure: return "measure";
    case Verb::Select: return "select";
    case Verb::Metrics: return "metrics";
    case Verb::Healthz: return "healthz";
    case Verb::Shutdown: return "shutdown";
  }
  return "?";
}

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::BadRequest: return "bad_request";
    case ErrorCode::Overloaded: return "overloaded";
    case ErrorCode::DeadlineExceeded: return "deadline_exceeded";
    case ErrorCode::ShuttingDown: return "shutting_down";
    case ErrorCode::Internal: return "internal";
  }
  return "?";
}

namespace {

bool verb_from_string(const std::string& name, Verb& out) {
  for (const Verb v : {Verb::Predict, Verb::Measure, Verb::Select,
                       Verb::Metrics, Verb::Healthz, Verb::Shutdown}) {
    if (name == to_string(v)) {
      out = v;
      return true;
    }
  }
  return false;
}

}  // namespace

std::string serialize_request(const Request& request) {
  Json j = Json::object();
  j.set("v", kServeSchema);
  j.set("id", request.id);
  j.set("verb", to_string(request.verb));
  if (!request.kernel.empty()) j.set("kernel", request.kernel);
  if (!request.target.empty()) j.set("target", request.target);
  if (!request.pipeline.empty()) j.set("pipeline", request.pipeline);
  if (request.n > 0) j.set("n", request.n);
  if (request.deadline_ms > 0) j.set("deadline_ms", request.deadline_ms);
  return j.dump();
}

RequestParse parse_request(const std::string& line) {
  RequestParse parse;
  Json doc;
  try {
    doc = Json::parse(line);
  } catch (const Error& e) {
    parse.error = e.what();
    return parse;
  }
  if (!doc.is_object()) {
    parse.error = "request must be a JSON object";
    return parse;
  }
  parse.request.id = doc.get_string("id");
  parse.verb_name = doc.get_string("verb");
  const std::string schema = doc.get_string("v");
  if (schema != kServeSchema) {
    parse.error = schema.empty()
                      ? std::string("missing schema field \"v\" (expected \"") +
                            kServeSchema + "\")"
                      : "unsupported schema '" + schema + "' (this daemon speaks " +
                            kServeSchema + ")";
    return parse;
  }
  if (!verb_from_string(parse.verb_name, parse.request.verb)) {
    parse.error = parse.verb_name.empty()
                      ? "missing verb"
                      : "unknown verb '" + parse.verb_name + "'";
    return parse;
  }
  parse.request.kernel = doc.get_string("kernel");
  parse.request.target = doc.get_string("target");
  parse.request.pipeline = doc.get_string("pipeline");
  parse.request.n = doc.get_int("n");
  parse.request.deadline_ms = doc.get_int("deadline_ms");
  if (parse.request.n < 0) {
    parse.error = "n must be >= 0";
    return parse;
  }
  if (parse.request.deadline_ms < 0) {
    parse.error = "deadline_ms must be >= 0";
    return parse;
  }
  if (is_work_verb(parse.request.verb) && parse.request.kernel.empty()) {
    parse.error = std::string("verb '") + to_string(parse.request.verb) +
                  "' needs a \"kernel\"";
    return parse;
  }
  parse.ok = true;
  return parse;
}

support::Json ok_response(const Request& request, Json result) {
  Json j = Json::object();
  j.set("v", kServeSchema);
  j.set("id", request.id);
  j.set("verb", to_string(request.verb));
  j.set("ok", true);
  j.set("result", std::move(result));
  return j;
}

support::Json error_response(const std::string& id,
                             const std::string& verb_name, ErrorCode code,
                             const std::string& message) {
  Json err = Json::object();
  err.set("code", to_string(code));
  err.set("message", message);
  Json j = Json::object();
  j.set("v", kServeSchema);
  j.set("id", id);
  j.set("verb", verb_name);
  j.set("ok", false);
  j.set("error", std::move(err));
  return j;
}

std::string to_line(const Json& response) { return response.dump() + "\n"; }

std::string digest_normalized_response(const std::string& line) {
  Json doc = Json::parse(line);
  if (const Json* result = doc.find("result");
      result != nullptr && result->is_object()) {
    Json cleaned = *result;
    cleaned.erase("cached");
    doc.set("result", std::move(cleaned));
  }
  return doc.dump();
}

}  // namespace veccost::serve
