// Sharded, content-addressed cache of single-kernel measurements for the
// serve daemon — warm across restarts.
//
// The suite-shaped eval::MeasurementCache keys whole TSVC suite files; a
// daemon instead sees a stream of ad-hoc .vir kernels, one at a time, from
// many concurrent connections. This cache:
//
//  * keys each entry by one 64-bit content hash folding the kernel's
//    canonical printed IR, the target fingerprint
//    (eval::MeasurementCache::config_hash — same bytes, same invalidation
//    story), the canonical pipeline spec and the problem size;
//  * shards by key across kShards independent maps, each with its own
//    mutex and its own CSV file, so concurrent measure requests on different
//    kernels never contend on one lock or one file;
//  * persists write-through: a store appends one row to the shard's file
//    under the shard lock, so a daemon killed at any point restarts with
//    every completed measurement warm. Doubles are hex floats — a cached
//    response is bit-identical to a fresh one, which is what lets the
//    warm-restart test demand *zero* re-measurements rather than "close
//    enough".
//
// Rows with a stale schema header or a key that no longer matches are
// dropped on load, mirroring eval::MeasurementCache.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "machine/target.hpp"

namespace veccost::serve {

/// What one measure request learns about one kernel (the cacheable subset
/// of eval::KernelMeasurement — features stay request-side, they are cheap).
struct CachedMeasurement {
  bool vectorizable = false;
  std::string reject_reason;
  int vf = 1;
  double scalar_cycles = 0;
  double vector_cycles = 0;
  double measured_speedup = 0;
  double predicted_speedup = 0;
};

class KernelCache {
 public:
  static constexpr std::size_t kShards = 8;

  /// `dir` empty selects default_dir(). Existing shard files are loaded
  /// eagerly (a daemon reads them once at startup).
  explicit KernelCache(std::string dir = "");

  /// VECCOST_SERVE_CACHE_DIR if set, else "results/serve_cache".
  [[nodiscard]] static std::string default_dir();

  /// Content key for one (kernel, target, pipeline, n) configuration.
  /// `kernel_text` must be canonical printed IR (ir::print of the parsed
  /// kernel), so textual variants of the same kernel share an entry.
  [[nodiscard]] static std::uint64_t key(const std::string& kernel_text,
                                         const machine::TargetDesc& target,
                                         const std::string& pipeline_spec,
                                         std::int64_t n, double noise);

  /// Look up one entry; increments serve.cache.{hit,miss}.
  [[nodiscard]] std::optional<CachedMeasurement> find(std::uint64_t key) const;

  /// Insert (or overwrite) and append to the shard file. Returns false when
  /// the row could not be persisted (entry still cached in memory).
  bool store(std::uint64_t key, const CachedMeasurement& m);

  /// Entries currently cached (all shards).
  [[nodiscard]] std::size_t size() const;

  [[nodiscard]] const std::string& dir() const { return dir_; }

  /// Shard file path, for tests.
  [[nodiscard]] std::string shard_path(std::size_t shard) const;

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::map<std::uint64_t, CachedMeasurement> entries;
  };

  [[nodiscard]] static std::size_t shard_of(std::uint64_t key) {
    return (key >> 56) % kShards;  // top bits: well mixed by ContentHasher
  }

  void load_shard(std::size_t shard);

  std::string dir_;
  std::array<Shard, kShards> shards_;
};

}  // namespace veccost::serve
