// The veccost-serve-v1 wire protocol: newline-delimited JSON over loopback
// TCP, one request or response per line.
//
// Request (fields after "verb" are optional; defaults shown):
//
//   {"v":"veccost-serve-v1","id":"7","verb":"measure",
//    "kernel":"kernel s000 (...) ...",   // .vir text, work verbs only
//    "target":"cortex-a57",
//    "pipeline":"llv",                   // xform pipeline spec
//    "n":0,                              // problem size, 0 = kernel default
//    "deadline_ms":0}                    // 0 = no deadline
//
// Response:
//
//   {"v":"veccost-serve-v1","id":"7","verb":"measure","ok":true,
//    "result":{...verb-specific payload...}}
//   {"v":"veccost-serve-v1","id":"7","verb":"measure","ok":false,
//    "error":{"code":"overloaded","message":"..."}}
//
// Serialization is byte-stable: fields emit in the order above, optional
// request fields are omitted at their default, and numbers format
// deterministically (support/json.hpp). tests/golden/serve_golden.jsonl pins
// the exact bytes — schema drift is a deliberate, reviewed act. Bump
// kServeSchema on an incompatible change.
//
// Verbs: predict / measure / select do model work and flow through the
// admission queue; metrics / healthz / shutdown are control verbs answered
// on the connection thread so they stay responsive when the queue is full.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "support/json.hpp"

namespace veccost::serve {

/// Schema tag carried by every request and response.
inline constexpr const char* kServeSchema = "veccost-serve-v1";

enum class Verb { Predict, Measure, Select, Metrics, Healthz, Shutdown };

/// True for the verbs that go through the admission queue (model work).
[[nodiscard]] bool is_work_verb(Verb verb);

[[nodiscard]] const char* to_string(Verb verb);

/// Structured error categories; the wire carries the snake_case name.
enum class ErrorCode {
  BadRequest,        ///< malformed JSON / schema / verb / kernel / pipeline
  Overloaded,        ///< admission queue full — request shed, retry later
  DeadlineExceeded,  ///< per-request deadline elapsed before/while serving
  ShuttingDown,      ///< daemon is stopping; request not served
  Internal,          ///< handler threw (includes injected faults)
};

[[nodiscard]] const char* to_string(ErrorCode code);

struct Request {
  std::string id;       ///< caller-chosen correlation id, echoed verbatim
  Verb verb = Verb::Healthz;
  std::string kernel;   ///< .vir kernel text (work verbs)
  std::string target;   ///< "" = cortex-a57
  std::string pipeline; ///< xform pipeline spec; "" = the default (llv)
  std::int64_t n = 0;           ///< problem size; 0 = kernel's default_n
  std::int64_t deadline_ms = 0; ///< serving deadline; 0 = none
};

/// Outcome of parsing one request line. When !ok, `error` describes the
/// problem and `request.id`/`verb_name` carry whatever could be salvaged so
/// the error response still correlates.
struct RequestParse {
  bool ok = false;
  Request request;
  std::string verb_name;  ///< raw verb string (may be unknown)
  std::string error;
};

/// Serialize a request (no trailing newline — the framing layer adds it).
[[nodiscard]] std::string serialize_request(const Request& request);

/// Parse one request line. Never throws: malformed input lands in
/// RequestParse::error.
[[nodiscard]] RequestParse parse_request(const std::string& line);

/// Build a success response envelope around a verb-specific result payload.
[[nodiscard]] support::Json ok_response(const Request& request,
                                        support::Json result);

/// Build an error response. `verb_name` is the raw verb string so unknown
/// verbs echo faithfully.
[[nodiscard]] support::Json error_response(const std::string& id,
                                           const std::string& verb_name,
                                           ErrorCode code,
                                           const std::string& message);

/// One response line: dump + '\n'.
[[nodiscard]] std::string to_line(const support::Json& response);

/// Canonical form of a response line for cross-run digests: volatile fields
/// (currently result.cached — a hit on one run is a miss on another) are
/// dropped and the rest re-serialized. Throws veccost::Error on non-JSON.
[[nodiscard]] std::string digest_normalized_response(const std::string& line);

}  // namespace veccost::serve
