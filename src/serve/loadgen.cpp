#include "serve/loadgen.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>

#include "ir/printer.hpp"
#include "serve/protocol.hpp"
#include "support/error.hpp"
#include "support/hash.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"
#include "support/socket.hpp"
#include "tsvc/kernel.hpp"

namespace veccost::serve {

using support::Fnv1a;
using support::Json;
using support::TcpStream;

namespace {

/// Marker folded into the digest where a response should have been. Any
/// transport failure therefore changes the digest — a digest match implies
/// every request got an answer.
constexpr const char* kFailureMarker = "<transport-failure>";

double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

/// Bench files are human-diffed; three decimals of a microsecond is plenty.
double round3(double v) { return std::round(v * 1000.0) / 1000.0; }

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

std::string loadgen_request_line(const LoadgenOptions& opts,
                                 std::int64_t index) {
  // Index-addressable stream: each request draws from its own SplitMix64, so
  // line i is a pure function of (seed, i) — no sequential RNG state that a
  // different jobs split could perturb.
  SplitMix64 sm(opts.seed ^
                (0x9e3779b97f4a7c15ull *
                 (static_cast<std::uint64_t>(index) + 1)));
  const std::uint64_t verb_draw = sm.next() % 10;
  const std::uint64_t kernel_draw = sm.next();

  Request request;
  request.id = std::to_string(index);
  // Mix mirrors expected production traffic: predictions dominate, a
  // measurement tier behind them, occasional full selections.
  request.verb = verb_draw < 6   ? Verb::Predict
                 : verb_draw < 9 ? Verb::Measure
                                 : Verb::Select;
  const auto& suite = tsvc::suite();
  const tsvc::KernelInfo& info = suite[kernel_draw % suite.size()];
  request.kernel = ir::print(info.build());
  request.target = opts.target;
  request.deadline_ms = opts.deadline_ms;
  return serialize_request(request);
}

LoadReport run_loadgen(const LoadgenOptions& opts) {
  if (opts.port == 0) throw Error("loadgen: a daemon port is required");
  if (opts.requests < 0) throw Error("loadgen: negative request count");

  const auto count = static_cast<std::size_t>(opts.requests);
  const std::size_t jobs = std::max<std::size_t>(1, opts.jobs);

  // The stream is built once, up front, on this thread: workers only ever
  // replay fixed bytes, so nothing about scheduling can change what is sent.
  std::vector<std::string> lines(count);
  for (std::size_t i = 0; i < count; ++i)
    lines[i] = loadgen_request_line(opts, static_cast<std::int64_t>(i));

  std::vector<std::string> responses(count);
  std::vector<char> failed(count, 0);
  std::vector<double> latencies_us(count, 0.0);

  // Worker w owns connection w and requests {i : i % jobs == w}, strictly in
  // order — one in flight per connection, which is what makes per-index
  // results independent of how many workers run.
  const auto worker = [&](std::size_t w) {
    TcpStream stream = TcpStream::connect(opts.port, opts.timeout_ms);
    for (std::size_t i = w; i < count; i += jobs) {
      if (!stream.valid()) {
        // One reconnect attempt per request keeps a single dropped
        // connection from failing the whole residue class.
        stream = TcpStream::connect(opts.port, opts.timeout_ms);
        if (!stream.valid()) {
          failed[i] = 1;
          continue;
        }
      }
      const auto start = std::chrono::steady_clock::now();
      if (!stream.send_all(lines[i] + "\n")) {
        failed[i] = 1;
        stream.close();
        continue;
      }
      std::string line;
      if (stream.read_line(line, opts.timeout_ms) !=
          TcpStream::ReadResult::Ok) {
        failed[i] = 1;
        stream.close();
        continue;
      }
      const auto stop = std::chrono::steady_clock::now();
      latencies_us[i] =
          std::chrono::duration<double, std::micro>(stop - start).count();
      responses[i] = line;
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(jobs);
  for (std::size_t w = 0; w < jobs; ++w) threads.emplace_back(worker, w);
  for (std::thread& t : threads) t.join();

  LoadReport report;
  report.requests = opts.requests;
  report.latencies_us = latencies_us;

  Fnv1a digest;
  for (std::size_t i = 0; i < count; ++i) {
    digest.add(lines[i]);
    if (failed[i]) {
      ++report.transport_failures;
      digest.add(kFailureMarker);
      continue;
    }
    bool ok = false;
    try {
      const Json response = Json::parse(responses[i]);
      ok = response.get_bool("ok", false);
      digest.add(digest_normalized_response(responses[i]));
    } catch (const std::exception&) {
      // A non-JSON response line is a daemon bug; count it as transport.
      ++report.transport_failures;
      digest.add(kFailureMarker);
      continue;
    }
    if (ok)
      ++report.ok;
    else
      ++report.errors;
  }
  report.digest = digest.value();

  std::vector<double> sorted;
  sorted.reserve(count);
  double sum = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    if (failed[i]) continue;
    sorted.push_back(latencies_us[i]);
    sum += latencies_us[i];
  }
  std::sort(sorted.begin(), sorted.end());
  if (!sorted.empty())
    report.mean_us = sum / static_cast<double>(sorted.size());
  report.p50_us = percentile(sorted, 0.50);
  report.p95_us = percentile(sorted, 0.95);
  report.p99_us = percentile(sorted, 0.99);
  return report;
}

std::string bench_json(const LoadgenOptions& opts, const LoadReport& report) {
  Json latency = Json::object();
  latency.set("mean", round3(report.mean_us));
  latency.set("p50", round3(report.p50_us));
  latency.set("p95", round3(report.p95_us));
  latency.set("p99", round3(report.p99_us));

  Json doc = Json::object();
  doc.set("schema", "veccost-serve-bench-v1");
  doc.set("requests", report.requests);
  doc.set("jobs", static_cast<std::int64_t>(std::max<std::size_t>(
                      1, opts.jobs)));
  doc.set("seed", static_cast<std::int64_t>(opts.seed));
  doc.set("target", opts.target.empty() ? "cortex-a57" : opts.target);
  doc.set("ok", report.ok);
  doc.set("errors", report.errors);
  doc.set("transport_failures", report.transport_failures);
  doc.set("digest", hex64(report.digest));
  doc.set("latency_us", std::move(latency));
  return doc.dump() + "\n";
}

bool request_shutdown(std::uint16_t port, int timeout_ms) {
  TcpStream stream = TcpStream::connect(port, timeout_ms);
  if (!stream.valid()) return false;
  Request request;
  request.id = "shutdown";
  request.verb = Verb::Shutdown;
  if (!stream.send_all(serialize_request(request) + "\n")) return false;
  std::string line;
  if (stream.read_line(line, timeout_ms) != TcpStream::ReadResult::Ok)
    return false;
  try {
    return Json::parse(line).get_bool("ok", false);
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace veccost::serve
