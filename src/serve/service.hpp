// CostService: the serve daemon's request semantics, separated from its
// transport.
//
// Two-phase by design:
//
//  * admit() — everything that can reject a request runs here, on the
//    connection thread, before the request touches the queue: kernel text
//    parse, target lookup, pipeline spec validation (with the same
//    caret-positioned message `veccost passes` prints). A malformed
//    --pipeline spec therefore produces a structured bad_request response at
//    admission time; it can never throw mid-batch and take a worker down.
//  * execute() — the model work (predict / measure / select), run by the
//    server's batch workers. Never throws: handler exceptions become
//    `internal` error responses.
//
// measure answers from the sharded KernelCache when it can
// (serve.cache.hit); misses run the real measurement
// (serve.measure.executed) and persist write-through, so a restarted daemon
// answers the same request stream with zero re-measurements.
//
// Fault injection (tests, `veccost serve --inject-fault`): the PR 4
// KernelMutator machinery plugs in here — a mutated kernel makes the
// request fail with `internal`, and `delay_ms` makes every work request
// slow, which is how the load-shedding tests fill the queue.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "ir/loop.hpp"
#include "machine/perf_model.hpp"
#include "machine/target.hpp"
#include "obs/metrics.hpp"
#include "serve/kernel_cache.hpp"
#include "serve/protocol.hpp"
#include "xform/pipeline.hpp"

namespace veccost::serve {

/// Test/diagnostics hook making work requests slow and/or failing (the
/// serve face of `veccost fuzz --inject-fault`).
struct FaultInjection {
  /// Added latency per work request, in milliseconds.
  std::int64_t delay_ms = 0;
  /// PR 4-style kernel mutator (e.g. testing::demo_lowering_fault). Applied
  /// to the transformed kernel; when it bites, the request fails `internal`.
  std::function<bool(ir::LoopKernel&)> mutate;
};

class CostService {
 public:
  struct Options {
    std::string cache_dir;  ///< KernelCache dir; "" = its default
    /// Pipeline applied to requests that carry none; "" = the measurement
    /// default (llv). Validated at construction — a daemon with a malformed
    /// default spec refuses to start instead of failing every request.
    std::string default_pipeline;
    double noise = machine::kDefaultNoise;
    FaultInjection fault;
  };

  CostService();  ///< all-default Options (out of line: GCC NSDMI quirk)
  /// Throws veccost::Error (caret-positioned) on a bad default_pipeline.
  explicit CostService(Options opts);

  /// A request that passed admission: pre-parsed, ready to execute.
  struct Admitted {
    Request request;
    ir::LoopKernel kernel;  ///< parsed; default_n overridden by request.n
    const machine::TargetDesc* target = nullptr;
    xform::Pipeline pipeline;
    std::string canonical_kernel;  ///< ir::print(kernel), the cache-key text
  };

  struct Admission {
    bool ok = false;
    Admitted job;         ///< valid when ok
    support::Json error;  ///< bad_request response when !ok
  };

  /// Validate a work request (verb must be predict/measure/select). Cheap —
  /// safe on the connection thread.
  [[nodiscard]] Admission admit(const Request& request) const;

  /// Run a work verb. Never throws.
  [[nodiscard]] support::Json execute(const Admitted& job) const;

  [[nodiscard]] const KernelCache& cache() const { return cache_; }

 private:
  [[nodiscard]] support::Json do_predict(const Admitted& job) const;
  [[nodiscard]] support::Json do_measure(const Admitted& job) const;
  [[nodiscard]] support::Json do_select(const Admitted& job) const;

  Options opts_;
  /// mutable: answering a measure request warms the cache, which is
  /// logically const service state (same stance as eval::Session).
  mutable KernelCache cache_;
};

/// The obs registry snapshot as a serve-protocol result payload (same shape
/// as the veccost-metrics-v1 document, deterministic member order).
[[nodiscard]] support::Json metrics_payload(const obs::Snapshot& snapshot);

}  // namespace veccost::serve
