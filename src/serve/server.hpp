// The `veccost serve` daemon: a batched, backpressured cost-model server
// over the veccost-serve-v1 protocol (serve/protocol.hpp).
//
// Thread architecture:
//
//   accept thread ──► one reader thread per connection
//                        │  control verbs (healthz / metrics / shutdown)
//                        │  answered inline — a full queue never makes the
//                        │  daemon unresponsive to probes
//                        ▼
//                  bounded admission queue  ── full? ──► `overloaded` (shed)
//                        │
//                  dispatch thread: pops up to batch_max requests and fans
//                  the batch onto the process ThreadPool (parallel_for —
//                  the same pool eval::Session measures on), so concurrent
//                  clients share workers instead of spawning their own
//
// Backpressure is explicit: admission never blocks and never grows the
// queue past queue_limit — excess requests get a structured `overloaded`
// error immediately (serve.shed counts them). Each request may carry a
// deadline; requests that age out in the queue are answered
// `deadline_exceeded` without being executed (serve.deadline_exceeded).
// Requests parse/validate fully at admission (CostService::admit), so a
// malformed kernel or pipeline spec is a bad_request on the connection
// thread, never a mid-batch exception.
//
// Instruments: serve.requests, serve.responses_{ok,error}, serve.shed,
// serve.deadline_exceeded, serve.bad_request, serve.batches,
// serve.dropped_responses counters; serve.queue_depth gauge;
// serve.request_ns / serve.batch_size histograms (plus CostService's
// serve.admit_ns / serve.execute_ns spans and serve.cache.* counters).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/service.hpp"
#include "support/socket.hpp"

namespace veccost::serve {

struct ServeOptions {
  std::uint16_t port = 0;        ///< 0 = ephemeral (Server::port() reports it)
  std::size_t queue_limit = 64;  ///< admitted-but-unserved bound; above = shed
  std::size_t batch_max = 16;    ///< requests per dispatch batch
  std::size_t jobs = 0;          ///< batch parallelism; 0 = default_parallelism
  /// Deadline applied to requests that carry none; 0 = unlimited.
  std::int64_t default_deadline_ms = 0;
  CostService::Options service;  ///< cache dir, default pipeline, fault hook
};

class Server {
 public:
  explicit Server(ServeOptions opts = {});
  ~Server();  ///< stop() + wait()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind and spawn the accept + dispatch threads. Throws veccost::Error
  /// when the port cannot be bound or the default pipeline spec is invalid.
  void start();

  /// The bound port (valid after start()).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Ask the daemon to stop (idempotent, any thread). The `shutdown` verb
  /// calls this internally.
  void stop();

  /// Block until the daemon has stopped and every thread is joined. Pending
  /// queued requests are answered `shutting_down`, the cache stays on disk.
  void wait();

  [[nodiscard]] bool running() const {
    return started_ && !stopping_.load(std::memory_order_acquire);
  }

  [[nodiscard]] const CostService& service() const { return service_; }

 private:
  using Clock = std::chrono::steady_clock;

  /// One client connection's write side; shared by the reader thread and
  /// any in-flight jobs so late responses after a disconnect are dropped,
  /// not crashed on.
  struct Connection {
    support::TcpStream stream;
    std::mutex write_mutex;
    bool write(const std::string& line);
  };

  struct Job {
    CostService::Admitted admitted;
    std::shared_ptr<Connection> conn;
    Clock::time_point enqueued;
    Clock::time_point deadline;
    bool has_deadline = false;
  };

  void accept_loop();
  void connection_loop(const std::shared_ptr<Connection>& conn);
  void handle_line(const std::shared_ptr<Connection>& conn,
                   const std::string& line);
  void dispatch_loop();
  void run_job(Job& job);
  void respond(const std::shared_ptr<Connection>& conn,
               const support::Json& response);

  ServeOptions opts_;
  CostService service_;
  support::TcpListener listener_;
  std::uint16_t port_ = 0;
  bool started_ = false;

  std::atomic<bool> stopping_{false};

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Job> queue_;

  std::thread accept_thread_;
  std::thread dispatch_thread_;
  std::mutex connections_mutex_;
  std::vector<std::thread> connection_threads_;

  std::mutex join_mutex_;  ///< serializes wait()
  bool joined_ = false;
};

}  // namespace veccost::serve
