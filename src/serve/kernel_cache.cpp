#include "serve/kernel_cache.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "eval/measurement_cache.hpp"
#include "obs/metrics.hpp"
#include "support/csv.hpp"
#include "support/env_flags.hpp"
#include "support/hash.hpp"

namespace veccost::serve {

namespace {

std::string hex64(std::uint64_t v) {
  std::ostringstream os;
  os << std::hex << v;
  return os.str();
}

std::uint64_t parse_hex64(const std::string& s) {
  return std::strtoull(s.c_str(), nullptr, 16);
}

std::string format_double(double v) {
  // Hex floats round-trip bit-exactly (same rule as eval::MeasurementCache):
  // a warm-cache response must be indistinguishable from a fresh one.
  std::ostringstream os;
  os << std::hexfloat << v;
  return os.str();
}

double parse_double(const std::string& s) {
  return std::strtod(s.c_str(), nullptr);
}

const std::vector<std::string> kHeader = {
    "key",           "vectorizable",  "reject_reason",
    "vf",            "scalar_cycles", "vector_cycles",
    "measured_speedup", "predicted_speedup"};

}  // namespace

KernelCache::KernelCache(std::string dir) : dir_(std::move(dir)) {
  if (dir_.empty()) dir_ = default_dir();
  for (std::size_t s = 0; s < kShards; ++s) load_shard(s);
}

std::string KernelCache::default_dir() {
  const std::string env = support::EnvFlags::value("VECCOST_SERVE_CACHE_DIR");
  return env.empty() ? "results/serve_cache" : env;
}

std::uint64_t KernelCache::key(const std::string& kernel_text,
                               const machine::TargetDesc& target,
                               const std::string& pipeline_spec,
                               std::int64_t n, double noise) {
  support::ContentHasher h;
  // Target fingerprint + noise + kPipelineVersion, folded exactly the way
  // the suite cache folds them — editing a target's timing table invalidates
  // both caches at once.
  h.mix(eval::MeasurementCache::config_hash(target, noise));
  h.mix(pipeline_spec);
  h.mix(n);
  h.mix(kernel_text);
  return h.value();
}

std::string KernelCache::shard_path(std::size_t shard) const {
  return dir_ + "/shard_" + std::to_string(shard) + ".csv";
}

void KernelCache::load_shard(std::size_t shard) {
  std::ifstream in(shard_path(shard));
  if (!in) return;
  VECCOST_COUNTER_ADD("serve.cache.file_loads", 1);
  CsvReader reader(in);
  std::vector<std::string> cells;
  if (!reader.read_row(cells) || cells != kHeader) {  // stale schema
    VECCOST_COUNTER_ADD("serve.cache.stale_files", 1);
    return;
  }
  Shard& sh = shards_[shard];
  std::size_t loaded = 0;
  while (reader.read_row(cells)) {
    if (cells.size() != kHeader.size()) {  // truncated row (killed mid-append)
      VECCOST_COUNTER_ADD("serve.cache.stale_rows", 1);
      continue;
    }
    const std::uint64_t key = parse_hex64(cells[0]);
    if (shard_of(key) != shard) {  // foreign/corrupt row
      VECCOST_COUNTER_ADD("serve.cache.stale_rows", 1);
      continue;
    }
    CachedMeasurement m;
    m.vectorizable = cells[1] == "1";
    m.reject_reason = cells[2];
    m.vf = static_cast<int>(std::strtol(cells[3].c_str(), nullptr, 10));
    m.scalar_cycles = parse_double(cells[4]);
    m.vector_cycles = parse_double(cells[5]);
    m.measured_speedup = parse_double(cells[6]);
    m.predicted_speedup = parse_double(cells[7]);
    sh.entries.insert_or_assign(key, std::move(m));  // later rows win
    ++loaded;
  }
  VECCOST_COUNTER_ADD("serve.cache.loaded_entries", loaded);
}

std::optional<CachedMeasurement> KernelCache::find(std::uint64_t key) const {
  const Shard& sh = shards_[shard_of(key)];
  std::lock_guard<std::mutex> lock(sh.mutex);
  if (const auto it = sh.entries.find(key); it != sh.entries.end()) {
    VECCOST_COUNTER_ADD("serve.cache.hit", 1);
    return it->second;
  }
  VECCOST_COUNTER_ADD("serve.cache.miss", 1);
  return std::nullopt;
}

bool KernelCache::store(std::uint64_t key, const CachedMeasurement& m) {
  const std::size_t shard = shard_of(key);
  Shard& sh = shards_[shard];
  std::lock_guard<std::mutex> lock(sh.mutex);
  sh.entries.insert_or_assign(key, m);
  VECCOST_COUNTER_ADD("serve.cache.store", 1);

  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) return false;
  const std::string path = shard_path(shard);
  const bool fresh = !std::filesystem::exists(path, ec) || ec;
  std::ofstream out(path, std::ios::app);
  if (!out) return false;
  CsvWriter writer(out);
  if (fresh) writer.write_row(kHeader);
  writer.write_row({hex64(key), m.vectorizable ? "1" : "0", m.reject_reason,
                    std::to_string(m.vf), format_double(m.scalar_cycles),
                    format_double(m.vector_cycles),
                    format_double(m.measured_speedup),
                    format_double(m.predicted_speedup)});
  return static_cast<bool>(out);
}

std::size_t KernelCache::size() const {
  std::size_t n = 0;
  for (const Shard& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh.mutex);
    n += sh.entries.size();
  }
  return n;
}

}  // namespace veccost::serve
