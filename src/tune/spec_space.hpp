// SpecSpace: the tuner's search space over canonical pipeline specs.
//
// A point in the space is a small lattice coordinate — an optional
// nest-level interchange, an optional unroll-and-jam factor, an optional
// unroll factor, an optional slp+reroll rewrite, an optional widening
// suffix (llv at a natural/explicit VF, the predicated `vl` regime, or the
// outer-loop ollv variants) — rendered to the xform spec grammar in one
// canonical order:
//
//   [interchange<a,a+1>,] [unrolljam<F>,] [unroll<F>,] [slp,reroll,]
//   [llv... | ollv...]
//
// The nest axes (interchange, unrolljam, ollv) enumerate empty on 1- and
// 2-deep kernels, so classic kernels keep the exact historical lattice,
// seed order, and mutation stream.
//
// The axes are enumerated from the xform registry's PassInfo hooks
// (enumerate_pass_params / pass_applicable), gated by the target's
// capabilities and the kernel's cached legality verdict — one legality run
// per kernel covers the whole search. Mutation steps one axis at a time and
// is a pure function of (point, seed, step), which is what makes the beam
// search's trajectory independent of thread count.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/legality.hpp"
#include "ir/loop.hpp"
#include "machine/target.hpp"

namespace veccost::tune {

/// Axis value meaning "no llv pass" (distinct from 0 = `llv` at the natural
/// VF and from xform::kVLParam = `llv<vl>`).
inline constexpr int kNoLlv = -2;
/// Axis value meaning "no interchange pass" (levels are >= 0).
inline constexpr int kNoInterchange = -1;

/// One lattice coordinate. Default-constructed = the empty spec (invalid —
/// every emitted point has at least one pass).
struct SpecPoint {
  int unroll = 0;           ///< 0 = no unroll pass, else factor >= 2
  bool slp_reroll = false;  ///< include the slp,reroll rewrite pair
  int llv = kNoLlv;         ///< kNoLlv / 0 (natural) / VF / xform::kVLParam
  int interchange = kNoInterchange;  ///< first level `a` of the pair (a, a+1)
  int unrolljam = 0;        ///< 0 = no unrolljam pass, else factor >= 2
  int ollv = kNoLlv;        ///< like llv; mutually exclusive with it

  [[nodiscard]] bool empty() const {
    return unroll == 0 && !slp_reroll && llv == kNoLlv &&
           interchange == kNoInterchange && unrolljam == 0 && ollv == kNoLlv;
  }
  /// Canonical spec text (see file comment for the order).
  [[nodiscard]] std::string to_spec() const;

  auto operator<=>(const SpecPoint&) const = default;
};

class SpecSpace {
 public:
  /// Enumerate the legal axis values for `scalar` on `target`. `legality`
  /// is the scalar kernel's verdict (from the caller's AnalysisManager, so
  /// the analysis is shared with scoring and measurement).
  SpecSpace(const ir::LoopKernel& scalar, const machine::TargetDesc& target,
            const analysis::Legality& legality);

  /// Deterministic seed points for the beam: every legal llv variant, the
  /// smallest legal unroll alone, and unroll+slp+reroll (hand-unroll then
  /// re-vectorize — the SLP-after-unroll configuration of the paper).
  [[nodiscard]] const std::vector<SpecPoint>& seeds() const { return seeds_; }

  /// Every point of the lattice (the exhaustive grid), seeds first. Small:
  /// |unroll axis| * 2 * |llv axis| minus the empty point.
  [[nodiscard]] std::vector<SpecPoint> all_points() const;

  /// The exhaustive `llv` VF sweep the regret report compares against:
  /// llv (natural VF) plus every legal explicit llv<VF>. Empty for
  /// non-vectorizable kernels.
  [[nodiscard]] std::vector<SpecPoint> exhaustive_llv() const;

  /// Structural legality of a point (pass_applicable over each pass).
  [[nodiscard]] bool legal(const SpecPoint& p) const;

  /// Mutate one axis of `p`. Pure in (p, seed, step): equal arguments yield
  /// the equal result, so search trajectories replay bit-for-bit. Returns
  /// nullopt when no legal neighbour differs from `p` (degenerate spaces).
  [[nodiscard]] std::optional<SpecPoint> mutate(const SpecPoint& p,
                                                std::uint64_t seed,
                                                std::uint64_t step) const;

  /// Legal values of each axis (kNoLlv / 0-for-no-unroll included).
  [[nodiscard]] const std::vector<int>& unroll_axis() const {
    return unrolls_;
  }
  [[nodiscard]] const std::vector<int>& llv_axis() const { return llvs_; }
  [[nodiscard]] const std::vector<int>& interchange_axis() const {
    return interchanges_;
  }
  [[nodiscard]] const std::vector<int>& unrolljam_axis() const {
    return unrolljams_;
  }
  [[nodiscard]] const std::vector<int>& ollv_axis() const { return ollvs_; }

 private:
  std::vector<int> unrolls_;  ///< always starts with 0 (= none)
  std::vector<int> llvs_;     ///< always starts with kNoLlv (= none)
  std::vector<int> interchanges_;  ///< starts with kNoInterchange (= none)
  std::vector<int> unrolljams_;    ///< starts with 0 (= none)
  std::vector<int> ollvs_;         ///< starts with kNoLlv (= none)
  /// 3 on classic kernels (the historical mutation stream), 6 when any
  /// nest axis has a second value.
  std::uint64_t mutation_axes_ = 3;
  std::vector<SpecPoint> seeds_;
};

}  // namespace veccost::tune
