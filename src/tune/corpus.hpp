// The tuned-spec corpus: the byte-stable CSV artifact of a tuning run.
//
// One row per kernel, in report order, doubles rendered as hex floats so
// the file round-trips bit-exactly and `cmp` across --jobs values (or
// against tests/golden/tune_golden.csv) is a meaningful determinism check.
// Kernels with no successfully measured candidate keep spec "-" and
// speedup 0x1p+0 — the corpus always covers every tuned kernel.
#pragma once

#include <string>

#include "tune/tuner.hpp"

namespace veccost::tune {

/// Header of the corpus CSV (also its schema version — changing it means
/// regenerating the golden).
inline constexpr const char* kCorpusHeader =
    "kernel,spec,vf,scalar_cycles,tuned_cycles,speedup,scored,measured";

/// Render the whole corpus (header + one row per kernel) as CSV text.
[[nodiscard]] std::string corpus_csv(const TuneReport& report);

/// Write corpus_csv(report) to `path`, creating parent directories.
/// Throws veccost::Error when the file cannot be written.
void write_corpus(const std::string& path, const TuneReport& report);

/// 16-digit lowercase hex of a digest, the form CI greps for.
[[nodiscard]] std::string digest_hex(std::uint64_t digest);

}  // namespace veccost::tune
