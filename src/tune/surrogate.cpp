#include "tune/surrogate.hpp"

#include <algorithm>

#include "costmodel/llvm_model.hpp"
#include "obs/metrics.hpp"
#include "vectorizer/loop_vectorizer.hpp"

namespace veccost::tune {

namespace {

/// The learned correction is a rescaling, not an oracle: clamp it so one
/// badly-extrapolated feature row cannot invert the candidate ranking.
constexpr double kMinCalibration = 0.25;
constexpr double kMaxCalibration = 4.0;

/// Score of a widening that only survives behind a runtime check: the
/// versioned binary pays the check and runs the scalar path, so it is
/// strictly worse than not transforming.
constexpr double kRuntimeCheckScore = 0.9;

}  // namespace

Surrogate::Surrogate(const machine::TargetDesc& target) : target_(target) {}

Surrogate::Surrogate(const machine::TargetDesc& target,
                     const model::LinearSpeedupModel& fitted)
    : target_(target),
      set_(fitted.feature_set()),
      linear_(fitted.weights(), fitted.bias()) {}

Surrogate::KernelContext Surrogate::context(
    const ir::LoopKernel& scalar, xform::AnalysisManager& analyses) const {
  KernelContext ctx;
  if (!calibrated()) return ctx;
  const analysis::Legality& legality = analyses.legality(scalar);
  if (!legality.vectorizable) return ctx;
  // Baseline prediction at the natural VF — the configuration the fitted
  // model was trained to predict, so fitted/baseline is the learned
  // correction for this kernel.
  vectorizer::LoopVectorizerOptions opts;
  const vectorizer::VectorizedLoop widened =
      vectorizer::vectorize_legal(scalar, target_, opts, legality);
  if (!widened.ok || widened.runtime_check) return ctx;
  const double base =
      model::llvm_predict(scalar, widened.kernel, target_).predicted_speedup;
  const double fitted = linear_.predict(analyses.features(scalar, set_));
  if (base > 1e-9 && fitted > 0)
    ctx.calibration =
        std::clamp(fitted / base, kMinCalibration, kMaxCalibration);
  return ctx;
}

double Surrogate::score(const KernelContext& ctx, const ir::LoopKernel& scalar,
                        const xform::PipelineState& state) const {
  VECCOST_COUNTER_ADD("tune.surrogate.scores", 1);
  if (state.runtime_check) return kRuntimeCheckScore;
  if (state.kernel.vf <= 1) return 1.0;
  const double base =
      model::llvm_predict(scalar, state.kernel, target_).predicted_speedup;
  return std::max(base * ctx.calibration, 1e-6);
}

}  // namespace veccost::tune
