// tune::Surrogate — the cheap candidate scorer of the pipeline autotuner.
//
// The search scores every candidate spec before paying for a measurement.
// Scoring a candidate means running its pipeline (analyses served by the
// kernel's shared AnalysisManager — transforms are cheap, measurement is
// not) and predicting the transformed kernel's speedup:
//
//   score = llvm_predict(scalar -> transformed) * calibration
//
// The LLVM-style additive model supplies the *spec-aware* part (it sees the
// actual widened kernel, so llv<2> vs llv<8> vs llv<vl> rank differently);
// the paper's fitted linear model supplies the *machine-aware* part as a
// per-kernel calibration factor: fitted prediction over baseline prediction
// at the natural VF. Where the additive model is systematically wrong about
// a kernel (bandwidth ceilings, dependence chains — exactly what the fitted
// weights learned), every candidate of that kernel is rescaled by the same
// learned correction. The fitted query path is fit::LinearSurrogate, so the
// surrogate hit-rate reported in BENCH_tune.json counts real queries.
//
// Scalar-to-scalar candidates (pure unroll, slp+reroll) score 1.0; widening
// that only survives behind a runtime check scores below scalar (the
// versioned binary pays the check and runs the scalar path).
#pragma once

#include <cstdint>

#include "costmodel/linear_model.hpp"
#include "fit/surrogate.hpp"
#include "machine/target.hpp"
#include "xform/analysis_manager.hpp"
#include "xform/pass.hpp"

namespace veccost::tune {

class Surrogate {
 public:
  /// Uncalibrated: the additive baseline model alone (used when no fitted
  /// model is available — e.g. the fuzz oracle's generated kernels).
  explicit Surrogate(const machine::TargetDesc& target);

  /// Calibrated by a fitted speedup model (see file comment).
  Surrogate(const machine::TargetDesc& target,
            const model::LinearSpeedupModel& fitted);

  /// Per-kernel scoring state, computed once per search.
  struct KernelContext {
    double calibration = 1.0;  ///< fitted / baseline at the natural VF
  };

  [[nodiscard]] KernelContext context(const ir::LoopKernel& scalar,
                                      xform::AnalysisManager& analyses) const;

  /// Score one pipeline outcome for `scalar` (higher = better predicted
  /// speedup over scalar). Deterministic; never measures.
  [[nodiscard]] double score(const KernelContext& ctx,
                             const ir::LoopKernel& scalar,
                             const xform::PipelineState& state) const;

  [[nodiscard]] bool calibrated() const { return !linear_.empty(); }
  /// Fitted-model queries served so far (0 when uncalibrated).
  [[nodiscard]] std::uint64_t queries() const { return linear_.queries(); }

 private:
  machine::TargetDesc target_;
  analysis::FeatureSet set_ = analysis::FeatureSet::Rated;
  fit::LinearSurrogate linear_;  ///< empty when uncalibrated
};

}  // namespace veccost::tune
