// The pipeline autotuner behind `veccost tune`.
//
// Per kernel, the search is a small beam search with an ε-greedy exploration
// bonus over SpecSpace's lattice:
//
//   round 0   score the whole lattice with the surrogate (each candidate
//             costs one pipeline run through the kernel's shared
//             AnalysisManager plus one model query — cheap by design), then
//             promote the best `beam_width` candidates — plus the natural
//             `llv` point, plus an ε-greedy random extra — to ground-truth
//             measurement.
//   round k   mutate the current beam (top candidates by measured speedup,
//             surrogate score as filler for the unmeasured) and promote the
//             best unmeasured candidates of that neighbourhood — the search
//             walks outward from measured truth instead of marching down
//             the surrogate's global ranking, plus the ε-greedy extra.
//
// Ground-truth measurements are the budget: the surrogate's job is to spend
// as few of them as possible (the prune rate CI pins is the fraction of
// scored candidates never measured).
//
// Every stochastic choice is a pure function of (seed, kernel, round, salt):
// the trajectory — and therefore the emitted corpus and its digest — is
// bit-identical for every --jobs value, warm or cold cache. Parallelism
// lives outside the per-kernel search (tune_suite fans out over kernels;
// measurement batches fan out inside eval::Session), both of which merge by
// index.
//
// The regret report re-measures the exhaustive `llv` VF sweep per kernel
// and compares the tuner's best against the sweep's best: mean regret over
// the suite is the number CI pins (<= 5% with the surrogate pruning at
// least half of the ground-truth measurements).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "eval/session.hpp"
#include "ir/loop.hpp"
#include "machine/target.hpp"
#include "tune/surrogate.hpp"

namespace veccost::tune {

/// Search policy. Defaults are the tuned trade-off the regret test pins:
/// two mutation rounds of a 3-wide beam prune well over half of the
/// exhaustive grid while staying within 5% of the exhaustive-llv best.
struct TuneOptions {
  std::uint64_t seed = 1;
  int rounds = 2;        ///< mutation rounds after the seed round
  int beam_width = 3;    ///< candidates promoted to measurement per round
  int mutations = 4;     ///< mutation attempts per beam member per round
  double epsilon = 0.25; ///< chance of one extra random promotion per round
  double noise = machine::kDefaultNoise;
  /// Kernels to tune; empty = the full TSVC suite (tune_suite only).
  std::vector<std::string> kernels;
  /// Calibrate the surrogate with a speedup model fitted on the suite
  /// (costs one suite measurement, amortized by the session cache).
  bool fit_surrogate = true;
  /// Also measure the exhaustive llv VF sweep and report regret.
  bool compute_regret = false;
};

/// One candidate the search touched, in canonical-spec order.
struct SpecOutcome {
  std::string spec;
  double surrogate = 0;       ///< surrogate score (when scored_ok)
  bool scored_ok = false;     ///< pipeline ran; surrogate score is valid
  std::string reject_reason;  ///< why the pipeline failed, when it did
  bool measured = false;      ///< promoted to ground truth
  double speedup = 0;         ///< measured speedup over scalar
  double cycles = 0;          ///< measured cycles (transformed)
  int vf = 1;
};

/// The tuner's verdict for one kernel.
struct KernelTuneResult {
  std::string kernel;
  bool ok = false;            ///< at least one candidate measured successfully
  std::string best_spec = "-";
  double best_speedup = 1.0;
  double best_cycles = 0;
  double scalar_cycles = 0;
  int best_vf = 1;
  std::size_t scored = 0;     ///< surrogate-scored candidates
  std::size_t measured = 0;   ///< candidates promoted to measurement
  std::size_t rejected = 0;   ///< candidates whose pipeline failed
  std::size_t cache_hits = 0, cache_misses = 0;  ///< measurement batches
  std::vector<SpecOutcome> trace;  ///< every touched candidate, spec order
  /// Exhaustive llv sweep specs (for the regret phase; filled always).
  std::vector<std::string> exhaustive_specs;
  double best_exhaustive = 0;  ///< best sweep speedup (regret phase)
  double regret = 0;           ///< max(0, 1 - best/best_exhaustive)
  std::uint64_t digest = 0;    ///< FNV-1a over the trace + verdict
};

/// A whole tuning run (one target, one seed).
struct TuneReport {
  std::string target_name;
  std::uint64_t seed = 0;
  bool calibrated = false;     ///< surrogate had a fitted model
  std::vector<KernelTuneResult> kernels;
  std::size_t scored = 0, measured = 0, rejected = 0;
  std::size_t cache_hits = 0, cache_misses = 0;
  /// Distinct sweep measurements of the regret phase (cache stats above
  /// include them; `measured` does not).
  std::size_t regret_measurements = 0;
  std::uint64_t surrogate_queries = 0;  ///< fitted-model queries served
  double mean_regret = 0, max_regret = 0;  ///< over kernels with a sweep
  std::size_t regret_kernels = 0;          ///< kernels the means cover
  std::uint64_t digest = 0;  ///< suite digest (folds per-kernel digests)

  /// Fraction of scored candidates the surrogate pruned away (never
  /// promoted to ground truth). The acceptance bar is >= 0.5.
  [[nodiscard]] double prune_rate() const {
    return scored == 0
               ? 0.0
               : 1.0 - static_cast<double>(measured) /
                           static_cast<double>(scored);
  }
};

/// Ground-truth channel: measure `specs` (pipeline spec texts) over the
/// named kernel and return results in request order plus cache stats.
/// tune_suite wires this to eval::Session::measure_specs; tests and the
/// fuzz oracle wire it to direct measurement.
using MeasureBatch = std::function<eval::SpecBatchResult(
    const std::string& kernel, const std::vector<std::string>& specs)>;

/// Tune one kernel. Pure in (scalar, target, opts, surrogate contents,
/// measure results): equal inputs give a bit-identical result.
[[nodiscard]] KernelTuneResult tune_kernel(const ir::LoopKernel& scalar,
                                           const machine::TargetDesc& target,
                                           const TuneOptions& opts,
                                           const Surrogate& surrogate,
                                           const MeasureBatch& measure);

/// Tune one kernel with direct (uncached, uncalibrated) measurement — the
/// fuzz oracle's path for generated kernels. The per-kernel seed mixes the
/// kernel's printed IR, so two generated kernels sharing a name still get
/// independent trajectories.
[[nodiscard]] KernelTuneResult tune_kernel_direct(
    const ir::LoopKernel& scalar, const machine::TargetDesc& target,
    const TuneOptions& opts);

/// Tune a set of TSVC kernels through a Session (cache-aware, parallel over
/// kernels, deterministic for every jobs value). Throws on unknown kernels.
[[nodiscard]] TuneReport tune_suite(const eval::Session& session,
                                    const TuneOptions& opts);

/// The pinned 10-kernel TSVC subset shared by the tune tests, the golden
/// corpus, and CI's determinism check: straight-line vectorizable kernels,
/// reductions, dependences that force rejection, and control flow.
[[nodiscard]] const std::vector<std::string>& default_subset();

}  // namespace veccost::tune
