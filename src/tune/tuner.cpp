#include "tune/tuner.hpp"

#include <algorithm>
#include <bit>
#include <map>
#include <optional>
#include <utility>

#include "eval/experiments.hpp"
#include "ir/printer.hpp"
#include "obs/metrics.hpp"
#include "support/error.hpp"
#include "support/hash.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"
#include "tsvc/kernel.hpp"
#include "tune/spec_space.hpp"
#include "xform/analysis_manager.hpp"
#include "xform/pipeline.hpp"

namespace veccost::tune {

namespace {

/// Salt mixed into the ε-greedy draw so it never collides with the mutation
/// streams (which mix (round, member, attempt) instead).
constexpr std::uint64_t kEpsilonSalt = 0x657073696c6f6eull;  // "epsilon"

std::uint64_t mix2(std::uint64_t a, std::uint64_t b) {
  support::ContentHasher h;
  h.mix(a);
  h.mix(b);
  return h.value();
}

std::uint64_t mix3(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  support::ContentHasher h;
  h.mix(a);
  h.mix(b);
  h.mix(c);
  return h.value();
}

/// Everything the search knows about one lattice point it has touched.
struct Candidate {
  SpecPoint point;
  std::string spec;
  double surrogate = 0;
  bool scored_ok = false;
  std::string reject_reason;
  bool measured = false;
  eval::SpecMeasurement m;
};

/// (surrogate desc, spec asc) — the promotion ranking.
bool by_surrogate(const Candidate* a, const Candidate* b) {
  if (a->surrogate != b->surrogate) return a->surrogate > b->surrogate;
  return a->spec < b->spec;
}

/// (measured speedup desc, spec asc) — the beam ranking.
bool by_speedup(const Candidate* a, const Candidate* b) {
  if (a->m.speedup != b->m.speedup) return a->m.speedup > b->m.speedup;
  return a->spec < b->spec;
}

}  // namespace

KernelTuneResult tune_kernel(const ir::LoopKernel& scalar,
                             const machine::TargetDesc& target,
                             const TuneOptions& opts,
                             const Surrogate& surrogate,
                             const MeasureBatch& measure) {
  VECCOST_SPAN("tune.kernel_ns");
  VECCOST_COUNTER_ADD("tune.kernels", 1);

  KernelTuneResult out;
  out.kernel = scalar.name;
  const std::uint64_t kernel_seed = mix2(opts.seed, hash_string(scalar.name));

  xform::AnalysisManager analyses;
  const analysis::Legality& legality = analyses.legality(scalar);
  const SpecSpace space(scalar, target, legality);
  const Surrogate::KernelContext ctx = surrogate.context(scalar, analyses);

  for (const SpecPoint& p : space.exhaustive_llv())
    out.exhaustive_specs.push_back(p.to_spec());

  std::map<SpecPoint, Candidate> cands;

  // Score one point (idempotent): run its pipeline through the kernel's
  // shared AnalysisManager and ask the surrogate. Failures are recorded,
  // never retried.
  const auto score_point = [&](const SpecPoint& p) {
    auto [it, inserted] = cands.try_emplace(p);
    Candidate& c = it->second;
    if (!inserted) return;
    c.point = p;
    c.spec = p.to_spec();
    const xform::Pipeline pipe = xform::Pipeline::parse(c.spec);
    if (!pipe.valid()) {
      c.reject_reason = pipe.error();
      ++out.rejected;
      return;
    }
    const xform::PipelineResult r = pipe.run(scalar, target, analyses);
    if (!r.ok) {
      c.reject_reason = r.failed_pass + ": " + r.reason;
      ++out.rejected;
      return;
    }
    c.scored_ok = true;
    c.surrogate = surrogate.score(ctx, scalar, r.state);
    ++out.scored;
  };

  // The current beam: best measured candidates first (ground truth beats
  // the surrogate), unmeasured scored candidates as filler.
  const auto beam_points = [&]() {
    std::vector<const Candidate*> done, pending;
    for (const auto& [p, c] : cands) {
      if (c.measured && c.m.ok)
        done.push_back(&c);
      else if (c.scored_ok && !c.measured)
        pending.push_back(&c);
    }
    std::sort(done.begin(), done.end(), by_speedup);
    std::sort(pending.begin(), pending.end(), by_surrogate);
    std::vector<SpecPoint> pts;
    for (const Candidate* c : done)
      if (pts.size() < static_cast<std::size_t>(opts.beam_width))
        pts.push_back(c->point);
    for (const Candidate* c : pending)
      if (pts.size() < static_cast<std::size_t>(opts.beam_width))
        pts.push_back(c->point);
    return pts;
  };

  // Score the entire lattice up front — this is what the surrogate is for:
  // candidate evaluation costs one pipeline run and one model query, so the
  // whole (small) grid is scored and only the beam ever pays for ground
  // truth. Ground-truth measurements are the budget the prune rate tracks.
  for (const SpecPoint& p : space.all_points()) score_point(p);

  const SpecPoint natural_llv{0, false, 0};
  for (int round = 0; round <= opts.rounds; ++round) {
    // The promotion pool: in round 0 the whole scored lattice; in later
    // rounds the mutation neighborhood of the current beam — the search
    // walks outward from what ground truth says is best, not down the
    // surrogate's global ranking (which round 0 already exploited).
    std::vector<Candidate*> pool;
    for (auto& [p, c] : cands)
      if (c.scored_ok && !c.measured) pool.push_back(&c);
    std::sort(pool.begin(), pool.end(), by_surrogate);

    std::vector<Candidate*> frontier;
    if (round == 0) {
      frontier = pool;
    } else {
      const std::vector<SpecPoint> beam = beam_points();
      std::vector<SpecPoint> neighbours;
      for (std::size_t i = 0; i < beam.size(); ++i)
        for (int m = 0; m < opts.mutations; ++m) {
          const std::uint64_t step =
              mix3(static_cast<std::uint64_t>(round), i,
                   static_cast<std::uint64_t>(m));
          if (const auto q = space.mutate(beam[i], kernel_seed, step)) {
            score_point(*q);  // no-op when the lattice already covered it
            neighbours.push_back(*q);
          }
        }
      for (Candidate* c : pool)
        if (std::find(neighbours.begin(), neighbours.end(), c->point) !=
            neighbours.end())
          frontier.push_back(c);
    }
    std::vector<Candidate*> promote(
        frontier.begin(),
        frontier.begin() + std::min<std::size_t>(
                               frontier.size(),
                               static_cast<std::size_t>(opts.beam_width)));

    // ...plus the natural `llv` point in round 0 (the regret anchor: the
    // default regime must always have ground truth)...
    if (round == 0) {
      if (const auto it = cands.find(natural_llv);
          it != cands.end() && it->second.scored_ok &&
          !it->second.measured &&
          std::find(promote.begin(), promote.end(), &it->second) ==
              promote.end())
        promote.push_back(&it->second);
    }

    // ...plus an ε-greedy random extra so systematic surrogate bias cannot
    // hide a whole region. The draw is pure in (seed, kernel, round).
    {
      Rng rng(mix3(kernel_seed, kEpsilonSalt,
                   static_cast<std::uint64_t>(round)));
      if (rng.next_double() < opts.epsilon) {
        std::vector<Candidate*> rest;
        for (Candidate* c : pool)
          if (std::find(promote.begin(), promote.end(), c) == promote.end())
            rest.push_back(c);
        if (!rest.empty()) promote.push_back(rest[rng.next_below(rest.size())]);
      }
    }

    if (promote.empty()) continue;

    // Batch order = spec order: the measurement request sequence (and so
    // the cache append order on a cold run) never depends on ranking ties.
    std::sort(promote.begin(), promote.end(),
              [](const Candidate* a, const Candidate* b) {
                return a->spec < b->spec;
              });
    std::vector<std::string> specs;
    specs.reserve(promote.size());
    for (const Candidate* c : promote) specs.push_back(c->spec);
    const eval::SpecBatchResult batch = measure(scalar.name, specs);
    out.cache_hits += batch.cache_hits;
    out.cache_misses += batch.cache_misses;
    for (std::size_t i = 0; i < promote.size(); ++i) {
      promote[i]->measured = true;
      promote[i]->m = batch.results[i];
      ++out.measured;
    }
  }

  // Verdict: best measured candidate by (speedup desc, spec asc).
  const Candidate* best = nullptr;
  for (const auto& [p, c] : cands) {
    if (!c.measured || !c.m.ok) continue;
    if (best == nullptr || by_speedup(&c, best)) best = &c;
    if (out.scalar_cycles == 0) out.scalar_cycles = c.m.scalar_cycles;
  }
  if (best != nullptr) {
    out.ok = true;
    out.best_spec = best->spec;
    out.best_speedup = best->m.speedup;
    out.best_cycles = best->m.cycles;
    out.best_vf = best->m.vf;
    out.scalar_cycles = best->m.scalar_cycles;
  }

  // Trace (spec order) + digest over the whole trajectory.
  for (const auto& [p, c] : cands) {
    SpecOutcome o;
    o.spec = c.spec;
    o.surrogate = c.surrogate;
    o.scored_ok = c.scored_ok;
    o.reject_reason = c.reject_reason;
    o.measured = c.measured;
    if (c.measured) {
      o.speedup = c.m.speedup;
      o.cycles = c.m.cycles;
      o.vf = c.m.vf;
    }
    out.trace.push_back(std::move(o));
  }
  std::sort(out.trace.begin(), out.trace.end(),
            [](const SpecOutcome& a, const SpecOutcome& b) {
              return a.spec < b.spec;
            });

  support::Fnv1a f;
  f.add(out.kernel);
  for (const SpecOutcome& t : out.trace) {
    f.add(t.spec);
    f.add_u64(std::bit_cast<std::uint64_t>(t.surrogate));
    f.add_u64(static_cast<std::uint64_t>(t.scored_ok));
    f.add_u64(static_cast<std::uint64_t>(t.measured));
    f.add_u64(std::bit_cast<std::uint64_t>(t.speedup));
  }
  f.add(out.best_spec);
  f.add_u64(std::bit_cast<std::uint64_t>(out.best_speedup));
  out.digest = f.value();
  return out;
}

KernelTuneResult tune_kernel_direct(const ir::LoopKernel& scalar,
                                    const machine::TargetDesc& target,
                                    const TuneOptions& opts) {
  TuneOptions local = opts;
  // Generated kernels may share a name; the printed IR is the identity.
  local.seed = mix2(local.seed, hash_string(ir::print(scalar)));
  const Surrogate surrogate(target);
  xform::AnalysisManager analyses;
  const MeasureBatch measure = [&](const std::string&,
                                   const std::vector<std::string>& specs) {
    eval::SpecBatchResult batch;
    batch.results.reserve(specs.size());
    for (const std::string& s : specs) {
      const xform::Pipeline pipe = xform::Pipeline::parse(s);
      batch.results.push_back(
          eval::measure_spec(scalar, target, local.noise, pipe, analyses));
      ++batch.cache_misses;
    }
    return batch;
  };
  return tune_kernel(scalar, target, local, surrogate, measure);
}

TuneReport tune_suite(const eval::Session& session, const TuneOptions& opts) {
  VECCOST_SPAN("tune.suite_ns");
  TuneReport report;
  report.target_name = session.target().name;
  report.seed = opts.seed;

  std::vector<std::string> names = opts.kernels;
  if (names.empty())
    for (const auto& info : tsvc::suite()) names.push_back(info.name);
  for (const std::string& name : names)
    if (tsvc::find_kernel(name) == nullptr)
      throw Error("tune: unknown kernel '" + name + "'");

  // Calibrate the surrogate with a model fitted on the measured suite —
  // the session cache amortizes the suite measurement across runs.
  std::optional<Surrogate> surrogate;
  if (opts.fit_surrogate) {
    eval::SuiteRequest req;
    req.noise = opts.noise;
    const eval::SuiteResult measured = session.measure(req);
    const eval::FitExperiment fit = eval::experiment_fit_speedup(
        measured.suite, model::Fitter::NNLS, analysis::FeatureSet::Rated);
    surrogate.emplace(session.target(), fit.model);
  } else {
    surrogate.emplace(session.target());
  }
  report.calibrated = surrogate->calibrated();

  const MeasureBatch measure = [&session, noise = opts.noise](
                                   const std::string& kernel,
                                   const std::vector<std::string>& specs) {
    std::vector<eval::SpecRequest> reqs;
    reqs.reserve(specs.size());
    for (const std::string& s : specs) reqs.push_back({kernel, s});
    return session.measure_specs(reqs, noise);
  };

  report.kernels = parallel_map(
      names.size(),
      [&](std::size_t i) {
        const tsvc::KernelInfo* info = tsvc::find_kernel(names[i]);
        return tune_kernel(info->build(), session.target(), opts, *surrogate,
                           measure);
      },
      session.options().jobs);

  for (const KernelTuneResult& r : report.kernels) {
    report.scored += r.scored;
    report.measured += r.measured;
    report.rejected += r.rejected;
    report.cache_hits += r.cache_hits;
    report.cache_misses += r.cache_misses;
  }

  if (opts.compute_regret) {
    VECCOST_SPAN("tune.regret_ns");
    // One batched sweep over every kernel's exhaustive llv grid; the batch
    // is deduplicated against the search's measurements by the spec cache.
    std::vector<eval::SpecRequest> sweep;
    for (const KernelTuneResult& r : report.kernels)
      for (const std::string& s : r.exhaustive_specs)
        sweep.push_back({r.kernel, s});
    const eval::SpecBatchResult batch = session.measure_specs(sweep, opts.noise);
    report.cache_hits += batch.cache_hits;
    report.cache_misses += batch.cache_misses;
    report.regret_measurements = batch.cache_hits + batch.cache_misses;

    std::size_t pos = 0;
    double sum = 0, worst = 0;
    std::size_t count = 0;
    for (KernelTuneResult& r : report.kernels) {
      double best = 0;
      for (std::size_t i = 0; i < r.exhaustive_specs.size(); ++i) {
        const eval::SpecMeasurement& m = batch.results[pos++];
        if (m.ok) best = std::max(best, m.speedup);
      }
      r.best_exhaustive = best;
      if (r.ok && best > 0) {
        r.regret = std::max(0.0, 1.0 - r.best_speedup / best);
        sum += r.regret;
        worst = std::max(worst, r.regret);
        ++count;
      }
    }
    report.mean_regret = count == 0 ? 0.0 : sum / static_cast<double>(count);
    report.max_regret = worst;
    report.regret_kernels = count;
  }

  report.surrogate_queries = surrogate->queries();

  // The suite digest covers the search trajectory only (not the regret
  // phase), so warm/cold cache and --regret on/off agree byte for byte.
  support::Fnv1a f;
  f.add(report.target_name);
  f.add_u64(report.seed);
  for (const KernelTuneResult& r : report.kernels) {
    f.add(r.kernel);
    f.add_u64(r.digest);
  }
  report.digest = f.value();
  return report;
}

const std::vector<std::string>& default_subset() {
  // Pinned: straight-line vectorizable (s000, s1112, s452), strided store
  // (s1111), loop-carried dependences that reject (s111, s113), control
  // flow (s271), and the reduction family (s311 sum, s313 dot, s314 max).
  static const std::vector<std::string> kSubset = {
      "s000", "s111", "s1111", "s1112", "s113",
      "s271", "s311", "s313",  "s314",  "s452"};
  return kSubset;
}

}  // namespace veccost::tune
