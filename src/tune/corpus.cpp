#include "tune/corpus.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "support/csv.hpp"
#include "support/error.hpp"

namespace veccost::tune {

namespace {

std::string hex_double(double v) {
  std::ostringstream os;
  os << std::hexfloat << v;
  return os.str();
}

}  // namespace

std::string digest_hex(std::uint64_t digest) {
  static const char* kDigits = "0123456789abcdef";
  std::string s(16, '0');
  for (int i = 15; i >= 0; --i) {
    s[i] = kDigits[digest & 0xf];
    digest >>= 4;
  }
  return s;
}

std::string corpus_csv(const TuneReport& report) {
  std::ostringstream os;
  CsvWriter writer(os);
  os << kCorpusHeader << '\n';
  for (const KernelTuneResult& r : report.kernels)
    writer.write_row({r.kernel, r.best_spec, std::to_string(r.best_vf),
                      hex_double(r.scalar_cycles), hex_double(r.best_cycles),
                      hex_double(r.best_speedup), std::to_string(r.scored),
                      std::to_string(r.measured)});
  return os.str();
}

void write_corpus(const std::string& path, const TuneReport& report) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw Error("tune: cannot write corpus file '" + path + "'");
  out << corpus_csv(report);
  if (!out) throw Error("tune: write failed for corpus file '" + path + "'");
}

}  // namespace veccost::tune
