#include "tune/spec_space.hpp"

#include <algorithm>

#include "support/hash.hpp"
#include "support/rng.hpp"
#include "xform/registry.hpp"

namespace veccost::tune {

std::string SpecPoint::to_spec() const {
  std::string spec;
  const auto append = [&](const std::string& pass) {
    if (!spec.empty()) spec += ',';
    spec += pass;
  };
  const auto append_widen = [&](const char* base, int p) {
    if (p == 0)
      append(base);
    else if (p == xform::kVLParam)
      append(std::string(base) + "<vl>");
    else
      append(std::string(base) + "<" + std::to_string(p) + ">");
  };
  if (interchange != kNoInterchange)
    append("interchange<" + std::to_string(interchange) + "," +
           std::to_string(interchange + 1) + ">");
  if (unrolljam != 0) append("unrolljam<" + std::to_string(unrolljam) + ">");
  if (unroll != 0) append("unroll<" + std::to_string(unroll) + ">");
  if (slp_reroll) {
    append("slp");
    append("reroll");
  }
  if (llv != kNoLlv) append_widen("llv", llv);
  if (ollv != kNoLlv) append_widen("ollv", ollv);
  return spec;
}

SpecSpace::SpecSpace(const ir::LoopKernel& scalar,
                     const machine::TargetDesc& target,
                     const analysis::Legality& legality) {
  unrolls_.push_back(0);
  llvs_.push_back(kNoLlv);
  interchanges_.push_back(kNoInterchange);
  unrolljams_.push_back(0);
  ollvs_.push_back(kNoLlv);
  const auto enumerate = [&](const char* base, std::vector<int>& axis) {
    if (const xform::PassInfo* info = xform::find_pass_info(base))
      for (const int p :
           xform::enumerate_pass_params(*info, scalar, target, legality))
        axis.push_back(p);
  };
  enumerate("unroll", unrolls_);
  enumerate("llv", llvs_);
  // The nest axes enumerate empty below 3-deep (registry gating), keeping
  // classic kernels on the historical lattice and mutation stream.
  enumerate("interchange", interchanges_);
  enumerate("unrolljam", unrolljams_);
  enumerate("ollv", ollvs_);
  if (interchanges_.size() > 1 || unrolljams_.size() > 1 || ollvs_.size() > 1)
    mutation_axes_ = 6;

  // Seeds, in a fixed order: the llv variants (the sweep every regime
  // comparison starts from), then the smallest unroll alone, then
  // unroll+slp+reroll, then one seed per nest-restructuring axis.
  for (std::size_t i = 1; i < llvs_.size(); ++i)
    seeds_.push_back(SpecPoint{0, false, llvs_[i]});
  if (unrolls_.size() > 1) {
    seeds_.push_back(SpecPoint{unrolls_[1], false, kNoLlv});
    seeds_.push_back(SpecPoint{unrolls_[1], true, kNoLlv});
  }
  if (interchanges_.size() > 1) {
    seeds_.push_back(SpecPoint{0, false, kNoLlv, interchanges_[1]});
    if (llvs_.size() > 1)
      seeds_.push_back(SpecPoint{0, false, llvs_[1], interchanges_[1]});
  }
  if (unrolljams_.size() > 1)
    seeds_.push_back(
        SpecPoint{0, false, kNoLlv, kNoInterchange, unrolljams_[1]});
  if (ollvs_.size() > 1)
    seeds_.push_back(
        SpecPoint{0, false, kNoLlv, kNoInterchange, 0, ollvs_[1]});
}

std::vector<SpecPoint> SpecSpace::all_points() const {
  std::vector<SpecPoint> out = seeds_;
  for (const int ic : interchanges_)
    for (const int uj : unrolljams_)
      for (const int u : unrolls_)
        for (const int slp : {0, 1})
          for (const int l : llvs_)
            for (const int ol : ollvs_) {
              const SpecPoint p{u, slp != 0, l, ic, uj, ol};
              if (p.empty() || !legal(p)) continue;
              if (std::find(out.begin(), out.end(), p) == out.end())
                out.push_back(p);
            }
  return out;
}

std::vector<SpecPoint> SpecSpace::exhaustive_llv() const {
  std::vector<SpecPoint> out;
  for (const int l : llvs_) {
    if (l == kNoLlv || l == xform::kVLParam) continue;
    out.push_back(SpecPoint{0, false, l});
  }
  return out;
}

bool SpecSpace::legal(const SpecPoint& p) const {
  if (p.empty()) return false;
  if (p.llv != kNoLlv && p.ollv != kNoLlv) return false;  // both widen
  const auto has = [](const std::vector<int>& axis, int v) {
    return std::find(axis.begin(), axis.end(), v) != axis.end();
  };
  return has(unrolls_, p.unroll) && has(llvs_, p.llv) &&
         has(interchanges_, p.interchange) && has(unrolljams_, p.unrolljam) &&
         has(ollvs_, p.ollv);
}

std::optional<SpecPoint> SpecSpace::mutate(const SpecPoint& p,
                                           std::uint64_t seed,
                                           std::uint64_t step) const {
  support::ContentHasher h;
  h.mix(seed);
  h.mix(step);
  Rng rng(h.value());
  // Up to a handful of deterministic draws: pick an axis, step it to a
  // different legal value, reject empty/illegal results and retry.
  for (int attempt = 0; attempt < 8; ++attempt) {
    SpecPoint q = p;
    switch (rng.next_below(mutation_axes_)) {
      case 0: {  // llv axis
        if (llvs_.size() < 2) break;
        q.llv = llvs_[rng.next_below(llvs_.size())];
        break;
      }
      case 1: {  // unroll axis
        if (unrolls_.size() < 2) break;
        q.unroll = unrolls_[rng.next_below(unrolls_.size())];
        break;
      }
      case 2:
        q.slp_reroll = !q.slp_reroll;
        break;
      case 3: {  // interchange axis (deep nests only)
        if (interchanges_.size() < 2) break;
        q.interchange = interchanges_[rng.next_below(interchanges_.size())];
        break;
      }
      case 4: {  // unrolljam axis (deep nests only)
        if (unrolljams_.size() < 2) break;
        q.unrolljam = unrolljams_[rng.next_below(unrolljams_.size())];
        break;
      }
      default: {  // ollv axis (deep nests only); displaces llv
        if (ollvs_.size() < 2) break;
        q.ollv = ollvs_[rng.next_below(ollvs_.size())];
        if (q.ollv != kNoLlv) q.llv = kNoLlv;
        break;
      }
    }
    if (q != p && legal(q)) return q;
  }
  return std::nullopt;
}

}  // namespace veccost::tune
