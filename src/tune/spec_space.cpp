#include "tune/spec_space.hpp"

#include <algorithm>

#include "support/hash.hpp"
#include "support/rng.hpp"
#include "xform/registry.hpp"

namespace veccost::tune {

std::string SpecPoint::to_spec() const {
  std::string spec;
  const auto append = [&](const std::string& pass) {
    if (!spec.empty()) spec += ',';
    spec += pass;
  };
  if (unroll != 0) append("unroll<" + std::to_string(unroll) + ">");
  if (slp_reroll) {
    append("slp");
    append("reroll");
  }
  if (llv != kNoLlv) {
    if (llv == 0)
      append("llv");
    else if (llv == xform::kVLParam)
      append("llv<vl>");
    else
      append("llv<" + std::to_string(llv) + ">");
  }
  return spec;
}

SpecSpace::SpecSpace(const ir::LoopKernel& scalar,
                     const machine::TargetDesc& target,
                     const analysis::Legality& legality) {
  unrolls_.push_back(0);
  llvs_.push_back(kNoLlv);
  if (const xform::PassInfo* unroll = xform::find_pass_info("unroll")) {
    for (const int f :
         xform::enumerate_pass_params(*unroll, scalar, target, legality))
      unrolls_.push_back(f);
  }
  if (const xform::PassInfo* llv = xform::find_pass_info("llv")) {
    for (const int p :
         xform::enumerate_pass_params(*llv, scalar, target, legality))
      llvs_.push_back(p);
  }

  // Seeds, in a fixed order: the llv variants (the sweep every regime
  // comparison starts from), then the smallest unroll alone, then
  // unroll+slp+reroll.
  for (std::size_t i = 1; i < llvs_.size(); ++i)
    seeds_.push_back(SpecPoint{0, false, llvs_[i]});
  if (unrolls_.size() > 1) {
    seeds_.push_back(SpecPoint{unrolls_[1], false, kNoLlv});
    seeds_.push_back(SpecPoint{unrolls_[1], true, kNoLlv});
  }
}

std::vector<SpecPoint> SpecSpace::all_points() const {
  std::vector<SpecPoint> out = seeds_;
  for (const int u : unrolls_)
    for (const int slp : {0, 1})
      for (const int l : llvs_) {
        const SpecPoint p{u, slp != 0, l};
        if (p.empty()) continue;
        if (std::find(out.begin(), out.end(), p) == out.end()) out.push_back(p);
      }
  return out;
}

std::vector<SpecPoint> SpecSpace::exhaustive_llv() const {
  std::vector<SpecPoint> out;
  for (const int l : llvs_) {
    if (l == kNoLlv || l == xform::kVLParam) continue;
    out.push_back(SpecPoint{0, false, l});
  }
  return out;
}

bool SpecSpace::legal(const SpecPoint& p) const {
  if (p.empty()) return false;
  return std::find(unrolls_.begin(), unrolls_.end(), p.unroll) !=
             unrolls_.end() &&
         std::find(llvs_.begin(), llvs_.end(), p.llv) != llvs_.end();
}

std::optional<SpecPoint> SpecSpace::mutate(const SpecPoint& p,
                                           std::uint64_t seed,
                                           std::uint64_t step) const {
  support::ContentHasher h;
  h.mix(seed);
  h.mix(step);
  Rng rng(h.value());
  // Up to a handful of deterministic draws: pick an axis, step it to a
  // different legal value, reject empty/illegal results and retry.
  for (int attempt = 0; attempt < 8; ++attempt) {
    SpecPoint q = p;
    switch (rng.next_below(3)) {
      case 0: {  // llv axis
        if (llvs_.size() < 2) break;
        q.llv = llvs_[rng.next_below(llvs_.size())];
        break;
      }
      case 1: {  // unroll axis
        if (unrolls_.size() < 2) break;
        q.unroll = unrolls_[rng.next_below(unrolls_.size())];
        break;
      }
      default:
        q.slp_reroll = !q.slp_reroll;
        break;
    }
    if (q != p && legal(q)) return q;
  }
  return std::nullopt;
}

}  // namespace veccost::tune
