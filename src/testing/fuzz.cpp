#include "testing/fuzz.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string_view>
#include <utility>

#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "obs/metrics.hpp"
#include "support/error.hpp"
#include "support/hash.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"
#include "testing/shrinker.hpp"

namespace veccost::testing {

namespace {

namespace fs = std::filesystem;

// The campaign digest is an order-sensitive FNV-1a (shared helper; the byte
// semantics are a wire format CI compares across runs).
using Digest = support::Fnv1a;

/// What one campaign index contributes to the merged report and digest.
struct IterationOutcome {
  std::uint64_t seed = 0;
  std::string kernel_text;
  std::string kernel_name;
  OracleVerdict verdict;
};

std::string sanitize_filename(std::string name) {
  for (char& c : name)
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '-' && c != '_')
      c = '_';
  return name;
}

/// Shrink one failure (when asked) and write its .vir reproducer (when
/// asked). The predicate is simply "the oracle still reports a divergence".
CampaignFailure make_failure(const machine::TargetDesc& target,
                             const CampaignOptions& opts, std::uint64_t seed,
                             std::string source, const ir::LoopKernel& kernel,
                             OracleVerdict verdict) {
  CampaignFailure failure;
  failure.seed = seed;
  failure.kernel_name = kernel.name;
  failure.source = std::move(source);
  failure.divergences = std::move(verdict.divergences);
  failure.reproducer = kernel;

  if (opts.shrink) {
    const DifferentialOracle oracle(target, opts.oracle);
    const Shrinker shrinker;
    ShrinkResult shrunk = shrinker.shrink(
        kernel, [&](const ir::LoopKernel& k) { return !oracle.check(k).ok(); });
    failure.reproducer = std::move(shrunk.kernel);
  }

  if (!opts.corpus_out.empty()) {
    fs::create_directories(opts.corpus_out);
    const fs::path path = fs::path(opts.corpus_out) /
                          (sanitize_filename(failure.reproducer.name) + ".vir");
    std::ofstream out(path);
    VECCOST_ASSERT(out.good(), "cannot write reproducer " + path.string());
    out << ir::print(failure.reproducer);
    failure.reproducer_path = path.string();
  }
  return failure;
}

}  // namespace

std::uint64_t iteration_seed(std::uint64_t seed, std::int64_t i) {
  return SplitMix64(seed + 0x9e3779b97f4a7c15ull *
                               static_cast<std::uint64_t>(i))
      .next();
}

std::string CampaignReport::to_string() const {
  std::ostringstream out;
  out << "fuzz: " << corpus_replayed << " corpus replays, " << iterations
      << " generated kernels, " << configs_run << " configs ("
      << configs_skipped << " skipped), " << failures.size()
      << " failures, digest " << std::hex << digest << std::dec;
  for (const CampaignFailure& f : failures) {
    out << "\n  " << f.kernel_name << " [" << f.source << "]";
    for (const Divergence& d : f.divergences)
      out << "\n    [" << d.config << "] " << d.detail;
    if (!f.reproducer_path.empty())
      out << "\n    reproducer: " << f.reproducer_path;
  }
  return out.str();
}

CampaignReport run_campaign(const machine::TargetDesc& target,
                            const CampaignOptions& opts) {
  VECCOST_SPAN("fuzz.campaign");
  CampaignReport report;
  Digest digest;
  const DifferentialOracle oracle(target, opts.oracle);

  // Corpus replay first: reproducers run at their own default_n (they were
  // shrunk at it), so the replay oracle drops the campaign's n override.
  if (!opts.corpus_dir.empty() && fs::is_directory(opts.corpus_dir)) {
    OracleOptions replay_opts = opts.oracle;
    replay_opts.n = 0;
    const DifferentialOracle replay_oracle(target, replay_opts);
    std::vector<fs::path> files;
    for (const fs::directory_entry& entry :
         fs::directory_iterator(opts.corpus_dir))
      if (entry.path().extension() == ".vir") files.push_back(entry.path());
    std::sort(files.begin(), files.end());
    for (const fs::path& file : files) {
      std::ifstream in(file);
      VECCOST_ASSERT(in.good(), "cannot read corpus file " + file.string());
      std::ostringstream text;
      text << in.rdbuf();
      const ir::LoopKernel kernel = ir::parse_kernel(text.str());
      OracleVerdict verdict = replay_oracle.check(kernel);
      ++report.corpus_replayed;
      VECCOST_COUNTER_ADD("fuzz.corpus.replayed", 1);
      report.configs_run += verdict.configs_run;
      report.configs_skipped += verdict.configs_skipped;
      digest.add(file.filename().string());
      digest.add_u64(verdict.divergences.size());
      if (!verdict.ok()) {
        // Checked-in reproducers are already minimal: report, don't shrink,
        // and never overwrite the corpus from a replay.
        CampaignOptions replay_report = opts;
        replay_report.shrink = false;
        replay_report.corpus_out.clear();
        report.failures.push_back(make_failure(target, replay_report, 0,
                                               file.string(), kernel,
                                               std::move(verdict)));
      }
    }
  }

  // Generated sweep: index-keyed seeds + index-ordered merge keep the digest
  // (and everything else) bit-identical across jobs values.
  const std::vector<IterationOutcome> outcomes = parallel_map(
      static_cast<std::size_t>(opts.iters),
      [&](std::size_t i) {
        const std::uint64_t seed =
            iteration_seed(opts.seed, static_cast<std::int64_t>(i));
        const KernelGenerator generator(opts.generator);
        IterationOutcome outcome;
        outcome.seed = seed;
        ir::LoopKernel kernel = generator.generate(seed);
        outcome.kernel_text = ir::print(kernel);
        outcome.kernel_name = kernel.name;
        outcome.verdict = oracle.check(kernel);
        VECCOST_COUNTER_ADD("fuzz.campaign.iterations", 1);
        return outcome;
      },
      opts.jobs);

  for (const IterationOutcome& outcome : outcomes) {
    ++report.iterations;
    report.configs_run += outcome.verdict.configs_run;
    report.configs_skipped += outcome.verdict.configs_skipped;
    digest.add(outcome.kernel_text);
    digest.add_u64(outcome.verdict.configs_run);
    digest.add_u64(outcome.verdict.configs_skipped);
    for (const Divergence& d : outcome.verdict.divergences) {
      digest.add(d.config);
      digest.add(d.detail);
    }
    if (!outcome.verdict.ok()) {
      VECCOST_COUNTER_ADD("fuzz.campaign.failures", 1);
      const KernelGenerator generator(opts.generator);
      report.failures.push_back(
          make_failure(target, opts, outcome.seed, "generated",
                       generator.generate(outcome.seed), outcome.verdict));
    }
  }
  report.digest = digest.value();
  return report;
}

}  // namespace veccost::testing
