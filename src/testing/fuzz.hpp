// Differential fuzzing campaign: generator + oracle + shrinker, fanned out
// over the thread pool.
//
// A campaign replays the reproducer corpus first (every checked-in .vir file
// must keep passing — or keep failing loudly — before new kernels are
// tried), then runs `iters` generated kernels through the DifferentialOracle
// in parallel. Results are merged in index order and folded into an FNV-1a
// digest over each kernel's printed IR and its oracle outcome, so two runs
// with the same seed are bit-comparable no matter the --jobs value — the
// fuzz determinism test and the CI smoke stage both lean on this.
//
// Failures are shrunk (serially, after the sweep) and written as
// self-contained .vir reproducers when `corpus_out` is set.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "machine/target.hpp"
#include "testing/differential_oracle.hpp"
#include "testing/kernel_generator.hpp"

namespace veccost::testing {

struct CampaignOptions {
  std::uint64_t seed = 1;    ///< campaign seed; per-iteration seeds derive
  std::int64_t iters = 1000; ///< generated kernels to check
  std::size_t jobs = 0;      ///< 0 = default_parallelism()
  GeneratorOptions generator;
  OracleOptions oracle = odd_default_oracle();
  bool shrink = true;        ///< minimize failures before reporting
  std::string corpus_dir;    ///< replay *.vir from here first ("" = skip)
  std::string corpus_out;    ///< write shrunk reproducers here ("" = don't)

  /// Campaign default oracle: an odd problem size so every VF exercises its
  /// remainder loop.
  [[nodiscard]] static OracleOptions odd_default_oracle() {
    OracleOptions o;
    o.n = 257;
    return o;
  }
};

struct CampaignFailure {
  std::uint64_t seed = 0;       ///< generator seed; 0 for corpus replays
  std::string kernel_name;
  std::string source;           ///< "generated" or the corpus file path
  std::vector<Divergence> divergences;
  ir::LoopKernel reproducer;    ///< shrunk kernel (the original if !shrink)
  std::string reproducer_path;  ///< where it was written ("" if not written)
};

struct CampaignReport {
  std::int64_t iterations = 0;       ///< generated kernels checked
  std::size_t corpus_replayed = 0;   ///< corpus files replayed
  std::size_t configs_run = 0;
  std::size_t configs_skipped = 0;
  std::vector<CampaignFailure> failures;
  /// Order-sensitive FNV-1a digest of every kernel + outcome (see above).
  std::uint64_t digest = 0;

  [[nodiscard]] bool ok() const { return failures.empty(); }
  [[nodiscard]] std::string to_string() const;
};

/// Run a whole campaign. Throws only on environment problems (unreadable
/// corpus file, unwritable corpus_out); kernel misbehavior is reported in
/// the CampaignReport.
[[nodiscard]] CampaignReport run_campaign(const machine::TargetDesc& target,
                                          const CampaignOptions& opts);

/// The per-iteration generator seed for campaign seed `seed` at index `i` —
/// exposed so tests and the CLI can re-generate a reported kernel.
[[nodiscard]] std::uint64_t iteration_seed(std::uint64_t seed, std::int64_t i);

}  // namespace veccost::testing
