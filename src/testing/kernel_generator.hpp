// Seeded random kernel generator for differential testing.
//
// Produces verifier-valid scalar LoopKernels from a weighted grammar over
// the whole IR surface: every elementwise opcode (float and integer),
// f32/f64 element types, reductions (sum/prod/min/max), first-order
// recurrences, if-converted conditionals (compares, selects, predicated
// loads/stores), gather/indirect subscripts, mixed strides and offsets,
// reversed (n-1-i) accesses, strided/offset/fractional trip counts, rare
// early exits and 2-deep nests — plus, behind allow_deep_nests, 3-deep
// nests with transposed and stencil access patterns.
//
// Two hard guarantees make the output usable as fuzz input:
//  * determinism — the kernel is a pure function of the 64-bit seed (and the
//    options); the fuzz campaign leans on this for reproducibility across
//    --jobs values and for shrinking;
//  * in-bounds by construction — every affine subscript is bounded by
//    scale <= kMaxScale and offset <= kMaxOffset while arrays are declared
//    kMaxScale*n + kArraySlack long, and indirect subscripts only ever come
//    straight from integer-array loads (whose values make_workload keeps in
//    [0, n)), so no execution at any problem size can fault.
//
// Numeric ranges are managed so generated kernels stay finite and
// tolerance-comparable after vectorization: a per-value log2-magnitude
// bound gates which values may feed multiplies, reduction updates are drawn
// from positive bounded values (no catastrophic cancellation under
// reassociation), and division/sqrt only see operands >= 0.5.
#pragma once

#include <cstdint>

#include "ir/loop.hpp"

namespace veccost::testing {

struct GeneratorOptions {
  std::int64_t default_n = 4096;  ///< default_n of the generated kernels

  int min_arrays = 2;  ///< float arrays (declarations, not necessarily used)
  int max_arrays = 4;
  int min_ops = 4;  ///< grammar productions drawn for the body
  int max_ops = 16;

  // Feature gates, so targeted campaigns can carve out sub-grammars.
  bool allow_f64 = true;          ///< 1-in-4 kernels compute in f64
  bool allow_int_ops = true;      ///< i32 compute chains + converts
  bool allow_indirect = true;     ///< gathers (and rare indirect stores)
  bool allow_strides = true;      ///< scales in {0,2,3} and reversed n-1-i
  bool allow_reductions = true;
  bool allow_recurrences = true;
  bool allow_predication = true;  ///< masked loads/stores
  bool allow_break = true;        ///< rare data-dependent early exits
  bool allow_outer = true;        ///< rare 2-deep nests with outer-level terms
  bool allow_trip_shapes = true;  ///< start/step/den/offset variety

  /// 3-deep nests (a second outer level) plus transposed/stencil subscript
  /// patterns. Off by default: every rng draw the deep grammar makes is
  /// gated behind this flag, so legacy seeds generate byte-identical
  /// kernels when it is off.
  bool allow_deep_nests = false;
};

/// Subscript bounds the generator promises (see file comment). Arrays are
/// declared `kMaxScale*n + kArraySlack` elements long.
inline constexpr std::int64_t kMaxScale = 3;
inline constexpr std::int64_t kMaxOffset = 8;
inline constexpr std::int64_t kMaxOuterTrip = 4;
inline constexpr std::int64_t kMaxScaleJ = 2;
inline constexpr std::int64_t kArraySlack =
    kMaxOffset + kMaxScaleJ * (kMaxOuterTrip - 1) + 2;
/// Slack used instead of kArraySlack under allow_deep_nests: two outer
/// levels can each contribute up to kMaxScaleJ * (kMaxOuterTrip - 1).
inline constexpr std::int64_t kDeepArraySlack =
    kMaxOffset + 2 * kMaxScaleJ * (kMaxOuterTrip - 1) + 2;

class KernelGenerator {
 public:
  explicit KernelGenerator(GeneratorOptions opts = {}) : opts_(opts) {}

  /// Generate the kernel for `seed`. Pure: equal seeds (and options) yield
  /// structurally identical kernels, whose ir::print output is bit-equal.
  [[nodiscard]] ir::LoopKernel generate(std::uint64_t seed) const;

  [[nodiscard]] const GeneratorOptions& options() const { return opts_; }

 private:
  GeneratorOptions opts_;
};

}  // namespace veccost::testing
