#include "testing/differential_oracle.hpp"

#include <bit>
#include <cmath>
#include <mutex>
#include <set>
#include <sstream>
#include <utility>

#include "analysis/features.hpp"
#include "analysis/legality.hpp"
#include "costmodel/llvm_model.hpp"
#include "ir/verifier.hpp"
#include "machine/exec_engine.hpp"
#include "machine/executor.hpp"
#include "machine/perf_model.hpp"
#include "obs/metrics.hpp"
#include "tune/tuner.hpp"
#include "vectorizer/loop_vectorizer.hpp"
#include "vectorizer/reroll.hpp"
#include "vectorizer/slp_vectorizer.hpp"
#include "vectorizer/unroll.hpp"
#include "xform/analysis_manager.hpp"
#include "xform/pipeline.hpp"

namespace veccost::testing {

namespace {

/// NaN-proof bitwise equality (double == would declare NaN != NaN and
/// -0.0 == +0.0, both wrong for an engine-identity check).
bool bits_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

/// Compare two executions of (transformed versions of) one kernel. Empty
/// string = equal. Arrays always compare bitwise; live-outs compare bitwise
/// when `live_out_rtol < 0`, else with |got-want| <= rtol * max(1, |want|).
/// `compare_iterations` is off for transforms that change the iteration
/// count (unroll/reroll).
std::string diff_exec(const ir::LoopKernel& kernel,
                      const machine::Workload& wa,
                      const machine::ExecResult& ra,
                      const machine::Workload& wb,
                      const machine::ExecResult& rb, bool compare_iterations,
                      double live_out_rtol) {
  std::ostringstream out;
  if (compare_iterations) {
    if (ra.iterations != rb.iterations)
      out << "iterations " << ra.iterations << " vs " << rb.iterations << "; ";
    if (ra.broke_early != rb.broke_early)
      out << "broke_early " << ra.broke_early << " vs " << rb.broke_early
          << "; ";
  }
  if (wa.arrays.size() != wb.arrays.size()) {
    out << "array count " << wa.arrays.size() << " vs " << wb.arrays.size();
    return out.str();
  }
  for (std::size_t a = 0; a < wa.arrays.size(); ++a) {
    if (wa.arrays[a].size() != wb.arrays[a].size()) {
      out << "array " << kernel.arrays[a].name << " length "
          << wa.arrays[a].size() << " vs " << wb.arrays[a].size() << "; ";
      continue;
    }
    for (std::size_t e = 0; e < wa.arrays[a].size(); ++e) {
      if (!bits_equal(wa.arrays[a][e], wb.arrays[a][e])) {
        out << "array " << kernel.arrays[a].name << "[" << e << "] "
            << wa.arrays[a][e] << " vs " << wb.arrays[a][e] << "; ";
        break;  // first mismatch per array is enough to triage
      }
    }
  }
  if (ra.live_outs.size() != rb.live_outs.size()) {
    out << "live-out count " << ra.live_outs.size() << " vs "
        << rb.live_outs.size();
    return out.str();
  }
  for (std::size_t i = 0; i < ra.live_outs.size(); ++i) {
    const double want = ra.live_outs[i];
    const double got = rb.live_outs[i];
    const bool equal =
        live_out_rtol < 0
            ? bits_equal(want, got)
            : std::isfinite(got) &&
                  std::abs(got - want) <=
                      live_out_rtol * std::max(1.0, std::abs(want));
    if (!equal)
      out << "live-out " << i << " " << want << " vs " << got << "; ";
  }
  return out.str();
}

/// Run one matrix entry: `fn` either returns a detail string (empty = pass)
/// or throws; both failure shapes become a Divergence under `config`.
template <class Fn>
void run_config(OracleVerdict& verdict, const std::string& config, Fn&& fn) {
  ++verdict.configs_run;
  VECCOST_COUNTER_ADD("fuzz.oracle.configs", 1);
  std::string detail;
  try {
    detail = fn();
  } catch (const std::exception& e) {
    detail = std::string("exception: ") + e.what();
  }
  if (!detail.empty()) {
    VECCOST_COUNTER_ADD("fuzz.oracle.divergences", 1);
    verdict.divergences.push_back({config, std::move(detail)});
  }
}

std::string check_finite(const char* what, double v, bool require_positive) {
  if (!std::isfinite(v)) return std::string(what) + " is not finite";
  if (require_positive && v <= 0.0) return std::string(what) + " is <= 0";
  if (!require_positive && v < 0.0) return std::string(what) + " is < 0";
  return {};
}

}  // namespace

std::string OracleVerdict::to_string() const {
  std::ostringstream out;
  out << configs_run << " configs run, " << configs_skipped << " skipped, "
      << divergences.size() << " divergences";
  for (const Divergence& d : divergences)
    out << "\n  [" << d.config << "] " << d.detail;
  return out.str();
}

DifferentialOracle::DifferentialOracle(const machine::TargetDesc& target,
                                       OracleOptions opts)
    : target_(target), opts_(std::move(opts)) {}

OracleVerdict DifferentialOracle::check(const ir::LoopKernel& scalar) const {
  VECCOST_SPAN("fuzz.oracle.check");
  OracleVerdict verdict;

  run_config(verdict, "verify", [&] {
    const ir::VerifyResult r = ir::verify(scalar);
    return r.ok() ? std::string{} : r.to_string();
  });
  if (!verdict.ok()) return verdict;  // nothing below may execute invalid IR

  const std::int64_t n = opts_.n > 0 ? opts_.n : scalar.default_n;
  const machine::Workload init = machine::make_workload(scalar, n);

  // Ground truth for every comparison below: the reference interpreter on
  // the untransformed kernel. If it throws, there is nothing to compare
  // transformed executions against, so those configs are gated on scalar_ok.
  machine::Workload ws = init;
  machine::ExecResult rs;
  bool scalar_ok = false;
  run_config(verdict, "engine:scalar", [&] {
    rs = machine::reference_execute_scalar(scalar, ws);
    scalar_ok = true;
    machine::Workload wl = init;
    const machine::ExecResult rl = machine::lowered_execute_scalar(scalar, wl);
    return diff_exec(scalar, ws, rs, wl, rl, true, -1.0);
  });

  // Dispatch-mode matrix: each mode routes through different machinery
  // (switch loop, computed-goto superops, SoA strips, loop interchange), and
  // all of it must stay bitwise-equal to the reference interpreter.
  if (opts_.check_dispatch_modes && scalar_ok) {
    for (const machine::DispatchKind kind :
         {machine::DispatchKind::Switch, machine::DispatchKind::Threaded,
          machine::DispatchKind::Batch}) {
      run_config(verdict,
                 std::string("dispatch:") + machine::to_string(kind), [&] {
                   machine::Workload wd = init;
                   const machine::ExecResult rd =
                       machine::lowered_execute_scalar(scalar, wd, kind);
                   return diff_exec(scalar, ws, rs, wd, rd, true, -1.0);
                 });
    }
  } else if (!scalar_ok && opts_.check_dispatch_modes) {
    verdict.configs_skipped += 3;
  }

  if (opts_.check_metrics_toggle && scalar_ok) {
    run_config(verdict, "metrics:off", [&] {
      // The enabled flag is process-global; serialize so concurrent fuzz
      // workers cannot observe each other mid-toggle.
      static std::mutex mu;
      const std::lock_guard<std::mutex> lock(mu);
      obs::Registry& reg = obs::Registry::global();
      const bool was = reg.enabled();
      machine::Workload won = init;
      machine::Workload woff = init;
      reg.set_enabled(true);
      const machine::ExecResult ron = machine::lowered_execute_scalar(scalar, won);
      reg.set_enabled(false);
      const machine::ExecResult roff =
          machine::lowered_execute_scalar(scalar, woff);
      reg.set_enabled(was);
      return diff_exec(scalar, won, ron, woff, roff, true, -1.0);
    });
  }

  // Widening matrix: target-natural VF (requested_vf = 0) plus the explicit
  // list, deduplicated by the VF the vectorizer actually chose. The shared
  // AnalysisManager means the sweep runs legality once per kernel — the
  // verdicts (and so the campaign digest) are unchanged.
  xform::AnalysisManager analyses;
  if (scalar_ok) {
    std::set<int> widened;
    std::vector<int> requests = {0};
    requests.insert(requests.end(), opts_.vfs.begin(), opts_.vfs.end());
    for (const int req : requests) {
      vectorizer::LoopVectorizerOptions vopts;
      vopts.requested_vf = req;
      const vectorizer::VectorizedLoop vec = vectorizer::vectorize_legal(
          scalar, target_, vopts, analyses.legality(scalar, vopts.legality));
      // Runtime-check-guarded loops execute their scalar path (the widened
      // kernel is for cost analysis only; see vplan.hpp) — nothing to run.
      if (!vec.ok || vec.runtime_check || !widened.insert(vec.vf).second) {
        ++verdict.configs_skipped;
        continue;
      }
      ir::LoopKernel widened_kernel = vec.kernel;
      if (opts_.fault) (void)opts_.fault(widened_kernel);
      const std::string config = "widen:vf=" + std::to_string(vec.vf);
      run_config(verdict, config, [&] {
        machine::Workload wv = init;
        const machine::ExecResult rv =
            machine::lowered_execute_vectorized(widened_kernel, scalar, wv);
        std::string d = diff_exec(scalar, ws, rs, wv, rv, false,
                                  opts_.reduction_tolerance);
        if (!d.empty()) return "scalar vs widened: " + d;
        // And the two executors must agree bitwise on the widened kernel.
        machine::Workload wr = init;
        const machine::ExecResult rr =
            machine::reference_execute_vectorized(widened_kernel, scalar, wr);
        d = diff_exec(scalar, wr, rr, wv, rv, true, -1.0);
        if (!d.empty()) return "reference vs lowered (widened): " + d;
        if (opts_.check_dispatch_modes) {
          for (const machine::DispatchKind kind :
               {machine::DispatchKind::Switch, machine::DispatchKind::Threaded,
                machine::DispatchKind::Batch}) {
            machine::Workload wk = init;
            const machine::ExecResult rk = machine::lowered_execute_vectorized(
                widened_kernel, scalar, wk, kind);
            d = diff_exec(scalar, wr, rr, wk, rk, true, -1.0);
            if (!d.empty())
              return std::string("reference vs lowered (widened, ") +
                     machine::to_string(kind) + "): " + d;
          }
        }
        return std::string{};
      });
    }
  }

  // Unrolling preserves semantics only on divisible iteration ranges and
  // never applies to loops with breaks; both limits are contract, not bugs.
  // The campaign's n is deliberately odd (remainder loops), so each factor
  // gets its own nearby problem size with a divisible iteration count.
  if (scalar_ok && !scalar.has_break()) {
    for (const int factor : opts_.unroll_factors) {
      std::int64_t nu = 0;
      const std::int64_t scan =
          2 * factor * scalar.trip.step * std::max<std::int64_t>(1, scalar.trip.den);
      for (std::int64_t d = 0; d < scan; ++d) {
        if (n - d > 0 && scalar.trip.iterations(n - d) > 0 &&
            scalar.trip.iterations(n - d) % factor == 0) {
          nu = n - d;
          break;
        }
      }
      const vectorizer::UnrollResult u =
          nu > 0 ? vectorizer::unroll_loop(scalar, factor)
                 : vectorizer::UnrollResult{};
      if (!u.ok) {
        ++verdict.configs_skipped;
        continue;
      }
      run_config(verdict, "unroll:x" + std::to_string(factor), [&] {
        machine::Workload wsu = machine::make_workload(scalar, nu);
        const machine::ExecResult rsu =
            machine::reference_execute_scalar(scalar, wsu);
        machine::Workload wu = machine::make_workload(scalar, nu);
        const machine::ExecResult ru =
            machine::lowered_execute_scalar(u.kernel, wu);
        return diff_exec(scalar, wsu, rsu, wu, ru, false, -1.0);
      });
    }
  } else if (!opts_.unroll_factors.empty()) {
    verdict.configs_skipped += opts_.unroll_factors.size();
  }

  if (scalar_ok) {
    const vectorizer::SlpPlan plan =
        vectorizer::slp_vectorize(scalar, target_, {});
    if (plan.ok && plan.rerollable && plan.unroll == 1) {
      const vectorizer::RerollResult rr = vectorizer::reroll_loop(scalar, plan);
      if (rr.ok) {
        run_config(verdict, "reroll", [&] {
          machine::Workload wr = init;
          const machine::ExecResult rres =
              machine::lowered_execute_scalar(rr.kernel, wr);
          return diff_exec(scalar, ws, rs, wr, rres, false, -1.0);
        });
      } else {
        ++verdict.configs_skipped;
      }
    } else {
      ++verdict.configs_skipped;
    }
  }

  // Optional pipeline configuration (--pipeline): run the requested pass
  // sequence and compare the transformed execution against scalar. Guarded
  // on a non-empty spec so default campaigns keep their historical digest.
  // The special spec "tuned" autotunes the kernel and validates the winner
  // — whatever spec the tuner picked must execute like scalar.
  if (scalar_ok && !opts_.pipeline.empty()) {
    std::string spec = opts_.pipeline;
    const std::string config = "pipeline:" + opts_.pipeline;
    bool resolved = true;
    if (spec == "tuned") {
      const tune::KernelTuneResult tuned =
          tune::tune_kernel_direct(scalar, target_, tune::TuneOptions{});
      if (tuned.ok) {
        spec = tuned.best_spec;
      } else {
        // No candidate survived measurement (e.g. nothing legal): there is
        // no pipeline to validate.
        ++verdict.configs_skipped;
        resolved = false;
      }
    }
    const xform::Pipeline pipe =
        resolved ? xform::Pipeline::parse(spec) : xform::Pipeline();
    if (!resolved) {
      // skip recorded above
    } else if (!pipe.valid()) {
      run_config(verdict, config,
                 [&] { return "invalid spec " + pipe.error(); });
    } else {
      // Unrolling preserves semantics only on divisible, break-free
      // iteration ranges (same contract as the unroll configs above). The
      // guard parses the *resolved* spec — for "tuned" that is the tuner's
      // winner, not the literal option text.
      std::int64_t unroll_product = 1;
      for (const xform::PassSpec& ps : xform::parse_pipeline_spec(spec).passes)
        if (ps.base == "unroll") unroll_product *= ps.param;
      const bool unroll_safe =
          unroll_product == 1 ||
          (!scalar.has_break() && scalar.trip.iterations(n) > 0 &&
           scalar.trip.iterations(n) % unroll_product == 0);
      const xform::PipelineResult xr = pipe.run(scalar, target_, analyses);
      // A pass that legitimately refuses the kernel (or leaves it behind a
      // runtime check, where the widened body must not execute) is a skip.
      if (!unroll_safe || !xr.ok || xr.state.runtime_check) {
        ++verdict.configs_skipped;
      } else {
        const ir::LoopKernel& transformed = xr.state.kernel;
        run_config(verdict, config, [&] {
          machine::Workload wp = init;
          const machine::ExecResult rp =
              transformed.vf > 1
                  ? machine::lowered_execute_vectorized(transformed, scalar, wp)
                  : machine::lowered_execute_scalar(transformed, wp);
          // Unroll/reroll change the iteration count and widening
          // reassociates reductions, so compare arrays bitwise but iteration
          // counts not at all and live-outs under the reduction tolerance.
          std::string d = diff_exec(scalar, ws, rs, wp, rp, false,
                                    opts_.reduction_tolerance);
          if (!d.empty() || transformed.vf <= 1) return d;
          // Widened pipelines (llv<VF>, llv<vl>) additionally pin the two
          // executors to each other bitwise, across every dispatch mode —
          // the predicated whole-loop tail must agree lane for lane.
          machine::Workload wr = init;
          const machine::ExecResult rr =
              machine::reference_execute_vectorized(transformed, scalar, wr);
          d = diff_exec(scalar, wr, rr, wp, rp, true, -1.0);
          if (!d.empty()) return "reference vs lowered (pipeline): " + d;
          if (opts_.check_dispatch_modes) {
            for (const machine::DispatchKind kind :
                 {machine::DispatchKind::Switch,
                  machine::DispatchKind::Threaded,
                  machine::DispatchKind::Batch}) {
              machine::Workload wk = init;
              const machine::ExecResult rk = machine::lowered_execute_vectorized(
                  transformed, scalar, wk, kind);
              d = diff_exec(scalar, wr, rr, wk, rk, true, -1.0);
              if (!d.empty())
                return std::string("reference vs lowered (pipeline, ") +
                       machine::to_string(kind) + "): " + d;
            }
          }
          return std::string{};
        });
      }
    }
  }

  if (opts_.check_models) {
    run_config(verdict, "models", [&] {
      std::ostringstream out;
      const analysis::Legality& legality = analyses.legality(scalar);
      if (!legality.vectorizable && legality.reasons.empty())
        out << "legality rejected the kernel with no reasons; ";
      for (const analysis::FeatureSet set :
           {analysis::FeatureSet::Counts, analysis::FeatureSet::Rated,
            analysis::FeatureSet::Extended}) {
        const std::vector<double>& f = analyses.features(scalar, set);
        if (f.size() != analysis::feature_names(set).size())
          out << "feature vector size mismatch for " << analysis::to_string(set)
              << "; ";
        for (const double v : f)
          if (!std::isfinite(v)) {
            out << "non-finite feature in " << analysis::to_string(set) << "; ";
            break;
          }
      }
      std::string d = check_finite("block_cost",
                                   model::block_cost(scalar, target_), false);
      if (!d.empty()) out << d << "; ";
      d = check_finite("perf estimate",
                       machine::estimate(scalar, target_, n).total_cycles,
                       true);
      if (!d.empty()) out << d << "; ";
      const vectorizer::SlpPlan slp =
          vectorizer::slp_vectorize(scalar, target_, {});
      if (slp.ok) {
        d = check_finite("llvm_predict_slp",
                         model::llvm_predict_slp(scalar, slp, target_), true);
        if (!d.empty()) out << d << "; ";
        d = check_finite("measure_slp_cycles",
                         machine::measure_slp_cycles(scalar, slp, target_, n),
                         true);
        if (!d.empty()) out << d << "; ";
      }
      return out.str();
    });
  }

  return verdict;
}

KernelMutator demo_lowering_fault() {
  return [](ir::LoopKernel& kernel) {
    if (kernel.vf <= 1) return false;
    for (ir::Instruction& inst : kernel.body) {
      if (inst.op == ir::Opcode::Sub) {
        std::swap(inst.operands[0], inst.operands[1]);
        return true;
      }
    }
    return false;
  };
}

}  // namespace veccost::testing
