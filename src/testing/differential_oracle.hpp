// Differential conformance oracle: one kernel, every semantics contract.
//
// The oracle takes a scalar LoopKernel and runs the full matrix of
// configurations whose outputs the pipeline promises agree:
//
//   verify         IR verifier accepts the kernel
//   engine:scalar  reference interpreter vs lowered engine, bitwise
//   dispatch:<kind> reference vs lowered engine pinned to one dispatch mode
//                  (switch / threaded / batch), bitwise — covers the fused
//                  superop schedules, the strip-mined SoA paths and the
//                  loop-interchange path, which only some modes take
//   widen:vf=K     scalar vs widened execution at VF in {2,4,8,16} and the
//                  natural VF (arrays bitwise, reduction live-outs within
//                  tolerance), plus reference vs lowered on the widened
//                  kernel, bitwise
//   unroll:xF      scalar vs unrolled-by-F on divisible iteration ranges
//   reroll         scalar vs re-rolled (when the SLP plan is rerollable)
//   metrics:off    lowered scalar run with the obs registry disabled vs
//                  enabled, bitwise
//   models         legality / features / cost models / perf models return
//                  finite values and never throw
//
// Any mismatch, any exception, and any non-finite model output becomes a
// Divergence naming the configuration. Configurations that do not apply
// (vectorizer rejects, non-divisible unroll, runtime-check-guarded widening
// — whose widened kernels must not be executed) are skipped, not failed.
//
// A KernelMutator hook can corrupt the widened kernel before execution; the
// built-in demo fault stands in for a real lowering bug so the shrinker, the
// fuzz tests and `veccost fuzz --inject-fault` can exercise the failure path
// on a healthy tree.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ir/loop.hpp"
#include "machine/target.hpp"

namespace veccost::testing {

/// Mutates a kernel in place; returns true if it changed anything. Applied
/// to every widened kernel the oracle is about to execute.
using KernelMutator = std::function<bool(ir::LoopKernel&)>;

struct OracleOptions {
  /// Problem size; 0 = the kernel's default_n. Odd sizes exercise remainder
  /// loops at every VF.
  std::int64_t n = 0;
  /// Explicit widening factors to try, besides the target-natural VF.
  std::vector<int> vfs = {2, 4, 8, 16};
  /// Unroll factors to try (skipped when iterations % factor != 0).
  std::vector<int> unroll_factors = {2, 4};
  /// Relative tolerance for reduction live-outs under reassociation
  /// (absolute below 1): |got - want| <= tol * max(1, |want|).
  double reduction_tolerance = 1e-2;
  /// Run the metrics-on vs metrics-off comparison. Toggles the process-wide
  /// obs registry (serialized internally); campaigns that care about counter
  /// exactness can turn it off.
  bool check_metrics_toggle = true;
  /// Run every dispatch mode (switch / threaded / batch) against the
  /// reference interpreter, scalar and widened. The modes promise bit
  /// identity; this is the contract that licenses benchmarking any of them.
  bool check_dispatch_modes = true;
  /// Run the model/analysis totality checks.
  bool check_models = true;
  /// Extra configuration: run this transform pipeline spec
  /// (xform/pipeline.hpp grammar) and compare the transformed execution
  /// against scalar. Empty = skip, which keeps the campaign digest
  /// bit-identical to pre-pipeline campaigns. The special value "tuned"
  /// autotunes the kernel first (tune::tune_kernel_direct) and validates
  /// whatever pipeline the tuner picked — the end-to-end contract that the
  /// tuner only ever emits semantics-preserving specs.
  std::string pipeline;
  /// Fault hook applied to widened kernels before execution (see above).
  KernelMutator fault;
};

/// One observed contract violation.
struct Divergence {
  std::string config;  ///< matrix entry, e.g. "widen:vf=4"
  std::string detail;  ///< what differed / what was thrown
};

struct OracleVerdict {
  std::vector<Divergence> divergences;
  std::size_t configs_run = 0;      ///< configurations actually executed
  std::size_t configs_skipped = 0;  ///< inapplicable (rejected VF, etc.)

  [[nodiscard]] bool ok() const { return divergences.empty(); }
  [[nodiscard]] std::string to_string() const;
};

class DifferentialOracle {
 public:
  explicit DifferentialOracle(const machine::TargetDesc& target,
                              OracleOptions opts = {});

  /// Run the whole matrix over `scalar`. Never throws on kernel
  /// misbehavior — exceptions become divergences.
  [[nodiscard]] OracleVerdict check(const ir::LoopKernel& scalar) const;

  [[nodiscard]] const OracleOptions& options() const { return opts_; }

 private:
  machine::TargetDesc target_;
  OracleOptions opts_;
};

/// The built-in demo fault: swaps the operands of the first Sub in a widened
/// (vf > 1) kernel — the signature of a lowering pass that commutes a
/// non-commutative op. Returns false (kernel untouched) for scalar kernels
/// or bodies with no Sub, so only some generated kernels trigger it, exactly
/// like a real bug.
[[nodiscard]] KernelMutator demo_lowering_fault();

}  // namespace veccost::testing
