// Delta-debugging shrinker for failing kernels.
//
// Given a kernel and a predicate "does this kernel still fail?", the
// shrinker greedily applies semantics-simplifying transforms and keeps every
// candidate that (a) still passes the IR verifier and (b) still fails the
// predicate, looping until a full round changes nothing:
//
//  * drop one store / one live-out (plus everything only it needed);
//  * drop the break; clear one access predicate;
//  * simplify one subscript (indirect -> direct, outer coefficients /
//    n_scale/offset -> 0, scale -> 1);
//  * forward one instruction to a same-typed operand (collapsing expression
//    trees);
//  * flatten the trip count / outer nest (whole nest first, then one
//    outermost level at a time); halve default_n down to min_n.
//
// Dead code left behind by any accepted transform is removed by a mark-sweep
// over operands, predicates, indirect indices and phi updates; unreferenced
// arrays and params are dropped too, so the reproducer that falls out is
// genuinely minimal and prints as a small self-contained .vir file.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "ir/loop.hpp"

namespace veccost::testing {

/// True when the kernel still exhibits the failure being minimized.
/// Exceptions thrown by the predicate count as "does not fail" (a candidate
/// that crashes the predicate itself is not a usable reproducer).
using FailurePredicate = std::function<bool(const ir::LoopKernel&)>;

struct ShrinkOptions {
  int max_rounds = 32;        ///< fixpoint loop bound (each round is O(body))
  std::int64_t min_n = 8;     ///< floor for default_n halving
};

struct ShrinkResult {
  ir::LoopKernel kernel;           ///< smallest still-failing kernel found
  int rounds = 0;                  ///< rounds until fixpoint
  std::size_t candidates_tried = 0;
  std::size_t candidates_accepted = 0;
};

class Shrinker {
 public:
  explicit Shrinker(ShrinkOptions opts = {}) : opts_(opts) {}

  /// Minimize `failing` (which must satisfy `still_fails`) and return the
  /// fixpoint. If `failing` does not satisfy the predicate, it is returned
  /// unchanged.
  [[nodiscard]] ShrinkResult shrink(const ir::LoopKernel& failing,
                                    const FailurePredicate& still_fails) const;

  [[nodiscard]] const ShrinkOptions& options() const { return opts_; }

 private:
  ShrinkOptions opts_;
};

/// Mark-sweep dead-code elimination: drops instructions not reachable from a
/// side effect (stores, breaks) or a live-out, then drops arrays and params
/// nothing references. Exposed for its own unit tests.
[[nodiscard]] ir::LoopKernel remove_dead_code(const ir::LoopKernel& kernel);

}  // namespace veccost::testing
