#include "testing/shrinker.hpp"

#include <algorithm>
#include <optional>
#include <utility>

#include "ir/verifier.hpp"
#include "obs/metrics.hpp"

namespace veccost::testing {

namespace {

using ir::Instruction;
using ir::kNoValue;
using ir::LoopKernel;
using ir::Opcode;
using ir::ValueId;

/// Rebuild the body keeping only instructions with keep[i], remapping every
/// ValueId reference. Returns nullopt when a kept instruction (or phi
/// update) references a dropped value — such a candidate is not well-formed.
/// Live-outs whose value was dropped are silently removed (that is how a
/// live-out is deleted).
std::optional<LoopKernel> filter_body(const LoopKernel& k,
                                      const std::vector<bool>& keep) {
  std::vector<ValueId> remap(k.body.size(), kNoValue);
  ValueId next = 0;
  for (std::size_t i = 0; i < k.body.size(); ++i)
    if (keep[i]) remap[i] = next++;

  const auto map = [&](ValueId id) -> std::optional<ValueId> {
    if (id == kNoValue) return kNoValue;
    if (remap[static_cast<std::size_t>(id)] == kNoValue) return std::nullopt;
    return remap[static_cast<std::size_t>(id)];
  };

  LoopKernel out = k;
  out.body.clear();
  out.body.reserve(static_cast<std::size_t>(next));
  for (std::size_t i = 0; i < k.body.size(); ++i) {
    if (!keep[i]) continue;
    Instruction inst = k.body[i];
    for (ValueId& o : inst.operands) {
      const auto m = map(o);
      if (!m) return std::nullopt;
      o = *m;
    }
    const auto pred = map(inst.predicate);
    const auto ind = map(inst.index.indirect);
    const auto upd = map(inst.phi_update);
    if (!pred || !ind || !upd) return std::nullopt;
    inst.predicate = *pred;
    inst.index.indirect = *ind;
    inst.phi_update = *upd;
    out.body.push_back(inst);
  }

  out.live_outs.clear();
  for (const ValueId lo : k.live_outs)
    if (const auto m = map(lo); m && *m != kNoValue) out.live_outs.push_back(*m);
  return out;
}

/// Drop exactly one instruction (plus its live-out entry, if any). Fails
/// when something else still references it.
std::optional<LoopKernel> erase_instruction(const LoopKernel& k, ValueId id) {
  std::vector<bool> keep(k.body.size(), true);
  keep[static_cast<std::size_t>(id)] = false;
  return filter_body(k, keep);
}

void replace_uses(LoopKernel& k, ValueId from, ValueId to) {
  for (Instruction& inst : k.body) {
    for (ValueId& o : inst.operands)
      if (o == from) o = to;
    if (inst.predicate == from) inst.predicate = to;
    if (inst.index.indirect == from) inst.index.indirect = to;
    if (inst.phi_update == from) inst.phi_update = to;
  }
  for (ValueId& lo : k.live_outs)
    if (lo == from) lo = to;
}

bool has_side_effect(const Instruction& inst) {
  return ir::is_store_op(inst.op) || inst.op == Opcode::Break;
}

}  // namespace

LoopKernel remove_dead_code(const LoopKernel& kernel) {
  std::vector<bool> live(kernel.body.size(), false);
  std::vector<ValueId> worklist;
  const auto mark = [&](ValueId id) {
    if (id == kNoValue || live[static_cast<std::size_t>(id)]) return;
    live[static_cast<std::size_t>(id)] = true;
    worklist.push_back(id);
  };

  for (std::size_t i = 0; i < kernel.body.size(); ++i)
    if (has_side_effect(kernel.body[i])) mark(static_cast<ValueId>(i));
  for (const ValueId lo : kernel.live_outs) mark(lo);

  while (!worklist.empty()) {
    const Instruction& inst =
        kernel.body[static_cast<std::size_t>(worklist.back())];
    worklist.pop_back();
    for (const ValueId o : inst.operands) mark(o);
    mark(inst.predicate);
    mark(inst.index.indirect);
    mark(inst.phi_update);
  }

  // Mark-sweep can only drop references, never dangle them, so filter_body
  // always succeeds here.
  LoopKernel out = *filter_body(kernel, live);

  // Compact arrays nothing touches any more.
  std::vector<int> array_remap(out.arrays.size(), -1);
  for (const Instruction& inst : out.body)
    if (inst.array >= 0) array_remap[static_cast<std::size_t>(inst.array)] = 0;
  int next_array = 0;
  for (std::size_t a = 0; a < out.arrays.size(); ++a)
    if (array_remap[a] == 0) array_remap[a] = next_array++;
  std::vector<ir::ArrayDecl> arrays;
  arrays.reserve(static_cast<std::size_t>(next_array));
  for (std::size_t a = 0; a < out.arrays.size(); ++a)
    if (array_remap[a] >= 0) arrays.push_back(out.arrays[a]);
  out.arrays = std::move(arrays);
  for (Instruction& inst : out.body)
    if (inst.array >= 0)
      inst.array = array_remap[static_cast<std::size_t>(inst.array)];

  // And params likewise (referenced by Param ops and phi initial values).
  std::vector<int> param_remap(out.params.size(), -1);
  for (const Instruction& inst : out.body) {
    if (inst.param_index >= 0)
      param_remap[static_cast<std::size_t>(inst.param_index)] = 0;
    if (inst.phi_init_param >= 0)
      param_remap[static_cast<std::size_t>(inst.phi_init_param)] = 0;
  }
  int next_param = 0;
  for (std::size_t p = 0; p < out.params.size(); ++p)
    if (param_remap[p] == 0) param_remap[p] = next_param++;
  std::vector<double> params;
  params.reserve(static_cast<std::size_t>(next_param));
  for (std::size_t p = 0; p < out.params.size(); ++p)
    if (param_remap[p] >= 0) params.push_back(out.params[p]);
  out.params = std::move(params);
  for (Instruction& inst : out.body) {
    if (inst.param_index >= 0)
      inst.param_index = param_remap[static_cast<std::size_t>(inst.param_index)];
    if (inst.phi_init_param >= 0)
      inst.phi_init_param =
          param_remap[static_cast<std::size_t>(inst.phi_init_param)];
  }
  return out;
}

ShrinkResult Shrinker::shrink(const ir::LoopKernel& failing,
                              const FailurePredicate& still_fails) const {
  ShrinkResult result;
  result.kernel = failing;

  const auto fails = [&](const LoopKernel& k) {
    try {
      return still_fails(k);
    } catch (...) {
      return false;  // a predicate-crashing candidate is not a reproducer
    }
  };
  if (!fails(failing)) return result;

  // Try one candidate: cleaned up, well-formed, and still failing -> accept.
  const auto attempt = [&](const LoopKernel& candidate) {
    ++result.candidates_tried;
    VECCOST_COUNTER_ADD("fuzz.shrink.candidates", 1);
    LoopKernel cleaned = remove_dead_code(candidate);
    if (!ir::verify(cleaned).ok()) return false;
    if (!fails(cleaned)) return false;
    ++result.candidates_accepted;
    result.kernel = std::move(cleaned);
    return true;
  };

  (void)attempt(result.kernel);  // the failing kernel may carry dead code

  for (int round = 0; round < opts_.max_rounds; ++round) {
    result.rounds = round + 1;
    bool changed = false;
    // Each pass rescans from the top after an acceptance: ids shift when
    // instructions are dropped, so positions are not stable across accepts.
    const auto until_fixpoint = [&](const auto& one_pass) {
      while (one_pass()) changed = true;
    };

    // Drop whole observations first — they unlock the most dead code.
    until_fixpoint([&] {
      const LoopKernel& k = result.kernel;
      for (std::size_t i = 0; i < k.body.size(); ++i) {
        if (!has_side_effect(k.body[i])) continue;
        const auto c = erase_instruction(k, static_cast<ValueId>(i));
        if (c && attempt(*c)) return true;
      }
      return false;
    });
    until_fixpoint([&] {
      const LoopKernel& k = result.kernel;
      for (std::size_t i = 0; i < k.live_outs.size(); ++i) {
        LoopKernel c = k;
        c.live_outs.erase(c.live_outs.begin() + static_cast<std::ptrdiff_t>(i));
        if (attempt(c)) return true;
      }
      return false;
    });

    // Clear access predicates (un-if-convert).
    until_fixpoint([&] {
      const LoopKernel& k = result.kernel;
      for (std::size_t i = 0; i < k.body.size(); ++i) {
        if (k.body[i].predicate == kNoValue) continue;
        LoopKernel c = k;
        c.body[i].predicate = kNoValue;
        if (attempt(c)) return true;
      }
      return false;
    });

    // Simplify subscripts: whole index to a[i] first, then field by field.
    until_fixpoint([&] {
      const LoopKernel& k = result.kernel;
      for (std::size_t i = 0; i < k.body.size(); ++i) {
        const Instruction& inst = k.body[i];
        if (!ir::is_memory_op(inst.op)) continue;
        const ir::MemIndex plain{1, {}, 0, 0, kNoValue};
        if (inst.index == plain) continue;
        LoopKernel c = k;
        c.body[i].index = plain;
        if (attempt(c)) return true;
        using FieldFix = void (*)(ir::MemIndex&);
        static constexpr FieldFix kFixes[] = {
            [](ir::MemIndex& m) { m.indirect = kNoValue; m.scale_i = 1; },
            [](ir::MemIndex& m) { m.offset = 0; },
            [](ir::MemIndex& m) { m.outer.clear(); },
            [](ir::MemIndex& m) { m.n_scale = 0; m.scale_i = 1; }};
        for (const FieldFix field : kFixes) {
          LoopKernel f = k;
          ir::MemIndex before = f.body[i].index;
          field(f.body[i].index);
          if (f.body[i].index == before) continue;
          if (attempt(f)) return true;
        }
      }
      return false;
    });

    // Forward an instruction to a same-typed operand, collapsing the tree.
    until_fixpoint([&] {
      const LoopKernel& k = result.kernel;
      for (std::size_t i = 0; i < k.body.size(); ++i) {
        const Instruction& inst = k.body[i];
        if (inst.op == Opcode::Phi || has_side_effect(inst) ||
            inst.num_operands() == 0)
          continue;
        for (const ValueId o : inst.operands) {
          if (o == kNoValue) continue;
          if (!(k.value_type(o) == inst.type)) continue;
          LoopKernel c = k;
          replace_uses(c, static_cast<ValueId>(i), o);
          if (attempt(c)) return true;
        }
      }
      return false;
    });

    // Structure: flatten the nest / trip shape, then shrink the problem.
    {
      const LoopKernel& k = result.kernel;
      if (!k.nest.empty()) {
        LoopKernel c = k;
        c.nest.levels.clear();
        if (attempt(c)) changed = true;
      }
    }
    until_fixpoint([&] {
      // Drop the outermost level one at a time, shifting coefficient
      // vectors and OuterIndVar levels down so the rest stay meaningful.
      const LoopKernel& k = result.kernel;
      if (k.nest.empty()) return false;
      LoopKernel c = k;
      c.nest.levels.erase(c.nest.levels.begin());
      for (Instruction& inst : c.body) {
        if (ir::is_memory_op(inst.op) && !inst.index.outer.empty())
          inst.index.outer.erase(inst.index.outer.begin());
        if (inst.op == Opcode::OuterIndVar && inst.outer_level > 0)
          --inst.outer_level;
      }
      return attempt(c);
    });
    {
      const ir::TripCount plain{};
      const LoopKernel& k = result.kernel;
      if (k.trip.start != plain.start || k.trip.step != plain.step ||
          k.trip.num != plain.num || k.trip.den != plain.den ||
          k.trip.offset != plain.offset) {
        LoopKernel c = k;
        c.trip = plain;
        if (attempt(c)) changed = true;
      }
    }
    until_fixpoint([&] {
      const LoopKernel& k = result.kernel;
      if (k.default_n / 2 < opts_.min_n) return false;
      LoopKernel c = k;
      c.default_n /= 2;
      return attempt(c);
    });

    if (!changed) break;
  }
  return result;
}

}  // namespace veccost::testing
