#include "xform/nest_transforms.hpp"

#include <algorithm>
#include <utility>

#include "ir/verifier.hpp"
#include "support/error.hpp"

namespace veccost::xform {

using ir::Instruction;
using ir::LoopKernel;
using ir::Opcode;
using ir::ValueId;

namespace {

[[nodiscard]] NestTransformResult fail(std::string reason) {
  NestTransformResult r;
  r.reason = std::move(reason);
  return r;
}

/// Swap two OUTER levels (both < nest.size()): NestInfo entries, per-level
/// subscript coefficients, and OuterIndVar levels. Phis are fine here — they
/// reset per outer combination, and the set of combinations (including the
/// lexicographically last one that feeds live-outs) is permutation-invariant.
[[nodiscard]] NestTransformResult swap_outer_levels(const LoopKernel& k,
                                                    std::size_t a,
                                                    std::size_t b) {
  // A break exits the WHOLE nest, so the prefix of combinations executed
  // before it depends on combination order.
  if (k.has_break()) return fail("early exit pins the combination order");
  LoopKernel out = k;
  std::swap(out.nest.levels[a], out.nest.levels[b]);
  for (Instruction& inst : out.body) {
    if (ir::is_memory_op(inst.op)) {
      const std::int64_t sa = inst.index.outer_scale(a);
      const std::int64_t sb = inst.index.outer_scale(b);
      inst.index.set_outer_scale(a, sb);
      inst.index.set_outer_scale(b, sa);
    }
    if (inst.op == Opcode::OuterIndVar) {
      if (inst.outer_level == static_cast<int>(a))
        inst.outer_level = static_cast<int>(b);
      else if (inst.outer_level == static_cast<int>(b))
        inst.outer_level = static_cast<int>(a);
    }
  }
  out.name += ".ic" + std::to_string(a) + std::to_string(b);
  ir::verify_or_throw(out);
  NestTransformResult r;
  r.ok = true;
  r.kernel = std::move(out);
  return r;
}

/// Trade the innermost-outer level with the `i` loop itself. The inner trip
/// must be a compile-time constant (trip.num == 0) so it can become an outer
/// LoopLevel, and the body must be free of loop-carried state: phis
/// accumulate within ONE inner sweep of one combination, so regrouping the
/// iterations would change their values.
[[nodiscard]] NestTransformResult swap_inner_level(const LoopKernel& k) {
  if (k.trip.num != 0)
    return fail("inner trip count depends on n; cannot become an outer level");
  if (!k.phis().empty())
    return fail("phis accumulate per inner sweep; interchange would regroup them");
  if (k.has_break()) return fail("early exit pins the iteration order");
  if (!k.live_outs.empty()) return fail("live-outs pin the iteration order");

  const std::size_t a = k.nest.size() - 1;  // outer half of the swapped pair
  const ir::LoopLevel lvl = k.nest.levels[a];
  const std::int64_t inner_iters = k.trip.iterations(0);  // num == 0: n-free

  LoopKernel out = k;
  out.trip.start = lvl.start;
  out.trip.step = lvl.step;
  out.trip.num = 0;
  out.trip.den = 1;
  out.trip.offset = lvl.start + lvl.trip * lvl.step;  // end == one-past-last
  out.nest.levels[a] =
      ir::LoopLevel{inner_iters, k.trip.start, k.trip.step};

  for (Instruction& inst : out.body) {
    if (ir::is_memory_op(inst.op)) {
      const std::int64_t si = inst.index.scale_i;
      inst.index.scale_i = inst.index.outer_scale(a);
      inst.index.set_outer_scale(a, si);
    }
    if (inst.op == Opcode::IndVar) {
      inst.op = Opcode::OuterIndVar;
      inst.outer_level = static_cast<int>(a);
    } else if (inst.op == Opcode::OuterIndVar &&
               inst.outer_level == static_cast<int>(a)) {
      inst.op = Opcode::IndVar;
      inst.outer_level = 0;
    }
  }
  out.name += ".ic" + std::to_string(a) + std::to_string(a + 1);
  ir::verify_or_throw(out);
  NestTransformResult r;
  r.ok = true;
  r.kernel = std::move(out);
  return r;
}

}  // namespace

NestTransformResult interchange_levels(const LoopKernel& k, int a, int b) {
  if (k.vf != 1) return fail("interchange expects a scalar kernel");
  const int depth = static_cast<int>(k.depth());
  if (a < 0 || b != a + 1 || b >= depth)
    return fail("interchange needs an adjacent in-range level pair");
  if (b == depth - 1) return swap_inner_level(k);
  return swap_outer_levels(k, static_cast<std::size_t>(a),
                           static_cast<std::size_t>(b));
}

NestTransformResult unroll_and_jam(const LoopKernel& k, int factor) {
  if (k.vf != 1) return fail("unroll-and-jam expects a scalar kernel");
  if (factor < 2) return fail("unroll-and-jam factor must be >= 2");
  if (k.nest.empty()) return fail("no outer level to unroll-and-jam");
  if (!k.phis().empty())
    return fail("phis accumulate per inner sweep; jamming would merge them");
  if (k.has_break()) return fail("early exit pins the iteration order");
  if (!k.live_outs.empty()) return fail("live-outs pin the iteration order");

  const std::size_t last = k.nest.size() - 1;
  const ir::LoopLevel lvl = k.nest.levels[last];
  if (lvl.trip % factor != 0)
    return fail("outer trip count is not divisible by the jam factor");

  LoopKernel out;
  out.name = k.name + ".uj" + std::to_string(factor);
  out.category = k.category;
  out.description = k.description;
  out.default_n = k.default_n;
  out.trip = k.trip;
  out.nest = k.nest;
  out.nest.levels[last].trip = lvl.trip / factor;
  out.nest.levels[last].step = lvl.step * factor;
  out.arrays = k.arrays;
  out.params = k.params;
  out.vf = 1;

  auto emit = [&out](Instruction inst) {
    out.body.push_back(inst);
    return static_cast<ValueId>(out.body.size()) - 1;
  };

  // Copies are independent (no phis), so a per-copy value map suffices.
  const std::size_t n = k.body.size();
  std::vector<ValueId> cur_map(n, ir::kNoValue);
  for (int f = 0; f < factor; ++f) {
    for (std::size_t id = 0; id < n; ++id) {
      const Instruction& src = k.body[id];
      Instruction inst = src;
      for (int i = 0; i < inst.num_operands(); ++i) {
        ValueId& op = inst.operands[static_cast<std::size_t>(i)];
        if (op != ir::kNoValue) op = cur_map[static_cast<std::size_t>(op)];
      }
      if (inst.predicate != ir::kNoValue)
        inst.predicate = cur_map[static_cast<std::size_t>(inst.predicate)];
      if (inst.index.is_indirect())
        inst.index.indirect =
            cur_map[static_cast<std::size_t>(inst.index.indirect)];

      // Fold the copy's jam offset into affine subscripts.
      if (ir::is_memory_op(inst.op) && !inst.index.is_indirect())
        inst.index.offset += inst.index.outer_scale(last) * lvl.step * f;

      if (src.op == Opcode::OuterIndVar &&
          src.outer_level == static_cast<int>(last) && f > 0) {
        // j + f*step: materialize as outer indvar + const (mirrors how
        // unroll materializes i + u*step).
        Instruction base = src;
        const ValueId jv = emit(base);
        Instruction cst;
        cst.op = Opcode::Const;
        cst.type = src.type;
        cst.const_value = static_cast<double>(f * lvl.step);
        const ValueId c = emit(cst);
        Instruction add;
        add.op = Opcode::Add;
        add.type = src.type;
        add.operands[0] = jv;
        add.operands[1] = c;
        cur_map[id] = emit(add);
        continue;
      }

      cur_map[id] = emit(inst);
    }
  }

  ir::verify_or_throw(out);
  NestTransformResult r;
  r.ok = true;
  r.kernel = std::move(out);
  return r;
}

}  // namespace veccost::xform
