#include "xform/pipeline.hpp"

#include <cctype>
#include <utility>

#include "obs/metrics.hpp"

namespace veccost::xform {

namespace {

bool is_name_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string at_pos(std::size_t pos, std::string message) {
  return "at char " + std::to_string(pos) + ": " + std::move(message);
}

}  // namespace

SpecParse parse_pipeline_spec(std::string_view spec) {
  SpecParse out;
  std::size_t i = 0;
  const auto skip_ws = [&] {
    while (i < spec.size() &&
           std::isspace(static_cast<unsigned char>(spec[i])) != 0)
      ++i;
  };
  const auto fail = [&](std::size_t pos, std::string message) {
    out.ok = false;
    out.position = pos;
    out.error = at_pos(pos, std::move(message));
    return out;
  };

  skip_ws();
  if (i == spec.size()) return fail(i, "empty pipeline spec");
  for (;;) {
    skip_ws();
    PassSpec pass;
    pass.position = i;
    while (i < spec.size() && is_name_char(spec[i])) pass.base += spec[i++];
    if (pass.base.empty())
      return fail(i, i < spec.size()
                         ? std::string("expected a pass name, got '") +
                               spec[i] + "'"
                         : "expected a pass name");
    if (i < spec.size() && spec[i] == '<') {
      const std::size_t param_pos = ++i;
      std::string token;
      while (i < spec.size() && is_name_char(spec[i])) token += spec[i++];
      const bool is_number =
          !token.empty() &&
          token.find_first_not_of("0123456789") == std::string::npos;
      if (!is_number && token != "vl")
        return fail(param_pos,
                    "expected an integer parameter or 'vl' after '<'");
      pass.has_param = true;
      pass.param = is_number ? std::stoi(token) : kVLParam;
      if (i < spec.size() && spec[i] == ',') {
        const std::size_t param2_pos = ++i;
        std::string token2;
        while (i < spec.size() && is_name_char(spec[i])) token2 += spec[i++];
        const bool is_number2 =
            !token2.empty() &&
            token2.find_first_not_of("0123456789") == std::string::npos;
        if (!is_number2)
          return fail(param2_pos, "expected an integer second parameter");
        pass.has_param2 = true;
        pass.param2 = std::stoi(token2);
      }
      if (i == spec.size() || spec[i] != '>')
        return fail(i, "expected '>' to close the parameter");
      ++i;
    }
    out.passes.push_back(std::move(pass));
    skip_ws();
    if (i == spec.size()) break;
    if (spec[i] != ',')
      return fail(i, std::string("expected ',' or end of spec, got '") +
                         spec[i] + "'");
    ++i;  // past the comma; the next element must exist
    skip_ws();
    if (i == spec.size()) return fail(i, "trailing ',' in pipeline spec");
  }
  out.ok = true;
  return out;
}

Pipeline Pipeline::parse(std::string_view spec) {
  Pipeline p;
  SpecParse parsed = parse_pipeline_spec(spec);
  if (!parsed.ok) {
    p.error_ = std::move(parsed.error);
    p.error_position_ = parsed.position;
    return p;
  }
  for (const PassSpec& ps : parsed.passes) {
    std::string error;
    std::unique_ptr<TransformPass> pass = create_pass(
        ps.base, ps.has_param, ps.param, ps.has_param2, ps.param2, &error);
    if (!pass) {
      p.error_ = at_pos(ps.position, std::move(error));
      p.error_position_ = ps.position;
      p.passes_.clear();
      p.spec_.clear();
      return p;
    }
    if (!p.spec_.empty()) p.spec_ += ',';
    p.spec_ += pass->name();
    p.passes_.push_back(std::move(pass));
  }
  return p;
}

PipelineResult Pipeline::run(const ir::LoopKernel& kernel,
                             const machine::TargetDesc& target,
                             AnalysisManager& analyses) const {
  VECCOST_SPAN("xform.pipeline.run");
  VECCOST_COUNTER_ADD("xform.pipeline.runs", 1);
  PipelineResult result;
  result.state.kernel = kernel;
  PassContext ctx{target, analyses};
  for (std::size_t i = 0; i < passes_.size(); ++i) {
    const TransformPass& pass = *passes_[i];
    // Keep the pre-pass kernel so preserved analyses can follow the rewrite
    // to its new cache key (transfer is a no-op when the kernel is unchanged).
    const ir::LoopKernel before = result.state.kernel;
    const PassResult pr = pass.run(result.state, ctx);
    if (!pr.ok) {
      VECCOST_COUNTER_ADD("xform.pipeline.failures", 1);
      result.ok = false;
      result.failed_pass = pass.name();
      result.failed_index = i;
      result.reason = pr.reason;
      return result;
    }
    analyses.transfer(before, result.state.kernel, pr.preserved);
  }
  result.ok = true;
  return result;
}

}  // namespace veccost::xform
