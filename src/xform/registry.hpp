// The string registry of transform passes.
//
// Eight pass kinds adapt the existing transform entry points to the
// TransformPass interface (pass.hpp):
//
//   llv[<VF>]   vectorizer::vectorize_legal — widen the loop by VF (natural
//               VF when omitted), legality served by the AnalysisManager;
//               llv<vl> selects the predicated whole-loop regime on
//               vector-length-agnostic targets (no scalar tail)
//   unroll<F>   vectorizer::unroll_loop — replicate the body F times
//   slp         vectorizer::slp_vectorize — attach a pack plan to the state
//   reroll      vectorizer::reroll_loop — invert hand-unrolling using the
//               state's slp plan
//   lower[<L>]  machine::lower — compile the kernel to a micro-op program at
//               L lanes (the kernel's own vf when omitted)
//   interchange<a,b>  xform::interchange_levels — swap the adjacent nest
//               level pair (a, b = a+1), full-nest numbering; dependence
//               legality from the cached nest-dependence analysis
//   unrolljam<F>      xform::unroll_and_jam — replicate the body across F
//               consecutive iterations of the innermost-outer level
//   ollv[<VF>|<vl>]   outer-loop vectorization: interchange the innermost
//               pair so the former outer level becomes the `i` loop, then
//               delegate to llv
//
// `create_pass` instantiates one by base name + parameter(s); `pass_catalog`
// drives the `veccost passes` subcommand and the spec parser's validation.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/legality.hpp"
#include "xform/pass.hpp"

namespace veccost::xform {

/// Sentinel parameter value for the `vl` keyword (`llv<vl>`): request the
/// vector-length-agnostic predicated whole-loop regime instead of a fixed
/// VF. Only passes with PassInfo::accepts_vl take it.
inline constexpr int kVLParam = -1;

/// Catalog entry for one registered pass kind (base name, before any
/// `<param>` instantiation).
struct PassInfo {
  std::string_view name;      ///< base spec name, e.g. "llv"
  std::string_view synopsis;  ///< spec form, e.g. "llv[<VF>|<vl>]"
  std::string_view summary;   ///< one line for `veccost passes`
  bool has_param = false;     ///< accepts a `<N>` parameter
  bool param_required = false;
  int min_param = 0;          ///< smallest legal parameter value, when given
  bool accepts_vl = false;    ///< accepts the `vl` keyword parameter

  /// Cheap structural pre-filter for spec enumeration (the tuner's
  /// SpecSpace): may this pass instantiation plausibly apply to a pipeline
  /// seeded with `scalar` on `target`? `legality` is the scalar kernel's
  /// cached verdict — the predicate never runs an analysis itself, so one
  /// legality run per kernel covers an entire search. Conservative in the
  /// "maybe" direction: Pipeline::run is the real gate, this only prunes
  /// instantiations that can never succeed (VF beyond max_vf, `vl` on a
  /// fixed-length target, non-divisible unroll). nullptr = always plausible.
  bool (*applicable)(bool has_param, int param, const ir::LoopKernel& scalar,
                     const machine::TargetDesc& target,
                     const analysis::Legality& legality) = nullptr;

  /// Parameter values worth enumerating for this pass on `scalar` — the
  /// tuner's axis along this pass kind, already filtered by `applicable`.
  /// Includes 0 for "parameter omitted" when that form is meaningful
  /// (e.g. `llv` at the natural VF) and kVLParam for `llv<vl>` on
  /// vector-length-agnostic targets. nullptr = nothing to enumerate.
  /// For two-parameter passes (interchange) the values are the FIRST
  /// parameter `a` of the pair (a, a+1).
  std::vector<int> (*param_candidates)(const ir::LoopKernel& scalar,
                                       const machine::TargetDesc& target,
                                       const analysis::Legality& legality) =
      nullptr;

  /// The pass takes a second `,M` argument (`interchange<a,b>`). When true,
  /// the spec must supply both arguments or neither.
  bool has_param2 = false;
};

/// `info.applicable` with the nullptr-means-yes convention applied.
[[nodiscard]] bool pass_applicable(const PassInfo& info, bool has_param,
                                   int param, const ir::LoopKernel& scalar,
                                   const machine::TargetDesc& target,
                                   const analysis::Legality& legality);

/// `info.param_candidates` with the nullptr-means-empty convention applied.
[[nodiscard]] std::vector<int> enumerate_pass_params(
    const PassInfo& info, const ir::LoopKernel& scalar,
    const machine::TargetDesc& target, const analysis::Legality& legality);

/// Every registered pass kind, in catalog order.
[[nodiscard]] const std::vector<PassInfo>& pass_catalog();

/// Catalog entry for `base`, or nullptr when no such pass kind exists.
[[nodiscard]] const PassInfo* find_pass_info(std::string_view base);

/// Instantiate a pass from its base name and parameter (`has_param` tells
/// whether a `<N>` was written; its value is `param`). Returns nullptr and
/// fills `*error` when the name is unknown or the parameter is missing,
/// unexpected, or out of range.
[[nodiscard]] std::unique_ptr<TransformPass> create_pass(std::string_view base,
                                                         bool has_param,
                                                         int param,
                                                         std::string* error);

/// Two-argument form: `has_param2`/`param2` carry the second `,M` spec
/// argument (only passes with PassInfo::has_param2 accept one).
[[nodiscard]] std::unique_ptr<TransformPass> create_pass(
    std::string_view base, bool has_param, int param, bool has_param2,
    int param2, std::string* error);

}  // namespace veccost::xform
