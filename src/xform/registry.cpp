#include "xform/registry.hpp"

#include <utility>

#include "analysis/nest_dependence.hpp"
#include "machine/lowering.hpp"
#include "obs/metrics.hpp"
#include "vectorizer/loop_vectorizer.hpp"
#include "vectorizer/reroll.hpp"
#include "vectorizer/slp_vectorizer.hpp"
#include "vectorizer/unroll.hpp"
#include "xform/analysis_manager.hpp"
#include "xform/nest_transforms.hpp"

namespace veccost::xform {

namespace {

std::string instantiated_name(std::string_view base, bool has_param,
                              int param) {
  std::string name(base);
  if (has_param)
    name += param == kVLParam ? std::string("<vl>")
                              : "<" + std::to_string(param) + ">";
  return name;
}

/// llv[<VF>|<vl>]: widen the loop. The legality verdict comes from the
/// manager, so a VF sweep over one kernel runs dependence analysis exactly
/// once. `llv<vl>` selects the predicated whole-loop regime (no scalar tail)
/// at the target's natural VF; it fails on non-VL-agnostic targets.
class LlvPass final : public TransformPass {
 public:
  LlvPass(bool has_param, int param)
      : predicated_(has_param && param == kVLParam),
        vf_(has_param && param != kVLParam ? param : 0),
        name_(instantiated_name("llv", has_param, param)) {}
  const std::string& name() const override { return name_; }

  PassResult run(PipelineState& state, PassContext& ctx) const override {
    VECCOST_SPAN("xform.pass.llv");
    if (state.kernel.vf != 1)
      return PassResult::failure("llv requires a scalar kernel (vf == 1)");
    vectorizer::LoopVectorizerOptions opts;
    opts.requested_vf = vf_;
    opts.predicated = predicated_;
    const analysis::Legality& legality =
        ctx.analyses.legality(state.kernel, opts.legality);
    vectorizer::VectorizedLoop widened =
        vectorizer::vectorize_legal(state.kernel, ctx.target, opts, legality);
    if (!widened.ok) return PassResult::failure(widened.notes_string());
    state.kernel = std::move(widened.kernel);
    state.runtime_check = widened.runtime_check;
    state.slp.reset();
    state.lowered.reset();
    for (std::string& note : widened.notes)
      state.notes.push_back(std::move(note));
    return PassResult::success(PreservedAnalyses::none());
  }

 private:
  bool predicated_;  ///< `llv<vl>`: predicated whole-loop regime
  int vf_;           ///< 0 = the target's natural VF
  std::string name_;
};

/// unroll<F>: replicate the body F times (SLP's pre-pass).
class UnrollPass final : public TransformPass {
 public:
  explicit UnrollPass(int factor)
      : factor_(factor), name_(instantiated_name("unroll", true, factor)) {}
  const std::string& name() const override { return name_; }

  PassResult run(PipelineState& state, PassContext&) const override {
    VECCOST_SPAN("xform.pass.unroll");
    if (state.kernel.vf != 1)
      return PassResult::failure("unroll requires a scalar kernel (vf == 1)");
    vectorizer::UnrollResult r = vectorizer::unroll_loop(state.kernel, factor_);
    if (!r.ok) return PassResult::failure(std::move(r.reason));
    state.kernel = std::move(r.kernel);
    state.slp.reset();
    state.lowered.reset();
    state.notes.push_back("unrolled by " + std::to_string(factor_));
    return PassResult::success(PreservedAnalyses::none());
  }

 private:
  int factor_;
  std::string name_;
};

/// slp: attach a pack plan for the current kernel. Leaves the kernel itself
/// untouched, so every cached analysis stays valid.
class SlpPass final : public TransformPass {
 public:
  SlpPass() : name_("slp") {}
  const std::string& name() const override { return name_; }

  PassResult run(PipelineState& state, PassContext& ctx) const override {
    VECCOST_SPAN("xform.pass.slp");
    vectorizer::SlpPlan plan =
        vectorizer::slp_vectorize(state.kernel, ctx.target);
    if (!plan.ok) {
      std::string reason = "no packs";
      if (!plan.notes.empty()) reason = plan.notes.back();
      return PassResult::failure(std::move(reason));
    }
    for (const std::string& note : plan.notes) state.notes.push_back(note);
    state.slp = std::move(plan);
    return PassResult::success(PreservedAnalyses::all());
  }

 private:
  std::string name_;
};

/// reroll: rewrite `width` isomorphic copies back into a single-copy loop
/// using the state's slp plan.
class RerollPass final : public TransformPass {
 public:
  RerollPass() : name_("reroll") {}
  const std::string& name() const override { return name_; }

  PassResult run(PipelineState& state, PassContext&) const override {
    VECCOST_SPAN("xform.pass.reroll");
    if (!state.slp)
      return PassResult::failure(
          "reroll needs a pack plan — put `slp` earlier in the pipeline");
    const vectorizer::SlpPlan& plan = *state.slp;
    if (plan.unroll != 1)
      return PassResult::failure(
          "slp plan targets an auto-unrolled body (unroll=" +
          std::to_string(plan.unroll) + "), not the kernel as written");
    vectorizer::RerollResult r = vectorizer::reroll_loop(state.kernel, plan);
    if (!r.ok) return PassResult::failure(std::move(r.reason));
    state.kernel = std::move(r.kernel);
    state.slp.reset();
    state.lowered.reset();
    state.notes.push_back("rerolled by " + std::to_string(r.factor));
    return PassResult::success(PreservedAnalyses::none());
  }

 private:
  std::string name_;
};

/// lower[<L>]: compile the kernel to a micro-op program at L lanes (the
/// kernel's own vf when omitted). Kernel untouched — analyses survive.
class LowerPass final : public TransformPass {
 public:
  LowerPass(bool has_param, int lanes)
      : lanes_(has_param ? lanes : 0),
        name_(instantiated_name("lower", has_param, lanes)) {}
  const std::string& name() const override { return name_; }

  PassResult run(PipelineState& state, PassContext&) const override {
    VECCOST_SPAN("xform.pass.lower");
    const int lanes = lanes_ > 0 ? lanes_ : state.kernel.vf;
    state.lowered = machine::lower(state.kernel, lanes);
    state.notes.push_back("lowered at " + std::to_string(lanes) + " lanes");
    return PassResult::success(PreservedAnalyses::all());
  }

 private:
  int lanes_;  ///< 0 = the kernel's vf at run time
  std::string name_;
};

/// interchange<a,b>: swap the adjacent nest level pair, dependence legality
/// served by the manager's cached nest-dependence analysis.
class InterchangePass final : public TransformPass {
 public:
  InterchangePass(int a, int b)
      : a_(a), b_(b),
        name_("interchange<" + std::to_string(a) + "," + std::to_string(b) +
              ">") {}
  const std::string& name() const override { return name_; }

  PassResult run(PipelineState& state, PassContext& ctx) const override {
    VECCOST_SPAN("xform.pass.interchange");
    if (state.kernel.vf != 1)
      return PassResult::failure(
          "interchange requires a scalar kernel (vf == 1)");
    if (b_ >= static_cast<int>(state.kernel.depth()))
      return PassResult::failure("level " + std::to_string(b_) +
                                 " is outside the nest");
    const analysis::NestDependenceInfo& deps =
        ctx.analyses.nest_dependence(state.kernel);
    if (!analysis::interchange_legal_at(deps, static_cast<std::size_t>(a_),
                                        static_cast<std::size_t>(b_)))
      return PassResult::failure(
          "a dependence direction vector forbids interchanging levels " +
          std::to_string(a_) + " and " + std::to_string(b_));
    NestTransformResult r = interchange_levels(state.kernel, a_, b_);
    if (!r.ok) return PassResult::failure(std::move(r.reason));
    state.kernel = std::move(r.kernel);
    state.slp.reset();
    state.lowered.reset();
    state.notes.push_back("interchanged levels " + std::to_string(a_) +
                          " and " + std::to_string(b_));
    return PassResult::success(PreservedAnalyses::none());
  }

 private:
  int a_;
  int b_;
  std::string name_;
};

/// unrolljam<F>: unroll the innermost-outer level by F and jam the copies
/// into one inner loop.
class UnrollJamPass final : public TransformPass {
 public:
  explicit UnrollJamPass(int factor)
      : factor_(factor),
        name_(instantiated_name("unrolljam", true, factor)) {}
  const std::string& name() const override { return name_; }

  PassResult run(PipelineState& state, PassContext& ctx) const override {
    VECCOST_SPAN("xform.pass.unrolljam");
    if (state.kernel.vf != 1)
      return PassResult::failure(
          "unrolljam requires a scalar kernel (vf == 1)");
    const analysis::NestDependenceInfo& deps =
        ctx.analyses.nest_dependence(state.kernel);
    if (!analysis::unroll_jam_legal(deps, factor_))
      return PassResult::failure(
          "a dependence direction vector forbids unroll-and-jam by " +
          std::to_string(factor_));
    NestTransformResult r = unroll_and_jam(state.kernel, factor_);
    if (!r.ok) return PassResult::failure(std::move(r.reason));
    state.kernel = std::move(r.kernel);
    state.slp.reset();
    state.lowered.reset();
    state.notes.push_back("unroll-and-jammed by " + std::to_string(factor_));
    return PassResult::success(PreservedAnalyses::none());
  }

 private:
  int factor_;
  std::string name_;
};

/// ollv[<VF>|<vl>]: outer-loop vectorization. Interchange the innermost
/// level pair so the former outer level becomes the vectorized `i` loop,
/// then delegate to llv on the transposed kernel.
class OllvPass final : public TransformPass {
 public:
  OllvPass(bool has_param, int param)
      : llv_(has_param, param),
        name_(instantiated_name("ollv", has_param, param)) {}
  const std::string& name() const override { return name_; }

  PassResult run(PipelineState& state, PassContext& ctx) const override {
    VECCOST_SPAN("xform.pass.ollv");
    if (state.kernel.vf != 1)
      return PassResult::failure("ollv requires a scalar kernel (vf == 1)");
    if (state.kernel.nest.empty())
      return PassResult::failure("ollv needs an outer level to vectorize");
    const int a = static_cast<int>(state.kernel.depth()) - 2;
    const analysis::NestDependenceInfo& deps =
        ctx.analyses.nest_dependence(state.kernel);
    if (!analysis::interchange_legal_at(deps, static_cast<std::size_t>(a),
                                        static_cast<std::size_t>(a + 1)))
      return PassResult::failure(
          "a dependence direction vector forbids the inner interchange");
    NestTransformResult r = interchange_levels(state.kernel, a, a + 1);
    if (!r.ok) return PassResult::failure(std::move(r.reason));
    state.kernel = std::move(r.kernel);
    state.slp.reset();
    state.lowered.reset();
    state.notes.push_back("ollv: interchanged the innermost level pair");
    return llv_.run(state, ctx);
  }

 private:
  LlvPass llv_;
  std::string name_;
};

/// Legality predicate for llv: the scalar kernel must be vectorizable at
/// all, an explicit VF must not exceed the legal maximum, and `vl` needs a
/// vector-length-agnostic target. (A pipeline may widen an already-rewritten
/// kernel whose legality differs from the scalar's — the predicate is a
/// plausibility filter over the *scalar* verdict; Pipeline::run decides.)
bool llv_applicable(bool has_param, int param, const ir::LoopKernel&,
                    const machine::TargetDesc& target,
                    const analysis::Legality& legality) {
  if (!legality.vectorizable) return false;
  if (!has_param) return true;
  if (param == kVLParam) return target.vl.vl_agnostic;
  return param <= legality.max_vf;
}

std::vector<int> llv_params(const ir::LoopKernel& scalar,
                            const machine::TargetDesc& target,
                            const analysis::Legality& legality) {
  std::vector<int> out;
  if (!legality.vectorizable) return out;
  out.push_back(0);  // natural VF
  for (const int vf : {2, 4, 8, 16})
    if (llv_applicable(true, vf, scalar, target, legality)) out.push_back(vf);
  if (target.vl.vl_agnostic) out.push_back(kVLParam);
  return out;
}

/// Unrolling replicates the body exactly — no epilogue — so it only
/// preserves semantics when the default iteration range divides by the
/// factor and the loop has no early exit.
bool unroll_applicable(bool has_param, int param, const ir::LoopKernel& scalar,
                       const machine::TargetDesc&, const analysis::Legality&) {
  if (!has_param || param < 2) return false;
  if (scalar.has_break()) return false;
  const std::int64_t iters = scalar.trip.iterations(scalar.default_n);
  return iters > 0 && iters % param == 0;
}

std::vector<int> unroll_params(const ir::LoopKernel& scalar,
                               const machine::TargetDesc& target,
                               const analysis::Legality& legality) {
  std::vector<int> out;
  for (const int f : {2, 4, 8})
    if (unroll_applicable(true, f, scalar, target, legality)) out.push_back(f);
  return out;
}

/// The nest passes enumerate only on 3-deep-or-deeper kernels
/// (nest.size() >= 2): on the classic 2-deep shape they would perturb the
/// tuner's established search space without adding a distinct regime.
bool deep_nest(const ir::LoopKernel& scalar) {
  return scalar.nest.size() >= 2;
}

bool interchange_applicable(bool has_param, int param,
                            const ir::LoopKernel& scalar,
                            const machine::TargetDesc&,
                            const analysis::Legality&) {
  if (!deep_nest(scalar)) return false;
  if (!has_param) return false;
  return param >= 0 && param + 1 < static_cast<int>(scalar.depth());
}

std::vector<int> interchange_params(const ir::LoopKernel& scalar,
                                    const machine::TargetDesc& target,
                                    const analysis::Legality& legality) {
  // First parameter `a` of each adjacent pair (a, a+1); the inner pair is
  // excluded — its structural preconditions (constant trip, no phis or
  // live-outs) almost never hold for tuner corpora, and `ollv` covers it.
  std::vector<int> out;
  if (!deep_nest(scalar)) return out;
  for (int a = 0; a + 2 < static_cast<int>(scalar.depth()); ++a)
    if (interchange_applicable(true, a, scalar, target, legality))
      out.push_back(a);
  return out;
}

bool unrolljam_applicable(bool has_param, int param,
                          const ir::LoopKernel& scalar,
                          const machine::TargetDesc&,
                          const analysis::Legality&) {
  if (!deep_nest(scalar)) return false;
  if (!has_param || param < 2) return false;
  if (scalar.has_break() || !scalar.phis().empty() ||
      !scalar.live_outs.empty())
    return false;
  return scalar.nest.levels.back().trip % param == 0;
}

std::vector<int> unrolljam_params(const ir::LoopKernel& scalar,
                                  const machine::TargetDesc& target,
                                  const analysis::Legality& legality) {
  std::vector<int> out;
  for (const int f : {2, 4})
    if (unrolljam_applicable(true, f, scalar, target, legality))
      out.push_back(f);
  return out;
}

bool ollv_applicable(bool has_param, int param, const ir::LoopKernel& scalar,
                     const machine::TargetDesc& target,
                     const analysis::Legality&) {
  if (!deep_nest(scalar)) return false;
  // Structural preconditions of the inner interchange; the dependence and
  // widening legality of the transposed kernel are the pipeline's business.
  if (scalar.trip.num != 0 || scalar.has_break() || !scalar.phis().empty() ||
      !scalar.live_outs.empty())
    return false;
  // The widening happens on the TRANSPOSED kernel, whose legality verdict
  // differs from the scalar's — only the target-capability check is safe to
  // pre-filter here.
  if (has_param && param == kVLParam) return target.vl.vl_agnostic;
  return true;
}

std::vector<int> ollv_params(const ir::LoopKernel& scalar,
                             const machine::TargetDesc& target,
                             const analysis::Legality& legality) {
  std::vector<int> out;
  if (!ollv_applicable(false, 0, scalar, target, legality)) return out;
  out.push_back(0);  // natural VF
  for (const int vf : {2, 4})
    if (ollv_applicable(true, vf, scalar, target, legality))
      out.push_back(vf);
  if (target.vl.vl_agnostic) out.push_back(kVLParam);
  return out;
}

}  // namespace

const std::vector<PassInfo>& pass_catalog() {
  static const std::vector<PassInfo> catalog = {
      {"llv", "llv[<VF>|<vl>]",
       "widen the loop by VF (natural VF when omitted); <vl> = predicated "
       "whole loop",
       true, false, 2, /*accepts_vl=*/true, llv_applicable, llv_params},
      {"unroll", "unroll<F>", "replicate the body F times", true, true, 2,
       false, unroll_applicable, unroll_params},
      {"slp", "slp", "attach a superword pack plan for the current kernel",
       false, false, 0},
      {"reroll", "reroll",
       "rewrite isomorphic copies back into a single-copy loop", false, false,
       0},
      {"lower", "lower[<L>]",
       "compile the kernel to a micro-op program at L lanes", true, false, 1},
      {"interchange", "interchange<a,b>",
       "swap the adjacent nest level pair (a, b = a + 1), full-nest "
       "numbering",
       true, true, 0, false, interchange_applicable, interchange_params,
       /*has_param2=*/true},
      {"unrolljam", "unrolljam<F>",
       "unroll the innermost-outer level by F and jam the copies into one "
       "inner loop",
       true, true, 2, false, unrolljam_applicable, unrolljam_params},
      {"ollv", "ollv[<VF>|<vl>]",
       "outer-loop vectorization: interchange the innermost level pair, "
       "then llv",
       true, false, 2, /*accepts_vl=*/true, ollv_applicable, ollv_params},
  };
  return catalog;
}

bool pass_applicable(const PassInfo& info, bool has_param, int param,
                     const ir::LoopKernel& scalar,
                     const machine::TargetDesc& target,
                     const analysis::Legality& legality) {
  if (info.applicable == nullptr) return true;
  return info.applicable(has_param, param, scalar, target, legality);
}

std::vector<int> enumerate_pass_params(const PassInfo& info,
                                       const ir::LoopKernel& scalar,
                                       const machine::TargetDesc& target,
                                       const analysis::Legality& legality) {
  if (info.param_candidates == nullptr) return {};
  return info.param_candidates(scalar, target, legality);
}

const PassInfo* find_pass_info(std::string_view base) {
  for (const PassInfo& info : pass_catalog())
    if (info.name == base) return &info;
  return nullptr;
}

std::unique_ptr<TransformPass> create_pass(std::string_view base,
                                           bool has_param, int param,
                                           std::string* error) {
  return create_pass(base, has_param, param, false, 0, error);
}

std::unique_ptr<TransformPass> create_pass(std::string_view base,
                                           bool has_param, int param,
                                           bool has_param2, int param2,
                                           std::string* error) {
  const PassInfo* info = find_pass_info(base);
  if (info == nullptr) {
    if (error) *error = "unknown pass '" + std::string(base) + "'";
    return nullptr;
  }
  if (has_param && !info->has_param) {
    if (error)
      *error = "pass '" + std::string(base) + "' takes no parameter";
    return nullptr;
  }
  if (!has_param && info->param_required) {
    if (error)
      *error = "pass '" + std::string(base) + "' requires a parameter: " +
               std::string(info->synopsis);
    return nullptr;
  }
  if (has_param2 && !info->has_param2) {
    if (error)
      *error = "pass '" + std::string(base) + "' takes no second parameter";
    return nullptr;
  }
  if (info->has_param2 && has_param && !has_param2) {
    if (error)
      *error = "pass '" + std::string(base) + "' requires two parameters: " +
               std::string(info->synopsis);
    return nullptr;
  }
  if (has_param && param == kVLParam && !info->accepts_vl) {
    if (error)
      *error = "pass '" + std::string(base) + "' takes no 'vl' parameter";
    return nullptr;
  }
  if (has_param && param != kVLParam && param < info->min_param) {
    if (error)
      *error = "pass '" + std::string(base) + "' parameter must be >= " +
               std::to_string(info->min_param);
    return nullptr;
  }
  if (base == "interchange") {
    if (param2 != param + 1) {
      if (error)
        *error = "interchange needs an adjacent level pair (b = a + 1)";
      return nullptr;
    }
    return std::make_unique<InterchangePass>(param, param2);
  }
  if (base == "llv") return std::make_unique<LlvPass>(has_param, param);
  if (base == "unroll") return std::make_unique<UnrollPass>(param);
  if (base == "unrolljam") return std::make_unique<UnrollJamPass>(param);
  if (base == "ollv") return std::make_unique<OllvPass>(has_param, param);
  if (base == "slp") return std::make_unique<SlpPass>();
  if (base == "reroll") return std::make_unique<RerollPass>();
  return std::make_unique<LowerPass>(has_param, param);
}

}  // namespace veccost::xform
