// AnalysisManager: a content-keyed cache of analysis-layer results.
//
// Every analysis veccost runs on a scalar kernel — legality (dependence +
// phi classification), raw dependence info, phi classes, the three feature
// sets — is pure in (kernel contents, options). The manager memoizes them
// keyed by a structural content hash of the kernel plus an options hash, so
// a VF sweep (selector, semantics validation, the differential oracle's
// widening matrix) pays for dependence analysis once per (kernel, options)
// instead of once per candidate VF.
//
// Invalidation is by content: a pass that rewrites the kernel yields a new
// hash, so stale entries can never be returned for the new kernel. The
// preserved-analyses declaration of each pass (pass.hpp) drives the
// *carry-forward* optimization on top: Pipeline calls transfer() after every
// kernel-rewriting pass, and analyses the pass declared preserved are
// re-registered under the new kernel's key (anything else is dropped — the
// stale-analysis test in tests/xform_test.cpp pins this via the counters).
//
// Instrumentation: every query bumps `xform.analysis.hit` or
// `xform.analysis.miss` in the obs registry and the manager's own Stats
// (which work even with metrics compiled out).
//
// Not thread-safe: use one manager per thread of work (they are cheap — the
// parallel drivers create one per kernel-measurement unit).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "analysis/dependence.hpp"
#include "analysis/features.hpp"
#include "analysis/legality.hpp"
#include "analysis/nest_dependence.hpp"
#include "analysis/reduction.hpp"
#include "xform/pass.hpp"

namespace veccost::xform {

/// Structural content hash of a kernel: every semantic field (trip, arrays,
/// params, body instructions, live-outs, vf, default_n) folded in order;
/// name/category/description excluded so renames don't thrash the cache.
[[nodiscard]] std::uint64_t kernel_content_hash(const ir::LoopKernel& kernel);

/// Content hash of a LegalityOptions value (part of the legality cache key).
[[nodiscard]] std::uint64_t options_hash(const analysis::LegalityOptions& opts);

class AnalysisManager {
 public:
  AnalysisManager() = default;
  AnalysisManager(const AnalysisManager&) = delete;
  AnalysisManager& operator=(const AnalysisManager&) = delete;

  /// Cached analysis::check_legality. The reference stays valid until
  /// clear() — entries are never evicted.
  [[nodiscard]] const analysis::Legality& legality(
      const ir::LoopKernel& kernel, const analysis::LegalityOptions& opts = {});

  /// Cached analysis::analyze_dependences.
  [[nodiscard]] const analysis::DependenceInfo& dependence(
      const ir::LoopKernel& kernel);

  /// Cached analysis::classify_phis.
  [[nodiscard]] const std::vector<analysis::PhiInfo>& phi_classes(
      const ir::LoopKernel& kernel);

  /// Cached analysis::analyze_nest_dependences (direction vectors over the
  /// full nest, for interchange / unroll-and-jam legality).
  [[nodiscard]] const analysis::NestDependenceInfo& nest_dependence(
      const ir::LoopKernel& kernel);

  /// Cached analysis::extract_features for one feature set.
  [[nodiscard]] const std::vector<double>& features(const ir::LoopKernel& kernel,
                                                    analysis::FeatureSet set);

  /// A pass rewrote `from` into `to`: carry the analyses it declared
  /// preserved to the new kernel's key and drop any entry already cached
  /// under the new key for a non-preserved analysis (in-place mutation of a
  /// kernel object must not resurrect stale results).
  void transfer(const ir::LoopKernel& from, const ir::LoopKernel& to,
                PreservedAnalyses preserved);

  /// Hit/miss accounting, independent of the obs registry toggle.
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Drop every cached entry (invalidates all references handed out).
  void clear();

 private:
  struct Key {
    std::uint64_t kernel = 0;
    std::uint64_t options = 0;  ///< options hash; 0 for option-free analyses
    unsigned analysis = 0;      ///< AnalysisId, widened
    auto operator<=>(const Key&) const = default;
  };
  struct Entry {
    std::unique_ptr<analysis::Legality> legality;
    std::unique_ptr<analysis::DependenceInfo> dependence;
    std::unique_ptr<std::vector<analysis::PhiInfo>> phis;
    std::unique_ptr<std::vector<double>> features;
    std::unique_ptr<analysis::NestDependenceInfo> nest_dependence;
  };

  /// Lookup + instrumentation; returns the entry slot (created on miss).
  Entry& lookup(const Key& key, bool& hit);

  std::map<Key, Entry> cache_;
  Stats stats_;
};

}  // namespace veccost::xform
