// Pipeline: an ordered composition of transform passes parsed from text.
//
// The spec grammar (docs/pipeline_passes.md has the full story):
//
//   spec  := pass ("," pass)*
//   pass  := name ("<" arg ("," integer)? ">")?
//   arg   := integer | "vl"
//   name  := one of the registry's base names (llv, unroll, slp, reroll,
//            lower, interchange, unrolljam, ollv)
//
// The two-argument form (`interchange<0,1>` today) names an adjacent nest
// level pair; only passes with PassInfo::has_param2 accept it.
//
// The `vl` keyword parameter (only `llv<vl>` today) selects the predicated
// whole-loop regime on vector-length-agnostic targets; it parses to the
// kVLParam sentinel (registry.hpp).
//
// Whitespace around commas is allowed and dropped; the canonical spec()
// round-trips through the instantiated pass names. Parse errors carry the
// 0-based character position of the offending token so CLI validation
// (`veccost passes --pipeline <spec>`) can point at it.
//
// Pipeline::run threads one PipelineState through the passes, stops at the
// first failure (strong guarantee per pass: the returned state is the state
// before the failing pass), and after every successful pass hands the
// pass's preserved-analyses declaration to AnalysisManager::transfer so
// surviving analyses follow the kernel to its new cache key.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "xform/analysis_manager.hpp"
#include "xform/pass.hpp"
#include "xform/registry.hpp"

namespace veccost::xform {

/// One element of a parsed spec, before instantiation.
struct PassSpec {
  std::string base;           ///< registry base name
  bool has_param = false;     ///< a `<N>` was written
  int param = 0;
  bool has_param2 = false;    ///< a second `,M` argument was written
  int param2 = 0;
  std::size_t position = 0;   ///< 0-based char offset of the name in the spec
};

/// Result of parsing a spec string (syntax only; registry validation happens
/// in Pipeline::parse).
struct SpecParse {
  bool ok = false;
  std::string error;          ///< human message, position included
  std::size_t position = 0;   ///< 0-based char offset of the error
  std::vector<PassSpec> passes;
};

/// Split a pipeline spec into pass elements. Syntax errors (empty element,
/// bad parameter, trailing junk) are reported with their character position.
[[nodiscard]] SpecParse parse_pipeline_spec(std::string_view spec);

/// Outcome of running a pipeline over one kernel.
struct PipelineResult {
  bool ok = false;
  PipelineState state;        ///< final state; pre-failure state when !ok
  std::string failed_pass;    ///< instantiated name of the failing pass
  std::size_t failed_index = 0;
  std::string reason;
};

class Pipeline {
 public:
  /// Parse + instantiate every pass of `spec`. Check valid() before use:
  /// an invalid pipeline has error() and error_position() set and no passes.
  [[nodiscard]] static Pipeline parse(std::string_view spec);

  Pipeline() = default;
  Pipeline(Pipeline&&) = default;
  Pipeline& operator=(Pipeline&&) = default;

  [[nodiscard]] bool valid() const { return error_.empty(); }
  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] std::size_t error_position() const { return error_position_; }

  /// Canonical spec text: instantiated pass names joined by ','. Parsing the
  /// canonical spec yields an equal pipeline (round-trip).
  [[nodiscard]] const std::string& spec() const { return spec_; }

  [[nodiscard]] std::size_t size() const { return passes_.size(); }
  [[nodiscard]] const TransformPass& pass(std::size_t i) const {
    return *passes_[i];
  }

  /// Run every pass in order over a state seeded with `kernel`, analyses
  /// served (and carried forward) by `analyses`.
  [[nodiscard]] PipelineResult run(const ir::LoopKernel& kernel,
                                   const machine::TargetDesc& target,
                                   AnalysisManager& analyses) const;

 private:
  std::string spec_;
  std::string error_;
  std::size_t error_position_ = 0;
  std::vector<std::unique_ptr<TransformPass>> passes_;
};

}  // namespace veccost::xform
