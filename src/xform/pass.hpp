// The transform-pass interface of the unified pipeline.
//
// The paper's experiment matrix is one composition problem — legality →
// (unroll → SLP → reroll | LLV at some VF) → lowering → execution — and this
// layer gives it LLVM-new-PM-style names: a TransformPass rewrites a
// PipelineState, declares which cached analyses its rewrite preserves, and a
// Pipeline (pipeline.hpp) chains passes parsed from a textual spec such as
// "unroll<4>,slp,reroll". The existing free functions (vectorize_loop,
// slp_vectorize, unroll_loop, reroll_loop, machine::lower) stay the
// implementation; passes are thin adapters over them that route every
// analysis query through the AnalysisManager (analysis_manager.hpp).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ir/loop.hpp"
#include "machine/lowering.hpp"
#include "machine/target.hpp"
#include "vectorizer/vplan.hpp"

namespace veccost::xform {

class AnalysisManager;

/// The analyses the AnalysisManager caches (analysis/ layer results).
enum class AnalysisId : unsigned {
  Legality = 0,   ///< analysis::check_legality (dependence + phi verdict)
  Dependence,     ///< analysis::analyze_dependences
  PhiClasses,     ///< analysis::classify_phis
  Features,       ///< analysis::extract_features (one slot per FeatureSet)
  NestDependence, ///< analysis::analyze_nest_dependences
};
inline constexpr unsigned kAnalysisCount = 5;

[[nodiscard]] const char* to_string(AnalysisId id);

/// Which cached analyses survive a pass, as declared by the pass itself.
/// Preserved analyses are carried forward to the transformed kernel's cache
/// key; everything else is invalidated (see AnalysisManager::transfer).
class PreservedAnalyses {
 public:
  [[nodiscard]] static PreservedAnalyses all() {
    PreservedAnalyses p;
    p.mask_ = (1u << kAnalysisCount) - 1;
    return p;
  }
  [[nodiscard]] static PreservedAnalyses none() { return {}; }

  PreservedAnalyses& preserve(AnalysisId id) {
    mask_ |= 1u << static_cast<unsigned>(id);
    return *this;
  }
  [[nodiscard]] bool preserved(AnalysisId id) const {
    return (mask_ >> static_cast<unsigned>(id)) & 1u;
  }
  [[nodiscard]] bool empty() const { return mask_ == 0; }

 private:
  unsigned mask_ = 0;
};

/// The value a pipeline threads through its passes. Passes that rewrite the
/// kernel replace `kernel` (and must report what they preserved); passes
/// that only derive artifacts (slp, lower) attach them alongside.
struct PipelineState {
  ir::LoopKernel kernel;
  /// Set by llv when the widening is only legal behind a runtime overlap
  /// check: the widened kernel is for cost analysis, not execution.
  bool runtime_check = false;
  /// SLP pack plan for `kernel`, set by the slp pass (cleared by any pass
  /// that replaces the kernel — the member ids would dangle).
  std::optional<vectorizer::SlpPlan> slp;
  /// Micro-op program for `kernel`, set by the lower pass.
  std::optional<machine::LoweredProgram> lowered;
  /// Decision notes accumulated across passes, in pass order.
  std::vector<std::string> notes;
};

/// Uniform outcome of one pass application.
struct PassResult {
  bool ok = false;
  std::string reason;  ///< why not, when !ok
  /// Cached analyses still valid for the state's kernel after this pass.
  PreservedAnalyses preserved = PreservedAnalyses::none();

  [[nodiscard]] static PassResult success(
      PreservedAnalyses preserved = PreservedAnalyses::all()) {
    PassResult r;
    r.ok = true;
    r.preserved = preserved;
    return r;
  }
  [[nodiscard]] static PassResult failure(std::string reason) {
    PassResult r;
    r.reason = std::move(reason);
    return r;
  }
};

/// Everything a pass may consult besides the state it rewrites.
struct PassContext {
  const machine::TargetDesc& target;
  AnalysisManager& analyses;
};

class TransformPass {
 public:
  virtual ~TransformPass() = default;

  /// Instantiated spec name, e.g. "llv<4>", "unroll<2>", "slp".
  [[nodiscard]] virtual const std::string& name() const = 0;

  /// Apply the transform to `state`. On failure the state is left unchanged
  /// (strong guarantee — pipelines report the failing pass and stop).
  [[nodiscard]] virtual PassResult run(PipelineState& state,
                                       PassContext& ctx) const = 0;
};

}  // namespace veccost::xform
