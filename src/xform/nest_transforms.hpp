// IR-level loop-nest restructuring: interchange and unroll-and-jam.
//
// These rewrites act on the kernel's NestInfo and index coefficients only —
// they never touch the execution engines. Interchange swaps an adjacent
// level pair (either two outer levels, or the innermost-outer level with the
// `i` loop itself when the inner trip count is constant); unroll-and-jam
// replicates the body across consecutive iterations of the innermost-outer
// level and shrinks that level's trip accordingly. Dependence legality is
// the caller's business (analysis/nest_dependence.hpp); the transforms here
// enforce only the structural preconditions that make the rewrite
// expressible at all and verify the result.
#pragma once

#include <string>

#include "ir/loop.hpp"

namespace veccost::xform {

struct NestTransformResult {
  bool ok = false;
  ir::LoopKernel kernel;
  std::string reason;  ///< why not, when !ok
};

/// Swap the adjacent nest level pair (a, b = a + 1), numbered over the FULL
/// nest: 0 = outermost, depth-1 = the innermost `i` loop. Outer-outer pairs
/// swap NestInfo entries, per-level index coefficients, and OuterIndVar
/// levels. The innermost pair additionally trades the `i` loop with the last
/// outer level, which requires an n-independent inner trip count
/// (trip.num == 0) and a phi- and break-free scalar body.
[[nodiscard]] NestTransformResult interchange_levels(const ir::LoopKernel& k,
                                                     int a, int b);

/// Unroll-and-jam: replicate the body `factor` times across consecutive
/// iterations of the innermost-outer level (whose trip must divide by the
/// factor) and jam the copies into one inner loop. Requires a scalar,
/// phi- and break-free body.
[[nodiscard]] NestTransformResult unroll_and_jam(const ir::LoopKernel& k,
                                                 int factor);

}  // namespace veccost::xform
