#include "xform/analysis_manager.hpp"

#include "obs/metrics.hpp"
#include "support/error.hpp"
#include "support/hash.hpp"

namespace veccost::xform {

const char* to_string(AnalysisId id) {
  switch (id) {
    case AnalysisId::Legality: return "legality";
    case AnalysisId::Dependence: return "dependence";
    case AnalysisId::PhiClasses: return "phi-classes";
    case AnalysisId::Features: return "features";
    case AnalysisId::NestDependence: return "nest-dependence";
  }
  return "?";
}

std::uint64_t kernel_content_hash(const ir::LoopKernel& kernel) {
  support::ContentHasher h;
  h.mix(kernel.default_n);
  h.mix(kernel.trip.start);
  h.mix(kernel.trip.step);
  h.mix(kernel.trip.num);
  h.mix(kernel.trip.den);
  h.mix(kernel.trip.offset);
  h.mix(static_cast<std::uint64_t>(kernel.nest.size()));
  for (const ir::LoopLevel& lvl : kernel.nest.levels) {
    h.mix(lvl.trip);
    h.mix(lvl.start);
    h.mix(lvl.step);
  }
  h.mix(static_cast<std::uint64_t>(kernel.arrays.size()));
  for (const ir::ArrayDecl& a : kernel.arrays) {
    h.mix(static_cast<int>(a.elem));
    h.mix(a.len_scale);
    h.mix(a.len_offset);
  }
  h.mix(static_cast<std::uint64_t>(kernel.params.size()));
  for (const double p : kernel.params) h.mix(p);
  h.mix(static_cast<std::uint64_t>(kernel.body.size()));
  for (const ir::Instruction& inst : kernel.body) {
    h.mix(static_cast<int>(inst.op));
    h.mix(static_cast<int>(inst.type.elem));
    h.mix(inst.type.lanes);
    for (const ir::ValueId v : inst.operands) h.mix(static_cast<int>(v));
    h.mix(static_cast<int>(inst.predicate));
    h.mix(inst.const_value);
    h.mix(inst.param_index);
    h.mix(inst.array);
    h.mix(inst.index.scale_i);
    h.mix(static_cast<std::uint64_t>(inst.index.outer.size()));
    for (const std::int64_t s : inst.index.outer) h.mix(s);
    h.mix(inst.index.n_scale);
    h.mix(inst.index.offset);
    h.mix(static_cast<int>(inst.index.indirect));
    h.mix(inst.outer_level);
    h.mix(inst.phi_init);
    h.mix(inst.phi_init_param);
    h.mix(static_cast<int>(inst.phi_update));
    h.mix(static_cast<int>(inst.reduction));
  }
  h.mix(static_cast<std::uint64_t>(kernel.live_outs.size()));
  for (const ir::ValueId v : kernel.live_outs) h.mix(static_cast<int>(v));
  h.mix(kernel.vf);
  h.mix(kernel.predicated);
  return h.value();
}

std::uint64_t options_hash(const analysis::LegalityOptions& opts) {
  support::ContentHasher h;
  h.mix(opts.allow_first_order_recurrence);
  h.mix(opts.allow_masked_stores);
  h.mix(opts.allow_gather);
  h.mix(opts.vf_cap);
  return h.value();
}

AnalysisManager::Entry& AnalysisManager::lookup(const Key& key, bool& hit) {
  const auto [it, inserted] = cache_.try_emplace(key);
  hit = !inserted;
  if (hit) {
    ++stats_.hits;
    VECCOST_COUNTER_ADD("xform.analysis.hit", 1);
  } else {
    ++stats_.misses;
    VECCOST_COUNTER_ADD("xform.analysis.miss", 1);
  }
  return it->second;
}

const analysis::Legality& AnalysisManager::legality(
    const ir::LoopKernel& kernel, const analysis::LegalityOptions& opts) {
  const Key key{kernel_content_hash(kernel), options_hash(opts),
                static_cast<unsigned>(AnalysisId::Legality)};
  bool hit = false;
  Entry& entry = lookup(key, hit);
  if (!hit)
    entry.legality = std::make_unique<analysis::Legality>(
        analysis::check_legality(kernel, opts));
  return *entry.legality;
}

const analysis::DependenceInfo& AnalysisManager::dependence(
    const ir::LoopKernel& kernel) {
  const Key key{kernel_content_hash(kernel), 0,
                static_cast<unsigned>(AnalysisId::Dependence)};
  bool hit = false;
  Entry& entry = lookup(key, hit);
  if (!hit)
    entry.dependence = std::make_unique<analysis::DependenceInfo>(
        analysis::analyze_dependences(kernel));
  return *entry.dependence;
}

const std::vector<analysis::PhiInfo>& AnalysisManager::phi_classes(
    const ir::LoopKernel& kernel) {
  const Key key{kernel_content_hash(kernel), 0,
                static_cast<unsigned>(AnalysisId::PhiClasses)};
  bool hit = false;
  Entry& entry = lookup(key, hit);
  if (!hit)
    entry.phis = std::make_unique<std::vector<analysis::PhiInfo>>(
        analysis::classify_phis(kernel));
  return *entry.phis;
}

const analysis::NestDependenceInfo& AnalysisManager::nest_dependence(
    const ir::LoopKernel& kernel) {
  const Key key{kernel_content_hash(kernel), 0,
                static_cast<unsigned>(AnalysisId::NestDependence)};
  bool hit = false;
  Entry& entry = lookup(key, hit);
  if (!hit)
    entry.nest_dependence = std::make_unique<analysis::NestDependenceInfo>(
        analysis::analyze_nest_dependences(kernel));
  return *entry.nest_dependence;
}

const std::vector<double>& AnalysisManager::features(
    const ir::LoopKernel& kernel, analysis::FeatureSet set) {
  // The feature set plays the role of the options hash (offset by one so
  // Counts == 0 does not collide with the option-free analyses' key).
  const Key key{kernel_content_hash(kernel),
                static_cast<std::uint64_t>(set) + 1,
                static_cast<unsigned>(AnalysisId::Features)};
  bool hit = false;
  Entry& entry = lookup(key, hit);
  if (!hit)
    entry.features = std::make_unique<std::vector<double>>(
        analysis::extract_features(kernel, set));
  return *entry.features;
}

void AnalysisManager::transfer(const ir::LoopKernel& from,
                               const ir::LoopKernel& to,
                               PreservedAnalyses preserved) {
  const std::uint64_t from_hash = kernel_content_hash(from);
  const std::uint64_t to_hash = kernel_content_hash(to);
  if (from_hash == to_hash) return;  // nothing changed; everything stands

  // Drop anything cached under the new key whose analysis was not declared
  // preserved, then carry preserved entries over.
  for (auto it = cache_.lower_bound(Key{to_hash, 0, 0});
       it != cache_.end() && it->first.kernel == to_hash;) {
    if (!preserved.preserved(static_cast<AnalysisId>(it->first.analysis))) {
      VECCOST_COUNTER_ADD("xform.analysis.invalidated", 1);
      it = cache_.erase(it);
    } else {
      ++it;
    }
  }
  if (preserved.empty()) return;

  std::vector<std::pair<Key, const Entry*>> carried;
  for (auto it = cache_.lower_bound(Key{from_hash, 0, 0});
       it != cache_.end() && it->first.kernel == from_hash; ++it) {
    if (preserved.preserved(static_cast<AnalysisId>(it->first.analysis)))
      carried.emplace_back(
          Key{to_hash, it->first.options, it->first.analysis}, &it->second);
  }
  for (const auto& [key, src] : carried) {
    Entry copy;
    if (src->legality)
      copy.legality = std::make_unique<analysis::Legality>(*src->legality);
    if (src->dependence)
      copy.dependence =
          std::make_unique<analysis::DependenceInfo>(*src->dependence);
    if (src->phis)
      copy.phis =
          std::make_unique<std::vector<analysis::PhiInfo>>(*src->phis);
    if (src->features)
      copy.features = std::make_unique<std::vector<double>>(*src->features);
    if (src->nest_dependence)
      copy.nest_dependence = std::make_unique<analysis::NestDependenceInfo>(
          *src->nest_dependence);
    cache_.insert_or_assign(key, std::move(copy));
    VECCOST_COUNTER_ADD("xform.analysis.carried", 1);
  }
}

void AnalysisManager::clear() { cache_.clear(); }

}  // namespace veccost::xform
