// TSVC category: scalar and array expansion (s251..s261). Within-iteration
// temporaries are plain SSA values; cross-iteration temporaries become phis
// classified as first-order recurrences (vectorizable via splice) or serial
// recurrences (rejected). Where the C source reads the temporary before
// assigning it, the update expression is authored first — a pure-value
// reordering with identical semantics.
#include "ir/builder.hpp"
#include "tsvc/suite_internal.hpp"

namespace veccost::tsvc::detail {

using B = ir::LoopBuilder;
using ir::ScalarType;

namespace {
constexpr std::int64_t kN = 262144;
constexpr std::int64_t kR = 256;
constexpr std::int64_t kOuter = 64;
}  // namespace

void register_expansion(Registry& r) {
  add(r, [] {
    B b("s251", "expansion", "s = b[i]+c[i]*d[i]; a[i] = s*s");
    b.default_n(kN);
    const int a = b.array("a"), bb = b.array("b"), c = b.array("c"),
              d = b.array("d");
    auto s = b.fma(b.load(c, B::at(1)), b.load(d, B::at(1)), b.load(bb, B::at(1)));
    b.store(a, B::at(1), b.mul(s, s));
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s1251", "expansion", "s = b[i]+c[i]; b[i] = a[i]+d[i]; a[i] = s*e[i]");
    b.default_n(kN);
    const int a = b.array("a"), bb = b.array("b"), c = b.array("c"),
              d = b.array("d"), e = b.array("e");
    auto s = b.add(b.load(bb, B::at(1)), b.load(c, B::at(1)));
    b.store(bb, B::at(1), b.add(b.load(a, B::at(1)), b.load(d, B::at(1))));
    b.store(a, B::at(1), b.mul(s, b.load(e, B::at(1))));
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s2251", "expansion",
        "cross-iteration s: a[i] = s*e[i]; s = b[i]+c[i] (first-order rec.)");
    b.default_n(kN);
    const int a = b.array("a"), bb = b.array("b"), c = b.array("c"),
              e = b.array("e");
    auto s = b.phi(0.0);
    auto upd = b.add(b.load(bb, B::at(1)), b.load(c, B::at(1)));
    b.store(a, B::at(1), b.mul(s, b.load(e, B::at(1))));
    b.set_phi_update(s, upd);
    b.live_out(s);
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s3251", "expansion",
        "a[i+1] = b[i]+c[i]; b[i] = c[i]*e[i]; d[i] = a[i]*e[i]");
    b.default_n(kN);
    b.trip({.offset = -1});
    const int a = b.array("a"), bb = b.array("b"), c = b.array("c"),
              d = b.array("d"), e = b.array("e");
    b.store(a, B::at(1, 1), b.add(b.load(bb, B::at(1)), b.load(c, B::at(1))));
    b.store(bb, B::at(1), b.mul(b.load(c, B::at(1)), b.load(e, B::at(1))));
    b.store(d, B::at(1), b.mul(b.load(a, B::at(1)), b.load(e, B::at(1))));
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s252", "expansion", "t carried: s = b[i]*c[i]; a[i] = s + t; t = s");
    b.default_n(kN);
    const int a = b.array("a"), bb = b.array("b"), c = b.array("c");
    auto t = b.phi(0.0);
    auto s = b.mul(b.load(bb, B::at(1)), b.load(c, B::at(1)));
    b.store(a, B::at(1), b.add(s, t));
    b.set_phi_update(t, s);
    b.live_out(t);
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s253", "expansion",
        "if (a[i] > b[i]) { s = a[i]-b[i]*d[i]; c[i] += s; a[i] = s; }");
    b.default_n(kN);
    const int a = b.array("a"), bb = b.array("b"), c = b.array("c"),
              d = b.array("d");
    auto va = b.load(a, B::at(1));
    auto vb = b.load(bb, B::at(1));
    auto mask = b.cmp_gt(va, vb);
    auto s = b.sub(va, b.mul(vb, b.load(d, B::at(1))));
    auto cs = b.add(b.load(c, B::at(1)), s);
    b.store(c, B::at(1), cs, mask);
    b.store(a, B::at(1), s, mask);
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s254", "expansion", "wrap-around x: a[i] = (b[i]+x)*0.5; x = b[i]");
    b.default_n(kN);
    const int a = b.array("a"), bb = b.array("b");
    auto x = b.phi(1.0);  // paper seeds x = b[n-1]; any fixed seed preserves shape
    auto vb = b.load(bb, B::at(1));
    b.store(a, B::at(1), b.mul(b.add(vb, x), b.fconst(0.5)));
    b.set_phi_update(x, vb);
    b.live_out(x);
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s255", "expansion",
        "two wrap-arounds: a[i] = (b[i]+x+y)/3; y = x; x = b[i]");
    b.default_n(kN);
    const int a = b.array("a"), bb = b.array("b");
    auto y = b.phi(1.0);
    auto x = b.phi(1.0);
    auto vb = b.load(bb, B::at(1));
    auto sum = b.add(b.add(vb, x), y);
    b.store(a, B::at(1), b.mul(sum, b.fconst(0.333f)));
    b.set_phi_update(x, vb);
    b.set_phi_update(y, x);
    b.live_out(x);
    b.live_out(y);
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s256", "expansion",
        "a[j] = aa[j][i] - a[j-1]: 1-D recurrence under a 2-D nest");
    b.trip({.start = 1, .num = 0, .offset = kR});
    b.outer(kOuter);
    const int a = b.array("a", ScalarType::F32, 0, kR);
    const int aa = b.array("aa", ScalarType::F32, 0, kR * kR);
    auto x = b.sub(b.load(aa, B::at2(kR, 1)), b.load(a, B::at(1, -1)));
    b.store(a, B::at(1), x);
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s257", "expansion",
        "a[i] = aa[j][i] - a[i-1]; aa[j][i] = a[i] + bb[j][i]");
    b.trip({.start = 1, .num = 0, .offset = kR});
    b.outer(kOuter);
    const int a = b.array("a", ScalarType::F32, 0, kR);
    const int aa = b.array("aa", ScalarType::F32, 0, kR * kR);
    const int bbm = b.array("bb", ScalarType::F32, 0, kR * kR);
    auto x = b.sub(b.load(aa, B::at2(1, kR)), b.load(a, B::at(1, -1)));
    b.store(a, B::at(1), x);
    b.store(aa, B::at2(1, kR), b.add(x, b.load(bbm, B::at2(1, kR))));
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s258", "expansion",
        "conditional scalar: if (a[i]>0) s = d[i]*d[i]; b[i] = s*c[i]+d[i]");
    b.default_n(kN);
    const int a = b.array("a"), bb = b.array("b"), c = b.array("c"),
              d = b.array("d"), e = b.array("e");
    auto s = b.phi(0.0);
    auto vd = b.load(d, B::at(1));
    auto mask = b.cmp_gt(b.load(a, B::at(1)), b.fconst(1.5));
    auto upd = b.select(mask, b.mul(vd, vd), s);
    b.store(bb, B::at(1), b.fma(upd, b.load(c, B::at(1)), vd));
    b.store(e, B::at(1), b.mul(b.add(upd, b.fconst(1.0)), vd));
    b.set_phi_update(s, upd);
    b.live_out(s);
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s261", "expansion",
        "t = a[i]+b[i]; a[i] = t+c[i-1]; t = c[i]*d[i]; c[i] = t");
    b.default_n(kN);
    b.trip({.start = 1});
    const int a = b.array("a"), bb = b.array("b"), c = b.array("c"),
              d = b.array("d");
    auto t1 = b.add(b.load(a, B::at(1)), b.load(bb, B::at(1)));
    b.store(a, B::at(1), b.add(t1, b.load(c, B::at(1, -1))));
    auto t2 = b.mul(b.load(c, B::at(1)), b.load(d, B::at(1)));
    b.store(c, B::at(1), t2);
    return std::move(b).finish();
  });
}

}  // namespace veccost::tsvc::detail
