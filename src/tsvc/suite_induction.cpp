// TSVC category: induction variable recognition (s121..s128).
//
// Auxiliary induction variables that are affine in the loop counter are
// authored directly as affine subscripts (the recognition TSVC tests for);
// conditional inductions stay as phi recurrences and are expected to block
// vectorization, as they do in LLVM.
#include "ir/builder.hpp"
#include "tsvc/suite_internal.hpp"

namespace veccost::tsvc::detail {

using B = ir::LoopBuilder;
using ir::ReductionKind;
using ir::ScalarType;

namespace {
constexpr std::int64_t kN = 262144;
constexpr std::int64_t kR = 256;
constexpr std::int64_t kOuter = 64;
}  // namespace

void register_induction(Registry& r) {
  add(r, [] {
    B b("s121", "induction", "j = i+1; a[i] = a[j] + b[i]");
    b.default_n(kN);
    b.trip({.offset = -1});
    const int a = b.array("a"), bb = b.array("b");
    b.store(a, B::at(1), b.add(b.load(a, B::at(1, 1)), b.load(bb, B::at(1))));
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s122", "induction", "a[i] += b[n-1-i]: reversed secondary induction");
    b.default_n(kN);
    const int a = b.array("a"), bb = b.array("b");
    auto x = b.add(b.load(a, B::at(1)), b.load(bb, B::at_n(-1, 1, -1)));
    b.store(a, B::at(1), x);
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s123", "induction",
        "conditionally incremented j indexes the output (phi-carried index)");
    b.default_n(kN);
    b.trip({.num = 1, .den = 2});
    const int a = b.array("a", ScalarType::F32, 2, 2);
    const int bb = b.array("b"), c = b.array("c"), d = b.array("d"),
              e = b.array("e");
    auto j = b.phi(0.0, ScalarType::I64);
    auto one = b.iconst(1);
    auto x = b.fma(b.load(d, B::at(1)), b.load(e, B::at(1)), b.load(bb, B::at(1)));
    b.store(a, B::via(j), x);
    auto cond = b.cmp_gt(b.load(c, B::at(1)), b.fconst(1.5));
    auto inc = b.select(cond, b.iconst(2), one);
    auto jn = b.add(j, inc);
    b.set_phi_update(j, jn);
    b.live_out(j);
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s124", "induction", "j incremented in both branches, value selected");
    b.default_n(kN);
    const int a = b.array("a", ScalarType::F32, 1, 2);
    const int bb = b.array("b"), c = b.array("c"), d = b.array("d"),
              e = b.array("e");
    auto j = b.phi(0.0, ScalarType::I64);
    auto de = b.mul(b.load(d, B::at(1)), b.load(e, B::at(1)));
    auto cond = b.cmp_gt(b.load(bb, B::at(1)), b.fconst(1.5));
    auto v = b.select(cond, b.add(b.load(bb, B::at(1)), de),
                      b.add(b.load(c, B::at(1)), de));
    b.store(a, B::via(j), v);
    auto jn = b.add(j, b.iconst(1));
    b.set_phi_update(j, jn);
    b.live_out(j);
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s125", "induction", "flat[k++] = aa[i][j] + bb[i][j]*cc[i][j]");
    b.trip({.num = 0, .offset = kR});
    b.outer(kOuter);
    const int flat = b.array("flat", ScalarType::F32, 0, kOuter * kR);
    const int aa = b.array("aa", ScalarType::F32, 0, kOuter * kR);
    const int bbm = b.array("bb", ScalarType::F32, 0, kOuter * kR);
    const int cc = b.array("cc", ScalarType::F32, 0, kOuter * kR);
    auto x = b.fma(b.load(bbm, B::at2(1, kR)), b.load(cc, B::at2(1, kR)),
                   b.load(aa, B::at2(1, kR)));
    b.store(flat, B::at2(1, kR), x);
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s126", "induction", "bb[j][i] = bb[j-1][i] + flat[k]*cc[j][i] (column)");
    b.trip({.start = 1, .num = 0, .offset = kR});
    b.outer(kOuter);
    const int bbm = b.array("bb", ScalarType::F32, 0, kR * kR);
    const int cc = b.array("cc", ScalarType::F32, 0, kR * kR);
    const int flat = b.array("flat", ScalarType::F32, 0, kR * kR);
    // inner i walks rows within column j (scale kR); previous-row read.
    auto x = b.fma(b.load(flat, B::at2(1, kR)), b.load(cc, B::at2(kR, 1)),
                   b.load(bbm, B::at2(kR, 1, -kR)));
    b.store(bbm, B::at2(kR, 1), x);
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s127", "induction", "a[2i] and a[2i+1] written per iteration");
    b.default_n(kN);
    b.trip({.num = 1, .den = 2});
    const int a = b.array("a", ScalarType::F32, 2, 2);
    const int bb = b.array("b"), c = b.array("c"), d = b.array("d"),
              e = b.array("e");
    auto x1 = b.fma(b.load(c, B::at(1)), b.load(d, B::at(1)), b.load(bb, B::at(1)));
    b.store(a, B::at(2), x1);
    auto x2 = b.fma(b.load(d, B::at(1)), b.load(e, B::at(1)), b.load(bb, B::at(1)));
    b.store(a, B::at(2, 1), x2);
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s128", "induction",
        "coupled inductions: a[i] = b[2i] - d[i]; b[2i] = a[i] + c[2i]");
    b.default_n(kN);
    b.trip({.num = 1, .den = 2});
    const int a = b.array("a");
    const int bb = b.array("b", ScalarType::F32, 2, 2);
    const int c = b.array("c", ScalarType::F32, 2, 2);
    const int d = b.array("d");
    auto x = b.sub(b.load(bb, B::at(2)), b.load(d, B::at(1)));
    b.store(a, B::at(1), x);
    auto y = b.add(x, b.load(c, B::at(2)));
    b.store(bb, B::at(2), y);
    return std::move(b).finish();
  });
}

}  // namespace veccost::tsvc::detail
