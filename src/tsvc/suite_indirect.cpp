// TSVC category: indirect addressing (s4112..s4121). Indirect loads become
// gathers (legal, expensive); indirect stores are rejected (a scatter's
// write-write conflicts cannot be proven safe).
#include "ir/builder.hpp"
#include "tsvc/suite_internal.hpp"

namespace veccost::tsvc::detail {

using B = ir::LoopBuilder;
using ir::ReductionKind;
using ir::ScalarType;

namespace {
constexpr std::int64_t kN = 262144;
}  // namespace

void register_indirect(Registry& r) {
  add(r, [] {
    B b("s4112", "indirect", "a[i] += b[ip[i]] * s (gathered axpy)");
    b.default_n(kN);
    const int a = b.array("a"), bb = b.array("b");
    const int ip = b.array("ip", ScalarType::I32);
    auto s = b.param(1.5f);
    auto idx = b.load(ip, B::at(1));
    auto x = b.fma(b.load(bb, B::via(idx)), s, b.load(a, B::at(1)));
    b.store(a, B::at(1), x);
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s4113", "indirect", "a[ip[i]] = b[ip[i]] + c[i] (indirect RMW)");
    b.default_n(kN);
    const int a = b.array("a"), bb = b.array("b"), c = b.array("c");
    const int ip = b.array("ip", ScalarType::I32);
    auto idx = b.load(ip, B::at(1));
    auto x = b.add(b.load(bb, B::via(idx)), b.load(c, B::at(1)));
    b.store(a, B::via(idx), x);
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s4114", "indirect", "a[i] = b[i] + c[ip[i]] (single gather)");
    b.default_n(kN);
    const int a = b.array("a"), bb = b.array("b"), c = b.array("c");
    const int ip = b.array("ip", ScalarType::I32);
    auto idx = b.load(ip, B::at(1));
    auto x = b.add(b.load(bb, B::at(1)), b.load(c, B::via(idx)));
    b.store(a, B::at(1), x);
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s4115", "indirect", "sum += a[i] * b[ip[i]] (gathered dot)");
    b.default_n(kN);
    const int a = b.array("a"), bb = b.array("b");
    const int ip = b.array("ip", ScalarType::I32);
    auto sum = b.phi(0.0);
    auto idx = b.load(ip, B::at(1));
    auto upd = b.fma(b.load(a, B::at(1)), b.load(bb, B::via(idx)), sum);
    b.set_phi_update(sum, upd, ReductionKind::Sum);
    b.live_out(sum);
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s4116", "indirect", "sum += a[ip[i]] * aa[j][i] (gather + strided)");
    b.default_n(kN);
    const int a = b.array("a"), aa = b.array("aa");
    const int ip = b.array("ip", ScalarType::I32);
    auto sum = b.phi(0.0);
    auto idx = b.load(ip, B::at(1));
    auto upd = b.fma(b.load(a, B::via(idx)), b.load(aa, B::at(1)), sum);
    b.set_phi_update(sum, upd, ReductionKind::Sum);
    b.live_out(sum);
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s4117", "indirect", "a[i] = b[i] + c[i/2] (computed subscript)");
    b.default_n(kN);
    const int a = b.array("a"), bb = b.array("b"), c = b.array("c");
    auto half = b.shr(b.indvar(), b.iconst(1));
    auto x = b.add(b.load(bb, B::at(1)), b.load(c, B::via(half)));
    b.store(a, B::at(1), x);
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s4121", "indirect", "a[i] += b[ip[i]] (plain gather accumulate)");
    b.default_n(kN);
    const int a = b.array("a"), bb = b.array("b");
    const int ip = b.array("ip", ScalarType::I32);
    auto idx = b.load(ip, B::at(1));
    auto x = b.add(b.load(a, B::at(1)), b.load(bb, B::via(idx)));
    b.store(a, B::at(1), x);
    return std::move(b).finish();
  });
}

}  // namespace veccost::tsvc::detail
