// TSVC categories: global data-flow analysis (s131..s152) and the
// control-flow/dependence-interaction tests s161/s1161/s162.
//
// s151/s152 test interprocedural data flow; following what any inlining
// compiler sees, they are authored in their inlined form.
#include "ir/builder.hpp"
#include "tsvc/suite_internal.hpp"

namespace veccost::tsvc::detail {

using B = ir::LoopBuilder;
using ir::ScalarType;

namespace {
constexpr std::int64_t kN = 262144;
constexpr std::int64_t kR = 256;
constexpr std::int64_t kOuter = 64;
}  // namespace

void register_global_dataflow(Registry& r) {
  add(r, [] {
    B b("s131", "global_dataflow", "m = 1: a[i] = a[i+m] + b[i]");
    b.default_n(kN);
    b.trip({.offset = -1});
    const int a = b.array("a"), bb = b.array("b");
    b.store(a, B::at(1), b.add(b.load(a, B::at(1, 1)), b.load(bb, B::at(1))));
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s132", "global_dataflow",
        "aa[j][i] = aa[k][i-1] + b[i]*c: distinct rows, no carried dep");
    b.trip({.start = 1, .num = 0, .offset = kR});
    const int aa = b.array("aa", ScalarType::F32, 0, 2 * kR);
    const int bb = b.array("b", ScalarType::F32, 0, kR);
    auto x = b.fma(b.load(bb, B::at(1)), b.fconst(2.0),
                   b.load(aa, B::at(1, kR - 1)));  // row 1, column i-1
    b.store(aa, B::at(1), x);                       // row 0, column i
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s141", "global_dataflow",
        "flat[j*R+i] = flat[j*R+i] + bb[j][i] (packed 2-D update)");
    b.trip({.num = 0, .offset = kR});
    b.outer(kOuter);
    const int flat = b.array("flat", ScalarType::F32, 0, kOuter * kR);
    const int bbm = b.array("bb", ScalarType::F32, 0, kOuter * kR);
    auto x = b.add(b.load(flat, B::at2(1, kR)), b.load(bbm, B::at2(1, kR)));
    b.store(flat, B::at2(1, kR), x);
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s151", "global_dataflow", "inlined call: a[i] = a[i+1] + b[i]");
    b.default_n(kN);
    b.trip({.offset = -1});
    const int a = b.array("a"), bb = b.array("b");
    b.store(a, B::at(1), b.add(b.load(a, B::at(1, 1)), b.load(bb, B::at(1))));
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s152", "global_dataflow",
        "inlined call writing through a pointer: b[i] = d[i]*e[i]; a[i] += b[i]*c[i]");
    b.default_n(kN);
    const int a = b.array("a"), bb = b.array("b"), c = b.array("c"),
              d = b.array("d"), e = b.array("e");
    auto prod = b.mul(b.load(d, B::at(1)), b.load(e, B::at(1)));
    b.store(bb, B::at(1), prod);
    auto x = b.fma(prod, b.load(c, B::at(1)), b.load(a, B::at(1)));
    b.store(a, B::at(1), x);
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s161", "global_dataflow",
        "exclusive branches: one writes a[i], the other c[i+1] (if-converted)");
    b.default_n(kN);
    b.trip({.offset = -1});
    const int a = b.array("a"), bb = b.array("b"), c = b.array("c", ScalarType::F32, 1, 2),
              d = b.array("d"), e = b.array("e");
    auto mask = b.cmp_lt(b.load(bb, B::at(1)), b.fconst(1.5));
    auto not_mask = b.cmp_ge(b.load(bb, B::at(1)), b.fconst(1.5));
    auto de = b.mul(b.load(d, B::at(1)), b.load(e, B::at(1)));
    auto x1 = b.add(b.load(c, B::at(1)), de);
    b.store(a, B::at(1), x1, not_mask);
    auto dd = b.mul(b.load(d, B::at(1)), b.load(d, B::at(1)));
    auto x2 = b.add(b.load(a, B::at(1)), dd);
    b.store(c, B::at(1, 1), x2, mask);
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s1161", "global_dataflow",
        "exclusive branches writing disjoint arrays (if-converted)");
    b.default_n(kN);
    const int a = b.array("a"), bb = b.array("b"), c = b.array("c"),
              d = b.array("d"), e = b.array("e");
    auto mask = b.cmp_lt(b.load(c, B::at(1)), b.fconst(1.5));
    auto not_mask = b.cmp_ge(b.load(c, B::at(1)), b.fconst(1.5));
    auto de = b.mul(b.load(d, B::at(1)), b.load(e, B::at(1)));
    auto x1 = b.add(b.load(c, B::at(1)), de);
    b.store(a, B::at(1), x1, not_mask);
    auto x2 = b.add(b.load(e, B::at(1)), de);
    b.store(bb, B::at(1), x2, mask);
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s162", "global_dataflow", "k = 1: a[i] = a[i+k] + b[i]");
    b.default_n(kN);
    b.trip({.offset = -1});
    const int a = b.array("a"), bb = b.array("b");
    b.store(a, B::at(1), b.add(b.load(a, B::at(1, 1)), b.load(bb, B::at(1))));
    return std::move(b).finish();
  });
}

}  // namespace veccost::tsvc::detail
