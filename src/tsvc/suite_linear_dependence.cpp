// TSVC category: linear dependence testing (s111..s1119) plus the classic
// s000 warm-up loop.
//
// Authoring conventions used across all suite files:
//  * descending C loops are rewritten as ascending loops over reversed
//    indices (at_n with negative scale);
//  * triangular 2-D loops (inner bound depends on the outer variable) are
//    approximated by rectangular nests that preserve the access pattern's
//    dependence structure — noted per kernel;
//  * conditional code is authored in if-converted form (compare + select /
//    predicated store).
#include "ir/builder.hpp"
#include "tsvc/suite_internal.hpp"

namespace veccost::tsvc::detail {

using B = ir::LoopBuilder;
using ir::LoopKernel;
using ir::ScalarType;
using ir::TripCount;

namespace {
constexpr std::int64_t kN = 262144;  // default 1-D problem size (TSVC LEN)
constexpr std::int64_t kR = 256;    // 2-D row stride (TSVC LEN2)
constexpr std::int64_t kOuter = 64; // 2-D outer trip count
}  // namespace

void register_linear_dependence(Registry& r) {
  add(r, [] {
    B b("s000", "linear_dependence", "a[i] = b[i] + 1");
    b.default_n(kN);
    const int a = b.array("a"), bb = b.array("b");
    b.store(a, B::at(1), b.add(b.load(bb, B::at(1)), b.fconst(1.0)));
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s111", "linear_dependence", "a[i] = a[i-1] + b[i], odd i only");
    b.default_n(kN);
    b.trip({.start = 1, .step = 2});
    const int a = b.array("a"), bb = b.array("b");
    b.store(a, B::at(1), b.add(b.load(a, B::at(1, -1)), b.load(bb, B::at(1))));
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s1111", "linear_dependence", "a[2i] = long expression over b,c,d");
    b.default_n(kN);
    b.trip({.num = 1, .den = 2});
    const int a = b.array("a", ScalarType::F32, 2);
    const int bb = b.array("b"), c = b.array("c"), d = b.array("d");
    auto vb = b.load(bb, B::at(1));
    auto vc = b.load(c, B::at(1));
    auto vd = b.load(d, B::at(1));
    auto t1 = b.mul(vc, vb);
    auto t2 = b.mul(vd, vb);
    auto t3 = b.mul(vc, vc);
    auto t4 = b.mul(vd, vb);
    auto t5 = b.mul(vc, vd);
    auto sum = b.add(b.add(b.add(b.add(t1, t2), t3), t4), t5);
    b.store(a, B::at(2), sum);
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s112", "linear_dependence",
        "descending a[i+1] = a[i] + b[i] (reversed ascending form)");
    b.default_n(kN);
    b.trip({.offset = -1});
    const int a = b.array("a"), bb = b.array("b");
    // i' ascending: a[n-1-i'] = a[n-2-i'] + b[n-2-i']
    auto x = b.add(b.load(a, B::at_n(-1, 1, -2)), b.load(bb, B::at_n(-1, 1, -2)));
    b.store(a, B::at_n(-1, 1, -1), x);
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s1112", "linear_dependence", "reversed copy a[i] = b[i] + 1 (descending)");
    b.default_n(kN);
    const int a = b.array("a"), bb = b.array("b");
    b.store(a, B::at_n(-1, 1, -1),
            b.add(b.load(bb, B::at_n(-1, 1, -1)), b.fconst(1.0)));
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s113", "linear_dependence", "a[i] = a[0] + b[i], i >= 1");
    b.default_n(kN);
    b.trip({.start = 1});
    const int a = b.array("a"), bb = b.array("b");
    b.store(a, B::at(1), b.add(b.load(a, B::at(0)), b.load(bb, B::at(1))));
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s1113", "linear_dependence",
        "a[i] = a[K] + b[i], store range crosses the fixed load");
    b.default_n(kN);
    const int a = b.array("a"), bb = b.array("b");
    b.store(a, B::at(1), b.add(b.load(a, B::at(0, 256)), b.load(bb, B::at(1))));
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s114", "linear_dependence",
        "transposed 2-D aa[j][i] = aa[i][j] + bb[j][i] (rectangular form)");
    b.trip({.num = 0, .offset = kR});
    b.outer(kOuter);
    const int aa = b.array("aa", ScalarType::F32, 0, kR * kR);
    const int bbm = b.array("bb", ScalarType::F32, 0, kR * kR);
    auto x = b.add(b.load(aa, B::at2(kR, 1)), b.load(bbm, B::at2(1, kR)));
    b.store(aa, B::at2(1, kR), x);
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s115", "linear_dependence",
        "a[i] -= aa[j][i] * a[j]: inner write feeds outer-indexed read");
    b.trip({.num = 0, .offset = kR});
    b.outer(kOuter);
    const int a = b.array("a", ScalarType::F32, 0, kR);
    const int aa = b.array("aa", ScalarType::F32, 0, kOuter * kR);
    auto aj = b.load(a, B::at2(0, 1));  // a[j]: invariant address per inner loop
    auto prod = b.mul(b.load(aa, B::at2(1, kR)), aj);
    b.store(a, B::at(1), b.sub(b.load(a, B::at(1)), prod));
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s1115", "linear_dependence",
        "aa[i][j] = aa[i][j]*cc[j][i] + bb[i][j]: row RMW with transposed read");
    b.trip({.num = 0, .offset = kR});
    b.outer(kOuter);
    const int aa = b.array("aa", ScalarType::F32, 0, kOuter * kR);
    const int bbm = b.array("bb", ScalarType::F32, 0, kOuter * kR);
    const int cc = b.array("cc", ScalarType::F32, 0, kR * kR);
    auto x = b.fma(b.load(aa, B::at2(1, kR)), b.load(cc, B::at2(kR, 1)),
                   b.load(bbm, B::at2(1, kR)));
    b.store(aa, B::at2(1, kR), x);
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s116", "linear_dependence", "5-statement unrolled a[i] = a[i+1]*a[i]");
    b.default_n(kN);
    b.trip({.step = 5, .offset = -5});
    const int a = b.array("a", ScalarType::F32, 1, 8);
    for (int u = 0; u < 5; ++u) {
      auto x = b.mul(b.load(a, B::at(1, u + 1)), b.load(a, B::at(1, u)));
      b.store(a, B::at(1, u), x);
    }
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s118", "linear_dependence",
        "a[i] += bb[j][i] * a[i-j+K]: outer-variable offset on a");
    b.trip({.start = 1, .num = 0, .offset = kR});
    b.outer(kOuter);
    const int a = b.array("a", ScalarType::F32, 0, kR + kOuter + 1);
    const int bbm = b.array("bb", ScalarType::F32, 0, kOuter * kR);
    auto prod =
        b.mul(b.load(bbm, B::at2(1, kR)), b.load(a, B::at2(1, -1, kOuter)));
    b.store(a, B::at(1), b.add(b.load(a, B::at(1)), prod));
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s119", "linear_dependence", "aa[i][j] = aa[i-1][j-1] + bb[i][j]");
    b.trip({.start = 1, .num = 0, .offset = kR});
    b.outer(kOuter);
    const int aa = b.array("aa", ScalarType::F32, 0, (kOuter + 1) * kR);
    const int bbm = b.array("bb", ScalarType::F32, 0, (kOuter + 1) * kR);
    // Outer index shifted by +1 row so aa[i-1][j-1] stays in bounds at j=0.
    auto x = b.add(b.load(aa, B::at2(1, kR, kR - kR - 1)),  // aa[(j)R + i - 1]
                   b.load(bbm, B::at2(1, kR, kR)));
    b.store(aa, B::at2(1, kR, kR), x);
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s1119", "linear_dependence", "aa[i][j] = aa[i-1][j] + bb[i][j]");
    b.trip({.num = 0, .offset = kR});
    b.outer(kOuter);
    const int aa = b.array("aa", ScalarType::F32, 0, (kOuter + 1) * kR);
    const int bbm = b.array("bb", ScalarType::F32, 0, (kOuter + 1) * kR);
    auto x = b.add(b.load(aa, B::at2(1, kR, 0)),  // previous row, same column
                   b.load(bbm, B::at2(1, kR, kR)));
    b.store(aa, B::at2(1, kR, kR), x);
    return std::move(b).finish();
  });
}

}  // namespace veccost::tsvc::detail
