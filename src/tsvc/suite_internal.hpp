// Internal: per-category registrars implemented in suite_*.cpp.
#pragma once

#include <vector>

#include "tsvc/kernel.hpp"

namespace veccost::tsvc::detail {

using Registry = std::vector<KernelInfo>;

void register_linear_dependence(Registry& r);
void register_induction(Registry& r);
void register_global_dataflow(Registry& r);
void register_symbolics(Registry& r);
void register_statement_reordering(Registry& r);
void register_loop_restructuring(Registry& r);
void register_node_splitting(Registry& r);
void register_expansion(Registry& r);
void register_control_flow(Registry& r);
void register_crossing_thresholds(Registry& r);
void register_reductions(Registry& r);
void register_recurrences(Registry& r);
void register_search_packing(Registry& r);
void register_indirect(Registry& r);
void register_misc(Registry& r);
void register_vector_idioms(Registry& r);

/// Helper used by every registrar.
inline void add(Registry& r, std::string name, std::string category,
                std::string description,
                std::function<ir::LoopKernel()> build) {
  r.push_back({std::move(name), std::move(category), std::move(description),
               std::move(build)});
}

/// Overload that harvests metadata from the built kernel (builds once to
/// probe; kernels are cheap to build).
inline void add(Registry& r, std::function<ir::LoopKernel()> build) {
  const ir::LoopKernel probe = build();
  r.push_back({probe.name, probe.category, probe.description, std::move(build)});
}

}  // namespace veccost::tsvc::detail
