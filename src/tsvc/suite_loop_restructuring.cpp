// TSVC categories: loop interchange (s231..s235) and loop rerolling
// (s351..s353). Interchange kernels carry their dependence along the inner
// loop (vectorizable only after interchanging, which we — like LLVM's LLV —
// do not do), except the dependence-free column traversals s1232/s2233-row.
// Rerolling kernels are authored as their unrolled sources.
#include "ir/builder.hpp"
#include "tsvc/suite_internal.hpp"

namespace veccost::tsvc::detail {

using B = ir::LoopBuilder;
using ir::ReductionKind;
using ir::ScalarType;

namespace {
constexpr std::int64_t kN = 262144;
constexpr std::int64_t kR = 256;
constexpr std::int64_t kOuter = 64;
}  // namespace

void register_loop_restructuring(Registry& r) {
  add(r, [] {
    B b("s231", "loop_interchange", "aa[j][i] = aa[j-1][i] + bb[j][i], inner j");
    b.trip({.start = 1, .num = 0, .offset = kR});
    b.outer(kOuter);
    const int aa = b.array("aa", ScalarType::F32, 0, kR * kR);
    const int bbm = b.array("bb", ScalarType::F32, 0, kR * kR);
    auto x = b.add(b.load(aa, B::at2(kR, 1, -kR)), b.load(bbm, B::at2(kR, 1)));
    b.store(aa, B::at2(kR, 1), x);
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s232", "loop_interchange",
        "aa[i][j] = aa[i-1][j]*aa[i-1][j] + bb[i][j], inner i walks rows");
    b.trip({.start = 1, .num = 0, .offset = kR});
    b.outer(kOuter);
    const int aa = b.array("aa", ScalarType::F32, 0, kR * kR);
    const int bbm = b.array("bb", ScalarType::F32, 0, kR * kR);
    auto prev = b.load(aa, B::at2(kR, 1, -kR));
    auto x = b.fma(prev, prev, b.load(bbm, B::at2(kR, 1)));
    b.store(aa, B::at2(kR, 1), x);
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s1232", "loop_interchange",
        "aa[i][j] = bb[i][j] + cc[i][j], column-major traversal, no dep");
    b.trip({.num = 0, .offset = kR});
    b.outer(kOuter);
    const int aa = b.array("aa", ScalarType::F32, 0, kR * kR);
    const int bbm = b.array("bb", ScalarType::F32, 0, kR * kR);
    const int cc = b.array("cc", ScalarType::F32, 0, kR * kR);
    auto x = b.add(b.load(bbm, B::at2(kR, 1)), b.load(cc, B::at2(kR, 1)));
    b.store(aa, B::at2(kR, 1), x);
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s233", "loop_interchange",
        "aa[j][i] = aa[j-1][i] + cc[j][i]; bb[j][i] = bb[j][i-1] + cc[j][i]");
    b.trip({.start = 1, .num = 0, .offset = kR});
    b.outer(kOuter);
    const int aa = b.array("aa", ScalarType::F32, 0, kR * kR);
    const int bbm = b.array("bb", ScalarType::F32, 0, kR * kR);
    const int cc = b.array("cc", ScalarType::F32, 0, kR * kR);
    auto x = b.add(b.load(aa, B::at2(kR, 1, -kR)), b.load(cc, B::at2(kR, 1)));
    b.store(aa, B::at2(kR, 1), x);
    auto y = b.add(b.load(bbm, B::at2(kR, 1, -kR)), b.load(cc, B::at2(kR, 1)));
    b.store(bbm, B::at2(kR, 1), y);
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s2233", "loop_interchange",
        "aa carried along inner loop; bb carried along outer loop only");
    b.trip({.start = 1, .num = 0, .offset = kR});
    b.outer(kOuter);
    const int aa = b.array("aa", ScalarType::F32, 0, kR * kR);
    const int bbm = b.array("bb", ScalarType::F32, 0, (kOuter + 1) * kR);
    const int cc = b.array("cc", ScalarType::F32, 0, kR * kR);
    auto x = b.add(b.load(aa, B::at2(kR, 1, -kR)), b.load(cc, B::at2(kR, 1)));
    b.store(aa, B::at2(kR, 1), x);
    auto y = b.add(b.load(bbm, B::at2(1, kR, 0)), b.load(cc, B::at2(1, kR)));
    b.store(bbm, B::at2(1, kR, kR), y);
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s235", "loop_interchange",
        "aa[j][i] = aa[j-1][i] + bb[j][i]*a[i]: carried along inner j");
    b.trip({.start = 1, .num = 0, .offset = kR});
    b.outer(kOuter);
    const int a = b.array("a", ScalarType::F32, 0, kOuter);
    const int aa = b.array("aa", ScalarType::F32, 0, kR * kR);
    const int bbm = b.array("bb", ScalarType::F32, 0, kR * kR);
    auto ai = b.load(a, B::at2(0, 1));  // a[j]: inner-invariant
    auto x = b.fma(b.load(bbm, B::at2(kR, 1)), ai, b.load(aa, B::at2(kR, 1, -kR)));
    b.store(aa, B::at2(kR, 1), x);
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s351", "loop_rerolling", "5x unrolled a[i] += alpha * b[i]");
    b.default_n(kN);
    b.trip({.step = 5});
    const int a = b.array("a", ScalarType::F32, 1, 8);
    const int bb = b.array("b", ScalarType::F32, 1, 8);
    auto alpha = b.param(1.5f);
    for (int u = 0; u < 5; ++u) {
      auto x = b.fma(alpha, b.load(bb, B::at(1, u)), b.load(a, B::at(1, u)));
      b.store(a, B::at(1, u), x);
    }
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s1351", "loop_rerolling", "streamed a[i] = b[i] + c[i] via pointers");
    b.default_n(kN);
    const int a = b.array("a"), bb = b.array("b"), c = b.array("c");
    b.store(a, B::at(1), b.add(b.load(bb, B::at(1)), b.load(c, B::at(1))));
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s352", "loop_rerolling", "5x unrolled dot product");
    b.default_n(kN);
    b.trip({.step = 5});
    const int a = b.array("a", ScalarType::F32, 1, 8);
    const int bb = b.array("b", ScalarType::F32, 1, 8);
    auto dot = b.phi(0.0);
    ir::Val acc = dot;
    for (int u = 0; u < 5; ++u)
      acc = b.fma(b.load(a, B::at(1, u)), b.load(bb, B::at(1, u)), acc);
    b.set_phi_update(dot, acc, ReductionKind::Sum);
    b.live_out(dot);
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s353", "loop_rerolling", "4x unrolled gathered axpy via index array");
    b.default_n(kN);
    b.trip({.step = 4});
    const int a = b.array("a", ScalarType::F32, 1, 8);
    const int bb = b.array("b", ScalarType::F32, 1, 8);
    const int ip = b.array("ip", ScalarType::I32, 1, 8);
    auto alpha = b.param(1.5f);
    for (int u = 0; u < 4; ++u) {
      auto idx = b.load(ip, B::at(1, u));
      auto x = b.fma(alpha, b.load(bb, B::via(idx)), b.load(a, B::at(1, u)));
      b.store(a, B::at(1, u), x);
    }
    return std::move(b).finish();
  });
}

}  // namespace veccost::tsvc::detail
