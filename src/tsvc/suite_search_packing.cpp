// TSVC categories: search loops (s331, s332), packing (s341..s343), loops
// with calls (s471) and early exits (s481, s482), and indirect-store s491.
#include "ir/builder.hpp"
#include "tsvc/suite_internal.hpp"

namespace veccost::tsvc::detail {

using B = ir::LoopBuilder;
using ir::ScalarType;

namespace {
constexpr std::int64_t kN = 262144;
}  // namespace

void register_search_packing(Registry& r) {
  add(r, [] {
    B b("s331", "search", "j = last index with a[i] < 0 (index recurrence)");
    b.default_n(kN);
    const int a = b.array("a");
    auto j = b.phi(-1.0, ScalarType::I64);
    auto mask = b.cmp_lt(b.load(a, B::at(1)), b.fconst(1.5));
    auto jn = b.select(mask, b.indvar(), j);
    b.set_phi_update(j, jn);
    b.live_out(j);
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s332", "search", "first value > threshold: early exit (break)");
    b.default_n(kN);
    const int a = b.array("a");
    auto t = b.param(1.99f);
    auto mask = b.cmp_gt(b.load(a, B::at(1)), t);
    b.brk(mask);
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s341", "packing", "pack positive b into a: a[j++] = b[i] if b[i] > 0");
    b.default_n(kN);
    const int a = b.array("a"), bb = b.array("b");
    auto j = b.phi(0.0, ScalarType::I64);
    auto vb = b.load(bb, B::at(1));
    auto mask = b.cmp_gt(vb, b.fconst(1.5));
    b.store(a, B::via(j), vb, mask);
    auto jn = b.add(j, b.select(mask, b.iconst(1), b.iconst(0)));
    b.set_phi_update(j, jn);
    b.live_out(j);
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s342", "packing", "unpack a into sparse positions of b");
    b.default_n(kN);
    const int a = b.array("a"), bb = b.array("b");
    auto j = b.phi(0.0, ScalarType::I64);
    auto va = b.load(a, B::at(1));
    auto mask = b.cmp_gt(va, b.fconst(1.5));
    auto packed = b.load(bb, B::via(j), mask);
    b.store(a, B::at(1), packed, mask);
    auto jn = b.add(j, b.select(mask, b.iconst(1), b.iconst(0)));
    b.set_phi_update(j, jn);
    b.live_out(j);
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s343", "packing", "pack 2-D guarded elements into a flat array");
    b.default_n(kN);
    const int flat = b.array("flat"), aa = b.array("aa"), bbm = b.array("bb");
    auto j = b.phi(0.0, ScalarType::I64);
    auto v = b.load(aa, B::at(1));
    auto mask = b.cmp_gt(b.load(bbm, B::at(1)), b.fconst(1.5));
    b.store(flat, B::via(j), v, mask);
    auto jn = b.add(j, b.select(mask, b.iconst(1), b.iconst(0)));
    b.set_phi_update(j, jn);
    b.live_out(j);
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s471", "calls", "x[i] = b[i] + d[i]*d[i]; call; b[i] = c[i] + d[i]*e[i]");
    b.default_n(kN);
    const int x = b.array("x"), bb = b.array("b"), c = b.array("c"),
              d = b.array("d"), e = b.array("e");
    auto vd = b.load(d, B::at(1));
    b.store(x, B::at(1), b.fma(vd, vd, b.load(bb, B::at(1))));
    b.store(bb, B::at(1),
            b.fma(vd, b.load(e, B::at(1)), b.load(c, B::at(1))));
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s481", "early_exit", "if (d[i] < 0) exit; a[i] += b[i]*c[i]");
    b.default_n(kN);
    const int a = b.array("a"), bb = b.array("b"), c = b.array("c"),
              d = b.array("d");
    auto mask = b.cmp_lt(b.load(d, B::at(1)), b.fconst(0.0));
    b.brk(mask);
    auto v = b.fma(b.load(bb, B::at(1)), b.load(c, B::at(1)), b.load(a, B::at(1)));
    b.store(a, B::at(1), v);
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s482", "early_exit", "a[i] += b[i]*c[i]; if (c[i] > b[i]) break");
    b.default_n(kN);
    const int a = b.array("a"), bb = b.array("b"), c = b.array("c");
    auto vb = b.load(bb, B::at(1));
    auto vc = b.load(c, B::at(1));
    b.store(a, B::at(1), b.fma(vb, vc, b.load(a, B::at(1))));
    auto mask = b.cmp_gt(vc, b.add(vb, b.fconst(1.0)));
    b.brk(mask);
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s491", "packing", "a[ip[i]] = b[i] + c[i]*d[i] (indirect store)");
    b.default_n(kN);
    const int a = b.array("a"), bb = b.array("b"), c = b.array("c"),
              d = b.array("d");
    const int ip = b.array("ip", ScalarType::I32);
    auto idx = b.load(ip, B::at(1));
    auto v = b.fma(b.load(c, B::at(1)), b.load(d, B::at(1)), b.load(bb, B::at(1)));
    b.store(a, B::via(idx), v);
    return std::move(b).finish();
  });
}

}  // namespace veccost::tsvc::detail
