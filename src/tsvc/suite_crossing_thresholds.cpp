// TSVC category: crossing thresholds, index-set splitting, wrap-around
// variables and diagonals (s281..s2111).
#include "ir/builder.hpp"
#include "tsvc/suite_internal.hpp"

namespace veccost::tsvc::detail {

using B = ir::LoopBuilder;
using ir::ScalarType;

namespace {
constexpr std::int64_t kN = 262144;
constexpr std::int64_t kR = 256;
constexpr std::int64_t kOuter = 64;
}  // namespace

void register_crossing_thresholds(Registry& r) {
  add(r, [] {
    B b("s281", "crossing_thresholds",
        "x = a[n-1-i] + b[i]*c[i]; a[i] = x - 1; b[i] = x: crossing access");
    b.default_n(kN);
    const int a = b.array("a"), bb = b.array("b"), c = b.array("c");
    auto x = b.fma(b.load(bb, B::at(1)), b.load(c, B::at(1)),
                   b.load(a, B::at_n(-1, 1, -1)));
    b.store(a, B::at(1), b.sub(x, b.fconst(1.0)));
    b.store(bb, B::at(1), x);
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s1281", "crossing_thresholds",
        "x = b[i]*c[i] + a[i]*d[i] + e[i]; a[i] = x - 1; b[i] = x");
    b.default_n(kN);
    const int a = b.array("a"), bb = b.array("b"), c = b.array("c"),
              d = b.array("d"), e = b.array("e");
    auto x = b.add(b.fma(b.load(a, B::at(1)), b.load(d, B::at(1)),
                         b.mul(b.load(bb, B::at(1)), b.load(c, B::at(1)))),
                   b.load(e, B::at(1)));
    b.store(a, B::at(1), b.sub(x, b.fconst(1.0)));
    b.store(bb, B::at(1), x);
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s291", "crossing_thresholds",
        "wrap-around index: b[i] = (a[i] + x) * 0.5; x = a[i]");
    b.default_n(kN);
    const int a = b.array("a"), bb = b.array("b");
    auto x = b.phi(1.0);
    auto va = b.load(a, B::at(1));
    b.store(bb, B::at(1), b.mul(b.add(va, x), b.fconst(0.5)));
    b.set_phi_update(x, va);
    b.live_out(x);
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s292", "crossing_thresholds",
        "double wrap-around: b[i] = (a[i] + x + y) * 0.25; y = x; x = a[i]");
    b.default_n(kN);
    const int a = b.array("a"), bb = b.array("b");
    auto y = b.phi(1.0);
    auto x = b.phi(1.0);
    auto va = b.load(a, B::at(1));
    auto sum = b.add(b.add(va, x), y);
    b.store(bb, B::at(1), b.mul(sum, b.fconst(0.25)));
    b.set_phi_update(x, va);
    b.set_phi_update(y, x);
    b.live_out(x);
    b.live_out(y);
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s293", "crossing_thresholds", "a[i] = a[0]: every store crosses the load");
    b.default_n(kN);
    const int a = b.array("a");
    b.store(a, B::at(1), b.load(a, B::at(0)));
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s2101", "crossing_thresholds", "diagonal: aa[i][i] += bb[i][i]*cc[i][i]");
    b.trip({.num = 0, .offset = kR});
    const int aa = b.array("aa", ScalarType::F32, 0, kR * kR);
    const int bbm = b.array("bb", ScalarType::F32, 0, kR * kR);
    const int cc = b.array("cc", ScalarType::F32, 0, kR * kR);
    auto x = b.fma(b.load(bbm, B::at(kR + 1)), b.load(cc, B::at(kR + 1)),
                   b.load(aa, B::at(kR + 1)));
    b.store(aa, B::at(kR + 1), x);
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s2102", "crossing_thresholds",
        "identity matrix: aa[j][i] = (i == j) ? 1 : 0, column traversal");
    b.trip({.num = 0, .offset = kR});
    b.outer(kOuter);
    const int aa = b.array("aa", ScalarType::F32, 0, kR * kR);
    auto eq = b.cmp_eq(b.indvar(), b.outer_indvar());
    auto v = b.select(eq, b.fconst(1.0), b.fconst(0.0));
    b.store(aa, B::at2(kR, 1), v);
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s2111", "crossing_thresholds",
        "wavefront: aa[j][i] = (aa[j][i-1] + aa[j-1][i]) / 1.9");
    b.trip({.start = 1, .num = 0, .offset = kR});
    b.outer(kOuter);
    const int aa = b.array("aa", ScalarType::F32, 0, (kOuter + 1) * kR);
    auto x = b.add(b.load(aa, B::at2(1, kR, kR - 1)),
                   b.load(aa, B::at2(1, kR, 0)));
    b.store(aa, B::at2(1, kR, kR), b.mul(x, b.fconst(1.0f / 1.9f)));
    return std::move(b).finish();
  });
}

}  // namespace veccost::tsvc::detail
