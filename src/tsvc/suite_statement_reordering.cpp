// TSVC categories: statement reordering (s211, s212, s1213) and loop
// distribution (s221, s222). These kernels vectorize only if the compiler
// reorders or distributes statements; neither our vectorizer nor LLVM's LLV
// does, so the expected outcome is rejection for all five.
#include "ir/builder.hpp"
#include "tsvc/suite_internal.hpp"

namespace veccost::tsvc::detail {

using B = ir::LoopBuilder;
using ir::ScalarType;

namespace {
constexpr std::int64_t kN = 262144;
}  // namespace

void register_statement_reordering(Registry& r) {
  add(r, [] {
    B b("s211", "statement_reordering",
        "a[i] = b[i-1] + c[i]*d[i]; b[i] = b[i+1] - e[i]*d[i]");
    b.default_n(kN);
    b.trip({.start = 1, .offset = -1});
    const int a = b.array("a"), bb = b.array("b"), c = b.array("c"),
              d = b.array("d"), e = b.array("e");
    auto x = b.fma(b.load(c, B::at(1)), b.load(d, B::at(1)),
                   b.load(bb, B::at(1, -1)));
    b.store(a, B::at(1), x);
    auto y = b.sub(b.load(bb, B::at(1, 1)),
                   b.mul(b.load(e, B::at(1)), b.load(d, B::at(1))));
    b.store(bb, B::at(1), y);
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s212", "statement_reordering", "a[i] *= c[i]; b[i] += a[i+1]*d[i]");
    b.default_n(kN);
    b.trip({.offset = -1});
    const int a = b.array("a"), bb = b.array("b"), c = b.array("c"),
              d = b.array("d");
    b.store(a, B::at(1), b.mul(b.load(a, B::at(1)), b.load(c, B::at(1))));
    auto y = b.fma(b.load(a, B::at(1, 1)), b.load(d, B::at(1)),
                   b.load(bb, B::at(1)));
    b.store(bb, B::at(1), y);
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s1213", "statement_reordering",
        "a[i] = b[i-1] + c[i]; b[i] = a[i+1]*d[i]");
    b.default_n(kN);
    b.trip({.start = 1, .offset = -1});
    const int a = b.array("a"), bb = b.array("b"), c = b.array("c"),
              d = b.array("d");
    auto x = b.add(b.load(bb, B::at(1, -1)), b.load(c, B::at(1)));
    b.store(a, B::at(1), x);
    auto y = b.mul(b.load(a, B::at(1, 1)), b.load(d, B::at(1)));
    b.store(bb, B::at(1), y);
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s221", "loop_distribution", "a[i] += c[i]*d[i]; b[i] = b[i-1] + a[i] + d[i]");
    b.default_n(kN);
    b.trip({.start = 1});
    const int a = b.array("a"), bb = b.array("b"), c = b.array("c"),
              d = b.array("d");
    auto x = b.fma(b.load(c, B::at(1)), b.load(d, B::at(1)), b.load(a, B::at(1)));
    b.store(a, B::at(1), x);
    auto y = b.add(b.add(b.load(bb, B::at(1, -1)), x), b.load(d, B::at(1)));
    b.store(bb, B::at(1), y);
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s1221", "loop_distribution",
        "b[i] = b[i-4] + a[i]: distance-4 dependence allows partial VF <= 4");
    b.default_n(kN);
    b.trip({.start = 4});
    const int a = b.array("a"), bb = b.array("b");
    b.store(bb, B::at(1), b.add(b.load(bb, B::at(1, -4)), b.load(a, B::at(1))));
    return std::move(b).finish();
  });

  add(r, [] {
    B b("s222", "loop_distribution",
        "a[i] += b[i]*c[i]; e[i] = e[i-1]*e[i-1]; a[i] -= b[i]*c[i]");
    b.default_n(kN);
    b.trip({.start = 1});
    const int a = b.array("a"), bb = b.array("b"), c = b.array("c"),
              e = b.array("e");
    auto bc = b.mul(b.load(bb, B::at(1)), b.load(c, B::at(1)));
    b.store(a, B::at(1), b.add(b.load(a, B::at(1)), bc));
    auto em1 = b.load(e, B::at(1, -1));
    b.store(e, B::at(1), b.mul(em1, em1));
    b.store(a, B::at(1), b.sub(b.add(b.load(a, B::at(1)), bc), bc));
    return std::move(b).finish();
  });
}

}  // namespace veccost::tsvc::detail
